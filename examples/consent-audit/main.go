// Consent audit (paper §5, Figures 5–7): crawl a synthetic web and list
// which Consent Management Platforms fail to prevent Topics API calls
// before the user consents, and which calling parties ignore consent.
//
//	go run ./examples/consent-audit
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"github.com/netmeasure/topicscope"
)

func main() {
	results, err := topicscope.Campaign{Seed: 11, Sites: 4000, Workers: 8}.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== CPs calling before consent (Figure 5) ==")
	for _, row := range results.Report.Figure5.Rows {
		fmt.Printf("  %-22s %4d sites before consent (%4d after)\n", row.CP, row.Sites, row.AfterSites)
	}

	fmt.Println("\n== CMP audit (Figure 7) ==")
	f7 := results.Report.Figure7
	type cmpRow struct {
		name string
		over float64
		pq   float64
	}
	var rows []cmpRow
	for _, r := range f7.Rows {
		rows = append(rows, cmpRow{r.CMP, f7.OverRepresentation(r.CMP), r.PQuestionableGivenCMP})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pq > rows[j].pq })
	for _, r := range rows {
		verdict := "ok"
		if r.pq > 1.7*f7.AvgQuestionableRate {
			verdict = "POOR TOPICS GATING"
		}
		fmt.Printf("  %-20s P(questionable|CMP)=%5.1f%%  over-representation=%.2fx  %s\n",
			r.name, r.pq*100, r.over, verdict)
	}
	fmt.Printf("\naverage P(questionable) across sites: %.1f%%\n", f7.AvgQuestionableRate*100)
	fmt.Println("sites relying on a flagged CMP should verify their Topics API gating.")
}
