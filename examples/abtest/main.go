// A/B-test detection (paper §3, experiment S1): revisit the same
// websites repeatedly over several virtual days and watch calling
// parties toggle their Topics integration ON and OFF in consistent
// alternating periods — the signature of live A/B tests.
//
//	go run ./examples/abtest
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/netmeasure/topicscope"
)

func main() {
	world := topicscope.GenerateWorld(topicscope.WorldConfig{Seed: 5, NumSites: 2000})
	server := topicscope.NewServer(world, nil)
	allow := topicscope.NewAllowlist(world.Catalog.AllowedDomains()...)

	// Watch these CPs; their catalog A/B rates span the Figure 3
	// clusters.
	cps := []string{"criteo.com", "yandex.com", "doubleclick.net", "rubiconproject.com"}

	// Pick a handful of sites where at least one watched CP is embedded.
	var targets []*topicscope.Site
	for _, s := range world.Sites {
		if !s.Reachable || s.RedirectTo != "" {
			continue
		}
		for _, p := range s.Platforms {
			if p == "criteo.com" {
				targets = append(targets, s)
				break
			}
		}
		if len(targets) == 6 {
			break
		}
	}

	start := time.Date(2024, 3, 30, 0, 0, 0, 0, time.UTC)
	const (
		step    = 2 * time.Hour
		samples = 60 // five virtual days
	)

	fmt.Printf("revisiting %d sites every %s for %d samples\n\n", len(targets), step, samples)
	for _, site := range targets {
		series := map[string][]bool{}
		for i := 0; i < samples; i++ {
			at := start.Add(time.Duration(i) * step)
			b := topicscope.NewBrowser(topicscope.BrowserConfig{
				Client:             server.Client(),
				Gate:               topicscope.NewCorruptedGate(),
				ReferenceAllowlist: allow,
				Now:                func() time.Time { return at },
			})
			b.SetConsent(site.Domain) // consented user, like a returning visitor
			v, err := b.LoadPage(context.Background(), site.Domain)
			if err != nil {
				log.Fatal(err)
			}
			called := map[string]bool{}
			for _, c := range v.Calls {
				called[c.Caller] = true
			}
			for _, cp := range cps {
				series[cp] = append(series[cp], called[cp])
			}
		}
		fmt.Printf("site %s:\n", site.Domain)
		for _, cp := range cps {
			a := topicscope.AnalyzeAlternation(series[cp])
			if a.OnFraction == 0 {
				continue // CP not embedded or never enabled here
			}
			fmt.Printf("  %-20s %s", cp, a.Render())
		}
		fmt.Println()
	}
	fmt.Println("ON fractions converge to each CP's A/B rate; stable runs with")
	fmt.Println("flips between them are the paper's \"consistent alternating periods\".")
}
