// Re-identification risk (paper §2.1): the paper notes that despite the
// Topics API's privacy mechanisms, "some privacy leak may still happen",
// citing the re-identification attack of Jha et al. (PETS 2023). This
// example runs that attack against the library's real Topics engine: an
// ad-tech party embedded on two publishers accumulates the topics each
// user's browser returns and links the profiles across sites.
//
//	go run ./examples/reident
package main

import (
	"fmt"
	"strings"

	"github.com/netmeasure/topicscope"
)

func main() {
	base := topicscope.ReidentConfig{
		Users:          300,
		Epochs:         10,
		ProfileSites:   6,
		VisitsPerEpoch: 30,
		Seed:           2024,
	}

	noisy := topicscope.SimulateReident(base)

	clean := base
	clean.NoNoise = true
	noNoise := topicscope.SimulateReident(clean)

	fmt.Printf("population: %d users, %d profile sites each, %d visits/week\n\n",
		base.Users, base.ProfileSites, base.VisitsPerEpoch)
	fmt.Println("cross-site re-identification rate by observation epochs:")
	fmt.Printf("%-8s %-28s %-28s %s\n", "epochs", "with 5% noise (deployed)", "without noise (ablation)", "topics/user")
	for k := range noisy.MatchRate {
		fmt.Printf("%-8d %-28s %-28s %.1f\n",
			k+1,
			bar(noisy.MatchRate[k]),
			bar(noNoise.MatchRate[k]),
			noisy.TopicsPerUser[k])
	}
	fmt.Println("\nThe 5% plausible-deniability replacement slows but does not stop")
	fmt.Println("profile linkage — the conclusion of the work the paper cites.")
}

func bar(rate float64) string {
	n := int(rate * 20)
	return fmt.Sprintf("%s%s %4.1f%%", strings.Repeat("█", n), strings.Repeat("░", 20-n), rate*100)
}
