// Vantage comparison (paper §6): the study crawled from one EU
// location and "cannot rule out the possibility that websites may
// exhibit different behavior based on a user's location". This example
// runs the same campaign from the EU vantage (the paper's setup) and
// from a US vantage, where sites geo-fence their GDPR banners and
// consent-guarded tags see gdprApplies=false.
//
//	go run ./examples/vantage
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/netmeasure/topicscope"
)

func main() {
	run := func(vantage string) *topicscope.Results {
		res, err := topicscope.Campaign{
			Seed:    6,
			Sites:   2500,
			Workers: 8,
			Vantage: vantage,
		}.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	eu := run("eu")
	us := run("us")

	fmt.Println("same 2,500-site world, two vantages:")
	fmt.Printf("%-34s %10s %10s\n", "", "EU (paper)", "US")
	row := func(label string, a, b int) {
		fmt.Printf("%-34s %10d %10d\n", label, a, b)
	}
	row("banners shown", eu.Stats.BannersFound, us.Stats.BannersFound)
	row("consents acquired (D_AA)", eu.Stats.Accepted, us.Stats.Accepted)
	row("Topics calls before any consent", eu.Stats.CallsBefore, us.Stats.CallsBefore)
	row("Topics calls after consent", eu.Stats.CallsAfter, us.Stats.CallsAfter)
	row("questionable A&A CPs (Table 1)", eu.Report.Table1.BAAllowedAttested, us.Report.Table1.BAAllowedAttested)

	fmt.Println("\nOutside the GDPR's reach the Topics API fires freely without any")
	fmt.Println("consent interaction — the location-dependence §6 could not rule out.")
}
