// Quickstart: run a scaled-down version of the paper's full study — a
// 3,000-site synthetic web, the Before-/After-Accept crawl with the
// corrupted allow-list, attestation checks — and print every table and
// figure.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/netmeasure/topicscope"
)

func main() {
	results, err := topicscope.Campaign{
		Seed:    2024,
		Sites:   3000,
		Workers: 8,
	}.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("crawl: %s\n", results.Stats)
	fmt.Printf("world: %s\n\n", results.World.Stats())
	fmt.Print(results.Report.Render())

	// Individual experiment results are plain structs too:
	t1 := results.Report.Table1
	fmt.Printf("\nheadline: %d enrolled domains, %d active callers, %d anomalous CPs, %d questionable CPs\n",
		t1.Allowed, t1.AAAllowedAttested, t1.AANotAllowed, t1.BAAllowedAttested)
}
