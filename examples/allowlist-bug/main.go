// Chromium allow-list bug (paper §2.3, experiment B1): serialize the
// enrolment allow-list to its .dat database, corrupt a single byte as
// the paper did on purpose, reload it as the browser would — and watch
// the gate silently default to ALLOWING every caller, enrolled or not.
//
//	go run ./examples/allowlist-bug
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"github.com/netmeasure/topicscope"
)

func main() {
	dir, err := os.MkdirTemp("", "topicscope-allowlist")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "privacy-sandbox-attestations.dat")

	// The browser component ships the enrolled domains.
	list := topicscope.NewAllowlist("criteo.com", "doubleclick.net", "rubiconproject.com")
	if err := topicscope.SaveAllowlist(path, list); err != nil {
		log.Fatal(err)
	}

	callers := []string{"criteo.com", "evil-tracker.example", "www.some-website.it"}

	// Healthy database: only enrolled callers pass.
	healthy, err := topicscope.LoadAllowlist(path)
	gate := topicscope.NewGate(healthy, err)
	fmt.Println("healthy database:")
	for _, c := range callers {
		d := gate.Check(c)
		fmt.Printf("   %-25s allowed=%-5v reason=%s\n", c, d.Allowed, d.Reason)
	}

	// Flip one byte mid-file ("we on purpose corrupted the local
	// allow-list of our Chromium browser").
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	err = topicscope.WriteFileAtomic(path, func(w io.Writer) error {
		_, werr := w.Write(raw)
		return werr
	})
	if err != nil {
		log.Fatal(err)
	}

	corrupted, err := topicscope.LoadAllowlist(path)
	fmt.Printf("\nreload after corruption: err = %v\n", err)
	gate = topicscope.NewGate(corrupted, err)
	fmt.Println("corrupted database (Chromium's default case):")
	for _, c := range callers {
		d := gate.Check(c)
		fmt.Printf("   %-25s allowed=%-5v reason=%s\n", c, d.Allowed, d.Reason)
	}

	fmt.Println("\nEvery caller — including unenrolled trackers and plain websites —")
	fmt.Println("may now harvest topics. The paper reported this to Google, who")
	fmt.Println("acknowledged it and announced a fix.")
}
