// Topics engine as a library (paper §2.1): simulate three weeks of
// browsing, then query document.browsingTopics() as two different
// callers and observe the per-caller filtering, the one-topic-per-epoch
// rule and the 5% noise.
//
//	go run ./examples/topics-engine
package main

import (
	"fmt"
	"time"

	"github.com/netmeasure/topicscope"
)

func main() {
	tx := topicscope.NewTaxonomy()
	cl := topicscope.NewClassifier(tx)

	clock := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	engine := topicscope.NewEngine(tx, cl, topicscope.EngineConfig{
		Seed: 42,
		Now:  func() time.Time { return clock },
	})

	// Three weeks of browsing. adtech.example observes the user on every
	// page (its tag is embedded everywhere); newcomer.example only on
	// the cooking sites.
	weeks := [][]string{
		{"daily-news.com", "football-zone.com", "travel-hotels.net", "recipes-kitchen.io", "chess-club.org"},
		{"daily-news.com", "stocks-trading.com", "travel-hotels.net", "recipes-kitchen.io", "games-arcade.net"},
		{"football-zone.com", "stocks-trading.com", "fashion-store.com", "recipes-kitchen.io", "daily-news.com"},
	}
	for w, sites := range weeks {
		for _, site := range sites {
			engine.RecordVisit(site)
			engine.Observe(site, "adtech.example")
			if site == "recipes-kitchen.io" {
				engine.Observe(site, "newcomer.example")
			}
		}
		clock = clock.Add(7 * 24 * time.Hour)
		fmt.Printf("— epoch %d complete —\n", w+1)
		for _, ep := range engine.CompletedEpochs()[:1] {
			for _, tt := range ep.Top {
				topic, _ := tx.Get(tt.ID)
				marker := ""
				if tt.Padded {
					marker = " (padded)"
				}
				fmt.Printf("   top: %-60s visits=%d%s\n", topic.Path, tt.Visits, marker)
			}
		}
	}

	fmt.Println("\nbrowsingTopics() as adtech.example (observed everything):")
	for _, r := range engine.BrowsingTopics("adtech.example", "some-publisher.com") {
		fmt.Printf("   epoch -%d: %s (taxonomy %s)\n", r.EpochIndex+1, r.Topic.Path, r.TaxonomyVersion)
	}

	fmt.Println("\nbrowsingTopics() as newcomer.example (observed only the cooking site):")
	res := engine.BrowsingTopics("newcomer.example", "some-publisher.com")
	if len(res) == 0 {
		fmt.Println("   nothing — the per-caller filter withheld every topic")
	}
	for _, r := range res {
		fmt.Printf("   epoch -%d: %s\n", r.EpochIndex+1, r.Topic.Path)
	}

	fmt.Println("\nSame page, same epoch ⇒ every caller sees the same topic; unobserved")
	fmt.Println("interests are withheld per caller; 5% of answers are random noise.")
}
