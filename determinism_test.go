package topicscope_test

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"github.com/netmeasure/topicscope"
)

// TestReportDeterminismAcrossGOMAXPROCS is the repo-level face of the
// index-determinism invariant that topicslint enforces statically and
// TestIndexWorkerDeterminism proves for the index alone: a whole seeded
// campaign — world generation, chaos-injected crawl, attestation
// checks, every table and figure — emits byte-identical report JSON
// (the report_full.json artifact) no matter the GOMAXPROCS setting or
// the crawl worker count.
func TestReportDeterminismAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping full-campaign determinism smoke test")
	}
	run := func(procs, workers int) []byte {
		t.Helper()
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		results, err := topicscope.Campaign{
			Seed:      7,
			Sites:     400,
			Workers:   workers,
			Chaos:     true,
			ChaosSeed: 3,
		}.Run(context.Background())
		if err != nil {
			t.Fatalf("campaign (GOMAXPROCS=%d workers=%d): %v", procs, workers, err)
		}
		var buf bytes.Buffer
		if err := results.Report.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}

	serial := run(1, 2)
	parallel := run(runtime.NumCPU(), 8)
	if bytes.Equal(serial, parallel) {
		return
	}
	aLines := bytes.Split(serial, []byte("\n"))
	bLines := bytes.Split(parallel, []byte("\n"))
	for i := 0; i < len(aLines) && i < len(bLines); i++ {
		if !bytes.Equal(aLines[i], bLines[i]) {
			t.Fatalf("report JSON diverges at line %d:\n GOMAXPROCS=1: %s\n GOMAXPROCS=%d: %s",
				i+1, aLines[i], runtime.NumCPU(), bLines[i])
		}
	}
	t.Fatalf("report JSON lengths diverge: %d vs %d bytes", len(serial), len(parallel))
}
