package topicscope_test

// The benchmark harness regenerates every table and figure of the paper
// (see DESIGN.md's per-experiment index): each BenchmarkTable1/Figure*
// measures recomputing that experiment over a shared crawl fixture and
// reports the experiment's headline numbers as custom metrics, so
// `go test -bench=. -benchmem` doubles as the reproduction run at bench
// scale. EXPERIMENTS.md records the full 50k-site numbers.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"testing"
	"time"

	"github.com/netmeasure/topicscope"
	"github.com/netmeasure/topicscope/internal/analysis"
)

const benchSites = 3000

var (
	benchOnce sync.Once
	benchIn   *topicscope.AnalysisInput
	benchRes  *topicscope.Results
)

func benchInput(b *testing.B) (*topicscope.AnalysisInput, *topicscope.Results) {
	b.Helper()
	benchOnce.Do(func() {
		res, err := topicscope.Campaign{Seed: 7, Sites: benchSites, Workers: 16}.Run(context.Background())
		if err != nil {
			panic(err)
		}
		benchRes = res
		benchIn = &topicscope.AnalysisInput{
			Data:         res.Data,
			Allowlist:    topicscope.NewAllowlist(res.World.Catalog.AllowedDomains()...),
			Attestations: topicscope.AttestationIndex(res.Attestations),
		}
	})
	return benchIn, benchRes
}

// BenchmarkDatasetOverview regenerates experiment D1 (§2.4).
func BenchmarkDatasetOverview(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	var o *analysis.Overview
	for i := 0; i < b.N; i++ {
		o = analysis.ComputeOverview(in)
	}
	b.ReportMetric(float64(o.Visited), "sites_visited")
	b.ReportMetric(o.AcceptShare*100, "accept_pct")
	b.ReportMetric(o.LegitCallShare*100, "legit_call_pct")
	b.ReportMetric(float64(o.UniqueThirdParties), "third_parties")
}

// BenchmarkTable1 regenerates Table 1 (experiment T1).
func BenchmarkTable1(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	var t1 *analysis.Table1
	for i := 0; i < b.N; i++ {
		t1 = analysis.ComputeTable1(in)
	}
	b.ReportMetric(float64(t1.Allowed), "allowed")
	b.ReportMetric(float64(t1.AAAllowedAttested), "daa_aa_callers")
	b.ReportMetric(float64(t1.AANotAllowed), "daa_anomalous")
	b.ReportMetric(float64(t1.BAAllowedAttested), "dba_questionable")
	b.ReportMetric(float64(t1.BANotAllowed), "dba_not_allowed")
}

// BenchmarkFigure2 regenerates Figure 2 (CP presence vs calls).
func BenchmarkFigure2(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	var f *analysis.Figure2
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure2(in, 15)
	}
	if len(f.Rows) > 0 {
		b.ReportMetric(float64(f.Rows[0].Present), "top_cp_presence")
	}
}

// BenchmarkFigure3 regenerates Figure 3 (A/B enabled rates).
func BenchmarkFigure3(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	var f *analysis.Figure3
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure3(in, 12, 15)
	}
	b.ReportMetric(f.ClusteredShare()*100, "clustered_pct")
}

// BenchmarkAnomaly regenerates the §4 anomalous-usage analysis (A1).
func BenchmarkAnomaly(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	var a *analysis.Anomaly
	for i := 0; i < b.N; i++ {
		a = analysis.ComputeAnomaly(in)
	}
	b.ReportMetric(float64(a.UniqueCPs), "anomalous_cps")
	b.ReportMetric(a.SameSecondLevelShare*100, "same_sld_pct")
	b.ReportMetric(a.GTMShare*100, "gtm_pct")
}

// BenchmarkFigure5 regenerates Figure 5 (questionable calls).
func BenchmarkFigure5(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	var f *analysis.Figure5
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure5(in, 15)
	}
	b.ReportMetric(float64(f.TotalQuestionableCPs), "questionable_cps")
}

// BenchmarkFigure6 regenerates Figure 6 (TLD geography).
func BenchmarkFigure6(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.ComputeFigure6(in, []string{"yandex.com", "criteo.com", "taboola.com", "openx.net"})
	}
}

// BenchmarkFigure7 regenerates Figure 7 (CMP probabilities).
func BenchmarkFigure7(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	var f *analysis.Figure7
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure7(in)
	}
	b.ReportMetric(f.OverRepresentation("HubSpot"), "hubspot_over_rep")
	b.ReportMetric(f.AvgQuestionableRate*100, "avg_questionable_pct")
}

// BenchmarkEnrolment regenerates the §3 enrolment timeline (E1).
func BenchmarkEnrolment(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	var e *analysis.Enrolment
	for i := 0; i < b.N; i++ {
		e = analysis.ComputeEnrolment(in)
	}
	b.ReportMetric(e.MonthlyPace(), "enrolments_per_month")
}

// BenchmarkIndexBuild measures the tentpole itself: one parallel sharded
// pass aggregating the whole dataset into the analysis index (interned
// hostnames, per-phase call/presence sets, every precomputed section).
// Every Compute* above amortizes this cost; here it is paid per
// iteration on a fresh Input.
func BenchmarkIndexBuild(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	var idx *analysis.Index
	for i := 0; i < b.N; i++ {
		fresh := &topicscope.AnalysisInput{
			Data:         in.Data,
			Allowlist:    in.Allowlist,
			Attestations: in.Attestations,
		}
		idx = analysis.BuildIndex(fresh)
	}
	b.ReportMetric(float64(idx.Hosts()), "distinct_hosts")
	b.ReportMetric(float64(len(in.Data.Visits)), "visits")
}

// BenchmarkFullReport measures every experiment end to end on a fresh
// Input: one index build plus the concurrent section fan-out — the cost
// topics-analyze pays after loading a dataset.
func BenchmarkFullReport(b *testing.B) {
	in, _ := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := &topicscope.AnalysisInput{
			Data:         in.Data,
			Allowlist:    in.Allowlist,
			Attestations: in.Attestations,
		}
		if topicscope.Analyze(fresh) == nil {
			b.Fatal("nil report")
		}
	}
}

// BenchmarkABTestAlternation regenerates experiment S1: repeated-visit
// ON/OFF series per (CP, site) across A/B slots.
func BenchmarkABTestAlternation(b *testing.B) {
	_, res := benchInput(b)
	p, _ := res.World.Catalog.ByDomain("criteo.com")
	start := time.Date(2024, 3, 30, 0, 0, 0, 0, time.UTC)
	series := make([]bool, 240)
	b.ResetTimer()
	periodic := 0
	for i := 0; i < b.N; i++ {
		site := res.World.Sites[i%1000].Domain
		for j := range series {
			series[j] = p.EnabledOn(site, start.Add(time.Duration(j)*2*time.Hour))
		}
		if topicscope.AnalyzeAlternation(series).Periodic() {
			periodic++
		}
	}
	b.ReportMetric(float64(periodic)/float64(b.N)*100, "periodic_pct")
}

// BenchmarkFullCampaign measures the end-to-end study at a small scale:
// world generation, double crawl, attestation checks and analysis.
func BenchmarkFullCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := topicscope.Campaign{Seed: uint64(i + 1), Sites: 300, Workers: 8}.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrawlChaos measures the fault-injected campaign (D1r): the
// default retry policy against a retry-free crawl of the same world,
// reporting the visit-success rate each buys.
func BenchmarkCrawlChaos(b *testing.B) {
	for _, bc := range []struct {
		name    string
		retries int
	}{
		{"retries=default", 0},
		{"retries=off", -1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var last *topicscope.Results
			for i := 0; i < b.N; i++ {
				res, err := topicscope.Campaign{
					Seed: 7, Sites: 600, Workers: 16,
					Chaos: true, ChaosSeed: 1, Retries: bc.retries,
				}.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Stats.Succeeded)/float64(last.Stats.Attempted)*100, "success_pct")
			b.ReportMetric(float64(last.Stats.Retries), "retries")
			b.ReportMetric(float64(last.Stats.PartialVisits), "partial_visits")
		})
	}
}

// BenchmarkWorldGeneration measures the synthetic-web generator.
func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topicscope.GenerateWorld(topicscope.WorldConfig{Seed: uint64(i + 1), NumSites: 5000})
	}
}

// BenchmarkPageLoad measures one instrumented page load through the full
// HTTP + HTML + script pipeline.
func BenchmarkPageLoad(b *testing.B) {
	_, res := benchInput(b)
	server := topicscope.NewServer(res.World, nil)
	allow := topicscope.NewAllowlist(res.World.Catalog.AllowedDomains()...)
	br := topicscope.NewBrowser(topicscope.BrowserConfig{
		Client:             server.Client(),
		Gate:               topicscope.NewCorruptedGate(),
		ReferenceAllowlist: allow,
	})
	ctx := context.Background()
	// Preselect reachable, non-redirecting sites.
	var sites []string
	for _, s := range res.World.Sites {
		if s.Reachable && s.RedirectTo == "" {
			sites = append(sites, s.Domain)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.LoadPage(ctx, sites[i%len(sites)]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngine builds a warmed Topics engine with three epochs of
// history, shared by the engine benchmarks.
func benchEngine() *topicscope.Engine {
	tx := topicscope.NewTaxonomy()
	cl := topicscope.NewClassifier(tx)
	clock := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	eng := topicscope.NewEngine(tx, cl, topicscope.EngineConfig{
		Seed: 1, Now: func() time.Time { return clock },
	})
	for w := 0; w < 3; w++ {
		for i := 0; i < 50; i++ {
			site := fmt.Sprintf("news-site-%d.com", i)
			eng.RecordVisit(site)
			eng.Observe(site, "adtech.example")
		}
		clock = clock.Add(7 * 24 * time.Hour)
	}
	return eng
}

// benchCallerSites are pregenerated so the benchmark loop measures the
// engine call, not fmt.Sprintf.
func benchCallerSites() []string {
	sites := make([]string, 512)
	for i := range sites {
		sites[i] = fmt.Sprintf("pub-%d.com", i)
	}
	return sites
}

// BenchmarkTopicsEngineCall measures a browsingTopics() answer through
// the allocating convenience API (result slice per call).
func BenchmarkTopicsEngineCall(b *testing.B) {
	eng := benchEngine()
	sites := benchCallerSites()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.BrowsingTopics("adtech.example", sites[i%len(sites)])
	}
}

// BenchmarkTopicsEngineAppend measures the serving-path variant: the
// caller reuses a result buffer, so a warm engine answers without
// allocating (pinned at zero by TestAppendBrowsingTopicsZeroAlloc).
func BenchmarkTopicsEngineAppend(b *testing.B) {
	eng := benchEngine()
	sites := benchCallerSites()
	// Warm the per-site classification cache so the loop measures the
	// steady state.
	for _, s := range sites {
		eng.AppendBrowsingTopics(nil, "adtech.example", s)
	}
	buf := make([]topicscope.TopicResult, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = eng.AppendBrowsingTopics(buf[:0], "adtech.example", sites[i%len(sites)])
	}
	_ = buf
}

// benchResponseWriter is a header-reusing sink so BenchmarkServePage
// measures the handler, not the recorder.
type benchResponseWriter struct {
	header http.Header
	bytes  int64
}

func (w *benchResponseWriter) Header() http.Header { return w.header }
func (w *benchResponseWriter) WriteHeader(int)     {}
func (w *benchResponseWriter) Write(p []byte) (int, error) {
	w.bytes += int64(len(p))
	return len(p), nil
}

// BenchmarkServePage measures a cached landing-page render through
// Server.ServeHTTP — the load harness's page path, allocation-free once
// the page cache is warm (pinned by TestServeSitePageZeroAlloc).
func BenchmarkServePage(b *testing.B) {
	_, res := benchInput(b)
	server := topicscope.NewServer(res.World, nil)
	var site string
	for _, s := range res.World.Sites {
		if s.Reachable && s.RedirectTo == "" {
			site = s.Domain
			break
		}
	}
	req := &http.Request{
		Method: "GET",
		Host:   site,
		URL:    &url.URL{Path: "/"},
		Header: http.Header{"Cookie": []string{"consent=1"}},
	}
	w := &benchResponseWriter{header: make(http.Header, 4)}
	server.ServeHTTP(w, req) // warm the page cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		server.ServeHTTP(w, req)
	}
}

// BenchmarkLoadServing runs the deterministic load harness at a fixed
// seed and reports its virtual SLO metrics. These are virtual-time
// quantities — identical on every host and for any GOMAXPROCS — so
// benchjson -check gates them hard: p50_ms/p99_ms/p999_ms must not
// rise past tolerance and req_s must not fall.
func BenchmarkLoadServing(b *testing.B) {
	world := topicscope.GenerateWorld(topicscope.WorldConfig{Seed: 1, NumSites: 600})
	var rep *topicscope.LoadReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := topicscope.RunLoad(topicscope.LoadConfig{
			World: world, Seed: 1, Requests: 8000, Rate: 4000, Users: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	b.ReportMetric(rep.Overall.P50MS, "p50_ms")
	b.ReportMetric(rep.Overall.P99MS, "p99_ms")
	b.ReportMetric(rep.Overall.P999MS, "p999_ms")
	b.ReportMetric(rep.ReqPerSec, "req_s")
}

// BenchmarkReidentification measures the §2.1-cited re-identification
// attack simulation (extension experiment).
func BenchmarkReidentification(b *testing.B) {
	var last *topicscope.ReidentResult
	for i := 0; i < b.N; i++ {
		last = topicscope.SimulateReident(topicscope.ReidentConfig{
			Users: 100, Epochs: 5, Seed: uint64(i + 1),
		})
	}
	b.ReportMetric(last.MatchRate[len(last.MatchRate)-1]*100, "reident_pct_5_epochs")
}

// BenchmarkClassifier measures the hostname-to-topics model.
func BenchmarkClassifier(b *testing.B) {
	cl := topicscope.NewClassifier(topicscope.NewTaxonomy())
	hosts := []string{
		"daily-news-tribune.com", "travel-hotels.fr", "zzqxv.example",
		"shop-fashion-24.de", "games-arcade.io", "www.finance-invest.co.uk",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Classify(hosts[i%len(hosts)])
	}
}

// BenchmarkAllowlistGate measures the caller check on a full-size list.
func BenchmarkAllowlistGate(b *testing.B) {
	_, res := benchInput(b)
	gate := topicscope.NewEnforcingGate(topicscope.NewAllowlist(res.World.Catalog.AllowedDomains()...))
	callers := []string{"criteo.com", "cdn.doubleclick.net", "unknown.example", "www.foo.it"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gate.Check(callers[i%len(callers)])
	}
}

// BenchmarkCrawlScaling measures campaign throughput at increasing
// world sizes (sites crawled per second, Before+After visits included).
func BenchmarkCrawlScaling(b *testing.B) {
	for _, sites := range []int{100, 300, 1000} {
		b.Run(fmt.Sprintf("sites=%d", sites), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := topicscope.Campaign{
					Seed: uint64(i + 1), Sites: sites, Workers: 16,
				}.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.Attempted)/res.Stats.Elapsed.Seconds(), "sites/sec")
			}
		})
	}
}

// BenchmarkDatasetIO measures JSONL encode+decode of crawl records.
func BenchmarkDatasetIO(b *testing.B) {
	_, res := benchInput(b)
	data := res.Data
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := topicscope.NewDatasetWriter(&buf)
		for j := range data.Visits {
			if err := w.Write(&data.Visits[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(buf.Len())/1024/1024, "MB")
		}
	}
}
