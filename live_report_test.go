package topicscope_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/netmeasure/topicscope"
)

// TestLiveReportMatchesPostHoc pins the PR's acceptance criterion at
// the public API surface: rendering the report from a campaign journal
// the way `topics-report -live` does — restore the checkpoint index
// snapshot, fold the (empty, at the final checkpoint) tail, re-run the
// attestation sweep over the live caller set — produces JSON and text
// byte-identical to the report the campaign itself computed post hoc,
// while reading O(tail + snapshot) journal bytes: zero, here.
func TestLiveReportMatchesPostHoc(t *testing.T) {
	const (
		seed      = uint64(5)
		sites     = 400
		chaosSeed = uint64(2)
	)
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.jsonl.gz")
	results, err := topicscope.Campaign{
		Seed:            seed,
		Sites:           sites,
		Workers:         8,
		OutputPath:      path,
		CheckpointEvery: 25,
		Chaos:           true,
		ChaosSeed:       chaosSeed,
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var postHoc bytes.Buffer
	if err := results.Report.WriteJSON(&postHoc); err != nil {
		t.Fatal(err)
	}

	// The -live path: regenerate the same world, load the live index,
	// sweep attestations against the live caller set under the same
	// chaos weather, assemble, render.
	world := topicscope.GenerateWorld(topicscope.WorldConfig{Seed: seed, NumSites: sites})
	server := topicscope.NewServer(world, nil)
	allow := topicscope.NewAllowlist(world.Catalog.AllowedDomains()...)
	in := &topicscope.AnalysisInput{Allowlist: allow}
	live, st, err := topicscope.LoadLiveAnalysisIndex(path, in)
	if err != nil {
		t.Fatal(err)
	}
	if !st.SnapshotRestored {
		t.Fatal("final-checkpoint journal did not restore its index snapshot")
	}
	if st.TailRecords != 0 || st.BytesRead != 0 {
		t.Fatalf("closed journal re-read %d tail records / %d bytes, want O(snapshot): zero", st.TailRecords, st.BytesRead)
	}

	// The live caller set must be exactly what the campaign's post-hoc
	// sweep derived from the full dataset.
	if want := topicscope.CallerDomains(results.Data); !reflect.DeepEqual(live.Callers(), want) {
		t.Fatalf("live caller set %v\nwant %v", live.Callers(), want)
	}

	client := server.Client()
	topicscope.EnableChaos(client, topicscope.DefaultChaos(chaosSeed))
	cr := topicscope.NewCrawler(topicscope.CrawlerConfig{Client: client, ReferenceAllowlist: allow})
	domains := allow.Domains()
	domains = append(domains, live.Callers()...)
	in.Attestations = topicscope.AttestationIndex(cr.CheckAttestations(context.Background(), domains))

	if !topicscope.AdoptAnalysisIndex(in, live.Snapshot(in)) {
		t.Fatal("live index not adopted")
	}
	report := topicscope.Analyze(in)

	var liveJSON bytes.Buffer
	if err := report.WriteJSON(&liveJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON.Bytes(), postHoc.Bytes()) {
		t.Fatal("live report JSON differs from the campaign's post-hoc report")
	}
	if report.Render() != results.Report.Render() {
		t.Fatal("live report text differs from the campaign's post-hoc report")
	}

	// Sanity on the layout the tentpole added: snapshot and frame index
	// sit beside the journal and the frame index seeks into it.
	if _, err := os.Stat(path + ".idx"); err != nil {
		t.Fatalf("index snapshot missing: %v", err)
	}
	fi := topicscope.LoadFrameIndex(path)
	if fi == nil || len(fi.Entries) == 0 {
		t.Fatal("frame index missing or empty beside a checkpointed journal")
	}

	// Range reads ride the frame index: re-reading only the records past
	// the second-to-last boundary touches a fraction of the file.
	if len(fi.Entries) > 1 {
		from := fi.Entries[len(fi.Entries)-2].Records
		n := int64(0)
		rst, err := topicscope.ReadRecordRange(path, from, -1, func(v *topicscope.Visit) error {
			n++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(live.Visits()) - from; n != want {
			t.Fatalf("range read delivered %d records, want %d", n, want)
		}
		if rst.SeekOffset == 0 {
			t.Fatal("range read did not seek via the frame index")
		}
		if full := fileSize(t, path); rst.BytesRead >= full {
			t.Fatalf("range read %d of %d bytes — the seek bought nothing", rst.BytesRead, full)
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
