// Package topicscope is a measurement framework reproducing "A First
// View of Topics API Usage in the Wild" (Verna, Jha, Trevisan, Mellia —
// CoNEXT '24): an instrumented-browser crawler for the Google Topics
// API, a full browser-side Topics engine, the Privacy Sandbox enrolment
// artifacts (allow-list and attestation files, including Chromium's
// corrupted-database default-allow bug), a deterministic synthetic web
// substituting for the live top-50k sites, and an analysis pipeline that
// regenerates every table and figure of the paper.
//
// The package re-exports the library's supported surface; implementation
// lives under internal/. Typical use is the one-call Campaign:
//
//	results, err := topicscope.Campaign{Seed: 1, Sites: 5000}.Run(ctx)
//	fmt.Print(results.Report.Render())
//
// or the individual pieces: GenerateWorld + NewServer + NewCrawler +
// Analyze for custom experiments, and NewEngine for using the Topics API
// engine directly as a library.
package topicscope

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"time"

	"github.com/netmeasure/topicscope/internal/analysis"
	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/crawler"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/webserver"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// Campaign runs the paper's full methodology end to end: generate the
// synthetic web, serve it in-process, crawl every site Before- and
// After-Accept with the corrupted allow-list gate, check well-known
// attestations, and compute every table and figure.
type Campaign struct {
	// Seed makes the whole campaign reproducible.
	Seed uint64
	// Sites is the rank-list length (default 50,000 like the paper;
	// scaled-down runs keep the result shapes).
	Sites int
	// Workers is crawl parallelism (default 8).
	Workers int
	// Enforce runs the healthy-gate ablation instead of the paper's
	// corrupted-gate configuration.
	Enforce bool
	// OutputPath, when set, streams the visit records there as JSONL
	// (.gz transparently) through a crash-safe journal: framed records,
	// periodic fsync'd checkpoints and a manifest, so an interrupted
	// campaign resumes with topics-crawl -resume or ResumeJournal.
	OutputPath string
	// CheckpointEvery is the journal checkpoint cadence in completed
	// sites (0 = DefaultCheckpointEvery). Only meaningful with
	// OutputPath.
	CheckpointEvery int
	// Start is the virtual date of the first visit (zero = the paper's
	// March 30th 2024). Earlier dates observe fewer active callers —
	// platforms cannot call before their enrolment.
	Start time.Time
	// Vantage is the visitor jurisdiction: "eu" (default, the paper's
	// single-location setup) or "us" (§6's untested alternative:
	// geo-fenced banners, unconditional ad stacks, gdprApplies=false).
	Vantage string
	// Chaos enables the deterministic fault injector, layering the
	// paper's §2.4 live-host weather on top of the world's unreachable
	// sites; ChaosSeed drives it (independent of the world seed).
	Chaos     bool
	ChaosSeed uint64
	// Retries is the extra-attempt budget per navigation/fetch: 0 keeps
	// the default policy (2 retries), negative disables retries.
	Retries int
	// Logger receives progress (nil = silent).
	Logger *slog.Logger
	// Trace, when set, receives the campaign's span trees as JSONL: one
	// record per visit (in rank order) plus one each for the attestation
	// sweep and the analysis pass. All timestamps sit on deterministic
	// stage clocks, so the stream is byte-identical for a given seed
	// regardless of GOMAXPROCS or worker count.
	Trace io.Writer
	// Metrics, when set, is the registry the campaign records into
	// (counters and stage histograms); nil means a fresh one, returned
	// in Results.Metrics either way. Sharing a registry lets a caller
	// serve it live (DebugMux) while the campaign runs, or merge several
	// campaigns' metrics into one.
	Metrics *MetricsRegistry
	// WorldConfig overrides the generated world entirely (optional).
	WorldConfig *WorldConfig
}

// Results bundles a campaign's outputs.
type Results struct {
	// World is the synthetic web the campaign measured.
	World *World
	// Data holds every visit record.
	Data *Dataset
	// Stats summarises the crawl.
	Stats CrawlStats
	// Attestations are the well-known checks for every relevant domain.
	Attestations []AttestationRecord
	// Report holds every computed experiment.
	Report *Report
	// Analysis is the input the report was computed from, carrying the
	// already-built analysis index: further Compute* calls on it reuse
	// the one dataset pass the campaign already paid for.
	Analysis *AnalysisInput
	// Metrics is the campaign's observability registry: crawl, engine,
	// attestation and analysis counters plus per-stage latency
	// histograms. Serve it with ObsHandler or merge it into another
	// registry.
	Metrics *MetricsRegistry
	// TraceSummary aggregates the campaign's traces: visit outcomes and
	// per-stage stage-clock time (the data behind topics-monitor's
	// breakdown), populated whether or not Campaign.Trace was set.
	TraceSummary *TraceSummary
}

// Run executes the campaign.
func (c Campaign) Run(ctx context.Context) (*Results, error) {
	cfg := webworld.Config{Seed: c.Seed, NumSites: c.Sites}
	if c.WorldConfig != nil {
		cfg = *c.WorldConfig
	}
	world := webworld.Generate(cfg)
	server := webserver.New(world, nil)
	allow := attestation.NewAllowlist(world.Catalog.AllowedDomains()...)

	client := server.Client()
	if c.Chaos {
		client.Transport = chaos.NewInjector(webworld.DefaultChaos(c.ChaosSeed), client.Transport)
	}
	attempts := 0 // crawler default
	if c.Retries > 0 {
		attempts = c.Retries + 1
	} else if c.Retries < 0 {
		attempts = 1
	}
	reg := c.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	summary := obs.NewSummary()
	sink := obs.Tee{summary}
	var traceWriter *obs.TraceWriter
	if c.Trace != nil {
		traceWriter = obs.NewTraceWriter(c.Trace)
		sink = append(sink, traceWriter)
	}
	ccfg := crawler.Config{
		Client:             client,
		ReferenceAllowlist: allow,
		Enforce:            c.Enforce,
		Workers:            c.Workers,
		Collect:            true,
		Start:              c.Start,
		Vantage:            c.Vantage,
		Attempts:           attempts,
		Logger:             c.Logger,
		Metrics:            reg,
		Traces:             sink,
	}
	var journal *dataset.JournalWriter
	if c.OutputPath != "" {
		// The incremental-analysis fold rides the journal's observer
		// hook: every appended record updates a live index, and every
		// committed checkpoint serializes it beside the journal
		// (<out>.idx), so topics-monitor -live and topics-report -live
		// render the campaign's tables mid-crawl in O(tail + snapshot).
		liveIn := &analysis.Input{Allowlist: allow, Metrics: reg}
		var err error
		journal, err = dataset.CreateJournal(c.OutputPath, dataset.JournalOptions{
			CheckpointEvery: c.CheckpointEvery,
			Metrics:         reg,
			Observer:        analysis.NewLiveSink(c.OutputPath, liveIn),
		})
		if err != nil {
			return nil, err
		}
		defer journal.Abort() // no-op after Close
		ccfg.Writer = journal
	}
	cr := crawler.New(ccfg)

	res, err := cr.Run(ctx, world.List())
	if err != nil {
		// On cancellation the crawler has already drained and flushed a
		// final checkpoint; close the journal so the manifest is durable
		// before reporting the interruption.
		if journal != nil {
			if cerr := journal.Close(); cerr != nil && ctx.Err() == nil {
				return nil, fmt.Errorf("topicscope: closing dataset: %w", cerr)
			}
		}
		return nil, fmt.Errorf("topicscope: crawling: %w", err)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			return nil, fmt.Errorf("topicscope: closing dataset: %w", err)
		}
	}

	domains := allow.Domains()
	domains = append(domains, crawler.CallerDomains(res.Data)...)
	recs := cr.CheckAttestations(ctx, domains)

	// Campaign-level traces: the attestation sweep (one span per domain,
	// built from the already-sorted records) and the analysis pass, both
	// on stage clocks picking up where the crawl's virtual time ended.
	start := c.Start
	if start.IsZero() {
		start = DefaultCrawlStart
	}
	attTrace := attestationTrace(recs, reg, start.Add(res.Stats.Elapsed))
	if err := sink.WriteTrace(attTrace); err != nil {
		return nil, fmt.Errorf("topicscope: writing attestation trace: %w", err)
	}

	in := &analysis.Input{
		Data:         res.Data,
		Allowlist:    allow,
		Attestations: dataset.AttestationIndex(recs),
		Metrics:      reg,
	}
	report := analysis.Run(in)
	if err := sink.WriteTrace(analysis.BuildTrace(in, attTrace.Root.End)); err != nil {
		return nil, fmt.Errorf("topicscope: writing analysis trace: %w", err)
	}
	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			return nil, fmt.Errorf("topicscope: flushing traces: %w", err)
		}
	}
	return &Results{
		World:        world,
		Data:         res.Data,
		Stats:        res.Stats,
		Attestations: recs,
		Report:       report,
		Analysis:     in,
		Metrics:      reg,
		TraceSummary: summary,
	}, nil
}

// attestationTrace renders the well-known attestation sweep as one span
// per domain on a stage clock, charging obs.AttestCost each. Built from
// the sorted records after the fact, it is deterministic no matter how
// the concurrent checks interleaved.
func attestationTrace(recs []AttestationRecord, reg *obs.Registry, start time.Time) *obs.VisitTrace {
	tr := obs.NewTrace("attestation", start, obs.A("domains", strconv.Itoa(len(recs))))
	for i := range recs {
		rec := &recs[i]
		outcome := "missing"
		switch {
		case rec.Valid:
			outcome = "valid"
		case rec.Present:
			outcome = "invalid"
		}
		tr.Start("attest_check", obs.A("domain", rec.Domain), obs.A("outcome", outcome))
		tr.Advance(obs.AttestCost)
		tr.End()
		reg.Add("attestation_checks_total", 1, "outcome", outcome)
	}
	return &obs.VisitTrace{Phase: "attestation", Root: tr.Finish()}
}

// DefaultCrawlStart is the virtual time campaigns begin at — the paper's
// crawl date.
var DefaultCrawlStart = time.Date(2024, 3, 30, 6, 0, 0, 0, time.UTC)
