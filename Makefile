# topicscope — build/test/reproduce targets.

GO ?= go

.PHONY: all build test race race-core cover bench fuzz report clean

all: build test race-core

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the packages with real concurrency: the
# crawler's worker pool + reorder buffer and the webserver (chaos
# handler included) — fast enough to ride in `make all`.
race-core:
	$(GO) test -race ./internal/crawler/ ./internal/webserver/

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz pass over every parser.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/htmlx/
	$(GO) test -fuzz=FuzzReadAllowlist -fuzztime=10s ./internal/attestation/
	$(GO) test -fuzz=FuzzParseAttestation -fuzztime=10s ./internal/attestation/
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/tranco/

# The canonical full-scale reproduction run (EXPERIMENTS.md).
report:
	$(GO) run ./cmd/topics-report -seed 1 -sites 50000 -workers 32 \
		-out report_full.txt -json report_full.json

clean:
	rm -f report_full.txt report_full.json test_output.txt bench_output.txt
