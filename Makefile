# topicscope — build/test/reproduce targets.

GO ?= go

.PHONY: all build test race race-core storage-faults cover bench bench-json bench-gate fuzz golden report lint lint-escape load-slo live clean

all: build lint test race-core

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the packages with real concurrency: the
# crawler's worker pool + reorder buffer (including the kill-and-resume
# crash matrix and graceful-drain tests), the webserver (chaos handler
# and page cache included), the analysis index's sharded build +
# concurrent reads, the obs registry/summary sinks that crawl workers
# feed concurrently, the durable journal the crawl writes through, the
# orchestrator's coordinator (concurrent shard supervision + restart
# accounting), the chaos fault FS + fsck repair path (parallel recrawls
# through the storage seam), and the serving path under load (etld
# cache, topics engine pool, load-harness workers) — fast enough to
# ride in `make all`.
race-core:
	$(GO) test -race ./internal/analysis/ ./internal/crawler/ ./internal/webserver/ ./internal/obs/ ./internal/durable/ ./internal/dataset/ ./internal/orchestrator/ ./internal/etld/ ./internal/topics/ ./internal/load/ ./internal/chaos/ ./internal/fsck/

# The storage-fault matrix: every artifact-level fault class (ENOSPC,
# EIO blips, short writes, failed fsyncs, torn renames, bit flips)
# against the write-path retry policy, the crash matrix under storage
# weather, and the fsck repair-parity invariant — inject, verify,
# repair, byte-identical.
storage-faults:
	$(GO) test -count=1 ./internal/chaos/ ./internal/fsck/
	$(GO) test -count=1 -run 'TestStorageFault|TestWriteFileAtomicAbortMatrix|TestSyncDir|TestRetryPolicy' ./internal/crawler/ ./internal/durable/
	$(GO) test -count=1 -race -run 'TestRepairParityFaultMatrix|TestCampaignSurvivesTransientStorageFaults|TestCoordinatorFsckHealsCorruptShard' ./internal/fsck/ ./internal/orchestrator/

# Static analysis: go vet plus the repo's own invariant suite
# (cmd/topicslint: determinism, vclock, etld, errwrap, atomicwrite,
# hotpath, locks, goroleak, structlayout — see DESIGN.md
# "Machine-enforced invariants"). The binary is compiled once (cached by
# the go build cache) and then run over every package; topicslint loads
# packages from source, so it needs no module proxy or network.
lint:
	$(GO) vet ./...
	$(GO) build -o $(CURDIR)/.bin/topicslint ./cmd/topicslint
	$(CURDIR)/.bin/topicslint ./...

# Escape-analysis cross-check of the hotpath zeroalloc contracts: the
# static hotpath analyzer is a conservative syntactic approximation;
# `go build -gcflags=-m=2` is the compiler's ground truth. Separate
# from `lint` because it recompiles the whole tree with escape
# diagnostics on.
lint-escape:
	$(GO) build -o $(CURDIR)/.bin/topicslint ./cmd/topicslint
	$(CURDIR)/.bin/topicslint -escape ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark baseline: the committed BENCH_report.json
# is the reference later sessions diff against.
bench-json:
	$(GO) test -run '^$$' -bench=. -benchmem . | $(GO) run ./cmd/benchjson > BENCH_report.json

# Benchmark regression gate: re-run the suite and fail when a
# machine-independent metric regressed more than 20% against the
# committed baseline — allocs/op, B/op, and the virtual serving-path
# SLO metrics (p50_ms/p99_ms/p999_ms up, req_s down). ns/op is
# advisory — it depends on the host. The short -benchtime keeps CI
# cheap; allocation counts stabilise within a few iterations and the
# SLO metrics are identical for any iteration count.
bench-gate:
	$(GO) test -run '^$$' -bench=. -benchtime=0.2s -benchmem . \
		| $(GO) run ./cmd/benchjson -check BENCH_report.json -tol 0.2

# Serving-path SLO gate: one deterministic load run at the canonical
# seed, failing on the virtual latency/throughput budget. The bounds
# leave ~2x headroom over the committed baseline (p50 16ms / p99 32ms /
# p999 267ms / 3792 req/s virtual at seed 1) so only a real serving-path
# regression trips them, not bucket-boundary jitter from a new mix.
load-slo:
	$(GO) run ./cmd/topics-load -seed 1 -sites 1500 -requests 20000 -rate 5000 \
		-slo-p50-ms 64 -slo-p99-ms 300 -slo-p999-ms 600 -slo-req-s 2000 > /dev/null

# Short fuzz pass over every parser.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/htmlx/
	$(GO) test -fuzz=FuzzReadAllowlist -fuzztime=10s ./internal/attestation/
	$(GO) test -fuzz=FuzzParseAttestation -fuzztime=10s ./internal/attestation/
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/tranco/
	$(GO) test -fuzz=FuzzTraceDecode -fuzztime=10s ./internal/obs/
	$(GO) test -fuzz=FuzzCompletedSites -fuzztime=10s ./internal/dataset/
	$(GO) test -fuzz=FuzzReadVisits -fuzztime=10s ./internal/dataset/
	$(GO) test -fuzz=FuzzScanRecords -fuzztime=10s ./internal/durable/
	$(GO) test -fuzz=FuzzManifestDecode -fuzztime=10s ./internal/durable/
	$(GO) test -fuzz=FuzzFrameIndexDecode -fuzztime=10s ./internal/durable/
	$(GO) test -fuzz=FuzzFsckReportDecode -fuzztime=10s ./internal/fsck/

# The incremental-analysis equivalence suite: fold-vs-build parity at
# every prefix, snapshot round trip + corruption degradation, the
# crash/resume index-snapshot matrix, live-vs-merged shard property, and
# the public-API live report byte-identity (see DESIGN.md "Incremental
# analysis").
live:
	$(GO) test -run 'TestIncrementalIndexParity|TestLiveIndexMergeProperty|TestLiveSnapshotRoundTrip|TestLiveSnapshotCorruptionDegrades|TestLiveSinkResumeAcrossCheckpoint' -count=1 ./internal/analysis/
	$(GO) test -run 'TestCrashResumeIndexSnapshot|TestLiveReportReadsOnlyTail' -count=1 ./internal/crawler/
	$(GO) test -run 'TestFrameIndex' -count=1 ./internal/durable/
	$(GO) test -run 'TestLiveReportMatchesPostHoc' -count=1 .

# Regenerate the committed end-to-end pipeline fixture
# (testdata/golden_pipeline.json) after an intentional output change;
# review the diff before committing.
golden:
	UPDATE_GOLDEN=1 $(GO) test -run '^TestPipelineGolden$$' .

# The canonical full-scale reproduction run (EXPERIMENTS.md).
report:
	$(GO) run ./cmd/topics-report -seed 1 -sites 50000 -workers 32 \
		-out report_full.txt -json report_full.json

clean:
	rm -f report_full.txt report_full.json test_output.txt bench_output.txt
	rm -rf .bin
