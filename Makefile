# topicscope — build/test/reproduce targets.

GO ?= go

.PHONY: all build test race race-core cover bench bench-json fuzz report lint clean

all: build lint test race-core

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the packages with real concurrency: the
# crawler's worker pool + reorder buffer, the webserver (chaos handler
# and page cache included), and the analysis index's sharded build +
# concurrent reads — fast enough to ride in `make all`.
race-core:
	$(GO) test -race ./internal/analysis/ ./internal/crawler/ ./internal/webserver/

# Static analysis: go vet plus the repo's own invariant suite
# (cmd/topicslint: determinism, vclock, etld, errwrap — see DESIGN.md
# "Machine-enforced invariants"). The binary is compiled once (cached by
# the go build cache) and then run over every package; topicslint loads
# packages from source, so it needs no module proxy or network.
lint:
	$(GO) vet ./...
	$(GO) build -o $(CURDIR)/.bin/topicslint ./cmd/topicslint
	$(CURDIR)/.bin/topicslint ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark baseline: the committed BENCH_report.json
# is the reference later sessions diff against.
bench-json:
	$(GO) test -run '^$$' -bench=. -benchmem . | $(GO) run ./cmd/benchjson > BENCH_report.json

# Short fuzz pass over every parser.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/htmlx/
	$(GO) test -fuzz=FuzzReadAllowlist -fuzztime=10s ./internal/attestation/
	$(GO) test -fuzz=FuzzParseAttestation -fuzztime=10s ./internal/attestation/
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/tranco/

# The canonical full-scale reproduction run (EXPERIMENTS.md).
report:
	$(GO) run ./cmd/topics-report -seed 1 -sites 50000 -workers 32 \
		-out report_full.txt -json report_full.json

clean:
	rm -f report_full.txt report_full.json test_output.txt bench_output.txt
	rm -rf .bin
