package topicscope_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/netmeasure/topicscope"
)

// ExampleCampaign runs a small end-to-end study and prints the Table 1
// allow-list block, which is invariant across runs because it derives
// from the constant platform catalog.
func ExampleCampaign() {
	results, err := topicscope.Campaign{Seed: 1, Sites: 400, Workers: 8}.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	t1 := results.Report.Table1
	fmt.Println("Allowed:", t1.Allowed)
	fmt.Println("Allowed & !Attested:", t1.AllowedNotAttested)
	fmt.Println("Allowed & Attested:", t1.AllowedAttested)
	// Output:
	// Allowed: 193
	// Allowed & !Attested: 12
	// Allowed & Attested: 181
}

// ExampleNewEngine shows the Topics engine as a standalone library: a
// week of browsing, then a browsingTopics() call by a caller that
// observed the user.
func ExampleNewEngine() {
	tx := topicscope.NewTaxonomy()
	cl := topicscope.NewClassifier(tx)
	clock := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	engine := topicscope.NewEngine(tx, cl, topicscope.EngineConfig{
		Seed:    7,
		NoNoise: true,
		Now:     func() time.Time { return clock },
	})

	for _, site := range []string{"chess-club.org", "daily-news.com", "travel-hotels.net", "pizza-corner.io", "poetry-press.com"} {
		engine.RecordVisit(site)
		engine.Observe(site, "adtech.example")
	}
	clock = clock.Add(7 * 24 * time.Hour) // the epoch completes

	for _, r := range engine.BrowsingTopics("adtech.example", "some-publisher.com") {
		fmt.Println(r.Topic.Path, r.TaxonomyVersion)
	}
	// Output:
	// /Games/Board Games/Chess & Abstract Strategy Games chrome.2
}

// ExampleNewCorruptedGate demonstrates the §2.3 Chromium bug: with a
// corrupted allow-list database, every caller is allowed.
func ExampleNewCorruptedGate() {
	gate := topicscope.NewCorruptedGate()
	d := gate.Check("totally-unenrolled.example")
	fmt.Println(d.Allowed, d.Reason)
	// Output:
	// true default-allow-corrupt-db
}

// ExampleAnalyzeAlternation detects the paper's A/B-test signature in a
// repeated-visit ON/OFF series.
func ExampleAnalyzeAlternation() {
	series := []bool{true, true, true, true, false, false, true, true, true, false, false, false}
	a := topicscope.AnalyzeAlternation(series)
	fmt.Printf("on=%.2f transitions=%d periodic=%v\n", a.OnFraction, a.Transitions, a.Periodic())
	// Output:
	// on=0.58 transitions=3 periodic=true
}
