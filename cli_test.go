package topicscope_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/netmeasure/topicscope/internal/durable"
)

// TestCLIPipeline builds the real binaries and drives the decomposed
// workflow the README documents: topics-world → topics-crawl →
// topics-analyze. Guarded by -short because it shells out to the Go
// toolchain.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI pipeline")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }

	for _, tool := range []string{"topics-world", "topics-crawl", "topics-analyze"} {
		cmd := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin(name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	list := filepath.Join(dir, "tranco.csv")
	spec := filepath.Join(dir, "world.json")
	out := run("topics-world", "-seed", "9", "-sites", "300",
		"-list", list, "-spec", spec,
		"-allowlist", filepath.Join(dir, "preload.dat"), "-corrupt")
	if !strings.Contains(out, "CORRUPTED") {
		t.Errorf("topics-world output: %s", out)
	}
	if fi, err := os.Stat(spec); err != nil || fi.Size() == 0 {
		t.Fatalf("world spec missing: %v", err)
	}

	crawl := filepath.Join(dir, "crawl.jsonl.gz")
	attest := filepath.Join(dir, "attest.jsonl")
	allow := filepath.Join(dir, "allow.dat")
	out = run("topics-crawl", "-seed", "9", "-sites", "300", "-quiet",
		"-out", crawl, "-attest", attest, "-allowlist", allow)
	if !strings.Contains(out, "attempted=300") {
		t.Errorf("topics-crawl output: %s", out)
	}

	// Resume over the same output is a no-op crawl.
	out = run("topics-crawl", "-seed", "9", "-sites", "300", "-quiet", "-resume",
		"-out", crawl, "-attest", attest, "-allowlist", allow)
	if !strings.Contains(out, "skipping 300") || !strings.Contains(out, "attempted=0") {
		t.Errorf("resume output: %s", out)
	}

	csv := filepath.Join(dir, "calls.csv")
	out = run("topics-analyze", "-data", crawl, "-attest", attest,
		"-allowlist", allow, "-exp", "T1", "-csv", csv)
	if !strings.Contains(out, "Allowed") || !strings.Contains(out, "193") {
		t.Errorf("topics-analyze T1 output: %s", out)
	}
	csvBytes, err := os.ReadFile(csv)
	if err != nil || !strings.HasPrefix(string(csvBytes), "site,rank,phase,caller") {
		t.Errorf("calls CSV: %v", err)
	}

	for _, exp := range []string{"D1", "D1R", "D2", "F2", "F3", "A1", "F5", "F6", "F7", "E1", "X1", "all"} {
		out := run("topics-analyze", "-data", crawl, "-attest", attest,
			"-allowlist", allow, "-exp", exp)
		if len(out) == 0 {
			t.Errorf("experiment %s produced no output", exp)
		}
	}

	// Longitudinal mode: compare the crawl with itself — zero drift.
	out = run("topics-analyze", "-data", crawl, "-data2", crawl,
		"-attest", attest, "-allowlist", allow)
	if !strings.Contains(out, "max drift: 0.0%") {
		t.Errorf("self-comparison should have zero drift:\n%s", out)
	}
}

// TestCLIShardedCampaign drives the distributed pipeline end to end
// with real worker processes: topics-orch -worker-bin spawns
// topics-crawl -shard workers, merges their journals, and the merged
// dataset must be byte-identical to a plain single-process topics-crawl
// of the same campaign. topics-monitor -shards then renders the status
// files the workers left behind.
func TestCLIShardedCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping sharded CLI campaign")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"topics-crawl", "topics-orch", "topics-monitor"} {
		cmd := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin(name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	campaign := []string{"-seed", "9", "-sites", "120", "-quiet", "-chaos", "-chaos-seed", "5"}

	single := filepath.Join(dir, "single.jsonl")
	run("topics-crawl", append(campaign,
		"-out", single,
		"-attest", filepath.Join(dir, "sa.jsonl"),
		"-allowlist", filepath.Join(dir, "sal.dat"))...)

	merged := filepath.Join(dir, "merged.jsonl")
	report := filepath.Join(dir, "report.json")
	out := run("topics-orch", append(campaign,
		"-shards", "4", "-worker-bin", bin("topics-crawl"),
		"-out", merged, "-report", report,
		"-attest", filepath.Join(dir, "ma.jsonl"),
		"-allowlist", filepath.Join(dir, "mal.dat"))...)
	if !strings.Contains(out, "4 shards, 0 restarts") {
		t.Errorf("topics-orch output: %s", out)
	}

	singleBytes, err := durable.CanonicalBytes(single)
	if err != nil {
		t.Fatal(err)
	}
	mergedBytes, err := durable.CanonicalBytes(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(singleBytes) == 0 || !bytes.Equal(singleBytes, mergedBytes) {
		t.Fatalf("exec-sharded dataset differs from single-process crawl (%d vs %d bytes)", len(mergedBytes), len(singleBytes))
	}
	if fi, err := os.Stat(report); err != nil || fi.Size() == 0 {
		t.Fatalf("report artifact missing: %v", err)
	}

	out = run("topics-monitor", "-shards", merged)
	if !strings.Contains(out, "(4 shards)") || !strings.Contains(out, "done") {
		t.Errorf("topics-monitor -shards output: %s", out)
	}
}

// TestCLITLSPipeline drives topics-serve -tls and topics-crawl
// -connect-tls over a real HTTPS listener.
func TestCLITLSPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping TLS CLI pipeline")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, tool := range []string{"topics-serve", "topics-crawl"} {
		cmd := exec.Command("go", "build", "-o", bin(tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	caPath := filepath.Join(dir, "ca.pem")
	serve := exec.Command(bin("topics-serve"), "-seed", "13", "-sites", "120",
		"-addr", "127.0.0.1:0", "-tls", "-ca-cert", caPath)
	stdout, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve.Process.Kill() //nolint:errcheck // test teardown

	// Parse the bound address from the banner line.
	buf := make([]byte, 4096)
	n, _ := stdout.Read(buf)
	banner := string(buf[:n])
	i := strings.Index(banner, "https://")
	if i < 0 {
		t.Fatalf("no https address in banner: %q", banner)
	}
	addr := banner[i+len("https://"):]
	addr = strings.Fields(addr)[0]

	out, err := exec.Command(bin("topics-crawl"), "-seed", "13", "-sites", "120",
		"-quiet", "-connect-tls", addr, "-ca-cert", caPath,
		"-out", filepath.Join(dir, "c.jsonl"),
		"-attest", filepath.Join(dir, "a.jsonl"),
		"-allowlist", filepath.Join(dir, "al.dat")).CombinedOutput()
	if err != nil {
		t.Fatalf("topics-crawl over TLS: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "attempted=120") {
		t.Errorf("TLS crawl output: %s", out)
	}
}
