package load

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/webworld"
)

var testWorld = webworld.Generate(webworld.Config{Seed: 21, NumSites: 600})

func runJSON(t *testing.T, cfg Config) ([]byte, *Report) {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes(), rep
}

// TestLoadReportDeterministicAcrossWorkers is the harness's core
// contract: the serialized report is byte-identical no matter how many
// workers execute the schedule or how many CPUs the runtime uses.
func TestLoadReportDeterministicAcrossWorkers(t *testing.T) {
	base := Config{World: testWorld, Seed: 9, Requests: 4000, Rate: 3000, Users: 8}

	run := func(procs, workers int) []byte {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		cfg := base
		cfg.Workers = workers
		b, _ := runJSON(t, cfg)
		return b
	}

	serial := run(1, 1)
	for _, workers := range []int{2, 8} {
		parallel := run(runtime.NumCPU(), workers)
		if !bytes.Equal(serial, parallel) {
			aLines := bytes.Split(serial, []byte("\n"))
			bLines := bytes.Split(parallel, []byte("\n"))
			for i := 0; i < len(aLines) && i < len(bLines); i++ {
				if !bytes.Equal(aLines[i], bLines[i]) {
					t.Fatalf("report diverges at line %d (workers=%d):\n 1 worker: %s\n %d workers: %s",
						i+1, workers, aLines[i], workers, bLines[i])
				}
			}
			t.Fatalf("report lengths diverge (workers=%d): %d vs %d bytes", workers, len(serial), len(parallel))
		}
	}
}

// TestLoadReportShape sanity-checks the aggregates: counts add up,
// quantiles are ordered, all three paths saw traffic, both gate
// outcomes occurred.
func TestLoadReportShape(t *testing.T) {
	_, rep := runJSON(t, Config{World: testWorld, Seed: 3, Requests: 5000, Workers: 4, Users: 8})

	if rep.Overall.Requests != int64(rep.Requests) {
		t.Errorf("overall requests %d != %d", rep.Overall.Requests, rep.Requests)
	}
	var sum int64
	for _, p := range rep.Paths {
		sum += p.Requests
		if p.Requests == 0 {
			t.Errorf("path %s saw no traffic", p.Path)
		}
		if !(p.P50MS <= p.P99MS && p.P99MS <= p.P999MS && p.P999MS <= p.MaxMS) {
			t.Errorf("path %s quantiles unordered: p50=%v p99=%v p999=%v max=%v",
				p.Path, p.P50MS, p.P99MS, p.P999MS, p.MaxMS)
		}
		if p.MeanMS <= 0 {
			t.Errorf("path %s mean %v", p.Path, p.MeanMS)
		}
	}
	if sum != int64(rep.Requests) {
		t.Errorf("per-path requests sum %d != %d", sum, rep.Requests)
	}
	if rep.AttestAllowed == 0 || rep.AttestBlocked == 0 {
		t.Errorf("gate outcomes not both exercised: allowed=%d blocked=%d", rep.AttestAllowed, rep.AttestBlocked)
	}
	if rep.TopicsReturned == 0 {
		t.Error("no topics returned — engine prewarm or caller mix broken")
	}
	if rep.PageBytes == 0 {
		t.Error("no page bytes served")
	}
	if rep.ReqPerSec <= 0 || rep.MakespanMS <= 0 {
		t.Errorf("throughput not computed: req/s=%v makespan=%vms", rep.ReqPerSec, rep.MakespanMS)
	}
	// The offered rate should roughly bound the makespan: 5000 requests
	// at 2000/s is 2.5 virtual seconds of arrivals plus tail latency.
	if rep.MakespanMS > 10000 {
		t.Errorf("makespan %vms implausible for %d requests at %v/s", rep.MakespanMS, rep.Requests, rep.RatePerSec)
	}
}

// TestLoadRegistryMergesIntoExternal: topics-serve hands the harness
// its /__metrics registry; the run's histograms and counters must land
// there with commutative-merge semantics.
func TestLoadRegistryMergesIntoExternal(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Add("preexisting_total", 5)
	_, rep := runJSON(t, Config{World: testWorld, Seed: 3, Requests: 1000, Workers: 2, Users: 4, Registry: reg})
	snap := reg.Snapshot()
	if got := snap.Counter("preexisting_total"); got != 5 {
		t.Errorf("merge clobbered existing counter: %d", got)
	}
	var total int64
	for _, p := range []string{"attest", "page", "topics"} {
		total += snap.Counter("load_requests_total", "path", p)
	}
	if total != int64(rep.Requests) {
		t.Errorf("external registry holds %d requests, want %d", total, rep.Requests)
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "load_latency_all" {
			found = true
			if h.Count != int64(rep.Requests) {
				t.Errorf("load_latency_all count %d, want %d", h.Count, rep.Requests)
			}
			if h.P50NS <= 0 || h.P99NS < h.P50NS || h.P999NS < h.P99NS {
				t.Errorf("quantiles unordered: %d/%d/%d", h.P50NS, h.P99NS, h.P999NS)
			}
		}
	}
	if !found {
		t.Error("load_latency_all histogram missing from external registry")
	}
}

// TestScheduleArrivals pins the two arrival processes: monotone
// non-decreasing offsets, the uniform process exactly at i/rate, the
// poisson process averaging 1/rate.
func TestScheduleArrivals(t *testing.T) {
	cfg := Config{World: testWorld, Seed: 11, Requests: 8000, Rate: 1000}.withDefaults()
	sites := []string{"a.com", "b.com"}
	callers := []string{"x.com"}
	plans := planUsers(cfg, sites, callers)

	for _, arrival := range []Arrival{ArrivalPoisson, ArrivalUniform} {
		cfg.Arrival = arrival
		sched := buildSchedule(cfg, sites, callers, plans)
		if len(sched) != cfg.Requests {
			t.Fatalf("%s: %d requests, want %d", arrival, len(sched), cfg.Requests)
		}
		var prev time.Duration
		for i, r := range sched {
			if r.at < prev {
				t.Fatalf("%s: arrival %d at %v before %v", arrival, i, r.at, prev)
			}
			prev = r.at
		}
		span := sched[len(sched)-1].at.Seconds()
		wantSpan := float64(cfg.Requests) / cfg.Rate
		if span < wantSpan*0.9 || span > wantSpan*1.1 {
			t.Errorf("%s: schedule spans %.2fs, want ≈%.2fs", arrival, span, wantSpan)
		}
	}
}

// TestSLOCheck covers both sides of every objective.
func TestSLOCheck(t *testing.T) {
	rep := &Report{
		ReqPerSec: 1500,
		Overall:   PathStats{P50MS: 12, P99MS: 140, P999MS: 300},
	}
	if v := rep.Check(SLO{MaxP50: 20 * time.Millisecond, MaxP99: 200 * time.Millisecond, MaxP999: 400 * time.Millisecond, MinReqPerSec: 1000}); len(v) != 0 {
		t.Errorf("healthy report flagged: %v", v)
	}
	v := rep.Check(SLO{MaxP50: 10 * time.Millisecond, MaxP99: 100 * time.Millisecond, MaxP999: 200 * time.Millisecond, MinReqPerSec: 2000})
	if len(v) != 4 {
		t.Errorf("want 4 violations, got %d: %v", len(v), v)
	}
	for _, msg := range v {
		if !strings.Contains(msg, "SLO") {
			t.Errorf("violation %q lacks context", msg)
		}
	}
	if v := rep.Check(SLO{}); len(v) != 0 {
		t.Errorf("zero SLO must check nothing, got %v", v)
	}
}

// TestLoadConcurrentStress drives many workers over one run (race-core
// runs this under -race): the shared page cache, etld cache, engine
// pool, and per-worker registries must be data-race free.
func TestLoadConcurrentStress(t *testing.T) {
	_, rep := runJSON(t, Config{World: testWorld, Seed: 5, Requests: 3000, Workers: 16, Users: 4})
	if rep.Overall.Requests != 3000 {
		t.Fatalf("requests %d", rep.Overall.Requests)
	}
}
