// Package load is a deterministic open-loop load generator for the
// serving path: the webserver's page render, the topics engine's
// browsingTopics() answer, and the attestation gate.
//
// Open-loop means arrivals are scheduled ahead of time from the offered
// rate — a request's start time never depends on when earlier requests
// finished, so the harness measures the service-time distribution the
// paper's measurement loop would see at a given traffic level rather
// than the closed-loop "as fast as one caller can go" number.
//
// Everything runs on virtual time. The arrival schedule is drawn
// single-threaded from a seeded PCG source, per-request latency is a
// pure function of the request (the obs stage-clock cost model plus a
// deterministic heavy-tail jitter), and every recorded aggregate —
// latency histograms, counters, the virtual makespan — merges
// commutatively across workers. The resulting report is therefore
// byte-identical across GOMAXPROCS and worker counts, the same
// invariant the crawler and analysis index already hold
// (TestLoadReportDeterministicAcrossWorkers proves it).
package load

import (
	"fmt"
	"math/bits"
	"net/http"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/classifier"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/taxonomy"
	"github.com/netmeasure/topicscope/internal/topics"
	"github.com/netmeasure/topicscope/internal/vclock"
	"github.com/netmeasure/topicscope/internal/webserver"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// DefaultStart anchors the virtual run epoch. Any fixed instant works;
// it only has to be the same for every worker and every run.
var DefaultStart = time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)

// Config parameterises one load run.
type Config struct {
	// World is the synthetic web to serve. Required.
	World *webworld.World
	// Seed derives the schedule, the request mix, and every per-user
	// browsing history.
	Seed uint64
	// Requests is the number of requests to issue (default 10000).
	Requests int
	// Rate is the offered load in arrivals per virtual second
	// (default 2000).
	Rate float64
	// Arrival selects the inter-arrival process (default poisson).
	Arrival Arrival
	// Workers is the number of request-executing goroutines. It shapes
	// wall-clock speed only — the report is byte-identical for any
	// value (default GOMAXPROCS).
	Workers int
	// Users is the size of the simulated browser-engine pool answering
	// topics calls, each prewarmed with three epochs of seeded browsing
	// history (default 32).
	Users int
	// Mix weighs the request paths; zero means the 60/30/10
	// page/topics/attest default.
	Mix Mix
	// Start anchors virtual time (default DefaultStart).
	Start time.Time
	// Registry, when set, receives a merged copy of the run's counters
	// and latency histograms (topics-serve feeds its /__metrics
	// registry this way). Nil keeps the run self-contained.
	Registry *obs.Registry
}

// Mix weighs the three serving paths in the request schedule.
type Mix struct {
	Page   float64
	Topics float64
	Attest float64
}

func (m Mix) orDefault() Mix {
	if m.Page <= 0 && m.Topics <= 0 && m.Attest <= 0 {
		return Mix{Page: 0.6, Topics: 0.3, Attest: 0.1}
	}
	return m
}

func (c Config) withDefaults() Config {
	if c.Requests <= 0 {
		c.Requests = 10000
	}
	if c.Rate <= 0 {
		c.Rate = 2000
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Users <= 0 {
		c.Users = 32
	}
	c.Mix = c.Mix.orDefault()
	if c.Start.IsZero() {
		c.Start = DefaultStart
	}
	return c
}

// Virtual service-cost model: each path's latency is the obs
// stage-clock base cost, plus work actually performed (bytes rendered,
// topics returned), plus a deterministic heavy-tail jitter.
const (
	// pageByteCost charges for shipping the rendered page body.
	pageByteCost = 500 * time.Nanosecond
	// topicsResultCost charges per topic assembled into the response.
	topicsResultCost = 500 * time.Microsecond
	// jitterUnit scales the heavy-tail jitter; jitterMaxExp caps its
	// exponent, bounding the tail at jitterUnit << jitterMaxExp.
	jitterUnit   = 250 * time.Microsecond
	jitterMaxExp = 10
)

// jitterFor derives the request's tail jitter from its schedule index:
// a geometric exponent from the trailing-zero count of a mixed hash.
// P(exponent = k) = 2^-(k+1), so the median request pays one unit while
// one in a thousand pays ~2^9 units — a realistic tail, reproducible on
// every platform because it never touches the floating-point math that
// makes log-based samplers architecture-sensitive.
func jitterFor(seed uint64, i int) time.Duration {
	h := (uint64(i) + 1) * 0x9E3779B97F4A7C15
	h ^= seed
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	k := bits.TrailingZeros64(h | 1<<jitterMaxExp)
	return jitterUnit << k
}

// discardWriter is a reusable http.ResponseWriter that counts body
// bytes. One lives per worker; the header map persists across requests
// so the steady-state serving path allocates nothing.
type discardWriter struct {
	h      http.Header
	status int
	bytes  int64
}

func (w *discardWriter) Header() http.Header { return w.h }
func (w *discardWriter) Write(p []byte) (int, error) {
	w.bytes += int64(len(p))
	return len(p), nil
}
func (w *discardWriter) WriteHeader(code int) { w.status = code }

// Run executes the load schedule and returns the aggregated report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.World == nil {
		return nil, fmt.Errorf("load: Config.World is required")
	}

	var sites []string
	for _, s := range cfg.World.Sites {
		if s.Reachable && s.RedirectTo == "" {
			sites = append(sites, s.Domain)
		}
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("load: world has no reachable sites")
	}
	var callers []string
	for _, p := range cfg.World.Catalog.All() {
		callers = append(callers, p.Domain)
	}

	plans := planUsers(cfg, sites, callers)
	schedule := buildSchedule(cfg, sites, callers, plans)
	engines := prewarmEngines(cfg, plans)

	// The serving clock is frozen at the run epoch: requests carry
	// virtual offsets, and the engines' current epoch never rotates
	// mid-run (witness-set updates are commutative, so concurrent calls
	// cannot change any answer).
	clk := vclock.New(cfg.Start)
	server := webserver.New(cfg.World, clk.Now)
	gate := attestation.NewEnforcingGate(
		attestation.NewAllowlist(cfg.World.Catalog.AllowedDomains()...))

	agg := obs.NewRegistry()
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mergeMu sync.Mutex
		maxEnd  time.Duration
		totals  workerTotals
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := runWorker(cfg, schedule, server, gate, engines, &next)
			mergeMu.Lock()
			agg.Merge(st.reg)
			if st.maxEnd > maxEnd {
				maxEnd = st.maxEnd
			}
			totals.add(st.totals)
			mergeMu.Unlock()
		}()
	}
	wg.Wait()
	// Fold the run totals into the registry so shard aggregation
	// (topics-monitor -shards) sees them alongside the histograms.
	totals.publish(agg)
	clk.Set(cfg.Start.Add(maxEnd))

	if cfg.Registry != nil {
		cfg.Registry.Merge(agg)
	}
	return buildReport(cfg, len(sites), agg, maxEnd), nil
}

// workerTotals are the plain counters a worker accumulates locally (a
// registry Add per request would re-render the metric key every time).
type workerTotals struct {
	requests       [pathCount]int64
	attestAllowed  int64
	attestBlocked  int64
	topicsReturned int64
	pageBytes      int64
}

func (t *workerTotals) add(o workerTotals) {
	for i := range t.requests {
		t.requests[i] += o.requests[i]
	}
	t.attestAllowed += o.attestAllowed
	t.attestBlocked += o.attestBlocked
	t.topicsReturned += o.topicsReturned
	t.pageBytes += o.pageBytes
}

func (t *workerTotals) publish(reg *obs.Registry) {
	for p, n := range t.requests {
		reg.Add("load_requests_total", n, "path", pathKind(p).String())
	}
	reg.Add("load_attest_allowed_total", t.attestAllowed)
	reg.Add("load_attest_blocked_total", t.attestBlocked)
	reg.Add("load_topics_returned_total", t.topicsReturned)
	reg.Add("load_page_bytes_total", t.pageBytes)
}

// workerState is one worker's run result, merged after the pool drains.
type workerState struct {
	reg    *obs.Registry
	maxEnd time.Duration
	totals workerTotals
}

// worker bundles one worker's reusable request state. Everything the
// hot loop touches is allocated here, once per worker, so the loop
// itself stays allocation-free — the setup/loop split is what lets
// topicslint's hotpath analyzer enforce that statically.
type worker struct {
	seed     uint64
	schedule []request
	server   *webserver.Server
	gate     *attestation.Gate
	engines  []*topics.Engine
	next     *atomic.Int64
	st       workerState
	hists    [pathCount]*obs.Histogram
	all      *obs.Histogram
	w        discardWriter
	req      http.Request
	resBuf   []topics.Result
}

// runWorker is the per-worker setup: registry, histogram handles, the
// reusable request/writer pair and the sized topics buffer. The drain
// loop itself lives in (*worker).loop.
func runWorker(cfg Config, schedule []request, server *webserver.Server, gate *attestation.Gate, engines []*topics.Engine, next *atomic.Int64) workerState {
	wk := &worker{
		seed:     cfg.Seed,
		schedule: schedule,
		server:   server,
		gate:     gate,
		engines:  engines,
		next:     next,
		st:       workerState{reg: obs.NewRegistry()},
		w:        discardWriter{h: make(http.Header)},
		req: http.Request{
			Method: "GET",
			URL:    &url.URL{Path: "/"},
			Header: make(http.Header),
		},
		resBuf: make([]topics.Result, 0, topics.DefaultEpochsToShare),
	}
	for p := range wk.hists {
		wk.hists[p] = wk.st.reg.Hist("load_latency", "path", pathKind(p).String())
	}
	wk.all = wk.st.reg.Hist("load_latency_all")
	wk.loop()
	return wk.st
}

// loop pulls requests off the shared schedule until it is drained.
// Every mutation it performs — histogram observes, counter adds, engine
// witness marks, page-cache fills — is commutative, which is what makes
// the merged result independent of how requests land on workers.
//
//topicslint:hotpath zeroalloc
func (wk *worker) loop() {
	for {
		i := int(wk.next.Add(1)) - 1
		if i >= len(wk.schedule) {
			return
		}
		r := &wk.schedule[i]
		var lat time.Duration
		switch r.path {
		case pathPage:
			wk.w.bytes = 0
			wk.req.Host = r.site
			if r.consent {
				wk.req.Header["Cookie"] = cookieConsent
			} else {
				delete(wk.req.Header, "Cookie")
			}
			if r.eu {
				delete(wk.req.Header, webserver.VantageHeader)
			} else {
				wk.req.Header[webserver.VantageHeader] = vantageNonEU
			}
			wk.server.ServeHTTP(&wk.w, &wk.req)
			wk.st.totals.pageBytes += wk.w.bytes
			lat = obs.FetchCost + time.Duration(wk.w.bytes)*pageByteCost
		case pathTopics:
			wk.resBuf = wk.engines[r.user].AppendBrowsingTopics(wk.resBuf[:0], r.caller, r.site)
			wk.st.totals.topicsReturned += int64(len(wk.resBuf))
			lat = obs.TopicsCallCost + time.Duration(len(wk.resBuf))*topicsResultCost
		case pathAttest:
			d := wk.gate.Check(r.caller)
			if d.Allowed {
				wk.st.totals.attestAllowed++
			} else {
				wk.st.totals.attestBlocked++
			}
			lat = obs.AttestCost
		}
		lat += jitterFor(wk.seed, i)
		wk.hists[r.path].Observe(lat)
		wk.all.Observe(lat)
		wk.st.totals.requests[r.path]++
		if end := r.at + lat; end > wk.st.maxEnd {
			wk.st.maxEnd = end
		}
	}
}

// Shared, never-mutated header values (see webserver.contentTypeHTML
// for the pattern): assigning them avoids Header().Set's per-call
// slice allocation.
var (
	cookieConsent = []string{webserver.ConsentCookie + "=1"}
	vantageNonEU  = []string{"us"}
)

// prewarmEngines builds the per-user engine pool: each engine gets
// three completed epochs of the user's planned browsing, with the
// user's callers witnessing every visit, then its clock freezes at the
// run epoch. Engines are independent, so the pool warms in parallel
// regardless of the final worker count.
func prewarmEngines(cfg Config, plans []userPlan) []*topics.Engine {
	tx := taxonomy.NewV2()
	cl := classifier.New(tx)
	engines := make([]*topics.Engine, len(plans))
	var wg sync.WaitGroup
	for u := range plans {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			clk := vclock.New(cfg.Start.Add(-time.Duration(topics.DefaultEpochsToShare) * topics.DefaultEpochDuration))
			eng := topics.NewEngine(tx, cl, topics.Config{
				Seed: cfg.Seed ^ (uint64(u)+1)*0x9E3779B97F4A7C15,
				Now:  clk.Now,
			})
			for epoch := 0; epoch < topics.DefaultEpochsToShare; epoch++ {
				for _, site := range plans[u].sites {
					eng.RecordVisit(site)
					for _, caller := range plans[u].callers {
						eng.Observe(site, caller)
					}
				}
				clk.Advance(topics.DefaultEpochDuration)
				eng.AdvanceEpoch()
			}
			engines[u] = eng
		}(u)
	}
	wg.Wait()
	return engines
}
