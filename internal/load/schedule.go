package load

import (
	"math/rand/v2"
	"time"
)

// Arrival selects the inter-arrival process of the open-loop schedule.
type Arrival string

const (
	// ArrivalPoisson draws exponential inter-arrival gaps — memoryless
	// traffic, the standard open-loop model.
	ArrivalPoisson Arrival = "poisson"
	// ArrivalUniform spaces arrivals evenly at 1/rate.
	ArrivalUniform Arrival = "uniform"
)

// pathKind enumerates the serving paths the harness drives.
type pathKind uint8

const (
	pathPage pathKind = iota
	pathTopics
	pathAttest
	pathCount = 3
)

func (p pathKind) String() string {
	switch p {
	case pathPage:
		return "page"
	case pathTopics:
		return "topics"
	default:
		return "attest"
	}
}

// request is one pre-scheduled unit of work. The whole schedule is
// drawn single-threaded before any worker starts, so the only thing
// workers race over is which of them executes a request — and every
// execution effect is commutative.
type request struct {
	at      time.Duration // arrival offset from the run epoch
	path    pathKind
	site    string // page, topics: the first-party site
	caller  string // topics, attest: the calling party
	user    int    // topics: index into the engine pool
	consent bool   // page: send the consent cookie
	eu      bool   // page: EU vantage
}

// userPlan is one simulated user's browsing history blueprint: the
// sites visited each warm-up epoch and the callers witnessing those
// visits. Plans are drawn before the schedule so topics requests can
// prefer callers that actually observed the user (otherwise the
// per-caller filter would blank almost every answer).
type userPlan struct {
	sites   []string
	callers []string
}

// scheduleStream seeds the schedule-drawing PCG; userStream seeds the
// per-user plan PCG. Distinct constants keep the streams independent.
const (
	scheduleStream = 0x10ad5c4ed
	userStream     = 0x10adc5e7
)

func planUsers(cfg Config, sites, callers []string) []userPlan {
	plans := make([]userPlan, cfg.Users)
	for u := range plans {
		rng := rand.New(rand.NewPCG(cfg.Seed, userStream+uint64(u)))
		nSites := 8 + rng.IntN(8)
		p := userPlan{sites: make([]string, 0, nSites), callers: make([]string, 0, 2)}
		for i := 0; i < nSites; i++ {
			p.sites = append(p.sites, sites[rng.IntN(len(sites))])
		}
		for i := 0; i < 2 && len(callers) > 0; i++ {
			p.callers = append(p.callers, callers[rng.IntN(len(callers))])
		}
		plans[u] = p
	}
	return plans
}

// buildSchedule draws the full request sequence: arrival offsets from
// the configured process and a per-request (path, target) sample.
func buildSchedule(cfg Config, sites, callers []string, plans []userPlan) []request {
	rng := rand.New(rand.NewPCG(cfg.Seed, scheduleStream))
	total := cfg.Mix.Page + cfg.Mix.Topics + cfg.Mix.Attest
	pPage := cfg.Mix.Page / total
	pTopics := cfg.Mix.Topics / total

	schedule := make([]request, cfg.Requests)
	var at float64 // seconds
	for i := range schedule {
		switch cfg.Arrival {
		case ArrivalUniform:
			at = float64(i) / cfg.Rate
		default:
			at += rng.ExpFloat64() / cfg.Rate
		}
		r := request{at: time.Duration(at * float64(time.Second))}
		switch f := rng.Float64(); {
		case f < pPage:
			r.path = pathPage
			r.site = sites[rng.IntN(len(sites))]
			r.consent = rng.Float64() < 0.4
			r.eu = rng.Float64() < 0.8
		case f < pPage+pTopics:
			r.path = pathTopics
			r.user = rng.IntN(len(plans))
			r.site = sites[rng.IntN(len(sites))]
			// 70% of calls come from a caller that witnessed this user
			// during the warm-up epochs; the rest sample the full
			// catalog and mostly hit the per-caller filter.
			if own := plans[r.user].callers; len(own) > 0 && rng.Float64() < 0.7 {
				r.caller = own[rng.IntN(len(own))]
			} else {
				r.caller = callers[rng.IntN(len(callers))]
			}
		default:
			r.path = pathAttest
			// One in five checks comes from a rogue (never-enrolled)
			// host so the blocked path is exercised too.
			if rng.Float64() < 0.2 {
				r.caller = rogueCallers[rng.IntN(len(rogueCallers))]
			} else {
				r.caller = callers[rng.IntN(len(callers))]
			}
		}
		schedule[i] = r
	}
	return schedule
}

// rogueCallers are unenrolled callers used to exercise the gate's
// blocked path.
var rogueCallers = []string{
	"rogue-ads.example",
	"shady-tracker.example",
	"unattested.example",
	"popunder.example",
}
