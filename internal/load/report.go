package load

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/netmeasure/topicscope/internal/obs"
)

// PathStats summarizes one serving path's latency distribution. All
// durations are virtual milliseconds.
type PathStats struct {
	Path     string  `json:"path"`
	Requests int64   `json:"requests"`
	MeanMS   float64 `json:"meanMs"`
	P50MS    float64 `json:"p50Ms"`
	P99MS    float64 `json:"p99Ms"`
	P999MS   float64 `json:"p999Ms"`
	MaxMS    float64 `json:"maxMs"`
}

// Report is the aggregated outcome of one load run. Field order is the
// serialized order; the whole struct is derived from commutative
// aggregates, so WriteJSON emits byte-identical output for any worker
// count or GOMAXPROCS setting.
type Report struct {
	Seed     uint64 `json:"seed"`
	Sites    int    `json:"sites"`
	Users    int    `json:"users"`
	Requests int    `json:"requests"`
	Arrival  string `json:"arrival"`
	// RatePerSec is the offered arrival rate.
	RatePerSec float64 `json:"ratePerSec"`
	// MakespanMS is the virtual time from the first arrival to the last
	// completion.
	MakespanMS float64 `json:"makespanMs"`
	// ReqPerSec is the virtual throughput: requests / makespan.
	ReqPerSec float64 `json:"reqPerSec"`
	// Overall aggregates every request; Paths breaks the distribution
	// down by serving path, sorted by path name.
	Overall PathStats   `json:"overall"`
	Paths   []PathStats `json:"paths"`
	// Serving-path outcome counters.
	AttestAllowed  int64 `json:"attestAllowed"`
	AttestBlocked  int64 `json:"attestBlocked"`
	TopicsReturned int64 `json:"topicsReturned"`
	PageBytes      int64 `json:"pageBytes"`
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

func statsFrom(snap obs.Snapshot, name string, path string, requests int64) PathStats {
	st := PathStats{Path: path, Requests: requests}
	for _, h := range snap.Histograms {
		if h.Name != name {
			continue
		}
		if h.Count > 0 {
			st.MeanMS = ms(h.SumNS / h.Count)
		}
		st.P50MS = ms(h.P50NS)
		st.P99MS = ms(h.P99NS)
		st.P999MS = ms(h.P999NS)
		st.MaxMS = ms(h.MaxNS)
		return st
	}
	return st
}

func buildReport(cfg Config, sites int, agg *obs.Registry, makespan time.Duration) *Report {
	snap := agg.Snapshot()
	rep := &Report{
		Seed:           cfg.Seed,
		Sites:          sites,
		Users:          cfg.Users,
		Requests:       cfg.Requests,
		Arrival:        string(cfg.Arrival),
		RatePerSec:     cfg.Rate,
		MakespanMS:     ms(int64(makespan)),
		AttestAllowed:  snap.Counter("load_attest_allowed_total"),
		AttestBlocked:  snap.Counter("load_attest_blocked_total"),
		TopicsReturned: snap.Counter("load_topics_returned_total"),
		PageBytes:      snap.Counter("load_page_bytes_total"),
	}
	if makespan > 0 {
		rep.ReqPerSec = float64(cfg.Requests) / makespan.Seconds()
	}
	rep.Overall = statsFrom(snap, "load_latency_all", "all", int64(cfg.Requests))
	// pathKind iterates in declaration order; the rendered names
	// (attest < page < topics) are re-sorted by the fixed order below
	// so the serialized report never depends on iteration details.
	for _, p := range []pathKind{pathAttest, pathPage, pathTopics} {
		name := p.String()
		count := snap.Counter("load_requests_total", "path", name)
		key := obs.MetricKey("load_latency", "path", name)
		rep.Paths = append(rep.Paths, statsFrom(snap, key, name, count))
	}
	return rep
}

// WriteJSON renders the report as indented JSON with a trailing
// newline. Equal reports serialize to equal bytes.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("load: encoding report: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// SLO is a set of serving-path objectives checked against a report —
// the virtual-time analogue of a production latency budget. Zero
// fields are unchecked.
type SLO struct {
	// MaxP50 / MaxP99 / MaxP999 bound the overall latency quantiles.
	MaxP50  time.Duration
	MaxP99  time.Duration
	MaxP999 time.Duration
	// MinReqPerSec bounds the virtual throughput from below.
	MinReqPerSec float64
}

// Check returns one violation message per missed objective, empty when
// the report meets the SLO.
func (r *Report) Check(slo SLO) []string {
	var violations []string
	check := func(name string, gotMS float64, max time.Duration) {
		if max > 0 && gotMS > ms(int64(max)) {
			violations = append(violations,
				fmt.Sprintf("%s %.3fms exceeds SLO %.3fms", name, gotMS, ms(int64(max))))
		}
	}
	check("p50", r.Overall.P50MS, slo.MaxP50)
	check("p99", r.Overall.P99MS, slo.MaxP99)
	check("p999", r.Overall.P999MS, slo.MaxP999)
	if slo.MinReqPerSec > 0 && r.ReqPerSec < slo.MinReqPerSec {
		violations = append(violations,
			fmt.Sprintf("req/s %.1f below SLO %.1f", r.ReqPerSec, slo.MinReqPerSec))
	}
	return violations
}
