package adcatalog

import (
	"time"

	"github.com/netmeasure/topicscope/internal/etld"
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// mixJS is the typical tag: mostly document.browsingTopics() with some
// fetch integrations.
var mixJS = CallMix{JS: 0.8, Fetch: 0.2}

// mixHeader is a platform preferring the Fetch/IFrame header flow.
var mixHeader = CallMix{JS: 0.3, Fetch: 0.5, Iframe: 0.2}

// named transcribes the platforms appearing in the paper's figures.
//
// Reach values are calibrated against Figure 2/3 presence counts over
// the 14,719-site D_AA (e.g. doubleclick.net present on 8,293 sites
// ≈ 56%); EnabledRate values against the Figure 3 clusters (criteo.com
// and cpx.to 75%, yandex.com 66%, doubleclick.net "about one third",
// authorizedvault.com "almost every time"); ConsentAware against
// Figure 5 (doubleclick.net performs zero Before-Accept calls, yandex
// tops the violation count); RegionWeights against Figure 6 (Yandex "is
// not present in Japan and almost absent in the EU", Criteo "has a
// worldwide marketplace").
var named = []Platform{
	{
		Domain: "google-analytics.com", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.June, 16), HasEnrollmentSite: true,
		CallsTopics: false, Reach: 0.68,
	},
	{
		Domain: "doubleclick.net", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.June, 16), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.56, EnabledRate: 0.33,
		ConsentAware: true, CallMix: mixHeader,
	},
	{
		Domain: "bing.com", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.July, 5), HasEnrollmentSite: true,
		CallsTopics: false, Reach: 0.30,
	},
	{
		Domain: "rubiconproject.com", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.August, 14), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.17, EnabledRate: 0.50, BeforeConsentRate: 0.15, CallMix: mixJS,
	},
	{
		Domain: "pubmatic.com", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.August, 29), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.16, EnabledRate: 0.20, BeforeConsentRate: 0.12, CallMix: mixJS,
	},
	{
		Domain: "criteo.com", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.July, 12), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.155, EnabledRate: 0.75, BeforeConsentRate: 0.28, CallMix: mixJS,
		RegionWeights: map[etld.Region]float64{
			etld.RegionCom: 1, etld.RegionJapan: 1.2, etld.RegionRussia: 0.15,
			etld.RegionEU: 0.8, etld.RegionOther: 1,
		},
	},
	{
		Domain: "casalemedia.com", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.September, 6), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.13, EnabledRate: 0.55, BeforeConsentRate: 0.30, CallMix: mixJS,
	},
	{
		Domain: "3lift.com", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.September, 21), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.10, EnabledRate: 0.45, BeforeConsentRate: 0.30, CallMix: mixJS,
	},
	{
		Domain: "openx.net", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.October, 3), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.097, EnabledRate: 0.72, BeforeConsentRate: 0.30, CallMix: mixJS,
		RegionWeights: map[etld.Region]float64{
			etld.RegionCom: 1, etld.RegionJapan: 0.7, etld.RegionRussia: 0.06,
			etld.RegionEU: 0.5, etld.RegionOther: 1,
		},
	},
	{
		Domain: "teads.tv", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.October, 17), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.081, EnabledRate: 0.50, BeforeConsentRate: 0.35, CallMix: mixJS,
	},
	{
		Domain: "taboola.com", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.July, 25), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.077, EnabledRate: 0.60, BeforeConsentRate: 0.40, CallMix: mixJS,
		RegionWeights: map[etld.Region]float64{
			etld.RegionCom: 1, etld.RegionJapan: 0.8, etld.RegionRussia: 0.12,
			etld.RegionEU: 0.5, etld.RegionOther: 1,
		},
	},
	{
		Domain: "adform.net", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.November, 8), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.07, EnabledRate: 0.12,
		ConsentAware: true, CallMix: mixJS,
	},
	{
		Domain: "indexww.com", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.November, 20), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.065, EnabledRate: 0.10,
		ConsentAware: true, CallMix: mixJS,
	},
	{
		Domain: "quantserve.com", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.December, 4), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.06, EnabledRate: 0.08,
		ConsentAware: true, CallMix: mixHeader,
	},
	{
		Domain: "yahoo.com", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.December, 18), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.055, EnabledRate: 0.07,
		ConsentAware: true, CallMix: mixHeader,
	},
	{
		Domain: "outbrain.com", Allowed: true, Attested: true,
		AttestedAt: date(2024, time.January, 9), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.055, EnabledRate: 0.30, BeforeConsentRate: 0.30, CallMix: mixJS,
	},
	{
		Domain: "postrelease.com", Allowed: true, Attested: true,
		AttestedAt: date(2024, time.January, 23), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.042, EnabledRate: 0.27, BeforeConsentRate: 0.25, CallMix: mixJS,
	},
	{
		Domain: "creativecdn.com", Allowed: true, Attested: true,
		AttestedAt: date(2024, time.February, 6), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.04, EnabledRate: 0.36, BeforeConsentRate: 0.50, CallMix: mixJS,
	},
	{
		Domain: "authorizedvault.com", Allowed: true, Attested: true,
		AttestedAt: date(2024, time.February, 20), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.015, EnabledRate: 0.98, BeforeConsentRate: 0.30, CallMix: mixJS,
	},
	{
		Domain: "yandex.com", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.October, 30), HasEnrollmentSite: false,
		CallsTopics: true, Reach: 0.05, EnabledRate: 0.66, BeforeConsentRate: 0.85, CallMix: mixJS,
		RegionWeights: map[etld.Region]float64{
			etld.RegionCom: 0.4, etld.RegionJapan: 0, etld.RegionRussia: 10,
			etld.RegionEU: 0.03, etld.RegionOther: 0.55,
		},
	},
	{
		Domain: "yandex.ru", Allowed: true, Attested: true,
		AttestedAt: date(2023, time.October, 30), HasEnrollmentSite: false,
		CallsTopics: true, Reach: 0.02, EnabledRate: 0.66, BeforeConsentRate: 0.85, CallMix: mixJS,
		RegionWeights: map[etld.Region]float64{
			etld.RegionCom: 0.3, etld.RegionJapan: 0, etld.RegionRussia: 14,
			etld.RegionEU: 0.02, etld.RegionOther: 0.4,
		},
	},
	{
		Domain: "unrulymedia.com", Allowed: true, Attested: true,
		AttestedAt: date(2024, time.March, 5), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.013, EnabledRate: 0.40, BeforeConsentRate: 0.30, CallMix: mixJS,
	},
	{
		Domain: "cpx.to", Allowed: true, Attested: true,
		AttestedAt: date(2024, time.March, 19), HasEnrollmentSite: true,
		CallsTopics: true, Reach: 0.008, EnabledRate: 0.75,
		ConsentAware: true, CallMix: mixJS,
	},
	// distillery.com: the one attested-but-not-Allowed party of Table 1,
	// whose attestation is "timestamped on November 2023" and which the
	// paper sees calling only on distillery.com itself.
	{
		Domain: "distillery.com", Allowed: false, Attested: true,
		AttestedAt: date(2023, time.November, 11), HasEnrollmentSite: false,
		CallsTopics: true, Reach: 0, EnabledRate: 1,
		ConsentAware: true, SelfOnly: true, CallMix: CallMix{JS: 1},
	},
}
