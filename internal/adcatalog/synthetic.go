package adcatalog

import (
	"fmt"
	"time"
)

// Table 1 calibration targets for the synthetic fill.
const (
	// TargetAllowed is the allow-list size the paper reports.
	TargetAllowed = 193
	// TargetActiveCallers is the number of Allowed & Attested CPs seen
	// calling in D_AA.
	TargetActiveCallers = 47
	// TargetAllowedNotAttested is the number of enrolled domains that
	// erroneously serve no attestation file.
	TargetAllowedNotAttested = 12
	// TargetQuestionableCallers is the number of Allowed & Attested CPs
	// calling in D_BA (before consent).
	TargetQuestionableCallers = 28
)

// Name fragments for realistic synthetic ad-tech domains. The generator
// combines them by index, so the synthetic catalog is a constant.
var (
	synPrefixes = []string{
		"ad", "bid", "pix", "tag", "aud", "trk", "sup", "targ", "verve",
		"pulse", "nexa", "spark", "prime", "zeta", "lumo", "brio", "kilo",
		"vanta", "orbi", "glim", "cast", "fuse", "rev", "mono", "flux",
	}
	synSuffixes = []string{
		"stream", "metrics", "lab", "works", "edge", "hub", "wave",
		"logic", "lane", "mode", "engine", "yield",
	}
	synTLDs = []string{"com", "net", "io", "co"}
)

// synDomain builds the i-th synthetic domain, collision-free because the
// index tuple is unique for i < len(prefixes)*len(suffixes)*len(tlds).
func synDomain(i int) string {
	p := synPrefixes[i%len(synPrefixes)]
	s := synSuffixes[(i/len(synPrefixes))%len(synSuffixes)]
	t := synTLDs[(i/(len(synPrefixes)*len(synSuffixes)))%len(synTLDs)]
	return fmt.Sprintf("%s%s.%s", p, s, t)
}

// callerEnrolmentDate spreads active callers' attestations over
// Jun 2023 .. Mar 2024 only, so all 47 are enrolled before the paper's
// crawl date (a platform cannot call before its attestation).
func callerEnrolmentDate(i int) time.Time {
	start := date(2023, time.June, 16)
	month := (i + 20) % 10 // Jun 2023 .. Mar 2024
	day := (i * 5) % 12
	return start.AddDate(0, month, day)
}

// enrolmentDate spreads synthetic attestation issue dates over the
// enrolment window the paper reconstructs: it "kicked off in June 2023"
// and continued "at a low pace: each month, approximately a dozen new
// services" through May 2024.
func enrolmentDate(i int) time.Time {
	start := date(2023, time.June, 16)
	month := i % 12 // spread over Jun 2023 .. May 2024
	day := (i * 5) % 12
	return start.AddDate(0, month, day)
}

// Figure 3 notes clustered, apparently predetermined A/B percentages;
// synthetic callers draw their enabled rate from the same clusters.
var abClusters = []float64{1.0, 0.75, 0.66, 0.50, 0.33, 0.25}

// syntheticFill builds the catalog's synthetic layer:
//
//   - enough low-reach active callers to reach TargetActiveCallers, half
//     of them ignoring consent so that the D_BA caller count lands near
//     TargetQuestionableCallers;
//   - dormant enrolled domains (zero reach — "may not have activated it,
//     or we did not encounter them during our crawling") to reach
//     TargetAllowed, of which TargetAllowedNotAttested serve no
//     attestation file.
func syntheticFill() []*Platform {
	var out []*Platform

	namedCallers, namedQuestionable := 0, 0
	for i := range named {
		p := &named[i]
		if p.CallsTopics && p.Reach > 0 && p.Allowed {
			namedCallers++
			if !p.ConsentAware {
				namedQuestionable++
			}
		}
	}

	needCallers := TargetActiveCallers - namedCallers
	needQuestionable := TargetQuestionableCallers - namedQuestionable
	for i := 0; i < needCallers; i++ {
		p := &Platform{
			Domain:   synDomain(i),
			Allowed:  true,
			Attested: true,
			// Active callers must be enrolled before the paper's March
			// 30th 2024 crawl; callerEnrolmentDate stays within
			// Jun 2023 .. Mar 2024.
			AttestedAt:        callerEnrolmentDate(i),
			HasEnrollmentSite: i%5 != 0,
			CallsTopics:       true,
			Reach:             0.002 + 0.0006*float64(i%12),
			EnabledRate:       abClusters[i%len(abClusters)],
			ConsentAware:      i >= needQuestionable,
			CallMix:           mixJS,
		}
		if !p.ConsentAware {
			p.BeforeConsentRate = 0.3
		}
		out = append(out, p)
	}

	needDormant := TargetAllowed - namedAllowedCount() - needCallers
	for i := 0; i < needDormant; i++ {
		p := &Platform{
			Domain:            synDomain(1000 + i),
			Allowed:           true,
			Attested:          i >= TargetAllowedNotAttested,
			HasEnrollmentSite: i%4 != 0,
		}
		if p.Attested {
			p.AttestedAt = enrolmentDate(i + 40)
		}
		out = append(out, p)
	}
	return out
}

func namedAllowedCount() int {
	n := 0
	for i := range named {
		if named[i].Allowed {
			n++
		}
	}
	return n
}
