package adcatalog

import (
	"math"
	"testing"
	"time"

	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/etld"
)

func TestTable1Targets(t *testing.T) {
	c := New()

	allowed := len(c.AllowedDomains())
	if allowed != TargetAllowed {
		t.Errorf("allowed domains = %d, Table 1 reports %d", allowed, TargetAllowed)
	}

	allowedAttested, allowedNotAttested, notAllowedAttested := 0, 0, 0
	for _, p := range c.All() {
		switch {
		case p.Allowed && p.Attested:
			allowedAttested++
		case p.Allowed && !p.Attested:
			allowedNotAttested++
		case !p.Allowed && p.Attested:
			notAllowedAttested++
		}
	}
	if allowedNotAttested != TargetAllowedNotAttested {
		t.Errorf("Allowed & !Attested = %d, paper reports %d", allowedNotAttested, TargetAllowedNotAttested)
	}
	if allowedAttested != TargetAllowed-TargetAllowedNotAttested {
		t.Errorf("Allowed & Attested = %d, paper reports 181", allowedAttested)
	}
	if notAllowedAttested != 1 {
		t.Errorf("!Allowed & Attested = %d, paper reports 1 (distillery.com)", notAllowedAttested)
	}
}

func TestActiveCallerTargets(t *testing.T) {
	c := New()
	callers, questionable := 0, 0
	for _, p := range c.Callers() {
		if !p.Allowed {
			continue
		}
		callers++
		if p.CallsBeforeConsent() {
			questionable++
		}
	}
	if callers != TargetActiveCallers {
		t.Errorf("allowed active callers = %d, paper reports %d", callers, TargetActiveCallers)
	}
	if questionable != TargetQuestionableCallers {
		t.Errorf("questionable callers = %d, paper reports %d", questionable, TargetQuestionableCallers)
	}
}

func TestNamedPlatformFacts(t *testing.T) {
	c := New()

	ga, ok := c.ByDomain("www.google-analytics.com")
	if !ok {
		t.Fatal("google-analytics.com missing")
	}
	if ga.CallsTopics {
		t.Error("google-analytics.com must never call the Topics API (§3)")
	}
	if !ga.Allowed || !ga.Attested {
		t.Error("google-analytics.com is Allowed & Attested in the paper")
	}

	dc, _ := c.ByDomain("doubleclick.net")
	if !dc.ConsentAware {
		t.Error("doubleclick.net performs no Before-Accept calls (Fig 5)")
	}
	if math.Abs(dc.EnabledRate-0.33) > 0.02 {
		t.Errorf("doubleclick.net enabled rate %.2f, paper says about one third", dc.EnabledRate)
	}

	yx, _ := c.ByDomain("yandex.com")
	if yx.ConsentAware {
		t.Error("yandex.com tops the questionable-call ranking (Fig 5)")
	}
	if yx.RegionWeights[etld.RegionJapan] != 0 {
		t.Error("Yandex is not present in Japan (Fig 6)")
	}
	if yx.RegionWeights[etld.RegionEU] >= 0.1 {
		t.Error("Yandex is almost absent in the EU (Fig 6)")
	}

	av, _ := c.ByDomain("authorizedvault.com")
	if av.EnabledRate < 0.95 {
		t.Errorf("authorizedvault.com calls almost every time (Fig 3), got %.2f", av.EnabledRate)
	}

	dist, _ := c.ByDomain("distillery.com")
	if dist.Allowed || !dist.Attested || !dist.SelfOnly {
		t.Errorf("distillery.com flags wrong: %+v", dist)
	}
	if dist.AttestedAt.Year() != 2023 || dist.AttestedAt.Month() != time.November {
		t.Errorf("distillery.com attestation should be November 2023, got %v", dist.AttestedAt)
	}
}

func TestEnabledOnConvergesToRate(t *testing.T) {
	c := New()
	at := time.Date(2024, 3, 30, 10, 0, 0, 0, time.UTC)
	for _, domain := range []string{"criteo.com", "doubleclick.net", "yandex.com"} {
		p, _ := c.ByDomain(domain)
		on := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if p.EnabledOn(siteName(i), at) {
				on++
			}
		}
		got := float64(on) / n
		if math.Abs(got-p.EnabledRate) > 0.02 {
			t.Errorf("%s enabled fraction %.3f, want %.3f", domain, got, p.EnabledRate)
		}
	}
}

func siteName(i int) string {
	return "site" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)) + ".com"
}

func TestEnabledOnStableWithinSlot(t *testing.T) {
	c := New()
	p, _ := c.ByDomain("criteo.com")
	base := time.Date(2024, 3, 30, 0, 30, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		site := siteName(i)
		a := p.EnabledOn(site, base)
		b := p.EnabledOn(site, base.Add(ABPeriod/3))
		if a != b {
			t.Errorf("site %s: decision flipped within one A/B slot", site)
		}
	}
}

func TestEnabledOnAlternatesAcrossSlots(t *testing.T) {
	// §3: repeated tests show alternating ON/OFF periods per CP and
	// website. Over many slots the ON fraction approaches EnabledRate.
	c := New()
	p, _ := c.ByDomain("yandex.com") // 66%
	site := "ru-news-portal.ru"
	on, flips := 0, 0
	prev := false
	const slots = 2000
	for i := 0; i < slots; i++ {
		at := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * ABPeriod)
		e := p.EnabledOn(site, at)
		if e {
			on++
		}
		if i > 0 && e != prev {
			flips++
		}
		prev = e
	}
	frac := float64(on) / slots
	if math.Abs(frac-p.EnabledRate) > 0.05 {
		t.Errorf("per-site ON fraction over time %.3f, want %.3f", frac, p.EnabledRate)
	}
	if flips == 0 {
		t.Error("no ON/OFF alternation observed across slots")
	}
}

func TestEnabledOnEdgeRates(t *testing.T) {
	p := &Platform{Domain: "x.com", CallsTopics: true, EnabledRate: 1}
	if !p.EnabledOn("a.com", time.Now()) {
		t.Error("rate 1 must always be enabled")
	}
	p.EnabledRate = 0
	if p.EnabledOn("a.com", time.Now()) {
		t.Error("rate 0 must never be enabled")
	}
	p.EnabledRate = 1
	p.CallsTopics = false
	if p.EnabledOn("a.com", time.Now()) {
		t.Error("platform without integration must never be enabled")
	}
}

func TestCallTypeForDeterministicAndMixed(t *testing.T) {
	c := New()
	p, _ := c.ByDomain("doubleclick.net") // mixHeader: all three types
	counts := map[dataset.CallType]int{}
	for i := 0; i < 3000; i++ {
		site := siteName(i)
		ct := p.CallTypeFor(site)
		if ct != p.CallTypeFor(site) {
			t.Fatal("call type not deterministic per site")
		}
		counts[ct]++
	}
	for _, ct := range []dataset.CallType{dataset.CallJavaScript, dataset.CallFetch, dataset.CallIframe} {
		if counts[ct] == 0 {
			t.Errorf("call type %s never chosen for a mixed platform", ct)
		}
	}
	zero := &Platform{Domain: "z.com"}
	if zero.CallTypeFor("a.com") != dataset.CallJavaScript {
		t.Error("zero mix must default to JavaScript")
	}
}

func TestReachIn(t *testing.T) {
	c := New()
	yx, _ := c.ByDomain("yandex.com")
	if got := yx.ReachIn(etld.RegionJapan); got != 0 {
		t.Errorf("yandex reach in Japan = %f", got)
	}
	if got := yx.ReachIn(etld.RegionRussia); got <= yx.Reach {
		t.Errorf("yandex reach in Russia = %f, want amplified over base %f", got, yx.Reach)
	}
	flat := &Platform{Reach: 0.3}
	if flat.ReachIn(etld.RegionEU) != 0.3 {
		t.Error("nil region weights must mean base reach everywhere")
	}
	huge := &Platform{Reach: 0.5, RegionWeights: map[etld.Region]float64{etld.RegionCom: 10}}
	if huge.ReachIn(etld.RegionCom) != 1 {
		t.Error("reach must clamp at 1")
	}
}

func TestEnrolmentTimeline(t *testing.T) {
	c := New()
	first := time.Now()
	byMonth := map[string]int{}
	for _, p := range c.Attested() {
		if p.AttestedAt.Before(first) {
			first = p.AttestedAt
		}
		byMonth[p.AttestedAt.Format("2006-01")]++
	}
	want := date(2023, time.June, 16)
	if !first.Equal(want) {
		t.Errorf("first attestation %v, paper reports %v", first, want)
	}
	// "each month, approximately a dozen new services" through May 2024.
	months := 0
	for m, n := range byMonth {
		if m >= "2023-06" && m <= "2024-05" {
			months++
			if n < 3 || n > 40 {
				t.Errorf("month %s has %d enrolments, want a low monthly pace", m, n)
			}
		}
	}
	if months < 10 {
		t.Errorf("enrolments cover only %d months of the Jun-2023..May-2024 window", months)
	}
}

func TestSyntheticDomainsUnique(t *testing.T) {
	c := New()
	seen := map[string]bool{}
	for _, p := range c.All() {
		if seen[p.Domain] {
			t.Errorf("duplicate domain %q", p.Domain)
		}
		seen[p.Domain] = true
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a, b := New(), New()
	if len(a.All()) != len(b.All()) {
		t.Fatal("catalog size differs between constructions")
	}
	for i := range a.All() {
		pa, pb := a.All()[i], b.All()[i]
		if pa.Domain != pb.Domain || pa.EnabledRate != pb.EnabledRate ||
			pa.Allowed != pb.Allowed || pa.Attested != pb.Attested {
			t.Errorf("catalog entry %d differs: %+v vs %+v", i, pa, pb)
		}
	}
}

func TestEmbeddableExcludesSelfOnlyAndDormant(t *testing.T) {
	c := New()
	for _, p := range c.Embeddable() {
		if p.SelfOnly {
			t.Errorf("%s is SelfOnly but embeddable", p.Domain)
		}
		if p.Reach <= 0 {
			t.Errorf("%s has zero reach but embeddable", p.Domain)
		}
	}
}
