// Package adcatalog models the ad-tech calling parties (CPs) the paper
// observes: who is enrolled (Allowed), who serves an attestation file
// (Attested), how widely each platform is embedded across websites, the
// A/B-test fraction of sites where its Topics integration is enabled
// (Figure 3), whether it respects consent (Figure 5) and which API call
// type its tags use.
//
// The catalog has two layers:
//
//   - the named platforms that appear in the paper's figures, with
//     parameters transcribed from the reported results;
//   - a deterministic synthetic fill modelling the rest of the 193
//     Allowed domains of Table 1 — the paper notes 146 enrolled parties
//     it never saw calling, a dozen enrolled domains missing their
//     attestation files, and one attested-but-not-allowed party
//     (distillery.com) observed only on its own website.
package adcatalog

import (
	"fmt"
	"hash/fnv"
	"time"

	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/etld"
)

// CallMix weights the three Topics API call types for a platform's tags.
type CallMix struct {
	JS     float64
	Fetch  float64
	Iframe float64
}

// Platform describes one ad-tech party.
type Platform struct {
	// Domain is the CP's registrable domain.
	Domain string
	// Allowed: the domain is on the browser allow-list (enrolled).
	Allowed bool
	// Attested: the domain serves a valid well-known attestation file.
	Attested bool
	// AttestedAt is the attestation issue date (the paper reconstructs
	// the enrolment timeline from these, §3).
	AttestedAt time.Time
	// HasEnrollmentSite: the attestation carries the enrollment_site
	// field introduced on October 17th, 2024.
	HasEnrollmentSite bool
	// CallsTopics: the platform's tags contain a Topics API integration
	// at all. google-analytics.com and bing.com are Allowed & Attested
	// yet never call (§3).
	CallsTopics bool
	// Reach is the base probability that a website embeds this platform.
	Reach float64
	// RegionWeights multiplies Reach per website region; nil means 1
	// everywhere. Yandex, for example, is concentrated on .ru sites and
	// absent from Japan (Figure 6).
	RegionWeights map[etld.Region]float64
	// EnabledRate is the fraction of (site, period) slots where the
	// platform's A/B test turns the Topics integration ON (Figure 3).
	EnabledRate float64
	// ConsentAware: the tag checks the consent state and never calls the
	// API in a Before-Accept visit. doubleclick.net is the paper's
	// positive example; the 28 CPs of Figure 5 are not consent-aware.
	ConsentAware bool
	// BeforeConsentRate applies to platforms that are NOT consent-aware:
	// the fraction of sites on which their tag skips the consent check
	// and calls in the Before-Accept visit (partial TCF integrations,
	// per-publisher configurations). Figure 6's 20–55%% per-region
	// Before-Accept shares pin these values.
	BeforeConsentRate float64
	// CallMix weights the call types used by this platform's tags.
	CallMix CallMix
	// SelfOnly: the platform is only ever embedded on its own website
	// (distillery.com, §2.4 footnote: "we observe it using the Topics
	// API on the distillery.com website only, hinting at initial
	// testing").
	SelfOnly bool
}

// ABPeriod is the duration of one A/B-test slot. §3: "We notice
// consistent alternating periods: for some time ... the usage of the API
// is ON for all visits, followed by some time when it is OFF."
const ABPeriod = 6 * time.Hour

// EnabledOn reports whether the platform's Topics integration is ON for
// the given site at the given time. A platform cannot call before its
// attestation date — enrolment gates the API — so crawls at earlier
// virtual dates observe fewer active callers (the adoption growth §6
// asks future monitoring to track). Within the active period the
// decision is a pure hash of (platform, site, time slot), so every visit
// to the same site within a slot agrees — reproducing the paper's
// repeated-visit observation — and the long-run fraction of enabled
// slots converges to EnabledRate.
func (p *Platform) EnabledOn(site string, at time.Time) bool {
	if !p.CallsTopics || p.EnabledRate <= 0 {
		return false
	}
	if !p.AttestedAt.IsZero() && at.Before(p.AttestedAt) {
		return false
	}
	if p.EnabledRate >= 1 {
		return true
	}
	slot := at.Unix() / int64(ABPeriod/time.Second)
	h := hash64(p.Domain, site, fmt.Sprintf("slot-%d", slot))
	return float64(h%100000)/100000 < p.EnabledRate
}

// CallsBeforeConsent reports whether the platform can invoke the Topics
// API on pages without consent (the questionable behaviour of §5).
func (p *Platform) CallsBeforeConsent() bool {
	return p.CallsTopics && !p.ConsentAware && p.BeforeConsentRate > 0
}

// GuardsConsentOn reports whether the platform's tag checks consent on
// the given site before calling. Consent-aware platforms always guard;
// the rest skip the guard on a deterministic BeforeConsentRate fraction
// of sites.
func (p *Platform) GuardsConsentOn(site string) bool {
	if p.ConsentAware {
		return true
	}
	if p.BeforeConsentRate >= 1 {
		return false
	}
	h := hash64(p.Domain, site, "consent-guard")
	return float64(h%100000)/100000 >= p.BeforeConsentRate
}

// CallTypeFor picks the API call type the platform's tag uses on a given
// site, deterministically, following CallMix.
func (p *Platform) CallTypeFor(site string) dataset.CallType {
	total := p.CallMix.JS + p.CallMix.Fetch + p.CallMix.Iframe
	if total <= 0 {
		return dataset.CallJavaScript
	}
	h := hash64(p.Domain, site, "calltype")
	x := float64(h%100000) / 100000 * total
	switch {
	case x < p.CallMix.JS:
		return dataset.CallJavaScript
	case x < p.CallMix.JS+p.CallMix.Fetch:
		return dataset.CallFetch
	default:
		return dataset.CallIframe
	}
}

// ReachIn returns the platform's effective embedding probability for a
// site in the given region.
func (p *Platform) ReachIn(region etld.Region) float64 {
	r := p.Reach
	if p.RegionWeights != nil {
		r *= p.RegionWeights[region]
	}
	if r > 1 {
		r = 1
	}
	return r
}

func hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Catalog is the full set of platforms.
type Catalog struct {
	platforms []*Platform
	byDomain  map[string]*Platform
}

// New builds the catalog: named platforms plus the synthetic fill. The
// catalog is fully deterministic.
func New() *Catalog {
	c := &Catalog{byDomain: make(map[string]*Platform)}
	for i := range named {
		c.add(&named[i])
	}
	for _, p := range syntheticFill() {
		c.add(p)
	}
	return c
}

func (c *Catalog) add(p *Platform) {
	if _, dup := c.byDomain[p.Domain]; dup {
		panic(fmt.Sprintf("adcatalog: duplicate platform %q", p.Domain))
	}
	c.platforms = append(c.platforms, p)
	c.byDomain[p.Domain] = p
}

// All returns every platform in catalog order.
func (c *Catalog) All() []*Platform { return c.platforms }

// ByDomain resolves a host to its platform by registrable domain.
func (c *Catalog) ByDomain(host string) (*Platform, bool) {
	p, ok := c.byDomain[etld.RegistrableDomain(host)]
	return p, ok
}

// AllowedDomains returns the domains for the browser allow-list file
// (Table 1 counts 193 of them).
func (c *Catalog) AllowedDomains() []string {
	var out []string
	for _, p := range c.platforms {
		if p.Allowed {
			out = append(out, p.Domain)
		}
	}
	return out
}

// Attested returns the platforms serving a valid attestation file.
func (c *Catalog) Attested() []*Platform {
	var out []*Platform
	for _, p := range c.platforms {
		if p.Attested {
			out = append(out, p)
		}
	}
	return out
}

// Callers returns the platforms with a Topics integration and non-zero
// reach — the CPs a crawl can observe calling.
func (c *Catalog) Callers() []*Platform {
	var out []*Platform
	for _, p := range c.platforms {
		if p.CallsTopics && p.Reach > 0 {
			out = append(out, p)
		}
	}
	return out
}

// Embeddable returns the platforms that can appear on third-party sites.
func (c *Catalog) Embeddable() []*Platform {
	var out []*Platform
	for _, p := range c.platforms {
		if p.Reach > 0 && !p.SelfOnly {
			out = append(out, p)
		}
	}
	return out
}
