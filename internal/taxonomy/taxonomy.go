// Package taxonomy implements the Topics API taxonomy: the hierarchical
// set of interest categories ("topics") the browser assigns to visited
// websites (paper §2.1).
//
// Chrome ships the taxonomy as a flat table of (ID, path) pairs where the
// path encodes the hierarchy ("/Arts & Entertainment/Music & Audio/Rock
// Music"). This package embeds a representative taxonomy modelled on
// taxonomy v2 (the version active during the paper's March 2024 crawl)
// and provides hierarchy navigation, lookups and uniform sampling — the
// latter is what the engine's 5% plausible-deniability noise draws from.
package taxonomy

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
)

// Topic is one entry of the taxonomy.
type Topic struct {
	// ID is the stable numeric identifier the browsingTopics() call
	// returns to callers.
	ID int
	// Path is the full hierarchical name, starting with "/".
	Path string
}

// Name returns the final component of the topic path.
func (t Topic) Name() string {
	if i := strings.LastIndexByte(t.Path, '/'); i >= 0 {
		return t.Path[i+1:]
	}
	return t.Path
}

// Depth returns the number of components in the path (a root category has
// depth 1).
func (t Topic) Depth() int {
	return strings.Count(t.Path, "/")
}

// String implements fmt.Stringer as "ID:/Path".
func (t Topic) String() string { return fmt.Sprintf("%d:%s", t.ID, t.Path) }

// Version identifies a taxonomy revision, mirroring Chrome's
// "chrome.N" configuration strings.
type Version string

// Taxonomy versions. V2 was active during the paper's crawl.
const (
	V1 Version = "chrome.1"
	V2 Version = "chrome.2"
)

// Taxonomy is an immutable, indexed set of topics.
type Taxonomy struct {
	version  Version
	topics   []Topic // sorted by ID
	byID     map[int]int
	byPath   map[string]int
	children map[int][]int // parent ID -> child IDs ("" root uses ID 0)
	parent   map[int]int   // child ID -> parent ID (absent for roots)
}

// New builds a taxonomy from a table of paths; IDs are assigned in table
// order starting at 1. It panics on duplicate or malformed paths, which
// can only happen from a programming error in the embedded table.
func New(version Version, paths []string) *Taxonomy {
	tx := &Taxonomy{
		version:  version,
		byID:     make(map[int]int, len(paths)),
		byPath:   make(map[string]int, len(paths)),
		children: make(map[int][]int),
		parent:   make(map[int]int),
	}
	for i, p := range paths {
		if !strings.HasPrefix(p, "/") || strings.HasSuffix(p, "/") {
			panic(fmt.Sprintf("taxonomy: malformed path %q", p))
		}
		if _, dup := tx.byPath[p]; dup {
			panic(fmt.Sprintf("taxonomy: duplicate path %q", p))
		}
		t := Topic{ID: i + 1, Path: p}
		tx.topics = append(tx.topics, t)
		tx.byID[t.ID] = i
		tx.byPath[p] = i
	}
	// Link hierarchy. A parent may be absent from the table (Chrome's
	// taxonomy is complete, ours is too by construction of the table, but
	// we tolerate gaps by linking to the nearest present ancestor).
	for _, t := range tx.topics {
		anc := t.Path
		for {
			i := strings.LastIndexByte(anc, '/')
			if i <= 0 {
				break // root topic
			}
			anc = anc[:i]
			if pi, ok := tx.byPath[anc]; ok {
				pid := tx.topics[pi].ID
				tx.parent[t.ID] = pid
				tx.children[pid] = append(tx.children[pid], t.ID)
				break
			}
		}
	}
	for _, kids := range tx.children {
		sort.Ints(kids)
	}
	return tx
}

// NewV2 returns the embedded taxonomy modelled on Chrome taxonomy v2.
func NewV2() *Taxonomy { return New(V2, taxonomyV2Paths) }

// Version returns the taxonomy revision string.
func (tx *Taxonomy) Version() Version { return tx.version }

// Len returns the number of topics.
func (tx *Taxonomy) Len() int { return len(tx.topics) }

// All returns all topics in ID order. The returned slice is shared; do
// not modify it.
func (tx *Taxonomy) All() []Topic { return tx.topics }

// Get returns the topic with the given ID.
func (tx *Taxonomy) Get(id int) (Topic, bool) {
	i, ok := tx.byID[id]
	if !ok {
		return Topic{}, false
	}
	return tx.topics[i], true
}

// ByPath returns the topic with the given full path.
func (tx *Taxonomy) ByPath(path string) (Topic, bool) {
	i, ok := tx.byPath[path]
	if !ok {
		return Topic{}, false
	}
	return tx.topics[i], true
}

// Parent returns the parent topic of id, if any. Root categories have no
// parent.
func (tx *Taxonomy) Parent(id int) (Topic, bool) {
	pid, ok := tx.parent[id]
	if !ok {
		return Topic{}, false
	}
	return tx.Get(pid)
}

// Children returns the direct children of id in ID order.
func (tx *Taxonomy) Children(id int) []Topic {
	ids := tx.children[id]
	out := make([]Topic, 0, len(ids))
	for _, cid := range ids {
		c, _ := tx.Get(cid)
		out = append(out, c)
	}
	return out
}

// Roots returns the root categories (depth-1 topics) in ID order.
func (tx *Taxonomy) Roots() []Topic {
	var out []Topic
	for _, t := range tx.topics {
		if t.Depth() == 1 {
			out = append(out, t)
		}
	}
	return out
}

// Ancestors returns the chain of ancestors of id from immediate parent up
// to the root category.
func (tx *Taxonomy) Ancestors(id int) []Topic {
	var out []Topic
	for {
		p, ok := tx.Parent(id)
		if !ok {
			return out
		}
		out = append(out, p)
		id = p.ID
	}
}

// Root returns the depth-1 ancestor of id (or the topic itself if it is a
// root category).
func (tx *Taxonomy) Root(id int) (Topic, bool) {
	t, ok := tx.Get(id)
	if !ok {
		return Topic{}, false
	}
	for {
		p, okp := tx.Parent(t.ID)
		if !okp {
			return t, true
		}
		t = p
	}
}

// IsAncestor reports whether a is a strict ancestor of b.
func (tx *Taxonomy) IsAncestor(a, b int) bool {
	for {
		p, ok := tx.parent[b]
		if !ok {
			return false
		}
		if p == a {
			return true
		}
		b = p
	}
}

// Random returns a topic drawn uniformly at random, as Chrome does when
// replacing a real topic with noise (paper §2.1: "5% of the offered
// topics are replaced by a random topic").
func (tx *Taxonomy) Random(rng *rand.Rand) Topic {
	return tx.topics[rng.IntN(len(tx.topics))]
}
