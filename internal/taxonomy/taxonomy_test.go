package taxonomy

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewV2Shape(t *testing.T) {
	tx := NewV2()
	if tx.Version() != V2 {
		t.Errorf("Version() = %q, want %q", tx.Version(), V2)
	}
	if tx.Len() < 300 {
		t.Errorf("taxonomy has %d topics, want a substantial table (>=300)", tx.Len())
	}
	if got := len(tx.All()); got != tx.Len() {
		t.Errorf("All() returned %d topics, Len() = %d", got, tx.Len())
	}
	roots := tx.Roots()
	if len(roots) < 20 {
		t.Errorf("taxonomy has %d root categories, want >= 20", len(roots))
	}
	for _, r := range roots {
		if r.Depth() != 1 {
			t.Errorf("root %v has depth %d, want 1", r, r.Depth())
		}
	}
}

func TestIDsStableAndDense(t *testing.T) {
	tx := NewV2()
	for i, topic := range tx.All() {
		if topic.ID != i+1 {
			t.Fatalf("topic %d has ID %d, want dense sequential IDs", i, topic.ID)
		}
	}
}

func TestLookups(t *testing.T) {
	tx := NewV2()
	want := "/Arts & Entertainment/Music & Audio/Rock Music"
	topic, ok := tx.ByPath(want)
	if !ok {
		t.Fatalf("ByPath(%q) not found", want)
	}
	if topic.Path != want {
		t.Errorf("ByPath returned %q", topic.Path)
	}
	if topic.Name() != "Rock Music" {
		t.Errorf("Name() = %q, want %q", topic.Name(), "Rock Music")
	}
	back, ok := tx.Get(topic.ID)
	if !ok || back != topic {
		t.Errorf("Get(%d) = %v, %v; want %v", topic.ID, back, ok, topic)
	}
	if _, ok := tx.Get(0); ok {
		t.Error("Get(0) should not resolve")
	}
	if _, ok := tx.Get(tx.Len() + 1); ok {
		t.Error("Get(out of range) should not resolve")
	}
	if _, ok := tx.ByPath("/No Such Category"); ok {
		t.Error("ByPath of unknown path should not resolve")
	}
}

func TestHierarchy(t *testing.T) {
	tx := NewV2()
	rock, _ := tx.ByPath("/Arts & Entertainment/Music & Audio/Rock Music")
	music, _ := tx.ByPath("/Arts & Entertainment/Music & Audio")
	arts, _ := tx.ByPath("/Arts & Entertainment")

	if p, ok := tx.Parent(rock.ID); !ok || p != music {
		t.Errorf("Parent(Rock Music) = %v, %v; want %v", p, ok, music)
	}
	if _, ok := tx.Parent(arts.ID); ok {
		t.Error("root category must have no parent")
	}
	if !tx.IsAncestor(arts.ID, rock.ID) {
		t.Error("Arts & Entertainment must be an ancestor of Rock Music")
	}
	if tx.IsAncestor(rock.ID, arts.ID) {
		t.Error("Rock Music must not be an ancestor of Arts & Entertainment")
	}
	if tx.IsAncestor(rock.ID, rock.ID) {
		t.Error("IsAncestor must be strict")
	}

	anc := tx.Ancestors(rock.ID)
	if len(anc) != 2 || anc[0] != music || anc[1] != arts {
		t.Errorf("Ancestors(Rock Music) = %v", anc)
	}

	root, ok := tx.Root(rock.ID)
	if !ok || root != arts {
		t.Errorf("Root(Rock Music) = %v, %v; want %v", root, ok, arts)
	}
	if root, ok := tx.Root(arts.ID); !ok || root != arts {
		t.Errorf("Root(root) = %v, %v; want itself", root, ok)
	}

	kids := tx.Children(music.ID)
	if len(kids) == 0 {
		t.Fatal("Music & Audio should have children")
	}
	for _, k := range kids {
		if !strings.HasPrefix(k.Path, music.Path+"/") {
			t.Errorf("child %v not under %v", k, music)
		}
	}
}

func TestEveryNonRootHasParent(t *testing.T) {
	tx := NewV2()
	for _, topic := range tx.All() {
		if topic.Depth() == 1 {
			continue
		}
		p, ok := tx.Parent(topic.ID)
		if !ok {
			t.Errorf("topic %v has no parent", topic)
			continue
		}
		if !strings.HasPrefix(topic.Path, p.Path+"/") {
			t.Errorf("topic %v parent %v is not a path prefix", topic, p)
		}
	}
}

func TestRandomCoversTaxonomy(t *testing.T) {
	tx := NewV2()
	rng := rand.New(rand.NewPCG(1, 2))
	seen := make(map[int]bool)
	for i := 0; i < tx.Len()*20; i++ {
		seen[tx.Random(rng).ID] = true
	}
	if len(seen) < tx.Len()*9/10 {
		t.Errorf("Random covered only %d/%d topics", len(seen), tx.Len())
	}
}

func TestNewPanicsOnBadTable(t *testing.T) {
	for _, bad := range [][]string{
		{"/A", "/A"},   // duplicate
		{"no-slash"},   // malformed
		{"/trailing/"}, // malformed
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", bad)
				}
			}()
			New(V1, bad)
		}()
	}
}

// Property: Get and ByPath are inverse on every topic; Root is always a
// depth-1 ancestor-or-self.
func TestTaxonomyProperties(t *testing.T) {
	tx := NewV2()
	f := func(raw uint16) bool {
		id := int(raw)%tx.Len() + 1
		topic, ok := tx.Get(id)
		if !ok {
			return false
		}
		byPath, ok := tx.ByPath(topic.Path)
		if !ok || byPath.ID != id {
			return false
		}
		root, ok := tx.Root(id)
		if !ok || root.Depth() != 1 {
			return false
		}
		return root.ID == id || tx.IsAncestor(root.ID, id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestNewV1(t *testing.T) {
	v1, v2 := NewV1(), NewV2()
	if v1.Version() != V1 {
		t.Errorf("version %q", v1.Version())
	}
	if v1.Len() >= v2.Len() {
		t.Errorf("v1 (%d) must be smaller than v2 (%d)", v1.Len(), v2.Len())
	}
	if v1.Len() < 250 {
		t.Errorf("v1 has %d topics, suspiciously small", v1.Len())
	}
	// Every v1 path exists in v2 (v2 is a superset).
	for _, topic := range v1.All() {
		if _, ok := v2.ByPath(topic.Path); !ok {
			t.Errorf("v1 path %q missing from v2", topic.Path)
		}
	}
	// Every listed v2 addition is absent from v1 and present in v2.
	for _, p := range v2AddedPaths {
		if _, ok := v1.ByPath(p); ok {
			t.Errorf("v2 addition %q present in v1", p)
		}
		if _, ok := v2.ByPath(p); !ok {
			t.Errorf("v2 addition %q not in v2 table", p)
		}
	}
	// Hierarchy is still complete after removals.
	for _, topic := range v1.All() {
		if topic.Depth() > 1 {
			if _, ok := v1.Parent(topic.ID); !ok {
				t.Errorf("v1 topic %q lost its parent", topic.Path)
			}
		}
	}
}

func TestMapTopics(t *testing.T) {
	v1, v2 := NewV1(), NewV2()
	rock2, _ := v2.ByPath("/Arts & Entertainment/Music & Audio/Rock Music")
	clean2, _ := v2.ByPath("/Beauty & Fitness/Face & Body Care/Clean Beauty") // v2-only

	mapped := MapTopics(v2, v1, []int{rock2.ID, clean2.ID, 99999})
	if len(mapped) != 1 {
		t.Fatalf("mapped %d topics, want 1 (v2-only and unknown dropped): %v", len(mapped), mapped)
	}
	if mapped[0].Path != rock2.Path {
		t.Errorf("mapped path %q", mapped[0].Path)
	}
	// Round trip v1 -> v2 -> v1 is the identity on shared topics.
	for _, topic := range v1.All()[:50] {
		up := MapTopics(v1, v2, []int{topic.ID})
		down := MapTopics(v2, v1, []int{up[0].ID})
		if len(down) != 1 || down[0] != topic {
			t.Fatalf("round trip broke for %v", topic)
		}
	}
}
