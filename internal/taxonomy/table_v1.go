package taxonomy

// v2AddedPaths lists the topics introduced by taxonomy v2 — the initial
// taxonomy (v1, 349 entries in Chrome) was both smaller and less
// commerce-heavy. NewV1 derives the v1 table by removing these from the
// v2 table, mirroring how the real revisions relate. Note one
// simplification, documented here: Chrome keeps shared-topic IDs stable
// across revisions, while this package assigns IDs per table, so v1 and
// v2 IDs agree only up to the first removal; cross-version code must map
// by path (see MapTopics).
var v2AddedPaths = []string{
	"/Arts & Entertainment/Fun & Trivia",
	"/Arts & Entertainment/Humor/Live Comedy",
	"/Arts & Entertainment/Movies/Documentary Films",
	"/Arts & Entertainment/Movies/Family Films",
	"/Arts & Entertainment/Movies/Romance Films",
	"/Arts & Entertainment/Music & Audio/Music Videos",
	"/Arts & Entertainment/Music & Audio/Samples & Sound Libraries",
	"/Arts & Entertainment/Music & Audio/Soundtracks",
	"/Arts & Entertainment/Online Video/Live Streaming",
	"/Arts & Entertainment/TV Shows & Programs/TV Documentary & Nonfiction",
	"/Arts & Entertainment/TV Shows & Programs/TV Reality Shows",
	"/Autos & Vehicles/Gas Prices & Vehicle Fueling",
	"/Autos & Vehicles/Motor Vehicles (By Type)/Autonomous Vehicles",
	"/Autos & Vehicles/Motor Vehicles (By Type)/Convertibles",
	"/Autos & Vehicles/Motor Vehicles (By Type)/Microcars & Subcompacts",
	"/Autos & Vehicles/Motor Vehicles (By Type)/Scooters & Mopeds",
	"/Autos & Vehicles/Motor Vehicles (By Type)/Station Wagons",
	"/Autos & Vehicles/Towing & Roadside Assistance",
	"/Autos & Vehicles/Vehicle Shows",
	"/Beauty & Fitness/Face & Body Care/Antiperspirants, Deodorants & Body Sprays",
	"/Beauty & Fitness/Face & Body Care/Clean Beauty",
	"/Beauty & Fitness/Face & Body Care/Nail Care Products",
	"/Beauty & Fitness/Face & Body Care/Razors & Shavers",
	"/Books & Literature/Fan Fiction",
	"/Books & Literature/Literary Classics",
	"/Business & Industrial/Business Operations/Flexible Work Arrangements",
	"/Business & Industrial/Commercial Lending",
	"/Business & Industrial/Energy & Utilities/Water Supply & Treatment",
	"/Business & Industrial/MLM & Business Opportunities",
	"/Computers & Electronics/Computer Peripherals/Computer Monitors & Displays",
	"/Computers & Electronics/Computer Security/Antivirus & Malware",
	"/Computers & Electronics/Computer Security/Network Security",
	"/Computers & Electronics/Consumer Electronics/Home Automation",
	"/Computers & Electronics/Consumer Electronics/Wearable Technology",
	"/Computers & Electronics/Data Backup & Recovery",
	"/Computers & Electronics/Software/Desktop Publishing",
	"/Computers & Electronics/Software/Download Managers",
	"/Computers & Electronics/Software/Freeware & Shareware",
	"/Computers & Electronics/Software/Intelligent Personal Assistants",
	"/Computers & Electronics/Software/Media Players",
	"/Computers & Electronics/Software/Monitoring Software",
	"/Finance/Banking/Money Transfer & Wire Services",
	"/Finance/Credit & Lending/Student Loans",
	"/Finance/Financial Planning & Management/Retirement & Pension",
	"/Finance/Grants, Scholarships & Financial Aid",
	"/Finance/Insurance/Travel Insurance",
	"/Finance/Investing/Hedge Funds",
	"/Food & Drink/Beverages/Soft Drinks",
	"/Food & Drink/Cooking & Recipes/BBQ & Grilling",
	"/Food & Drink/Cooking & Recipes/Cuisines/Vegetarian Cuisine",
	"/Food & Drink/Restaurants/Pizzerias",
	"/Games/Billiards",
	"/Games/Card Games/Collectible Card Games",
	"/Games/Computer & Video Games/Fighting Games",
	"/Games/Computer & Video Games/Music & Dance Games",
	"/Games/Computer & Video Games/Video Game Emulation",
	"/Games/Computer & Video Games/Video Game Retailers",
	"/Games/Table Tennis",
	"/Games/Word Games",
	"/Hobbies & Leisure/Anniversaries",
	"/Hobbies & Leisure/Birthdays & Name Days",
	"/Hobbies & Leisure/Fiber & Textile Arts",
	"/Hobbies & Leisure/Paintball",
	"/Hobbies & Leisure/Radio Control & Modeling",
	"/Home & Garden/Bed & Bath/Bathroom",
	"/Home & Garden/Home Safety & Security",
	"/Home & Garden/Household Supplies",
	"/Home & Garden/Laundry",
	"/Internet & Telecom/Email & Messaging/Voice & Video Chat",
	"/Internet & Telecom/Teleconferencing",
	"/Jobs & Education/Education/Academic Conferences & Publications",
	"/Jobs & Education/Education/Early Childhood Education",
	"/Jobs & Education/Education/Homeschooling",
	"/Jobs & Education/Education/Standardized & Admissions Tests",
	"/Jobs & Education/Education/Vocational & Continuing Education",
	"/Law & Government/Government/Visa & Immigration",
	"/Law & Government/Public Safety/Crime & Justice",
	"/Law & Government/Public Safety/Emergency Services",
	"/News/Gossip & Tabloid News",
	"/News/Health News",
	"/Online Communities/Clip Art & Animated GIFs",
	"/Online Communities/Dating & Personals/Matrimonial Services",
	"/Online Communities/Feed Aggregation & Social Bookmarking",
	"/Online Communities/Skins, Themes & Wallpapers",
	"/People & Society/Family & Relationships/Ancestry & Genealogy",
	"/People & Society/Family & Relationships/Parenting/Adoption",
	"/People & Society/Family & Relationships/Parenting/Child Care",
	"/People & Society/Science Fiction & Fantasy",
	"/Pets & Animals/Pets/Fish & Aquaria",
	"/Pets & Animals/Pets/Reptiles & Amphibians",
	"/Pets & Animals/Veterinarians",
	"/Real Estate/Lots & Land",
	"/Real Estate/Moving & Relocation",
	"/Real Estate/Property Inspections & Appraisals",
	"/Real Estate/Timeshares & Vacation Properties",
	"/Reference/Business & Personal Listings",
	"/Reference/General Reference/Calculators & Reference Tools",
	"/Reference/General Reference/Public Records",
	"/Reference/Language Resources/Translation Tools & Resources",
	"/Science/Biological Sciences/Genetics",
	"/Science/Ecology & Environment/Climate Change & Global Warming",
	"/Science/Geology",
	"/Science/Robotics",
	"/Shopping/Antiques & Collectibles",
	"/Shopping/Apparel/Costumes",
	"/Shopping/Apparel/Eyewear",
	"/Shopping/Apparel/Headwear",
	"/Shopping/Apparel/Sleepwear",
	"/Shopping/Apparel/Swimwear",
	"/Shopping/Apparel/Undergarments",
	"/Shopping/Consumer Resources/Loyalty Cards & Programs",
	"/Shopping/Discount & Outlet Stores",
	"/Shopping/Flowers",
	"/Shopping/Gifts & Special Event Items/Cards & Greetings",
	"/Shopping/Gifts & Special Event Items/Party & Holiday Supplies",
	"/Shopping/Photo & Video Services",
	"/Shopping/Shopping Portals",
	"/Sports/College Sports",
	"/Sports/Extreme Sports/Climbing & Mountaineering",
	"/Sports/Fantasy Sports",
	"/Sports/Gymnastics",
	"/Sports/Olympics",
	"/Sports/Sporting Goods/Sports Memorabilia",
	"/Sports/Sports Coaching & Training",
	"/Sports/Track & Field",
	"/Sports/Water Sports/Surfing",
	"/Travel & Transportation/Business Travel",
	"/Travel & Transportation/Family Travel",
	"/Travel & Transportation/Honeymoons & Romantic Getaways",
	"/Travel & Transportation/Long Distance Bus & Rail",
	"/Travel & Transportation/Luggage & Travel Accessories",
	"/Travel & Transportation/Specialty Travel/Adventure Travel",
	"/Travel & Transportation/Specialty Travel/Ecotourism",
	"/Travel & Transportation/Tourist Destinations/Regional Parks & Gardens",
	"/Travel & Transportation/Tourist Destinations/Zoos, Aquariums & Preserves",
	"/Travel & Transportation/Traffic & Route Planners",
}

// NewV1 returns the embedded taxonomy modelled on Chrome taxonomy v1:
// the v2 table minus the v2 additions.
func NewV1() *Taxonomy {
	removed := make(map[string]bool, len(v2AddedPaths))
	for _, p := range v2AddedPaths {
		removed[p] = true
	}
	paths := make([]string, 0, len(taxonomyV2Paths)-len(v2AddedPaths))
	for _, p := range taxonomyV2Paths {
		if !removed[p] {
			paths = append(paths, p)
		}
	}
	return New(V1, paths)
}

// MapTopics translates topic IDs between taxonomy revisions by path,
// dropping topics absent from the target — what a server consuming
// versioned Sec-Browsing-Topics values must do when callers run
// different Chrome releases.
func MapTopics(from, to *Taxonomy, ids []int) []Topic {
	var out []Topic
	for _, id := range ids {
		t, ok := from.Get(id)
		if !ok {
			continue
		}
		if mapped, ok := to.ByPath(t.Path); ok {
			out = append(out, mapped)
		}
	}
	return out
}
