package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// This file implements the optional -escape mode of cmd/topicslint: a
// cross-check of the static hotpath analyzer against the compiler's
// real escape analysis. The static rules in hotpath.go are a
// conservative approximation; `go build -gcflags=-m=2` is ground
// truth. Running both closes the gap in each direction — the static
// pass catches allocation sources the compiler happily allows (a
// fmt.Sprintf is not an *escape*, just an allocation), and the escape
// pass catches heap moves the syntactic rules cannot see (a parameter
// leaking through a callee in another package).

// A HotpathRange locates one //topicslint:hotpath-annotated function:
// the compiler's escape findings inside [StartLine, EndLine] of File
// are violations of that function's zeroalloc contract.
type HotpathRange struct {
	File      string // absolute path
	Func      string
	StartLine int
	EndLine   int
}

// HotpathRanges collects the annotated functions of the loaded
// packages, sorted by file then line so downstream output is
// deterministic.
func HotpathRanges(pkgs []*Package) []HotpathRange {
	var out []HotpathRange
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if _, annotated := funcDirective(fd, "hotpath"); !annotated {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				out = append(out, HotpathRange{
					File:      start.Filename,
					Func:      fd.Name.Name,
					StartLine: start.Line,
					EndLine:   end.Line,
				})
			}
		}
	}
	return out
}

// CheckEscapes shells out to `go build -gcflags=-m=2 ./...` in the
// module directory and reports every escape-analysis finding ("escapes
// to heap", "moved to heap") that lands inside an annotated hotpath
// function. Findings honor the same line-level
// //topicslint:ignore hotpath suppressions as the static analyzer, so
// a justified cold-path allocation is excused once, in one place.
func CheckEscapes(moduleDir string, pkgs []*Package) ([]Diagnostic, error) {
	ranges := HotpathRanges(pkgs)
	if len(ranges) == 0 {
		return nil, nil
	}
	byFile := make(map[string][]HotpathRange)
	for _, r := range ranges {
		byFile[r.File] = append(byFile[r.File], r)
	}

	cmd := exec.Command("go", "build", "-gcflags=-m=2", "./...")
	cmd.Dir = moduleDir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		// The build must succeed for the escape output to be complete;
		// -m diagnostics alone never fail the build.
		return nil, fmt.Errorf("go build -gcflags=-m=2: %w\n%s", err, buf.Bytes())
	}

	var diags []Diagnostic
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		file, line, col, msg, ok := parseToolLine(sc.Text())
		if !ok || !escapeRelevant(msg) {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(moduleDir, file)
		}
		for _, r := range byFile[file] {
			if line >= r.StartLine && line <= r.EndLine {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: file, Line: line, Column: col},
					Analyzer: "hotpath",
					Message:  fmt.Sprintf("escape analysis: %s inside hotpath function %s", msg, r.Func),
				})
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Apply the packages' line-level suppressions, without re-reporting
	// malformed ignores (the static run already did).
	covered := make(map[string]bool)
	for _, p := range pkgs {
		for _, s := range p.Suppressions {
			if s.Malformed || s.Analyzer != "hotpath" {
				continue
			}
			covered[fmt.Sprintf("%s:%d", s.File, s.Line)] = true
			covered[fmt.Sprintf("%s:%d", s.File, s.Line+1)] = true
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		if !covered[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)] {
			kept = append(kept, d)
		}
	}
	sortDiags(kept)
	return kept, nil
}

// parseToolLine splits a `file:line:col: message` compiler diagnostic.
func parseToolLine(s string) (file string, line, col int, msg string, ok bool) {
	// file:line:col: msg — work right to left so Windows-style paths
	// would not confuse the split (and "# pkg" separator lines fail).
	rest, msg, found := strings.Cut(s, ": ")
	if !found {
		return "", 0, 0, "", false
	}
	parts := strings.Split(rest, ":")
	if len(parts) < 3 {
		return "", 0, 0, "", false
	}
	line, err1 := strconv.Atoi(parts[len(parts)-2])
	col, err2 := strconv.Atoi(parts[len(parts)-1])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	return strings.Join(parts[:len(parts)-2], ":"), line, col, msg, true
}

// escapeRelevant keeps the escape-analysis verdict lines that signal a
// heap allocation performed by the function itself ("escapes to heap",
// "moved to heap") and drops the inlining chatter, the -m=2 flow
// explanations, and the "leaking param" lines. Leaking params describe
// where a pointer argument *flows*, not an allocation at this site: a
// method receiver stored in a long-lived map leaks by design, and
// `dst to result ~r0` is the append contract working as intended. The
// allocation, if any, happens at a caller that passed a stack value —
// which the compiler reports separately as a heap move at that caller.
func escapeRelevant(msg string) bool {
	if strings.HasPrefix(msg, "flow:") || strings.HasPrefix(msg, "from ") {
		return false
	}
	return strings.Contains(msg, "escapes to heap") ||
		strings.Contains(msg, "moved to heap")
}
