package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroleak requires every goroutine launched in the campaign-running
// packages (internal/crawler, internal/orchestrator, internal/load) to
// have a reachable join in the same function. A crawl worker that
// nobody waits for outlives its campaign: it keeps a dataset journal,
// an engine pool or a shard checkpoint pinned while the next campaign
// starts, and across a long-running orchestrator the leaked goroutines
// accumulate until the process dies — precisely the failure the
// crash-safe resume work cannot paper over.
//
// Recognized joins, checked per `go` statement:
//
//   - WaitGroup: the goroutine body calls X.Done() (usually deferred)
//     and the launching function contains X.Wait() — including a Wait
//     inside a sibling goroutine of the same function (the
//     close-after-drain pattern);
//   - done-channel: the body closes or sends on a channel that the
//     launching function receives from, ranges over, or hands to a
//     callee (the reorder-buffer consumer pattern);
//
// A goroutine whose join genuinely lives elsewhere (a Handle.Wait
// method the caller invokes later) carries a
// //topicslint:ignore goroleak <reason> naming that contract.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc: `require a same-function join for every goroutine launched in
internal/crawler, internal/orchestrator, internal/load: a
WaitGroup Done/Wait pair or a done-channel the function observes
(receive, range, or hand-off to a callee). Fire-and-forget goroutines
leak across campaigns; externally-joined ones carry a justified
//topicslint:ignore goroleak.`,
	AppliesTo: inPackages(
		"internal/crawler",
		"internal/orchestrator",
		"internal/load",
	),
	Run: runGoroleak,
}

func runGoroleak(pass *Pass) {
	decls := declaredFuncs(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoroutines(pass, decls, fd.Name.Name, fd.Body)
		}
	}
}

// checkGoroutines inspects one function body (nested literals
// included — a `go` inside a worker closure still joins against the
// lexical function around it, which is the text the reader audits).
func checkGoroutines(pass *Pass, decls map[*types.Func]*ast.FuncDecl, fname string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		gb := goroutineBody(pass, decls, g)
		if gb == nil {
			pass.Reportf(g.Pos(),
				"goroutine body is not visible from this package (dynamic call); join it explicitly or launch through a supervised helper")
			return true
		}
		if joined, _ := goroutineJoined(pass, body, g, gb); !joined {
			pass.Reportf(g.Pos(),
				"goroutine launched in %s has no join in this function: no WaitGroup Done/Wait pair and no done-channel this function observes; a leaked goroutine outlives the campaign", fname)
		}
		return true
	})
}

// goroutineBody resolves the body the `go` statement runs: a function
// literal's block, or the declaration of an intra-package function.
func goroutineBody(pass *Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if callee := staticCallee(pass.TypesInfo, g.Call); callee != nil {
		if fd, ok := decls[callee]; ok && fd.Body != nil {
			return fd.Body
		}
	}
	return nil
}

// goroutineJoined decides whether the goroutine is joined in fn's
// body, and names the evidence.
func goroutineJoined(pass *Pass, fnBody *ast.BlockStmt, g *ast.GoStmt, gb *ast.BlockStmt) (bool, string) {
	info := pass.TypesInfo

	// WaitGroup join: Done in the body, Wait anywhere in the function.
	for _, obj := range methodReceivers(info, gb, "sync", "Done") {
		if len(methodReceiversOn(info, fnBody, "sync", "Wait", obj)) > 0 {
			return true, "WaitGroup " + obj.Name()
		}
	}

	// Done-channel join: the body closes or sends on a channel the
	// function observes.
	for _, ch := range channelsSignaled(info, gb) {
		if channelObserved(info, fnBody, g, ch) {
			return true, "channel " + ch.Name()
		}
	}
	return false, ""
}

// methodReceivers collects the root objects of receivers of pkg.name
// method calls under n ("wg" for wg.Done(), sync's Done).
func methodReceivers(info *types.Info, n ast.Node, pkgPath, name string) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Name() != name {
			return true
		}
		if obj := rootObject(info, sel.X); obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// methodReceiversOn filters methodReceivers to calls on a specific
// object.
func methodReceiversOn(info *types.Info, n ast.Node, pkgPath, name string, want types.Object) []types.Object {
	var out []types.Object
	for _, obj := range methodReceivers(info, n, pkgPath, name) {
		if obj == want {
			out = append(out, obj)
		}
	}
	return out
}

// channelsSignaled collects channel-typed variables the goroutine body
// closes or sends on — its completion signals.
func channelsSignaled(info *types.Info, body *ast.BlockStmt) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	add := func(e ast.Expr) {
		if !isChannel(info, e) {
			return
		}
		if obj := rootObject(info, e); obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			add(n.Chan)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					add(n.Args[0])
				}
			}
		}
		return true
	})
	return out
}

// channelObserved reports whether fnBody observes the channel outside
// the goroutine itself: a receive, a range, a select case, or passing
// it to a call (handing the join to a callee, the consume pattern).
func channelObserved(info *types.Info, fnBody *ast.BlockStmt, g *ast.GoStmt, ch types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found || n == g {
			return !found && n != g
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && usesObject(info, n.X, ch) {
				found = true
			}
		case *ast.RangeStmt:
			if isChannel(info, n.X) && usesObject(info, n.X, ch) {
				found = true
			}
		case *ast.CallExpr:
			// close(ch) in the function is a signal, not an
			// observation; any other call taking ch hands the join on.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					return true
				}
			}
			for _, a := range n.Args {
				if usesObject(info, a, ch) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	return mentionsObject(info, e, obj, false)
}

func isChannel(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
