// Package vclock is analyzer test input for the wall-clock-timer rule.
package vclock

import "time"

func sleepy() {
	time.Sleep(time.Second)         // want `time\.Sleep schedules on the wall clock`
	<-time.After(time.Second)       // want `time\.After schedules on the wall clock`
	t := time.NewTimer(time.Second) // want `time\.NewTimer schedules on the wall clock`
	t.Stop()
	tick := time.NewTicker(time.Second) // want `time\.NewTicker schedules on the wall clock`
	tick.Stop()
}

// suppressed shows the escape hatch: a justified ignore comment keeps
// the diagnostic out of the kept set (the harness asserts it lands in
// the suppressed set instead).
func suppressed() {
	//topicslint:ignore vclock testdata example of a justified wall-clock sleep
	time.Sleep(time.Millisecond)
}

// durations alone are fine: only the scheduling entry points are
// forbidden, not the time types.
func durations(d time.Duration) time.Duration {
	return d * 2
}
