// Package hotpath is analyzer test input for the zero-alloc contract.
package hotpath

import "fmt"

type rec struct{ id, n int }

func sink(v any) {}

// helper allocates; annotated callers see it at the call site.
func helper(name string) string { return "x-" + name }

//topicslint:hotpath zeroalloc
func serve(dst []rec, name string, n int) []rec {
	s := "id-" + name // want `string concatenation allocates`
	_ = s
	b := []byte(name) // want `\[\]byte\(string\) conversion allocates a copy`
	_ = b
	m := map[string]int{} // want `map literal allocates`
	_ = m
	q := make([]rec, 0, n) // want `make\(slice\) allocates`
	_ = q
	fmt.Println(name)             // want `fmt\.Println allocates`
	dst = append(dst, rec{id: 1}) // want `append to dst may grow its backing array`
	return dst
}

//topicslint:hotpath zeroalloc
func boxes(n int) {
	sink(n) // want `passing int n to interface parameter boxes it`
}

//topicslint:hotpath zeroalloc
func closures(n int) func() int {
	f := func() int { return n } // want `closure capturing n allocates a cell per creation`
	return f
}

//topicslint:hotpath zeroalloc
func callsHelper(name string) string {
	return helper(name) // want `call to helper, which allocates`
}

//topicslint:hotpath turbo // want `malformed hotpath annotation`
func badVerb() {}

// growOnce is the AppendBrowsingTopics shape: the append is
// capacity-guarded, and the one cold-path make carries a justified
// suppression.
//
//topicslint:hotpath zeroalloc
func growOnce(dst []rec, n int) []rec {
	if cap(dst)-len(dst) < n {
		grown := make([]rec, len(dst), len(dst)+n) //topicslint:ignore hotpath cold grow-once path, amortized across the campaign
		copy(grown, dst)
		dst = grown
	}
	for i := 0; i < n; i++ {
		dst = append(dst, rec{id: i})
	}
	return dst
}

// coldPath is unannotated: allocations are fine here.
func coldPath(name string) string {
	return fmt.Sprintf("cold-%s", name)
}
