// Package determinism is analyzer test input: every `// want` comment
// is a regexp the determinism analyzer must report on that line, and
// every unannotated line must stay silent.
package determinism

import (
	"fmt"
	"math/rand/v2"
	"os"
	"sort"
	"strings"
	"time"
)

// wallClock exercises the time.Now / time.Since rules.
func wallClock(start time.Time) time.Duration {
	t := time.Now()        // want `time\.Now reads the wall clock`
	d := time.Since(start) // want `time\.Since reads the wall clock`
	_ = t
	return d
}

// injectedClock is the approved pattern: the clock comes in from the
// caller, so nothing here reads the wall.
func injectedClock(now func() time.Time) time.Time {
	return now()
}

// globalRand exercises the global math/rand rules.
func globalRand() int {
	n := rand.IntN(10)                 // want `global rand\.IntN draws from the process-wide unseeded source`
	rand.Shuffle(n, func(i, j int) {}) // want `global rand\.Shuffle`
	return n
}

// seededRand is the approved pattern: an instance seeded by the caller.
func seededRand(seed uint64) int {
	rng := rand.New(rand.NewPCG(seed, 1))
	return rng.IntN(10)
}

// unsortedAppend leaks map order into the returned slice.
func unsortedAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m appends to out, which is never sorted afterwards`
		out = append(out, k)
	}
	return out
}

// sortedAppend is the false-positive guard: the append is followed by a
// sort, so iteration order is laundered away and nothing is reported.
func sortedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// helperSorted launders order through a repo-local sorting helper, like
// the analysis figures do with sortFigure3 — also not reported.
type figure struct{ Rows []string }

func helperSorted(m map[string]int) *figure {
	f := &figure{}
	for k := range m {
		f.Rows = append(f.Rows, k)
	}
	sortFigure(f)
	return f
}

func sortFigure(f *figure) { sort.Strings(f.Rows) }

// directWrite emits inside the loop: no later sort can fix that.
func directWrite(m map[string]int, b *strings.Builder) {
	for k := range m { // want `range over map m writes via WriteString`
		b.WriteString(k)
	}
}

// printedWrite feeds fmt output from inside the loop.
func printedWrite(m map[string]int) {
	for k, v := range m { // want `range over map m feeds fmt\.Fprintf output`
		fmt.Fprintf(os.Stderr, "%s=%d\n", k, v)
	}
}

// bootStamp is the suppression path: a justified wall-clock read,
// excused in place with a reason the reviewer can audit.
func bootStamp() time.Time {
	//topicslint:ignore determinism report-header timestamp, never feeds an artifact byte
	return time.Now()
}

// sliceRange ranges over a slice — ordered, never reported.
func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
