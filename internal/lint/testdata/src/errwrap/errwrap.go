// Package errwrap is analyzer test input for the %w-wrapping rule.
package errwrap

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func wrapping(err error, site string, n int) {
	_ = fmt.Errorf("loading %s: %v", site, err)  // want `error err formatted with %v flattens the chain`
	_ = fmt.Errorf("loading %s: %s", site, err)  // want `error err formatted with %s flattens the chain`
	_ = fmt.Errorf("attempt %d: %v", n, errBase) // want `error errBase formatted with %v flattens the chain`

	// The approved pattern: %w keeps the chain for errors.Is/As.
	_ = fmt.Errorf("loading %s: %w", site, err)
	// Non-error operands may use any verb.
	_ = fmt.Errorf("loading %s failed %d times: %q", site, n, site)
	// A * width consumes an argument; the error still maps to %w.
	_ = fmt.Errorf("%*d attempts: %w", 5, n, err)
}

// boundary is the suppression path: a public API edge that deliberately
// flattens the chain so internal error types stay internal.
func boundary(err error) error {
	//topicslint:ignore errwrap API boundary, the internal chain is hidden from clients on purpose
	return fmt.Errorf("campaign failed: %v", err)
}
