// Package structlayout is analyzer test input for the padding-budget
// rule. Sizes are gc/amd64: bool=1, int64=8, string=16 (8-aligned).
package structlayout

//topicslint:compact
type padded struct { // want `struct padded wastes 8 padding bytes \(size 24, optimal 16, budget 0\); optimal field order: B int64, A bool, C bool`
	A bool
	B int64
	C bool
}

// wire is serialized in declaration order (JSON); the budget documents
// the accepted waste instead of reordering.
//
//topicslint:compact 8
type wire struct {
	A bool
	B int64
	C bool
}

// tight is already optimal.
//
//topicslint:compact
type tight struct {
	B int64
	A bool
	C bool
}

//topicslint:compact -4 // want `malformed compact annotation`
type badBudget struct {
	A bool
}

//topicslint:compact
type count int // want `compact annotation on count, which is not a struct type`

// seed keeps its historical field order; golden fixtures pin the
// serialized bytes, so the waste is accepted with a justification.
//
//topicslint:compact
type seed struct { //topicslint:ignore structlayout serialized order pinned by golden fixtures
	A bool
	B int64
	C bool
}
