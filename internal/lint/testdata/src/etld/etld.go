// Package etld is analyzer test input for the hostname-surgery rule.
package etld

import "strings"

func surgery(host, domain string) {
	_ = strings.Split(host, ".")                 // want `ad-hoc hostname split of host`
	_ = strings.SplitN(domain, ".", 2)           // want `ad-hoc hostname split of domain`
	_ = strings.ToLower(host)                    // want `manual lowercasing of host`
	_ = strings.TrimSuffix(host, ".")            // want `manual trailing-dot strip of host`
	_ = strings.ToLower(strings.TrimSpace(host)) // want `manual lowercasing of strings\.TrimSpace\(host\)`
}

// notHosts shows the analyzer keys on host-like naming: generic string
// work stays silent.
func notHosts(path, text string) {
	_ = strings.Split(path, "/")
	_ = strings.Split(text, ".")
	_ = strings.ToLower(text)
	_ = strings.TrimSuffix(path, ".")
}

// displayHost is the suppression path: a justified one-off transform,
// excused in place rather than routed through internal/etld.
func displayHost(host string) string {
	//topicslint:ignore etld display-only lowercasing for a log line, not domain surgery
	return strings.ToLower(host)
}

// otherSeparators on hosts are not label surgery.
func otherSeparators(host string) {
	_ = strings.Split(host, ",")
	_ = strings.TrimSuffix(host, "/")
}
