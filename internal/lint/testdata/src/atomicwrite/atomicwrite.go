// Package atomicwrite is analyzer test input for the raw-artifact-write
// rule.
package atomicwrite

import "os"

func artifacts(outPath, reportPath string, raw []byte) {
	_, _ = os.Create(outPath)                                   // want `raw os\.Create of artifact outPath`
	_ = os.WriteFile(reportPath, raw, 0o644)                    // want `raw os\.WriteFile of artifact reportPath`
	_, _ = os.OpenFile(outPath, os.O_CREATE|os.O_WRONLY, 0o644) // want `raw os\.OpenFile of artifact outPath`
	_, _ = os.Create("crawl.jsonl.gz")                          // want `raw os\.Create of artifact "crawl\.jsonl\.gz"`
	_ = os.WriteFile("report.json", raw, 0o644)                 // want `raw os\.WriteFile of artifact "report\.json"`
	_, _ = os.Create(datasetFile())                             // want `raw os\.Create of artifact datasetFile\(\)`
}

// shardSidecars covers the orchestrator's per-shard artifacts: the
// journal shard itself, its checkpoint manifest, and the worker status
// file a monitor polls concurrently.
func shardSidecars(shardPath, statusPath string, raw []byte) {
	_ = os.WriteFile(shardPath+".status", raw, 0o644) // want `raw os\.WriteFile of artifact shardPath\+"\.status"`
	_ = os.WriteFile(statusPath, raw, 0o644)          // want `raw os\.WriteFile of artifact statusPath`
	_, _ = os.Create("crawl.jsonl.shard-2")           // want `raw os\.Create of artifact "crawl\.jsonl\.shard-2"`
	_ = os.WriteFile("crawl.jsonl.ckpt", raw, 0o644)  // want `raw os\.WriteFile of artifact "crawl\.jsonl\.ckpt"`
	_ = os.WriteFile("shard-1.status", raw, 0o644)    // want `raw os\.WriteFile of artifact "shard-1\.status"`
	_, _ = os.Create(checkpointName())                // want `raw os\.Create of artifact checkpointName\(\)`
}

func checkpointName() string { return "c.ckpt" }

func datasetFile() string { return "d.jsonl" }

// notArtifacts shows the analyzer keys on artifact-like naming and
// extensions: scratch files and sockets stay silent.
func notArtifacts(tmp, sock string, raw []byte) {
	_, _ = os.Create(tmp)
	_ = os.WriteFile(sock, raw, 0o644)
	_, _ = os.Create("scratch.tmp")
	_, _ = os.Open("report.json") // reading is fine
}

// suppressed writes carry a justification.
func suppressed(tracePath string) {
	_, _ = os.Create(tracePath) //topicslint:ignore atomicwrite streaming JSONL sink, cannot be written atomically
}
