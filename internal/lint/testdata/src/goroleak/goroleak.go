// Package goroleak is analyzer test input for the goroutine-join rule.
package goroleak

import "sync"

// joinedWG is the canonical worker-pool shape: clean.
func joinedWG(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// joinedChannel closes a done channel the function receives from: clean.
func joinedChannel() {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}

// joinedConsume hands the results channel to a callee that drains it:
// clean (the join lives in drain, reached from here).
func joinedConsume() {
	results := make(chan int)
	go func() {
		defer close(results)
		results <- 1
	}()
	drain(results)
}

func drain(ch chan int) {
	for range ch {
	}
}

// leaked has no join at all.
func leaked() {
	go func() { // want `goroutine launched in leaked has no join in this function`
	}()
}

// leakedNamed launches a declared function with no join.
func leakedNamed() {
	go worker() // want `goroutine launched in leakedNamed has no join in this function`
}

func worker() {}

type handle struct{ done chan struct{} }

// suppressedLaunch's join is the handle the caller waits on — the
// contract lives one level up, so the launch carries a justification.
func suppressedLaunch(h *handle) {
	go func() { //topicslint:ignore goroleak joined externally, the caller blocks on handle.Wait
		defer close(h.done)
	}()
}
