// Package locks is analyzer test input for the mutex-discipline rule.
package locks

import (
	"encoding/json"
	"net/http"
	"os/exec"
	"sync"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	vals map[string]int
	hits int
}

// leakEnd never releases the lock.
func leakEnd(s *store) {
	s.mu.Lock() // want `s\.mu\.Lock\(\) is still held when leakEnd falls off the end of the function`
	s.vals["a"] = 1
}

// leakReturn releases on one path only.
func leakReturn(s *store, early bool) int {
	s.mu.Lock()
	if early {
		return 0 // want `return while s\.mu is held`
	}
	s.mu.Unlock()
	return 1
}

// deferred is the canonical clean shape.
func deferred(s *store) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals["a"]
}

// paired releases explicitly on every path: clean.
func paired(s *store, early bool) int {
	s.mu.Lock()
	if early {
		s.mu.Unlock()
		return 0
	}
	v := s.vals["a"]
	s.mu.Unlock()
	return v
}

// blockingUnderLock stalls every other lock user behind channel ops,
// an HTTP round-trip and a process wait.
func blockingUnderLock(s *store, ch chan int, cl *http.Client, req *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- 1                        // want `channel send while s\.mu is held`
	<-ch                           // want `channel receive while s\.mu is held`
	_, _ = cl.Do(req)              // want `HTTP round-trip \(Do\) while s\.mu is held`
	_ = exec.Command("true").Run() // want `os/exec process wait \(Run\) while s\.mu is held`
}

// selectUnderLock blocks in select with no default.
func selectUnderLock(s *store, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without a default clause while s\.mu is held`
	case <-ch:
	}
}

// rlockWrite mutates the guarded structure under a read lock.
func rlockWrite(s *store) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.hits++            // want `write to s\.hits while s\.rw is only read-locked`
	delete(s.vals, "a") // want `write to s\.vals while s\.rw is only read-locked`
	return s.vals["b"]
}

// rlockRead is the clean read-path shape: locals are not writes to the
// guarded structure.
func rlockRead(s *store) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	total := 0
	for _, v := range s.vals {
		total += v
	}
	return total
}

// suppressedEncode serializes the trace sink behind the lock on
// purpose: single writer by design.
func suppressedEncode(s *store, enc *json.Encoder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = enc.Encode(s.vals) //topicslint:ignore locks single-writer trace sink, the lock serializes the encoder by design
}
