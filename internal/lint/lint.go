// Package lint implements topicslint, the repo's custom static-analysis
// suite. It machine-enforces the invariants the measurement pipeline
// depends on but that ordinary Go tooling cannot see:
//
//   - determinism: the index-determinism invariant (DESIGN.md) — no wall
//     clock, no global RNG, and no map-iteration order leaking into
//     reports inside the determinism-critical packages;
//   - vclock: all timing flows through the virtual clock so chaos and
//     retry schedules stay simulable;
//   - etld: hostname surgery happens in internal/etld only, so every
//     caller shares the memoized, interned etld.Cache splits;
//   - errwrap: fmt.Errorf wraps errors with %w in the crawler/chaos
//     paths, so the PR 1 error taxonomy survives errors.Is/As;
//   - atomicwrite: dataset/report/checkpoint artifacts reach disk
//     through internal/durable (atomic rename or a checkpointed
//     journal), never a raw os.Create that a crash can tear;
//   - hotpath: //topicslint:hotpath zeroalloc annotations make
//     allocation sources a lint error on the PR 7 serving hot paths
//     and their intra-package callees;
//   - locks: mutex discipline — every Lock has an Unlock on every
//     return path, nothing blocks while a lock is held, and RWMutex
//     read sections stay read-only;
//   - goroleak: every goroutine launched in the campaign-running
//     packages has a same-function join (WaitGroup or done-channel);
//   - structlayout: //topicslint:compact <budget> annotations bound
//     the padding waste of per-user and per-record structs.
//
// The package mirrors the golang.org/x/tools/go/analysis API (Analyzer,
// Pass, Diagnostic) but is self-contained: the build environment has no
// module proxy, so the framework runs on go/ast + go/types with a
// source-level importer (see load.go). cmd/topicslint is the
// multichecker binary; `make lint` runs it over ./...
//
// Any diagnostic can be suppressed at the offending line (or the line
// above it) with:
//
//	//topicslint:ignore <analyzer> <reason>
//
// The reason is mandatory — a bare ignore is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //topicslint:ignore comments.
	Name string
	// Doc is a one-paragraph description: what it forbids and why.
	Doc string
	// AppliesTo filters packages by module-relative import path
	// ("internal/analysis", "cmd/topics-crawl", "" for the root
	// package). A nil AppliesTo runs everywhere.
	AppliesTo func(relPath string) bool
	// Run inspects one package and reports diagnostics on the pass.
	Run func(*Pass)
}

// A Pass carries one (analyzer, package) unit of work, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Inspect walks every file of the pass in source order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// funcOf resolves expr to a package-level function or method object.
// It returns the defining package path, the function name, and whether
// the receiver is nil (package-level) — the distinction between
// rand.IntN (global, unseeded) and rng.IntN (instance, caller-seeded).
func funcOf(info *types.Info, expr ast.Expr) (pkgPath, name string, pkgLevel, ok bool) {
	var obj types.Object
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	case *ast.Ident:
		obj = info.Uses[e]
	default:
		return "", "", false, false
	}
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	pkgLevel = !isSig || sig.Recv() == nil
	return fn.Pkg().Path(), fn.Name(), pkgLevel, true
}

// ExprString renders an expression compactly for matching and messages.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return ExprString(e.Fun) + "(" + strings.Join(args, ", ") + ")"
	case *ast.IndexExpr:
		return ExprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.BinaryExpr:
		return ExprString(e.X) + e.Op.String() + ExprString(e.Y)
	case *ast.BasicLit:
		return e.Value
	}
	return "?"
}

// inPackages builds an AppliesTo filter from module-relative paths.
func inPackages(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(rel string) bool { return set[rel] }
}

// notPackage builds an AppliesTo filter excluding one package.
func notPackage(path string) func(string) bool {
	return func(rel string) bool { return rel != path }
}

// All returns every analyzer of the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, VClock, ETLD, ErrWrap, Atomicwrite,
		Hotpath, Locks, Goroleak, Structlayout,
	}
}

// ByName resolves an analyzer name, for -run filters and ignore
// comments.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Suppression is one parsed //topicslint:ignore comment.
type Suppression struct {
	// File and Line locate the comment.
	File string
	Line int
	// Analyzer is the suppressed analyzer name; Reason the mandatory
	// justification.
	Analyzer string
	Reason   string
	// Malformed is set when the comment lacks an analyzer or reason;
	// such comments suppress nothing and are themselves reported.
	Malformed bool
}

var ignoreRe = regexp.MustCompile(`^//topicslint:ignore(?:\s+(\S+))?(?:\s+(.+?))?\s*$`)

// parseSuppressions extracts every topicslint:ignore comment of a file.
func parseSuppressions(fset *token.FileSet, f *ast.File) []Suppression {
	var out []Suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//topicslint:ignore") {
				continue
			}
			pos := fset.Position(c.Pos())
			m := ignoreRe.FindStringSubmatch(c.Text)
			s := Suppression{File: pos.Filename, Line: pos.Line}
			if m == nil || m[1] == "" || m[2] == "" || ByName(m[1]) == nil {
				s.Malformed = true
			} else {
				s.Analyzer, s.Reason = m[1], m[2]
			}
			out = append(out, s)
		}
	}
	return out
}

// Filter splits diagnostics into kept and suppressed according to the
// package's ignore comments, and reports malformed ignores as fresh
// diagnostics. A suppression covers its own source line and the line
// immediately below it (so it works both trailing the offender and on
// a line of its own above it).
func Filter(diags []Diagnostic, sups []Suppression) (kept, suppressed []Diagnostic) {
	type key struct {
		file string
		line int
		name string
	}
	covered := make(map[key]bool)
	for _, s := range sups {
		if s.Malformed {
			kept = append(kept, Diagnostic{
				Pos:      token.Position{Filename: s.File, Line: s.Line, Column: 1},
				Analyzer: "topicslint",
				Message:  "malformed suppression: want //topicslint:ignore <analyzer> <reason> with a known analyzer",
			})
			continue
		}
		covered[key{s.File, s.Line, s.Analyzer}] = true
		covered[key{s.File, s.Line + 1, s.Analyzer}] = true
	}
	for _, d := range diags {
		if covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	sortDiags(kept)
	sortDiags(suppressed)
	return kept, suppressed
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
