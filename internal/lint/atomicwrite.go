package lint

import (
	"go/ast"
	"path"
	"strings"
)

// Atomicwrite flags raw os.Create / os.WriteFile / os.OpenFile calls on
// artifact-like paths outside internal/durable. Every dataset, report,
// trace or checkpoint artifact must reach disk through the durable
// layer (WriteFileAtomic's write-temp/fsync/rename discipline, or a
// checkpointed Journal), so a crash mid-write can never leave a torn
// half-artifact behind. Streaming sinks that cannot be written
// atomically (a JSONL trace stream, the gzip dataset writer) carry an
// explicit //topicslint:ignore with their justification.
var Atomicwrite = &Analyzer{
	Name: "atomicwrite",
	Doc: `flag raw os.Create/os.WriteFile/os.OpenFile of dataset, report
or checkpoint artifacts outside internal/durable: artifact writes go
through durable.WriteFileAtomic (temp + fsync + rename) or a
durable.Journal so a crash never tears a file readers depend on.`,
	AppliesTo: notPackage("internal/durable"),
	Run:       runAtomicwrite,
}

// artifactWords mark a path operand as (probably) a persisted artifact.
// Like the etld analyzer's host heuristic, this is textual on purpose:
// paths are plain strings, so the variable naming carries the intent.
var artifactWords = []string{
	"out", "path", "dataset", "report", "trace", "manifest",
	"allowlist", "attest", "spec", "csv", "json", "artifact",
	"shard", "status", "ckpt", "checkpoint",
}

// artifactExts are file extensions of on-disk artifacts the pipeline
// reads back (so a torn write poisons a later stage). ".ckpt" and
// ".status" are the orchestrator's shard sidecars: a torn manifest
// silently discards a checkpoint (resume falls back to a salvage scan)
// and a torn status file blinds topics-monitor -shards mid-campaign.
var artifactExts = []string{
	".json", ".jsonl", ".gz", ".csv", ".dat", ".pem", ".txt",
	".ckpt", ".status",
}

func artifactLike(pass *Pass, e ast.Expr) bool {
	if s, ok := stringArg(pass.TypesInfo, e); ok {
		ext := path.Ext(s)
		// Shard journals interpose ".shard-i" between the dataset name
		// and its sidecar suffixes (crawl.jsonl.shard-2, …shard-2.gz).
		if strings.HasPrefix(ext, ".shard-") {
			return true
		}
		for _, want := range artifactExts {
			if ext == want {
				return true
			}
		}
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		name := strings.ToLower(id.Name)
		for _, w := range artifactWords {
			if strings.Contains(name, w) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func runAtomicwrite(pass *Pass) {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, name, pkgLevel, ok := funcOf(pass.TypesInfo, call.Fun)
		if !ok || !pkgLevel || pkgPath != "os" {
			return true
		}
		switch name {
		case "Create", "WriteFile", "OpenFile":
		default:
			return true
		}
		if len(call.Args) == 0 || !artifactLike(pass, call.Args[0]) {
			return true
		}
		pass.Reportf(call.Pos(),
			"raw os.%s of artifact %s: artifact writes go through internal/durable (WriteFileAtomic, or a Journal for record streams) so a crash cannot tear the file", name, ExprString(call.Args[0]))
		return true
	})
}
