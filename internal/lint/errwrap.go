package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap requires %w when fmt.Errorf carries an error in the crawler,
// chaos and browser paths. The PR 1 error taxonomy (chaos.Classify)
// walks wrapped chains with errors.Is/As; a %v or %s flattens the chain
// to text and silently reclassifies the failure as ClassOther.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: `require %w (not %v/%s) for error arguments of fmt.Errorf in
internal/crawler, internal/chaos and internal/browser: the error
taxonomy classifies failures with errors.Is/As over the wrapped chain,
and a flattened error degrades to ClassOther in the failure breakdown.`,
	AppliesTo: inPackages("internal/crawler", "internal/chaos", "internal/browser"),
	Run:       runErrWrap,
}

func runErrWrap(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, name, pkgLevel, ok := funcOf(pass.TypesInfo, call.Fun)
		if !ok || !pkgLevel || pkgPath != "fmt" || name != "Errorf" || len(call.Args) < 2 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return true
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		verbs, ok := formatVerbs(format)
		if !ok {
			return true
		}
		for i, verb := range verbs {
			argIdx := 1 + i
			if argIdx >= len(call.Args) {
				break
			}
			arg := call.Args[argIdx]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Type == nil || !types.AssignableTo(tv.Type, errType) {
				continue
			}
			if verb == 'v' || verb == 's' {
				pass.Reportf(arg.Pos(),
					"error %s formatted with %%%c flattens the chain: chaos.Classify uses errors.Is/As, so wrap with %%w", ExprString(arg), verb)
			}
		}
		return true
	})
}

// formatVerbs returns the verb consuming each successive argument of a
// Printf-style format. A '*' width or precision consumes an argument
// and is recorded as '*'. Indexed arguments (%[1]v) are rare and
// disable the check (ok=false) rather than risk a mismapped verb.
func formatVerbs(format string) (verbs []rune, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	spec:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '%':
				break spec
			case c == '[':
				return nil, false
			case c == '*':
				verbs = append(verbs, '*')
			case strings.ContainsRune("+-# .0123456789", rune(c)):
				// flags, width, precision
			default:
				verbs = append(verbs, rune(c))
				break spec
			}
		}
	}
	return verbs, true
}
