package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A Package is one loaded, type-checked module package plus everything
// the analyzers and the suppression filter need.
type Package struct {
	// ImportPath is the full path; RelPath is module-relative ("" for
	// the module root package).
	ImportPath string
	RelPath    string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Suppressions collects every //topicslint:ignore in the package.
	Suppressions []Suppression
	// TypeErrors holds any type-check errors. Analyzers still run (the
	// Info maps are partially filled), but the driver surfaces them.
	TypeErrors []error
}

// Loader discovers, parses and type-checks module packages. It has no
// dependency on the go command or a module proxy: module-internal
// imports resolve from source under the module root, and standard
// library imports resolve through go/importer's source compiler, which
// type-checks GOROOT/src directly.
//
// Loading is concurrent: each package is a once-guarded future, and a
// package's module-internal dependencies load in parallel before its
// own type check runs. Go's import graph is acyclic, so waiting on a
// dependency's future cannot deadlock. The standard-library importer
// is not safe for concurrent use and is serialized behind stdlibMu;
// module packages only wait there on a cold stdlib cache.
type Loader struct {
	ModuleDir  string
	ModulePath string

	// Jobs bounds LoadAll's root-package concurrency; 0 means
	// GOMAXPROCS.
	Jobs int

	// Overlay substitutes in-memory content for files by absolute path
	// at parse time, letting tests type-check a deliberately broken
	// variant of a real source file without touching the tree.
	Overlay map[string][]byte

	fset *token.FileSet

	stdlibMu sync.Mutex
	stdlib   types.Importer

	mu      sync.Mutex
	checked map[string]*types.Package // by import path, incl. deps
	futures map[string]*loadFuture    // by rel path
}

// A loadFuture is the once-guarded result of loading one package: the
// first goroutine to need the package loads it, everyone else blocks
// on the same Do and shares the result.
type loadFuture struct {
	once sync.Once
	pkg  *Package
	err  error
}

// NewLoader builds a Loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       fset,
		stdlib:     importer.ForCompiler(fset, "source", nil),
		checked:    make(map[string]*types.Package),
		futures:    make(map[string]*loadFuture),
	}, nil
}

func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					p := strings.TrimSpace(rest)
					if unq, err := strconv.Unquote(p); err == nil {
						p = unq
					}
					return d, p, nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
	}
}

// LoadAll discovers every package under the module root (skipping
// testdata, vendor and hidden directories), loads them across a worker
// pool, and returns them sorted by import path — the report order is
// identical for any worker count.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	rels := make([]string, len(dirs))
	for i, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			rel = ""
		}
		rels[i] = filepath.ToSlash(rel)
	}

	jobs := l.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(rels) {
		jobs = len(rels)
	}
	if jobs < 1 {
		jobs = 1
	}

	pkgs := make([]*Package, len(rels))
	errs := make([]error, len(rels))
	var next int64
	var idxMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idxMu.Lock()
				i := int(next)
				next++
				idxMu.Unlock()
				if i >= len(rels) {
					return
				}
				pkgs[i], errs[i] = l.load(rels[i])
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", dirs[i], err)
		}
	}
	return pkgs, nil
}

// Load loads the single package at the module-relative path (after
// loading its module-internal dependencies).
func (l *Loader) Load(relPath string) (*Package, error) {
	return l.load(filepath.ToSlash(relPath))
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// load resolves the package's future, running the real work exactly
// once no matter how many goroutines ask.
func (l *Loader) load(rel string) (*Package, error) {
	l.mu.Lock()
	fu, ok := l.futures[rel]
	if !ok {
		fu = &loadFuture{}
		l.futures[rel] = fu
	}
	l.mu.Unlock()
	fu.once.Do(func() { fu.pkg, fu.err = l.doLoad(rel) })
	return fu.pkg, fu.err
}

func (l *Loader) doLoad(rel string) (*Package, error) {
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	importPath := l.ModulePath
	if rel != "" {
		importPath += "/" + rel
	}

	// Parse the non-test sources, with comments for suppressions. The
	// suite analyzes production code only; tests may legitimately use
	// the wall clock and wall-clock sleeps.
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		var src any
		if data, ok := l.Overlay[path]; ok {
			src = data
		}
		f, err := parser.ParseFile(l.fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	// Load module-internal dependencies first — in parallel, they are
	// independent of each other — so the type checker finds them in
	// l.checked (one types.Package instance per path; mixing instances
	// would make identical types unassignable).
	var deps []string
	seen := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if sub, ok := l.relOf(path); ok && sub != rel && !seen[sub] {
				seen[sub] = true
				deps = append(deps, sub)
			}
		}
	}
	depErrs := make([]error, len(deps))
	var dwg sync.WaitGroup
	for i, sub := range deps {
		dwg.Add(1)
		go func(i int, sub string) {
			defer dwg.Done()
			_, depErrs[i] = l.load(sub)
		}(i, sub)
	}
	dwg.Wait()
	for i, err := range depErrs {
		if err != nil {
			return nil, fmt.Errorf("dependency %s: %w", deps[i], err)
		}
	}

	pkg := &Package{
		ImportPath: importPath,
		RelPath:    rel,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, pkg.Info) // errors collected above
	pkg.Types = tpkg
	for _, f := range files {
		pkg.Suppressions = append(pkg.Suppressions, parseSuppressions(l.fset, f)...)
	}
	l.mu.Lock()
	l.checked[importPath] = tpkg
	l.mu.Unlock()
	return pkg, nil
}

// relOf maps an import path to its module-relative form.
func (l *Loader) relOf(importPath string) (string, bool) {
	if importPath == l.ModulePath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(importPath, l.ModulePath+"/"); ok {
		return rest, true
	}
	return "", false
}

// Import implements types.Importer: module packages come from the
// loader's own cache (loaded from source), everything else from the
// standard library's source importer, which is not concurrency-safe
// and therefore serialized.
func (l *Loader) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	p, ok := l.checked[path]
	l.mu.Unlock()
	if ok {
		return p, nil
	}
	if rel, ok := l.relOf(path); ok {
		pkg, err := l.load(rel)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	l.stdlibMu.Lock()
	defer l.stdlibMu.Unlock()
	return l.stdlib.Import(path)
}

// RunAnalyzers applies every in-scope analyzer to the package and
// returns kept and suppressed diagnostics, sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) (kept, suppressed []Diagnostic) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.RelPath) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		a.Run(pass)
	}
	return Filter(diags, pkg.Suppressions)
}
