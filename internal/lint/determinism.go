package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the index-determinism invariant (DESIGN.md) in
// the packages whose output must be byte-identical across reruns,
// worker counts and GOMAXPROCS settings: no wall clock, no global RNG,
// and no map-iteration order reaching an output.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: `forbid nondeterminism sources in the determinism-critical packages
(internal/analysis, internal/webworld, internal/chaos, internal/crawler,
internal/dataset, internal/obs, internal/load, internal/durable,
internal/orchestrator, internal/fsck): time.Now and time.Since
read the wall clock; global math/rand functions draw from a process-wide
unseeded source; ranging over a map while appending to a slice (without
sorting it afterwards) or while writing output bakes random iteration
order into the result.`,
	AppliesTo: inPackages(
		"internal/analysis",
		"internal/webworld",
		"internal/chaos",
		"internal/crawler",
		"internal/dataset",
		"internal/obs",
		// The load harness promises a byte-identical report for any
		// worker count, so it is determinism-critical end to end.
		"internal/load",
		// The durable journal and the orchestrator merge both promise
		// byte-identical artifacts (replay-stable journals, shard-count
		// invariant merged reports), so their code paths must not read
		// wall clocks or leak map order either.
		"internal/durable",
		"internal/orchestrator",
		// The repair path promises recrawls byte-identical to the damaged
		// originals — fully seeded, no wall clock.
		"internal/fsck",
	),
	Run: runDeterminism,
}

// randConstructors are the caller-seeded entry points of math/rand and
// math/rand/v2; everything else at package level draws from the shared
// global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true,
	"NewChaCha8": true, "NewZipf": true,
}

func runDeterminism(pass *Pass) {
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, name, pkgLevel, ok := funcOf(pass.TypesInfo, sel)
		if !ok || !pkgLevel {
			return true
		}
		switch {
		case pkgPath == "time" && (name == "Now" || name == "Since"):
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock, breaking the index-determinism invariant; thread a vclock.Clock or an injected Now func through the config", name)
		case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[name]:
			pass.Reportf(sel.Pos(),
				"global rand.%s draws from the process-wide unseeded source; use a rand.New(rand.NewPCG(seed, ...)) instance derived from the campaign seed", name)
		}
		return true
	})
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
}

// checkMapRanges flags `range m` loops (m a map) whose body feeds an
// order-sensitive sink: a direct write (io.Writer / fmt output) is
// always flagged; an append to a slice is flagged unless the slice is
// sorted later in the same function.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		var appended []appendTarget
		stop := false
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			if stop {
				return false
			}
			if inner, ok := m.(*ast.RangeStmt); ok && inner != rs {
				// A nested map-range reports on its own.
				if itv, ok := pass.TypesInfo.Types[inner.X]; ok && itv.Type != nil {
					if _, isMap := itv.Type.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
			switch m := m.(type) {
			case *ast.CallExpr:
				if sink, what := outputSink(pass.TypesInfo, m); sink {
					pass.Reportf(rs.Pos(),
						"range over map %s %s inside the loop: map order is random per process, so the output order is too; collect, sort, then emit", ExprString(rs.X), what)
					stop = true
					return false
				}
			case *ast.AssignStmt:
				for i, rhs := range m.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass.TypesInfo, call) && i < len(m.Lhs) {
						if obj := rootObject(pass.TypesInfo, m.Lhs[i]); obj != nil {
							appended = append(appended, appendTarget{
								obj:  obj,
								base: baseObject(pass.TypesInfo, m.Lhs[i]),
								name: ExprString(m.Lhs[i]),
							})
						}
					}
				}
			}
			return true
		})
		if stop {
			return true
		}
		for _, tgt := range appended {
			if !sortedAfter(pass, body, rs, tgt) {
				pass.Reportf(rs.Pos(),
					"range over map %s appends to %s, which is never sorted afterwards in this function: map order is random per process; sort %s (or range over sorted keys) before it is used", ExprString(rs.X), tgt.name, tgt.name)
			}
		}
		return true
	})
}

// outputSink reports whether call writes somewhere order-sensitive: the
// fmt print family, io.WriteString, or any Write*/Print* method (which
// covers io.Writer, bufio.Writer, strings.Builder, tabwriter, ...).
func outputSink(info *types.Info, call *ast.CallExpr) (bool, string) {
	if pkgPath, name, pkgLevel, ok := funcOf(info, call.Fun); ok {
		if pkgLevel {
			switch {
			case pkgPath == "fmt" && strings.HasPrefix(name, "Print"),
				pkgPath == "fmt" && strings.HasPrefix(name, "Fprint"),
				pkgPath == "io" && name == "WriteString":
				return true, "feeds " + pkgPath + "." + name + " output"
			}
			return false, ""
		}
		if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print") {
			return true, "writes via " + name
		}
	}
	return false, ""
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// rootObject resolves the variable at the base of an lvalue: out,
// s.items, out[i] all root at their leftmost identifier's object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			if obj := info.Uses[x.Sel]; obj != nil {
				return obj
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// An appendTarget remembers one slice appended to inside a map range:
// the resolved object (the field for s.Rows), the base variable (s),
// and the source text for the message.
type appendTarget struct {
	obj  types.Object
	base types.Object
	name string
}

// sortNames are the sort/slices entry points that impose a total order.
var sortNames = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true, "Stable": true,
	"Slice": true, "SliceStable": true, "Strings": true, "Ints": true,
	"Float64s": true, "Sorted": true, "SortedFunc": true, "SortedStableFunc": true,
}

// isSortCall recognizes both the sort/slices standard entry points and
// repo-local helpers whose name says they sort (sortFigure3, sortRows,
// ...): the "intervening sort" that launders map order back into a
// deterministic one.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	pkgPath, name, pkgLevel, ok := funcOf(info, call.Fun)
	if !ok {
		return false
	}
	if pkgLevel && (pkgPath == "sort" || pkgPath == "slices") && sortNames[name] {
		return true
	}
	return strings.Contains(strings.ToLower(name), "sort")
}

// sortedAfter reports whether, lexically after the range statement and
// within the same function body, the appended slice (or its base
// variable) reaches a sorting call.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, tgt appendTarget) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || !isSortCall(pass.TypesInfo, call) {
			return true
		}
		ast.Inspect(call, func(a ast.Node) bool {
			id, ok := a.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil && (obj == tgt.obj || (tgt.base != nil && obj == tgt.base)) {
				found = true
				return false
			}
			return true
		})
		return !found
	})
	return found
}

// baseObject resolves the leftmost identifier of an lvalue chain: the
// receiver f in f.Rows, the slice out in out[i].
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
