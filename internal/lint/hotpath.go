package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath enforces the zero-alloc contract on annotated serving-path
// functions. A function carrying
//
//	//topicslint:hotpath zeroalloc
//
// in its doc comment must not contain an allocation source, and every
// intra-package function it (transitively) calls must be clean too —
// a hidden fmt.Sprintf three calls down re-introduces the per-request
// garbage the PR 7 zero-alloc pass removed, and at millions of users
// the allocator, not the CPU, becomes the serving bottleneck.
//
// Allocation sources, per the Go compiler's escape rules:
//
//   - any fmt function (formatting boxes arguments and builds strings);
//   - string concatenation producing a non-constant string;
//   - []byte(string) / string([]byte) conversions (they copy);
//   - map and slice composite literals, and make of a map/slice/chan;
//   - append whose destination is not capacity-guarded in the same
//     function (no cap(dst) check proving growth is bounded);
//   - interface boxing at a call site: a concrete non-pointer value
//     passed to an interface parameter heap-allocates the box;
//   - function literals that capture enclosing variables (a closure
//     cell per creation).
//
// Calls into other packages are outside the walk (the analyzer is
// per-package); the optional -escape mode of cmd/topicslint closes
// that gap by cross-checking `go build -gcflags=-m=2` escape output
// against the annotated functions. Intentional cold-path allocations
// (an epoch rotation, a cache-miss render) carry a
// //topicslint:ignore hotpath <reason> at the call site.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: `enforce //topicslint:hotpath zeroalloc annotations: no allocation
sources (fmt calls, string concatenation, string<->[]byte conversions,
map/slice literals, make, un-capacity-guarded append, interface boxing,
capturing closures) inside the annotated function or any intra-package
callee; cold-path exceptions carry //topicslint:ignore hotpath at the
call site. cmd/topicslint -escape cross-checks go build -gcflags=-m=2.`,
	Run: runHotpath,
}

// An allocSite is one statically-detected allocation source.
type allocSite struct {
	pos  token.Pos
	what string
}

func runHotpath(pass *Pass) {
	decls := declaredFuncs(pass)
	hp := &hotpathWalker{
		pass:  pass,
		decls: decls,
		memo:  make(map[*types.Func][]allocSite),
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			d, annotated := funcDirective(fd, "hotpath")
			if !annotated {
				continue
			}
			if len(d.Args) != 1 || d.Args[0] != "zeroalloc" {
				pass.Reportf(d.Pos, "malformed hotpath annotation: want //topicslint:hotpath zeroalloc")
				continue
			}
			if fd.Body == nil {
				continue
			}
			// Direct allocation sources in the annotated body.
			for _, s := range hp.directAllocs(fd) {
				pass.Reportf(s.pos, "%s inside hotpath function %s (annotated zeroalloc)", s.what, fd.Name.Name)
			}
			// Intra-package callees: report at the call site, so a
			// justified cold-path call can be suppressed where it
			// happens.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(pass.TypesInfo, call)
				if callee == nil || callee.Pkg() != pass.Pkg {
					return true
				}
				cd, ok := decls[callee]
				if !ok || cd == fd {
					return true
				}
				if sites := hp.transitiveAllocs(callee); len(sites) > 0 {
					first := sites[0]
					pass.Reportf(call.Pos(),
						"call to %s, which allocates (%s at %s), inside hotpath function %s",
						callee.Name(), first.what, pass.Fset.Position(first.pos), fd.Name.Name)
				}
				return true
			})
		}
	}
}

// hotpathWalker memoizes per-function allocation analysis so shared
// callees are walked once per package.
type hotpathWalker struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func][]allocSite
}

// transitiveAllocs returns the allocation sites reachable from fn
// through intra-package calls, the function's own sites first.
// Recursion is cycle-safe: a function currently being walked
// contributes nothing to its own answer.
func (hp *hotpathWalker) transitiveAllocs(fn *types.Func) []allocSite {
	if sites, ok := hp.memo[fn]; ok {
		return sites
	}
	hp.memo[fn] = nil // in-progress marker; breaks cycles
	fd := hp.decls[fn]
	if fd == nil || fd.Body == nil {
		return nil
	}
	sites := hp.directAllocs(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(hp.pass.TypesInfo, call)
		if callee == nil || callee.Pkg() != hp.pass.Pkg || callee == fn {
			return true
		}
		if _, declared := hp.decls[callee]; !declared {
			return true
		}
		sites = append(sites, hp.transitiveAllocs(callee)...)
		return true
	})
	hp.memo[fn] = sites
	return sites
}

// directAllocs scans one function body for allocation sources, not
// descending into nested function literals (the literal itself is
// reported when it captures; its body is its own scope).
func (hp *hotpathWalker) directAllocs(fd *ast.FuncDecl) []allocSite {
	info := hp.pass.TypesInfo
	guarded := capGuardedObjects(info, fd.Body)
	var out []allocSite
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, allocSite{pos: pos, what: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if free := freeVars(info, n); len(free) > 0 {
				report(n.Pos(), "closure capturing %s allocates a cell per creation", free[0].Name())
			}
			return false // the literal's body is its own scope
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info, n.Lhs[0]) {
				report(n.Pos(), "string += allocates")
			}
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			}
		case *ast.CallExpr:
			hp.checkCall(n, guarded, report)
		}
		return true
	})
	return out
}

func (hp *hotpathWalker) checkCall(call *ast.CallExpr, guarded map[types.Object]bool, report func(token.Pos, string, ...any)) {
	info := hp.pass.TypesInfo

	// Conversions: []byte(string) and string([]byte) copy their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.Types[call.Args[0]].Type
		if isByteSlice(to) && isString(from) {
			report(call.Pos(), "[]byte(string) conversion allocates a copy")
			return
		}
		if isString(to) && isByteSlice(from) {
			report(call.Pos(), "string([]byte) conversion allocates a copy")
			return
		}
		return
	}

	// Builtins: make of map/slice/chan, and un-guarded append growth.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				if len(call.Args) > 0 {
					switch info.Types[call.Args[0]].Type.Underlying().(type) {
					case *types.Map:
						report(call.Pos(), "make(map) allocates")
					case *types.Slice:
						report(call.Pos(), "make(slice) allocates")
					case *types.Chan:
						report(call.Pos(), "make(chan) allocates")
					}
				}
			case "append":
				if len(call.Args) > 0 {
					dst := rootObject(info, call.Args[0])
					if dst == nil || !guarded[dst] {
						report(call.Pos(), "append to %s may grow its backing array (no cap() guard in this function)", ExprString(call.Args[0]))
					}
				}
			}
			return
		}
	}

	// Any fmt entry point formats (boxing + string building).
	if pkgPath, name, _, ok := funcOf(info, call.Fun); ok && pkgPath == "fmt" {
		report(call.Pos(), "fmt.%s allocates", name)
		return
	}

	// Interface boxing: a concrete non-pointer-shaped argument passed
	// to an interface parameter heap-allocates the box.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				param = s.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if !isInterfaceType(param) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || isInterfaceType(at) || isPointerShaped(at) || at == types.Typ[types.UntypedNil] {
			continue
		}
		report(arg.Pos(), "passing %s %s to interface parameter boxes it (heap allocation)", at.String(), ExprString(arg))
	}
}

// capGuardedObjects collects slice variables whose capacity the
// function inspects via cap(x): an append to such a slice is treated
// as growth-bounded (the AppendBrowsingTopics grow-once pattern).
func capGuardedObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "cap" || len(call.Args) != 1 {
			return true
		}
		if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
			return true
		}
		if obj := rootObject(info, call.Args[0]); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isStringType(info *types.Info, e ast.Expr) bool {
	return isString(info.Types[e].Type)
}

// isNonConstString reports whether e is a string-typed expression the
// compiler cannot constant-fold (constant concatenation is free).
func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || !isString(tv.Type) {
		return false
	}
	return tv.Value == nil
}

// isPointerShaped reports whether boxing a value of type t into an
// interface stores the value directly (pointers, maps, channels,
// functions, unsafe pointers) rather than heap-allocating a copy.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}
