package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// This file is the shared per-function dataflow machinery the v2
// analyzers (hotpath, locks, goroleak, structlayout) are built on: a
// directive parser for //topicslint:<verb> annotations, static callee
// resolution over the typed AST, return-path enumeration, and the
// goroutine-join detection goroleak uses. Everything stays on
// go/ast + go/types — no x/tools dependency, consistent with the rest
// of the framework.

// A Directive is one parsed //topicslint:<verb> annotation attached to
// a declaration, e.g. //topicslint:hotpath zeroalloc or
// //topicslint:compact 8.
type Directive struct {
	// Verb names the annotation family ("hotpath", "compact").
	Verb string
	// Args are the whitespace-separated words after the verb.
	Args []string
	// Pos locates the comment, for misuse diagnostics.
	Pos token.Pos
}

// parseDirectives extracts every //topicslint:<verb> directive of a
// comment group; ignore comments are handled separately and skipped.
func parseDirectives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, "//topicslint:")
		if !ok || strings.HasPrefix(rest, "ignore") {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		out = append(out, Directive{Verb: fields[0], Args: fields[1:], Pos: c.Pos()})
	}
	return out
}

// funcDirective returns fn's directive with the given verb, if any.
func funcDirective(fn *ast.FuncDecl, verb string) (Directive, bool) {
	for _, d := range parseDirectives(fn.Doc) {
		if d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// typeDirectives collects directives with the given verb from every
// type declaration of the pass, keyed by the *ast.TypeSpec they
// annotate. The directive may sit on the TypeSpec itself or on the
// enclosing GenDecl (the usual place for a single-type declaration).
func typeDirectives(pass *Pass, verb string) map[*ast.TypeSpec]Directive {
	out := make(map[*ast.TypeSpec]Directive)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			var fromGen []Directive
			for _, d := range parseDirectives(gd.Doc) {
				if d.Verb == verb {
					fromGen = append(fromGen, d)
				}
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if ds := parseDirectives(ts.Doc); len(ds) > 0 {
					for _, d := range ds {
						if d.Verb == verb {
							out[ts] = d
						}
					}
				} else if len(fromGen) > 0 && len(gd.Specs) == 1 {
					out[ts] = fromGen[0]
				}
			}
		}
	}
	return out
}

// budgetArg parses the optional integer argument of a directive
// (//topicslint:compact 8); a missing argument defaults to def.
func budgetArg(d Directive, def int64) (int64, bool) {
	if len(d.Args) == 0 {
		return def, true
	}
	n, err := strconv.ParseInt(d.Args[0], 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// declaredFuncs maps every function object declared in the package to
// its syntax, the lookup the intra-package callee walk runs on.
func declaredFuncs(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// staticCallee resolves a call expression to the concrete function or
// method it invokes, or nil when the target is dynamic: a function
// value, an interface method, or a builtin.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// A method call: dynamic when the receiver is an interface.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// returnStmts enumerates every return statement of body in source
// order, without descending into nested function literals (their
// returns belong to their own scope).
func returnStmts(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	if body == nil {
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n)
		}
		return true
	})
	return out
}

// eachFuncScope invokes fn once per function scope of the pass: every
// declared function and every function literal, each with its own body.
// name is the declared name, or "func literal" for a FuncLit.
func eachFuncScope(pass *Pass, fn func(name string, node ast.Node, body *ast.BlockStmt)) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Name.Name, n, n.Body)
				}
			case *ast.FuncLit:
				fn("func literal", n, n.Body)
			}
			return true
		})
	}
}

// sameObject reports whether two expressions resolve to the same
// root variable (s.mu and s.mu; wg and wg), the identity lock and
// join tracking key on.
func sameObject(info *types.Info, a, b ast.Expr) bool {
	oa, ob := rootObject(info, a), rootObject(info, b)
	return oa != nil && oa == ob
}

// mentionsObject reports whether obj is referenced anywhere under n,
// without descending into nested function literals when skipLits is
// set.
func mentionsObject(info *types.Info, n ast.Node, obj types.Object, skipLits bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && skipLits {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isInterfaceType reports whether t is an interface (including any).
func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.IsInterface(t)
}

// freeVars collects the variables a function literal captures from its
// enclosing scopes: every identifier used inside the literal whose
// declaration lies outside it. Package-level objects are not captures
// (they need no closure cell).
func freeVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Declared inside the literal (parameters included): not free.
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true
		}
		// Package-level variables live without a closure cell.
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}
