package lint

import (
	"go/token"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// One loader for the whole test binary: stdlib type-checking from
// source is the expensive part and the loader memoizes it.
var (
	loaderOnce sync.Once
	testLdr    *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { testLdr, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return testLdr
}

// runOnTestdata loads one golden package and runs a single analyzer on
// it, bypassing AppliesTo (scoping is tested separately).
func runOnTestdata(t *testing.T, a *Analyzer, name string) (kept, suppressed []Diagnostic, pkg *Package) {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.Load("internal/lint/testdata/src/" + name)
	if err != nil {
		t.Fatalf("loading testdata %s: %v", name, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("testdata %s: type error: %v", name, terr)
	}
	var diags []Diagnostic
	a.Run(&Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		diags:     &diags,
	})
	kept, suppressed = Filter(diags, pkg.Suppressions)
	return kept, suppressed, pkg
}

var wantRe = regexp.MustCompile("`([^`]+)`")

// checkWants compares kept diagnostics against the package's `// want`
// comments, analysistest-style: every diagnostic needs a matching want
// on its line, every want needs a diagnostic.
func checkWants(t *testing.T, pkg *Package, kept []Diagnostic) {
	t.Helper()
	type want struct {
		re      *regexp.Regexp
		matched bool
		pos     token.Position
	}
	wants := make(map[string]map[int][]*want) // file -> line -> wants
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = make(map[int][]*want)
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &want{re: re, pos: pos})
				}
			}
		}
	}
	for _, d := range kept {
		matched := false
		for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, lines := range wants {
		for _, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want %q", w.pos.Filename, w.pos.Line, w.re)
				}
			}
		}
	}
}

func TestDeterminismAnalyzer(t *testing.T) {
	kept, _, pkg := runOnTestdata(t, Determinism, "determinism")
	checkWants(t, pkg, kept)
}

func TestVClockAnalyzer(t *testing.T) {
	kept, suppressed, pkg := runOnTestdata(t, VClock, "vclock")
	checkWants(t, pkg, kept)
	if len(suppressed) != 1 {
		t.Errorf("suppressed = %v, want exactly the justified time.Sleep", suppressed)
	}
}

func TestETLDAnalyzer(t *testing.T) {
	kept, _, pkg := runOnTestdata(t, ETLD, "etld")
	checkWants(t, pkg, kept)
}

func TestErrWrapAnalyzer(t *testing.T) {
	kept, _, pkg := runOnTestdata(t, ErrWrap, "errwrap")
	checkWants(t, pkg, kept)
}

func TestAtomicwriteAnalyzer(t *testing.T) {
	kept, suppressed, pkg := runOnTestdata(t, Atomicwrite, "atomicwrite")
	checkWants(t, pkg, kept)
	if len(suppressed) != 1 {
		t.Errorf("suppressed = %v, want exactly the justified streaming sink", suppressed)
	}
}

func TestSuppressionParsing(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "f.go", Line: 10}, Analyzer: "vclock", Message: "m"},
		{Pos: token.Position{Filename: "f.go", Line: 20}, Analyzer: "vclock", Message: "m"},
		{Pos: token.Position{Filename: "f.go", Line: 30}, Analyzer: "etld", Message: "m"},
	}
	sups := []Suppression{
		{File: "f.go", Line: 10, Analyzer: "vclock", Reason: "same-line"},
		{File: "f.go", Line: 19, Analyzer: "vclock", Reason: "line-above"},
		{File: "f.go", Line: 30, Analyzer: "vclock", Reason: "wrong analyzer"},
		{File: "f.go", Line: 40, Malformed: true},
	}
	kept, suppressed := Filter(diags, sups)
	if len(suppressed) != 2 {
		t.Errorf("suppressed %d findings, want 2: %v", len(suppressed), suppressed)
	}
	// The etld diagnostic survives (its suppression names the wrong
	// analyzer) and the malformed comment reports itself.
	if len(kept) != 2 {
		t.Fatalf("kept %d findings, want 2: %v", len(kept), kept)
	}
	if kept[0].Analyzer != "etld" || kept[1].Analyzer != "topicslint" {
		t.Errorf("kept = %v", kept)
	}
	if !strings.Contains(kept[1].Message, "malformed suppression") {
		t.Errorf("malformed message = %q", kept[1].Message)
	}
}

func TestAnalyzerScopes(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		rel  string
		want bool
	}{
		{Determinism, "internal/analysis", true},
		{Determinism, "internal/crawler", true},
		{Determinism, "internal/webserver", false},
		{Determinism, "cmd/benchjson", false},
		{VClock, "internal/vclock", false},
		{VClock, "internal/webserver", true},
		{VClock, "", true},
		{ETLD, "internal/etld", false},
		{ETLD, "internal/tranco", true},
		{ErrWrap, "internal/crawler", true},
		{ErrWrap, "internal/chaos", true},
		{ErrWrap, "internal/analysis", false},
		{Atomicwrite, "internal/durable", false},
		{Atomicwrite, "internal/dataset", true},
		{Atomicwrite, "cmd/topics-report", true},
	}
	for _, c := range cases {
		if got := c.a.AppliesTo(c.rel); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.a.Name, c.rel, got, c.want)
		}
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
		ok     bool
	}{
		{"plain", "", true},
		{"%s: %w", "sw", true},
		{"%d%%done %v", "dv", true},
		{"%*d and %.2f %q", "*dfq", true},
		{"%+v %-10s %#x", "vsx", true},
		{"%[1]s", "", false},
	}
	for _, c := range cases {
		verbs, ok := formatVerbs(c.format)
		if ok != c.ok || string(verbs) != c.verbs {
			t.Errorf("formatVerbs(%q) = %q, %v; want %q, %v", c.format, string(verbs), ok, c.verbs, c.ok)
		}
	}
}

// TestRepoIsClean is the suite enforcing itself as part of tier-1: the
// whole module must type-check through the lint loader and produce
// zero unsuppressed findings. Introducing a time.Now() into
// internal/analysis (or an unsorted map-range into a report path)
// fails this test, not just `make lint`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping module-wide lint pass")
	}
	l := testLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("LoadAll found only %d packages — discovery is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error under the lint loader: %v", pkg.ImportPath, terr)
		}
		kept, _ := RunAnalyzers(pkg, All())
		for _, d := range kept {
			t.Errorf("unsuppressed finding: %s", d)
		}
	}
}
