package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Locks enforces mutex discipline in the concurrent serving and
// aggregation packages (internal/obs, internal/webserver,
// internal/load, internal/orchestrator):
//
//   - a Lock/RLock must be released on every return path of the
//     function — either by an immediately-following defer Unlock, or by
//     an explicit Unlock before each return (a leaked lock deadlocks
//     the next request, which under load means the whole serving pool);
//   - no blocking call while a lock is held: channel operations,
//     select without default, WaitGroup.Wait, process waits
//     (os/exec), HTTP round-trips, virtual-clock waits
//     (vclock Sleep/Wait/Poll), or writes through an *interface*
//     writer (the concrete sink behind an io.Writer may be a socket
//     or file; writing to it serializes every other lock holder
//     behind kernel I/O). Writes to concrete in-memory sinks
//     (strings.Builder, bytes.Buffer) are fine and not flagged;
//   - no writes under an RLock: mutating a field or map of the
//     structure whose RWMutex is read-held is a data race the race
//     detector only catches when two writers collide in the same run.
//
// The analysis is a lightweight lexical walk per function: a lock
// region opens at x.Lock()/x.RLock() and closes at the matching
// x.Unlock()/x.RUnlock() in the same or a nested block, or at a defer
// of it. It does not model aliasing (the receiver expression's root
// variable is the lock identity), which is exactly the discipline the
// repo's code follows.
var Locks = &Analyzer{
	Name: "locks",
	Doc: `enforce mutex discipline in internal/obs, internal/webserver,
internal/load, internal/orchestrator: every Lock/RLock released on
every return path (defer or explicit), no blocking calls (channel ops,
selects, WaitGroup.Wait, exec waits, HTTP round-trips, vclock waits,
interface-writer I/O) while a lock is held, and no writes to the
guarded structure under an RLock.`,
	AppliesTo: inPackages(
		"internal/obs",
		"internal/webserver",
		"internal/load",
		"internal/orchestrator",
	),
	Run: runLocks,
}

// heldLock is one currently-held lock during the walk.
type heldLock struct {
	// key renders the receiver expression ("s.mu") for messages.
	key string
	// obj is the resolved receiver of the lock call, the identity
	// matched against Unlock calls (the mu field object for
	// s.mu.Lock()).
	obj types.Object
	// base is the leftmost variable of the receiver chain ("s" for
	// s.mu.Lock()): writes rooting at it while an RLock is held are the
	// read-path-write violation.
	base types.Object
	// read marks an RLock.
	read bool
	// deferred marks a lock whose Unlock is deferred: returns are fine,
	// but blocking-call and RLock-write checks still apply to the rest
	// of the function.
	deferred bool
	pos      token.Pos
}

func runLocks(pass *Pass) {
	eachFuncScope(pass, func(name string, node ast.Node, body *ast.BlockStmt) {
		w := &lockWalker{pass: pass, fname: name}
		held := w.walkStmts(body.List, nil)
		for _, h := range held {
			if !h.deferred {
				pass.Reportf(h.pos, "%s.%s is still held when %s falls off the end of the function; unlock it or defer the unlock",
					h.key, lockVerb(h.read), name)
			}
		}
	})
}

func lockVerb(read bool) string {
	if read {
		return "RLock()"
	}
	return "Lock()"
}

type lockWalker struct {
	pass  *Pass
	fname string
}

// walkStmts walks one statement sequence with the given held set and
// returns the held set at its fallthrough end. Branch bodies are
// walked recursively; a branch that terminates (returns) reports its
// own violations and contributes nothing to the fallthrough state.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, stmt := range stmts {
		held = w.walkStmt(stmt, held)
	}
	return held
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held []heldLock) []heldLock {
	info := w.pass.TypesInfo
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if recv, name, ok := syncLockCall(info, s.X); ok {
			switch name {
			case "Lock", "RLock":
				held = append(held, heldLock{
					key:  ExprString(recv),
					obj:  rootObject(info, recv),
					base: baseObject(info, recv),
					read: name == "RLock",
					pos:  s.Pos(),
				})
				return held
			case "Unlock", "RUnlock":
				return w.release(held, recv, name)
			}
		}
		w.checkUnderLocks(s, held)
	case *ast.DeferStmt:
		if recv, name, ok := syncLockCall(info, s.Call); ok && (name == "Unlock" || name == "RUnlock") {
			obj := rootObject(info, recv)
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].obj == obj && held[i].read == (name == "RUnlock") && !held[i].deferred {
					held[i].deferred = true
					return held
				}
			}
			return held
		}
		w.checkUnderLocks(s, held)
	case *ast.ReturnStmt:
		for _, h := range held {
			if !h.deferred {
				w.pass.Reportf(s.Pos(), "return while %s is held (locked at %s); unlock before returning or defer the unlock",
					h.key, w.pass.Fset.Position(h.pos))
			}
		}
		w.checkUnderLocks(s, held)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.checkUnderLocks(s.Cond, held)
		thenHeld := w.walkStmts(s.Body.List, cloneHeld(held))
		elseHeld := cloneHeld(held)
		if s.Else != nil {
			elseHeld = w.walkStmt(s.Else, elseHeld)
		}
		// Fallthrough state: a lock survives unless every
		// non-terminating branch released it.
		switch {
		case terminates(s.Body):
			return elseHeld
		case s.Else != nil && stmtTerminates(s.Else):
			return thenHeld
		default:
			return mergeHeld(thenHeld, elseHeld)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.walkStmts(s.Body.List, cloneHeld(held))
		return held
	case *ast.RangeStmt:
		w.checkUnderLocks(s.X, held)
		w.walkStmts(s.Body.List, cloneHeld(held))
		return held
	case *ast.SwitchStmt:
		w.walkBranches(caseBodies(s.Body), held)
		return held
	case *ast.TypeSwitchStmt:
		w.walkBranches(caseBodies(s.Body), held)
		return held
	case *ast.SelectStmt:
		if len(held) > 0 && !hasDefaultClause(s.Body) {
			w.reportBlocking(s.Pos(), "select without a default clause", held)
		}
		w.walkBranches(caseBodies(s.Body), held)
		return held
	case *ast.GoStmt:
		// The goroutine body is its own scope (eachFuncScope visits
		// it); launching does not block.
		return held
	case *ast.SendStmt:
		if len(held) > 0 {
			w.reportBlocking(s.Pos(), "channel send", held)
		}
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.LabeledStmt:
		w.checkUnderLocks(stmt, held)
	default:
		w.checkUnderLocks(stmt, held)
	}
	return held
}

func (w *lockWalker) walkBranches(bodies [][]ast.Stmt, held []heldLock) {
	for _, b := range bodies {
		w.walkStmts(b, cloneHeld(held))
	}
}

// release pops the innermost matching held lock.
func (w *lockWalker) release(held []heldLock, recv ast.Expr, name string) []heldLock {
	obj := rootObject(w.pass.TypesInfo, recv)
	read := name == "RUnlock"
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].obj == obj && held[i].read == read && !held[i].deferred {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// checkUnderLocks inspects one statement (or expression) for blocking
// calls and RLock-guarded writes while locks are held. Nested function
// literals are skipped: their bodies run later, not under this lock.
func (w *lockWalker) checkUnderLocks(n ast.Node, held []heldLock) {
	if len(held) == 0 || n == nil {
		return
	}
	info := w.pass.TypesInfo
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				w.reportBlocking(m.Pos(), "channel receive", held)
			}
		case *ast.SendStmt:
			w.reportBlocking(m.Pos(), "channel send", held)
		case *ast.AssignStmt:
			w.checkRLockWrite(m.Lhs, m.Pos(), held)
		case *ast.IncDecStmt:
			w.checkRLockWrite([]ast.Expr{m.X}, m.Pos(), held)
		case *ast.CallExpr:
			if what, blocking := blockingCall(info, m); blocking {
				w.reportBlocking(m.Pos(), what, held)
			}
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && id.Name == "delete" && len(m.Args) > 0 {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					w.checkRLockWrite(m.Args[:1], m.Pos(), held)
				}
			}
		}
		return true
	})
}

// checkRLockWrite flags writes whose target roots at the base variable
// of a read-held RWMutex: s.pages[k] = v under s.pagesMu.RLock().
func (w *lockWalker) checkRLockWrite(targets []ast.Expr, pos token.Pos, held []heldLock) {
	info := w.pass.TypesInfo
	for _, h := range held {
		if !h.read || h.base == nil {
			continue
		}
		for _, t := range targets {
			// Only writes through the guarded structure count: a plain
			// local assignment is fine.
			if _, isIdent := ast.Unparen(t).(*ast.Ident); isIdent {
				continue
			}
			if base := baseObject(info, t); base != nil && base == h.base {
				w.pass.Reportf(pos, "write to %s while %s is only read-locked (RLock at %s); take the write lock",
					ExprString(t), h.key, w.pass.Fset.Position(h.pos))
			}
		}
	}
}

func (w *lockWalker) reportBlocking(pos token.Pos, what string, held []heldLock) {
	h := held[len(held)-1]
	w.pass.Reportf(pos, "%s while %s is held (locked at %s): a blocked holder stalls every other user of the lock",
		what, h.key, w.pass.Fset.Position(h.pos))
}

// syncLockCall matches x.Lock / x.RLock / x.Unlock / x.RUnlock calls on
// sync.Mutex / sync.RWMutex values (embedded lockers included) and
// returns the receiver expression and method name.
func syncLockCall(info *types.Info, e ast.Expr) (recv ast.Expr, name string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return nil, "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return sel.X, fn.Name(), true
	}
	return nil, "", false
}

// blockingCall classifies calls that can block the calling goroutine.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	pkgPath, name, pkgLevel, ok := funcOf(info, call.Fun)
	if !ok {
		return "", false
	}
	if !pkgLevel {
		switch {
		case pkgPath == "sync" && name == "Wait":
			return "sync.WaitGroup.Wait", true
		case pkgPath == "os/exec" && (name == "Run" || name == "Wait" || name == "Output" || name == "CombinedOutput"):
			return "os/exec process wait (" + name + ")", true
		case pkgPath == "net/http" && (name == "Do" || name == "Get" || name == "Post" || name == "Head"):
			return "HTTP round-trip (" + name + ")", true
		case strings.HasSuffix(pkgPath, "internal/vclock") && (name == "Sleep" || name == "Wait" || name == "Poll" || name == "WaitUntil"):
			return "virtual-clock wait (vclock." + name + ")", true
		case pkgPath == "encoding/json" && name == "Encode":
			return "json.Encoder.Encode to the underlying writer", true
		case name == "Write" || name == "WriteString" || name == "ReadFrom":
			// Only interface-typed receivers: the concrete sink may be a
			// socket or file. strings.Builder & friends are concrete and
			// stay silent.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if t := info.Types[sel.X].Type; isInterfaceType(t) {
					return name + " on interface writer " + ExprString(sel.X), true
				}
			}
		}
		return "", false
	}
	switch {
	case pkgPath == "net/http" && (name == "Get" || name == "Post" || name == "Head" || name == "PostForm"):
		return "HTTP round-trip (http." + name + ")", true
	case pkgPath == "fmt" && strings.HasPrefix(name, "Fprint"):
		if len(call.Args) > 0 {
			if t := info.Types[call.Args[0]].Type; isInterfaceType(t) {
				return "fmt." + name + " to interface writer " + ExprString(call.Args[0]), true
			}
		}
	case strings.HasSuffix(pkgPath, "internal/vclock") && (name == "Sleep" || name == "Poll"):
		return "virtual-clock wait (vclock." + name + ")", true
	}
	return "", false
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// mergeHeld unions two branch outcomes: a lock counts as released only
// when both branches released it.
func mergeHeld(a, b []heldLock) []heldLock {
	out := cloneHeld(a)
	for _, h := range b {
		found := false
		for _, g := range out {
			if g.obj == h.obj && g.read == h.read && g.pos == h.pos {
				found = true
				break
			}
		}
		if !found {
			out = append(out, h)
		}
	}
	return out
}

// terminates reports whether a block always transfers control away
// (its last statement is a return or an unconditional panic).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return terminates(s.Body) && stmtTerminates(s.Else)
	}
	return false
}

func caseBodies(b *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, s := range b.List {
		switch c := s.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

func hasDefaultClause(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if c, ok := s.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}
