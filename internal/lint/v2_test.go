package lint

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ---- golden-package tests for the v2 analyzers --------------------------
//
// Each asserts the full want-set AND that the testdata's single
// justified //topicslint:ignore actually suppresses a finding — the
// suppression path is part of the contract, not decoration.

func TestHotpathAnalyzer(t *testing.T) {
	kept, suppressed, pkg := runOnTestdata(t, Hotpath, "hotpath")
	checkWants(t, pkg, kept)
	if len(suppressed) != 1 {
		t.Errorf("suppressed = %v, want exactly the justified grow-once make", suppressed)
	}
}

func TestLocksAnalyzer(t *testing.T) {
	kept, suppressed, pkg := runOnTestdata(t, Locks, "locks")
	checkWants(t, pkg, kept)
	if len(suppressed) != 1 {
		t.Errorf("suppressed = %v, want exactly the justified single-writer Encode", suppressed)
	}
}

func TestGoroleakAnalyzer(t *testing.T) {
	kept, suppressed, pkg := runOnTestdata(t, Goroleak, "goroleak")
	checkWants(t, pkg, kept)
	if len(suppressed) != 1 {
		t.Errorf("suppressed = %v, want exactly the externally-joined launch", suppressed)
	}
}

func TestStructlayoutAnalyzer(t *testing.T) {
	kept, suppressed, pkg := runOnTestdata(t, Structlayout, "structlayout")
	checkWants(t, pkg, kept)
	if len(suppressed) != 1 {
		t.Errorf("suppressed = %v, want exactly the serialized-order struct", suppressed)
	}
}

// ---- registry meta-test -------------------------------------------------

// TestAnalyzerRegistry pins the registration contract: every analyzer
// in All() is documented, uniquely named, resolvable by name, ships a
// golden testdata package, and that package exercises the suppression
// path at least once. A new analyzer cannot be merged half-wired.
func TestAnalyzerRegistry(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" {
			t.Fatalf("analyzer with empty Name: %+v", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if strings.TrimSpace(a.Doc) == "" {
			t.Errorf("%s: empty Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("%s: nil Run", a.Name)
		}
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want the registered analyzer", a.Name, got)
		}
		dir := filepath.Join("testdata", "src", a.Name)
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			t.Errorf("%s: no golden testdata package at %s", a.Name, dir)
			continue
		}
		_, suppressed, _ := runOnTestdata(t, a, a.Name)
		if len(suppressed) == 0 {
			t.Errorf("%s: testdata exercises no suppression path — add a justified //topicslint:ignore example", a.Name)
		}
	}
}

// ---- dataflow unit tests ------------------------------------------------

// TestReturnStmts checks return-path enumeration: returns inside
// nested function literals belong to the literal, not the enclosing
// function, and must not count as its exit paths.
func TestReturnStmts(t *testing.T) {
	const src = `package p
func f(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	g := func() int {
		if true {
			return 1
		}
		return 2
	}
	for range xs {
		if g() > 0 {
			return g()
		}
	}
	return -1
}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	rets := returnStmts(fd.Body)
	// f's own exits: return 0, return g(), return -1. The literal's
	// return 1 / return 2 are excluded.
	if len(rets) != 3 {
		t.Fatalf("returnStmts found %d returns, want 3 (FuncLit returns excluded)", len(rets))
	}
	wantLines := []int{4, 14, 17}
	for i, r := range rets {
		if got := fset.Position(r.Pos()).Line; got != wantLines[i] {
			t.Errorf("return %d at line %d, want %d", i, got, wantLines[i])
		}
	}
}

// TestGoroutineJoinDetection drives goroutineBody/goroutineJoined
// directly over the goroleak golden package: the join verdict per
// launching function is the analyzer's core decision.
func TestGoroutineJoinDetection(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.Load("internal/lint/testdata/src/goroleak")
	if err != nil {
		t.Fatalf("loading goroleak testdata: %v", err)
	}
	pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, TypesInfo: pkg.Info}
	decls := declaredFuncs(pass)

	want := map[string]bool{
		"joinedWG":         true,  // WaitGroup Done in body, Wait in function
		"joinedChannel":    true,  // close(done) in body, <-done in function
		"joinedConsume":    true,  // close(results) in body, results handed to drain
		"leaked":           false, // no join of any kind
		"leakedNamed":      false, // declared body, still no join
		"suppressedLaunch": false, // join lives in the caller, not here
	}
	got := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, interesting := want[fd.Name.Name]; !interesting {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				gb := goroutineBody(pass, decls, g)
				if gb == nil {
					t.Errorf("%s: goroutine body not resolvable", fd.Name.Name)
					return true
				}
				joined, _ := goroutineJoined(pass, fd.Body, g, gb)
				got[fd.Name.Name] = joined
				return true
			})
		}
	}
	for name, w := range want {
		j, found := got[name]
		if !found {
			t.Errorf("%s: no go statement found", name)
			continue
		}
		if j != w {
			t.Errorf("%s: joined = %v, want %v", name, j, w)
		}
	}
}

// ---- seeded-regression test ---------------------------------------------

// TestHotpathCatchesSeededFmtInEngine proves the performance contract
// bites: re-introducing the exact per-call fmt formatting that PR-7
// removed from AppendBrowsingTopics must fail the hotpath analyzer.
// The loader overlay type-checks the broken variant in memory, so the
// tree on disk stays clean.
func TestHotpathCatchesSeededFmtInEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping overlay type-check of internal/topics")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	path := filepath.Join(l.ModuleDir, "internal", "topics", "engine.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading engine.go: %v", err)
	}
	const anchor = "base := len(dst)"
	if !bytes.Contains(src, []byte(anchor)) {
		t.Fatalf("engine.go lost the %q anchor — update this test", anchor)
	}
	seeded := bytes.Replace(src,
		[]byte(anchor),
		[]byte(anchor+"\n\tfmt.Fprintf(io.Discard, \"serving %d results\", base)"),
		1)
	seeded = bytes.Replace(seeded,
		[]byte("import ("),
		[]byte("import (\n\t\"fmt\"\n\t\"io\""),
		1)
	l.Overlay = map[string][]byte{path: seeded}

	pkg, err := l.Load("internal/topics")
	if err != nil {
		t.Fatalf("loading seeded internal/topics: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("seeded engine.go does not type-check — fix the overlay: %v", terr)
	}
	kept, _ := RunAnalyzers(pkg, []*Analyzer{Hotpath})
	found := false
	for _, d := range kept {
		if strings.Contains(d.Message, "fmt.Fprintf allocates") &&
			strings.Contains(d.Message, "AppendBrowsingTopics") {
			found = true
		}
	}
	if !found {
		t.Errorf("hotpath missed the seeded fmt.Fprintf in AppendBrowsingTopics; kept = %v", kept)
	}
}
