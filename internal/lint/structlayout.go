package lint

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// Structlayout enforces padding budgets on per-user and per-record
// structs. A type carrying
//
//	//topicslint:compact          (budget 0)
//	//topicslint:compact 8        (up to 8 wasted bytes tolerated)
//
// in its doc comment is measured with the gc compiler's size and
// alignment rules: the analyzer computes the bytes lost to field
// padding against the best achievable order and fails when the waste
// exceeds the budget. At the ROADMAP's million-user population, eight
// padding bytes in the per-user engine state is 8 MB of pure air per
// million simulated users — the kind of regression a code review
// never catches because every individual field addition looks free.
//
// Serialized structs (dataset records, report rows) encode in field
// declaration order, so reordering them changes golden JSON bytes;
// they carry a non-zero budget documenting the accepted waste instead
// of being reordered. Internal state structs get reordered for real.
//
// Sizes are computed with types.SizesFor("gc", "amd64") regardless of
// the host, so findings are deterministic across machines.
var Structlayout = &Analyzer{
	Name: "structlayout",
	Doc: `enforce //topicslint:compact <budget> annotations on per-user and
per-record structs: compute field padding with the gc amd64 size rules,
report wasted bytes and the optimal field order, and fail when waste
exceeds the budget (default 0). Serialized structs keep declaration
order and document their waste with a non-zero budget.`,
	Run: runStructlayout,
}

// layoutSizes pins struct measurement to one compiler/arch so the
// analyzer's output does not depend on the host running it.
var layoutSizes = types.SizesFor("gc", "amd64")

func runStructlayout(pass *Pass) {
	for ts, d := range typeDirectives(pass, "compact") {
		budget, ok := budgetArg(d, 0)
		if !ok {
			pass.Reportf(d.Pos, "malformed compact annotation: want //topicslint:compact [non-negative byte budget]")
			continue
		}
		obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(ts.Pos(), "compact annotation on %s, which is not a struct type", ts.Name.Name)
			continue
		}
		cur := layoutSizes.Sizeof(st)
		best, order := optimalLayout(st)
		waste := cur - best
		if waste > budget {
			pass.Reportf(ts.Pos(),
				"struct %s wastes %d padding bytes (size %d, optimal %d, budget %d); optimal field order: %s",
				ts.Name.Name, waste, cur, best, budget, strings.Join(order, ", "))
		}
	}
}

// optimalLayout returns the minimal achievable size of st under gc
// amd64 rules and a field order achieving it: fields sorted by
// alignment then size, both descending, names breaking ties so the
// suggestion is deterministic. This greedy order is optimal for the
// power-of-two alignments the gc allocator uses.
func optimalLayout(st *types.Struct) (int64, []string) {
	n := st.NumFields()
	if n == 0 {
		return 0, nil
	}
	fields := make([]*types.Var, n)
	for i := 0; i < n; i++ {
		fields[i] = st.Field(i)
	}
	sort.SliceStable(fields, func(i, j int) bool {
		ai, aj := layoutSizes.Alignof(fields[i].Type()), layoutSizes.Alignof(fields[j].Type())
		if ai != aj {
			return ai > aj
		}
		si, sj := layoutSizes.Sizeof(fields[i].Type()), layoutSizes.Sizeof(fields[j].Type())
		if si != sj {
			return si > sj
		}
		return fields[i].Name() < fields[j].Name()
	})
	names := make([]string, n)
	reordered := make([]*types.Var, n)
	for i, f := range fields {
		names[i] = fmt.Sprintf("%s %s", f.Name(), f.Type().String())
		reordered[i] = types.NewField(f.Pos(), f.Pkg(), f.Name(), f.Type(), f.Embedded())
	}
	return layoutSizes.Sizeof(types.NewStruct(reordered, nil)), names
}
