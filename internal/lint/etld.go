package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ETLD flags ad-hoc hostname surgery outside internal/etld: splitting a
// host on dots, hand-lowercasing it, or trimming its trailing dot. All
// of that belongs to etld.Normalize / PublicSuffix / RegistrableDomain,
// memoized and interned by etld.Cache — a second implementation is both
// slower (no interning) and a drift risk for the eTLD tables.
var ETLD = &Analyzer{
	Name: "etld",
	Doc: `flag ad-hoc hostname parsing outside internal/etld:
strings.Split(host, "."), strings.ToLower(host) and
strings.TrimSuffix(host, ".") on host-like operands must go through
etld.Normalize and the memoized etld.Cache so every package agrees on
one normal form and interned splits.`,
	AppliesTo: notPackage("internal/etld"),
	Run:       runETLD,
}

// hostLikeWords mark an operand as (probably) a hostname. The check is
// textual on purpose: hostnames are plain strings, so only the variable
// naming carries the intent.
var hostLikeWords = []string{"host", "domain", "site", "origin", "etld", "authority"}

func hostLike(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		name := strings.ToLower(id.Name)
		for _, w := range hostLikeWords {
			if strings.Contains(name, w) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// stringArg returns the compile-time value of a string literal or
// constant expression, if any.
func stringArg(info *types.Info, e ast.Expr) (string, bool) {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if s, err := strconv.Unquote(tv.Value.ExactString()); err == nil {
			return s, true
		}
	}
	return "", false
}

func runETLD(pass *Pass) {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, name, pkgLevel, ok := funcOf(pass.TypesInfo, call.Fun)
		if !ok || !pkgLevel || pkgPath != "strings" {
			return true
		}
		switch name {
		case "Split", "SplitN", "SplitAfter", "SplitAfterN":
			if len(call.Args) < 2 || !hostLike(call.Args[0]) {
				return true
			}
			if sep, ok := stringArg(pass.TypesInfo, call.Args[1]); ok && sep == "." {
				pass.Reportf(call.Pos(),
					"ad-hoc hostname split of %s: label surgery belongs to internal/etld (PublicSuffix, RegistrableDomain, TLD), memoized by etld.Cache", ExprString(call.Args[0]))
			}
		case "ToLower":
			if len(call.Args) == 1 && hostLike(call.Args[0]) {
				pass.Reportf(call.Pos(),
					"manual lowercasing of %s: use etld.Normalize (lowercase + port/trailing-dot strip, allocation-free when already normal)", ExprString(call.Args[0]))
			}
		case "TrimSuffix":
			if len(call.Args) == 2 && hostLike(call.Args[0]) {
				if suf, ok := stringArg(pass.TypesInfo, call.Args[1]); ok && suf == "." {
					pass.Reportf(call.Pos(),
						"manual trailing-dot strip of %s: use etld.Normalize so every package agrees on one hostname normal form", ExprString(call.Args[0]))
				}
			}
		}
		return true
	})
}
