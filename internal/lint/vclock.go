package lint

import (
	"go/ast"
)

// wallTimers are the time-package entry points that schedule against
// the wall clock.
var wallTimers = map[string]bool{
	"Sleep": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true, "Tick": true,
}

// VClock forbids wall-clock timers everywhere outside internal/vclock.
// Retry backoff, A/B-test slots and chaos fault windows all advance on
// the virtual clock so a 50k-site campaign replays in milliseconds and
// byte-identically; one time.Sleep makes that schedule unsimulable.
var VClock = &Analyzer{
	Name: "vclock",
	Doc: `forbid time.Sleep, time.After, time.AfterFunc, time.NewTimer,
time.NewTicker and time.Tick outside internal/vclock: all campaign
timing advances on the virtual clock (vclock.Clock) so retries, chaos
windows and A/B slots are simulable and deterministic.`,
	AppliesTo: notPackage("internal/vclock"),
	Run: func(pass *Pass) {
		pass.Inspect(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, pkgLevel, ok := funcOf(pass.TypesInfo, sel)
			if ok && pkgLevel && pkgPath == "time" && wallTimers[name] {
				pass.Reportf(sel.Pos(),
					"time.%s schedules on the wall clock; advance an internal/vclock Clock instead so campaign timing stays simulable", name)
			}
			return true
		})
	},
}
