package crawler

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/netmeasure/topicscope/internal/analysis"
	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/durable"
)

// Satellite of the PR 5 kill matrix: the campaign now carries a live
// analysis sink, so process death must also leave the index snapshot in
// a state a resume can trust — restored + tail-folded must equal the
// from-scratch build at every record boundary.

// liveReportJSON renders the report from the journal's live index
// (snapshot restore + tail fold) — the -live path — and returns it with
// the load stats.
func liveReportJSON(t *testing.T, path string) ([]byte, *analysis.LiveStats) {
	t.Helper()
	in := &analysis.Input{Allowlist: cwAllow}
	idx, st, err := analysis.LoadLive(path, in)
	if err != nil {
		t.Fatalf("LoadLive(%s): %v", path, err)
	}
	if !in.AdoptIndex(idx) {
		t.Fatal("live index not adopted")
	}
	out, err := json.Marshal(analysis.Run(in))
	if err != nil {
		t.Fatal(err)
	}
	return out, st
}

// resumeAndFinishLive mirrors resumeAndFinish with the live sink
// attached: restore the snapshot, let ResumeJournal replay the salvaged
// tail through it, recrawl the rest.
func resumeAndFinishLive(t *testing.T, path string, every int) *analysis.LiveStats {
	t.Helper()
	list := cwWorld.List().Top(30)
	rankSite := make(map[int]string, len(list.Entries))
	for _, e := range list.Entries {
		rankSite[e.Rank] = e.Domain
	}
	m := durable.LoadManifest(path)

	sink, lst, err := analysis.OpenLiveSink(path, &analysis.Input{Allowlist: cwAllow})
	if err != nil {
		t.Fatalf("OpenLiveSink: %v", err)
	}
	if m != nil {
		// Checkpoints write manifest then snapshot, and crashes here are
		// injected on the append path — so whenever a manifest exists the
		// snapshot beside it must restore, reading zero journal bytes.
		if !lst.SnapshotRestored {
			t.Fatal("index snapshot beside a valid manifest did not restore")
		}
		if lst.BytesRead != 0 {
			t.Fatalf("snapshot restore read %d journal bytes, want 0", lst.BytesRead)
		}
		if int64(sink.Live().Visits()) != m.Records {
			t.Fatalf("restored sink covers %d records, manifest commits %d", sink.Live().Visits(), m.Records)
		}
	}

	skip := make(map[string]bool)
	jw, st, err := dataset.ResumeJournal(path, dataset.JournalOptions{
		CheckpointEvery: every,
		Skip:            func(rank int) bool { return skip[rankSite[rank]] },
		Observer:        sink,
	})
	if err != nil {
		t.Fatalf("ResumeJournal: %v", err)
	}
	committed := int64(0)
	if m != nil {
		committed = m.Records
	}
	if int64(sink.Live().Visits()) != committed+st.RecordsKept {
		t.Fatalf("after tail replay the sink covers %d records, want %d committed + %d salvaged",
			sink.Live().Visits(), committed, st.RecordsKept)
	}
	for site := range st.Completed {
		skip[site] = true
	}
	for _, e := range list.Entries {
		if e.Rank <= st.WatermarkRank {
			skip[e.Domain] = true
		}
	}
	if err := crawlJournal(context.Background(), jw, list, skip); err != nil {
		t.Fatalf("resumed crawl: %v", err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	return lst
}

// TestCrashResumeIndexSnapshot extends the kill matrix to the live
// index: crash before every record append, resume through the snapshot,
// and demand (a) the restored + tail-folded index yields the exact
// golden report and (b) rendering it reads O(tail + snapshot) bytes —
// zero journal bytes at the final checkpoint.
func TestCrashResumeIndexSnapshot(t *testing.T) {
	const every = 3
	list := cwWorld.List().Top(30)
	dir := t.TempDir()
	golden := goldenJournal(t, dir, list, every)
	goldenReport := reportJSON(t, golden)
	n := int64(bytes.Count(journalPayloads(t, golden), []byte("\n")))

	for k := int64(1); k < n; k++ {
		path := filepath.Join(dir, fmt.Sprintf("crash-%d.jsonl.gz", k))
		plan := chaos.CrashPlan{AfterRecords: k}
		jw, err := dataset.CreateJournal(path, dataset.JournalOptions{
			CheckpointEvery: every,
			Durable:         durable.Options{BeforeAppend: plan.BeforeAppend()},
			Observer:        analysis.NewLiveSink(path, &analysis.Input{Allowlist: cwAllow}),
		})
		if err != nil {
			t.Fatal(err)
		}
		err = crawlJournal(context.Background(), jw, list, nil)
		if err == nil {
			t.Fatalf("crashpoint %d: campaign survived its own death", k)
		}
		if !chaos.IsCrash(err) {
			t.Fatalf("crashpoint %d: unexpected error: %v", k, err)
		}
		jw.Abort()

		resumeAndFinishLive(t, path, every)

		got, st := liveReportJSON(t, path)
		if !bytes.Equal(got, goldenReport) {
			t.Fatalf("crashpoint %d: live report from restored index differs from uninterrupted run", k)
		}
		if !st.SnapshotRestored || st.TailRecords != 0 || st.BytesRead != 0 {
			t.Fatalf("crashpoint %d: final-checkpoint live read not O(snapshot): %+v", k, st)
		}
		os.Remove(path)
		os.Remove(durable.ManifestPath(path))
		analysis.RemoveIndexSnapshot(path)
		durable.RemoveFrameIndex(path)
	}
}

// TestLiveReportReadsOnlyTail is the mid-campaign acceptance half:
// take a 200-site campaign journal whose last quarter is durable on
// disk but past the committed manifest (the crash window between
// Journal.Sync and the manifest rewrite), render the live report from
// it as-is, and assert it reads exactly the bytes past the checkpoint
// (the snapshot covers the rest) while matching the full-scan report
// over the same records.
func TestLiveReportReadsOnlyTail(t *testing.T) {
	const every = 10
	list := cwWorld.List().Top(200)
	dir := t.TempDir()
	golden := goldenJournal(t, dir, list, every)
	data, err := dataset.LoadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	visits := data.Visits

	// Re-journal the first ~3/4 (to a site-group boundary) through a
	// checkpointing writer with the live sink attached.
	cut := len(visits) * 3 / 4
	for cut < len(visits) && visits[cut].Site == visits[cut-1].Site {
		cut++
	}
	if cut == len(visits) {
		t.Fatal("no group boundary in the last quarter")
	}
	path := filepath.Join(dir, "mid.jsonl.gz")
	sink := analysis.NewLiveSink(path, &analysis.Input{Allowlist: cwAllow})
	jw, err := dataset.CreateJournal(path, dataset.JournalOptions{CheckpointEvery: every, Observer: sink})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cut; i++ {
		if err := jw.Write(&visits[i]); err != nil {
			t.Fatal(err)
		}
		if i+1 == cut || visits[i+1].Site != visits[i].Site {
			if err := jw.SiteCompleted(visits[i].Rank, visits[i].Site); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	m := durable.LoadManifest(path)
	if m == nil || m.Records != int64(cut) {
		t.Fatalf("manifest %+v does not commit the %d-record prefix", m, cut)
	}

	// Append the rest durably WITHOUT advancing the manifest — the state
	// a kill -9 leaves when it lands after the sync, before the manifest.
	j, err := durable.OpenAt(path, m.Checkpoint(), durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := cut; i < len(visits); i++ {
		payload, merr := json.Marshal(&visits[i])
		if merr != nil {
			t.Fatal(merr)
		}
		if err := j.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	size := fileSize(t, path)

	got, st := liveReportJSON(t, path)
	if !st.SnapshotRestored {
		t.Fatal("mid-campaign live report did not restore the index snapshot")
	}
	if want := size - m.Offset; st.BytesRead != want {
		t.Fatalf("live report read %d journal bytes, want exactly the %d-byte tail of %d", st.BytesRead, want, size)
	}
	if st.BytesRead >= size/3 {
		t.Fatalf("live report read %d of %d bytes — not O(tail + snapshot)", st.BytesRead, size)
	}
	if want := int64(len(visits) - cut); st.TailRecords != want {
		t.Fatalf("live report folded %d tail records, want %d", st.TailRecords, want)
	}

	// Same records, same report: the full scan over the crashed journal
	// (committed prefix + salvageable tail) is the oracle.
	if want := reportJSON(t, path); !bytes.Equal(got, want) {
		t.Fatal("live report differs from the full-scan report over the same journal")
	}
}
