package crawler

import (
	"context"
	"fmt"
	"time"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/browser"
)

// RepeatedVisits implements the §3 repeated-test methodology (experiment
// S1): revisit one site at fixed virtual-time intervals as a consented
// user and record, for each watched CP, whether it invoked the Topics
// API on each visit. The resulting ON/OFF series feed
// analysis.AnalyzeAlternation, which detects the paper's "consistent
// alternating periods".
type RepeatedVisits struct {
	// Site is the revisited website.
	Site string
	// Start and Step define the virtual-time sampling grid.
	Start time.Time
	Step  time.Duration
	// Samples is how many visits to perform.
	Samples int
	// CPs are the calling parties to watch.
	CPs []string
}

// Run executes the repeated visits and returns one ON/OFF series per
// watched CP.
func (c *Crawler) RepeatedVisits(ctx context.Context, rv RepeatedVisits) (map[string][]bool, error) {
	if rv.Samples <= 0 || rv.Step <= 0 {
		return nil, fmt.Errorf("crawler: repeated visits need positive samples and step")
	}
	series := make(map[string][]bool, len(rv.CPs))
	for i := 0; i < rv.Samples; i++ {
		at := rv.Start.Add(time.Duration(i) * rv.Step)
		gate := attestation.NewCorruptedGate()
		if c.cfg.Enforce {
			gate = attestation.NewEnforcingGate(c.cfg.ReferenceAllowlist)
		}
		b := browser.New(browser.Config{
			Client:             c.cfg.Client,
			Gate:               gate,
			ReferenceAllowlist: c.cfg.ReferenceAllowlist,
			Engine:             c.cfg.Engine,
			Now:                func() time.Time { return at },
		})
		// A returning, consented user: gating and consent guards pass,
		// isolating the A/B decision.
		b.SetConsent(rv.Site)
		v, err := b.LoadPage(ctx, rv.Site)
		if err != nil {
			return nil, fmt.Errorf("crawler: repeated visit %d of %s: %w", i, rv.Site, err)
		}
		if v.PageOrigin != rv.Site {
			b.SetConsent(v.PageOrigin)
		}
		called := make(map[string]bool, len(v.Calls))
		for _, call := range v.Calls {
			called[call.Caller] = true
		}
		for _, cp := range rv.CPs {
			series[cp] = append(series[cp], called[cp])
		}
	}
	return series, nil
}
