// Package crawler runs the paper's measurement campaign (§2.2): visit
// each site of a rank list, record the Before-Accept state, try to
// accept the privacy banner with the Priv-Accept logic, and — only on
// success — record an After-Accept visit. Every visit captures the
// downloaded first- and third-party objects and every Topics API call.
//
// The crawler is deliberately configured the way the paper's was:
//
//   - the browser's allow-list gate is corrupted, so not-Allowed callers
//     execute and are observed (§2.3);
//   - a reference allow-list annotates each call with the verdict a
//     healthy browser would have reached;
//   - visit times advance on a virtual clock derived from the site's
//     rank, so concurrent workers produce a byte-identical dataset.
package crawler

import (
	"context"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"reflect"
	"strconv"
	"sync"
	"time"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/browser"
	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/privaccept"
	"github.com/netmeasure/topicscope/internal/topics"
	"github.com/netmeasure/topicscope/internal/tranco"
)

// VisitWriter receives the campaign's visit records in rank order.
// *dataset.Writer is the plain JSONL implementation;
// *dataset.JournalWriter adds crash-safe framing and checkpoints.
type VisitWriter interface {
	Write(*dataset.Visit) error
	Flush() error
}

// SiteCompleter is implemented by checkpointing writers
// (dataset.JournalWriter): the crawler notifies it after a site's full
// record group has been written, in rank order, so the completed-site
// watermark can advance and a checkpoint can be cut at a site boundary.
type SiteCompleter interface {
	SiteCompleted(rank int, site string) error
}

// Config parameterises a crawl.
type Config struct {
	// Client performs HTTP for every browser the crawl spawns.
	Client *http.Client
	// ReferenceAllowlist is the healthy allow-list used for annotation
	// (and for the enforcing gate if Enforce is set).
	ReferenceAllowlist *attestation.Allowlist
	// Enforce runs the crawl with a healthy gate instead of the paper's
	// corrupted one — an ablation: anomalous calls disappear.
	Enforce bool
	// Engine optionally gives the crawl a browsing-history-bearing
	// Topics engine shared across all visits (one browser profile).
	Engine *topics.Engine
	// Workers is the parallelism (default 8).
	Workers int
	// Start is the virtual time of the first visit (default the paper's
	// crawl date, March 30th 2024).
	Start time.Time
	// VisitSpacing separates consecutive sites on the virtual clock; a
	// 50k-site crawl at 2s spacing spans ≈1 day like the paper's.
	VisitSpacing time.Duration
	// AcceptDelay separates a site's Before- and After-Accept visits.
	AcceptDelay time.Duration
	// PageTimeout bounds one page load (navigation plus every
	// subresource); default 30s, like a patient real crawl.
	PageTimeout time.Duration
	// Vantage is the visitor jurisdiction ("eu" default, "us"): §6's
	// single-location limitation, made a knob.
	Vantage string
	// Scheme is "http" (default) or "https" — with a TLS client from
	// webserver.NewTLSClient the whole campaign runs over HTTPS/2.
	Scheme string
	// Writer, when set, receives every visit record in rank order. If it
	// also implements SiteCompleter, the crawler reports each completed
	// site so the writer can checkpoint at site boundaries.
	Writer VisitWriter
	// Collect keeps all visits in memory and returns them from Run.
	Collect bool
	// SkipSites lists sites already crawled (resume support): they are
	// not revisited and produce no records.
	SkipSites map[string]bool
	// Attempts is the try budget for each navigation and each fetch
	// (1 = no retries; default 3). Navigation retries back off on the
	// virtual clock, so they cost no wall time and the redrawn fault
	// coins stay deterministic under any worker scheduling.
	Attempts int
	// RetryBackoff is the base virtual-clock delay before a navigation
	// retry (default 5s), doubled per attempt plus seeded jitter.
	RetryBackoff time.Duration
	// BreakerThreshold is the per-host circuit-breaker threshold within
	// one page load (default 3; negative disables the breaker).
	BreakerThreshold int
	// VisitBudget bounds one visit's stage-clock time (navigation plus
	// retry backoffs): when the budget is spent, remaining attempts are
	// abandoned and the visit records a deadline_exceeded failure
	// instead of wedging a worker. 0 (the default) disables the
	// watchdog. Being a virtual-clock bound, it is deterministic.
	VisitBudget time.Duration
	// Logger receives progress; nil disables logging.
	Logger *slog.Logger
	// ProgressEvery logs progress each N sites (default 1000).
	ProgressEvery int
	// Metrics, when set, receives crawl counters and per-stage latency
	// histograms (visits by phase/outcome, Topics calls, retries,
	// circuit opens) — the registry behind the crawler's /__metrics.
	Metrics *obs.Registry
	// Traces, when set, receives one obs.VisitTrace per visit, in rank
	// order from the single consumer goroutine, so a JSONL sink emits a
	// byte-deterministic file.
	Traces obs.Sink
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2024, 3, 30, 6, 0, 0, 0, time.UTC)
	}
	if c.VisitSpacing <= 0 {
		c.VisitSpacing = 2 * time.Second
	}
	if c.AcceptDelay <= 0 {
		c.AcceptDelay = 30 * time.Second
	}
	if c.PageTimeout <= 0 {
		c.PageTimeout = 30 * time.Second
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 1000
	}
	if c.ReferenceAllowlist == nil {
		c.ReferenceAllowlist = attestation.NewAllowlist()
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	// A typed-nil writer (a nil *dataset.Writer handed to the interface
	// field) means "no writer", not "call methods on nil".
	if w := reflect.ValueOf(c.Writer); c.Writer != nil && w.Kind() == reflect.Pointer && w.IsNil() {
		c.Writer = nil
	}
	return c
}

// Stats aggregates a finished crawl.
type Stats struct {
	// Attempted sites, successful Before-Accept visits, and failures.
	Attempted, Succeeded, Failed int
	// BannersFound and Accepted count Priv-Accept outcomes; Accepted is
	// the D_AA size.
	BannersFound, Accepted int
	// CallsBefore / CallsAfter are total Topics API calls per phase.
	CallsBefore, CallsAfter int
	// Retries counts extra fetch/navigation attempts across all visits;
	// CircuitOpens counts requests short-circuited by an open breaker;
	// PartialVisits counts successful visits with failed subresources.
	Retries, CircuitOpens, PartialVisits int
	// FailedByClass breaks Failed down by error-taxonomy class.
	FailedByClass map[chaos.Class]int
	// Elapsed is the stage-clock span of the campaign: the latest
	// trace-root end minus Config.Start. Being virtual, it is identical
	// across runs, GOMAXPROCS and worker counts, like everything else in
	// the result.
	Elapsed time.Duration
}

// String renders a compact summary.
func (s Stats) String() string {
	return fmt.Sprintf("attempted=%d ok=%d failed=%d banners=%d accepted=%d callsBA=%d callsAA=%d retries=%d circuitOpens=%d partial=%d elapsed=%s",
		s.Attempted, s.Succeeded, s.Failed, s.BannersFound, s.Accepted,
		s.CallsBefore, s.CallsAfter, s.Retries, s.CircuitOpens, s.PartialVisits,
		s.Elapsed.Round(time.Millisecond))
}

// Result bundles a crawl's outputs.
type Result struct {
	Stats Stats
	// Data holds the visits if Config.Collect was set.
	Data *dataset.Dataset
}

// Crawler executes measurement campaigns.
type Crawler struct {
	cfg Config
}

// New builds a Crawler.
func New(cfg Config) *Crawler {
	return &Crawler{cfg: cfg.withDefaults()}
}

// siteResult carries one site's visit records (and their stage-clock
// traces, one per visit) to the rank-ordered writer.
type siteResult struct {
	rank   int
	visits []dataset.Visit
	traces []*obs.VisitTrace
}

// Run crawls every entry of the list. It honours ctx cancellation,
// returning the partial result and ctx.Err().
func (c *Crawler) Run(ctx context.Context, list *tranco.List) (*Result, error) {
	cfg := c.cfg
	res := &Result{}
	if cfg.Collect {
		res.Data = &dataset.Dataset{}
	}

	jobs := make(chan tranco.Entry)
	results := make(chan siteResult, cfg.Workers*2)

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for entry := range jobs {
				var visits []dataset.Visit
				var traces []*obs.VisitTrace
				if !cfg.SkipSites[entry.Domain] {
					visits, traces = c.crawlSite(ctx, entry)
				}
				// Deliver unconditionally, even mid-drain: the consumer
				// reads until every worker exits, and abandoned visits
				// must reach it to be counted (their records carry the
				// aborted class and are kept out of the journal).
				results <- siteResult{rank: entry.Rank, visits: visits, traces: traces}
			}
		}()
	}

	// Feeder.
	go func() {
		defer close(jobs)
		for _, e := range list.Entries {
			select {
			case jobs <- e:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Rank-ordered consumer: a reorder buffer keyed by rank keeps the
	// output deterministic under any worker scheduling.
	err := c.consume(ctx, list, results, res)
	if err != nil {
		// Unblock any workers still sending so they can observe ctx or
		// finish; without this a failed writer would leak goroutines.
		// The drain exits when the closer goroutine above closes
		// results, which the wg.Wait join already bounds.
		//topicslint:ignore goroleak drain is bounded by close(results) from the wg-joined closer above
		go func() {
			for range results {
			}
		}()
	}

	if cfg.Logger != nil {
		cfg.Logger.Info("crawl finished", "stats", res.Stats.String())
	}
	return res, err
}

func (c *Crawler) consume(ctx context.Context, list *tranco.List, results <-chan siteResult, res *Result) error {
	cfg := c.cfg
	pending := make(map[int]siteResult)
	if len(list.Entries) == 0 {
		return nil
	}
	nextIdx := 0
	var lastStage time.Time // latest stage-clock instant seen, for Elapsed
	// Drain discipline: from the first site carrying a drain-aborted
	// record onward, nothing reaches the writer (or Collect) — the
	// journal stays rank-contiguous and holds only finished sites, so a
	// resumed campaign recrawls the abandoned tail and reproduces the
	// uninterrupted dataset byte for byte. Stats, metrics and traces
	// still see the abandoned visits.
	suppress := false
	abandoned := 0
	var drainStart time.Time
	siteAborted := func(sr siteResult) bool {
		for i := range sr.visits {
			if sr.visits[i].ErrorClass == string(chaos.ClassAborted) {
				return true
			}
		}
		return false
	}
	emit := func(sr siteResult, site string) error {
		if !suppress && siteAborted(sr) {
			suppress = true
			if len(sr.traces) > 0 {
				drainStart = sr.traces[0].Root.Start
			}
		}
		if suppress && len(sr.visits) > 0 {
			abandoned++
		}
		for i := range sr.visits {
			v := &sr.visits[i]
			c.accumulate(res, v)
			if cfg.Writer != nil && !suppress {
				if err := cfg.Writer.Write(v); err != nil {
					return err
				}
			}
			if cfg.Collect && !suppress {
				res.Data.Append(*v)
			}
		}
		if cfg.Writer != nil && !suppress && len(sr.visits) > 0 {
			if sc, ok := cfg.Writer.(SiteCompleter); ok {
				if err := sc.SiteCompleted(sr.rank, site); err != nil {
					return err
				}
			}
		}
		for _, tr := range sr.traces {
			if tr.Root.End.After(lastStage) {
				lastStage = tr.Root.End
			}
			if cfg.Metrics != nil {
				tr.Root.Walk(func(s *obs.Span) {
					cfg.Metrics.Observe("crawl_stage_seconds", s.Duration(), "stage", s.Name)
				})
			}
			if cfg.Traces != nil {
				if err := cfg.Traces.WriteTrace(tr); err != nil {
					return err
				}
			}
		}
		return nil
	}
	done := 0
	for sr := range results {
		pending[sr.rank] = sr
		for nextIdx < len(list.Entries) {
			sr, ok := pending[list.Entries[nextIdx].Rank]
			if !ok {
				break
			}
			delete(pending, list.Entries[nextIdx].Rank)
			if err := emit(sr, list.Entries[nextIdx].Domain); err != nil {
				return err
			}
			nextIdx++
			done++
			if cfg.Logger != nil && done%cfg.ProgressEvery == 0 {
				cfg.Logger.Info("crawl progress", "sites", done, "of", len(list.Entries))
			}
		}
	}
	if !lastStage.IsZero() {
		res.Stats.Elapsed = lastStage.Sub(cfg.Start)
	}
	// The flush (for a journal writer: the final checkpoint) happens
	// even on cancellation — a graceful drain's whole point is that the
	// finished prefix is durable before the process exits.
	if cfg.Writer != nil {
		if err := cfg.Writer.Flush(); err != nil {
			return err
		}
	}
	if ctx.Err() != nil {
		cfg.Metrics.Add("crawl_drain_total", 1)
		cfg.Metrics.Add("crawl_drain_abandoned_total", int64(abandoned))
		if !drainStart.IsZero() && lastStage.After(drainStart) {
			cfg.Metrics.Observe("crawl_drain_seconds", lastStage.Sub(drainStart))
		}
		if cfg.Logger != nil {
			cfg.Logger.Info("crawl drained", "completed", done-abandoned, "abandoned", abandoned)
		}
		return ctx.Err()
	}
	return nil
}

func (c *Crawler) accumulate(res *Result, v *dataset.Visit) {
	st := &res.Stats
	m := c.cfg.Metrics
	m.Add("crawl_visits_total", 1, "phase", string(v.Phase), "outcome", visitOutcome(v))
	m.Add("crawl_topics_calls_total", int64(len(v.Calls)), "phase", string(v.Phase))
	m.Add("crawl_retries_total", int64(v.Retries))
	if v.ErrorClass != "" {
		m.Add("crawl_failures_total", 1, "class", v.ErrorClass)
	}
	st.Retries += v.Retries
	if v.Partial {
		st.PartialVisits++
	}
	for _, r := range v.Resources {
		if r.Failed && r.Error == string(chaos.ClassCircuitOpen) {
			st.CircuitOpens++
			m.Add("crawl_circuit_opens_total", 1)
		}
	}
	switch v.Phase {
	case dataset.BeforeAccept:
		st.Attempted++
		if v.Success {
			st.Succeeded++
		} else {
			st.Failed++
			if st.FailedByClass == nil {
				st.FailedByClass = make(map[chaos.Class]int)
			}
			st.FailedByClass[chaos.Class(v.ErrorClass)]++
		}
		if v.BannerDetected {
			st.BannersFound++
		}
		if v.Accepted {
			st.Accepted++
		}
		st.CallsBefore += len(v.Calls)
	case dataset.AfterAccept:
		st.CallsAfter += len(v.Calls)
	}
}

// crawlSite performs the Before-Accept visit, the Priv-Accept consent
// interaction and — on success — the After-Accept visit. Each visit
// builds an obs trace on its own stage clock; the traces flow through
// the same rank-ordered path as the visit records, and always exist
// (even with no Traces sink) because Stats.Elapsed derives from them.
func (c *Crawler) crawlSite(ctx context.Context, entry tranco.Entry) ([]dataset.Visit, []*obs.VisitTrace) {
	cfg := c.cfg
	visitTime := cfg.Start.Add(time.Duration(entry.Rank-1) * cfg.VisitSpacing)

	// One fresh browser profile per site; the Topics engine (if any) is
	// shared, like a single browser visiting site after site.
	clock := visitTime
	gate := attestation.NewCorruptedGate()
	if cfg.Enforce {
		gate = attestation.NewEnforcingGate(cfg.ReferenceAllowlist)
	}
	b := browser.New(browser.Config{
		Client:             cfg.Client,
		Gate:               gate,
		ReferenceAllowlist: cfg.ReferenceAllowlist,
		Engine:             cfg.Engine,
		Vantage:            cfg.Vantage,
		Scheme:             cfg.Scheme,
		Attempts:           cfg.Attempts,
		BreakerThreshold:   cfg.BreakerThreshold,
		Now:                func() time.Time { return clock },
	})

	// loadPage navigates with bounded retries: each retry backs the
	// virtual clock off exponentially (with seeded jitter), so the
	// chaos injector redraws its fault coin through the time header and
	// the dataset stays byte-identical under any worker scheduling. The
	// backoff is also charged to the visit's stage clock, so the trace
	// shows the virtual time a retried navigation consumed.
	loadPage := func(tr *obs.Trace, visitStart time.Time) (*browser.PageVisit, int, error) {
		tr.Start("navigate", obs.A("site", entry.Domain))
		defer tr.End()
		var pv *browser.PageVisit
		var err error
		retries := 0
		for attempt := 0; ; attempt++ {
			// Deadline watchdog: once the visit's stage-clock budget is
			// spent (navigation plus accumulated retry backoff), stop
			// attempting and record the visit as deadline_exceeded
			// instead of wedging the worker on a hung host. Stage time
			// is virtual, so the cut-off is deterministic.
			if cfg.VisitBudget > 0 && attempt > 0 && tr.Now().Sub(visitStart) >= cfg.VisitBudget {
				tr.Annotate(obs.A("deadline", "exceeded"))
				return pv, retries, &chaos.Error{
					Class: chaos.ClassDeadline, Host: entry.Domain, Latency: cfg.VisitBudget,
				}
			}
			loadCtx, cancel := context.WithTimeout(ctx, cfg.PageTimeout)
			pv, err = b.LoadPageTraced(loadCtx, entry.Domain, tr)
			cancel()
			if err == nil || attempt+1 >= cfg.Attempts ||
				!chaos.Retryable(chaos.Classify(err)) || ctx.Err() != nil {
				if retries > 0 {
					tr.Annotate(obs.A("retries", strconv.Itoa(retries)))
				}
				return pv, retries, err
			}
			retries++
			back := navBackoff(cfg.RetryBackoff, entry.Domain, attempt)
			clock = clock.Add(back)
			tr.Start("retry_backoff", obs.A("attempt", strconv.Itoa(attempt)))
			tr.Advance(back)
			tr.End()
		}
	}
	mkTrace := func(tr *obs.Trace, v *dataset.Visit) *obs.VisitTrace {
		return &obs.VisitTrace{
			Site:    entry.Domain,
			Rank:    entry.Rank,
			Phase:   string(v.Phase),
			Outcome: visitOutcome(v),
			Root:    tr.Finish(),
		}
	}

	// Before-Accept visit.
	before := dataset.Visit{
		Site:      entry.Domain,
		Rank:      entry.Rank,
		Phase:     dataset.BeforeAccept,
		FetchedAt: visitTime,
	}
	trBefore := obs.NewTrace("visit", visitTime)
	pv, navRetries, err := loadPage(trBefore, visitTime)
	fillVisit(&before, pv, err)
	markAborted(ctx, &before, entry.Domain)
	before.Retries += navRetries
	if err != nil {
		return []dataset.Visit{before}, []*obs.VisitTrace{mkTrace(trBefore, &before)}
	}

	// Priv-Accept: find the banner and its accept control.
	det := privaccept.Detect(pv.Doc)
	before.BannerDetected = det.BannerFound
	before.BannerLanguage = det.Language
	before.CMP = cmpOf(pv)
	if !det.AcceptFound {
		// No banner, or Priv-Accept missed language/keyword: no
		// After-Accept visit (§2.2).
		return []dataset.Visit{before}, []*obs.VisitTrace{mkTrace(trBefore, &before)}
	}
	before.Accepted = true

	// Click accept: consent attaches to the page's origin (the sister
	// domain for redirecting sites).
	trBefore.Start("consent_click", obs.A("cmp", before.CMP))
	trBefore.Advance(obs.ConsentClickCost)
	trBefore.End()
	b.SetConsent(pv.PageOrigin)

	// After-Accept visit, cache cleared ("We delete the browser cache to
	// load again all objects").
	clock = visitTime.Add(cfg.AcceptDelay)
	after := dataset.Visit{
		Site:      entry.Domain,
		Rank:      entry.Rank,
		Phase:     dataset.AfterAccept,
		FetchedAt: clock,
		Accepted:  true,
	}
	trAfter := obs.NewTrace("visit", clock)
	pv2, navRetries2, err2 := loadPage(trAfter, clock)
	fillVisit(&after, pv2, err2)
	markAborted(ctx, &after, entry.Domain)
	after.Retries += navRetries2
	if err2 == nil {
		after.BannerDetected = det.BannerFound
		after.BannerLanguage = det.Language
		after.CMP = cmpOf(pv2)
	}
	return []dataset.Visit{before, after},
		[]*obs.VisitTrace{mkTrace(trBefore, &before), mkTrace(trAfter, &after)}
}

// markAborted reclassifies a visit that failed because the campaign is
// draining (context cancelled, SIGTERM): whatever error the collapsing
// page load surfaced, the truthful class is "aborted" — the site was
// not given a fair visit and must be recrawled on resume.
func markAborted(ctx context.Context, v *dataset.Visit, site string) {
	if v.Success || ctx.Err() == nil {
		return
	}
	e := &chaos.Error{Class: chaos.ClassAborted, Host: site}
	v.Error = e.Error()
	v.ErrorClass = string(chaos.ClassAborted)
}

// visitOutcome classifies a visit record for traces and metrics: "ok",
// "partial" (loaded with failed subresources) or "error".
func visitOutcome(v *dataset.Visit) string {
	switch {
	case !v.Success:
		return "error"
	case v.Partial:
		return "partial"
	default:
		return "ok"
	}
}

// fillVisit copies a browser PageVisit into a dataset record.
func fillVisit(v *dataset.Visit, pv *browser.PageVisit, err error) {
	if pv != nil {
		v.Resources = pv.Resources
		v.Calls = pv.Calls
		v.Retries += pv.Retries
	}
	if err != nil {
		v.Success = false
		v.Error = errText(err)
		v.ErrorClass = string(chaos.Classify(err))
		return
	}
	v.Success = true
	for _, r := range v.Resources {
		if r.Failed {
			v.Partial = true
			break
		}
	}
}

// errText renders a failure with its taxonomy class as prefix, so the
// raw dataset stays greppable by error kind.
func errText(err error) string {
	if c := chaos.Classify(err); c != chaos.ClassNone && c != chaos.ClassOther {
		return string(c) + ": " + err.Error()
	}
	return err.Error()
}

// navBackoff is the virtual-clock delay before navigation retry
// attempt+1: exponential in the attempt with jitter seeded from the
// site name, deterministic by construction.
func navBackoff(base time.Duration, site string, attempt int) time.Duration {
	d := base << attempt
	h := fnv.New64a()
	h.Write([]byte(site))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(attempt)))
	rng := rand.New(rand.NewPCG(0xbac0ff, h.Sum64()))
	return d + time.Duration(rng.Int64N(int64(base)/2+1))
}

// cmpOf fingerprints the CMP in use from the downloaded resources, by
// domain, as the paper does with the Wappalyzer list.
func cmpOf(pv *browser.PageVisit) string {
	for _, r := range pv.Resources {
		if r.Failed {
			continue
		}
		if name, ok := cmpByHost(r.Host); ok {
			return name
		}
	}
	return ""
}

func cmpByHost(host string) (string, bool) {
	return cmpLookup(etld.Normalize(host))
}
