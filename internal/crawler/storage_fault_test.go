package crawler

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/tranco"
)

// The crash matrix under storage weather: every kill point from the
// PR-5 matrix re-runs with an active I/O fault profile on the artifact
// writers — sync blips on the journal, faulted stores on the sidecars —
// and the invariants must not move: the resume reads only the tail and
// the finished dataset and report stay byte-identical to an
// uninterrupted, fault-free run.

// stormProfile is the standing weather for these tests: retryable blips
// on the authoritative write path (journal fsync, manifest store) at
// rates a bounded retry clears, and heavier faults on the best-effort
// accelerators, which may simply go missing.
func stormProfile(seed uint64, reg *obs.Registry) chaos.FSProfile {
	return chaos.FSProfile{
		Seed: seed,
		Rates: map[chaos.PathClass]chaos.FSFaultRates{
			chaos.PathJournal:    {Sync: 0.2},
			chaos.PathManifest:   {Create: 0.05, Sync: 0.05, Rename: 0.05},
			chaos.PathFrameIndex: {Create: 0.3, Sync: 0.3, Rename: 0.3},
			chaos.PathSnapshot:   {Create: 0.3, Sync: 0.3, Rename: 0.3},
		},
		Metrics: reg,
	}
}

func stormRetry(reg *obs.Registry) durable.RetryPolicy {
	return durable.RetryPolicy{Attempts: 6, Metrics: reg}
}

// resumeWithFS is resumeAndFinish with a storage seam: the resumed
// journal writes through the given fault FS and retry policy.
func resumeWithFS(t *testing.T, path string, list *tranco.List, every int, fsys durable.FS, retry durable.RetryPolicy, reg *obs.Registry) *dataset.ResumeState {
	t.Helper()
	rankSite := make(map[int]string, len(list.Entries))
	for _, e := range list.Entries {
		rankSite[e.Rank] = e.Domain
	}
	skip := make(map[string]bool)
	jw, st, err := dataset.ResumeJournal(path, dataset.JournalOptions{
		CheckpointEvery: every,
		Metrics:         reg,
		Durable:         durable.Options{FS: fsys, Retry: retry},
		Skip:            func(rank int) bool { return skip[rankSite[rank]] },
	})
	if err != nil {
		t.Fatalf("ResumeJournal: %v", err)
	}
	for site := range st.Completed {
		skip[site] = true
	}
	for _, e := range list.Entries {
		if e.Rank <= st.WatermarkRank {
			skip[e.Domain] = true
		}
	}
	if err := crawlJournal(context.Background(), jw, list, skip); err != nil {
		t.Fatalf("resumed crawl under storage faults: %v", err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStorageFaultCrashMatrix kills the campaign before every record
// append while the storage fault profile is live on both the dying run
// and the resume, and demands the byte-identical dataset and report.
func TestStorageFaultCrashMatrix(t *testing.T) {
	const every = 3
	list := cwWorld.List().Top(30)
	dir := t.TempDir()
	golden := goldenJournal(t, dir, list, every)
	goldenBytes := journalPayloads(t, golden)
	goldenReport := reportJSON(t, golden)
	n := int64(bytes.Count(goldenBytes, []byte("\n")))
	if n < 30 {
		t.Fatalf("matrix too small: %d records", n)
	}

	reg := obs.NewRegistry()
	for k := int64(1); k < n; k++ {
		path := filepath.Join(dir, fmt.Sprintf("storm-%d.jsonl.gz", k))
		plan := chaos.CrashPlan{AfterRecords: k}
		jw, err := dataset.CreateJournal(path, dataset.JournalOptions{
			CheckpointEvery: every,
			Durable: durable.Options{
				FS:           chaos.NewFaultFS(nil, stormProfile(uint64(k), reg)),
				Retry:        stormRetry(reg),
				BeforeAppend: plan.BeforeAppend(),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		err = crawlJournal(context.Background(), jw, list, nil)
		if err == nil {
			t.Fatalf("crashpoint %d: campaign survived its own death", k)
		}
		if !chaos.IsCrash(err) {
			t.Fatalf("crashpoint %d: want the injected crash through the fault weather, got: %v", k, err)
		}
		jw.Abort()

		resumeWithFS(t, path, list, every,
			chaos.NewFaultFS(nil, stormProfile(uint64(k)+1000, reg)), stormRetry(reg), nil)
		if got := journalPayloads(t, path); !bytes.Equal(got, goldenBytes) {
			t.Fatalf("crashpoint %d: dataset differs from the fault-free uninterrupted run", k)
		}
		if got := reportJSON(t, path); !bytes.Equal(got, goldenReport) {
			t.Fatalf("crashpoint %d: report differs from the fault-free uninterrupted run", k)
		}
		os.Remove(path)
		os.Remove(durable.ManifestPath(path))
	}
	// The matrix is only meaningful if the weather actually blew: at
	// least one retry must have fired across the runs.
	if reg.Snapshot().Counter("storage_retry_total", "op", "journal-fsync") == 0 &&
		reg.Snapshot().Counter("storage_retry_total", "op", "manifest") == 0 {
		t.Error("no storage retry ever fired — the fault profile was inert")
	}
}

// TestStorageFaultCrashReadsOnlyTail composes a byte-level torn write
// with the fault profile on a longer campaign and re-asserts the
// O(tail) resume contract under storage faults.
func TestStorageFaultCrashReadsOnlyTail(t *testing.T) {
	const every = 10
	list := cwWorld.List().Top(200)
	dir := t.TempDir()
	golden := goldenJournal(t, dir, list, every)
	goldenBytes := journalPayloads(t, golden)
	goldenSize := fileSize(t, golden)

	reg := obs.NewRegistry()
	path := filepath.Join(dir, "storm-tail.jsonl.gz")
	plan := chaos.CrashPlan{AfterBytes: goldenSize * 3 / 4}
	jw, err := dataset.CreateJournal(path, dataset.JournalOptions{
		CheckpointEvery: every,
		Durable: durable.Options{
			FS:    chaos.NewFaultFS(nil, stormProfile(71, reg)),
			Retry: stormRetry(reg),
			Wrap:  plan.Wrap(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = crawlJournal(context.Background(), jw, list, nil)
	if err == nil || !chaos.IsCrash(err) {
		t.Fatalf("expected the injected byte-level crash, got %v", err)
	}
	jw.Abort()

	size := fileSize(t, path)
	m := durable.LoadManifest(path)
	if m == nil {
		t.Fatal("crashed journal has no checkpoint manifest")
	}
	st := resumeWithFS(t, path, list, every,
		chaos.NewFaultFS(nil, stormProfile(72, reg)), stormRetry(reg), nil)
	if want := size - m.Offset; st.BytesRead != want {
		t.Fatalf("resume read %d raw bytes, want exactly the %d-byte tail", st.BytesRead, want)
	}
	if got := journalPayloads(t, path); !bytes.Equal(got, goldenBytes) {
		t.Fatal("dataset differs from the fault-free uninterrupted run")
	}
}

// TestStorageFaultDiskFullDrainsAndResumes fills the simulated disk
// mid-campaign: the crawl must fail fast with the ENOSPC classification
// (no retry storm), the checkpointed prefix must survive, and a resume
// with space freed must complete the campaign byte-identically.
func TestStorageFaultDiskFullDrainsAndResumes(t *testing.T) {
	const every = 5
	list := cwWorld.List().Top(120)
	dir := t.TempDir()
	golden := goldenJournal(t, dir, list, every)
	goldenBytes := journalPayloads(t, golden)
	goldenReport := reportJSON(t, golden)

	reg := obs.NewRegistry()
	path := filepath.Join(dir, "full.jsonl.gz")
	fsys := chaos.NewFaultFS(nil, chaos.FSProfile{Seed: 7, ENOSPCAfter: fileSize(t, golden) / 2, Metrics: reg})
	jw, err := dataset.CreateJournal(path, dataset.JournalOptions{
		CheckpointEvery: every,
		Durable:         durable.Options{FS: fsys, Retry: stormRetry(reg)},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = crawlJournal(context.Background(), jw, list, nil)
	if err == nil {
		t.Fatal("campaign survived a half-size disk")
	}
	if !durable.IsDiskFull(err) {
		t.Fatalf("want ENOSPC classification for the drain decision, got: %v", err)
	}
	jw.Abort()

	m := durable.LoadManifest(path)
	if m == nil || m.Offset == 0 {
		t.Fatal("disk-full drain preserved no checkpoint")
	}

	// Space freed: resume on the real filesystem.
	resumeWithFS(t, path, list, every, nil, durable.RetryPolicy{}, nil)
	if got := journalPayloads(t, path); !bytes.Equal(got, goldenBytes) {
		t.Fatal("dataset differs from the fault-free uninterrupted run")
	}
	if got := reportJSON(t, path); !bytes.Equal(got, goldenReport) {
		t.Fatal("report differs from the fault-free uninterrupted run")
	}
}
