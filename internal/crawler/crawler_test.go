package crawler

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/webserver"
	"github.com/netmeasure/topicscope/internal/webworld"
)

var (
	cwWorld  = webworld.Generate(webworld.Config{Seed: 99, NumSites: 600, DistilleryRank: 300})
	cwServer = webserver.New(cwWorld, nil)
	cwAllow  = attestation.NewAllowlist(cwWorld.Catalog.AllowedDomains()...)
)

func newTestCrawler(t *testing.T, collect bool, w *dataset.Writer) *Crawler {
	t.Helper()
	return New(Config{
		Client:             cwServer.Client(),
		ReferenceAllowlist: cwAllow,
		Workers:            8,
		Collect:            collect,
		Writer:             w,
	})
}

func runCrawl(t *testing.T) *Result {
	t.Helper()
	c := newTestCrawler(t, true, nil)
	res, err := c.Run(context.Background(), cwWorld.List())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

var cached *Result

func crawlOnce(t *testing.T) *Result {
	if cached == nil {
		cached = runCrawl(t)
	}
	return cached
}

func TestCrawlStatsShape(t *testing.T) {
	res := crawlOnce(t)
	st := res.Stats
	t.Logf("stats: %s", st)
	if st.Attempted != 600 {
		t.Errorf("attempted %d", st.Attempted)
	}
	if st.Succeeded+st.Failed != st.Attempted {
		t.Error("succeeded+failed != attempted")
	}
	// ≈86.8% reachability.
	if st.Succeeded < 480 || st.Succeeded > 560 {
		t.Errorf("succeeded = %d, want ≈520", st.Succeeded)
	}
	// ≈30% of successful sites accepted (paper: 14,719/43,405).
	frac := float64(st.Accepted) / float64(st.Succeeded)
	if frac < 0.2 || frac > 0.45 {
		t.Errorf("accept fraction %.3f, want ≈0.30", frac)
	}
	if st.CallsAfter == 0 || st.CallsBefore == 0 {
		t.Error("no calls recorded in one of the phases")
	}
}

func TestVisitRecordsConsistent(t *testing.T) {
	res := crawlOnce(t)
	afters := make(map[string]bool)
	for i := range res.Data.Visits {
		v := &res.Data.Visits[i]
		switch v.Phase {
		case dataset.AfterAccept:
			afters[v.Site] = true
			if !v.Accepted || !v.Success {
				t.Errorf("after-accept visit of %s inconsistent: %+v", v.Site, v)
			}
		case dataset.BeforeAccept:
			if v.Accepted && !v.BannerDetected {
				t.Errorf("%s accepted without banner", v.Site)
			}
			if !v.Success && len(v.Calls) > 0 {
				t.Errorf("%s failed but has calls", v.Site)
			}
		default:
			t.Fatalf("unknown phase %q", v.Phase)
		}
	}
	// Every accepted before-visit must have a matching after-visit.
	for i := range res.Data.Visits {
		v := &res.Data.Visits[i]
		if v.Phase == dataset.BeforeAccept && v.Accepted && !afters[v.Site] {
			t.Errorf("%s accepted but no after-accept visit", v.Site)
		}
	}
}

func TestCrawlRecordsOrderedByRank(t *testing.T) {
	res := crawlOnce(t)
	lastRank := 0
	for i := range res.Data.Visits {
		v := &res.Data.Visits[i]
		if v.Rank < lastRank {
			t.Fatalf("visit order broken at %s: rank %d after %d", v.Site, v.Rank, lastRank)
		}
		lastRank = v.Rank
	}
}

func TestCrawlDeterministic(t *testing.T) {
	var buf1, buf2 bytes.Buffer
	w1, w2 := dataset.NewWriter(&buf1), dataset.NewWriter(&buf2)
	c1 := newTestCrawler(t, false, w1)
	if _, err := c1.Run(context.Background(), cwWorld.List().Top(150)); err != nil {
		t.Fatal(err)
	}
	c2 := New(Config{
		Client:             cwServer.Client(),
		ReferenceAllowlist: cwAllow,
		Workers:            3, // different parallelism must not matter
		Writer:             w2,
	})
	if _, err := c2.Run(context.Background(), cwWorld.List().Top(150)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("two crawls of the same world differ byte-wise")
	}
	if buf1.Len() == 0 {
		t.Error("no output written")
	}
}

func TestEnforcedCrawlHasNoAnomalousCalls(t *testing.T) {
	c := New(Config{
		Client:             cwServer.Client(),
		ReferenceAllowlist: cwAllow,
		Enforce:            true,
		Workers:            8,
		Collect:            true,
	})
	res, err := c.Run(context.Background(), cwWorld.List().Top(200))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Data.Visits {
		for _, call := range res.Data.Visits[i].Calls {
			if !call.GateAllowed {
				t.Fatalf("enforcing crawl recorded a not-Allowed call: %+v", call)
			}
			if call.GateReason != "enrolled" {
				t.Fatalf("gate reason %q under enforcement", call.GateReason)
			}
		}
	}
}

func TestCrawlCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := newTestCrawler(t, true, nil)
	_, err := c.Run(ctx, cwWorld.List())
	if err == nil {
		t.Error("cancelled crawl returned no error")
	}
}

func TestDistilleryObservedOnOwnSiteOnly(t *testing.T) {
	res := crawlOnce(t)
	for i := range res.Data.Visits {
		v := &res.Data.Visits[i]
		for _, call := range v.Calls {
			if call.Caller == "distillery.com" && v.Site != "distillery.com" {
				t.Errorf("distillery.com called on %s", v.Site)
			}
		}
	}
	// And it does call on its own site after accept.
	found := false
	for i := range res.Data.Visits {
		v := &res.Data.Visits[i]
		if v.Site == "distillery.com" && v.Phase == dataset.AfterAccept {
			for _, call := range v.Calls {
				if call.Caller == "distillery.com" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("distillery.com never called on its own site")
	}
}

func TestCheckAttestations(t *testing.T) {
	c := newTestCrawler(t, false, nil)
	domains := append([]string{}, cwWorld.Catalog.AllowedDomains()...)
	domains = append(domains, "distillery.com", "unknown-host.example")
	recs := c.CheckAttestations(context.Background(), domains)
	if len(recs) != len(domains) {
		t.Fatalf("got %d records", len(recs))
	}
	byDomain := map[string]dataset.AttestationRecord{}
	attested := 0
	for _, r := range recs {
		byDomain[r.Domain] = r
		if r.Attested() {
			attested++
		}
	}
	// 181 allowed & attested + distillery = 182.
	if attested != 182 {
		t.Errorf("attested = %d, want 182 (181 allowed + distillery)", attested)
	}
	if r := byDomain["distillery.com"]; !r.Attested() || r.IssuedAt.Year() != 2023 {
		t.Errorf("distillery record: %+v", r)
	}
	if r := byDomain["unknown-host.example"]; r.Present {
		t.Errorf("unknown host present: %+v", r)
	}
	// Exactly 12 allowed domains must lack attestation.
	missing := 0
	for _, d := range cwWorld.Catalog.AllowedDomains() {
		if !byDomain[d].Attested() {
			missing++
		}
	}
	if missing != 12 {
		t.Errorf("allowed-without-attestation = %d, Table 1 reports 12", missing)
	}
}

func TestCallerDomains(t *testing.T) {
	res := crawlOnce(t)
	callers := CallerDomains(res.Data)
	if len(callers) == 0 {
		t.Fatal("no callers found")
	}
	seen := map[string]bool{}
	for _, c := range callers {
		if seen[c] {
			t.Errorf("duplicate caller %q", c)
		}
		seen[c] = true
	}
}

func TestVirtualTimesDeterministic(t *testing.T) {
	res := crawlOnce(t)
	start := time.Date(2024, 3, 30, 6, 0, 0, 0, time.UTC)
	for i := range res.Data.Visits {
		v := &res.Data.Visits[i]
		want := start.Add(time.Duration(v.Rank-1) * 2 * time.Second)
		if v.Phase == dataset.AfterAccept {
			want = want.Add(30 * time.Second)
		}
		if !v.FetchedAt.Equal(want) {
			t.Fatalf("%s %s fetched at %v, want %v", v.Site, v.Phase, v.FetchedAt, want)
		}
	}
}

func TestResumeSkipsCompletedSites(t *testing.T) {
	list := cwWorld.List().Top(60)

	// First half of the campaign.
	var part1 bytes.Buffer
	w1 := dataset.NewWriter(&part1)
	c1 := New(Config{
		Client:             cwServer.Client(),
		ReferenceAllowlist: cwAllow,
		Workers:            4,
		Writer:             w1,
	})
	if _, err := c1.Run(context.Background(), list.Top(30)); err != nil {
		t.Fatal(err)
	}

	// Resume over the full list, skipping what part 1 covered.
	done := map[string]bool{}
	if err := dataset.Read(bytes.NewReader(part1.Bytes()), func(v *dataset.Visit) error {
		if v.Phase == dataset.BeforeAccept {
			done[v.Site] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(done) != 30 {
		t.Fatalf("part 1 covered %d sites", len(done))
	}
	var part2 bytes.Buffer
	w2 := dataset.NewWriter(&part2)
	c2 := New(Config{
		Client:             cwServer.Client(),
		ReferenceAllowlist: cwAllow,
		Workers:            4,
		Writer:             w2,
		SkipSites:          done,
	})
	res2, err := c2.Run(context.Background(), list)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Attempted != 30 {
		t.Errorf("resume attempted %d sites, want the remaining 30", res2.Stats.Attempted)
	}

	// Concatenated output equals a single uninterrupted campaign.
	var full bytes.Buffer
	wf := dataset.NewWriter(&full)
	cf := New(Config{
		Client:             cwServer.Client(),
		ReferenceAllowlist: cwAllow,
		Workers:            4,
		Writer:             wf,
	})
	if _, err := cf.Run(context.Background(), list); err != nil {
		t.Fatal(err)
	}
	combined := append(append([]byte{}, part1.Bytes()...), part2.Bytes()...)
	if !bytes.Equal(combined, full.Bytes()) {
		t.Error("resumed campaign output differs from an uninterrupted one")
	}
}

func TestUSVantageCrawl(t *testing.T) {
	// §6: the paper crawled from a single EU location. A US vantage
	// sees geo-fenced banners only on EU sites, so consent is rarely
	// acquired — and pre-consent Topics calls are far MORE common,
	// because geo-fenced sites serve their ad stack unconditionally and
	// consent-guarded tags treat gdprApplies=false as a green light.
	list := cwWorld.List().Top(400)

	runVantage := func(v string) *Result {
		c := New(Config{
			Client:             cwServer.Client(),
			ReferenceAllowlist: cwAllow,
			Workers:            8,
			Collect:            true,
			Vantage:            v,
		})
		res, err := c.Run(context.Background(), list)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	eu := runVantage("") // default: the paper's setup
	us := runVantage("us")

	t.Logf("eu: %s", eu.Stats)
	t.Logf("us: %s", us.Stats)

	if us.Stats.Accepted >= eu.Stats.Accepted {
		t.Errorf("US vantage accepted %d banners vs EU %d — geo-fencing should shrink it",
			us.Stats.Accepted, eu.Stats.Accepted)
	}
	if us.Stats.CallsBefore <= eu.Stats.CallsBefore {
		t.Errorf("US vantage pre-consent calls %d vs EU %d — should be far larger",
			us.Stats.CallsBefore, eu.Stats.CallsBefore)
	}
	// EU sites still show their banner to US visitors.
	usBanners := us.Stats.BannersFound
	if usBanners == 0 {
		t.Error("US visitor saw no banners at all — EU sites apply GDPR to everyone")
	}
	if usBanners >= eu.Stats.BannersFound {
		t.Errorf("US visitor saw %d banners vs EU %d", usBanners, eu.Stats.BannersFound)
	}
}
