package crawler

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/cmpdb"
	"github.com/netmeasure/topicscope/internal/dataset"
)

// cmpLookup resolves a hostname to a CMP display name.
func cmpLookup(host string) (string, bool) {
	c, ok := cmpdb.ByDomain(host)
	if !ok {
		return "", false
	}
	return c.Name, true
}

// CheckAttestations fetches and validates the attestation file of every
// domain, concurrently, returning records sorted by domain.
func (c *Crawler) CheckAttestations(ctx context.Context, domains []string) []dataset.AttestationRecord {
	cfg := c.cfg
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = "http"
	}
	out := make([]dataset.AttestationRecord, len(domains))
	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	for i, d := range domains {
		wg.Add(1)
		go func(i int, domain string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = checkOne(ctx, cfg.Client, scheme, domain)
		}(i, d)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

func checkOne(ctx context.Context, client *http.Client, scheme, domain string) dataset.AttestationRecord {
	rec := dataset.AttestationRecord{Domain: domain}
	url := scheme + "://" + domain + attestation.WellKnownPath
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	resp, err := client.Do(req)
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rec.Error = fmt.Sprintf("status %d", resp.StatusCode)
		return rec
	}
	rec.Present = true
	f, err := attestation.Parse(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	if errs := f.Validate(); len(errs) > 0 {
		rec.Error = errs[0].Error()
		return rec
	}
	rec.Valid = true
	rec.AttestsTopics = f.AttestsTopics()
	rec.IssuedAt = f.IssuedAt
	rec.HasEnrollmentSite = f.HasEnrollmentSite()
	return rec
}

// CallerDomains extracts the distinct calling-party domains from a
// dataset, the set whose attestations the analysis needs.
func CallerDomains(d *dataset.Dataset) []string {
	seen := make(map[string]bool)
	for i := range d.Visits {
		for _, call := range d.Visits[i].Calls {
			seen[call.Caller] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
