package crawler

import (
	"bytes"
	"context"
	"testing"

	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/tranco"
)

// TestRankWindowDispatchMatchesFullCrawl pins the invariant the
// distributed orchestrator rests on: crawling a contiguous rank window
// emits exactly the records the full crawl emits for those ranks — same
// bytes, same order — with no knowledge of the sibling windows. Visit
// timestamps derive from the global rank on the virtual clock, chaos
// decisions are pure per-request functions, and the rank-ordered
// consumer keys on the entry's Rank rather than its list position, so
// concatenating the windows' outputs reassembles the single-crawl
// dataset byte for byte.
func TestRankWindowDispatchMatchesFullCrawl(t *testing.T) {
	list := cwWorld.List().Top(60)
	run := func(entries []tranco.Entry) []byte {
		var buf bytes.Buffer
		cfg := chaosConfig(5, 8)
		cfg.Writer = dataset.NewWriter(&buf)
		if _, err := New(cfg).Run(context.Background(), &tranco.List{Entries: entries}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	full := run(list.Entries)
	if len(full) == 0 {
		t.Fatal("reference crawl wrote nothing")
	}

	// Uneven windows, including a single-site one.
	var cat []byte
	for _, w := range [][2]int{{0, 20}, {20, 21}, {21, 45}, {45, 60}} {
		cat = append(cat, run(list.Entries[w[0]:w[1]])...)
	}
	if !bytes.Equal(cat, full) {
		t.Fatal("concatenated rank-window crawls differ from the single crawl")
	}
}
