package crawler

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// chaosConfig builds a crawl config whose client runs through the
// paper-calibrated fault injector. Each call wraps a fresh client, so
// tests never share injector state.
func chaosConfig(seed uint64, workers int) Config {
	client := cwServer.Client()
	client.Transport = chaos.NewInjector(webworld.DefaultChaos(seed), client.Transport)
	return Config{
		Client:             client,
		ReferenceAllowlist: cwAllow,
		Workers:            workers,
	}
}

func TestChaosCrawlDeterministic(t *testing.T) {
	list := cwWorld.List().Top(200)
	run := func(workers int) []byte {
		var buf bytes.Buffer
		cfg := chaosConfig(5, workers)
		cfg.Writer = dataset.NewWriter(&buf)
		if _, err := New(cfg).Run(context.Background(), list); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	parallel := run(16)
	if !bytes.Equal(serial, parallel) {
		t.Error("chaos crawl differs between 1 and 16 workers")
	}
	if len(serial) == 0 {
		t.Fatal("no output written")
	}
	// The injector must actually have hurt something, or the test
	// trivially passes against a disabled injector.
	if !bytes.Contains(serial, []byte(`"errorClass"`)) {
		t.Error("no visit carries an errorClass — chaos did not engage")
	}
}

func TestChaosResumeMatchesUninterrupted(t *testing.T) {
	list := cwWorld.List().Top(60)

	// Interrupted first half.
	var part1 bytes.Buffer
	cfg1 := chaosConfig(9, 4)
	cfg1.Writer = dataset.NewWriter(&part1)
	if _, err := New(cfg1).Run(context.Background(), list.Top(30)); err != nil {
		t.Fatal(err)
	}

	// Resume over the full list, skipping what part 1 covered — failed
	// visits count as covered too: they have a Before-Accept record.
	done := map[string]bool{}
	if err := dataset.Read(bytes.NewReader(part1.Bytes()), func(v *dataset.Visit) error {
		if v.Phase == dataset.BeforeAccept {
			done[v.Site] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(done) != 30 {
		t.Fatalf("part 1 covered %d sites, want 30", len(done))
	}
	var part2 bytes.Buffer
	cfg2 := chaosConfig(9, 4)
	cfg2.Writer = dataset.NewWriter(&part2)
	cfg2.SkipSites = done
	if _, err := New(cfg2).Run(context.Background(), list); err != nil {
		t.Fatal(err)
	}

	// One uninterrupted campaign over the same list and chaos seed.
	var full bytes.Buffer
	cfgF := chaosConfig(9, 4)
	cfgF.Writer = dataset.NewWriter(&full)
	if _, err := New(cfgF).Run(context.Background(), list); err != nil {
		t.Fatal(err)
	}
	combined := append(append([]byte{}, part1.Bytes()...), part2.Bytes()...)
	if !bytes.Equal(combined, full.Bytes()) {
		t.Error("resumed chaos campaign differs from an uninterrupted one")
	}
}

func TestChaosSuccessRateNearPaper(t *testing.T) {
	cfg := chaosConfig(1, 8)
	res, err := New(cfg).Run(context.Background(), cwWorld.List())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	rate := float64(st.Succeeded) / float64(st.Attempted)
	t.Logf("chaos crawl: %s (success %.1f%%)", st, rate*100)
	// §2.4: 43,405/50,000 ≈ 86.8%, acceptance window ±3 points.
	if rate < 0.838 || rate > 0.898 {
		t.Errorf("success rate %.3f outside 0.868±0.030", rate)
	}
	if st.Retries == 0 {
		t.Error("no retries recorded under chaos")
	}
	valid := map[chaos.Class]bool{}
	for _, c := range chaos.Classes {
		valid[c] = true
	}
	if len(st.FailedByClass) == 0 {
		t.Error("no failure classes recorded")
	}
	for class, n := range st.FailedByClass {
		if !valid[class] {
			t.Errorf("failure class %q (%d visits) outside the taxonomy", class, n)
		}
	}
}

func TestChaosRetriesRecoverFailures(t *testing.T) {
	withRetries := chaosConfig(1, 8) // default budget: 3 attempts
	resRetry, err := New(withRetries).Run(context.Background(), cwWorld.List())
	if err != nil {
		t.Fatal(err)
	}
	noRetries := chaosConfig(1, 8)
	noRetries.Attempts = 1
	resNone, err := New(noRetries).Run(context.Background(), cwWorld.List())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("with retries: %s", resRetry.Stats)
	t.Logf("no retries:   %s", resNone.Stats)
	if resNone.Stats.Failed <= resRetry.Stats.Failed {
		t.Errorf("retries disabled failed %d visits vs %d with the default policy — must be strictly worse",
			resNone.Stats.Failed, resRetry.Stats.Failed)
	}
	if resNone.Stats.Retries != 0 {
		t.Errorf("Attempts=1 still recorded %d retries", resNone.Stats.Retries)
	}
}

func TestChaosPartialVisitsRecorded(t *testing.T) {
	cfg := chaosConfig(1, 8)
	cfg.Collect = true
	res, err := New(cfg).Run(context.Background(), cwWorld.List().Top(300))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PartialVisits == 0 {
		t.Fatal("no partial visits under chaos — graceful degradation untested")
	}
	partials := 0
	for i := range res.Data.Visits {
		v := &res.Data.Visits[i]
		if !v.Partial {
			continue
		}
		partials++
		if !v.Success {
			t.Errorf("%s %s: partial but not successful", v.Site, v.Phase)
		}
		failed := false
		for _, r := range v.Resources {
			if r.Failed {
				failed = true
				if r.Error == "" {
					t.Errorf("%s: failed resource %s without an error class", v.Site, r.URL)
				}
			}
		}
		if !failed {
			t.Errorf("%s %s: partial without any failed resource", v.Site, v.Phase)
		}
	}
	if partials != res.Stats.PartialVisits {
		t.Errorf("stats count %d partial visits, dataset has %d", res.Stats.PartialVisits, partials)
	}
}

// failingWriter accepts limit bytes, then fails every write — the
// "disk full mid-campaign" case the race target hammers.
type failingWriter struct {
	limit, n int
}

var errWriterFull = errors.New("writer full")

func (f *failingWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > f.limit {
		return 0, errWriterFull
	}
	return len(p), nil
}

func TestChaosCrawlFailingWriter(t *testing.T) {
	// Many workers keep racing the consumer while the writer dies; the
	// race detector (make race) checks the shutdown path.
	cfg := chaosConfig(3, 24)
	cfg.Writer = dataset.NewWriter(&failingWriter{limit: 64 << 10})
	_, err := New(cfg).Run(context.Background(), cwWorld.List())
	if err == nil {
		t.Fatal("crawl with a failing writer returned no error")
	}
	if !errors.Is(err, errWriterFull) {
		t.Errorf("error %v does not wrap the writer failure", err)
	}
}
