package crawler

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/netmeasure/topicscope/internal/analysis"
	"github.com/netmeasure/topicscope/internal/webworld"
)

func TestRepeatedVisitsAlternation(t *testing.T) {
	// Find a reachable, non-redirecting site embedding criteo.
	var site *webworld.Site
	for _, s := range cwWorld.Sites {
		if !s.Reachable || s.RedirectTo != "" {
			continue
		}
		for _, p := range s.Platforms {
			if p == "criteo.com" {
				site = s
			}
		}
		if site != nil {
			break
		}
	}
	if site == nil {
		t.Skip("no criteo site in test world")
	}

	c := newTestCrawler(t, false, nil)
	series, err := c.RepeatedVisits(context.Background(), RepeatedVisits{
		Site:    site.Domain,
		Start:   time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC),
		Step:    3 * time.Hour,
		Samples: 160, // 20 virtual days
		CPs:     []string{"criteo.com", "google-analytics.com"},
	})
	if err != nil {
		t.Fatalf("RepeatedVisits: %v", err)
	}

	crit := analysis.AnalyzeAlternation(series["criteo.com"])
	t.Logf("criteo alternation: %s", crit.Render())
	// §3: alternating ON periods and OFF periods, ON fraction near the
	// CP's A/B rate (criteo: 75%).
	if math.Abs(crit.OnFraction-0.75) > 0.15 {
		t.Errorf("criteo ON fraction %.2f, want ≈0.75", crit.OnFraction)
	}
	if crit.Transitions == 0 {
		t.Error("criteo never toggled across 20 virtual days")
	}
	if crit.LongestOnRun < 2 {
		t.Error("no stable ON periods — not the A/B pattern the paper saw")
	}

	// A never-calling CP yields an all-OFF series.
	ga := analysis.AnalyzeAlternation(series["google-analytics.com"])
	if ga.OnFraction != 0 {
		t.Errorf("google-analytics ON fraction %.2f, must be 0", ga.OnFraction)
	}
}

func TestRepeatedVisitsValidation(t *testing.T) {
	c := newTestCrawler(t, false, nil)
	if _, err := c.RepeatedVisits(context.Background(), RepeatedVisits{Site: "x.com"}); err == nil {
		t.Error("zero samples accepted")
	}
}
