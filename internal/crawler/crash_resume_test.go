package crawler

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/netmeasure/topicscope/internal/analysis"
	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/tranco"
)

// The kill-and-resume harness: crawl through a crash-safe journal,
// "kill" the process at a deterministic crashpoint (chaos.CrashPlan on
// the durable write path), resume from the on-disk state, and assert
// that the finished dataset — and therefore the analysis report — is
// byte-identical to an uninterrupted run. This is the repo's
// determinism invariant extended across process death.

// crawlJournal runs a (possibly chaos-faulted) crawl writing through
// the given journal writer, skipping the given completed sites.
func crawlJournal(ctx context.Context, jw VisitWriter, list *tranco.List, skip map[string]bool) error {
	cfg := chaosConfig(5, 8)
	cfg.Writer = jw
	cfg.SkipSites = skip
	_, err := New(cfg).Run(ctx, list)
	return err
}

// journalPayloads reads every record payload of a journal, start to
// end, and returns them concatenated — the byte-level identity of the
// dataset, independent of gzip member boundaries (which legitimately
// differ between checkpoint histories).
func journalPayloads(t *testing.T, path string) []byte {
	t.Helper()
	rc, _, err := durable.OpenTail(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var buf bytes.Buffer
	st, err := durable.ScanRecords(rc, func(p []byte) error {
		buf.Write(p)
		buf.WriteByte('\n')
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated {
		t.Fatalf("finished journal has a torn tail: %+v", st)
	}
	return buf.Bytes()
}

// reportJSON runs the full analysis over a journal and marshals the
// report — the artifact the acceptance criterion compares.
func reportJSON(t *testing.T, path string) []byte {
	t.Helper()
	data, err := dataset.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := analysis.Run(&analysis.Input{Data: data, Allowlist: cwAllow})
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// goldenJournal runs the uninterrupted campaign once and returns the
// journal path.
func goldenJournal(t *testing.T, dir string, list *tranco.List, every int) string {
	t.Helper()
	path := filepath.Join(dir, "golden.jsonl.gz")
	jw, err := dataset.CreateJournal(path, dataset.JournalOptions{CheckpointEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	if err := crawlJournal(context.Background(), jw, list, nil); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// resumeAndFinish resumes a crashed journal, recrawls what is missing,
// and returns the resume state.
func resumeAndFinish(t *testing.T, path string, list *tranco.List, every int, reg *obs.Registry) *dataset.ResumeState {
	t.Helper()
	rankSite := make(map[int]string, len(list.Entries))
	for _, e := range list.Entries {
		rankSite[e.Rank] = e.Domain
	}
	skip := make(map[string]bool)
	jw, st, err := dataset.ResumeJournal(path, dataset.JournalOptions{
		CheckpointEvery: every,
		Metrics:         reg,
		Skip:            func(rank int) bool { return skip[rankSite[rank]] },
	})
	if err != nil {
		t.Fatalf("ResumeJournal: %v", err)
	}
	for site := range st.Completed {
		skip[site] = true
	}
	for _, e := range list.Entries {
		if e.Rank <= st.WatermarkRank {
			skip[e.Domain] = true
		}
	}
	if err := crawlJournal(context.Background(), jw, list, skip); err != nil {
		t.Fatalf("resumed crawl: %v", err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	return st
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestCrashResumeMatrixEveryRecordBoundary kills the campaign before
// every single record append, resumes, and demands the byte-identical
// dataset and report.
func TestCrashResumeMatrixEveryRecordBoundary(t *testing.T) {
	const every = 3
	list := cwWorld.List().Top(30)
	dir := t.TempDir()
	golden := goldenJournal(t, dir, list, every)
	goldenBytes := journalPayloads(t, golden)
	goldenReport := reportJSON(t, golden)
	n := int64(bytes.Count(goldenBytes, []byte("\n")))
	if n < 30 {
		t.Fatalf("matrix too small: %d records", n)
	}

	for k := int64(1); k < n; k++ {
		path := filepath.Join(dir, fmt.Sprintf("crash-%d.jsonl.gz", k))
		plan := chaos.CrashPlan{AfterRecords: k}
		jw, err := dataset.CreateJournal(path, dataset.JournalOptions{
			CheckpointEvery: every,
			Durable:         durable.Options{BeforeAppend: plan.BeforeAppend()},
		})
		if err != nil {
			t.Fatal(err)
		}
		err = crawlJournal(context.Background(), jw, list, nil)
		if err == nil {
			t.Fatalf("crashpoint %d: campaign survived its own death", k)
		}
		if !chaos.IsCrash(err) {
			t.Fatalf("crashpoint %d: unexpected error: %v", k, err)
		}
		jw.Abort()

		resumeAndFinish(t, path, list, every, nil)
		if got := journalPayloads(t, path); !bytes.Equal(got, goldenBytes) {
			t.Fatalf("crashpoint %d: resumed dataset differs from uninterrupted run", k)
		}
		if got := reportJSON(t, path); !bytes.Equal(got, goldenReport) {
			t.Fatalf("crashpoint %d: resumed report differs from uninterrupted run", k)
		}
		os.Remove(path)
		os.Remove(durable.ManifestPath(path))
	}
}

// TestCrashResumeReadsOnlyTail crashes a 200-site campaign with a torn
// byte-level write late in the file and asserts the O(tail) resume
// contract: the salvaging scan reads exactly the bytes past the last
// checkpoint, not the whole journal, and the finished dataset still
// matches the uninterrupted run byte for byte.
func TestCrashResumeReadsOnlyTail(t *testing.T) {
	const every = 10
	list := cwWorld.List().Top(200)
	dir := t.TempDir()
	golden := goldenJournal(t, dir, list, every)
	goldenBytes := journalPayloads(t, golden)
	goldenSize := fileSize(t, golden)

	path := filepath.Join(dir, "crash.jsonl.gz")
	plan := chaos.CrashPlan{AfterBytes: goldenSize * 3 / 4}
	jw, err := dataset.CreateJournal(path, dataset.JournalOptions{
		CheckpointEvery: every,
		Durable:         durable.Options{Wrap: plan.Wrap()},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = crawlJournal(context.Background(), jw, list, nil)
	if err == nil || !chaos.IsCrash(err) {
		t.Fatalf("expected injected byte-level crash, got %v", err)
	}
	jw.Abort()

	size := fileSize(t, path)
	m := durable.LoadManifest(path)
	if m == nil {
		t.Fatal("crashed journal has no checkpoint manifest")
	}
	if m.Offset == 0 || m.Offset > size {
		t.Fatalf("manifest offset %d outside file of %d bytes", m.Offset, size)
	}

	reg := obs.NewRegistry()
	st := resumeAndFinish(t, path, list, every, reg)

	// The O(tail) bytes-read assertion: resume read the tail, the whole
	// tail, and nothing but the tail.
	if want := size - m.Offset; st.BytesRead != want {
		t.Fatalf("resume read %d raw bytes, want exactly the %d-byte tail", st.BytesRead, want)
	}
	if st.BytesRead >= size/3 {
		t.Fatalf("resume read %d of %d bytes — not O(checkpoint tail)", st.BytesRead, size)
	}

	if got := journalPayloads(t, path); !bytes.Equal(got, goldenBytes) {
		t.Fatal("resumed dataset differs from uninterrupted run")
	}
	snap := reg.Snapshot()
	if snap.Counter("dataset_checkpoints_written_total") == 0 {
		t.Error("no checkpoint counter recorded on resume")
	}
	if st.Truncated && snap.Counter("dataset_torn_tails_total") == 0 {
		t.Error("torn tail not surfaced in metrics")
	}
}

// cancellingWriter cancels the campaign context after a fixed number of
// visit records — a deterministic stand-in for SIGTERM arriving
// mid-campaign.
type cancellingWriter struct {
	*dataset.JournalWriter
	cancel context.CancelFunc
	after  int
	n      int
}

func (c *cancellingWriter) Write(v *dataset.Visit) error {
	c.n++
	if c.n == c.after {
		c.cancel()
	}
	return c.JournalWriter.Write(v)
}

// TestGracefulDrainCheckpointsAndResumes interrupts a campaign
// mid-flight, asserts the drained journal is a clean rank-contiguous
// prefix of the uninterrupted dataset with a final checkpoint, and that
// resuming completes it byte-identically.
func TestGracefulDrainCheckpointsAndResumes(t *testing.T) {
	const every = 5
	list := cwWorld.List().Top(120)
	dir := t.TempDir()
	golden := goldenJournal(t, dir, list, every)
	goldenBytes := journalPayloads(t, golden)

	path := filepath.Join(dir, "drained.jsonl.gz")
	jw, err := dataset.CreateJournal(path, dataset.JournalOptions{CheckpointEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := obs.NewRegistry()
	cfg := chaosConfig(5, 8)
	cfg.Writer = &cancellingWriter{JournalWriter: jw, cancel: cancel, after: 40}
	cfg.Metrics = reg
	_, err = New(cfg).Run(ctx, list)
	if err != context.Canceled {
		t.Fatalf("drained run returned %v, want context.Canceled", err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	// The drained journal is a byte-prefix of the uninterrupted
	// dataset: finished sites only, in rank order, nothing torn.
	part := journalPayloads(t, path)
	if len(part) == 0 || len(part) >= len(goldenBytes) {
		t.Fatalf("drained journal holds %d bytes of %d — drain did not stop mid-campaign", len(part), len(goldenBytes))
	}
	if !bytes.HasPrefix(goldenBytes, part) {
		t.Fatal("drained journal is not a prefix of the uninterrupted dataset")
	}
	snap := reg.Snapshot()
	if snap.Counter("crawl_drain_total") != 1 {
		t.Error("drain not counted in metrics")
	}

	resumeAndFinish(t, path, list, every, nil)
	if got := journalPayloads(t, path); !bytes.Equal(got, goldenBytes) {
		t.Fatal("drained+resumed dataset differs from uninterrupted run")
	}
}

// TestVisitBudgetDeadline pins the per-visit watchdog: with a stage
// budget smaller than one retry backoff, every retried visit is
// abandoned as deadline_exceeded instead of burning its full attempt
// budget — and the outcome is deterministic across worker counts.
func TestVisitBudgetDeadline(t *testing.T) {
	list := cwWorld.List().Top(150)
	run := func(workers int) (*Result, []byte) {
		var buf bytes.Buffer
		cfg := chaosConfig(5, workers)
		cfg.VisitBudget = 3 * time.Second // first backoff is ≥5s virtual
		cfg.Writer = dataset.NewWriter(&buf)
		res, err := New(cfg).Run(context.Background(), list)
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	res, out := run(8)
	if res.Stats.FailedByClass[chaos.ClassDeadline] == 0 {
		t.Fatal("no visit hit the deadline watchdog under chaos + tiny budget")
	}
	if !bytes.Contains(out, []byte(`"deadline_exceeded"`)) {
		t.Error("deadline_exceeded class absent from the dataset")
	}
	_, serial := run(1)
	if !bytes.Equal(out, serial) {
		t.Error("watchdog broke worker-count determinism")
	}
}
