package classifier

import (
	"reflect"
	"testing"
	"testing/quick"

	"github.com/netmeasure/topicscope/internal/taxonomy"
)

func newTestClassifier(t *testing.T, opts ...Option) *Classifier {
	t.Helper()
	return New(taxonomy.NewV2(), opts...)
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"travel-deals.com", []string{"travel", "deals"}},
		{"www.sport24news.fr", []string{"www", "sport", "news"}},
		{"a-b.com", nil}, // single letters dropped
		{"foo_bar.co.uk", []string{"foo", "bar"}},
		{"", nil},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClassifyKeyword(t *testing.T) {
	c := newTestClassifier(t)
	topics := c.Classify("www.travel-hotels.com")
	if len(topics) == 0 {
		t.Fatal("no topics for keyword-rich host")
	}
	paths := map[string]bool{}
	for _, tp := range topics {
		paths[tp.Path] = true
	}
	if !paths["/Travel & Transportation"] {
		t.Errorf("expected travel topic, got %v", topics)
	}
	if !paths["/Travel & Transportation/Hotels & Accommodations"] {
		t.Errorf("expected hotels topic, got %v", topics)
	}
}

func TestClassifyCap(t *testing.T) {
	c := newTestClassifier(t)
	// A host matching many keywords must still return at most the cap.
	topics := c.Classify("news-sport-travel-food-games.com")
	if len(topics) > MaxTopicsPerSite {
		t.Errorf("got %d topics, cap is %d", len(topics), MaxTopicsPerSite)
	}
	if len(topics) == 0 {
		t.Error("expected topics")
	}
}

func TestClassifyFallbackDeterministic(t *testing.T) {
	c := newTestClassifier(t)
	a := c.Classify("zzqxv.example")
	b := c.Classify("zzqxv.example")
	if len(a) != 1 {
		t.Fatalf("fallback should give exactly 1 topic, got %v", a)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fallback not deterministic: %v vs %v", a, b)
	}
	// Subdomains of the same registrable domain classify identically.
	if got := c.Classify("cdn.zzqxv.example"); !reflect.DeepEqual(got, a) {
		t.Errorf("subdomain classified differently: %v vs %v", got, a)
	}
}

func TestClassifyEmpty(t *testing.T) {
	c := newTestClassifier(t)
	if got := c.Classify(""); got != nil {
		t.Errorf("Classify(\"\") = %v, want nil", got)
	}
}

func TestOverrideWins(t *testing.T) {
	c := newTestClassifier(t, WithOverride("travel-hotels.com", "/Sports/Golf"))
	topics := c.Classify("www.travel-hotels.com")
	if len(topics) != 1 || topics[0].Path != "/Sports/Golf" {
		t.Errorf("override not applied: %v", topics)
	}
}

func TestOverrideUnknownPathIgnored(t *testing.T) {
	c := newTestClassifier(t, WithOverride("foo.com", "/Not A Real Topic"))
	topics := c.Classify("foo.com")
	if len(topics) == 0 {
		t.Fatal("expected fallback classification")
	}
	if topics[0].Path == "/Not A Real Topic" {
		t.Error("bogus override survived")
	}
}

func TestClassifyIDsMatchesClassify(t *testing.T) {
	c := newTestClassifier(t)
	for _, host := range []string{"news.example.com", "shop-fashion.de", "qqq.example"} {
		topics := c.Classify(host)
		ids := c.ClassifyIDs(host)
		if len(topics) != len(ids) {
			t.Fatalf("length mismatch for %q", host)
		}
		for i := range ids {
			if topics[i].ID != ids[i] {
				t.Errorf("ID mismatch at %d for %q", i, host)
			}
		}
	}
}

func TestAllKeywordPathsResolve(t *testing.T) {
	tx := taxonomy.NewV2()
	for token, paths := range builtinKeywords {
		for _, p := range paths {
			if _, ok := tx.ByPath(p); !ok {
				t.Errorf("keyword %q maps to unknown taxonomy path %q", token, p)
			}
		}
	}
}

// Property: classification is always non-empty for non-empty hosts,
// capped, deterministic, and yields valid taxonomy IDs.
func TestClassifyProperties(t *testing.T) {
	c := newTestClassifier(t)
	tx := taxonomy.NewV2()
	words := []string{"news", "shop", "zz", "travel", "qwerty", "cdn", "static", "game"}
	tlds := []string{"com", "net", "de", "fr", "co.uk", "ru"}
	f := func(a, b, tld uint8, hyphen bool) bool {
		host := words[int(a)%len(words)]
		if hyphen {
			host += "-" + words[int(b)%len(words)]
		} else {
			host += words[int(b)%len(words)]
		}
		host += "." + tlds[int(tld)%len(tlds)]
		got := c.Classify(host)
		if len(got) == 0 || len(got) > MaxTopicsPerSite {
			return false
		}
		for _, topic := range got {
			if _, ok := tx.Get(topic.ID); !ok {
				return false
			}
		}
		again := c.Classify(host)
		return reflect.DeepEqual(got, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
