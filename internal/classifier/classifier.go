// Package classifier maps hostnames to taxonomy topics.
//
// Paper §2.1: "During each epoch ... the browser collects the visited
// websites and assigns to each of them one or more labels, called topics,
// using a predefined language model." Chrome implements this as a
// manually curated override list of ~10k popular domains backed by a
// small on-device neural model over the hostname string.
//
// This package mirrors that two-tier design with deterministic,
// dependency-free components:
//
//  1. an override table (exact registrable-domain matches), and
//  2. a token model: hostname labels are split into word tokens that are
//     matched against a keyword→topic table; hosts with no matching
//     token hash deterministically onto the taxonomy so every site gets
//     a stable, repeatable classification (Chrome similarly always
//     produces *some* output; unknown sites get low-confidence topics).
//
// Classification is a pure function of the hostname, which the tests and
// the reproducibility guarantees of the crawler rely on.
package classifier

import (
	"hash/fnv"
	"sort"
	"strings"

	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/taxonomy"
)

// MaxTopicsPerSite caps how many topics a single site classification
// yields, mirroring Chrome's model output cap.
const MaxTopicsPerSite = 3

// Classifier assigns topics to hostnames.
type Classifier struct {
	tx        *taxonomy.Taxonomy
	overrides map[string][]int    // registrable domain -> topic IDs
	keywords  map[string][]string // token -> topic paths
	resolved  map[string][]int    // token -> topic IDs (resolved at construction)
}

// Option configures a Classifier.
type Option func(*Classifier)

// WithOverride adds an exact override: the registrable domain of host is
// always classified as the given topic paths. Unknown paths are ignored,
// as Chrome ignores stale override entries after a taxonomy migration.
func WithOverride(host string, paths ...string) Option {
	return func(c *Classifier) {
		var ids []int
		for _, p := range paths {
			if t, ok := c.tx.ByPath(p); ok {
				ids = append(ids, t.ID)
			}
		}
		if len(ids) > 0 {
			c.overrides[etld.RegistrableDomain(host)] = capTopics(ids)
		}
	}
}

// New builds a Classifier over the given taxonomy with the built-in
// keyword model plus any options.
func New(tx *taxonomy.Taxonomy, opts ...Option) *Classifier {
	c := &Classifier{
		tx:        tx,
		overrides: make(map[string][]int),
		keywords:  builtinKeywords,
		resolved:  make(map[string][]int),
	}
	for token, paths := range c.keywords {
		var ids []int
		for _, p := range paths {
			if t, ok := tx.ByPath(p); ok {
				ids = append(ids, t.ID)
			}
		}
		if len(ids) > 0 {
			c.resolved[token] = ids
		}
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Classify returns the topics for host, at most MaxTopicsPerSite, in
// stable order. It never returns an empty slice for a non-empty host.
func (c *Classifier) Classify(host string) []taxonomy.Topic {
	host = etld.Normalize(host)
	if host == "" {
		return nil
	}
	if ids, ok := c.overrides[etld.RegistrableDomain(host)]; ok {
		return c.topics(ids)
	}
	ids := c.tokenModel(host)
	if len(ids) == 0 {
		ids = []int{c.fallback(host)}
	}
	return c.topics(capTopics(ids))
}

// ClassifyIDs is Classify returning bare topic IDs.
func (c *Classifier) ClassifyIDs(host string) []int {
	ts := c.Classify(host)
	ids := make([]int, len(ts))
	for i, t := range ts {
		ids[i] = t.ID
	}
	return ids
}

// tokenModel splits the hostname into word tokens and collects keyword
// matches. Matches are deduplicated and sorted for determinism.
func (c *Classifier) tokenModel(host string) []int {
	seen := make(map[int]bool)
	var ids []int
	for _, token := range Tokenize(host) {
		for _, id := range c.resolved[token] {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	sort.Ints(ids)
	return ids
}

// fallback hashes the registrable domain onto the taxonomy so unknown
// hosts still receive one stable topic.
func (c *Classifier) fallback(host string) int {
	h := fnv.New64a()
	h.Write([]byte(etld.RegistrableDomain(host)))
	return int(h.Sum64()%uint64(c.tx.Len())) + 1
}

func (c *Classifier) topics(ids []int) []taxonomy.Topic {
	out := make([]taxonomy.Topic, 0, len(ids))
	for _, id := range ids {
		if t, ok := c.tx.Get(id); ok {
			out = append(out, t)
		}
	}
	return out
}

func capTopics(ids []int) []int {
	if len(ids) > MaxTopicsPerSite {
		return ids[:MaxTopicsPerSite]
	}
	return ids
}

// Tokenize splits a hostname into lowercase word tokens: labels are split
// on '.', '-', '_' and digit boundaries; the public suffix is dropped
// (".com" carries no interest signal).
func Tokenize(host string) []string {
	host = etld.Normalize(host)
	suffix := etld.PublicSuffix(host)
	host = strings.TrimSuffix(host, suffix)
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() >= 2 { // single letters are noise
			tokens = append(tokens, b.String())
		}
		b.Reset()
	}
	for _, r := range host {
		switch {
		case r >= 'a' && r <= 'z':
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}
