package browser

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/obs"
)

// The synthetic web's scripts carry their behaviour as directive lines
// ("#ts ..."), the emulator's stand-in for a JavaScript engine. The
// grammar:
//
//	#ts [if-consent] call
//	#ts [if-consent] fetch url=<URL> [topics]
//	#ts [if-consent] iframe src=<URL> [browsingtopics]
//
// "call" is document.browsingTopics() — executed with the *current
// browsing context's* origin; "fetch ... topics" is
// fetch(url, {browsingTopics: true}); "iframe ... browsingtopics" builds
// an <iframe browsingtopics>. The if-consent prefix models a tag
// checking the TCF consent state before using personal data.
const directivePrefix = "#ts "

// execScript interprets a script body within a browsing context.
func (b *Browser) execScript(ctx context.Context, ec *execCtx, body string) {
	ec.visit.trace.Start("script", obs.A("origin", ec.origin))
	ec.visit.trace.Advance(obs.ScriptCost)
	defer ec.visit.trace.End()
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, directivePrefix) {
			continue
		}
		if ctx.Err() != nil {
			return
		}
		b.execDirective(ctx, ec, strings.Fields(line[len(directivePrefix):]))
	}
}

func (b *Browser) execDirective(ctx context.Context, ec *execCtx, tokens []string) {
	if len(tokens) == 0 {
		return
	}
	if tokens[0] == "if-consent" {
		// Consent is a property of the top-level site the user is
		// visiting, which is what a TCF consent string encodes. Outside
		// the EU the TCF reports gdprApplies=false and tags proceed.
		if b.cfg.Vantage == "eu" && !b.HasConsent(ec.pageURL.Host) {
			return
		}
		tokens = tokens[1:]
		if len(tokens) == 0 {
			return
		}
	}
	switch tokens[0] {
	case "call":
		// document.browsingTopics(): the caller is the origin of the
		// executing browsing context — the page itself for root-context
		// scripts, no matter which server the script file came from.
		caller := etld.RegistrableDomain(ec.origin)
		b.jsTopicsCall(ec.visit, caller, ec.origin)
	case "fetch":
		urlArg, topicsFlag := parseArgs(tokens[1:], "url", "topics")
		if urlArg == "" {
			return
		}
		u, ok := ec.resolve(urlArg)
		if !ok {
			return
		}
		var extra http.Header
		if topicsFlag {
			caller := etld.RegistrableDomain(u.Host)
			if hdr, allowed := b.topicsCall(ec.visit, dataset.CallFetch, caller, u.Host); allowed {
				extra = http.Header{TopicsRequestHeader: []string{hdr}}
			}
		}
		b.fetch(ctx, ec.visit, u, ec.documentURL().String(), extra) //nolint:errcheck // best-effort beacon
	case "iframe":
		srcArg, browsingTopics := parseArgs(tokens[1:], "src", "browsingtopics")
		if srcArg == "" {
			return
		}
		b.loadFrame(ctx, ec, srcArg, browsingTopics)
	}
}

// parseArgs extracts "<key>=<value>" and a boolean flag from directive
// arguments.
func parseArgs(args []string, key, flag string) (value string, flagSet bool) {
	prefix := key + "="
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, prefix):
			value = a[len(prefix):]
		case a == flag:
			flagSet = true
		}
	}
	return value, flagSet
}

// jsTopicsCall performs a JavaScript-type Topics API call from a
// browsing context.
func (b *Browser) jsTopicsCall(v *PageVisit, caller, contextOrigin string) {
	b.topicsCall(v, dataset.CallJavaScript, caller, contextOrigin)
}

// topicsCall runs the full Topics API call path: the allow-list gate
// (with the §2.3 corrupted-database default-allow bug when so
// configured), the engine query, and the instrumentation record. It
// returns the Sec-Browsing-Topics header value for fetch/iframe calls
// and whether the call was allowed to proceed.
func (b *Browser) topicsCall(v *PageVisit, typ dataset.CallType, caller, contextOrigin string) (headerValue string, allowed bool) {
	v.trace.Start("topics_call", obs.A("caller", caller), obs.A("type", string(typ)))
	v.trace.Advance(obs.TopicsCallCost)
	defer v.trace.End()
	decision := b.cfg.Gate.Check(caller)
	v.trace.Annotate(obs.A("allowed", strconv.FormatBool(decision.Allowed)))
	if !decision.Allowed {
		// A healthy browser silently blocks the call; nothing is
		// recorded, nothing is returned.
		return "", false
	}

	var ids []int
	if b.cfg.Engine != nil {
		for _, r := range b.cfg.Engine.BrowsingTopics(caller, v.visitedSite) {
			ids = append(ids, r.Topic.ID)
		}
	}

	v.Calls = append(v.Calls, dataset.TopicsCall{
		Caller:         caller,
		Site:           v.visitedSite,
		Type:           typ,
		ContextOrigin:  contextOrigin,
		Timestamp:      b.cfg.Now(),
		GateAllowed:    b.cfg.ReferenceAllowlist.Contains(caller),
		GateReason:     decision.Reason.String(),
		TopicsReturned: len(ids),
	})
	return formatTopicsHeader(ids), true
}

// formatTopicsHeader renders the Sec-Browsing-Topics value, e.g.
// "(1 42);v=chrome.2". An empty topic set still yields the versioned
// empty list, as Chrome sends "();p=P0000000000..." padding — we keep
// just the structural part.
func formatTopicsHeader(ids []int) string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, id := range ids {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", id)
	}
	sb.WriteString(");v=chrome.2")
	return sb.String()
}
