// Package browser emulates the instrumented Chromium of the paper's
// methodology (§2.2): it loads pages over HTTP, fetches subresources,
// executes scripts and iframes with real browsing-context origin
// semantics, implements the three Topics API call types (JavaScript,
// Fetch, IFrame) with the Sec-Browsing-Topics / Observe-Browsing-Topics
// header flow, enforces the caller allow-list through
// internal/attestation's Gate — including Chromium's corrupted-database
// default-allow bug — and records every Topics API invocation exactly as
// the paper's modified BrowsingTopicsSiteDataManagerImpl does: calling
// party, site, call type, context origin and timestamp.
//
// The origin rule that produces the paper's §4 anomaly is implemented
// faithfully (Figure 4): a <script src="https://third.party/x.js">
// placed directly in a page executes in the page's root browsing
// context, so its document.browsingTopics() call carries the *website's*
// origin; only scripts running inside an iframe carry the frame's
// origin.
package browser

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/htmlx"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/topics"
)

// Header names of the Topics API network integration.
const (
	TopicsRequestHeader = "Sec-Browsing-Topics"
	ObserveHeader       = "Observe-Browsing-Topics"
	// VirtualTimeHeader is simulation plumbing, not part of the Topics
	// protocol: the browser stamps every request with its virtual clock
	// so the synthetic web server evaluates A/B-test slots at the
	// *visit's* time, keeping concurrent crawls deterministic.
	VirtualTimeHeader = "X-Topicscope-Time"
	// VantageHeader declares the visitor's jurisdiction to the synthetic
	// web (the stand-in for geo-IP): sites geo-fence their GDPR banners
	// and gating on it. §6 notes the paper crawled from a single EU
	// vantage; this knob explores the alternative.
	VantageHeader        = "X-Topicscope-Vantage"
	defaultUserAgent     = "topicscope/1.0 (emulated Chromium/122.0.6261.128)"
	defaultMaxFrameDepth = 3
	maxRedirects         = 5
	maxBodySize          = 4 << 20
)

// Config configures a Browser.
type Config struct {
	// Client performs HTTP; typically webserver.(*Server).Client() or a
	// TCP client. It must not follow redirects itself.
	Client *http.Client
	// Gate is the operational caller check. The paper's crawler runs a
	// deliberately corrupted gate (attestation.NewCorruptedGate) so that
	// even unenrolled callers execute and can be observed (§2.3).
	Gate *attestation.Gate
	// ReferenceAllowlist annotates each recorded call with the verdict a
	// healthy allow-list would give, so the analysis can separate
	// Allowed from !Allowed callers (Table 1).
	ReferenceAllowlist *attestation.Allowlist
	// Engine answers the Topics API calls. Optional: when nil every call
	// returns no topics but is still recorded — matching a fresh profile
	// with no browsing history.
	Engine *topics.Engine
	// Now supplies timestamps; defaults to time.Now.
	Now func() time.Time
	// MaxFrameDepth bounds iframe recursion.
	MaxFrameDepth int
	// UserAgent overrides the default UA string.
	UserAgent string
	// Vantage is the visitor jurisdiction: "eu" (default — the paper's
	// setup) or "us". Outside the EU, TCF reports gdprApplies=false and
	// consent-guarded tags proceed without a banner interaction.
	Vantage string
	// Scheme is the navigation scheme, "http" (default) or "https"; the
	// synthetic web emits scheme-relative subresource URLs so either
	// works end to end.
	Scheme string
	// Attempts is the total try budget for a transiently failing fetch
	// (1 = no retries). Each retry carries an incremented attempt
	// header, so against the chaos injector it redraws the fault coin
	// deterministically. Default 3.
	Attempts int
	// BreakerThreshold trips a per-host circuit breaker within one page
	// load after this many failed fetches: further requests to the host
	// short-circuit with a circuit-open error instead of burning the
	// retry budget. Default 3; negative disables the breaker.
	BreakerThreshold int
}

func (c Config) withDefaults() Config {
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.MaxFrameDepth <= 0 {
		c.MaxFrameDepth = defaultMaxFrameDepth
	}
	if c.UserAgent == "" {
		c.UserAgent = defaultUserAgent
	}
	if c.Gate == nil {
		c.Gate = attestation.NewCorruptedGate()
	}
	if c.Vantage == "" {
		c.Vantage = "eu"
	}
	if c.Scheme == "" {
		c.Scheme = "http"
	}
	if c.ReferenceAllowlist == nil {
		c.ReferenceAllowlist = attestation.NewAllowlist()
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	return c
}

// StatusError is a fetch that completed with a server-error status (or
// a navigation that ended on any non-200 one).
type StatusError struct {
	Host   string
	Status int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("status %d from %s", e.Status, e.Host)
}

// ErrorClass maps the status onto the chaos taxonomy.
func (e *StatusError) ErrorClass() string {
	if e.Status >= 500 {
		return string(chaos.ClassHTTP5xx)
	}
	return string(chaos.ClassOther)
}

// Browser is the emulated browser. It is safe for concurrent use; each
// LoadPage call is independent, while consent state and the Topics
// engine are shared like in one real browser profile.
type Browser struct {
	cfg Config

	mu      sync.Mutex
	consent map[string]bool // registrable domain -> consented
}

// New builds a Browser.
func New(cfg Config) *Browser {
	return &Browser{cfg: cfg.withDefaults(), consent: make(map[string]bool)}
}

// PageVisit is the instrumented result of loading one page.
type PageVisit struct {
	// RequestedURL is the navigation target.
	RequestedURL string
	// FinalURL is where the navigation ended after redirects.
	FinalURL string
	// PageOrigin is the host of the final document — the root browsing
	// context's origin.
	PageOrigin string
	// Status is the final HTTP status.
	Status int
	// Resources lists every object downloaded.
	Resources []dataset.Resource
	// Calls lists every Topics API invocation observed.
	Calls []dataset.TopicsCall
	// Doc is the parsed final document, for consent detection.
	Doc *htmlx.Node
	// Retries counts fetch attempts beyond the first across the visit.
	Retries int

	visitedSite string         // rank-list domain the visit is attributed to
	failures    map[string]int // per-host failed fetches, for the breaker
	trace       *obs.Trace     // stage-clock trace; nil disables tracing
}

// SetConsent marks the user as having accepted the privacy policy of the
// given origin (Priv-Accept clicking "Accept"): subsequent requests to
// that registrable domain carry the consent cookie and if-consent
// integrations run.
func (b *Browser) SetConsent(origin string) {
	reg := etld.RegistrableDomain(origin)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consent[reg] = true
}

// HasConsent reports the consent state for an origin.
func (b *Browser) HasConsent(origin string) bool {
	reg := etld.RegistrableDomain(origin)
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consent[reg]
}

// ClearConsent forgets all consent state (fresh profile).
func (b *Browser) ClearConsent() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consent = make(map[string]bool)
}

// LoadPage navigates to http://<site>/ and renders it: subresources are
// fetched, scripts and iframes are executed with correct origin
// semantics, Topics API calls are gated, executed and recorded.
func (b *Browser) LoadPage(ctx context.Context, site string) (*PageVisit, error) {
	return b.LoadPageTraced(ctx, site, nil)
}

// LoadPageTraced is LoadPage with an observability trace attached:
// every sub-resource fetch, script execution, nested frame and Topics
// API call opens a span on the trace's stage clock. A nil trace
// disables tracing with zero per-call checks (obs.Trace methods are
// nil-safe).
func (b *Browser) LoadPageTraced(ctx context.Context, site string, tr *obs.Trace) (*PageVisit, error) {
	v := &PageVisit{
		RequestedURL: b.cfg.Scheme + "://" + site + "/",
		visitedSite:  site,
		failures:     make(map[string]int),
		trace:        tr,
	}
	resp, body, finalURL, err := b.navigate(ctx, v, v.RequestedURL)
	if err != nil {
		return v, fmt.Errorf("browser: loading %s: %w", site, err)
	}
	v.FinalURL = finalURL.String()
	v.PageOrigin = etld.Normalize(finalURL.Host)
	v.Status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("browser: loading %s: %w", site, &StatusError{Host: v.PageOrigin, Status: resp.StatusCode})
	}
	v.Doc = htmlx.Parse(body)

	// The page visit feeds the Topics history (the browser "observes the
	// sites the user visits", §2.1).
	if b.cfg.Engine != nil {
		b.cfg.Engine.RecordVisit(v.PageOrigin)
	}

	ec := &execCtx{
		visit:   v,
		pageURL: finalURL,
		origin:  v.PageOrigin,
		depth:   0,
	}
	b.processDocument(ctx, ec, v.Doc)
	return v, nil
}

// navigate GETs a URL following up to maxRedirects redirects, recording
// every hop as a downloaded resource.
func (b *Browser) navigate(ctx context.Context, v *PageVisit, rawURL string) (*http.Response, string, *url.URL, error) {
	current := rawURL
	for hop := 0; hop <= maxRedirects; hop++ {
		u, err := url.Parse(current)
		if err != nil {
			return nil, "", nil, fmt.Errorf("parsing %q: %w", current, err)
		}
		resp, body, err := b.fetch(ctx, v, u, "", nil)
		if err != nil {
			return nil, "", nil, err
		}
		if resp.StatusCode >= 300 && resp.StatusCode < 400 {
			loc := resp.Header.Get("Location")
			if loc == "" {
				return resp, body, u, nil
			}
			next, err := u.Parse(loc)
			if err != nil {
				return nil, "", nil, fmt.Errorf("bad redirect %q: %w", loc, err)
			}
			current = next.String()
			continue
		}
		return resp, body, u, nil
	}
	return nil, "", nil, fmt.Errorf("too many redirects for %s", rawURL)
}

// fetch downloads one URL with bounded retries and a per-host circuit
// breaker, records it as a resource — failed fetches included, so a
// degraded page still yields a partial record — attaches the consent
// cookie for consented first-party hosts, the Referer, and any extra
// headers. It honours Observe-Browsing-Topics responses.
func (b *Browser) fetch(ctx context.Context, v *PageVisit, u *url.URL, referer string, extra http.Header) (*http.Response, string, error) {
	host := etld.Normalize(u.Host)
	v.trace.Start("fetch", obs.A("host", host), obs.A("path", u.Path))
	defer v.trace.End()
	record := func(err error) {
		res := dataset.Resource{
			URL:        u.String(),
			Host:       host,
			ThirdParty: !etld.SameSite(host, v.visitedSite),
		}
		if err != nil {
			res.Failed = true
			res.Error = string(chaos.Classify(err))
			if v.failures != nil {
				v.failures[host]++
			}
		}
		v.Resources = append(v.Resources, res)
	}

	if b.cfg.BreakerThreshold > 0 && v.failures[host] >= b.cfg.BreakerThreshold {
		err := &chaos.Error{Class: chaos.ClassCircuitOpen, Host: host}
		v.trace.Annotate(obs.A("error", string(chaos.ClassCircuitOpen)))
		record(err)
		return nil, "", err
	}

	var (
		resp *http.Response
		body string
		err  error
	)
	for attempt := 0; ; attempt++ {
		v.trace.Advance(obs.FetchCost)
		resp, body, err = b.fetchOnce(ctx, v, u, referer, extra, attempt)
		chargeChaosLatency(v.trace, resp, err)
		if err == nil && resp.StatusCode >= http.StatusInternalServerError {
			err = &StatusError{Host: host, Status: resp.StatusCode}
		}
		if err == nil || attempt+1 >= b.cfg.Attempts ||
			!chaos.Retryable(chaos.Classify(err)) || ctx.Err() != nil {
			if attempt > 0 {
				v.trace.Annotate(obs.A("attempts", strconv.Itoa(attempt+1)))
			}
			break
		}
		v.Retries++
	}
	if err != nil {
		v.trace.Annotate(obs.A("error", string(chaos.Classify(err))))
	}
	record(err)
	if err != nil {
		return nil, "", err
	}
	return resp, body, nil
}

// chargeChaosLatency advances the stage clock by any deterministic
// latency the chaos layer injected on this attempt: sub-timeout delays
// arrive via the response's chaos.LatencyHeader, timeout failures carry
// theirs on the typed error.
func chargeChaosLatency(tr *obs.Trace, resp *http.Response, err error) {
	if tr == nil {
		return
	}
	if resp != nil {
		if h := resp.Header.Get(chaos.LatencyHeader); h != "" {
			if ns, perr := strconv.ParseInt(h, 10, 64); perr == nil && ns > 0 {
				tr.Advance(time.Duration(ns))
			}
		}
	}
	if err != nil {
		for e := err; e != nil; e = unwrapErr(e) {
			if ce, ok := e.(*chaos.Error); ok && ce.Latency > 0 {
				tr.Advance(ce.Latency)
				return
			}
		}
	}
}

func unwrapErr(err error) error {
	if u, ok := err.(interface{ Unwrap() error }); ok {
		return u.Unwrap()
	}
	return nil
}

// fetchOnce performs one fetch attempt. The attempt number is stamped
// on the request so a retry redraws the chaos injector's fault coin
// deterministically (the virtual clock is fixed within a page load).
func (b *Browser) fetchOnce(ctx context.Context, v *PageVisit, u *url.URL, referer string, extra http.Header, attempt int) (*http.Response, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, "", fmt.Errorf("building request: %w", err)
	}
	req.Header.Set("User-Agent", b.cfg.UserAgent)
	req.Header.Set(VirtualTimeHeader, b.cfg.Now().UTC().Format(time.RFC3339Nano))
	req.Header.Set(chaos.AttemptHeader, strconv.Itoa(attempt))
	req.Header.Set(VantageHeader, b.cfg.Vantage)
	if referer != "" {
		req.Header.Set("Referer", referer)
	}
	for k, vals := range extra {
		for _, val := range vals {
			req.Header.Add(k, val)
		}
	}
	if b.HasConsent(u.Host) {
		req.AddCookie(&http.Cookie{Name: "consent", Value: "1"})
	}

	resp, err := b.cfg.Client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodySize))
	if err != nil {
		return nil, "", fmt.Errorf("reading %s: %w", u, err)
	}

	// A caller that received topics and answers Observe-Browsing-Topics
	// has its page observation recorded (the header flow of the Topics
	// fetch integration).
	if b.cfg.Engine != nil &&
		req.Header.Get(TopicsRequestHeader) != "" &&
		strings.HasPrefix(resp.Header.Get(ObserveHeader), "?1") {
		b.cfg.Engine.Observe(v.visitedSite, etld.RegistrableDomain(etld.Normalize(u.Host)))
	}
	return resp, string(body), nil
}
