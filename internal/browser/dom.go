package browser

import (
	"context"
	"net/http"
	"net/url"
	"strings"

	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/htmlx"
	"github.com/netmeasure/topicscope/internal/obs"
)

// execCtx is one browsing context: the page's root context, or an
// iframe's nested context with its own origin.
type execCtx struct {
	visit *PageVisit
	// pageURL is the top-level document URL (used for Referer and for
	// the consent state the if-consent guard checks).
	pageURL *url.URL
	// docURL is this context's document URL (= pageURL in the root
	// context, the frame URL inside an iframe).
	docURL *url.URL
	// origin is the browsing context's origin host. Scripts execute with
	// THIS origin, regardless of where their source file came from —
	// the Figure 4 rule.
	origin string
	depth  int
}

func (ec *execCtx) documentURL() *url.URL {
	if ec.docURL != nil {
		return ec.docURL
	}
	return ec.pageURL
}

// processDocument walks a parsed document, fetching subresources and
// executing scripts and iframes within the given context.
func (b *Browser) processDocument(ctx context.Context, ec *execCtx, doc *htmlx.Node) {
	doc.Walk(func(n *htmlx.Node) bool {
		if ctx.Err() != nil {
			return false
		}
		switch n.Tag {
		case "script":
			if src, ok := n.Attr("src"); ok && src != "" {
				// External script: fetched from its own host but
				// EXECUTED in the embedding document's context.
				if u, okURL := ec.resolve(src); okURL {
					_, body, err := b.fetch(ctx, ec.visit, u, ec.documentURL().String(), nil)
					if err == nil {
						b.execScript(ctx, ec, body)
					}
				}
			} else if n.Text != "" {
				b.execScript(ctx, ec, n.Text)
			}
			return false
		case "iframe":
			if src, ok := n.Attr("src"); ok && src != "" {
				b.loadFrame(ctx, ec, src, n.HasAttr("browsingtopics"))
			}
			return false
		case "img", "link":
			attr := "src"
			if n.Tag == "link" {
				attr = "href"
			}
			if ref, ok := n.Attr(attr); ok && ref != "" {
				if u, okURL := ec.resolve(ref); okURL {
					b.fetch(ctx, ec.visit, u, ec.documentURL().String(), nil) //nolint:errcheck // best-effort subresource
				}
			}
		}
		return true
	})
}

// resolve resolves a possibly relative reference against the context's
// document URL.
func (ec *execCtx) resolve(ref string) (*url.URL, bool) {
	u, err := ec.documentURL().Parse(ref)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") {
		return nil, false
	}
	return u, true
}

// loadFrame loads an iframe: a nested browsing context whose origin is
// the frame URL's host. With the browsingtopics attribute, the frame
// request itself is a Topics API call of type IFrame.
func (b *Browser) loadFrame(ctx context.Context, parent *execCtx, src string, browsingTopics bool) {
	if parent.depth >= b.cfg.MaxFrameDepth {
		return
	}
	u, ok := parent.resolve(src)
	if !ok {
		return
	}
	parent.visit.trace.Start("frame", obs.A("host", etld.Normalize(u.Host)))
	parent.visit.trace.Advance(obs.FrameCost)
	defer parent.visit.trace.End()
	var extra http.Header
	if browsingTopics {
		caller := etld.RegistrableDomain(u.Host)
		if hdr, allowed := b.topicsCall(parent.visit, dataset.CallIframe, caller, u.Host); allowed {
			extra = http.Header{TopicsRequestHeader: []string{hdr}}
		}
	}
	_, body, err := b.fetch(ctx, parent.visit, u, parent.documentURL().String(), extra)
	if err != nil {
		return
	}
	if !strings.Contains(body, "<") {
		return
	}
	frameDoc := htmlx.Parse(body)
	frameCtx := &execCtx{
		visit:   parent.visit,
		pageURL: parent.pageURL,
		docURL:  u,
		origin:  etld.Normalize(u.Host),
		depth:   parent.depth + 1,
	}
	b.processDocument(ctx, frameCtx, frameDoc)
}
