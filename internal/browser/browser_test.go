package browser

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/classifier"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/taxonomy"
	"github.com/netmeasure/topicscope/internal/topics"
	"github.com/netmeasure/topicscope/internal/webserver"
	"github.com/netmeasure/topicscope/internal/webworld"
)

var (
	twWorld  = webworld.Generate(webworld.Config{Seed: 42, NumSites: 2000})
	twNow    = time.Date(2024, 3, 30, 12, 0, 0, 0, time.UTC)
	twServer = webserver.New(twWorld, func() time.Time { return twNow })
	twAllow  = attestation.NewAllowlist(twWorld.Catalog.AllowedDomains()...)
)

// newTestBrowser builds a browser in the paper's crawl configuration:
// corrupted gate, reference allow-list for annotation.
func newTestBrowser(t *testing.T, gate *attestation.Gate, engine *topics.Engine) *Browser {
	t.Helper()
	if gate == nil {
		gate = attestation.NewCorruptedGate()
	}
	return New(Config{
		Client:             twServer.Client(),
		Gate:               gate,
		ReferenceAllowlist: twAllow,
		Engine:             engine,
		Now:                func() time.Time { return twNow },
	})
}

func findSite(t *testing.T, pred func(*webworld.Site) bool) *webworld.Site {
	t.Helper()
	for _, s := range twWorld.Sites {
		if s.Reachable && pred(s) {
			return s
		}
	}
	t.Skip("no site matches predicate in test world")
	return nil
}

func hasPlatform(s *webworld.Site, domain string) bool {
	for _, p := range s.Platforms {
		if p == domain {
			return true
		}
	}
	return false
}

func callsBy(v *PageVisit, caller string) []dataset.TopicsCall {
	var out []dataset.TopicsCall
	for _, c := range v.Calls {
		if c.Caller == caller {
			out = append(out, c)
		}
	}
	return out
}

func TestLoadPageRecordsResources(t *testing.T) {
	site := findSite(t, func(s *webworld.Site) bool {
		return s.RedirectTo == "" && len(s.LongTail) > 2
	})
	b := newTestBrowser(t, nil, nil)
	v, err := b.LoadPage(context.Background(), site.Domain)
	if err != nil {
		t.Fatalf("LoadPage: %v", err)
	}
	if v.Status != 200 || v.PageOrigin != site.Domain {
		t.Fatalf("visit: %+v", v)
	}
	var first, third int
	for _, r := range v.Resources {
		if r.ThirdParty {
			third++
		} else {
			first++
		}
	}
	if first < 2 || third < 2 {
		t.Errorf("resources first=%d third=%d, want both populated", first, third)
	}
	tp := v.Resources
	_ = tp
	if v.Doc == nil {
		t.Error("document not parsed")
	}
}

func TestPlatformCallEnabledSite(t *testing.T) {
	// criteo has EnabledRate 0.75 and is not consent-aware: on an
	// ungated site where its A/B slot is ON, a call must be recorded
	// with caller criteo.com even before consent.
	p, _ := twWorld.Catalog.ByDomain("criteo.com")
	site := findSite(t, func(s *webworld.Site) bool {
		return s.LoadsAdsPreConsent() && s.RedirectTo == "" && hasPlatform(s, "criteo.com") &&
			p.EnabledOn(s.Domain, twNow) && !p.GuardsConsentOn(s.Domain)
	})
	b := newTestBrowser(t, nil, nil)
	v, err := b.LoadPage(context.Background(), site.Domain)
	if err != nil {
		t.Fatalf("LoadPage: %v", err)
	}
	calls := callsBy(v, "criteo.com")
	if len(calls) == 0 {
		t.Fatal("no criteo call recorded on enabled ungated site")
	}
	c := calls[0]
	if !c.GateAllowed {
		t.Error("criteo must be annotated as allow-listed")
	}
	if c.Site != site.Domain {
		t.Errorf("call site %q", c.Site)
	}
	// For a JavaScript-type call the context origin must be criteo's
	// frame, not the page.
	if c.Type == dataset.CallJavaScript && !etld.SameSite(c.ContextOrigin, "criteo.com") {
		t.Errorf("JS call context origin %q, want criteo.com frame", c.ContextOrigin)
	}
}

func TestGTMAnomalousCall(t *testing.T) {
	site := findSite(t, func(s *webworld.Site) bool {
		return s.GTMTopicsCall && !s.GTMConsentMode && s.RedirectTo == ""
	})
	b := newTestBrowser(t, nil, nil)
	v, err := b.LoadPage(context.Background(), site.Domain)
	if err != nil {
		t.Fatalf("LoadPage: %v", err)
	}
	calls := callsBy(v, site.Domain)
	if len(calls) == 0 {
		t.Fatal("anomalous first-party call missing")
	}
	c := calls[0]
	if c.Type != dataset.CallJavaScript {
		t.Errorf("anomalous call type %q, §4 reports all use browsingTopics()", c.Type)
	}
	if c.ContextOrigin != site.Domain {
		t.Errorf("context origin %q, want the page itself (Figure 4)", c.ContextOrigin)
	}
	if c.GateAllowed {
		t.Error("first party must not be annotated as allow-listed")
	}
	if c.GateReason != "default-allow-corrupt-db" {
		t.Errorf("gate reason %q", c.GateReason)
	}
}

func TestEnforcingGateBlocksAnomalousCalls(t *testing.T) {
	site := findSite(t, func(s *webworld.Site) bool {
		return s.GTMTopicsCall && !s.GTMConsentMode && s.RedirectTo == ""
	})
	b := newTestBrowser(t, attestation.NewEnforcingGate(twAllow), nil)
	v, err := b.LoadPage(context.Background(), site.Domain)
	if err != nil {
		t.Fatalf("LoadPage: %v", err)
	}
	if calls := callsBy(v, site.Domain); len(calls) != 0 {
		t.Errorf("healthy gate let a first-party call through: %+v", calls)
	}
}

func TestConsentGuard(t *testing.T) {
	// A consent-mode GTM site: no call before consent, call after.
	site := findSite(t, func(s *webworld.Site) bool {
		return s.GTMTopicsCall && s.GTMConsentMode && s.RedirectTo == ""
	})
	b := newTestBrowser(t, nil, nil)
	v, err := b.LoadPage(context.Background(), site.Domain)
	if err != nil {
		t.Fatal(err)
	}
	if len(callsBy(v, site.Domain)) != 0 {
		t.Fatal("consent-mode call fired before consent")
	}
	b.SetConsent(site.Domain)
	v2, err := b.LoadPage(context.Background(), site.Domain)
	if err != nil {
		t.Fatal(err)
	}
	if len(callsBy(v2, site.Domain)) == 0 {
		t.Error("consent-mode call missing after consent")
	}
}

func TestGatedSiteHidesPlatformsUntilConsent(t *testing.T) {
	site := findSite(t, func(s *webworld.Site) bool {
		return s.Gated && s.RedirectTo == "" && len(s.Platforms) > 1
	})
	b := newTestBrowser(t, nil, nil)
	v, _ := b.LoadPage(context.Background(), site.Domain)
	for _, r := range v.Resources {
		if strings.Contains(r.URL, "/tag.js") {
			t.Fatalf("gated site loaded %s before consent", r.URL)
		}
	}
	b.SetConsent(site.Domain)
	v2, _ := b.LoadPage(context.Background(), site.Domain)
	found := false
	for _, r := range v2.Resources {
		if strings.Contains(r.URL, "/tag.js") {
			found = true
		}
	}
	if !found {
		t.Error("platform tags missing after consent")
	}
}

func TestRedirectSiteCallsUnderSisterOrigin(t *testing.T) {
	site := findSite(t, func(s *webworld.Site) bool {
		return s.RedirectTo != "" && s.GTMTopicsCall && !s.GTMConsentMode
	})
	b := newTestBrowser(t, nil, nil)
	v, err := b.LoadPage(context.Background(), site.Domain)
	if err != nil {
		t.Fatal(err)
	}
	if v.PageOrigin != site.RedirectTo {
		t.Fatalf("page origin %q, want sister %q", v.PageOrigin, site.RedirectTo)
	}
	calls := callsBy(v, site.RedirectTo)
	if len(calls) == 0 {
		t.Fatal("no call under sister origin")
	}
	if calls[0].Site != site.Domain {
		t.Errorf("call attributed to %q, want visited domain %q", calls[0].Site, site.Domain)
	}
	if etld.SameSecondLevel(calls[0].Caller, site.Domain) {
		t.Error("sister caller unexpectedly shares second-level label")
	}
}

func TestIframeTypeCallSendsHeader(t *testing.T) {
	// Find a site where doubleclick (mixHeader) picks the iframe type
	// and is enabled; consent needed (doubleclick is consent-aware).
	p, _ := twWorld.Catalog.ByDomain("doubleclick.net")
	site := findSite(t, func(s *webworld.Site) bool {
		return s.RedirectTo == "" && hasPlatform(s, "doubleclick.net") &&
			p.EnabledOn(s.Domain, twNow) &&
			p.CallTypeFor(s.Domain) == dataset.CallIframe
	})
	b := newTestBrowser(t, nil, nil)
	b.SetConsent(site.Domain)
	v, err := b.LoadPage(context.Background(), site.Domain)
	if err != nil {
		t.Fatal(err)
	}
	calls := callsBy(v, "doubleclick.net")
	if len(calls) == 0 {
		t.Fatal("no doubleclick call")
	}
	if calls[0].Type != dataset.CallIframe {
		t.Errorf("call type %q, want iframe", calls[0].Type)
	}
}

func TestConsentAwarePlatformSilentBeforeConsent(t *testing.T) {
	p, _ := twWorld.Catalog.ByDomain("doubleclick.net")
	site := findSite(t, func(s *webworld.Site) bool {
		return s.LoadsAdsPreConsent() && s.RedirectTo == "" && hasPlatform(s, "doubleclick.net") &&
			p.EnabledOn(s.Domain, twNow)
	})
	b := newTestBrowser(t, nil, nil)
	v, _ := b.LoadPage(context.Background(), site.Domain)
	if calls := callsBy(v, "doubleclick.net"); len(calls) != 0 {
		t.Errorf("doubleclick called before consent: %+v", calls)
	}
	// Presence is still visible through its resources.
	seen := false
	for _, r := range v.Resources {
		if etld.SameSite(r.Host, "doubleclick.net") {
			seen = true
		}
	}
	if !seen {
		t.Error("doubleclick resources missing on ungated site")
	}
}

func TestEngineIntegrationReturnsTopics(t *testing.T) {
	// With an engine that has history, an allowed caller receives
	// topics and the record notes how many.
	tx := taxonomy.NewV2()
	cl := classifier.New(tx)
	clock := twNow
	eng := topics.NewEngine(tx, cl, topics.Config{
		Seed: 5, NoNoise: true,
		Now: func() time.Time { return clock },
	})
	// Build one epoch of history observed by criteo.
	for _, s := range []string{"news-site.com", "travel-site.com", "games-site.com", "pizza-site.com", "chess-site.com"} {
		eng.RecordVisit(s)
		eng.Observe(s, "criteo.com")
	}
	clock = clock.Add(topics.DefaultEpochDuration)
	eng.AdvanceEpoch()

	p, _ := twWorld.Catalog.ByDomain("criteo.com")
	site := findSite(t, func(s *webworld.Site) bool {
		return s.RedirectTo == "" && hasPlatform(s, "criteo.com") &&
			p.EnabledOn(s.Domain, twNow)
	})
	b := newTestBrowser(t, nil, eng)
	b.SetConsent(site.Domain)
	v, err := b.LoadPage(context.Background(), site.Domain)
	if err != nil {
		t.Fatal(err)
	}
	calls := callsBy(v, "criteo.com")
	if len(calls) == 0 {
		t.Fatal("no criteo call")
	}
	if calls[0].TopicsReturned == 0 {
		t.Error("criteo received no topics despite epoch history")
	}
}

func TestUnreachableSiteReturnsError(t *testing.T) {
	var dead *webworld.Site
	for _, s := range twWorld.Sites {
		if !s.Reachable {
			dead = s
			break
		}
	}
	b := newTestBrowser(t, nil, nil)
	if _, err := b.LoadPage(context.Background(), dead.Domain); err == nil {
		t.Error("unreachable site loaded")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := newTestBrowser(t, nil, nil)
	site := findSite(t, func(s *webworld.Site) bool { return s.RedirectTo == "" })
	if _, err := b.LoadPage(ctx, site.Domain); err == nil {
		t.Error("cancelled context still loaded page")
	}
}

func TestConsentStateManagement(t *testing.T) {
	b := newTestBrowser(t, nil, nil)
	b.SetConsent("www.foo.com")
	if !b.HasConsent("cdn.foo.com") {
		t.Error("consent must apply to the registrable domain")
	}
	if b.HasConsent("bar.com") {
		t.Error("consent leaked across sites")
	}
	b.ClearConsent()
	if b.HasConsent("foo.com") {
		t.Error("ClearConsent did not reset")
	}
}

func TestFormatTopicsHeader(t *testing.T) {
	if got := formatTopicsHeader(nil); got != "();v=chrome.2" {
		t.Errorf("empty header = %q", got)
	}
	if got := formatTopicsHeader([]int{1, 42}); got != "(1 42);v=chrome.2" {
		t.Errorf("header = %q", got)
	}
}
