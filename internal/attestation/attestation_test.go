package attestation

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var issueDate = time.Date(2023, 6, 16, 0, 0, 0, 0, time.UTC)

func TestFileRoundTrip(t *testing.T) {
	f := NewTopicsFile("criteo.com", issueDate, true)
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !got.AttestsTopics() {
		t.Error("round-tripped file does not attest topics")
	}
	if !got.HasEnrollmentSite() || got.EnrollmentSite != "https://criteo.com" {
		t.Errorf("EnrollmentSite = %q", got.EnrollmentSite)
	}
	if !got.IssuedAt.Equal(issueDate) {
		t.Errorf("IssuedAt = %v", got.IssuedAt)
	}
	if errs := got.Validate(); len(errs) != 0 {
		t.Errorf("Validate: %v", errs)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"attestation_version":"2","bogus":1}`))
	if err == nil {
		t.Error("unknown field accepted")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(strings.NewReader("<html>not found</html>")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestValidateFindsEveryDefect(t *testing.T) {
	f := &File{}
	errs := f.Validate()
	if len(errs) < 3 {
		t.Errorf("empty file yielded %d errors: %v", len(errs), errs)
	}

	// Attested API without the required declaration.
	f = NewTopicsFile("x.com", issueDate, false)
	f.Platforms[0].Attestations[APITopics][AttestationKey] = false
	found := false
	for _, e := range f.Validate() {
		if strings.Contains(e.Error(), AttestationKey) {
			found = true
		}
	}
	if !found {
		t.Error("missing declaration not reported")
	}
	if f.AttestsTopics() {
		t.Error("AttestsTopics true without declaration")
	}
}

func TestAttestsAPISelectivity(t *testing.T) {
	f := NewTopicsFile("x.com", issueDate, false)
	if f.AttestsAPI(APIProtectedAudience) {
		t.Error("file attests an API it does not carry")
	}
	f.Platforms[0].Attestations[APIProtectedAudience] = map[string]bool{AttestationKey: true}
	if !f.AttestsAPI(APIProtectedAudience) {
		t.Error("added API not attested")
	}
}

func TestAllowlistMembership(t *testing.T) {
	a := NewAllowlist("criteo.com", "doubleclick.net")
	cases := []struct {
		host string
		want bool
	}{
		{"criteo.com", true},
		{"static.criteo.com", true},
		{"DoubleClick.net", true},
		{"ads.doubleclick.net", true},
		{"criteo.org", false},
		{"notcriteo.com", false},
		{"", false},
	}
	for _, c := range cases {
		if got := a.Contains(c.host); got != c.want {
			t.Errorf("Contains(%q) = %v, want %v", c.host, got, c.want)
		}
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestAllowlistAddByRegistrableDomain(t *testing.T) {
	a := NewAllowlist()
	a.Add("cdn.ads.pubmatic.com")
	if !a.Contains("image.pubmatic.com") {
		t.Error("enrolment did not normalise to registrable domain")
	}
	if got := a.Domains(); len(got) != 1 || got[0] != "pubmatic.com" {
		t.Errorf("Domains() = %v", got)
	}
}

func TestAllowlistDatRoundTrip(t *testing.T) {
	a := NewAllowlist("criteo.com", "doubleclick.net", "rubiconproject.com", "yandex.ru")
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadAllowlist(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAllowlist: %v", err)
	}
	if got.Len() != a.Len() {
		t.Fatalf("round trip lost entries: %d vs %d", got.Len(), a.Len())
	}
	for _, d := range a.Domains() {
		if !got.Contains(d) {
			t.Errorf("lost %q", d)
		}
	}
}

func TestReadAllowlistDetectsCorruption(t *testing.T) {
	a := NewAllowlist("criteo.com", "doubleclick.net")
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	healthy := buf.Bytes()

	mutations := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("XXXXXX"), healthy[6:]...),
		"truncated":    healthy[:len(healthy)-6],
		"bit flip":     flipByte(healthy, len(healthy)/2),
		"flipped tail": flipByte(healthy, len(healthy)-1),
	}
	for name, data := range mutations {
		_, err := ReadAllowlist(bytes.NewReader(data))
		var ce *ErrCorrupted
		if err == nil {
			t.Errorf("%s: corruption not detected", name)
		} else if !asCorrupted(err, &ce) {
			t.Errorf("%s: error %v is not ErrCorrupted", name, err)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}

func asCorrupted(err error, target **ErrCorrupted) bool {
	ce, ok := err.(*ErrCorrupted)
	if ok {
		*target = ce
	}
	return ok
}

// TestCorruptedAllowlistDefaultAllow reproduces the §2.3 Chromium bug
// end to end: corrupt the on-disk database, load it as the browser
// would, and observe that ANY caller is then allowed (experiment B1).
func TestCorruptedAllowlistDefaultAllow(t *testing.T) {
	a := NewAllowlist("criteo.com")
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	// Healthy database: enforcement works.
	list, err := ReadAllowlist(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gate := NewGate(list, nil)
	if d := gate.Check("criteo.com"); !d.Allowed || d.Reason != ReasonEnrolled {
		t.Errorf("enrolled caller: %+v", d)
	}
	if d := gate.Check("evil.example"); d.Allowed || d.Reason != ReasonBlockedNotEnrolled {
		t.Errorf("unenrolled caller on healthy DB: %+v", d)
	}

	// Corrupted database: the browser allows everyone.
	corrupt := flipByte(buf.Bytes(), 8)
	list, err = ReadAllowlist(bytes.NewReader(corrupt))
	gate = NewGate(list, err)
	if !gate.Corrupted() {
		t.Fatal("gate did not enter corrupted mode")
	}
	for _, caller := range []string{"criteo.com", "evil.example", "www.any-first-party.it"} {
		d := gate.Check(caller)
		if !d.Allowed || d.Reason != ReasonDefaultAllowCorruptDB {
			t.Errorf("corrupted DB, caller %q: %+v, want default-allow", caller, d)
		}
	}
}

func TestGateConstructors(t *testing.T) {
	g := NewEnforcingGate(NewAllowlist("a.com"))
	if g.Corrupted() {
		t.Error("enforcing gate reports corrupted")
	}
	if !g.Check("a.com").Allowed || g.Check("b.com").Allowed {
		t.Error("enforcing gate wrong decisions")
	}
	cg := NewCorruptedGate()
	if !cg.Corrupted() || !cg.Check("anyone.net").Allowed {
		t.Error("corrupted gate must allow everyone")
	}
}

func TestReasonStrings(t *testing.T) {
	for r, want := range map[Reason]string{
		ReasonEnrolled:              "enrolled",
		ReasonBlockedNotEnrolled:    "blocked-not-enrolled",
		ReasonDefaultAllowCorruptDB: "default-allow-corrupt-db",
		Reason(99):                  "unknown",
	} {
		if r.String() != want {
			t.Errorf("Reason(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
}

// Property: any serialised allow-list round-trips, and single-byte
// corruption anywhere is always detected.
func TestAllowlistProperty(t *testing.T) {
	f := func(raw []uint8, flipAt uint16) bool {
		a := NewAllowlist()
		for i, b := range raw {
			if i >= 30 {
				break
			}
			a.Add(string(rune('a'+b%26)) + "dom.com")
		}
		var buf bytes.Buffer
		if _, err := a.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadAllowlist(bytes.NewReader(buf.Bytes()))
		if err != nil || got.Len() != a.Len() {
			return false
		}
		data := flipByte(buf.Bytes(), int(flipAt)%buf.Len())
		if bytes.Equal(data, buf.Bytes()) {
			return true
		}
		_, err = ReadAllowlist(bytes.NewReader(data))
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
