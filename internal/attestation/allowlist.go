package attestation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"github.com/netmeasure/topicscope/internal/etld"
)

// DatFileName is the allow-list file name inside the
// PrivacySandboxAttestationsPreloaded component directory (§2.3).
const DatFileName = "privacy-sandbox-attestations.dat"

// datMagic identifies the serialised allow-list format.
var datMagic = [6]byte{'P', 'S', 'A', 'T', 'T', 1}

// Allowlist is the set of enrolled caller domains the browser consults
// before permitting a Topics API call. Membership is by registrable
// domain: ads.example.com is allowed when example.com is enrolled.
type Allowlist struct {
	domains map[string]bool // registrable domains
}

// NewAllowlist builds an allow-list from enrolled domains.
func NewAllowlist(domains ...string) *Allowlist {
	a := &Allowlist{domains: make(map[string]bool, len(domains))}
	for _, d := range domains {
		a.Add(d)
	}
	return a
}

// Add enrolls a domain.
func (a *Allowlist) Add(domain string) {
	if reg := etld.RegistrableDomain(domain); reg != "" {
		a.domains[reg] = true
	}
}

// Contains reports whether host's registrable domain is enrolled.
func (a *Allowlist) Contains(host string) bool {
	return a.domains[etld.RegistrableDomain(host)]
}

// Len returns the number of enrolled domains.
func (a *Allowlist) Len() int { return len(a.domains) }

// Domains returns the enrolled registrable domains, sorted.
func (a *Allowlist) Domains() []string {
	out := make([]string, 0, len(a.domains))
	for d := range a.domains {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// WriteTo serialises the allow-list in the .dat format: magic, a uint32
// entry count, length-prefixed domains, and a CRC32 footer over
// everything before it.
func (a *Allowlist) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	var n int64

	wr := func(p []byte) error {
		m, err := mw.Write(p)
		n += int64(m)
		return err
	}
	if err := wr(datMagic[:]); err != nil {
		return n, fmt.Errorf("allowlist: writing magic: %w", err)
	}
	var buf [4]byte
	domains := a.Domains()
	binary.BigEndian.PutUint32(buf[:], uint32(len(domains)))
	if err := wr(buf[:]); err != nil {
		return n, fmt.Errorf("allowlist: writing count: %w", err)
	}
	for _, d := range domains {
		if len(d) > 0xFFFF {
			return n, fmt.Errorf("allowlist: domain too long: %q", d)
		}
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(len(d)))
		if err := wr(l[:]); err != nil {
			return n, fmt.Errorf("allowlist: writing entry: %w", err)
		}
		if err := wr([]byte(d)); err != nil {
			return n, fmt.Errorf("allowlist: writing entry: %w", err)
		}
	}
	binary.BigEndian.PutUint32(buf[:], crc.Sum32())
	m, err := w.Write(buf[:])
	n += int64(m)
	if err != nil {
		return n, fmt.Errorf("allowlist: writing checksum: %w", err)
	}
	return n, nil
}

// ErrCorrupted reports an unreadable allow-list database. Chromium treats
// this condition by *allowing every caller* (the bug of §2.3); the Gate
// type reproduces that decision and records it.
type ErrCorrupted struct {
	Reason string
}

func (e *ErrCorrupted) Error() string {
	return "allowlist: corrupted database: " + e.Reason
}

// ReadAllowlist parses a serialised allow-list, returning *ErrCorrupted
// for any structural damage.
func ReadAllowlist(r io.Reader) (*Allowlist, error) {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()

	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, &ErrCorrupted{Reason: "short magic: " + err.Error()}
	}
	if magic != datMagic {
		return nil, &ErrCorrupted{Reason: "bad magic"}
	}
	crc.Write(magic[:])

	var buf [4]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, &ErrCorrupted{Reason: "short count: " + err.Error()}
	}
	crc.Write(buf[:])
	count := binary.BigEndian.Uint32(buf[:])
	if count > 1<<22 {
		return nil, &ErrCorrupted{Reason: "implausible entry count"}
	}

	a := NewAllowlist()
	for i := uint32(0); i < count; i++ {
		var l [2]byte
		if _, err := io.ReadFull(br, l[:]); err != nil {
			return nil, &ErrCorrupted{Reason: "short entry length: " + err.Error()}
		}
		crc.Write(l[:])
		d := make([]byte, binary.BigEndian.Uint16(l[:]))
		if _, err := io.ReadFull(br, d); err != nil {
			return nil, &ErrCorrupted{Reason: "short entry: " + err.Error()}
		}
		crc.Write(d)
		a.Add(string(d))
	}
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, &ErrCorrupted{Reason: "short checksum: " + err.Error()}
	}
	if binary.BigEndian.Uint32(buf[:]) != crc.Sum32() {
		return nil, &ErrCorrupted{Reason: "checksum mismatch"}
	}
	return a, nil
}
