// Package attestation implements the Privacy Sandbox enrolment artifacts
// the paper checks (§2.3):
//
//   - the attestation JSON every enrolled caller must serve at
//     <domain>/.well-known/privacy-sandbox-attestations.json, declaring
//     it will not use the Topics API for cross-site re-identification;
//   - the browser-side allow-list file privacy-sandbox-attestations.dat
//     shipped in the PrivacySandboxAttestationsPreloaded component,
//     which gates Topics API calls by caller domain;
//   - the gate itself, including the Chromium implementation error the
//     paper discovered: when the local allow-list database is corrupted
//     or missing, the browser "permits any Topics API calls as default
//     case", letting unenrolled callers access the API.
package attestation

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// WellKnownPath is the fixed URL path of the attestation file.
const WellKnownPath = "/.well-known/privacy-sandbox-attestations.json"

// API names used in platform attestations.
const (
	APITopics            = "topics_api"
	APIProtectedAudience = "protected_audience_api"
	APIAttributionReport = "attribution_reporting_api"
	APISharedStorage     = "shared_storage_api"
)

// AttestationKey is the declaration each attested API carries.
const AttestationKey = "ServiceNotUsedForIdentifyingUserAcrossSites"

// File models the attestation JSON.
//
// IssuedAt corresponds to the issue date the paper extracts from each
// attestation ("the first attestation being on [June] 16th [2023]");
// EnrollmentSite is the field enrolments had to add on October 17th 2024.
type File struct {
	ParserVersion  string                `json:"attestation_parser_version"`
	Version        string                `json:"attestation_version"`
	PrivacyPolicy  []string              `json:"privacy_policy,omitempty"`
	OwnershipToken string                `json:"ownership_token,omitempty"`
	EnrollmentSite string                `json:"enrollment_site,omitempty"`
	IssuedAt       time.Time             `json:"issued_at"`
	Platforms      []PlatformAttestation `json:"platform_attestations"`
}

// PlatformAttestation lists the attested APIs for one platform.
type PlatformAttestation struct {
	Platform string `json:"platform"`
	// Attestations maps an API name to its declarations.
	Attestations map[string]map[string]bool `json:"attestations"`
}

// Parse decodes an attestation file from JSON.
func Parse(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("attestation: parsing: %w", err)
	}
	return &f, nil
}

// Encode writes the attestation file as indented JSON.
func (f *File) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("attestation: encoding: %w", err)
	}
	return nil
}

// Validate checks structural invariants and returns every problem found.
func (f *File) Validate() []error {
	var errs []error
	if f.ParserVersion == "" {
		errs = append(errs, fmt.Errorf("missing attestation_parser_version"))
	}
	if f.Version == "" {
		errs = append(errs, fmt.Errorf("missing attestation_version"))
	}
	if len(f.Platforms) == 0 {
		errs = append(errs, fmt.Errorf("no platform_attestations"))
	}
	for i, p := range f.Platforms {
		if p.Platform == "" {
			errs = append(errs, fmt.Errorf("platform_attestations[%d]: missing platform", i))
		}
		if len(p.Attestations) == 0 {
			errs = append(errs, fmt.Errorf("platform_attestations[%d]: no attested APIs", i))
		}
		for api, decls := range p.Attestations {
			if !decls[AttestationKey] {
				errs = append(errs, fmt.Errorf(
					"platform_attestations[%d]: %s does not declare %s", i, api, AttestationKey))
			}
		}
	}
	if f.IssuedAt.IsZero() {
		errs = append(errs, fmt.Errorf("missing issued_at"))
	}
	return errs
}

// AttestsAPI reports whether the file attests the given API on any
// platform with the required declaration.
func (f *File) AttestsAPI(api string) bool {
	for _, p := range f.Platforms {
		if decls, ok := p.Attestations[api]; ok && decls[AttestationKey] {
			return true
		}
	}
	return false
}

// AttestsTopics reports whether the file attests the Topics API.
func (f *File) AttestsTopics() bool { return f.AttestsAPI(APITopics) }

// HasEnrollmentSite reports whether the file carries the post-October
// 2024 enrollment_site field (§3: "many of the enrolled CPs had to
// update their attestations to include the new enrollment_site field").
func (f *File) HasEnrollmentSite() bool { return f.EnrollmentSite != "" }

// NewTopicsFile builds a minimal valid attestation for the Topics API,
// used by the synthetic web to publish well-known files.
func NewTopicsFile(domain string, issued time.Time, withEnrollmentSite bool) *File {
	f := &File{
		ParserVersion:  "2",
		Version:        "2",
		PrivacyPolicy:  []string{"https://" + domain + "/privacy"},
		OwnershipToken: fmt.Sprintf("tok-%s", domain),
		IssuedAt:       issued,
		Platforms: []PlatformAttestation{{
			Platform: "chrome",
			Attestations: map[string]map[string]bool{
				APITopics: {AttestationKey: true},
			},
		}},
	}
	if withEnrollmentSite {
		f.EnrollmentSite = "https://" + domain
	}
	return f
}
