package attestation

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadAllowlist verifies the .dat parser never panics and either
// round-trips or reports corruption.
func FuzzReadAllowlist(f *testing.F) {
	var healthy bytes.Buffer
	NewAllowlist("criteo.com", "doubleclick.net").WriteTo(&healthy) //nolint:errcheck
	f.Add(healthy.Bytes())
	f.Add([]byte{})
	f.Add([]byte("PSATT\x01garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		list, err := ReadAllowlist(bytes.NewReader(data))
		if err == nil && list == nil {
			t.Fatal("nil list without error")
		}
		// The gate must be total on any outcome.
		g := NewGate(list, err)
		g.Check("x.example")
	})
}

// FuzzParseAttestation verifies the JSON parser rejects or accepts
// without panicking, and Validate is total.
func FuzzParseAttestation(f *testing.F) {
	var buf bytes.Buffer
	NewTopicsFile("criteo.com", issueDate, true).Encode(&buf) //nolint:errcheck
	f.Add(buf.String())
	f.Add(`{}`)
	f.Add(`{"attestation_version":"2","platform_attestations":[]}`)
	f.Fuzz(func(t *testing.T, input string) {
		file, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		file.Validate()
		file.AttestsTopics()
	})
}
