package attestation

// Decision is the outcome of the browser's Topics API caller check.
type Decision struct {
	// Allowed reports whether the call may proceed.
	Allowed bool
	// Reason explains the outcome.
	Reason Reason
}

// Reason enumerates why a call was allowed or blocked.
type Reason int

const (
	// ReasonEnrolled: the caller's registrable domain is on the
	// allow-list — the only legitimate path.
	ReasonEnrolled Reason = iota
	// ReasonBlockedNotEnrolled: the caller is not enrolled and the
	// database is healthy; the browser blocks the call.
	ReasonBlockedNotEnrolled
	// ReasonDefaultAllowCorruptDB: the allow-list database is corrupted
	// or missing and Chromium's implementation *permits the call as the
	// default case* — the bug the paper reported to Google (§2.3). The
	// paper exploits it on purpose to observe not-allowed callers.
	ReasonDefaultAllowCorruptDB
)

// String returns a short diagnostic label.
func (r Reason) String() string {
	switch r {
	case ReasonEnrolled:
		return "enrolled"
	case ReasonBlockedNotEnrolled:
		return "blocked-not-enrolled"
	case ReasonDefaultAllowCorruptDB:
		return "default-allow-corrupt-db"
	default:
		return "unknown"
	}
}

// Gate is the browser-side check executed on every Topics API call,
// reproducing Chromium's behaviour including the corrupted-database
// default-allow error path.
type Gate struct {
	list      *Allowlist
	corrupted bool
}

// NewGate builds a gate from the result of loading the allow-list
// database. Pass the error from ReadAllowlist: when it indicates a
// corrupted or missing database the gate enters the buggy default-allow
// mode, exactly as Chromium does.
func NewGate(list *Allowlist, loadErr error) *Gate {
	// Any load failure — corruption, missing file, I/O error — puts
	// Chromium's implementation on the default-allow path.
	return &Gate{list: list, corrupted: list == nil || loadErr != nil}
}

// NewEnforcingGate builds a healthy gate over an in-memory allow-list.
func NewEnforcingGate(list *Allowlist) *Gate { return &Gate{list: list} }

// NewCorruptedGate builds a gate in the buggy default-allow mode, the
// configuration the paper's crawler deliberately runs with ("we on
// purpose corrupted the local allow-list of our Chromium browser").
func NewCorruptedGate() *Gate { return &Gate{corrupted: true} }

// Corrupted reports whether the gate is in default-allow mode.
func (g *Gate) Corrupted() bool { return g.corrupted }

// Check decides whether caller may invoke the Topics API. It runs on
// every emulated browsingTopics() call, so it must not allocate.
//
//topicslint:hotpath zeroalloc
func (g *Gate) Check(caller string) Decision {
	if g.corrupted {
		// Chromium bug: any first or third party may call the API when
		// the internal database is corrupted or missing.
		return Decision{Allowed: true, Reason: ReasonDefaultAllowCorruptDB}
	}
	if g.list.Contains(caller) {
		return Decision{Allowed: true, Reason: ReasonEnrolled}
	}
	return Decision{Allowed: false, Reason: ReasonBlockedNotEnrolled}
}
