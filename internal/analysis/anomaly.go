package analysis

import (
	"strings"

	"github.com/netmeasure/topicscope/internal/stats"
)

// Anomaly reproduces the §4 analysis of calls by parties that are NOT on
// the allow-list — observable only because the crawler runs with the
// corrupted allow-list database (experiment A1).
type Anomaly struct {
	// UniqueCPs is the number of distinct not-Allowed callers in D_AA
	// (paper: 2,614) and Calls the total call count (3,450).
	UniqueCPs int
	Calls     int
	// SameSecondLevel: calls whose CP shares the visited site's
	// second-level label, e.g. www.foo.com vs ad.foo.net (72%).
	SameSecondLevel      int
	SameSecondLevelShare float64
	// JavaScriptShare: §4 "all these bizarre calls use the JavaScript
	// browsingTopics() function".
	JavaScriptShare float64
	// SitesWithGTM / GTMShare: §4 observes GTM on 95% of websites where
	// anomalous calls occur.
	AnomalousSites int
	SitesWithGTM   int
	GTMShare       float64
}

// gtmHost identifies Google Tag Manager among downloaded resources.
const gtmHost = "www.googletagmanager.com"

// ComputeAnomaly runs experiment A1 over the After-Accept dataset.
func ComputeAnomaly(in *Input) *Anomaly {
	a := in.Index().anomaly
	return &a
}

// Render prints the anomaly statistics.
func (a *Anomaly) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "A1 — Anomalous usage by not-Allowed parties (§4, D_AA)",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("unique not-Allowed CPs", a.UniqueCPs)
	t.AddRow("anomalous calls", a.Calls)
	t.AddRow("CP = visited site (same 2nd-level)", stats.Pct(a.SameSecondLevelShare))
	t.AddRow("JavaScript call type", stats.Pct(a.JavaScriptShare))
	t.AddRow("sites with anomalous calls", a.AnomalousSites)
	t.AddRow("...of which embed GTM", stats.Pct(a.GTMShare))
	b.WriteString(t.Render())
	return b.String()
}
