package analysis

import (
	"fmt"
	"strings"

	"github.com/netmeasure/topicscope/internal/stats"
)

// Overview reproduces the §2.4 dataset statistics (experiment D1).
type Overview struct {
	// Attempted and Visited mirror "top-50,000 websites" and "We
	// successfully visit 43,405 websites".
	Attempted, Visited int
	// Accepted is the D_AA size (14,719) and AcceptShare its share of
	// visited sites (≈30%).
	Accepted    int
	AcceptShare float64
	// UniqueThirdParties mirrors "19,534 unique third parties".
	UniqueThirdParties int
	// BannersFound counts Before-Accept visits with a detected banner.
	BannersFound int
	// SitesWithLegitCall / LegitCallShare mirror §3: "we observe at
	// least one call to the Topics API in 45% of visited websites"
	// (D_AA, Allowed & Attested callers).
	SitesWithLegitCall int
	LegitCallShare     float64
}

// ComputeOverview runs experiment D1.
func ComputeOverview(in *Input) *Overview {
	o := in.Index().overview
	return &o
}

// Render prints the overview.
func (o *Overview) Render() string {
	var b strings.Builder
	t := &stats.Table{Title: "D1 — Dataset overview (§2.4)", Headers: []string{"metric", "value"}}
	t.AddRow("sites attempted", o.Attempted)
	t.AddRow("sites visited (D_BA)", o.Visited)
	t.AddRow("consent accepted (D_AA)", fmt.Sprintf("%d (%s of visited)", o.Accepted, stats.Pct(o.AcceptShare)))
	t.AddRow("banners found", o.BannersFound)
	t.AddRow("unique third parties (D_BA)", o.UniqueThirdParties)
	t.AddRow("D_AA sites with a legit Topics call", fmt.Sprintf("%d (%s)", o.SitesWithLegitCall, stats.Pct(o.LegitCallShare)))
	b.WriteString(t.Render())
	return b.String()
}
