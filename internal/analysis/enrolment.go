package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/netmeasure/topicscope/internal/stats"
)

// Enrolment reproduces the §3 enrolment timeline reconstructed from
// attestation issue dates (experiment E1): enrolments "kicked off in
// June 2023, the first attestation being on the 16th", then continue
// "at a low pace: each month, approximately a dozen new services".
type Enrolment struct {
	// First is the earliest attestation issue date.
	First time.Time
	// ByMonth counts attestations per "YYYY-MM".
	ByMonth map[string]int
	// Total is the number of attested domains.
	Total int
	// WithEnrollmentSite counts files already carrying the
	// enrollment_site field of the October 17th, 2024 migration.
	WithEnrollmentSite int
}

// ComputeEnrolment runs experiment E1 over the attestation checks.
func ComputeEnrolment(in *Input) *Enrolment {
	e := in.Index().enrolment
	e.ByMonth = copyStringCounts(e.ByMonth)
	return &e
}

// MonthlyPace returns the mean enrolments per month over the observed
// window.
func (e *Enrolment) MonthlyPace() float64 {
	if len(e.ByMonth) == 0 {
		return 0
	}
	return float64(e.Total) / float64(len(e.ByMonth))
}

// Render prints the timeline.
func (e *Enrolment) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "E1 — Attestation enrolment timeline (§3)",
		Headers: []string{"month", "new attestations"},
	}
	months := make([]string, 0, len(e.ByMonth))
	for m := range e.ByMonth {
		months = append(months, m)
	}
	sort.Strings(months)
	for _, m := range months {
		t.AddRow(m, e.ByMonth[m])
	}
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "first attestation: %s\n", e.First.Format("2006-01-02"))
	fmt.Fprintf(&b, "mean pace: %.1f new attestations per month\n", e.MonthlyPace())
	fmt.Fprintf(&b, "with enrollment_site field: %d of %d\n", e.WithEnrollmentSite, e.Total)
	return b.String()
}
