package analysis

import (
	"reflect"
	"testing"

	"github.com/netmeasure/topicscope/internal/dataset"
)

// shardInputs splits the fixture dataset into n contiguous chunks, each
// wrapped as a shard-local Input sharing the campaign-global allow-list
// and attestation checks — the shape a distributed campaign produces.
func shardInputs(in *Input, n int) []*Input {
	visits := in.Data.Visits
	stripe := (len(visits) + n - 1) / n
	var parts []*Input
	for lo := 0; lo < len(visits); lo += stripe {
		hi := lo + stripe
		if hi > len(visits) {
			hi = len(visits)
		}
		parts = append(parts, &Input{
			Data:         &dataset.Dataset{Visits: visits[lo:hi]},
			Allowlist:    in.Allowlist,
			Attestations: in.Attestations,
		})
	}
	return parts
}

// TestShardIndexMergeParity is the cross-shard golden test: partials
// built per shard and merged must yield the exact report a single
// full-dataset index build yields, regardless of merge order.
func TestShardIndexMergeParity(t *testing.T) {
	full := input(t)
	want := Run(full)

	for _, n := range []int{1, 2, 4, 7} {
		parts := shardInputs(full, n)
		partials := make([]*ShardIndex, len(parts))
		covered := 0
		for i, p := range parts {
			partials[i] = BuildShardIndex(p)
			covered += partials[i].Visits()
		}
		if covered != len(full.Data.Visits) {
			t.Fatalf("n=%d: partials cover %d visits, want %d", n, covered, len(full.Data.Visits))
		}

		merged := &Input{Data: full.Data, Allowlist: full.Allowlist, Attestations: full.Attestations}
		idx, err := MergeShardIndexes(merged, partials...)
		if err != nil {
			t.Fatal(err)
		}
		if !merged.AdoptIndex(idx) {
			t.Fatalf("n=%d: merged index not adopted", n)
		}
		if got := Run(merged); !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d: merged-shard report diverges from full build", n)
		}
	}

	// Merge order must not matter.
	parts := shardInputs(full, 4)
	fwd := make([]*ShardIndex, len(parts))
	rev := make([]*ShardIndex, len(parts))
	for i, p := range parts {
		fwd[i] = BuildShardIndex(p)
		rev[len(parts)-1-i] = BuildShardIndex(&Input{
			Data: p.Data, Allowlist: p.Allowlist, Attestations: p.Attestations,
		})
	}
	a := &Input{Data: full.Data, Allowlist: full.Allowlist, Attestations: full.Attestations}
	b := &Input{Data: full.Data, Allowlist: full.Allowlist, Attestations: full.Attestations}
	idxA, err := MergeShardIndexes(a, fwd...)
	if err != nil {
		t.Fatal(err)
	}
	idxB, err := MergeShardIndexes(b, rev...)
	if err != nil {
		t.Fatal(err)
	}
	a.AdoptIndex(idxA)
	b.AdoptIndex(idxB)
	if !reflect.DeepEqual(Run(a), Run(b)) {
		t.Error("merge order changed the report")
	}
}

// TestAdoptIndexContract pins AdoptIndex semantics: it wins only before
// the first lazy build, and an empty merge is an error.
func TestAdoptIndexContract(t *testing.T) {
	full := input(t)
	fresh := &Input{Data: full.Data, Allowlist: full.Allowlist, Attestations: full.Attestations}
	fresh.Index()
	if fresh.AdoptIndex(&Index{}) {
		t.Error("AdoptIndex succeeded after the index was already built")
	}
	if _, err := MergeShardIndexes(fresh); err == nil {
		t.Error("merging zero partials did not error")
	}
}
