package analysis

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/crawler"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/webserver"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// chaosFixture is a 1k-site chaos campaign — small enough that folding
// every prefix against a from-scratch oracle stays cheap, faulted so
// the fold sees retries, partial visits and every error class.
var (
	chaosOnce    sync.Once
	chaosFixture *Input
)

func chaosInput(t *testing.T) *Input {
	t.Helper()
	chaosOnce.Do(func() {
		world := webworld.Generate(webworld.Config{Seed: 11, NumSites: 1000})
		server := webserver.New(world, nil)
		allow := attestation.NewAllowlist(world.Catalog.AllowedDomains()...)
		client := server.Client()
		client.Transport = chaos.NewInjector(webworld.DefaultChaos(3), client.Transport)
		c := crawler.New(crawler.Config{
			Client:             client,
			ReferenceAllowlist: allow,
			Workers:            8,
			Collect:            true,
		})
		res, err := c.Run(context.Background(), world.List())
		if err != nil {
			panic(err)
		}
		domains := allow.Domains()
		domains = append(domains, crawler.CallerDomains(res.Data)...)
		recs := c.CheckAttestations(context.Background(), domains)
		chaosFixture = &Input{
			Data:         res.Data,
			Allowlist:    allow,
			Attestations: dataset.AttestationIndex(recs),
		}
	})
	return chaosFixture
}

// indexComparisons enumerates every precomputed field of a finalized
// Index for DeepEqual checks (the etld cache is deliberately excluded:
// two equal indexes may have warmed it differently).
func indexComparisons(got, ref *Index) []struct {
	name     string
	got, ref any
} {
	return []struct {
		name     string
		got, ref any
	}{
		{"called", got.called, ref.called},
		{"present", got.present, ref.present},
		{"callers", got.callers, ref.callers},
		{"aaAllowlist", got.aaAllowlist, ref.aaAllowlist},
		{"overview", got.overview, ref.overview},
		{"reliability", got.reliability, ref.reliability},
		{"table1", got.table1, ref.table1},
		{"anomaly", got.anomaly, ref.anomaly},
		{"figure7", got.figure7, ref.figure7},
		{"callTypes", got.callTypes, ref.callTypes},
		{"languages", got.languages, ref.languages},
		{"enrolment", got.enrolment, ref.enrolment},
		{"trajectory", got.trajectory, ref.trajectory},
	}
}

func assertIndexEqual(t *testing.T, label string, got, ref *Index) {
	t.Helper()
	for _, cmp := range indexComparisons(got, ref) {
		if !reflect.DeepEqual(cmp.got, cmp.ref) {
			t.Fatalf("%s: %s diverges from the from-scratch build\ngot: %+v\nref: %+v",
				label, cmp.name, cmp.got, cmp.ref)
		}
	}
}

// TestIncrementalIndexParity is the fold oracle: after every single
// record of the chaos campaign, the incrementally folded index must
// deep-equal a from-scratch BuildIndex over the same prefix — Fold is
// add, and add order is the journal's append order, so there is no
// prefix at which the two can legally differ. The full campaign then
// pins byte-identical report JSON.
func TestIncrementalIndexParity(t *testing.T) {
	in := chaosInput(t)
	visits := in.Data.Visits
	if len(visits) < 500 {
		t.Fatalf("fixture too small: %d visits", len(visits))
	}

	live := NewLiveIndex(&Input{Allowlist: in.Allowlist})
	for p := 1; p <= len(visits); p++ {
		live.Fold(&visits[p-1])
		got := live.Snapshot(in)
		prefixIn := &Input{
			Data:         &dataset.Dataset{Visits: visits[:p]},
			Allowlist:    in.Allowlist,
			Attestations: in.Attestations,
		}
		assertIndexEqual(t, "prefix "+strconv.Itoa(p), got, prefixIn.Index())
	}
	if live.Visits() != len(visits) {
		t.Fatalf("folded %d visits, want %d", live.Visits(), len(visits))
	}

	// Full campaign: the report computed from the folded index must be
	// byte-identical to the one computed from the batch build.
	liveRun := &Input{Allowlist: in.Allowlist, Attestations: in.Attestations}
	if !liveRun.AdoptIndex(live.Snapshot(liveRun)) {
		t.Fatal("live index not adopted")
	}
	refRun := &Input{Data: in.Data, Allowlist: in.Allowlist, Attestations: in.Attestations}
	got, err := json.Marshal(Run(liveRun))
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(Run(refRun))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("full-campaign report from the folded index differs from the batch build")
	}
}

// TestLiveIndexMergeProperty is satellite 4: folding records in rank
// (append) order versus merging per-shard live indexes built from a
// RANDOM partition, merged in a RANDOM order, must yield identical
// section output — the live fold and the distributed merge are two
// routes to one accumulator.
func TestLiveIndexMergeProperty(t *testing.T) {
	in := chaosInput(t)
	visits := in.Data.Visits

	ref := NewLiveIndex(&Input{Allowlist: in.Allowlist})
	for i := range visits {
		ref.Fold(&visits[i])
	}
	refIdx := ref.Snapshot(in)

	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0x11f7e))
		k := 1 + rng.IntN(6)
		assign := make([][]int, k)
		for i := range visits {
			w := rng.IntN(k)
			assign[w] = append(assign[w], i)
		}

		lives := make([]*LiveIndex, k)
		var wg sync.WaitGroup
		for w := 0; w < k; w++ {
			lives[w] = NewLiveIndex(&Input{Allowlist: in.Allowlist})
			wg.Add(1)
			go func(l *LiveIndex, idxs []int) {
				defer wg.Done()
				for _, i := range idxs {
					l.Fold(&visits[i])
				}
			}(lives[w], assign[w])
		}
		wg.Wait()

		order := rng.Perm(k)
		parts := make([]*ShardIndex, 0, k)
		for _, j := range order {
			parts = append(parts, lives[j].Shard())
		}
		merged := &Input{Allowlist: in.Allowlist, Attestations: in.Attestations}
		idx, err := MergeShardIndexes(merged, parts...)
		if err != nil {
			t.Fatal(err)
		}
		assertIndexEqual(t, "trial "+strconv.Itoa(trial), idx, refIdx)
	}
}

// foldJournal writes the given visits through a checkpointed journal
// with a live sink attached, completing each site group as the crawler
// would, and returns the sink.
func foldJournal(t *testing.T, path string, visits []dataset.Visit, every int, liveIn *Input) *LiveSink {
	t.Helper()
	sink := NewLiveSink(path, liveIn)
	jw, err := dataset.CreateJournal(path, dataset.JournalOptions{
		CheckpointEvery: every,
		Observer:        sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range visits {
		if err := jw.Write(&visits[i]); err != nil {
			t.Fatal(err)
		}
		if i+1 == len(visits) || visits[i+1].Site != visits[i].Site {
			if err := jw.SiteCompleted(visits[i].Rank, visits[i].Site); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	return sink
}

// TestLiveSnapshotRoundTrip pins the .idx codec: the snapshot a sink
// serialized at the final checkpoint restores to an accumulator whose
// finalized index deep-equals the batch build, costs zero tail bytes to
// load, and keeps folding correctly afterwards.
func TestLiveSnapshotRoundTrip(t *testing.T) {
	in := chaosInput(t)
	visits := in.Data.Visits
	split := len(visits) * 3 / 4
	path := filepath.Join(t.TempDir(), "live.jsonl.gz")
	foldJournal(t, path, visits[:split], 7, &Input{Allowlist: in.Allowlist})

	live, info := LoadIndexSnapshot(path, &Input{Allowlist: in.Allowlist})
	if live == nil {
		t.Fatal("snapshot did not restore")
	}
	if info.Visits != split || live.Visits() != split {
		t.Fatalf("restored %d visits (info %d), want %d", live.Visits(), info.Visits, split)
	}

	prefixIn := &Input{
		Data:         &dataset.Dataset{Visits: visits[:split]},
		Allowlist:    in.Allowlist,
		Attestations: in.Attestations,
	}
	assertIndexEqual(t, "restored snapshot", live.Snapshot(in), prefixIn.Index())

	// The accumulator keeps folding after a restore: finishing the
	// remaining visits must converge to the full-campaign index.
	for i := split; i < len(visits); i++ {
		live.Fold(&visits[i])
	}
	fullIn := &Input{Data: in.Data, Allowlist: in.Allowlist, Attestations: in.Attestations}
	assertIndexEqual(t, "restored+folded tail", live.Snapshot(in), fullIn.Index())

	// LoadLive over the same journal reads zero tail bytes: everything
	// was committed and snapshotted.
	idx, st, err := LoadLive(path, &Input{Allowlist: in.Allowlist, Attestations: in.Attestations})
	if err != nil {
		t.Fatal(err)
	}
	if !st.SnapshotRestored || st.TailRecords != 0 || st.BytesRead != 0 {
		t.Fatalf("final-checkpoint LoadLive stats %+v, want restored snapshot and an empty tail", st)
	}
	assertIndexEqual(t, "LoadLive", idx, prefixIn.Index())
}

// TestLiveSnapshotCorruptionDegrades is the torn-.idx half of satellite
// 3: a truncated, corrupt, version-skewed or mismatched snapshot must
// degrade every reader to a full folding scan — same result, more
// bytes, never an error.
func TestLiveSnapshotCorruptionDegrades(t *testing.T) {
	in := chaosInput(t)
	visits := in.Data.Visits[:400]
	ref := &Input{
		Data:         &dataset.Dataset{Visits: visits},
		Allowlist:    in.Allowlist,
		Attestations: in.Attestations,
	}

	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, idxPath string)
	}{
		{"truncated", func(t *testing.T, p string) {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, p string) {
			if err := os.WriteFile(p, []byte("not json at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-byte", func(t *testing.T, p string) {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			// Flip inside the version number region at the head.
			data[12] ^= 0xff
			os.WriteFile(p, data, 0o644) //nolint:errcheck // test corruption
		}},
		{"missing", func(t *testing.T, p string) {
			if err := os.Remove(p); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "live.jsonl.gz")
			foldJournal(t, path, visits, 5, &Input{Allowlist: in.Allowlist})
			tc.corrupt(t, IndexSnapshotPath(path))

			if live, _ := LoadIndexSnapshot(path, &Input{Allowlist: in.Allowlist}); live != nil {
				t.Fatal("corrupt snapshot restored")
			}
			idx, st, err := LoadLive(path, &Input{Allowlist: in.Allowlist, Attestations: in.Attestations})
			if err != nil {
				t.Fatalf("corrupt snapshot must degrade, not error: %v", err)
			}
			if st.SnapshotRestored {
				t.Fatal("stats claim a snapshot restore after corruption")
			}
			if st.TailRecords != int64(len(visits)) {
				t.Fatalf("degraded scan folded %d records, want %d", st.TailRecords, len(visits))
			}
			assertIndexEqual(t, tc.name, idx, ref.Index())

			// OpenLiveSink degrades the same way: rebuild the committed
			// prefix by scan, ready to keep folding.
			sink, lst, err := OpenLiveSink(path, &Input{Allowlist: in.Allowlist})
			if err != nil {
				t.Fatal(err)
			}
			if lst.SnapshotRestored {
				t.Fatal("sink claims a snapshot restore after corruption")
			}
			if got := sink.Live().Visits(); got != len(visits) {
				t.Fatalf("rebuilt sink folded %d visits, want %d", got, len(visits))
			}
		})
	}

	// A snapshot folded under a different allow-list must not restore:
	// the allowed bit is baked in at fold time.
	path := filepath.Join(t.TempDir(), "live.jsonl.gz")
	foldJournal(t, path, visits, 5, &Input{Allowlist: in.Allowlist})
	other := attestation.NewAllowlist("unrelated.example")
	if live, _ := LoadIndexSnapshot(path, &Input{Allowlist: other}); live != nil {
		t.Fatal("snapshot restored under a different allow-list")
	}
}

// TestLiveSinkResumeAcrossCheckpoint pins the resume protocol end to
// end at the dataset layer: fold a prefix through a sink, "crash" (no
// final checkpoint), reopen with OpenLiveSink + ResumeJournal, finish,
// and demand the final index equals the uninterrupted build.
func TestLiveSinkResumeAcrossCheckpoint(t *testing.T) {
	in := chaosInput(t)
	visits := in.Data.Visits[:600]
	const every = 4
	path := filepath.Join(t.TempDir(), "resume.jsonl.gz")

	// Phase 1: write a prefix and abort without the final checkpoint —
	// some committed sites, some salvageable tail.
	sink := NewLiveSink(path, &Input{Allowlist: in.Allowlist})
	jw, err := dataset.CreateJournal(path, dataset.JournalOptions{CheckpointEvery: every, Observer: sink})
	if err != nil {
		t.Fatal(err)
	}
	cut := len(visits) / 2
	written := 0
	for i := 0; i < len(visits) && written < cut; i++ {
		if err := jw.Write(&visits[i]); err != nil {
			t.Fatal(err)
		}
		written++
		if i+1 == len(visits) || visits[i+1].Site != visits[i].Site {
			if err := jw.SiteCompleted(visits[i].Rank, visits[i].Site); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := jw.Abort(); err != nil {
		t.Fatal(err)
	}
	m := durable.LoadManifest(path)
	if m == nil || m.Records == 0 {
		t.Fatal("aborted journal has no checkpoint to resume from")
	}

	// Phase 2: resume. The sink restores the snapshot (O(snapshot), no
	// journal bytes); ResumeJournal replays the salvaged tail through it.
	sink2, lst, err := OpenLiveSink(path, &Input{Allowlist: in.Allowlist})
	if err != nil {
		t.Fatal(err)
	}
	if !lst.SnapshotRestored {
		t.Fatal("resume did not restore the index snapshot")
	}
	if lst.BytesRead != 0 {
		t.Fatalf("snapshot restore read %d journal bytes, want 0", lst.BytesRead)
	}
	if int64(sink2.Live().Visits()) != m.Records {
		t.Fatalf("restored sink covers %d records, manifest commits %d", sink2.Live().Visits(), m.Records)
	}
	jw2, st, err := dataset.ResumeJournal(path, dataset.JournalOptions{CheckpointEvery: every, Observer: sink2})
	if err != nil {
		t.Fatal(err)
	}
	if int64(sink2.Live().Visits()) != m.Records+st.RecordsKept {
		t.Fatalf("after tail replay the sink covers %d records, want %d",
			sink2.Live().Visits(), m.Records+st.RecordsKept)
	}

	// Finish the remaining records, skipping sites already durable.
	done := make(map[string]bool, len(st.Completed))
	for s := range st.Completed {
		done[s] = true
	}
	for i := 0; i < len(visits); i++ {
		if visits[i].Rank <= st.WatermarkRank || done[visits[i].Site] {
			continue
		}
		if err := jw2.Write(&visits[i]); err != nil {
			t.Fatal(err)
		}
		if i+1 == len(visits) || visits[i+1].Site != visits[i].Site {
			if err := jw2.SiteCompleted(visits[i].Rank, visits[i].Site); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := jw2.Close(); err != nil {
		t.Fatal(err)
	}

	full := &Input{
		Data:         &dataset.Dataset{Visits: visits},
		Allowlist:    in.Allowlist,
		Attestations: in.Attestations,
	}
	assertIndexEqual(t, "resumed sink", sink2.Live().Snapshot(in), full.Index())
}
