package analysis

import (
	"strconv"
	"strings"

	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/stats"
)

// QuestionableCP is one bar of Figure 5: an Allowed & Attested CP and
// the number of websites on which it called the Topics API in the
// Before-Accept visit — before any consent was given.
type QuestionableCP struct {
	CP string
	// Sites is the number of distinct websites with a Before-Accept
	// call by this CP.
	Sites int
	// AfterSites is the CP's After-Accept call footprint, for the
	// paper's observation that questionable volume correlates poorly
	// with popularity (yandex first in D_BA despite doubleclick's D_AA
	// dominance).
	AfterSites int
}

// Figure5 reproduces Figure 5: questionable API calls by Allowed &
// Attested services in D_BA.
type Figure5 struct {
	Rows []QuestionableCP
	// TotalQuestionableCPs counts every A&A CP with at least one
	// Before-Accept call (paper: 28).
	TotalQuestionableCPs int
}

// ComputeFigure5 runs experiment F5; topN bounds the output (paper: 15),
// 0 means all.
func ComputeFigure5(in *Input, topN int) *Figure5 {
	idx := in.Index()
	before := idx.called[dataset.BeforeAccept]
	after := idx.called[dataset.AfterAccept]

	f := &Figure5{}
	for cp, sites := range before {
		if facts := idx.callers[cp]; !facts.allowed || !facts.attested {
			continue
		}
		f.TotalQuestionableCPs++
		f.Rows = append(f.Rows, QuestionableCP{
			CP:         cp,
			Sites:      len(sites),
			AfterSites: len(after[cp]),
		})
	}
	sortFigure5(f, topN)
	return f
}

// Render prints the figure data.
func (f *Figure5) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "F5 — Questionable Before-Accept calls by Allowed & Attested CPs (Figure 5, D_BA)",
		Headers: []string{"calling party", "D_BA sites", "D_AA sites"},
	}
	chart := &stats.BarChart{Title: "websites with a Before-Accept call"}
	for _, r := range f.Rows {
		t.AddRow(r.CP, r.Sites, r.AfterSites)
		chart.Add(r.CP, float64(r.Sites), strconv.Itoa(r.Sites))
	}
	b.WriteString(t.Render())
	b.WriteByte('\n')
	b.WriteString(chart.Render())
	b.WriteString("total questionable A&A CPs: " + strconv.Itoa(f.TotalQuestionableCPs) + "\n")
	return b.String()
}
