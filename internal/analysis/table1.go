package analysis

import (
	"strings"

	"github.com/netmeasure/topicscope/internal/stats"
)

// Table1 reproduces the paper's Table 1: the overall status of Topics
// API usage, split by allow-list membership and attestation status, for
// both datasets. The red rows of the paper (anomalous usage) correspond
// to NotAllowed*, the blue rows (questionable usage) to the D_BA block.
type Table1 struct {
	// Allowed is the allow-list size (193 in the paper).
	Allowed int
	// AllowedNotAttested: enrolled domains without a valid attestation
	// file (12).
	AllowedNotAttested int
	// AllowedAttested: enrolled domains with one (181).
	AllowedAttested int

	// D_AA caller counts.
	AAAllowedAttested    int // 47
	AANotAllowedAttested int // 1 (distillery.com)
	AANotAllowed         int // 2,614

	// D_BA caller counts.
	BAAllowedAttested int // 28
	BANotAllowed      int // 1,308
}

// ComputeTable1 runs experiment T1.
func ComputeTable1(in *Input) *Table1 {
	t := in.Index().table1
	return &t
}

// Render prints Table 1 in the paper's layout.
func (t *Table1) Render() string {
	var b strings.Builder
	tb := &stats.Table{
		Title:   "T1 — Overall status of Topics API usage (Table 1)",
		Headers: []string{"block", "row", "count"},
	}
	tb.AddRow("allow-list", "Allowed", t.Allowed)
	tb.AddRow("allow-list", "Allowed & !Attested", t.AllowedNotAttested)
	tb.AddRow("allow-list", "Allowed & Attested", t.AllowedAttested)
	tb.AddRow("D_AA", "Allowed & Attested (callers)", t.AAAllowedAttested)
	tb.AddRow("D_AA", "!Allowed & Attested", t.AANotAllowedAttested)
	tb.AddRow("D_AA", "!Allowed (anomalous)", t.AANotAllowed)
	tb.AddRow("D_BA", "Allowed & Attested (questionable)", t.BAAllowedAttested)
	tb.AddRow("D_BA", "!Allowed (questionable)", t.BANotAllowed)
	b.WriteString(tb.Render())
	return b.String()
}
