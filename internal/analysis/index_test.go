package analysis

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestIndexParity is the golden test of the index rewrite: every
// experiment computed from the single-pass Index must be deeply equal to
// the legacy full-scan implementation, on the shared campaign fixture
// and on an empty dataset, including non-default parameter variants.
func TestIndexParity(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   *Input
	}{
		{"campaign", input(t)},
		{"empty", emptyInput()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := tc.in
			check := func(section string, indexed, legacy any) {
				t.Helper()
				if !reflect.DeepEqual(indexed, legacy) {
					t.Errorf("%s: indexed result diverges from legacy scan\nindexed: %+v\nlegacy:  %+v",
						section, indexed, legacy)
				}
			}
			check("Overview", ComputeOverview(in), legacyComputeOverview(in))
			check("Reliability", ComputeReliability(in), legacyComputeReliability(in))
			check("Table1", ComputeTable1(in), legacyComputeTable1(in))
			check("Anomaly", ComputeAnomaly(in), legacyComputeAnomaly(in))
			check("Figure7", ComputeFigure7(in), legacyComputeFigure7(in))
			check("Enrolment", ComputeEnrolment(in), legacyComputeEnrolment(in))
			check("CallTypes", ComputeCallTypes(in), legacyComputeCallTypes(in))
			check("Languages", ComputeLanguages(in), legacyComputeLanguages(in))
			for _, topN := range []int{0, 4, 15} {
				check(fmt.Sprintf("Figure2(topN=%d)", topN),
					ComputeFigure2(in, topN), legacyComputeFigure2(in, topN))
				check(fmt.Sprintf("Figure5(topN=%d)", topN),
					ComputeFigure5(in, topN), legacyComputeFigure5(in, topN))
			}
			for _, minPresence := range []int{0, 12, 80} {
				check(fmt.Sprintf("Figure3(min=%d)", minPresence),
					ComputeFigure3(in, minPresence, 15), legacyComputeFigure3(in, minPresence, 15))
			}
			check("Figure6(auto)", ComputeFigure6(in, nil), legacyComputeFigure6(in, nil))
			check("Figure6(explicit)",
				ComputeFigure6(in, []string{"criteo.com", "yandex.com"}),
				legacyComputeFigure6(in, []string{"criteo.com", "yandex.com"}))
			check("Run", Run(in), legacyRun(in))
		})
	}
}

// TestIndexWorkerDeterminism proves the merge invariant: the index — and
// every figure derived from it — is identical whether built by one
// worker or many, so output can never depend on GOMAXPROCS.
func TestIndexWorkerDeterminism(t *testing.T) {
	shared := input(t)
	base := buildIndex(shared, 1)
	for _, workers := range []int{2, 3, 8, 64} {
		idx := buildIndex(shared, workers)
		if !reflect.DeepEqual(idx.called, base.called) {
			t.Errorf("workers=%d: called map diverges", workers)
		}
		if !reflect.DeepEqual(idx.present, base.present) {
			t.Errorf("workers=%d: present map diverges", workers)
		}
		if !reflect.DeepEqual(idx.callers, base.callers) {
			t.Errorf("workers=%d: caller classification diverges", workers)
		}
		if !reflect.DeepEqual(idx.table1, base.table1) ||
			!reflect.DeepEqual(idx.overview, base.overview) ||
			!reflect.DeepEqual(idx.reliability, base.reliability) ||
			!reflect.DeepEqual(idx.anomaly, base.anomaly) ||
			!reflect.DeepEqual(idx.figure7, base.figure7) ||
			!reflect.DeepEqual(idx.callTypes, base.callTypes) ||
			!reflect.DeepEqual(idx.languages, base.languages) ||
			!reflect.DeepEqual(idx.enrolment, base.enrolment) {
			t.Errorf("workers=%d: precomputed section diverges", workers)
		}
	}
}

// TestIndexConcurrentUse exercises the concurrency contract under the
// race detector: many goroutines trigger the lazy index build and read
// figures at the same time, on a fresh Input so the build itself races
// with the queries.
func TestIndexConcurrentUse(t *testing.T) {
	warm := input(t)
	fresh := &Input{Data: warm.Data, Allowlist: warm.Allowlist, Attestations: warm.Attestations}

	want := ComputeTable1(warm)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 4 {
			case 0:
				if got := ComputeTable1(fresh); !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent Table1 diverges: %+v", got)
				}
			case 1:
				ComputeFigure2(fresh, 15)
				ComputeFigure6(fresh, nil)
			case 2:
				ComputeFigure3(fresh, 0, 15)
				ComputeAnomaly(fresh)
			case 3:
				Run(fresh)
			}
		}(g)
	}
	wg.Wait()
}

// TestIndexInterning checks the etld cache actually deduplicates: the
// number of cached hostnames is bounded by the distinct hosts of the
// dataset, not by the number of visit records.
func TestIndexInterning(t *testing.T) {
	in := input(t)
	idx := in.Index()
	records := 0
	for i := range in.Data.Visits {
		records += len(in.Data.Visits[i].Resources) + len(in.Data.Visits[i].Calls)
	}
	if idx.Hosts() == 0 {
		t.Fatal("empty etld cache after build")
	}
	if idx.Hosts() >= records {
		t.Errorf("cache holds %d hosts for %d records — no deduplication", idx.Hosts(), records)
	}
	t.Logf("interned %d distinct hosts from %d resource/call records", idx.Hosts(), records)
}
