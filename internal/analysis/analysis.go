// Package analysis computes every table and figure of the paper from a
// crawl dataset: Table 1 (allow-list/attestation status), Figure 2 (CP
// presence vs. calls), Figure 3 (A/B enabled rates), the §4 anomalous
// usage statistics, Figure 5 (questionable Before-Accept calls),
// Figure 6 (TLD geography), Figure 7 (CMP conditional probabilities),
// the §2.4 dataset overview and the §3 enrolment timeline.
//
// The pipeline is dataset-driven: everything derives from the visit
// records, the reference allow-list, and the well-known attestation
// checks — never from generator internals — so it would work unchanged
// on a dataset captured from the real web.
//
// Every Compute* function answers from a shared analysis Index (see
// index.go) that aggregates the dataset in one parallel sharded pass;
// the first query builds it, later ones reuse it. The pre-index
// full-scan implementations live in legacy.go as the parity reference.
package analysis

import (
	"sync"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/obs"
)

// Input bundles what the analyses need.
type Input struct {
	// Data is the crawl dataset (both phases).
	Data *dataset.Dataset
	// Allowlist is the healthy browser allow-list (the paper's June 6th
	// 2024 privacy-sandbox-attestations.dat).
	Allowlist *attestation.Allowlist
	// Attestations indexes well-known attestation checks by domain.
	Attestations map[string]dataset.AttestationRecord
	// Metrics, when set, counts index and report activity in the shared
	// observability registry. Nil disables counting.
	Metrics *obs.Registry
	// FS, when set, routes live-snapshot reads and writes through an
	// explicit filesystem seam (chaos fault injection); nil means the
	// real OS.
	FS durable.FS

	indexOnce sync.Once
	index     *Index
}

// Index returns the input's analysis index, building it on first use.
// Safe for concurrent callers; the dataset must not be mutated after the
// first call.
func (in *Input) Index() *Index {
	in.indexOnce.Do(func() { in.index = BuildIndex(in) })
	return in.index
}

// allowed reports whether a caller is on the allow-list.
func (in *Input) allowed(caller string) bool {
	return in.Allowlist != nil && in.Allowlist.Contains(caller)
}

// attested reports whether a caller serves a valid Topics attestation.
func (in *Input) attested(caller string) bool {
	rec, ok := in.Attestations[etld.RegistrableDomain(caller)]
	return ok && rec.Attested()
}
