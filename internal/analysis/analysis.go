// Package analysis computes every table and figure of the paper from a
// crawl dataset: Table 1 (allow-list/attestation status), Figure 2 (CP
// presence vs. calls), Figure 3 (A/B enabled rates), the §4 anomalous
// usage statistics, Figure 5 (questionable Before-Accept calls),
// Figure 6 (TLD geography), Figure 7 (CMP conditional probabilities),
// the §2.4 dataset overview and the §3 enrolment timeline.
//
// The pipeline is dataset-driven: everything derives from the visit
// records, the reference allow-list, and the well-known attestation
// checks — never from generator internals — so it would work unchanged
// on a dataset captured from the real web.
package analysis

import (
	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/etld"
)

// Input bundles what the analyses need.
type Input struct {
	// Data is the crawl dataset (both phases).
	Data *dataset.Dataset
	// Allowlist is the healthy browser allow-list (the paper's June 6th
	// 2024 privacy-sandbox-attestations.dat).
	Allowlist *attestation.Allowlist
	// Attestations indexes well-known attestation checks by domain.
	Attestations map[string]dataset.AttestationRecord
}

// allowed reports whether a caller is on the allow-list.
func (in *Input) allowed(caller string) bool {
	return in.Allowlist != nil && in.Allowlist.Contains(caller)
}

// attested reports whether a caller serves a valid Topics attestation.
func (in *Input) attested(caller string) bool {
	rec, ok := in.Attestations[etld.RegistrableDomain(caller)]
	return ok && rec.Attested()
}

// callersIn returns the distinct callers of a phase, restricted by the
// predicate (nil = all).
func (in *Input) callersIn(phase dataset.Phase, keep func(caller string) bool) map[string]bool {
	out := make(map[string]bool)
	for i := range in.Data.Visits {
		v := &in.Data.Visits[i]
		if v.Phase != phase {
			continue
		}
		for _, c := range v.Calls {
			if keep == nil || keep(c.Caller) {
				out[c.Caller] = true
			}
		}
	}
	return out
}

// presentOn reports the distinct sites (per phase) on which each
// candidate CP domain appears among downloaded resources.
func (in *Input) presentOn(phase dataset.Phase, candidates map[string]bool) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for i := range in.Data.Visits {
		v := &in.Data.Visits[i]
		if v.Phase != phase || !v.Success {
			continue
		}
		seen := make(map[string]bool)
		for _, r := range v.Resources {
			if r.Failed {
				continue
			}
			reg := etld.RegistrableDomain(r.Host)
			if !candidates[reg] || seen[reg] {
				continue
			}
			seen[reg] = true
			set := out[reg]
			if set == nil {
				set = make(map[string]bool)
				out[reg] = set
			}
			set[v.Site] = true
		}
	}
	return out
}

// calledOn reports the distinct sites (per phase) on which each caller
// invoked the API.
func (in *Input) calledOn(phase dataset.Phase) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for i := range in.Data.Visits {
		v := &in.Data.Visits[i]
		if v.Phase != phase {
			continue
		}
		for _, c := range v.Calls {
			set := out[c.Caller]
			if set == nil {
				set = make(map[string]bool)
				out[c.Caller] = set
			}
			set[v.Site] = true
		}
	}
	return out
}

// legitCallers are the paper's §3 subjects: Allowed & Attested CPs seen
// calling in the After-Accept dataset.
func (in *Input) legitCallers() map[string]bool {
	return in.callersIn(dataset.AfterAccept, func(caller string) bool {
		return in.allowed(caller) && in.attested(caller)
	})
}
