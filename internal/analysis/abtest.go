package analysis

import (
	"fmt"
	"strings"

	"github.com/netmeasure/topicscope/internal/stats"
)

// Alternation characterises a CP's ON/OFF behaviour for one site over
// repeated visits (experiment S1). §3: "We notice consistent alternating
// periods: for some time, CP, and website, the usage of the API is ON
// for all visits, followed by some time when it is OFF."
type Alternation struct {
	// Samples is the number of repeated observations.
	Samples int
	// OnFraction is the share of observations with the integration ON;
	// over long horizons it converges to the CP's A/B enabled rate.
	OnFraction float64
	// Transitions counts ON↔OFF flips.
	Transitions int
	// LongestOnRun / LongestOffRun are the longest stable periods, in
	// samples.
	LongestOnRun, LongestOffRun int
}

// AnalyzeAlternation summarises a repeated-visit ON/OFF series.
func AnalyzeAlternation(series []bool) Alternation {
	a := Alternation{Samples: len(series)}
	if len(series) == 0 {
		return a
	}
	on := 0
	run := 1
	for i, s := range series {
		if s {
			on++
		}
		if i == 0 {
			continue
		}
		if s == series[i-1] {
			run++
		} else {
			a.Transitions++
			a.noteRun(series[i-1], run)
			run = 1
		}
	}
	a.noteRun(series[len(series)-1], run)
	a.OnFraction = stats.Share(on, len(series))
	return a
}

func (a *Alternation) noteRun(state bool, length int) {
	if state {
		if length > a.LongestOnRun {
			a.LongestOnRun = length
		}
	} else if length > a.LongestOffRun {
		a.LongestOffRun = length
	}
}

// Periodic reports whether the series shows the paper's A/B signature:
// both states occur and stable runs exist (not per-visit randomness).
func (a Alternation) Periodic() bool {
	return a.Transitions > 0 &&
		a.LongestOnRun >= 2 && a.LongestOffRun >= 2
}

// Render prints the summary.
func (a Alternation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "samples=%d on=%s transitions=%d longestOn=%d longestOff=%d periodic=%v\n",
		a.Samples, stats.Pct(a.OnFraction), a.Transitions, a.LongestOnRun, a.LongestOffRun, a.Periodic())
	return b.String()
}
