package analysis

import (
	"fmt"
	"strings"

	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/stats"
)

// CPPresence is one bar of Figure 2: on how many D_AA websites a calling
// party is present, and on how many of those it actually calls the
// Topics API.
type CPPresence struct {
	CP      string
	Present int
	Called  int
}

// Figure2 reproduces Figure 2: CP presence vs. usage for Allowed &
// Attested parties in D_AA.
type Figure2 struct {
	Rows []CPPresence
}

// ComputeFigure2 runs experiment F2. topN bounds the output (the paper
// plots the top 15 most pervasive CPs); pass 0 for all.
func ComputeFigure2(in *Input, topN int) *Figure2 {
	idx := in.Index()
	present := idx.present[dataset.AfterAccept]
	called := idx.called[dataset.AfterAccept]

	f := &Figure2{}
	// Candidates: every Allowed & Attested domain, whether it calls or
	// not (google-analytics.com and bing.com appear precisely because
	// they never call); rows exist only for candidates embedded
	// somewhere.
	for _, cp := range idx.aaAllowlist {
		sites := present[cp]
		if len(sites) == 0 {
			continue
		}
		row := CPPresence{CP: cp, Present: len(sites)}
		for site := range called[cp] {
			if sites[site] {
				row.Called++
			}
		}
		f.Rows = append(f.Rows, row)
	}
	sortFigure2(f, topN)
	return f
}

// Render prints the figure data.
func (f *Figure2) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "F2 — CP presence vs. Topics API calls (Figure 2, D_AA, Allowed & Attested)",
		Headers: []string{"calling party", "present on", "calls on", "share"},
	}
	chart := &stats.BarChart{Title: "websites (█ called, ░ present but not called)"}
	for _, r := range f.Rows {
		t.AddRow(r.CP, r.Present, r.Called, stats.Pct(stats.Share(r.Called, r.Present)))
		chart.AddPair(r.CP, float64(r.Called), float64(r.Present), fmt.Sprintf("%d/%d", r.Called, r.Present))
	}
	b.WriteString(t.Render())
	b.WriteByte('\n')
	b.WriteString(chart.Render())
	return b.String()
}
