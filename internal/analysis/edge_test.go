package analysis

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/crawler"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/webserver"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// emptyInput is a structurally valid input with no visits.
func emptyInput() *Input {
	return &Input{
		Data:         &dataset.Dataset{},
		Allowlist:    attestation.NewAllowlist("criteo.com"),
		Attestations: map[string]dataset.AttestationRecord{},
	}
}

func TestExperimentsOnEmptyDataset(t *testing.T) {
	in := emptyInput()
	r := Run(in)
	if r.Overview.Visited != 0 || r.Overview.AcceptShare != 0 {
		t.Errorf("overview on empty data: %+v", r.Overview)
	}
	if r.Table1.Allowed != 1 || r.Table1.AAAllowedAttested != 0 {
		t.Errorf("table1 on empty data: %+v", r.Table1)
	}
	if len(r.Figure2.Rows) != 0 || len(r.Figure3.Rows) != 0 || len(r.Figure5.Rows) != 0 {
		t.Error("figures non-empty on empty data")
	}
	if r.Anomaly.Calls != 0 || r.Anomaly.SameSecondLevelShare != 0 {
		t.Errorf("anomaly on empty data: %+v", r.Anomaly)
	}
	if r.Figure7.TotalSites != 0 || r.Figure7.AvgQuestionableRate != 0 {
		t.Errorf("figure7 on empty data: %+v", r.Figure7)
	}
	// Render must not panic anywhere.
	if out := r.Render(); out == "" {
		t.Error("empty render")
	}
}

func TestSingleVisitDataset(t *testing.T) {
	ts := time.Date(2024, 3, 30, 12, 0, 0, 0, time.UTC)
	d := &dataset.Dataset{}
	d.Append(dataset.Visit{
		Site: "foo.com", Rank: 1, Phase: dataset.BeforeAccept, Success: true,
		CMP: "HubSpot", FetchedAt: ts,
		Resources: []dataset.Resource{
			{URL: "http://criteo.com/tag.js", Host: "criteo.com", ThirdParty: true},
		},
		Calls: []dataset.TopicsCall{{
			Caller: "criteo.com", Site: "foo.com", Type: dataset.CallFetch,
			ContextOrigin: "criteo.com", Timestamp: ts, GateAllowed: true,
			GateReason: "default-allow-corrupt-db",
		}},
	})
	in := &Input{
		Data:      d,
		Allowlist: attestation.NewAllowlist("criteo.com"),
		Attestations: map[string]dataset.AttestationRecord{
			"criteo.com": {Domain: "criteo.com", Present: true, Valid: true, AttestsTopics: true, IssuedAt: ts},
		},
	}

	t1 := ComputeTable1(in)
	if t1.BAAllowedAttested != 1 {
		t.Errorf("single questionable caller not counted: %+v", t1)
	}

	f7 := ComputeFigure7(in)
	if f7.TotalQuestionable != 1 || f7.OverRepresentation("HubSpot") != 1 {
		t.Errorf("figure7 single-site: %+v", f7)
	}

	f5 := ComputeFigure5(in, 0)
	if len(f5.Rows) != 1 || f5.Rows[0].Sites != 1 {
		t.Errorf("figure5 single-site: %+v", f5.Rows)
	}

	e := ComputeEnrolment(in)
	if e.Total != 1 || e.MonthlyPace() != 1 {
		t.Errorf("enrolment single record: %+v", e)
	}
}

func TestFailedVisitsExcludedFromDenominators(t *testing.T) {
	d := &dataset.Dataset{}
	d.Append(dataset.Visit{Site: "dead.com", Rank: 1, Phase: dataset.BeforeAccept, Success: false, Error: "dns"})
	d.Append(dataset.Visit{Site: "live.com", Rank: 2, Phase: dataset.BeforeAccept, Success: true})
	in := &Input{Data: d, Allowlist: attestation.NewAllowlist(), Attestations: map[string]dataset.AttestationRecord{}}

	o := ComputeOverview(in)
	if o.Attempted != 2 || o.Visited != 1 {
		t.Errorf("overview: %+v", o)
	}
	f7 := ComputeFigure7(in)
	if f7.TotalSites != 1 {
		t.Errorf("figure7 counted failed visit: %+v", f7)
	}
}

func TestCallTypesExperiment(t *testing.T) {
	in := input(t)
	ct := ComputeCallTypes(in)
	t.Logf("\n%s", ct.Render())

	// §4: every anomalous call is a JavaScript-style call.
	if got := ct.AnomalousJSShare(); got != 1.0 {
		t.Errorf("anomalous JS share %.3f, want 1.0", got)
	}
	// Legitimate callers use all three integration styles.
	for _, typ := range AllCallTypes {
		if ct.LegitByType[typ] == 0 {
			t.Errorf("no legit %s calls observed", typ)
		}
	}
	// doubleclick prefers the header flows (mixHeader in the catalog).
	if dom := ct.DominantPerCP["doubleclick.net"]; dom == dataset.CallJavaScript {
		t.Logf("doubleclick dominant type %s (header-mix platform)", dom)
	}
	// criteo's tags are mostly JavaScript.
	if dom, ok := ct.DominantPerCP["criteo.com"]; !ok || dom != dataset.CallJavaScript {
		t.Errorf("criteo dominant type %v, want javascript", dom)
	}
}

func TestLanguagesExperiment(t *testing.T) {
	l := ComputeLanguages(input(t))
	t.Logf("\n%s", l.Render())
	if l.Visited == 0 {
		t.Fatal("no visits")
	}
	// Only the five Priv-Accept languages can be accepted.
	supported := map[string]bool{"en": true, "fr": true, "es": true, "de": true, "it": true}
	for lang := range l.AcceptedByLanguage {
		if !supported[lang] {
			t.Errorf("accepted banner in unsupported language %q", lang)
		}
	}
	// English dominates (most .com and many "other" sites).
	if top := l.AcceptedByLanguage.Sorted()[0]; top.Key != "en" {
		t.Errorf("top accepted language %q, want en", top.Key)
	}
	if rate := l.AcceptRate(); rate < 0.2 || rate > 0.45 {
		t.Errorf("accept rate %.3f out of paper band", rate)
	}
	if miss := l.MissRate(); miss < 0.2 || miss > 0.6 {
		t.Errorf("banner miss rate %.3f implausible", miss)
	}
	sum := l.NoBanner + l.MissedBanner + l.AcceptedByLanguage.Total()
	if sum != l.Visited {
		t.Errorf("outcome partition broken: %d vs %d", sum, l.Visited)
	}
}

func TestLongitudinalStability(t *testing.T) {
	// Two crawls of the same 1,500-site world a virtual week apart: the
	// per-CP enabled rates must hold even though per-site assignments
	// rotate (experiment L1).
	world := webworld.Generate(webworld.Config{Seed: 31, NumSites: 1500})
	server := webserver.New(world, nil)
	allow := attestation.NewAllowlist(world.Catalog.AllowedDomains()...)
	recs := crawler.New(crawler.Config{Client: server.Client(), Workers: 8}).
		CheckAttestations(context.Background(), allow.Domains())
	atts := dataset.AttestationIndex(recs)

	runAt := func(start time.Time) *Figure3 {
		c := crawler.New(crawler.Config{
			Client:             server.Client(),
			ReferenceAllowlist: allow,
			Workers:            16,
			Collect:            true,
			Start:              start,
		})
		res, err := c.Run(context.Background(), world.List())
		if err != nil {
			t.Fatal(err)
		}
		in := &Input{Data: res.Data, Allowlist: allow, Attestations: atts}
		return ComputeFigure3(in, 80, 0)
	}

	t0 := time.Date(2024, 3, 30, 6, 0, 0, 0, time.UTC)
	f3a := runAt(t0)
	f3b := runAt(t0.AddDate(0, 0, 7))
	l := CompareEnabledRates(f3a, f3b)
	t.Logf("\n%s", l.Render())
	if len(l.Rows) < 3 {
		t.Fatalf("only %d comparable CPs", len(l.Rows))
	}
	if drift := l.MaxDrift(); drift > 0.18 {
		t.Errorf("max enabled-rate drift %.3f across a week, want stability", drift)
	}
}

func TestAdoptionGrowthOverTime(t *testing.T) {
	// §6 asks for continuous monitoring: crawling the same world at
	// earlier virtual dates must reveal fewer active callers, because a
	// platform cannot call before its enrolment. Three snapshots across
	// the rollout window show monotone-ish growth.
	world := webworld.Generate(webworld.Config{Seed: 17, NumSites: 1200})
	server := webserver.New(world, nil)
	allow := attestation.NewAllowlist(world.Catalog.AllowedDomains()...)
	recs := crawler.New(crawler.Config{Client: server.Client(), Workers: 8}).
		CheckAttestations(context.Background(), allow.Domains())
	atts := dataset.AttestationIndex(recs)

	callersAt := func(start time.Time) int {
		c := crawler.New(crawler.Config{
			Client:             server.Client(),
			ReferenceAllowlist: allow,
			Workers:            16,
			Collect:            true,
			Start:              start,
		})
		res, err := c.Run(context.Background(), world.List())
		if err != nil {
			t.Fatal(err)
		}
		in := &Input{Data: res.Data, Allowlist: allow, Attestations: atts}
		return ComputeTable1(in).AAAllowedAttested
	}

	early := callersAt(time.Date(2023, 8, 1, 6, 0, 0, 0, time.UTC))
	mid := callersAt(time.Date(2023, 12, 1, 6, 0, 0, 0, time.UTC))
	late := callersAt(time.Date(2024, 3, 30, 6, 0, 0, 0, time.UTC))
	t.Logf("active A&A callers: Aug 2023=%d, Dec 2023=%d, Mar 2024=%d", early, mid, late)
	if !(early < mid && mid < late) {
		t.Errorf("adoption not growing: %d, %d, %d", early, mid, late)
	}
	if late < 30 {
		t.Errorf("late snapshot has only %d callers", late)
	}
}

func TestAdoptionSeriesHelpers(t *testing.T) {
	in := input(t)
	date := time.Date(2024, 3, 30, 0, 0, 0, 0, time.UTC)
	p := SnapshotAdoption(in, date)
	if p.ActiveCallers == 0 || p.Enrolled == 0 || p.SitesWithCall == 0 {
		t.Errorf("snapshot empty: %+v", p)
	}
	early := SnapshotAdoption(in, time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC))
	if early.Enrolled >= p.Enrolled {
		t.Errorf("enrolled count not growing with date: %d vs %d", early.Enrolled, p.Enrolled)
	}

	a := &Adoption{Points: []AdoptionPoint{
		{Date: date, ActiveCallers: 3},
		{Date: date.AddDate(0, 1, 0), ActiveCallers: 10},
	}}
	if !a.Growing() {
		t.Error("growing series not detected")
	}
	a.Points = append(a.Points, AdoptionPoint{ActiveCallers: 5})
	if a.Growing() {
		t.Error("shrinking series reported growing")
	}
	if out := a.Render(); !strings.Contains(out, "A2") {
		t.Error("render missing header")
	}
	if (&Adoption{}).Growing() {
		t.Error("empty series cannot be growing")
	}
}
