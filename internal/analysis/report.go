package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Report bundles every dataset-driven experiment of the paper.
type Report struct {
	Overview    *Overview
	Reliability *Reliability
	Table1      *Table1
	Figure2     *Figure2
	Figure3     *Figure3
	Anomaly     *Anomaly
	Figure5     *Figure5
	Figure6     *Figure6
	Figure7     *Figure7
	Enrolment   *Enrolment
	CallTypes   *CallTypes
	Languages   *Languages
}

// Run executes all experiments over the input. The index is built once
// (one parallel pass over the dataset); the independent sections then
// compute concurrently, each writing its own Report field.
func Run(in *Input) *Report {
	in.Index()

	r := &Report{}
	var wg sync.WaitGroup
	section := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}
	section(func() { r.Overview = ComputeOverview(in) })
	section(func() { r.Reliability = ComputeReliability(in) })
	section(func() { r.Table1 = ComputeTable1(in) })
	section(func() { r.Figure2 = ComputeFigure2(in, 15) })
	section(func() { r.Figure3 = ComputeFigure3(in, 0, 15) })
	section(func() { r.Anomaly = ComputeAnomaly(in) })
	section(func() { r.Figure5 = ComputeFigure5(in, 15) })
	section(func() { r.Figure6 = ComputeFigure6(in, nil) })
	section(func() { r.Figure7 = ComputeFigure7(in) })
	section(func() { r.Enrolment = ComputeEnrolment(in) })
	section(func() { r.CallTypes = ComputeCallTypes(in) })
	section(func() { r.Languages = ComputeLanguages(in) })
	wg.Wait()
	return r
}

// Render prints every experiment, separated by blank lines, in the
// paper's order.
func (r *Report) Render() string {
	sections := []string{
		r.Overview.Render(),
		r.Reliability.Render(),
		r.Table1.Render(),
		r.Figure2.Render(),
		r.Figure3.Render(),
		r.Anomaly.Render(),
		r.Figure5.Render(),
		r.Figure6.Render(),
		r.Figure7.Render(),
		r.Enrolment.Render(),
		r.CallTypes.Render(),
		r.Languages.Render(),
	}
	return strings.Join(sections, "\n")
}

// WriteJSON emits the full report as indented JSON, the
// machine-readable counterpart of Render for downstream plotting.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("analysis: encoding report: %w", err)
	}
	return nil
}
