package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Report bundles every dataset-driven experiment of the paper.
type Report struct {
	Overview    *Overview
	Reliability *Reliability
	Table1      *Table1
	Figure2     *Figure2
	Figure3     *Figure3
	Anomaly     *Anomaly
	Figure5     *Figure5
	Figure6     *Figure6
	Figure7     *Figure7
	Enrolment   *Enrolment
	CallTypes   *CallTypes
	Languages   *Languages
}

// Run executes all experiments over the input.
func Run(in *Input) *Report {
	return &Report{
		Overview:    ComputeOverview(in),
		Reliability: ComputeReliability(in),
		Table1:      ComputeTable1(in),
		Figure2:     ComputeFigure2(in, 15),
		Figure3:     ComputeFigure3(in, 0, 15),
		Anomaly:     ComputeAnomaly(in),
		Figure5:     ComputeFigure5(in, 15),
		Figure6:     ComputeFigure6(in, nil),
		Figure7:     ComputeFigure7(in),
		Enrolment:   ComputeEnrolment(in),
		CallTypes:   ComputeCallTypes(in),
		Languages:   ComputeLanguages(in),
	}
}

// Render prints every experiment, separated by blank lines, in the
// paper's order.
func (r *Report) Render() string {
	sections := []string{
		r.Overview.Render(),
		r.Reliability.Render(),
		r.Table1.Render(),
		r.Figure2.Render(),
		r.Figure3.Render(),
		r.Anomaly.Render(),
		r.Figure5.Render(),
		r.Figure6.Render(),
		r.Figure7.Render(),
		r.Enrolment.Render(),
		r.CallTypes.Render(),
		r.Languages.Render(),
	}
	return strings.Join(sections, "\n")
}

// WriteJSON emits the full report as indented JSON, the
// machine-readable counterpart of Render for downstream plotting.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("analysis: encoding report: %w", err)
	}
	return nil
}
