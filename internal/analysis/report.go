package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"github.com/netmeasure/topicscope/internal/obs"
)

// Report bundles every dataset-driven experiment of the paper.
type Report struct {
	Overview    *Overview
	Reliability *Reliability
	Table1      *Table1
	Figure2     *Figure2
	Figure3     *Figure3
	Anomaly     *Anomaly
	Figure5     *Figure5
	Figure6     *Figure6
	Figure7     *Figure7
	Enrolment   *Enrolment
	CallTypes   *CallTypes
	Languages   *Languages
}

// Run executes all experiments over the input. The index is built once
// (one parallel pass over the dataset); the independent sections then
// compute concurrently, each writing its own Report field.
func Run(in *Input) *Report {
	in.Index()

	r := &Report{}
	var wg sync.WaitGroup
	section := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}
	section(func() { r.Overview = ComputeOverview(in) })
	section(func() { r.Reliability = ComputeReliability(in) })
	section(func() { r.Table1 = ComputeTable1(in) })
	section(func() { r.Figure2 = ComputeFigure2(in, 15) })
	section(func() { r.Figure3 = ComputeFigure3(in, 0, 15) })
	section(func() { r.Anomaly = ComputeAnomaly(in) })
	section(func() { r.Figure5 = ComputeFigure5(in, 15) })
	section(func() { r.Figure6 = ComputeFigure6(in, nil) })
	section(func() { r.Figure7 = ComputeFigure7(in) })
	section(func() { r.Enrolment = ComputeEnrolment(in) })
	section(func() { r.CallTypes = ComputeCallTypes(in) })
	section(func() { r.Languages = ComputeLanguages(in) })
	wg.Wait()
	in.Metrics.Add("analysis_reports_total", 1)
	return r
}

// sectionNames lists the report sections in the paper's order — the
// span order of BuildTrace, independent of the concurrent schedule Run
// actually used.
var sectionNames = []string{
	"overview", "reliability", "table1", "figure2", "figure3", "anomaly",
	"figure5", "figure6", "figure7", "enrolment", "call_types", "languages",
}

// BuildTrace renders the analysis pass as a deterministic span tree on
// a stage clock starting at start: one index_build span charged
// obs.IndexVisitCost per visit, then one span per report section in
// fixed paper order charged obs.SectionCost each. The sections really
// ran concurrently (and the index pass sharded), but the trace is
// assembled after the fact from the input size alone, so it is
// byte-identical however the scheduler interleaved the work.
func BuildTrace(in *Input, start time.Time) *obs.VisitTrace {
	nVisits := 0
	if in != nil && in.Data != nil {
		nVisits = len(in.Data.Visits)
	}
	tr := obs.NewTrace("analysis", start, obs.A("visits", fmt.Sprintf("%d", nVisits)))
	tr.Start("index_build")
	tr.Advance(time.Duration(nVisits) * obs.IndexVisitCost)
	tr.End()
	for _, name := range sectionNames {
		tr.Start("section", obs.A("name", name))
		tr.Advance(obs.SectionCost)
		tr.End()
	}
	return &obs.VisitTrace{Phase: "analysis", Root: tr.Finish()}
}

// Render prints every experiment, separated by blank lines, in the
// paper's order.
func (r *Report) Render() string {
	sections := []string{
		r.Overview.Render(),
		r.Reliability.Render(),
		r.Table1.Render(),
		r.Figure2.Render(),
		r.Figure3.Render(),
		r.Anomaly.Render(),
		r.Figure5.Render(),
		r.Figure6.Render(),
		r.Figure7.Render(),
		r.Enrolment.Render(),
		r.CallTypes.Render(),
		r.Languages.Render(),
	}
	return strings.Join(sections, "\n")
}

// WriteJSON emits the full report as indented JSON, the
// machine-readable counterpart of Render for downstream plotting.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("analysis: encoding report: %w", err)
	}
	return nil
}
