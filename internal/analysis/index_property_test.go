package analysis

import (
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"github.com/netmeasure/topicscope/internal/etld"
)

// TestIndexShardMergeProperty is the property-test face of the merge
// invariant: TestIndexWorkerDeterminism checks the contiguous stripes
// BuildIndex actually uses, this test checks that ANY partition of the
// visits into shards — random assignment, random shard count, shards
// filled concurrently, merged in random order — produces an index deeply
// equal to the sequential single-shard build. Run under -race (the
// package is in `make race-core`) it also proves shard fills never
// share mutable state.
func TestIndexShardMergeProperty(t *testing.T) {
	in := input(t)
	visits := in.Data.Visits
	ref := sequentialIndex(in)

	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0x70b1c5))
		k := 1 + rng.IntN(8)

		// Random partition: each visit lands in an arbitrary shard, not a
		// contiguous stripe.
		assign := make([][]int, k)
		for i := range visits {
			w := rng.IntN(k)
			assign[w] = append(assign[w], i)
		}

		cache := etld.NewCache()
		shards := make([]*indexShard, k)
		for i := range shards {
			shards[i] = newIndexShard(in, cache)
		}
		var wg sync.WaitGroup
		for w := 0; w < k; w++ {
			wg.Add(1)
			go func(s *indexShard, idxs []int) {
				defer wg.Done()
				for _, i := range idxs {
					s.add(&visits[i])
				}
			}(shards[w], assign[w])
		}
		wg.Wait()

		// Random merge order.
		order := rng.Perm(k)
		agg := shards[order[0]]
		for _, j := range order[1:] {
			agg.absorb(shards[j])
		}
		idx := &Index{etld: cache, called: agg.called, present: agg.present, callers: agg.callers}
		idx.finalize(in, agg)

		for _, cmp := range []struct {
			name     string
			got, ref any
		}{
			{"called", idx.called, ref.called},
			{"present", idx.present, ref.present},
			{"callers", idx.callers, ref.callers},
			{"aaAllowlist", idx.aaAllowlist, ref.aaAllowlist},
			{"overview", idx.overview, ref.overview},
			{"reliability", idx.reliability, ref.reliability},
			{"table1", idx.table1, ref.table1},
			{"anomaly", idx.anomaly, ref.anomaly},
			{"figure7", idx.figure7, ref.figure7},
			{"callTypes", idx.callTypes, ref.callTypes},
			{"languages", idx.languages, ref.languages},
			{"enrolment", idx.enrolment, ref.enrolment},
			{"trajectory", idx.trajectory, ref.trajectory},
		} {
			if !reflect.DeepEqual(cmp.got, cmp.ref) {
				t.Fatalf("trial %d (shards=%d): %s diverges from sequential build\ngot: %+v\nref: %+v",
					trial, k, cmp.name, cmp.got, cmp.ref)
			}
		}
	}
}

// sequentialIndex builds the reference index with one shard, no
// concurrency.
func sequentialIndex(in *Input) *Index {
	cache := etld.NewCache()
	s := newIndexShard(in, cache)
	for i := range in.Data.Visits {
		s.add(&in.Data.Visits[i])
	}
	idx := &Index{etld: cache, called: s.called, present: s.present, callers: s.callers}
	idx.finalize(in, s)
	return idx
}
