package analysis

import (
	"runtime"
	"sync"

	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/cmpdb"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/stats"
)

// Index holds every aggregate the experiments query, built in one
// parallel sharded pass over the dataset. Worker goroutines each consume
// a contiguous stripe of visits into a private indexShard; the shards
// then merge into one Index.
//
// Determinism invariant: every per-shard aggregate is either a counter
// (merge = addition), a set (merge = union), or a max — all commutative
// and associative — and every ordered output downstream is produced by a
// sort with a total order (count desc, name asc tie-break). The merged
// Index, and hence every table and figure, is therefore byte-identical
// regardless of GOMAXPROCS or stripe boundaries. The parity test in
// index_test.go checks this against the sequential legacy scan.
//
// All hostname splitting goes through one etld.Cache, so each distinct
// hostname is normalized and split into eTLD+1/TLD/region exactly once
// per campaign, and the cached strings are interned: aggregation maps
// keyed by registrable domain share one backing string per domain.
type Index struct {
	etld *etld.Cache

	// called[phase][caller] is the set of sites where the caller invoked
	// the API, over all visits of the phase (failed ones included, as in
	// the legacy calledOn scan).
	called map[dataset.Phase]map[string]siteSet
	// present[phase][registrable domain] is the set of sites embedding a
	// non-failed resource of that domain, over successful visits.
	present map[dataset.Phase]map[string]siteSet
	// callers classifies every distinct caller seen in any phase.
	callers map[string]callerFacts
	// aaAllowlist lists the Allowed & Attested allow-list domains in
	// Allowlist.Domains() order — Figure 2's candidate set.
	aaAllowlist []string

	// Precomputed parameterless experiments; the Compute* wrappers hand
	// out defensive copies so callers can never corrupt the index.
	overview    Overview
	reliability Reliability
	table1      Table1
	anomaly     Anomaly
	figure7     Figure7
	callTypes   CallTypes
	languages   Languages
	enrolment   Enrolment
	trajectory  Trajectory
}

// siteSet is a set of website domains.
type siteSet = map[string]bool

// callerFacts is the classification every experiment keys on: allow-list
// membership and attestation validity. Folding fills only allowed — the
// allow-list exists before the first visit, but the attestation sweep
// runs after the crawl — so attested is resolved in finalize. That split
// is what lets a live index fold records while the campaign is still
// running (live.go) and still finalize into the exact post-hoc Index.
type callerFacts struct {
	allowed  bool
	attested bool
}

// epochSeconds is the longitudinal bucket width: one virtual week, the
// cadence of the paper's §6 continuous-monitoring proposal.
const epochSeconds = 7 * 24 * 60 * 60

// epochCount accumulates one virtual-week bucket of the longitudinal
// trajectory (experiment L1's live form). Counters add, sets union.
type epochCount struct {
	visits, calls int
	callers       map[string]bool
	sites         siteSet
}

// rankCount accumulates Before-Accept visit outcomes per Tranco rank, so
// the rank-decile table can be assembled after the global max rank is
// known.
type rankCount struct {
	attempted, succeeded int
}

// BuildIndex aggregates the dataset with one worker per CPU.
func BuildIndex(in *Input) *Index {
	return buildIndex(in, runtime.GOMAXPROCS(0))
}

// buildIndex is the worker-count-explicit core, separated so tests can
// prove the output is independent of the worker count.
func buildIndex(in *Input, workers int) *Index {
	visits := in.Data.Visits
	if workers < 1 {
		workers = 1
	}
	if workers > len(visits) {
		workers = len(visits)
	}
	if workers == 0 {
		workers = 1
	}

	cache := etld.NewCache()
	shards := make([]*indexShard, workers)
	var wg sync.WaitGroup
	stripe := (len(visits) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		s := newIndexShard(in, cache)
		shards[w] = s
		lo := w * stripe
		hi := lo + stripe
		if hi > len(visits) {
			hi = len(visits)
		}
		wg.Add(1)
		go func(s *indexShard, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				s.add(&visits[i])
			}
		}(s, lo, hi)
	}
	wg.Wait()
	in.Metrics.Add("analysis_visits_indexed_total", int64(len(visits)))
	in.Metrics.Add("analysis_index_shards_total", int64(workers))

	agg := shards[0]
	for _, s := range shards[1:] {
		agg.absorb(s)
	}

	idx := &Index{
		etld:    cache,
		called:  agg.called,
		present: agg.present,
		callers: agg.callers,
	}
	idx.finalize(in, agg)
	return idx
}

// indexShard accumulates one stripe of visits. Every field merges
// commutatively (see the Index determinism invariant).
type indexShard struct {
	in    *Input
	cache *etld.Cache

	called  map[dataset.Phase]map[string]siteSet
	present map[dataset.Phase]map[string]siteSet
	callers map[string]callerFacts

	// Overview (D1). aaLegitCalled keys the successful After-Accept
	// call sites by their allowed caller; which of those callers are
	// attested — and hence which sites count as "legit call" sites — is
	// only known at finalize, after the attestation sweep.
	attempted, visited, accepted siteSet
	banners                      int
	thirdParties                 map[string]bool
	daaSites                     siteSet
	aaLegitCalled                map[string]siteSet

	// Reliability (D1r).
	retries, circuitOpens                 int
	relAttempted, relSucceeded, relFailed int
	partialVisits                         int
	byClass                               map[string]int
	ranks                                 map[int]*rankCount
	maxRank                               int

	// Anomaly (A1).
	anomCalls, sameSLD, jsCalls int
	anomCPs                     map[string]bool
	anomSites, gtmSites         siteSet

	// Figure 7.
	f7Total, f7Quest       int
	sitesByCMP, questByCMP stats.Counter

	// Call types (X1).
	byPhase     map[dataset.Phase]map[dataset.CallType]int
	legitByType map[dataset.CallType]int
	anomByType  map[dataset.CallType]int
	perCP       map[string]map[dataset.CallType]int

	// Languages (D2).
	langVisited, langNoBanner, langMissed int
	acceptedByLang                        stats.Counter

	// Longitudinal trajectory (L1 live form): per-virtual-week buckets.
	epochs map[int]*epochCount
}

func newIndexShard(in *Input, cache *etld.Cache) *indexShard {
	return &indexShard{
		in:    in,
		cache: cache,
		called: map[dataset.Phase]map[string]siteSet{
			dataset.BeforeAccept: {},
			dataset.AfterAccept:  {},
		},
		present: map[dataset.Phase]map[string]siteSet{
			dataset.BeforeAccept: {},
			dataset.AfterAccept:  {},
		},
		callers:        make(map[string]callerFacts),
		attempted:      make(siteSet),
		visited:        make(siteSet),
		accepted:       make(siteSet),
		thirdParties:   make(map[string]bool),
		daaSites:       make(siteSet),
		aaLegitCalled:  make(map[string]siteSet),
		byClass:        make(map[string]int),
		ranks:          make(map[int]*rankCount),
		anomCPs:        make(map[string]bool),
		anomSites:      make(siteSet),
		gtmSites:       make(siteSet),
		sitesByCMP:     stats.Counter{},
		questByCMP:     stats.Counter{},
		byPhase:        make(map[dataset.Phase]map[dataset.CallType]int),
		legitByType:    make(map[dataset.CallType]int),
		anomByType:     make(map[dataset.CallType]int),
		perCP:          make(map[string]map[dataset.CallType]int),
		acceptedByLang: stats.Counter{},
	}
}

// classify memoizes the allow-list membership per distinct caller. Only
// the allowed bit is known at fold time; finalize resolves attested from
// the post-crawl attestation sweep (see callerFacts).
func (s *indexShard) classify(caller string) callerFacts {
	if f, ok := s.callers[caller]; ok {
		return f
	}
	f := callerFacts{allowed: s.in.Allowlist != nil && s.in.Allowlist.Contains(caller)}
	s.callers[caller] = f
	return f
}

// phaseSets returns the per-caller/per-CP site-set map of a phase,
// creating it for phases beyond the standard two.
func phaseSets(m map[dataset.Phase]map[string]siteSet, p dataset.Phase) map[string]siteSet {
	sets := m[p]
	if sets == nil {
		sets = make(map[string]siteSet)
		m[p] = sets
	}
	return sets
}

// add folds one visit into the shard: a single pass over its resources
// and calls feeds every experiment's aggregate at once. Each branch
// replicates the exact phase/success filter of the corresponding legacy
// scan (legacy.go) — the filters differ per experiment on purpose, and
// the parity test depends on matching them bit for bit.
func (s *indexShard) add(v *dataset.Visit) {
	ba := v.Phase == dataset.BeforeAccept
	aa := v.Phase == dataset.AfterAccept
	s.retries += v.Retries

	if ba {
		// Reliability: every Before-Accept visit, successful or not.
		if v.Rank > s.maxRank {
			s.maxRank = v.Rank
		}
		rc := s.ranks[v.Rank]
		if rc == nil {
			rc = &rankCount{}
			s.ranks[v.Rank] = rc
		}
		rc.attempted++
		s.relAttempted++
		if v.Success {
			s.relSucceeded++
			rc.succeeded++
			if v.Partial {
				s.partialVisits++
			}
		} else {
			s.relFailed++
			class := v.ErrorClass
			if class == "" {
				class = string(chaos.ClassifyText(v.Error))
			}
			s.byClass[class]++
		}

		// Overview D_BA block.
		s.attempted[v.Site] = true
		if v.Success {
			s.visited[v.Site] = true
		}
		if v.BannerDetected {
			s.banners++
		}
		if v.Accepted {
			s.accepted[v.Site] = true
		}

		// Languages: successful Before-Accept visits only.
		if v.Success {
			s.langVisited++
			switch {
			case !v.BannerDetected:
				s.langNoBanner++
			case v.Accepted:
				lang := v.BannerLanguage
				if lang == "" {
					lang = "unknown"
				}
				s.acceptedByLang.Add(lang)
			default:
				s.langMissed++
			}
		}
	}
	if aa && v.Success {
		s.daaSites[v.Site] = true
	}

	// Resources: presence (successful visits), third parties (D_BA, any
	// outcome), circuit-breaker hits (any phase), GTM detection.
	hasGTM := false
	var pres map[string]siteSet
	if v.Success {
		pres = phaseSets(s.present, v.Phase)
	}
	for i := range v.Resources {
		r := &v.Resources[i]
		if r.Failed {
			if r.Error == string(chaos.ClassCircuitOpen) {
				s.circuitOpens++
			}
			continue
		}
		reg := s.cache.Registrable(r.Host)
		if pres != nil {
			set := pres[reg]
			if set == nil {
				set = make(siteSet)
				pres[reg] = set
			}
			set[v.Site] = true
		}
		if ba && r.ThirdParty {
			s.thirdParties[reg] = true
		}
		if r.Host == gtmHost {
			hasGTM = true
		}
	}

	// Calls: caller→site sets (any outcome), call types, anomaly and
	// questionable classification.
	calledPhase := phaseSets(s.called, v.Phase)
	hasAnomalous, questionable := false, false
	for i := range v.Calls {
		c := &v.Calls[i]
		facts := s.classify(c.Caller)

		set := calledPhase[c.Caller]
		if set == nil {
			set = make(siteSet)
			calledPhase[c.Caller] = set
		}
		set[v.Site] = true

		types := s.byPhase[v.Phase]
		if types == nil {
			types = make(map[dataset.CallType]int)
			s.byPhase[v.Phase] = types
		}
		types[c.Type]++

		if ba && facts.allowed {
			questionable = true
		}
		if !aa {
			continue
		}
		if facts.allowed {
			s.legitByType[c.Type]++
			m := s.perCP[c.Caller]
			if m == nil {
				m = make(map[dataset.CallType]int)
				s.perCP[c.Caller] = m
			}
			m[c.Type]++
			if v.Success {
				set := s.aaLegitCalled[c.Caller]
				if set == nil {
					set = make(siteSet)
					s.aaLegitCalled[c.Caller] = set
				}
				set[v.Site] = true
			}
		} else {
			s.anomByType[c.Type]++
			if v.Success {
				s.anomCalls++
				s.anomCPs[c.Caller] = true
				hasAnomalous = true
				if s.cache.SameSecondLevel(c.Caller, v.Site) {
					s.sameSLD++
				}
				if c.Type == dataset.CallJavaScript {
					s.jsCalls++
				}
			}
		}
	}
	if aa && v.Success && hasAnomalous {
		s.anomSites[v.Site] = true
		if hasGTM {
			s.gtmSites[v.Site] = true
		}
	}

	// Figure 7: successful Before-Accept visits.
	if ba && v.Success {
		s.f7Total++
		if questionable {
			s.f7Quest++
		}
		if v.CMP != "" {
			s.sitesByCMP.Add(v.CMP)
			if questionable {
				s.questByCMP.Add(v.CMP)
			}
		}
	}

	// Longitudinal trajectory: bucket the visit into its virtual week.
	// Visit timestamps sit on the deterministic stage clocks, so the
	// bucketing is as reproducible as everything else.
	if !v.FetchedAt.IsZero() {
		if s.epochs == nil {
			s.epochs = make(map[int]*epochCount)
		}
		ep := int(v.FetchedAt.Unix() / epochSeconds)
		ec := s.epochs[ep]
		if ec == nil {
			ec = &epochCount{callers: make(map[string]bool), sites: make(siteSet)}
			s.epochs[ep] = ec
		}
		ec.visits++
		ec.calls += len(v.Calls)
		for i := range v.Calls {
			ec.callers[v.Calls[i].Caller] = true
		}
		if aa && len(v.Calls) > 0 {
			ec.sites[v.Site] = true
		}
	}
}

// absorb merges another shard into s. Every operation is commutative, so
// the merge order cannot influence the result.
func (s *indexShard) absorb(o *indexShard) {
	for phase, sets := range o.called {
		mergeSiteSets(phaseSets(s.called, phase), sets)
	}
	for phase, sets := range o.present {
		mergeSiteSets(phaseSets(s.present, phase), sets)
	}
	for caller, facts := range o.callers {
		s.callers[caller] = facts
	}

	unionSet(s.attempted, o.attempted)
	unionSet(s.visited, o.visited)
	unionSet(s.accepted, o.accepted)
	unionSet(s.thirdParties, o.thirdParties)
	unionSet(s.daaSites, o.daaSites)
	mergeSiteSets(s.aaLegitCalled, o.aaLegitCalled)
	s.banners += o.banners

	s.retries += o.retries
	s.circuitOpens += o.circuitOpens
	s.relAttempted += o.relAttempted
	s.relSucceeded += o.relSucceeded
	s.relFailed += o.relFailed
	s.partialVisits += o.partialVisits
	for class, n := range o.byClass {
		s.byClass[class] += n
	}
	for rank, rc := range o.ranks {
		dst := s.ranks[rank]
		if dst == nil {
			s.ranks[rank] = rc
			continue
		}
		dst.attempted += rc.attempted
		dst.succeeded += rc.succeeded
	}
	if o.maxRank > s.maxRank {
		s.maxRank = o.maxRank
	}

	s.anomCalls += o.anomCalls
	s.sameSLD += o.sameSLD
	s.jsCalls += o.jsCalls
	unionSet(s.anomCPs, o.anomCPs)
	unionSet(s.anomSites, o.anomSites)
	unionSet(s.gtmSites, o.gtmSites)

	s.f7Total += o.f7Total
	s.f7Quest += o.f7Quest
	addCounter(s.sitesByCMP, o.sitesByCMP)
	addCounter(s.questByCMP, o.questByCMP)

	for phase, types := range o.byPhase {
		dst := s.byPhase[phase]
		if dst == nil {
			s.byPhase[phase] = types
			continue
		}
		for t, n := range types {
			dst[t] += n
		}
	}
	for t, n := range o.legitByType {
		s.legitByType[t] += n
	}
	for t, n := range o.anomByType {
		s.anomByType[t] += n
	}
	for cp, types := range o.perCP {
		dst := s.perCP[cp]
		if dst == nil {
			s.perCP[cp] = types
			continue
		}
		for t, n := range types {
			dst[t] += n
		}
	}

	s.langVisited += o.langVisited
	s.langNoBanner += o.langNoBanner
	s.langMissed += o.langMissed
	addCounter(s.acceptedByLang, o.acceptedByLang)

	for ep, ec := range o.epochs {
		if s.epochs == nil {
			s.epochs = make(map[int]*epochCount)
		}
		dst := s.epochs[ep]
		if dst == nil {
			s.epochs[ep] = ec
			continue
		}
		dst.visits += ec.visits
		dst.calls += ec.calls
		unionSet(dst.callers, ec.callers)
		unionSet(dst.sites, ec.sites)
	}
}

func mergeSiteSets(dst, src map[string]siteSet) {
	for key, set := range src {
		d := dst[key]
		if d == nil {
			dst[key] = set
			continue
		}
		unionSet(d, set)
	}
}

func unionSet(dst, src map[string]bool) {
	for k := range src {
		dst[k] = true
	}
}

func addCounter(dst, src stats.Counter) {
	for k, n := range src {
		dst[k] += n
	}
}

// finalize assembles the parameterless experiment results from the
// merged aggregates, matching the legacy computations field for field.
func (idx *Index) finalize(in *Input, agg *indexShard) {
	// Resolve the attestation half of every caller's classification.
	// Folding recorded only the allow-list bit (the attestation sweep
	// happens after the crawl — a live index folds long before the
	// records it will be judged against exist); the input handed to
	// finalize carries the campaign-global attestation checks.
	for caller, facts := range idx.callers {
		rec, ok := in.Attestations[idx.etld.Registrable(caller)]
		facts.attested = ok && rec.Attested()
		idx.callers[caller] = facts
	}

	// Table 1 allow-list block + Figure 2's candidate list.
	t := Table1{}
	if in.Allowlist != nil {
		t.Allowed = in.Allowlist.Len()
		for _, d := range in.Allowlist.Domains() {
			if rec, ok := in.Attestations[d]; ok && rec.Attested() {
				t.AllowedAttested++
				idx.aaAllowlist = append(idx.aaAllowlist, d)
			} else {
				t.AllowedNotAttested++
			}
		}
	}
	for caller := range idx.called[dataset.AfterAccept] {
		switch facts := idx.callers[caller]; {
		case facts.allowed && facts.attested:
			t.AAAllowedAttested++
		case !facts.allowed && facts.attested:
			t.AANotAllowedAttested++
		case !facts.allowed:
			t.AANotAllowed++
		}
	}
	for caller := range idx.called[dataset.BeforeAccept] {
		switch facts := idx.callers[caller]; {
		case facts.allowed && facts.attested:
			t.BAAllowedAttested++
		case !facts.allowed:
			t.BANotAllowed++
		}
	}
	idx.table1 = t

	// Overview. The "legit call" site set is the union of the successful
	// After-Accept call sites of the allowed callers that turned out
	// attested — the same aa && allowed && success && attested condition
	// the legacy scan applies per call, regrouped by caller so the
	// attested factor could wait for the sweep.
	daaSitesWithCall := make(siteSet)
	for caller, sites := range agg.aaLegitCalled {
		if idx.callers[caller].attested {
			unionSet(daaSitesWithCall, sites)
		}
	}
	idx.overview = Overview{
		Attempted:          len(agg.attempted),
		Visited:            len(agg.visited),
		Accepted:           len(agg.accepted),
		AcceptShare:        stats.Share(len(agg.accepted), len(agg.visited)),
		UniqueThirdParties: len(agg.thirdParties),
		BannersFound:       agg.banners,
		SitesWithLegitCall: len(daaSitesWithCall),
		LegitCallShare:     stats.Share(len(daaSitesWithCall), len(agg.daaSites)),
	}

	// Reliability, deciles reassembled from the per-rank counts now that
	// the global max rank is known.
	r := Reliability{
		Attempted:     agg.relAttempted,
		Succeeded:     agg.relSucceeded,
		Failed:        agg.relFailed,
		SuccessRate:   stats.Share(agg.relSucceeded, agg.relAttempted),
		ByClass:       agg.byClass,
		Retries:       agg.retries,
		PartialVisits: agg.partialVisits,
		CircuitOpens:  agg.circuitOpens,
	}
	deciles := make([]ReliabilityDecile, 10)
	for i := range deciles {
		deciles[i].Decile = i + 1
	}
	for rank, rc := range agg.ranks {
		d := &deciles[decileOf(rank, agg.maxRank)]
		d.Attempted += rc.attempted
		d.Succeeded += rc.succeeded
	}
	for i := range deciles {
		deciles[i].SuccessRate = stats.Share(deciles[i].Succeeded, deciles[i].Attempted)
		if deciles[i].Attempted > 0 {
			r.Deciles = append(r.Deciles, deciles[i])
		}
	}
	idx.reliability = r

	// Anomaly.
	idx.anomaly = Anomaly{
		UniqueCPs:            len(agg.anomCPs),
		Calls:                agg.anomCalls,
		SameSecondLevel:      agg.sameSLD,
		SameSecondLevelShare: stats.Share(agg.sameSLD, agg.anomCalls),
		JavaScriptShare:      stats.Share(agg.jsCalls, agg.anomCalls),
		AnomalousSites:       len(agg.anomSites),
		SitesWithGTM:         len(agg.gtmSites),
		GTMShare:             stats.Share(len(agg.gtmSites), len(agg.anomSites)),
	}

	// Figure 7, rows in cmpdb order.
	f7 := Figure7{
		TotalSites:          agg.f7Total,
		TotalQuestionable:   agg.f7Quest,
		AvgQuestionableRate: stats.Share(agg.f7Quest, agg.f7Total),
	}
	for _, c := range cmpdb.All() {
		f7.Rows = append(f7.Rows, CMPRow{
			CMP:                   c.Name,
			Sites:                 agg.sitesByCMP[c.Name],
			QuestionableSites:     agg.questByCMP[c.Name],
			PCMP:                  stats.Share(agg.sitesByCMP[c.Name], agg.f7Total),
			PCMPGivenQuestionable: stats.Share(agg.questByCMP[c.Name], agg.f7Quest),
			PQuestionableGivenCMP: stats.Share(agg.questByCMP[c.Name], agg.sitesByCMP[c.Name]),
		})
	}
	idx.figure7 = f7

	// Call types.
	ct := CallTypes{
		ByPhase:         agg.byPhase,
		LegitByType:     agg.legitByType,
		AnomalousByType: agg.anomByType,
		DominantPerCP:   make(map[string]dataset.CallType, len(agg.perCP)),
	}
	for cp, m := range agg.perCP {
		ct.DominantPerCP[cp] = dominantType(m)
	}
	idx.callTypes = ct

	// Languages.
	idx.languages = Languages{
		Visited:            agg.langVisited,
		NoBanner:           agg.langNoBanner,
		AcceptedByLanguage: agg.acceptedByLang,
		MissedBanner:       agg.langMissed,
	}

	// Enrolment reads the attestation checks, not the visits; computing
	// it here lets ComputeEnrolment answer from a copy.
	e := Enrolment{ByMonth: make(map[string]int)}
	for _, rec := range in.Attestations {
		if !rec.Attested() || rec.IssuedAt.IsZero() {
			continue
		}
		e.Total++
		if e.First.IsZero() || rec.IssuedAt.Before(e.First) {
			e.First = rec.IssuedAt
		}
		e.ByMonth[rec.IssuedAt.Format("2006-01")]++
		if rec.HasEnrollmentSite {
			e.WithEnrollmentSite++
		}
	}
	idx.enrolment = e

	// Longitudinal trajectory: virtual-week buckets in time order.
	idx.trajectory = assembleTrajectory(agg.epochs)
}

// Hosts returns the number of distinct hostnames interned by the index's
// etld cache.
func (idx *Index) Hosts() int { return idx.etld.Len() }

// copy helpers for the Compute* wrappers: results share nothing with the
// index, so concurrent queries and caller-side mutation stay safe.

func copyTypeCounts(m map[dataset.CallType]int) map[dataset.CallType]int {
	out := make(map[dataset.CallType]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyStringCounts(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyCounter(c stats.Counter) stats.Counter {
	out := make(stats.Counter, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}
