package analysis

import (
	"strings"
	"time"

	"github.com/netmeasure/topicscope/internal/stats"
)

// AdoptionPoint is one monitoring snapshot (experiment A2): the state of
// Topics deployment at a virtual date. §6: "our measurements should be
// conducted continuously to monitor how the technology evolves".
type AdoptionPoint struct {
	// Date of the crawl snapshot.
	Date time.Time
	// ActiveCallers is the number of Allowed & Attested CPs observed
	// calling (Table 1's headline count at that date).
	ActiveCallers int
	// SitesWithCall is the share of D_AA sites with a legit call.
	SitesWithCall float64
	// Enrolled is the number of attested domains whose issue date lies
	// at or before the snapshot.
	Enrolled int
}

// Adoption is a monitoring series.
type Adoption struct {
	Points []AdoptionPoint
}

// SnapshotAdoption condenses one crawl (already analysed) into a
// monitoring point.
func SnapshotAdoption(in *Input, date time.Time) AdoptionPoint {
	t1 := ComputeTable1(in)
	o := ComputeOverview(in)
	enrolled := 0
	for _, rec := range in.Attestations {
		if rec.Attested() && !rec.IssuedAt.IsZero() && !rec.IssuedAt.After(date) {
			enrolled++
		}
	}
	return AdoptionPoint{
		Date:          date,
		ActiveCallers: t1.AAAllowedAttested,
		SitesWithCall: o.LegitCallShare,
		Enrolled:      enrolled,
	}
}

// Growing reports whether active-caller counts are non-decreasing over
// the series.
func (a *Adoption) Growing() bool {
	for i := 1; i < len(a.Points); i++ {
		if a.Points[i].ActiveCallers < a.Points[i-1].ActiveCallers {
			return false
		}
	}
	return len(a.Points) > 0
}

// Render prints the series with a growth chart.
func (a *Adoption) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "A2 — Topics adoption over time (§6 continuous monitoring)",
		Headers: []string{"snapshot", "enrolled", "active callers", "D_AA sites with call"},
	}
	chart := &stats.BarChart{Title: "active Allowed & Attested callers"}
	for _, p := range a.Points {
		date := p.Date.Format("2006-01-02")
		t.AddRow(date, p.Enrolled, p.ActiveCallers, stats.Pct(p.SitesWithCall))
		chart.Add(date, float64(p.ActiveCallers), stats.Pct(p.SitesWithCall))
	}
	b.WriteString(t.Render())
	b.WriteByte('\n')
	b.WriteString(chart.Render())
	return b.String()
}
