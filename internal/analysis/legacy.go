package analysis

// The pre-index scan path: every legacyCompute* below recomputes its
// experiment with a full pass over Data.Visits, exactly as the pipeline
// did before the single-pass Index existed. It is kept as the reference
// implementation — the parity test asserts each indexed Compute* is
// reflect.DeepEqual to its legacy twin on a seeded campaign — and as
// executable documentation of each experiment's raw definition.

import (
	"sort"

	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/cmpdb"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/stats"
)

// callersIn returns the distinct callers of a phase, restricted by the
// predicate (nil = all).
func (in *Input) callersIn(phase dataset.Phase, keep func(caller string) bool) map[string]bool {
	out := make(map[string]bool)
	for i := range in.Data.Visits {
		v := &in.Data.Visits[i]
		if v.Phase != phase {
			continue
		}
		for _, c := range v.Calls {
			if keep == nil || keep(c.Caller) {
				out[c.Caller] = true
			}
		}
	}
	return out
}

// presentOn reports the distinct sites (per phase) on which each
// candidate CP domain appears among downloaded resources.
func (in *Input) presentOn(phase dataset.Phase, candidates map[string]bool) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for i := range in.Data.Visits {
		v := &in.Data.Visits[i]
		if v.Phase != phase || !v.Success {
			continue
		}
		seen := make(map[string]bool)
		for _, r := range v.Resources {
			if r.Failed {
				continue
			}
			reg := etld.RegistrableDomain(r.Host)
			if !candidates[reg] || seen[reg] {
				continue
			}
			seen[reg] = true
			set := out[reg]
			if set == nil {
				set = make(map[string]bool)
				out[reg] = set
			}
			set[v.Site] = true
		}
	}
	return out
}

// calledOn reports the distinct sites (per phase) on which each caller
// invoked the API.
func (in *Input) calledOn(phase dataset.Phase) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for i := range in.Data.Visits {
		v := &in.Data.Visits[i]
		if v.Phase != phase {
			continue
		}
		for _, c := range v.Calls {
			set := out[c.Caller]
			if set == nil {
				set = make(map[string]bool)
				out[c.Caller] = set
			}
			set[v.Site] = true
		}
	}
	return out
}

// legitCallers are the paper's §3 subjects: Allowed & Attested CPs seen
// calling in the After-Accept dataset.
func (in *Input) legitCallers() map[string]bool {
	return in.callersIn(dataset.AfterAccept, func(caller string) bool {
		return in.allowed(caller) && in.attested(caller)
	})
}

// legacyComputeOverview is the scan-path D1.
func legacyComputeOverview(in *Input) *Overview {
	o := &Overview{}
	attempted := make(map[string]bool)
	visited := make(map[string]bool)
	accepted := make(map[string]bool)
	thirdParties := make(map[string]bool)

	legit := in.legitCallers()
	daaSites := make(map[string]bool)
	daaSitesWithCall := make(map[string]bool)

	for i := range in.Data.Visits {
		v := &in.Data.Visits[i]
		switch v.Phase {
		case dataset.BeforeAccept:
			attempted[v.Site] = true
			if v.Success {
				visited[v.Site] = true
			}
			if v.BannerDetected {
				o.BannersFound++
			}
			if v.Accepted {
				accepted[v.Site] = true
			}
			for _, r := range v.Resources {
				if r.ThirdParty && !r.Failed {
					thirdParties[etld.RegistrableDomain(r.Host)] = true
				}
			}
		case dataset.AfterAccept:
			if !v.Success {
				continue
			}
			daaSites[v.Site] = true
			for _, c := range v.Calls {
				if legit[c.Caller] {
					daaSitesWithCall[v.Site] = true
				}
			}
		}
	}

	o.Attempted = len(attempted)
	o.Visited = len(visited)
	o.Accepted = len(accepted)
	o.AcceptShare = stats.Share(o.Accepted, o.Visited)
	o.UniqueThirdParties = len(thirdParties)
	o.SitesWithLegitCall = len(daaSitesWithCall)
	o.LegitCallShare = stats.Share(len(daaSitesWithCall), len(daaSites))
	return o
}

// legacyComputeReliability is the scan-path D1r.
func legacyComputeReliability(in *Input) *Reliability {
	r := &Reliability{ByClass: make(map[string]int)}
	maxRank := 0
	for i := range in.Data.Visits {
		v := &in.Data.Visits[i]
		if v.Phase == dataset.BeforeAccept && v.Rank > maxRank {
			maxRank = v.Rank
		}
	}
	deciles := make([]ReliabilityDecile, 10)
	for i := range deciles {
		deciles[i].Decile = i + 1
	}
	for i := range in.Data.Visits {
		v := &in.Data.Visits[i]
		r.Retries += v.Retries
		for _, res := range v.Resources {
			if res.Failed && res.Error == string(chaos.ClassCircuitOpen) {
				r.CircuitOpens++
			}
		}
		if v.Phase != dataset.BeforeAccept {
			continue
		}
		r.Attempted++
		d := &deciles[decileOf(v.Rank, maxRank)]
		d.Attempted++
		if v.Success {
			r.Succeeded++
			d.Succeeded++
			if v.Partial {
				r.PartialVisits++
			}
			continue
		}
		r.Failed++
		class := v.ErrorClass
		if class == "" {
			class = string(chaos.ClassifyText(v.Error))
		}
		r.ByClass[class]++
	}
	r.SuccessRate = stats.Share(r.Succeeded, r.Attempted)
	for i := range deciles {
		deciles[i].SuccessRate = stats.Share(deciles[i].Succeeded, deciles[i].Attempted)
		if deciles[i].Attempted > 0 {
			r.Deciles = append(r.Deciles, deciles[i])
		}
	}
	return r
}

// legacyComputeTable1 is the scan-path T1.
func legacyComputeTable1(in *Input) *Table1 {
	t := &Table1{Allowed: in.Allowlist.Len()}
	for _, d := range in.Allowlist.Domains() {
		if rec, ok := in.Attestations[d]; ok && rec.Attested() {
			t.AllowedAttested++
		} else {
			t.AllowedNotAttested++
		}
	}

	for caller := range in.callersIn(dataset.AfterAccept, nil) {
		switch {
		case in.allowed(caller) && in.attested(caller):
			t.AAAllowedAttested++
		case !in.allowed(caller) && in.attested(caller):
			t.AANotAllowedAttested++
		case !in.allowed(caller):
			t.AANotAllowed++
		}
	}
	for caller := range in.callersIn(dataset.BeforeAccept, nil) {
		switch {
		case in.allowed(caller) && in.attested(caller):
			t.BAAllowedAttested++
		case !in.allowed(caller):
			t.BANotAllowed++
		}
	}
	return t
}

// legacyComputeFigure2 is the scan-path F2.
func legacyComputeFigure2(in *Input, topN int) *Figure2 {
	candidates := make(map[string]bool)
	for _, d := range in.Allowlist.Domains() {
		if rec, ok := in.Attestations[d]; ok && rec.Attested() {
			candidates[d] = true
		}
	}

	present := in.presentOn(dataset.AfterAccept, candidates)
	called := in.calledOn(dataset.AfterAccept)

	f := &Figure2{}
	for cp, sites := range present {
		row := CPPresence{CP: cp, Present: len(sites)}
		for site := range called[cp] {
			if sites[site] {
				row.Called++
			}
		}
		f.Rows = append(f.Rows, row)
	}
	sortFigure2(f, topN)
	return f
}

// legacyComputeFigure3 is the scan-path F3.
func legacyComputeFigure3(in *Input, minPresence, topN int) *Figure3 {
	if minPresence <= 0 {
		minPresence = 20
	}
	legit := in.legitCallers()
	present := in.presentOn(dataset.AfterAccept, legit)
	called := in.calledOn(dataset.AfterAccept)

	f := &Figure3{MinPresence: minPresence}
	for cp := range legit {
		sites := present[cp]
		if len(sites) < minPresence {
			continue
		}
		row := EnabledRate{CP: cp, Present: len(sites)}
		for site := range called[cp] {
			if sites[site] {
				row.Called++
			}
		}
		row.Rate = stats.Share(row.Called, row.Present)
		row.Cluster = NearestCluster(row.Rate)
		f.Rows = append(f.Rows, row)
	}
	sortFigure3(f, topN)
	return f
}

// legacyComputeAnomaly is the scan-path A1.
func legacyComputeAnomaly(in *Input) *Anomaly {
	a := &Anomaly{}
	cps := make(map[string]bool)
	sitesWith := make(map[string]bool)
	sitesWithGTM := make(map[string]bool)
	jsCalls := 0

	for i := range in.Data.Visits {
		v := &in.Data.Visits[i]
		if v.Phase != dataset.AfterAccept || !v.Success {
			continue
		}
		hasAnomalous := false
		for _, c := range v.Calls {
			if in.allowed(c.Caller) {
				continue
			}
			a.Calls++
			cps[c.Caller] = true
			hasAnomalous = true
			if etld.SameSecondLevel(c.Caller, v.Site) {
				a.SameSecondLevel++
			}
			if c.Type == dataset.CallJavaScript {
				jsCalls++
			}
		}
		if hasAnomalous {
			sitesWith[v.Site] = true
			for _, r := range v.Resources {
				if r.Host == gtmHost && !r.Failed {
					sitesWithGTM[v.Site] = true
					break
				}
			}
		}
	}

	a.UniqueCPs = len(cps)
	a.AnomalousSites = len(sitesWith)
	a.SitesWithGTM = len(sitesWithGTM)
	a.SameSecondLevelShare = stats.Share(a.SameSecondLevel, a.Calls)
	a.JavaScriptShare = stats.Share(jsCalls, a.Calls)
	a.GTMShare = stats.Share(a.SitesWithGTM, a.AnomalousSites)
	return a
}

// legacyComputeFigure5 is the scan-path F5.
func legacyComputeFigure5(in *Input, topN int) *Figure5 {
	aa := func(caller string) bool { return in.allowed(caller) && in.attested(caller) }
	before := in.calledOn(dataset.BeforeAccept)
	after := in.calledOn(dataset.AfterAccept)

	f := &Figure5{}
	for cp, sites := range before {
		if !aa(cp) {
			continue
		}
		f.TotalQuestionableCPs++
		f.Rows = append(f.Rows, QuestionableCP{
			CP:         cp,
			Sites:      len(sites),
			AfterSites: len(after[cp]),
		})
	}
	sortFigure5(f, topN)
	return f
}

// legacyComputeFigure6 is the scan-path F6.
func legacyComputeFigure6(in *Input, cps []string) *Figure6 {
	if cps == nil {
		f5 := legacyComputeFigure5(in, 4)
		for _, r := range f5.Rows {
			cps = append(cps, r.CP)
		}
	}
	want := make(map[string]bool, len(cps))
	for _, cp := range cps {
		want[cp] = true
	}

	present := in.presentOn(dataset.BeforeAccept, want)
	called := in.calledOn(dataset.BeforeAccept)

	f := &Figure6{CPs: cps, Regions: etld.Regions, Cells: make(map[string]map[etld.Region]RegionShare)}
	for _, cp := range cps {
		cells := make(map[etld.Region]RegionShare)
		for site := range present[cp] {
			region := etld.RegionOf(site)
			c := cells[region]
			c.Present++
			if called[cp][site] {
				c.Called++
			}
			cells[region] = c
		}
		f.Cells[cp] = cells
	}
	return f
}

// legacyComputeFigure7 is the scan-path F7.
func legacyComputeFigure7(in *Input) *Figure7 {
	sitesByCMP := stats.Counter{}
	questByCMP := stats.Counter{}
	total, quest := 0, 0

	for i := range in.Data.Visits {
		v := &in.Data.Visits[i]
		if v.Phase != dataset.BeforeAccept || !v.Success {
			continue
		}
		total++
		questionable := false
		for _, c := range v.Calls {
			if in.allowed(c.Caller) {
				questionable = true
				break
			}
		}
		if questionable {
			quest++
		}
		if v.CMP != "" {
			sitesByCMP.Add(v.CMP)
			if questionable {
				questByCMP.Add(v.CMP)
			}
		}
	}

	f := &Figure7{TotalSites: total, TotalQuestionable: quest,
		AvgQuestionableRate: stats.Share(quest, total)}
	for _, c := range cmpdb.All() {
		row := CMPRow{
			CMP:                   c.Name,
			Sites:                 sitesByCMP[c.Name],
			QuestionableSites:     questByCMP[c.Name],
			PCMP:                  stats.Share(sitesByCMP[c.Name], total),
			PCMPGivenQuestionable: stats.Share(questByCMP[c.Name], quest),
			PQuestionableGivenCMP: stats.Share(questByCMP[c.Name], sitesByCMP[c.Name]),
		}
		f.Rows = append(f.Rows, row)
	}
	return f
}

// legacyComputeEnrolment is the scan-path E1.
func legacyComputeEnrolment(in *Input) *Enrolment {
	e := &Enrolment{ByMonth: make(map[string]int)}
	for _, rec := range in.Attestations {
		if !rec.Attested() || rec.IssuedAt.IsZero() {
			continue
		}
		e.Total++
		if e.First.IsZero() || rec.IssuedAt.Before(e.First) {
			e.First = rec.IssuedAt
		}
		e.ByMonth[rec.IssuedAt.Format("2006-01")]++
		if rec.HasEnrollmentSite {
			e.WithEnrollmentSite++
		}
	}
	return e
}

// legacyComputeCallTypes is the scan-path X1.
func legacyComputeCallTypes(in *Input) *CallTypes {
	ct := &CallTypes{
		ByPhase:         make(map[dataset.Phase]map[dataset.CallType]int),
		LegitByType:     make(map[dataset.CallType]int),
		AnomalousByType: make(map[dataset.CallType]int),
		DominantPerCP:   make(map[string]dataset.CallType),
	}
	perCP := make(map[string]map[dataset.CallType]int)

	for i := range in.Data.Visits {
		v := &in.Data.Visits[i]
		for _, c := range v.Calls {
			phase := ct.ByPhase[v.Phase]
			if phase == nil {
				phase = make(map[dataset.CallType]int)
				ct.ByPhase[v.Phase] = phase
			}
			phase[c.Type]++
			if v.Phase != dataset.AfterAccept {
				continue
			}
			if in.allowed(c.Caller) {
				ct.LegitByType[c.Type]++
				m := perCP[c.Caller]
				if m == nil {
					m = make(map[dataset.CallType]int)
					perCP[c.Caller] = m
				}
				m[c.Type]++
			} else {
				ct.AnomalousByType[c.Type]++
			}
		}
	}

	for cp, m := range perCP {
		ct.DominantPerCP[cp] = dominantType(m)
	}
	return ct
}

// legacyComputeLanguages is the scan-path D2.
func legacyComputeLanguages(in *Input) *Languages {
	l := &Languages{AcceptedByLanguage: stats.Counter{}}
	for i := range in.Data.Visits {
		v := &in.Data.Visits[i]
		if v.Phase != dataset.BeforeAccept || !v.Success {
			continue
		}
		l.Visited++
		switch {
		case !v.BannerDetected:
			l.NoBanner++
		case v.Accepted:
			lang := v.BannerLanguage
			if lang == "" {
				lang = "unknown"
			}
			l.AcceptedByLanguage.Add(lang)
		default:
			l.MissedBanner++
		}
	}
	return l
}

// legacyRun executes all experiments sequentially over full scans.
func legacyRun(in *Input) *Report {
	return &Report{
		Overview:    legacyComputeOverview(in),
		Reliability: legacyComputeReliability(in),
		Table1:      legacyComputeTable1(in),
		Figure2:     legacyComputeFigure2(in, 15),
		Figure3:     legacyComputeFigure3(in, 0, 15),
		Anomaly:     legacyComputeAnomaly(in),
		Figure5:     legacyComputeFigure5(in, 15),
		Figure6:     legacyComputeFigure6(in, nil),
		Figure7:     legacyComputeFigure7(in),
		Enrolment:   legacyComputeEnrolment(in),
		CallTypes:   legacyComputeCallTypes(in),
		Languages:   legacyComputeLanguages(in),
	}
}

// sortFigure2/3/5 order rows with a total order (count desc, CP asc) and
// truncate to topN; shared by the indexed and legacy paths so both
// produce byte-identical output.
func sortFigure2(f *Figure2, topN int) {
	sort.Slice(f.Rows, func(i, j int) bool {
		if f.Rows[i].Present != f.Rows[j].Present {
			return f.Rows[i].Present > f.Rows[j].Present
		}
		return f.Rows[i].CP < f.Rows[j].CP
	})
	if topN > 0 && len(f.Rows) > topN {
		f.Rows = f.Rows[:topN]
	}
}

func sortFigure3(f *Figure3, topN int) {
	sort.Slice(f.Rows, func(i, j int) bool {
		if f.Rows[i].Rate != f.Rows[j].Rate {
			return f.Rows[i].Rate > f.Rows[j].Rate
		}
		return f.Rows[i].CP < f.Rows[j].CP
	})
	if topN > 0 && len(f.Rows) > topN {
		f.Rows = f.Rows[:topN]
	}
}

func sortFigure5(f *Figure5, topN int) {
	sort.Slice(f.Rows, func(i, j int) bool {
		if f.Rows[i].Sites != f.Rows[j].Sites {
			return f.Rows[i].Sites > f.Rows[j].Sites
		}
		return f.Rows[i].CP < f.Rows[j].CP
	})
	if topN > 0 && len(f.Rows) > topN {
		f.Rows = f.Rows[:topN]
	}
}

// dominantType picks a CP's most-used call type, ties broken by the
// AllCallTypes display order.
func dominantType(m map[dataset.CallType]int) dataset.CallType {
	best, bestN := dataset.CallJavaScript, -1
	for _, typ := range AllCallTypes {
		if m[typ] > bestN {
			best, bestN = typ, m[typ]
		}
	}
	return best
}
