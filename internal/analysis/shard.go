package analysis

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/netmeasure/topicscope/internal/etld"
)

// ShardIndex is the partial analysis aggregate of one campaign shard: an
// indexShard stopped just before finalize. Every field merges
// commutatively (counters add, sets union, maxima max — see the Index
// determinism invariant), so a distributed campaign can index each
// journal shard independently and combine the partials into the same
// Index a single pass over the merged dataset would build, without ever
// re-reading the merged journal.
type ShardIndex struct {
	agg    *indexShard
	cache  *etld.Cache
	visits int
}

// Visits returns how many visit records the partial covers.
func (s *ShardIndex) Visits() int { return s.visits }

// BuildShardIndex aggregates one shard's dataset into a mergeable
// partial, using the same striped parallel pass as BuildIndex. The
// input's Allowlist must be the campaign-global one — the allow-list
// membership bit is folded into the partial and must agree across
// shards. Attestations are not consulted until finalize (they do not
// exist while a campaign is still crawling), so the partial needs none.
func BuildShardIndex(in *Input) *ShardIndex {
	return buildShardIndex(in, runtime.GOMAXPROCS(0))
}

func buildShardIndex(in *Input, workers int) *ShardIndex {
	visits := in.Data.Visits
	if workers < 1 {
		workers = 1
	}
	if workers > len(visits) {
		workers = len(visits)
	}
	if workers == 0 {
		workers = 1
	}

	cache := etld.NewCache()
	shards := make([]*indexShard, workers)
	var wg sync.WaitGroup
	stripe := (len(visits) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		s := newIndexShard(in, cache)
		shards[w] = s
		lo := w * stripe
		hi := lo + stripe
		if hi > len(visits) {
			hi = len(visits)
		}
		wg.Add(1)
		go func(s *indexShard, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				s.add(&visits[i])
			}
		}(s, lo, hi)
	}
	wg.Wait()
	in.Metrics.Add("analysis_visits_indexed_total", int64(len(visits)))
	in.Metrics.Add("analysis_index_shards_total", int64(workers))

	agg := shards[0]
	for _, s := range shards[1:] {
		agg.absorb(s)
	}
	return &ShardIndex{agg: agg, cache: cache, visits: len(visits)}
}

// MergeShardIndexes combines per-shard partials into one finalized
// Index. in must be the campaign-global input — the merged dataset,
// allow-list and attestation checks — because finalize reads the
// allow-list block and enrolment timeline from it; the visit-derived
// aggregates come entirely from the partials. Merge order cannot
// influence the result (absorb is commutative), and the returned Index
// equals BuildIndex(in) field for field — the cross-shard parity test
// pins that.
func MergeShardIndexes(in *Input, parts ...*ShardIndex) (*Index, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("analysis: merging shard indexes: no partials")
	}
	agg := parts[0].agg
	cache := parts[0].cache
	for _, p := range parts[1:] {
		agg.absorb(p.agg)
	}
	in.Metrics.Add("analysis_shard_indexes_merged_total", int64(len(parts)))

	idx := &Index{
		etld:    cache,
		called:  agg.called,
		present: agg.present,
		callers: agg.callers,
	}
	idx.finalize(in, agg)
	return idx, nil
}

// AdoptIndex installs an externally built index (one assembled by
// MergeShardIndexes) as the input's index, so Compute* calls and Run
// reuse it instead of re-scanning the dataset. It must be called before
// the first Index() query; afterwards it reports false and changes
// nothing.
func (in *Input) AdoptIndex(idx *Index) bool {
	adopted := false
	in.indexOnce.Do(func() {
		in.index = idx
		adopted = true
	})
	return adopted
}
