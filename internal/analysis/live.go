package analysis

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/stats"
)

// LiveIndex is the analysis index in its incremental form: an indexShard
// fed one committed record at a time instead of by a batch pass. Every
// aggregate merges commutatively (see the Index determinism invariant),
// so folding the records in rank order as the crawler emits them yields
// the same accumulator a post-hoc BuildIndex pass would — the
// incremental-parity test pins that for every prefix of a campaign.
//
// A LiveIndex folds while the campaign runs, long before the attestation
// sweep exists; classification is split so that only the allow-list bit
// is baked in at fold time and Snapshot resolves attestation facts from
// whatever Input it is finalized against (see callerFacts).
//
// Not safe for concurrent use: the crawler's rank-ordered sink is a
// single goroutine, which is exactly what makes one-at-a-time folding
// deterministic for free.
type LiveIndex struct {
	in     *Input
	cache  *etld.Cache
	agg    *indexShard
	visits int
}

// NewLiveIndex returns an empty fold accumulator. The input needs only
// the allow-list (classification) and optionally Metrics; Attestations
// may be nil — they are resolved at Snapshot time.
func NewLiveIndex(in *Input) *LiveIndex {
	cache := etld.NewCache()
	return &LiveIndex{in: in, cache: cache, agg: newIndexShard(in, cache)}
}

// Fold adds one visit record to the accumulator.
func (l *LiveIndex) Fold(v *dataset.Visit) {
	l.agg.add(v)
	l.visits++
}

// Visits returns how many records have been folded.
func (l *LiveIndex) Visits() int { return l.visits }

// Callers returns every distinct calling party folded so far, sorted —
// the same set crawler.CallerDomains extracts from a collected dataset,
// so a live consumer can run the attestation sweep without the visits.
func (l *LiveIndex) Callers() []string {
	out := make([]string, 0, len(l.agg.callers))
	for c := range l.agg.callers {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Shard exposes the accumulator as a mergeable partial for
// MergeShardIndexes. The partial shares the accumulator's state; fold
// only after the merge's finalize has run on cloned state (or not at
// all), as with any ShardIndex.
func (l *LiveIndex) Shard() *ShardIndex {
	return &ShardIndex{agg: l.agg, cache: l.cache, visits: l.visits}
}

// Snapshot finalizes the accumulator into a full Index against the
// given input (which supplies the allow-list block and the attestation
// checks) without consuming it: the aggregates are deep-copied first,
// so folding continues cleanly afterwards — the monitor renders a
// report every refresh while the campaign appends.
func (l *LiveIndex) Snapshot(in *Input) *Index {
	agg := l.agg.clone(in)
	idx := &Index{
		etld:    l.cache,
		called:  agg.called,
		present: agg.present,
		callers: agg.callers,
	}
	idx.finalize(in, agg)
	return idx
}

// clone deep-copies every aggregate so finalize (which resolves
// attestation facts into the caller map) and later folds cannot see
// each other.
func (s *indexShard) clone(in *Input) *indexShard {
	c := newIndexShard(in, s.cache)
	for phase, sets := range s.called {
		c.called[phase] = cloneSiteSets(sets)
	}
	for phase, sets := range s.present {
		c.present[phase] = cloneSiteSets(sets)
	}
	for caller, facts := range s.callers {
		c.callers[caller] = facts
	}
	c.attempted = cloneSet(s.attempted)
	c.visited = cloneSet(s.visited)
	c.accepted = cloneSet(s.accepted)
	c.thirdParties = cloneSet(s.thirdParties)
	c.daaSites = cloneSet(s.daaSites)
	c.aaLegitCalled = cloneSiteSets(s.aaLegitCalled)
	c.banners = s.banners

	c.retries = s.retries
	c.circuitOpens = s.circuitOpens
	c.relAttempted = s.relAttempted
	c.relSucceeded = s.relSucceeded
	c.relFailed = s.relFailed
	c.partialVisits = s.partialVisits
	c.byClass = copyStringCounts(s.byClass)
	for rank, rc := range s.ranks {
		c.ranks[rank] = &rankCount{attempted: rc.attempted, succeeded: rc.succeeded}
	}
	c.maxRank = s.maxRank

	c.anomCalls = s.anomCalls
	c.sameSLD = s.sameSLD
	c.jsCalls = s.jsCalls
	c.anomCPs = cloneSet(s.anomCPs)
	c.anomSites = cloneSet(s.anomSites)
	c.gtmSites = cloneSet(s.gtmSites)

	c.f7Total = s.f7Total
	c.f7Quest = s.f7Quest
	c.sitesByCMP = copyCounter(s.sitesByCMP)
	c.questByCMP = copyCounter(s.questByCMP)

	for phase, types := range s.byPhase {
		c.byPhase[phase] = copyTypeCounts(types)
	}
	c.legitByType = copyTypeCounts(s.legitByType)
	c.anomByType = copyTypeCounts(s.anomByType)
	for cp, types := range s.perCP {
		c.perCP[cp] = copyTypeCounts(types)
	}

	c.langVisited = s.langVisited
	c.langNoBanner = s.langNoBanner
	c.langMissed = s.langMissed
	c.acceptedByLang = copyCounter(s.acceptedByLang)

	if s.epochs != nil {
		c.epochs = make(map[int]*epochCount, len(s.epochs))
		for ep, ec := range s.epochs {
			c.epochs[ep] = &epochCount{
				visits:  ec.visits,
				calls:   ec.calls,
				callers: cloneSet(ec.callers),
				sites:   cloneSet(ec.sites),
			}
		}
	}
	return c
}

func cloneSet(src map[string]bool) map[string]bool {
	out := make(map[string]bool, len(src))
	for k := range src {
		out[k] = true
	}
	return out
}

func cloneSiteSets(src map[string]siteSet) map[string]siteSet {
	out := make(map[string]siteSet, len(src))
	for k, set := range src {
		out[k] = cloneSet(set)
	}
	return out
}

// LiveSnapshotVersion is the `<journal>.idx` schema version.
const LiveSnapshotVersion = 1

// IndexSnapshotPath derives the serialized-index sidecar path for a
// journal.
func IndexSnapshotPath(journalPath string) string { return journalPath + ".idx" }

// RemoveIndexSnapshot deletes a journal's index snapshot if present.
func RemoveIndexSnapshot(journalPath string) {
	os.Remove(IndexSnapshotPath(journalPath))
}

// liveSnapshot is the serialized form of a LiveIndex, written beside the
// journal at every checkpoint. Everything is a JSON map or counter —
// encoding/json sorts map keys, so the bytes are deterministic for a
// given accumulator state. The header ties the snapshot to one exact
// committed journal state (records + payload CRC) and to the allow-list
// the classification was folded against; any mismatch on load degrades
// the reader to a full scan, mirroring the manifest's
// accelerator-never-authority contract.
type liveSnapshot struct {
	Version      int    `json:"version"`
	Journal      string `json:"journal"`
	Records      int64  `json:"records"`
	PayloadCRC   uint32 `json:"payload_crc"`
	AllowlistCRC uint32 `json:"allowlist_crc"`
	Visits       int    `json:"visits"`

	Called  map[dataset.Phase]map[string]siteSet `json:"called"`
	Present map[dataset.Phase]map[string]siteSet `json:"present"`
	Allowed map[string]bool                      `json:"allowed"`

	Attempted     siteSet            `json:"attempted"`
	Visited       siteSet            `json:"visited"`
	Accepted      siteSet            `json:"accepted"`
	ThirdParties  map[string]bool    `json:"third_parties"`
	DAASites      siteSet            `json:"daa_sites"`
	AALegitCalled map[string]siteSet `json:"aa_legit_called"`
	Banners       int                `json:"banners"`

	Retries       int              `json:"retries"`
	CircuitOpens  int              `json:"circuit_opens"`
	RelAttempted  int              `json:"rel_attempted"`
	RelSucceeded  int              `json:"rel_succeeded"`
	RelFailed     int              `json:"rel_failed"`
	PartialVisits int              `json:"partial_visits"`
	ByClass       map[string]int   `json:"by_class"`
	Ranks         map[int]rankSnap `json:"ranks"`
	MaxRank       int              `json:"max_rank"`

	AnomCalls int     `json:"anom_calls"`
	SameSLD   int     `json:"same_sld"`
	JSCalls   int     `json:"js_calls"`
	AnomCPs   siteSet `json:"anom_cps"`
	AnomSites siteSet `json:"anom_sites"`
	GTMSites  siteSet `json:"gtm_sites"`

	F7Total    int           `json:"f7_total"`
	F7Quest    int           `json:"f7_quest"`
	SitesByCMP stats.Counter `json:"sites_by_cmp"`
	QuestByCMP stats.Counter `json:"quest_by_cmp"`

	ByPhase     map[dataset.Phase]map[dataset.CallType]int `json:"by_phase"`
	LegitByType map[dataset.CallType]int                   `json:"legit_by_type"`
	AnomByType  map[dataset.CallType]int                   `json:"anom_by_type"`
	PerCP       map[string]map[dataset.CallType]int        `json:"per_cp"`

	LangVisited    int           `json:"lang_visited"`
	LangNoBanner   int           `json:"lang_no_banner"`
	LangMissed     int           `json:"lang_missed"`
	AcceptedByLang stats.Counter `json:"accepted_by_lang"`

	Epochs map[int]epochSnap `json:"epochs"`
}

type rankSnap struct {
	Attempted int `json:"a"`
	Succeeded int `json:"s"`
}

type epochSnap struct {
	Visits  int             `json:"visits"`
	Calls   int             `json:"calls"`
	Callers map[string]bool `json:"callers"`
	Sites   siteSet         `json:"sites"`
}

// allowlistCRC fingerprints the allow-list a fold classified against, so
// a snapshot folded under one list is never finalized under another.
func allowlistCRC(allow *attestation.Allowlist) uint32 {
	if allow == nil {
		return 0
	}
	var crc uint32
	for _, d := range allow.Domains() {
		crc = crc32.Update(crc, crc32.IEEETable, []byte(d))
		crc = crc32.Update(crc, crc32.IEEETable, []byte{'\n'})
	}
	return crc
}

// snapshot assembles the serialized form. The maps are shared with the
// accumulator (encoding reads, never writes), so building it is O(1)
// in the dataset and the encode is O(index).
func (l *LiveIndex) snapshot(ck durable.Checkpoint) *liveSnapshot {
	s := l.agg
	snap := &liveSnapshot{
		Version:      LiveSnapshotVersion,
		Records:      ck.Records,
		PayloadCRC:   ck.PayloadCRC,
		AllowlistCRC: allowlistCRC(l.in.Allowlist),
		Visits:       l.visits,

		Called:  s.called,
		Present: s.present,
		Allowed: make(map[string]bool, len(s.callers)),

		Attempted:     s.attempted,
		Visited:       s.visited,
		Accepted:      s.accepted,
		ThirdParties:  s.thirdParties,
		DAASites:      s.daaSites,
		AALegitCalled: s.aaLegitCalled,
		Banners:       s.banners,

		Retries:       s.retries,
		CircuitOpens:  s.circuitOpens,
		RelAttempted:  s.relAttempted,
		RelSucceeded:  s.relSucceeded,
		RelFailed:     s.relFailed,
		PartialVisits: s.partialVisits,
		ByClass:       s.byClass,
		Ranks:         make(map[int]rankSnap, len(s.ranks)),
		MaxRank:       s.maxRank,

		AnomCalls: s.anomCalls,
		SameSLD:   s.sameSLD,
		JSCalls:   s.jsCalls,
		AnomCPs:   s.anomCPs,
		AnomSites: s.anomSites,
		GTMSites:  s.gtmSites,

		F7Total:    s.f7Total,
		F7Quest:    s.f7Quest,
		SitesByCMP: s.sitesByCMP,
		QuestByCMP: s.questByCMP,

		ByPhase:     s.byPhase,
		LegitByType: s.legitByType,
		AnomByType:  s.anomByType,
		PerCP:       s.perCP,

		LangVisited:    s.langVisited,
		LangNoBanner:   s.langNoBanner,
		LangMissed:     s.langMissed,
		AcceptedByLang: s.acceptedByLang,

		Epochs: make(map[int]epochSnap, len(s.epochs)),
	}
	for caller, facts := range s.callers {
		snap.Allowed[caller] = facts.allowed
	}
	for rank, rc := range s.ranks {
		snap.Ranks[rank] = rankSnap{Attempted: rc.attempted, Succeeded: rc.succeeded}
	}
	for ep, ec := range s.epochs {
		snap.Epochs[ep] = epochSnap{Visits: ec.visits, Calls: ec.calls, Callers: ec.callers, Sites: ec.sites}
	}
	return snap
}

// decodeLiveSnapshot strictly decodes and validates snapshot bytes.
func decodeLiveSnapshot(data []byte) (*liveSnapshot, error) {
	var snap liveSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("analysis: index snapshot: %w", err)
	}
	if snap.Version != LiveSnapshotVersion {
		return nil, fmt.Errorf("analysis: index snapshot: unsupported version %d", snap.Version)
	}
	if snap.Records < 0 || snap.Visits < 0 {
		return nil, fmt.Errorf("analysis: index snapshot: negative record count")
	}
	if snap.Records == 0 && snap.Visits > 0 {
		return nil, fmt.Errorf("analysis: index snapshot: %d visits with zero committed records", snap.Visits)
	}
	return &snap, nil
}

// StoreSnapshot atomically writes the accumulator's serialized form
// beside the journal, tied to the given committed checkpoint.
func (l *LiveIndex) StoreSnapshot(journalPath string, ck durable.Checkpoint) error {
	snap := l.snapshot(ck)
	snap.Journal = filepath.Base(journalPath)
	return durable.WriteFileAtomicFS(l.in.FS, IndexSnapshotPath(journalPath), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(snap)
	})
}

// restore rebuilds the accumulator from a decoded snapshot. Maps absent
// from the file stay as newIndexShard's empty ones.
func restoreLiveIndex(in *Input, snap *liveSnapshot) *LiveIndex {
	l := NewLiveIndex(in)
	s := l.agg
	l.visits = snap.Visits

	for phase, sets := range snap.Called {
		s.called[phase] = sets
	}
	for phase, sets := range snap.Present {
		s.present[phase] = sets
	}
	for caller, allowed := range snap.Allowed {
		s.callers[caller] = callerFacts{allowed: allowed}
	}
	if snap.Attempted != nil {
		s.attempted = snap.Attempted
	}
	if snap.Visited != nil {
		s.visited = snap.Visited
	}
	if snap.Accepted != nil {
		s.accepted = snap.Accepted
	}
	if snap.ThirdParties != nil {
		s.thirdParties = snap.ThirdParties
	}
	if snap.DAASites != nil {
		s.daaSites = snap.DAASites
	}
	if snap.AALegitCalled != nil {
		s.aaLegitCalled = snap.AALegitCalled
	}
	s.banners = snap.Banners

	s.retries = snap.Retries
	s.circuitOpens = snap.CircuitOpens
	s.relAttempted = snap.RelAttempted
	s.relSucceeded = snap.RelSucceeded
	s.relFailed = snap.RelFailed
	s.partialVisits = snap.PartialVisits
	if snap.ByClass != nil {
		s.byClass = snap.ByClass
	}
	for rank, rc := range snap.Ranks {
		s.ranks[rank] = &rankCount{attempted: rc.Attempted, succeeded: rc.Succeeded}
	}
	s.maxRank = snap.MaxRank

	s.anomCalls = snap.AnomCalls
	s.sameSLD = snap.SameSLD
	s.jsCalls = snap.JSCalls
	if snap.AnomCPs != nil {
		s.anomCPs = snap.AnomCPs
	}
	if snap.AnomSites != nil {
		s.anomSites = snap.AnomSites
	}
	if snap.GTMSites != nil {
		s.gtmSites = snap.GTMSites
	}

	s.f7Total = snap.F7Total
	s.f7Quest = snap.F7Quest
	if snap.SitesByCMP != nil {
		s.sitesByCMP = snap.SitesByCMP
	}
	if snap.QuestByCMP != nil {
		s.questByCMP = snap.QuestByCMP
	}

	if snap.ByPhase != nil {
		s.byPhase = snap.ByPhase
	}
	if snap.LegitByType != nil {
		s.legitByType = snap.LegitByType
	}
	if snap.AnomByType != nil {
		s.anomByType = snap.AnomByType
	}
	if snap.PerCP != nil {
		s.perCP = snap.PerCP
	}

	s.langVisited = snap.LangVisited
	s.langNoBanner = snap.LangNoBanner
	s.langMissed = snap.LangMissed
	if snap.AcceptedByLang != nil {
		s.acceptedByLang = snap.AcceptedByLang
	}

	if len(snap.Epochs) > 0 {
		s.epochs = make(map[int]*epochCount, len(snap.Epochs))
		for ep, ec := range snap.Epochs {
			callers := ec.Callers
			if callers == nil {
				callers = make(map[string]bool)
			}
			sites := ec.Sites
			if sites == nil {
				sites = make(siteSet)
			}
			s.epochs[ep] = &epochCount{visits: ec.Visits, calls: ec.Calls, callers: callers, sites: sites}
		}
	}
	return l
}

// SnapshotInfo describes a restored index snapshot.
type SnapshotInfo struct {
	// Records/PayloadCRC are the committed journal state the snapshot
	// covers.
	Records    int64
	PayloadCRC uint32
	// Visits is how many records were folded into it.
	Visits int
}

// LoadIndexSnapshot restores the live index a previous run serialized
// beside the journal. It is an accelerator with the manifest's
// contract: missing, unreadable, corrupt, version-skewed files — or a
// snapshot tied to a different journal name, a different committed
// state than the current manifest, or a different allow-list — all
// return nil, and the caller falls back to folding from byte 0. It
// never errors.
func LoadIndexSnapshot(journalPath string, in *Input) (*LiveIndex, *SnapshotInfo) {
	m := durable.LoadManifestFS(in.FS, journalPath)
	if m == nil {
		return nil, nil
	}
	fsys := in.FS
	if fsys == nil {
		fsys = durable.OS
	}
	data, err := fsys.ReadFile(IndexSnapshotPath(journalPath))
	if err != nil {
		return nil, nil
	}
	snap, err := decodeLiveSnapshot(data)
	if err != nil {
		return nil, nil
	}
	if snap.Journal != filepath.Base(journalPath) {
		return nil, nil
	}
	if snap.Records != m.Records || snap.PayloadCRC != m.PayloadCRC {
		return nil, nil
	}
	if snap.AllowlistCRC != allowlistCRC(in.Allowlist) {
		return nil, nil
	}
	return restoreLiveIndex(in, snap), &SnapshotInfo{
		Records:    snap.Records,
		PayloadCRC: snap.PayloadCRC,
		Visits:     snap.Visits,
	}
}

// LiveStats reports how a live index was (re)assembled and what it cost
// in journal bytes — the O(tail + snapshot) guarantee the tests pin.
type LiveStats struct {
	// SnapshotRestored reports whether the serialized index was usable;
	// false means the reader degraded to a full scan.
	SnapshotRestored bool
	// SnapshotRecords is the committed record count the restored
	// snapshot covered (0 when none).
	SnapshotRecords int64
	// TailRecords counts the records folded from the journal itself.
	TailRecords int64
	// BytesRead is the raw journal bytes read off disk.
	BytesRead int64
	// Truncated reports a torn tail after the last valid record.
	Truncated bool
}

// LoadLiveIndex assembles the fold accumulator for a (possibly still
// growing) journal: restore the checkpoint snapshot and fold only the
// tail past the committed offset — O(tail + snapshot) bytes — or
// degrade to a full folding scan when the snapshot is unusable. The
// returned accumulator is not finalized: call Callers() to run the
// attestation sweep, then Snapshot(in) against an input carrying the
// checks. LoadLive wraps both steps when the input is already complete.
func LoadLiveIndex(journalPath string, in *Input) (*LiveIndex, *LiveStats, error) {
	st := &LiveStats{}
	live, info := LoadIndexSnapshot(journalPath, in)
	var offset int64
	if live != nil {
		st.SnapshotRestored = true
		st.SnapshotRecords = info.Records
		// The manifest validated against the snapshot moments ago; a
		// racing checkpoint can only move it forward, and folding from
		// the snapshot's own committed offset stays correct either way.
		if m := durable.LoadManifest(journalPath); m != nil && m.Records == info.Records {
			offset = m.Offset
		}
	}
	if live == nil {
		live = NewLiveIndex(in)
	}
	if offset == 0 && st.SnapshotRestored {
		// Snapshot usable but its offset unknown (manifest raced away):
		// degrade to the full scan rather than double-fold.
		live = NewLiveIndex(in)
		st.SnapshotRestored = false
		st.SnapshotRecords = 0
	}

	rc, cr, err := durable.OpenTail(journalPath, offset)
	if err != nil {
		return nil, nil, err
	}
	defer rc.Close()
	scan, err := durable.ScanRecords(rc, func(payload []byte) error {
		var v dataset.Visit
		if uerr := json.Unmarshal(payload, &v); uerr != nil {
			return fmt.Errorf("analysis: decoding journal record: %w", uerr)
		}
		live.Fold(&v)
		st.TailRecords++
		return nil
	})
	st.BytesRead = cr.BytesRead()
	if err != nil {
		return nil, nil, err
	}
	st.Truncated = scan.Truncated
	in.Metrics.Add("analysis_live_tail_records_total", st.TailRecords)
	return live, st, nil
}

// LoadLive assembles and finalizes the analysis index for a journal in
// O(tail + snapshot) bytes (see LoadLiveIndex). The returned Index is
// finalized against in (allow-list block, attestation checks) and
// equals what BuildIndex over the journal's full record stream builds;
// adopt it with in.AdoptIndex to serve Compute*/Run queries.
func LoadLive(journalPath string, in *Input) (*Index, *LiveStats, error) {
	live, st, err := LoadLiveIndex(journalPath, in)
	if err != nil {
		return nil, nil, err
	}
	return live.Snapshot(in), st, nil
}

// LiveSink is the fold consumer hooked into the crawler's rank-ordered
// sink: it implements dataset.VisitObserver, folding every appended
// record into a LiveIndex and serializing the accumulator beside the
// journal at every committed checkpoint. The snapshot write rides the
// same cadence as the manifest, so `<out>.idx` always describes a state
// the manifest can vouch for.
type LiveSink struct {
	path string
	idx  *LiveIndex
}

// NewLiveSink returns a sink for a fresh journal.
func NewLiveSink(journalPath string, in *Input) *LiveSink {
	return &LiveSink{path: journalPath, idx: NewLiveIndex(in)}
}

// OpenLiveSink returns a sink for a journal about to be resumed:
// restore the snapshot when it matches the manifest (O(snapshot)), else
// fold the committed prefix from byte 0 (the degrade path — salvage,
// never error). Records past the committed checkpoint are NOT folded
// here: ResumeJournal re-appends the kept tail groups through the
// observer, which is where they reach the sink.
func OpenLiveSink(journalPath string, in *Input) (*LiveSink, *LiveStats, error) {
	st := &LiveStats{}
	if live, info := LoadIndexSnapshot(journalPath, in); live != nil {
		st.SnapshotRestored = true
		st.SnapshotRecords = info.Records
		in.Metrics.Add("analysis_index_snapshots_restored_total", 1)
		return &LiveSink{path: journalPath, idx: live}, st, nil
	}
	live := NewLiveIndex(in)
	m := durable.LoadManifest(journalPath)
	if m == nil || m.Records == 0 {
		// Nothing committed (or no usable manifest, in which case the
		// resume's own salvaging scan replays everything through the
		// observer): start empty.
		return &LiveSink{path: journalPath, idx: live}, st, nil
	}
	rc, cr, err := durable.OpenTail(journalPath, 0)
	if err != nil {
		return nil, nil, err
	}
	defer rc.Close()
	_, err = durable.ScanRecords(rc, func(payload []byte) error {
		if int64(live.visits) >= m.Records {
			return nil
		}
		var v dataset.Visit
		if uerr := json.Unmarshal(payload, &v); uerr != nil {
			return fmt.Errorf("analysis: decoding journal record: %w", uerr)
		}
		live.Fold(&v)
		st.TailRecords++
		return nil
	})
	st.BytesRead = cr.BytesRead()
	if err != nil {
		return nil, nil, err
	}
	in.Metrics.Add("analysis_index_snapshot_rebuilds_total", 1)
	return &LiveSink{path: journalPath, idx: live}, st, nil
}

// Live returns the sink's accumulator.
func (s *LiveSink) Live() *LiveIndex { return s.idx }

// ObserveVisit folds one appended record.
func (s *LiveSink) ObserveVisit(v *dataset.Visit) {
	s.idx.Fold(v)
	s.idx.in.Metrics.Add("analysis_live_visits_folded_total", 1)
}

// ObserveCheckpoint serializes the accumulator for the committed state.
// A sink attached mid-journal (fold count out of step with the commit)
// writes nothing — a snapshot must never describe records it did not
// fold. The snapshot is an accelerator: a storage fault while writing
// it is counted and absorbed (readers degrade to a full fold), never
// surfaced as a checkpoint failure.
func (s *LiveSink) ObserveCheckpoint(ck durable.Checkpoint) error {
	if int64(s.idx.visits) != ck.Records {
		return nil
	}
	if err := s.idx.StoreSnapshot(s.path, ck); err != nil {
		s.idx.in.Metrics.Add("storage_accelerator_write_failures_total", 1, "artifact", "snapshot")
		return nil
	}
	s.idx.in.Metrics.Add("analysis_index_snapshots_written_total", 1)
	return nil
}
