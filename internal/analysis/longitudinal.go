package analysis

import (
	"math"
	"sort"
	"strings"

	"github.com/netmeasure/topicscope/internal/stats"
)

// Longitudinal compares the A/B enabled rates of two crawls of the same
// site population at different times (experiment L1). §6 notes the study
// is a snapshot and "measurements should be conducted continuously";
// §3's repeated tests predict the population-level rates stay at the
// predetermined fractions while the per-site ON/OFF assignments rotate.
type Longitudinal struct {
	Rows []LongitudinalRow
}

// LongitudinalRow compares one CP across the two crawls.
type LongitudinalRow struct {
	CP string
	// RateA and RateB are the enabled rates in each crawl.
	RateA, RateB float64
	// PresentA/B are the presence denominators.
	PresentA, PresentB int
	// Drift is |RateA - RateB|.
	Drift float64
}

// CompareEnabledRates builds the comparison from two Figure 3 runs over
// the same world at different times.
func CompareEnabledRates(a, b *Figure3) *Longitudinal {
	byCP := make(map[string]EnabledRate, len(b.Rows))
	for _, r := range b.Rows {
		byCP[r.CP] = r
	}
	l := &Longitudinal{}
	for _, ra := range a.Rows {
		rb, ok := byCP[ra.CP]
		if !ok {
			continue
		}
		l.Rows = append(l.Rows, LongitudinalRow{
			CP:       ra.CP,
			RateA:    ra.Rate,
			RateB:    rb.Rate,
			PresentA: ra.Present,
			PresentB: rb.Present,
			Drift:    math.Abs(ra.Rate - rb.Rate),
		})
	}
	sort.Slice(l.Rows, func(i, j int) bool { return l.Rows[i].CP < l.Rows[j].CP })
	return l
}

// MaxDrift is the largest per-CP rate change between the crawls.
func (l *Longitudinal) MaxDrift() float64 {
	var m float64
	for _, r := range l.Rows {
		if r.Drift > m {
			m = r.Drift
		}
	}
	return m
}

// Render prints the comparison.
func (l *Longitudinal) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "L1 — Enabled rates across two crawl snapshots (§3/§6)",
		Headers: []string{"calling party", "rate t0", "rate t1", "drift"},
	}
	for _, r := range l.Rows {
		t.AddRow(r.CP, stats.Pct(r.RateA), stats.Pct(r.RateB), stats.Pct(r.Drift))
	}
	b.WriteString(t.Render())
	b.WriteString("max drift: " + stats.Pct(l.MaxDrift()) + " — population rates hold while per-site assignments rotate\n")
	return b.String()
}
