package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/netmeasure/topicscope/internal/stats"
)

// Trajectory is the live form of experiment L1: the campaign bucketed
// into virtual weeks as it unfolds. The buckets are folded into the
// index one record at a time (indexShard.add), so a live index renders
// the trajectory mid-campaign from the latest snapshot, without a
// second crawl or an O(dataset) re-scan — §6's continuous monitoring as
// a by-product of the incremental fold.
type Trajectory struct {
	Rows []EpochRow `json:"rows,omitempty"`
}

// EpochRow is one virtual week of the campaign.
type EpochRow struct {
	// Epoch is the bucket ordinal: FetchedAt seconds / one week.
	Epoch int `json:"epoch"`
	// Start is the UTC start of the bucket.
	Start time.Time `json:"start"`
	// Visits and Calls count records and Topics API invocations whose
	// FetchedAt falls in the bucket.
	Visits int `json:"visits"`
	Calls  int `json:"calls"`
	// ActiveCallers is the number of distinct calling parties observed.
	ActiveCallers int `json:"activeCallers"`
	// SitesWithCall is the number of distinct After-Accept sites with at
	// least one call.
	SitesWithCall int `json:"sitesWithCall"`
}

// assembleTrajectory orders the per-epoch fold buckets into rows.
func assembleTrajectory(epochs map[int]*epochCount) Trajectory {
	tr := Trajectory{}
	keys := make([]int, 0, len(epochs))
	for ep := range epochs {
		keys = append(keys, ep)
	}
	sort.Ints(keys)
	for _, ep := range keys {
		ec := epochs[ep]
		tr.Rows = append(tr.Rows, EpochRow{
			Epoch:         ep,
			Start:         time.Unix(int64(ep)*epochSeconds, 0).UTC(),
			Visits:        ec.visits,
			Calls:         ec.calls,
			ActiveCallers: len(ec.callers),
			SitesWithCall: len(ec.sites),
		})
	}
	return tr
}

// ComputeTrajectory returns the campaign's virtual-week trajectory from
// the index (a defensive copy, like every Compute*).
func ComputeTrajectory(in *Input) *Trajectory {
	idx := in.Index()
	out := &Trajectory{Rows: append([]EpochRow(nil), idx.trajectory.Rows...)}
	return out
}

// Render prints the trajectory.
func (tr *Trajectory) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "L1 — Campaign trajectory by virtual week (§6 continuous monitoring)",
		Headers: []string{"week of", "visits", "calls", "active CPs", "D_AA sites w/ call"},
	}
	for _, r := range tr.Rows {
		t.AddRow(r.Start.Format("2006-01-02"), r.Visits, r.Calls, r.ActiveCallers, r.SitesWithCall)
	}
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "%d weeks observed\n", len(tr.Rows))
	return b.String()
}

// Longitudinal compares the A/B enabled rates of two crawls of the same
// site population at different times (experiment L1). §6 notes the study
// is a snapshot and "measurements should be conducted continuously";
// §3's repeated tests predict the population-level rates stay at the
// predetermined fractions while the per-site ON/OFF assignments rotate.
type Longitudinal struct {
	Rows []LongitudinalRow
}

// LongitudinalRow compares one CP across the two crawls.
type LongitudinalRow struct {
	CP string
	// RateA and RateB are the enabled rates in each crawl.
	RateA, RateB float64
	// PresentA/B are the presence denominators.
	PresentA, PresentB int
	// Drift is |RateA - RateB|.
	Drift float64
}

// CompareEnabledRates builds the comparison from two Figure 3 runs over
// the same world at different times.
func CompareEnabledRates(a, b *Figure3) *Longitudinal {
	byCP := make(map[string]EnabledRate, len(b.Rows))
	for _, r := range b.Rows {
		byCP[r.CP] = r
	}
	l := &Longitudinal{}
	for _, ra := range a.Rows {
		rb, ok := byCP[ra.CP]
		if !ok {
			continue
		}
		l.Rows = append(l.Rows, LongitudinalRow{
			CP:       ra.CP,
			RateA:    ra.Rate,
			RateB:    rb.Rate,
			PresentA: ra.Present,
			PresentB: rb.Present,
			Drift:    math.Abs(ra.Rate - rb.Rate),
		})
	}
	sort.Slice(l.Rows, func(i, j int) bool { return l.Rows[i].CP < l.Rows[j].CP })
	return l
}

// MaxDrift is the largest per-CP rate change between the crawls.
func (l *Longitudinal) MaxDrift() float64 {
	var m float64
	for _, r := range l.Rows {
		if r.Drift > m {
			m = r.Drift
		}
	}
	return m
}

// Render prints the comparison.
func (l *Longitudinal) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "L1 — Enabled rates across two crawl snapshots (§3/§6)",
		Headers: []string{"calling party", "rate t0", "rate t1", "drift"},
	}
	for _, r := range l.Rows {
		t.AddRow(r.CP, stats.Pct(r.RateA), stats.Pct(r.RateB), stats.Pct(r.Drift))
	}
	b.WriteString(t.Render())
	b.WriteString("max drift: " + stats.Pct(l.MaxDrift()) + " — population rates hold while per-site assignments rotate\n")
	return b.String()
}
