package analysis

import (
	"context"
	"strings"
	"sync"
	"testing"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/crawler"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/webserver"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// The package test fixture: one mid-sized crawl shared by all
// experiment tests. Statistical assertions use bands scaled to this
// size; EXPERIMENTS.md records the full 50k-site run.
const fixtureSites = 9000

var (
	fixtureOnce sync.Once
	fixture     *Input
)

func input(t *testing.T) *Input {
	t.Helper()
	fixtureOnce.Do(func() {
		world := webworld.Generate(webworld.Config{Seed: 7, NumSites: fixtureSites})
		server := webserver.New(world, nil)
		allow := attestation.NewAllowlist(world.Catalog.AllowedDomains()...)
		c := crawler.New(crawler.Config{
			Client:             server.Client(),
			ReferenceAllowlist: allow,
			Workers:            16,
			Collect:            true,
		})
		res, err := c.Run(context.Background(), world.List())
		if err != nil {
			panic(err)
		}
		domains := allow.Domains()
		domains = append(domains, crawler.CallerDomains(res.Data)...)
		recs := c.CheckAttestations(context.Background(), domains)
		fixture = &Input{
			Data:         res.Data,
			Allowlist:    allow,
			Attestations: dataset.AttestationIndex(recs),
		}
	})
	return fixture
}

func TestOverviewShape(t *testing.T) {
	o := ComputeOverview(input(t))
	t.Logf("\n%s", o.Render())
	if o.Attempted != fixtureSites {
		t.Errorf("attempted = %d", o.Attempted)
	}
	if share := float64(o.Visited) / float64(o.Attempted); share < 0.84 || share > 0.90 {
		t.Errorf("visited share %.3f, paper ≈0.868", share)
	}
	// Paper: ≈30% of visited sites yield an After-Accept visit.
	if o.AcceptShare < 0.22 || o.AcceptShare > 0.42 {
		t.Errorf("accept share %.3f, paper ≈0.34", o.AcceptShare)
	}
	// Paper: a legit call on 45% of D_AA sites ("one website every two").
	if o.LegitCallShare < 0.30 || o.LegitCallShare > 0.60 {
		t.Errorf("legit call share %.3f, paper ≈0.45", o.LegitCallShare)
	}
	if o.UniqueThirdParties < 2000 {
		t.Errorf("unique third parties %d, implausibly low", o.UniqueThirdParties)
	}
}

func TestTable1Shape(t *testing.T) {
	tb := ComputeTable1(input(t))
	t.Logf("\n%s", tb.Render())
	if tb.Allowed != 193 {
		t.Errorf("Allowed = %d, paper 193", tb.Allowed)
	}
	if tb.AllowedNotAttested != 12 {
		t.Errorf("Allowed&!Attested = %d, paper 12", tb.AllowedNotAttested)
	}
	if tb.AllowedAttested != 181 {
		t.Errorf("Allowed&Attested = %d, paper 181", tb.AllowedAttested)
	}
	// At 5k sites some ultra-low-reach callers never get observed; the
	// full 50k run converges to 47.
	if tb.AAAllowedAttested < 35 || tb.AAAllowedAttested > 47 {
		t.Errorf("D_AA A&A callers = %d, paper 47", tb.AAAllowedAttested)
	}
	if tb.AANotAllowedAttested != 1 {
		t.Errorf("D_AA !Allowed&Attested = %d, paper 1 (distillery.com)", tb.AANotAllowedAttested)
	}
	// ≈17.8% of D_AA sites host an anomalous first-party caller.
	daa := len(input(t).Data.SuccessfulSites(dataset.AfterAccept))
	share := float64(tb.AANotAllowed) / float64(daa)
	if share < 0.12 || share > 0.25 {
		t.Errorf("anomalous CP share %.3f of %d D_AA sites, paper 2,614/14,719≈0.18", share, daa)
	}
	if tb.BAAllowedAttested < 18 || tb.BAAllowedAttested > 28 {
		t.Errorf("D_BA A&A callers = %d, paper 28", tb.BAAllowedAttested)
	}
	// ≈3.0% of D_BA sites yield a not-allowed questionable caller.
	dba := len(input(t).Data.SuccessfulSites(dataset.BeforeAccept))
	bshare := float64(tb.BANotAllowed) / float64(dba)
	if bshare < 0.015 || bshare > 0.05 {
		t.Errorf("D_BA !Allowed share %.4f of %d, paper 1,308/43,405≈0.030", bshare, dba)
	}
}

func TestFigure2Shape(t *testing.T) {
	f := ComputeFigure2(input(t), 15)
	t.Logf("\n%s", f.Render())
	if len(f.Rows) != 15 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	byCP := map[string]CPPresence{}
	for _, r := range f.Rows {
		byCP[r.CP] = r
	}
	ga, dc, bing := byCP["google-analytics.com"], byCP["doubleclick.net"], byCP["bing.com"]
	if !(ga.Present > dc.Present && dc.Present > bing.Present) {
		t.Errorf("presence ordering broken: ga=%d dc=%d bing=%d", ga.Present, dc.Present, bing.Present)
	}
	if ga.Called != 0 {
		t.Errorf("google-analytics.com called %d times, paper: never", ga.Called)
	}
	if bing.Called != 0 {
		t.Errorf("bing.com called %d times, paper: never", bing.Called)
	}
	// doubleclick employs Topics on about one third of its sites.
	dcShare := float64(dc.Called) / float64(dc.Present)
	if dcShare < 0.25 || dcShare > 0.41 {
		t.Errorf("doubleclick call share %.3f, paper ≈1/3", dcShare)
	}
}

func TestFigure3Shape(t *testing.T) {
	f := ComputeFigure3(input(t), 12, 0)
	t.Logf("\n%s", f.Render())
	rates := map[string]float64{}
	for _, r := range f.Rows {
		rates[r.CP] = r.Rate
	}
	checks := []struct {
		cp     string
		lo, hi float64
	}{
		{"authorizedvault.com", 0.90, 1.00}, // "almost every time"
		{"criteo.com", 0.68, 0.82},          // 75%
		{"yandex.com", 0.50, 0.80},          // 66%
		{"doubleclick.net", 0.27, 0.40},     // ≈1/3
	}
	for _, c := range checks {
		got, ok := rates[c.cp]
		if !ok {
			t.Errorf("%s missing from Figure 3", c.cp)
			continue
		}
		if got < c.lo || got > c.hi {
			t.Errorf("%s enabled %.3f, want [%.2f, %.2f]", c.cp, got, c.lo, c.hi)
		}
	}
	if share := f.ClusteredShare(); share < 0.5 {
		t.Errorf("clustered share %.2f — rates should look predetermined", share)
	}
}

func TestAnomalyShape(t *testing.T) {
	a := ComputeAnomaly(input(t))
	t.Logf("\n%s", a.Render())
	if a.UniqueCPs == 0 || a.Calls < a.UniqueCPs {
		t.Fatalf("anomaly counts: %+v", a)
	}
	// §4: 72% of anomalous calls come from the visited site itself.
	if a.SameSecondLevelShare < 0.62 || a.SameSecondLevelShare > 0.82 {
		t.Errorf("same-second-level share %.3f, paper 0.72", a.SameSecondLevelShare)
	}
	// §4: all anomalous calls use the JavaScript API.
	if a.JavaScriptShare != 1.0 {
		t.Errorf("JavaScript share %.3f, paper 100%%", a.JavaScriptShare)
	}
	// §4: GTM on 95% of websites with anomalous calls.
	if a.GTMShare < 0.88 || a.GTMShare > 1.0 {
		t.Errorf("GTM share %.3f, paper 0.95", a.GTMShare)
	}
}

func TestFigure5Shape(t *testing.T) {
	f := ComputeFigure5(input(t), 15)
	t.Logf("\n%s", f.Render())
	if len(f.Rows) == 0 {
		t.Fatal("no questionable CPs")
	}
	for _, r := range f.Rows {
		if r.CP == "doubleclick.net" {
			t.Error("doubleclick.net must perform no Before-Accept calls")
		}
		if r.CP == "cpx.to" {
			t.Error("cpx.to is consent-aware in the catalog")
		}
	}
	// yandex.com leads despite moderate popularity.
	top3 := map[string]bool{}
	for i := 0; i < 3 && i < len(f.Rows); i++ {
		top3[f.Rows[i].CP] = true
	}
	if !top3["yandex.com"] {
		t.Errorf("yandex.com not among top questionable CPs: %+v", f.Rows[:3])
	}
}

func TestFigure6Shape(t *testing.T) {
	f := ComputeFigure6(input(t), []string{"yandex.com", "criteo.com", "taboola.com", "openx.net"})
	t.Logf("\n%s", f.Render())
	yx := f.Cells["yandex.com"]
	if yx[etld.RegionJapan].Present != 0 {
		t.Errorf("yandex present on %d .jp sites, Figure 6 shows none", yx[etld.RegionJapan].Present)
	}
	if yx[etld.RegionRussia].Present < 5*yx[etld.RegionEU].Present {
		t.Errorf("yandex .ru presence %d vs EU %d: should dominate",
			yx[etld.RegionRussia].Present, yx[etld.RegionEU].Present)
	}
	cr := f.Cells["criteo.com"]
	if cr[etld.RegionCom].Present == 0 || cr[etld.RegionEU].Present == 0 {
		t.Error("criteo should have a worldwide marketplace")
	}
	if cr[etld.RegionRussia].Present > cr[etld.RegionCom].Present/5 {
		t.Errorf("criteo .ru presence %d vs .com %d: should be marginal",
			cr[etld.RegionRussia].Present, cr[etld.RegionCom].Present)
	}
}

func TestFigure7Shape(t *testing.T) {
	f := ComputeFigure7(input(t))
	t.Logf("\n%s", f.Render())
	if len(f.Rows) != 15 {
		t.Fatalf("rows = %d, Figure 7 has 15 CMPs", len(f.Rows))
	}
	hub := f.OverRepresentation("HubSpot")
	live := f.OverRepresentation("LiveRamp")
	one := f.OverRepresentation("OneTrust")
	if hub < 1.4 {
		t.Errorf("HubSpot over-representation %.2f, paper ≈3×", hub)
	}
	if live < 1.25 {
		t.Errorf("LiveRamp over-representation %.2f, paper elevated", live)
	}
	if one > 1.3 {
		t.Errorf("OneTrust over-representation %.2f, should be ≈1", one)
	}
}

func TestEnrolmentShape(t *testing.T) {
	e := ComputeEnrolment(input(t))
	t.Logf("\n%s", e.Render())
	if got := e.First.Format("2006-01-02"); got != "2023-06-16" {
		t.Errorf("first attestation %s, paper 2023-06-16", got)
	}
	if pace := e.MonthlyPace(); pace < 8 || pace > 25 {
		t.Errorf("monthly pace %.1f, paper ≈a dozen", pace)
	}
	if e.Total != 182 {
		t.Errorf("attested total %d, want 182", e.Total)
	}
}

func TestReportRuns(t *testing.T) {
	r := Run(input(t))
	out := r.Render()
	for _, want := range []string{"T1 —", "F2 —", "F3 —", "A1 —", "F5 —", "F6 —", "F7 —", "E1 —", "D1 —"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
}

func TestAnalyzeAlternation(t *testing.T) {
	cases := []struct {
		name     string
		series   []bool
		periodic bool
	}{
		{"empty", nil, false},
		{"all on", []bool{true, true, true, true}, false},
		{"alternating runs", []bool{true, true, true, false, false, true, true, false, false}, true},
		{"noise", []bool{true, false, true, false, true}, false},
	}
	for _, c := range cases {
		a := AnalyzeAlternation(c.series)
		if a.Periodic() != c.periodic {
			t.Errorf("%s: periodic = %v, want %v (%+v)", c.name, a.Periodic(), c.periodic, a)
		}
	}
	a := AnalyzeAlternation([]bool{true, true, false, false, false, true})
	if a.Transitions != 2 || a.LongestOnRun != 2 || a.LongestOffRun != 3 {
		t.Errorf("run accounting wrong: %+v", a)
	}
	if a.OnFraction != 0.5 {
		t.Errorf("on fraction %.2f", a.OnFraction)
	}
}

func TestNearestCluster(t *testing.T) {
	cases := []struct {
		rate float64
		want float64
	}{
		{0.74, 0.75}, {0.33, 0.33}, {0.98, 1.00}, {0.10, -1}, {0.58, -1}, {0.52, 0.50},
	}
	for _, c := range cases {
		if got := NearestCluster(c.rate); got != c.want {
			t.Errorf("NearestCluster(%.2f) = %.2f, want %.2f", c.rate, got, c.want)
		}
	}
}
