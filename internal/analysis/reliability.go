package analysis

import (
	"strings"

	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/stats"
)

// The paper's §2.4 visit-success figures: 43,405 of the top-50,000
// sites answered, the rest were lost to DNS/connection errors.
const (
	PaperAttempted = 50000
	PaperSucceeded = 43405
)

// Reliability reproduces the crawl's loss shape (experiment D1r):
// attempted/succeeded/failed Before-Accept visits, failures by error
// class, success by rank decile, and the resilience layer's recovery
// counters — paper vs measured.
type Reliability struct {
	Attempted, Succeeded, Failed int
	SuccessRate                  float64
	// ByClass breaks the failures down by taxonomy class.
	ByClass map[string]int
	// Deciles holds success rates per rank decile (1 = top 10% of the
	// list); a real crawl loses more of the tail than of the head.
	Deciles []ReliabilityDecile
	// Retries counts extra attempts the resilience layer spent;
	// PartialVisits counts successful visits degraded by failed
	// subresources; CircuitOpens counts breaker-short-circuited
	// requests.
	Retries, PartialVisits, CircuitOpens int
}

// ReliabilityDecile is one rank-decile row.
type ReliabilityDecile struct {
	Decile, Attempted, Succeeded int
	SuccessRate                  float64
}

// ComputeReliability runs experiment D1r.
func ComputeReliability(in *Input) *Reliability {
	r := in.Index().reliability
	r.ByClass = copyStringCounts(r.ByClass)
	r.Deciles = append([]ReliabilityDecile(nil), r.Deciles...)
	return &r
}

// decileOf maps a 1-based rank onto a 0-based decile index.
func decileOf(rank, maxRank int) int {
	if maxRank <= 0 {
		return 0
	}
	d := (rank - 1) * 10 / maxRank
	if d > 9 {
		d = 9
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Render prints the reliability tables.
func (r *Reliability) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "D1r — Visit reliability (§2.4)",
		Headers: []string{"metric", "paper", "measured"},
	}
	t.AddRow("sites attempted", PaperAttempted, r.Attempted)
	t.AddRow("sites visited", PaperSucceeded, r.Succeeded)
	t.AddRow("visit-success rate",
		stats.Pct(stats.Share(PaperSucceeded, PaperAttempted)),
		stats.Pct(r.SuccessRate))
	t.AddRow("sites failed", PaperAttempted-PaperSucceeded, r.Failed)
	b.WriteString(t.Render())

	tc := &stats.Table{
		Title:   "failures by error class",
		Headers: []string{"class", "sites", "share of failures"},
	}
	for _, c := range chaos.Classes {
		if n := r.ByClass[string(c)]; n > 0 {
			tc.AddRow(string(c), n, stats.Pct(stats.Share(n, r.Failed)))
		}
	}
	tc.AddRow("retries spent", r.Retries, "")
	tc.AddRow("partial visits", r.PartialVisits, "")
	tc.AddRow("circuit-open requests", r.CircuitOpens, "")
	b.WriteString("\n")
	b.WriteString(tc.Render())

	td := &stats.Table{
		Title:   "success by rank decile",
		Headers: []string{"decile", "attempted", "succeeded", "rate"},
	}
	for _, d := range r.Deciles {
		td.AddRow(d.Decile, d.Attempted, d.Succeeded, stats.Pct(d.SuccessRate))
	}
	b.WriteString("\n")
	b.WriteString(td.Render())
	return b.String()
}
