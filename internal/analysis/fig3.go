package analysis

import (
	"math"
	"strings"

	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/stats"
)

// EnabledRate is one bar of Figure 3: how often a CP invokes the Topics
// API over the sites it is present on, with the nearest canonical A/B
// fraction.
type EnabledRate struct {
	CP      string
	Present int
	Called  int
	Rate    float64
	// Cluster is the nearest of the fractions the paper highlights
	// (25/33/50/66/75/100%), or -1 when no cluster is within tolerance.
	Cluster float64
}

// Figure3 reproduces Figure 3: per-CP enabled percentages, which
// cluster around predetermined fractions — the signature of A/B tests.
type Figure3 struct {
	Rows []EnabledRate
	// MinPresence filtered out CPs seen on too few sites.
	MinPresence int
}

// abClusters are the fractions the paper highlights on the y-axis.
var abClusters = []float64{0.25, 0.33, 0.50, 0.66, 0.75, 1.00}

// clusterTolerance is how close a rate must be to count as clustered.
const clusterTolerance = 0.06

// NearestCluster maps a rate to the closest canonical A/B fraction, or
// -1 if none is within tolerance.
func NearestCluster(rate float64) float64 {
	best, dist := -1.0, clusterTolerance
	for _, c := range abClusters {
		if d := math.Abs(rate - c); d <= dist {
			best, dist = c, d
		}
	}
	return best
}

// ComputeFigure3 runs experiment F3 over Allowed & Attested callers
// present on at least minPresence D_AA sites; topN bounds the output
// (paper: 15), 0 means all.
func ComputeFigure3(in *Input, minPresence, topN int) *Figure3 {
	if minPresence <= 0 {
		minPresence = 20
	}
	idx := in.Index()
	present := idx.present[dataset.AfterAccept]
	called := idx.called[dataset.AfterAccept]

	f := &Figure3{MinPresence: minPresence}
	// The subjects are the Allowed & Attested callers seen in D_AA — the
	// keys of the After-Accept caller map, filtered by classification.
	for cp := range called {
		if facts := idx.callers[cp]; !facts.allowed || !facts.attested {
			continue
		}
		sites := present[cp]
		if len(sites) < minPresence {
			continue
		}
		row := EnabledRate{CP: cp, Present: len(sites)}
		for site := range called[cp] {
			if sites[site] {
				row.Called++
			}
		}
		row.Rate = stats.Share(row.Called, row.Present)
		row.Cluster = NearestCluster(row.Rate)
		f.Rows = append(f.Rows, row)
	}
	sortFigure3(f, topN)
	return f
}

// ClusteredShare is the fraction of CPs whose rate lies near a canonical
// A/B fraction — the paper's "percentages that look predetermined".
func (f *Figure3) ClusteredShare() float64 {
	if len(f.Rows) == 0 {
		return 0
	}
	n := 0
	for _, r := range f.Rows {
		if r.Cluster >= 0 {
			n++
		}
	}
	return stats.Share(n, len(f.Rows))
}

// Render prints the figure data.
func (f *Figure3) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "F3 — Topics enabled percentage per CP (Figure 3, D_AA, Allowed & Attested)",
		Headers: []string{"calling party", "present", "called", "enabled", "A/B cluster"},
	}
	for _, r := range f.Rows {
		cluster := "-"
		if r.Cluster >= 0 {
			cluster = stats.Pct(r.Cluster)
		}
		t.AddRow(r.CP, r.Present, r.Called, stats.Pct(r.Rate), cluster)
	}
	b.WriteString(t.Render())
	b.WriteString("clustered on canonical fractions: " + stats.Pct(f.ClusteredShare()) + "\n")
	return b.String()
}
