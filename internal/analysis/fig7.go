package analysis

import (
	"strings"

	"github.com/netmeasure/topicscope/internal/stats"
)

// CMPRow is one CMP of Figure 7 with the two probabilities the paper
// compares.
type CMPRow struct {
	CMP string
	// PCMP is P(CMP = x): the probability of observing the CMP over all
	// successfully visited websites (red bars).
	PCMP float64
	// PCMPGivenQuestionable is P(CMP = x | questionable call) (blue
	// bars).
	PCMPGivenQuestionable float64
	// PQuestionableGivenCMP is P(questionable | CMP = x), the quantity
	// behind the paper's "12%, twice as big as the average" HubSpot
	// remark.
	PQuestionableGivenCMP float64
	// Sites and QuestionableSites are the underlying counts.
	Sites             int
	QuestionableSites int
}

// Figure7 reproduces Figure 7: CMP probabilities conditioned on
// questionable Before-Accept calls.
//
// A "questionable call" here is a Before-Accept call by an allow-listed
// CP: that is the behaviour a correctly configured CMP would have
// prevented by gating the tag, which is exactly what the figure probes.
// (First-party GTM calls bypass CMP gating entirely and would only
// dilute the conditional; see EXPERIMENTS.md.)
type Figure7 struct {
	Rows []CMPRow
	// TotalSites / TotalQuestionable are the denominators.
	TotalSites        int
	TotalQuestionable int
	// AvgQuestionableRate is P(questionable) over all sites.
	AvgQuestionableRate float64
}

// ComputeFigure7 runs experiment F7 over the Before-Accept dataset.
func ComputeFigure7(in *Input) *Figure7 {
	f := in.Index().figure7
	f.Rows = append([]CMPRow(nil), f.Rows...)
	return &f
}

// OverRepresentation returns P(CMP|questionable)/P(CMP) for a CMP — the
// ratio that singles out HubSpot (≈3× in the paper) and LiveRamp.
func (f *Figure7) OverRepresentation(cmp string) float64 {
	for _, r := range f.Rows {
		if r.CMP == cmp {
			if r.PCMP == 0 {
				return 0
			}
			return r.PCMPGivenQuestionable / r.PCMP
		}
	}
	return 0
}

// Render prints the figure data.
func (f *Figure7) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "F7 — CMP probability given questionable calls (Figure 7, D_BA)",
		Headers: []string{"CMP", "P(CMP)", "P(CMP|quest)", "P(quest|CMP)", "sites", "quest"},
	}
	chart := &stats.BarChart{Title: "P(CMP|questionable) — compare with P(CMP)"}
	for _, r := range f.Rows {
		t.AddRow(r.CMP, stats.Pct(r.PCMP), stats.Pct(r.PCMPGivenQuestionable),
			stats.Pct(r.PQuestionableGivenCMP), r.Sites, r.QuestionableSites)
		chart.Add(r.CMP, r.PCMPGivenQuestionable, stats.Pct(r.PCMPGivenQuestionable)+" vs "+stats.Pct(r.PCMP))
	}
	b.WriteString(t.Render())
	b.WriteByte('\n')
	b.WriteString(chart.Render())
	b.WriteString("average P(questionable) = " + stats.Pct(f.AvgQuestionableRate) + "\n")
	return b.String()
}
