package analysis

import (
	"strings"

	"github.com/netmeasure/topicscope/internal/stats"
)

// Languages characterises the Priv-Accept consent interaction
// (experiment D2). §2.2: Priv-Accept "looks for keywords and supports
// five languages – i.e., English, French, Spanish, German and Italian"
// with 92–95% accuracy; §2.4 footnote: After-Accept visits fail when
// "the website does not implement any banner, or Priv-Accept misses
// language or keyword".
type Languages struct {
	// Visited is the number of successful Before-Accept visits.
	Visited int
	// NoBanner counts sites with no detected privacy banner.
	NoBanner int
	// AcceptedByLanguage counts accepted banners per detected language.
	AcceptedByLanguage stats.Counter
	// MissedBanner counts banners found whose accept control was not
	// recognised (unsupported language or unusual wording).
	MissedBanner int
}

// ComputeLanguages runs experiment D2 over Before-Accept visits.
func ComputeLanguages(in *Input) *Languages {
	l := in.Index().languages
	l.AcceptedByLanguage = copyCounter(l.AcceptedByLanguage)
	return &l
}

// AcceptRate is the share of visited sites ending with consent granted.
func (l *Languages) AcceptRate() float64 {
	return stats.Share(l.AcceptedByLanguage.Total(), l.Visited)
}

// MissRate is the share of banner sites Priv-Accept could not accept.
func (l *Languages) MissRate() float64 {
	banners := l.Visited - l.NoBanner
	return stats.Share(l.MissedBanner, banners)
}

// Render prints the breakdown.
func (l *Languages) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "D2 — Priv-Accept outcomes by language (§2.2)",
		Headers: []string{"outcome", "sites", "share"},
	}
	t.AddRow("no banner", l.NoBanner, stats.Pct(stats.Share(l.NoBanner, l.Visited)))
	t.AddRow("banner, not accepted", l.MissedBanner, stats.Pct(stats.Share(l.MissedBanner, l.Visited)))
	for _, kv := range l.AcceptedByLanguage.Sorted() {
		t.AddRow("accepted ("+kv.Key+")", kv.Count, stats.Pct(stats.Share(kv.Count, l.Visited)))
	}
	b.WriteString(t.Render())
	b.WriteString("accept rate: " + stats.Pct(l.AcceptRate()) +
		", banner miss rate: " + stats.Pct(l.MissRate()) + "\n")
	return b.String()
}
