package analysis

import (
	"strings"

	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/stats"
)

// RegionShare is one (CP, region) cell of Figure 6.
type RegionShare struct {
	// Present is the number of D_BA websites of this region embedding
	// the CP (the figure's top-axis numbers).
	Present int
	// Called is how many of those saw a Before-Accept call by the CP.
	Called int
}

// Share is the enabled percentage the figure plots.
func (r RegionShare) Share() float64 { return stats.Share(r.Called, r.Present) }

// Figure6 reproduces Figure 6: the share of websites where a CP calls
// the Topics API before consent, broken down by website TLD region, for
// the top questionable CPs.
type Figure6 struct {
	CPs     []string
	Regions []etld.Region
	// Cells[cp][region]
	Cells map[string]map[etld.Region]RegionShare
}

// ComputeFigure6 runs experiment F6 for the given CPs (pass nil to use
// the top-4 questionable CPs as the paper does).
func ComputeFigure6(in *Input, cps []string) *Figure6 {
	if cps == nil {
		f5 := ComputeFigure5(in, 4)
		for _, r := range f5.Rows {
			cps = append(cps, r.CP)
		}
	}
	idx := in.Index()
	present := idx.present[dataset.BeforeAccept]
	called := idx.called[dataset.BeforeAccept]

	f := &Figure6{CPs: cps, Regions: etld.Regions, Cells: make(map[string]map[etld.Region]RegionShare)}
	for _, cp := range cps {
		cells := make(map[etld.Region]RegionShare)
		for site := range present[cp] {
			region := idx.etld.RegionOf(site)
			c := cells[region]
			c.Present++
			if called[cp][site] {
				c.Called++
			}
			cells[region] = c
		}
		f.Cells[cp] = cells
	}
	return f
}

// Render prints the figure data.
func (f *Figure6) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "F6 — Before-Accept call share by website TLD region (Figure 6, D_BA)",
		Headers: []string{"calling party", "region", "embedded", "called", "share"},
	}
	for _, cp := range f.CPs {
		for _, region := range f.Regions {
			c := f.Cells[cp][region]
			t.AddRow(cp, region.String(), c.Present, c.Called, stats.Pct(c.Share()))
		}
	}
	b.WriteString(t.Render())
	return b.String()
}
