package analysis

import (
	"sort"
	"strconv"
	"strings"

	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/stats"
)

// CallTypes breaks the recorded Topics API invocations down by
// integration style (experiment X1). §2.2: the instrumentation logs
// "the API call type (JavaScript, Fetch or IFrame)"; §4 observes that
// every anomalous call uses the JavaScript function, while legitimate
// callers spread across the three integration styles of the official
// guide.
type CallTypes struct {
	// ByPhase[phase][type] counts calls.
	ByPhase map[dataset.Phase]map[dataset.CallType]int
	// LegitByType counts D_AA calls by Allowed callers per type.
	LegitByType map[dataset.CallType]int
	// AnomalousByType counts D_AA calls by not-Allowed callers per type.
	AnomalousByType map[dataset.CallType]int
	// DominantPerCP maps each Allowed caller to its most-used type.
	DominantPerCP map[string]dataset.CallType
}

// AllCallTypes lists the three integration styles in display order.
var AllCallTypes = []dataset.CallType{
	dataset.CallJavaScript, dataset.CallFetch, dataset.CallIframe,
}

// ComputeCallTypes runs experiment X1.
func ComputeCallTypes(in *Input) *CallTypes {
	pre := in.Index().callTypes
	ct := &CallTypes{
		ByPhase:         make(map[dataset.Phase]map[dataset.CallType]int, len(pre.ByPhase)),
		LegitByType:     copyTypeCounts(pre.LegitByType),
		AnomalousByType: copyTypeCounts(pre.AnomalousByType),
		DominantPerCP:   make(map[string]dataset.CallType, len(pre.DominantPerCP)),
	}
	for phase, types := range pre.ByPhase {
		ct.ByPhase[phase] = copyTypeCounts(types)
	}
	for cp, typ := range pre.DominantPerCP {
		ct.DominantPerCP[cp] = typ
	}
	return ct
}

// AnomalousJSShare returns the fraction of anomalous calls using the
// JavaScript style (§4: must be 1).
func (ct *CallTypes) AnomalousJSShare() float64 {
	total := 0
	for _, n := range ct.AnomalousByType {
		total += n
	}
	return stats.Share(ct.AnomalousByType[dataset.CallJavaScript], total)
}

// Render prints the breakdown.
func (ct *CallTypes) Render() string {
	var b strings.Builder
	t := &stats.Table{
		Title:   "X1 — Topics API call types (§2.2 instrumentation)",
		Headers: []string{"population", "javascript", "fetch", "iframe"},
	}
	for _, phase := range []dataset.Phase{dataset.BeforeAccept, dataset.AfterAccept} {
		row := ct.ByPhase[phase]
		t.AddRow(phase.DatasetName()+" (all)", row[dataset.CallJavaScript], row[dataset.CallFetch], row[dataset.CallIframe])
	}
	t.AddRow("D_AA Allowed", ct.LegitByType[dataset.CallJavaScript], ct.LegitByType[dataset.CallFetch], ct.LegitByType[dataset.CallIframe])
	t.AddRow("D_AA !Allowed", ct.AnomalousByType[dataset.CallJavaScript], ct.AnomalousByType[dataset.CallFetch], ct.AnomalousByType[dataset.CallIframe])
	b.WriteString(t.Render())

	cps := make([]string, 0, len(ct.DominantPerCP))
	for cp := range ct.DominantPerCP {
		cps = append(cps, cp)
	}
	sort.Strings(cps)
	counts := stats.Counter{}
	for _, cp := range cps {
		counts.Add(string(ct.DominantPerCP[cp]))
	}
	b.WriteString("dominant style across Allowed CPs: ")
	parts := make([]string, 0, 3)
	for _, kv := range counts.Sorted() {
		parts = append(parts, kv.Key+"="+strconv.Itoa(kv.Count))
	}
	b.WriteString(strings.Join(parts, " ") + "\n")
	return b.String()
}
