package fsck

import (
	"bytes"
	"testing"
)

// FuzzFsckReportDecode hardens the verify-report decoder: arbitrary
// bytes (a torn -json artifact, a bit-flipped report handed to a repair
// driver) must never panic it, and everything it accepts must satisfy
// the report invariants and survive an encode/decode round trip
// byte-identically — drivers act on repair windows, so an admitted
// report must mean exactly what it says.
func FuzzFsckReportDecode(f *testing.F) {
	seed := &Report{
		Journals: []JournalReport{
			{Journal: "crawl.jsonl.gz", FromRank: 1, ToRank: 100, Records: 320, Sites: 100, Clean: true},
			{
				Journal: "crawl.jsonl.gz.shard-1", FromRank: 101, ToRank: 200, Records: 80, Sites: 40,
				Findings: []Finding{{Artifact: "crawl.jsonl.gz.shard-1", Code: CodeCorruptRegion, Detail: "bad crc"}},
				Repair:   []Window{{From: 120, To: 140}, {From: 160, To: 200}},
			},
		},
		Strays:   []string{".crawl.jsonl.ckpt.tmp-91"},
		Findings: []Finding{{Artifact: ".crawl.jsonl.ckpt.tmp-91", Code: CodeStrayTemp}},
	}
	var buf bytes.Buffer
	if err := seed.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1,"journals":[],"clean":true}`))
	f.Add([]byte(`{"version":1,"journals":[{"journal":"j","from_rank":1,"to_rank":2,"records":0,"sites":0,"clean":false}],"clean":false}`))
	f.Add([]byte(`{"version":9}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReport(data)
		if err != nil {
			return
		}
		if rep == nil {
			t.Fatal("nil report without error")
		}
		for _, j := range rep.Journals {
			if j.Journal == "" || j.FromRank < 1 || j.ToRank < j.FromRank || j.Records < 0 || j.Sites < 0 {
				t.Fatalf("validator admitted malformed journal report: %+v", j)
			}
			prev := j.FromRank - 1
			for _, w := range j.Repair {
				if w.From <= prev || w.To < w.From || w.To > j.ToRank {
					t.Fatalf("validator admitted bad repair window %+v in %+v", w, j)
				}
				prev = w.To
			}
			if j.Clean && (len(j.Findings) > 0 || len(j.Repair) > 0) {
				t.Fatalf("validator admitted clean journal with findings: %+v", j)
			}
		}
		if rep.Clean {
			if len(rep.Findings) > 0 {
				t.Fatalf("validator admitted clean campaign with findings: %+v", rep.Findings)
			}
			for _, j := range rep.Journals {
				if !j.Clean {
					t.Fatal("validator admitted clean campaign with a dirty journal")
				}
			}
		}
		var first bytes.Buffer
		if err := rep.Encode(&first); err != nil {
			t.Fatalf("re-encoding an accepted report: %v", err)
		}
		back, err := DecodeReport(first.Bytes())
		if err != nil {
			t.Fatalf("our own encoding rejected: %v", err)
		}
		var second bytes.Buffer
		if err := back.Encode(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("encode/decode round trip is not a fixed point")
		}
	})
}
