package fsck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// ReportVersion is the fsck verify-report schema version.
const ReportVersion = 1

// Report is the campaign-wide verify outcome: one JournalReport per
// journal (shards in shard order), plus directory-level findings. Its
// JSON form is deterministic — artifacts are identified by base name
// and every list is emitted in a canonical order — so two fscks of the
// same campaign state produce identical bytes.
type Report struct {
	Version int `json:"version"`
	// Journals holds per-journal results in verification order.
	Journals []JournalReport `json:"journals"`
	// Strays lists leftover atomic-write temp files, sorted.
	Strays []string `json:"strays,omitempty"`
	// Findings holds campaign-level findings (report artifact, strays).
	Findings []Finding `json:"findings,omitempty"`
	// Clean means no findings and no repair windows anywhere.
	Clean bool `json:"clean"`
}

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	r.Version = ReportVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("fsck: encoding report: %w", err)
	}
	return nil
}

// DecodeReport strictly decodes and validates verify-report bytes —
// the tool-to-tool interface (topics-fsck -json feeds orchestration),
// so unknown fields, version skew and inconsistent windows are all
// rejected rather than absorbed.
func DecodeReport(data []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("fsck: report: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("fsck: report: trailing data")
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("fsck: report: unsupported version %d", r.Version)
	}
	for i := range r.Journals {
		j := &r.Journals[i]
		if j.Journal == "" {
			return nil, fmt.Errorf("fsck: report: journal %d unnamed", i)
		}
		if j.FromRank < 1 || j.ToRank < j.FromRank {
			return nil, fmt.Errorf("fsck: report: journal %s rank window [%d,%d] invalid", j.Journal, j.FromRank, j.ToRank)
		}
		if j.Records < 0 || j.Sites < 0 {
			return nil, fmt.Errorf("fsck: report: journal %s negative counts", j.Journal)
		}
		prevTo := j.FromRank - 1
		for _, w := range j.Repair {
			if w.From <= prevTo || w.To < w.From || w.To > j.ToRank {
				return nil, fmt.Errorf("fsck: report: journal %s repair window [%d,%d] invalid", j.Journal, w.From, w.To)
			}
			prevTo = w.To
		}
		if j.Clean && (len(j.Findings) > 0 || len(j.Repair) > 0) {
			return nil, fmt.Errorf("fsck: report: journal %s claims clean with findings", j.Journal)
		}
		for _, f := range j.Findings {
			if f.Artifact == "" || f.Code == "" {
				return nil, fmt.Errorf("fsck: report: journal %s finding missing artifact or code", j.Journal)
			}
		}
	}
	for _, f := range r.Findings {
		if f.Artifact == "" || f.Code == "" {
			return nil, fmt.Errorf("fsck: report: finding missing artifact or code")
		}
	}
	if r.Clean {
		if len(r.Findings) > 0 || len(r.Strays) > 0 {
			return nil, fmt.Errorf("fsck: report: claims clean with campaign findings")
		}
		for _, j := range r.Journals {
			if !j.Clean {
				return nil, fmt.Errorf("fsck: report: claims clean with dirty journal %s", j.Journal)
			}
		}
	}
	return &r, nil
}
