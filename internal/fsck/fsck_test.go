package fsck_test

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/netmeasure/topicscope/internal/analysis"
	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/crawler"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/fsck"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/webserver"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// The campaign every fsck test verifies and repairs. Chaos is on: the
// repair-parity invariant must hold under the paper-calibrated fault
// weather, not just on a sunny day.
const (
	fkSeed  = 5
	fkSites = 60
	fkEvery = 5
)

func testCampaign() *fsck.Campaign {
	return &fsck.Campaign{
		Seed:            fkSeed,
		Sites:           fkSites,
		Workers:         8,
		Chaos:           true,
		ChaosSeed:       fkSeed,
		CheckpointEvery: fkEvery,
		Metrics:         obs.NewRegistry(),
	}
}

// buildCampaign runs the production write path end to end into dir:
// journal + manifest + frame index + live snapshot + report JSON.
// An optional fault FS (and retry policy) ride the artifact writes.
func buildCampaign(t *testing.T, dir string, fsys durable.FS, retry durable.RetryPolicy) (string, error) {
	t.Helper()
	camp := testCampaign()
	path := filepath.Join(dir, "crawl.jsonl.gz")
	world := webworld.Generate(webworld.Config{Seed: camp.Seed, NumSites: camp.Sites})
	server := webserver.New(world, nil)
	allow := attestation.NewAllowlist(world.Catalog.AllowedDomains()...)
	client := server.Client()
	client.Transport = chaos.NewInjector(webworld.DefaultChaos(camp.ChaosSeed), client.Transport)

	liveIn := &analysis.Input{Allowlist: allow, FS: fsys}
	jw, err := dataset.CreateJournal(path, dataset.JournalOptions{
		CheckpointEvery: fkEvery,
		Observer:        analysis.NewLiveSink(path, liveIn),
		Durable:         durable.Options{FS: fsys, Retry: retry},
	})
	if err != nil {
		return path, err
	}
	cr := crawler.New(crawler.Config{
		Client:             client,
		ReferenceAllowlist: allow,
		Workers:            camp.Workers,
		Writer:             jw,
	})
	if _, err := cr.Run(context.Background(), world.List()); err != nil {
		jw.Abort()
		return path, err
	}
	if err := jw.Close(); err != nil {
		return path, err
	}
	want, err := camp.ReportJSON([]string{path})
	if err != nil {
		return path, err
	}
	err = durable.WriteFileAtomicFS(fsys, reportPath(dir), func(w io.Writer) error {
		_, werr := w.Write(want)
		return werr
	})
	return path, err
}

func reportPath(dir string) string { return filepath.Join(dir, "report.json") }

func campaignPaths(dir string) fsck.CampaignPaths {
	return fsck.CampaignPaths{
		Journals: []string{filepath.Join(dir, "crawl.jsonl.gz")},
		Windows:  []fsck.Window{{From: 1, To: fkSites}},
		Report:   reportPath(dir),
	}
}

// The golden (undamaged) campaign, built once and copied per test.
var (
	goldenOnce sync.Once
	goldenDir  string
	goldenErr  error
)

func golden(t *testing.T) string {
	t.Helper()
	goldenOnce.Do(func() {
		goldenDir, goldenErr = os.MkdirTemp("", "fsck-golden-*")
		if goldenErr != nil {
			return
		}
		_, goldenErr = buildCampaign(t, goldenDir, nil, durable.RetryPolicy{})
	})
	if goldenErr != nil {
		t.Fatalf("golden campaign: %v", goldenErr)
	}
	return goldenDir
}

// cloneCampaign copies the golden campaign into a fresh directory.
func cloneCampaign(t *testing.T) string {
	t.Helper()
	src := golden(t)
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func canonical(t *testing.T, path string) []byte {
	t.Helper()
	data, err := durable.CanonicalBytes(path)
	if err != nil {
		t.Fatalf("CanonicalBytes(%s): %v", path, err)
	}
	return data
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// assertParity is the pinned invariant: after repair, the dataset's
// canonical bytes and the report JSON match the undamaged campaign, and
// a fresh verify is clean.
func assertParity(t *testing.T, dir string) {
	t.Helper()
	goldenPath := filepath.Join(golden(t), "crawl.jsonl.gz")
	path := filepath.Join(dir, "crawl.jsonl.gz")
	if !bytes.Equal(canonical(t, path), canonical(t, goldenPath)) {
		t.Fatal("repaired dataset differs canonically from the undamaged campaign")
	}
	if !bytes.Equal(readFile(t, reportPath(dir)), readFile(t, reportPath(golden(t)))) {
		t.Fatal("repaired report differs from the undamaged campaign")
	}
	rep, _, err := testCampaign().Verify(campaignPaths(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		buf := &bytes.Buffer{}
		rep.Encode(buf)
		t.Fatalf("repair left findings behind:\n%s", buf.String())
	}
}

func repairAndAssert(t *testing.T, dir string) *fsck.Report {
	t.Helper()
	rep, _, err := testCampaign().RepairCampaign(context.Background(), campaignPaths(dir))
	if err != nil {
		t.Fatalf("RepairCampaign: %v", err)
	}
	assertParity(t, dir)
	return rep
}

func TestVerifyCleanCampaignWritesNothing(t *testing.T) {
	dir := cloneCampaign(t)
	before := map[string][]byte{}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		before[e.Name()] = readFile(t, filepath.Join(dir, e.Name()))
	}
	rep, _, err := testCampaign().Verify(campaignPaths(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		buf := &bytes.Buffer{}
		rep.Encode(buf)
		t.Fatalf("pristine campaign flagged dirty:\n%s", buf.String())
	}
	j := rep.Journals[0]
	if j.Records == 0 || j.Sites != fkSites {
		t.Fatalf("verify salvaged %d records / %d sites", j.Records, j.Sites)
	}
	after, _ := os.ReadDir(dir)
	if len(after) != len(entries) {
		t.Fatalf("verify changed the directory: %d -> %d entries", len(entries), len(after))
	}
	for _, e := range after {
		if !bytes.Equal(before[e.Name()], readFile(t, filepath.Join(dir, e.Name()))) {
			t.Errorf("read-only verify rewrote %s", e.Name())
		}
	}
}

func TestRepairCleanCampaignIsNoop(t *testing.T) {
	dir := cloneCampaign(t)
	journalBefore := readFile(t, filepath.Join(dir, "crawl.jsonl.gz"))
	rep, results, err := testCampaign().RepairCampaign(context.Background(), campaignPaths(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatal("clean campaign flagged")
	}
	res := results[0]
	if res.Recrawled != 0 || res.Spliced != 0 || len(res.Rewrote) != 0 {
		t.Fatalf("repair touched a clean campaign: %+v", res)
	}
	if !bytes.Equal(journalBefore, readFile(t, filepath.Join(dir, "crawl.jsonl.gz"))) {
		t.Fatal("repair rewrote a clean journal")
	}
}

// TestRepairParityFaultMatrix is the acceptance matrix: every fault
// class, injected at every artifact class it applies to, repaired back
// to byte parity with the undamaged campaign.
func TestRepairParityFaultMatrix(t *testing.T) {
	journal := "crawl.jsonl.gz"
	cases := []struct {
		name   string
		damage func(t *testing.T, dir string)
	}{
		{"bitflip-journal", func(t *testing.T, dir string) {
			if err := chaos.FlipBit(filepath.Join(dir, journal), 1); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip-journal-other-offset", func(t *testing.T, dir string) {
			if err := chaos.FlipBit(filepath.Join(dir, journal), 99); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip-manifest", func(t *testing.T, dir string) {
			if err := chaos.FlipBit(filepath.Join(dir, journal+".ckpt"), 2); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip-frame-index", func(t *testing.T, dir string) {
			if err := chaos.FlipBit(filepath.Join(dir, journal+".fidx"), 3); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip-snapshot", func(t *testing.T, dir string) {
			if err := chaos.FlipBit(filepath.Join(dir, journal+".idx"), 4); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip-report", func(t *testing.T, dir string) {
			if err := chaos.FlipBit(reportPath(dir), 5); err != nil {
				t.Fatal(err)
			}
		}},
		{"torn-tail", func(t *testing.T, dir string) {
			path := filepath.Join(dir, journal)
			data := readFile(t, path)
			if err := os.Truncate(path, int64(len(data))-int64(len(data)/10)); err != nil {
				t.Fatal(err)
			}
		}},
		{"journal-missing", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, journal)); err != nil {
				t.Fatal(err)
			}
		}},
		{"manifest-missing", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, journal+".ckpt")); err != nil {
				t.Fatal(err)
			}
		}},
		{"report-missing", func(t *testing.T, dir string) {
			if err := os.Remove(reportPath(dir)); err != nil {
				t.Fatal(err)
			}
		}},
		{"torn-rename-stray-temp", func(t *testing.T, dir string) {
			// The residue of a rename that never happened: the staged temp
			// survives beside a stale target.
			stray := filepath.Join(dir, "."+journal+".ckpt.tmp-4242")
			if err := os.WriteFile(stray, []byte("half a manifest"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"compound-journal-and-sidecars", func(t *testing.T, dir string) {
			if err := chaos.FlipBit(filepath.Join(dir, journal), 7); err != nil {
				t.Fatal(err)
			}
			if err := os.Remove(filepath.Join(dir, journal+".fidx")); err != nil {
				t.Fatal(err)
			}
			if err := chaos.FlipBit(filepath.Join(dir, journal+".idx"), 8); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := cloneCampaign(t)
			tc.damage(t, dir)
			rep := repairAndAssert(t, dir)
			if rep.Clean && tc.name != "bitflip-manifest" && tc.name != "bitflip-frame-index" {
				// Most damage must be visible pre-repair. (A sidecar bit
				// flip may survive strict decoding and instead surface as
				// staleness — also a finding — but a flipped length field
				// can also make it simply lie, caught by the boundary
				// resync; either way parity held above.)
				if len(rep.Findings) == 0 && len(rep.Journals[0].Findings) == 0 {
					t.Error("damage invisible to verify")
				}
			}
		})
	}
}

// TestRepairSeedSweep flips one journal bit under many seeds — the
// offset lands in headers, payloads, frame CRCs and gzip members alike —
// and demands parity after every repair.
func TestRepairSeedSweep(t *testing.T) {
	for seed := uint64(10); seed < 22; seed++ {
		dir := cloneCampaign(t)
		if err := chaos.FlipBit(filepath.Join(dir, "crawl.jsonl.gz"), seed); err != nil {
			t.Fatal(err)
		}
		repairAndAssert(t, dir)
	}
}

// TestRepairAfterENOSPC fills the simulated disk mid-campaign, asserts
// the fail-fast drain left a durable prefix, then completes the
// campaign with fsck -repair alone.
func TestRepairAfterENOSPC(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	fsys := chaos.NewFaultFS(nil, chaos.FSProfile{Seed: 3, ENOSPCAfter: 64 << 10, Metrics: reg})
	path, err := buildCampaign(t, dir, fsys, durable.RetryPolicy{Attempts: 4, Metrics: reg})
	if err == nil {
		t.Fatal("campaign survived a 64KiB disk")
	}
	if !durable.IsDiskFull(err) {
		t.Fatalf("want ENOSPC classification, got: %v", err)
	}
	if !fsys.DiskFull() {
		t.Fatal("fault FS did not latch")
	}
	// The journal's committed prefix must still verify as a clean prefix
	// (possibly with an uncommitted tail) — ENOSPC is a clean drain, not
	// corruption.
	chk, verr := fsck.VerifyJournal(path, fsck.VerifyOptions{FromRank: 1, ToRank: fkSites})
	if verr != nil {
		t.Fatal(verr)
	}
	if chk.Report.Records == 0 {
		t.Fatal("nothing durable survived the disk-full drain")
	}
	// Repair on the real filesystem (space freed) completes the campaign.
	repairAndAssert(t, dir)
}

// TestCampaignSurvivesTransientStorageFaults runs the whole campaign
// with EIO blips, short writes and torn renames on every artifact class
// and demands: completion under retry, a clean fsck, and byte parity
// with the fault-free campaign.
func TestCampaignSurvivesTransientStorageFaults(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	fsys := chaos.NewFaultFS(nil, chaos.FSProfile{
		Seed: 17,
		Rates: map[chaos.PathClass]chaos.FSFaultRates{
			chaos.PathJournal:    {Sync: 0.1, Write: 0.02, ShortWrite: 0.02},
			chaos.PathManifest:   {Create: 0.1, Sync: 0.1, Rename: 0.1},
			chaos.PathFrameIndex: {Create: 0.2, Sync: 0.2, Rename: 0.2},
			chaos.PathSnapshot:   {Create: 0.2, Sync: 0.2, Rename: 0.2},
		},
		Metrics: reg,
	})
	if _, err := buildCampaign(t, dir, fsys, durable.RetryPolicy{Attempts: 6, Metrics: reg}); err != nil {
		t.Fatalf("campaign under transient storage faults: %v", err)
	}
	snap := reg.Snapshot()
	injected := false
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "storage_fault_injected_total") && c.Value > 0 {
			injected = true
		}
	}
	if !injected {
		t.Fatal("fault profile injected nothing — the test is vacuous")
	}
	assertParity(t, dir)
}

func TestQuarantineTruncateMakesResumable(t *testing.T) {
	dir := cloneCampaign(t)
	path := filepath.Join(dir, "crawl.jsonl.gz")
	if err := chaos.FlipBit(path, 1); err != nil {
		t.Fatal(err)
	}
	chk, err := fsck.VerifyJournal(path, fsck.VerifyOptions{FromRank: 1, ToRank: fkSites, KeepPayloads: true})
	if err != nil {
		t.Fatal(err)
	}
	if chk.Report.Clean {
		t.Fatal("bit flip invisible")
	}
	if err := fsck.QuarantineTruncate(chk); err != nil {
		t.Fatal(err)
	}
	// The rewound journal must verify as a clean but incomplete prefix.
	chk2, err := fsck.VerifyJournal(path, fsck.VerifyOptions{FromRank: 1, ToRank: fkSites})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range chk2.Report.Findings {
		switch f.Code {
		// Incomplete (the rewind) is expected; a flip landing in the very
		// first member leaves no clean prefix at all, so the full-reset
		// path legitimately reports the journal missing.
		case fsck.CodeIncomplete, fsck.CodeJournalMissing:
		default:
			t.Errorf("rewound journal still defective: %+v", f)
		}
	}
	// And a plain repair (which recrawls the missing suffix) restores
	// parity — the same path a coordinator-driven resume takes.
	repairAndAssert(t, dir)
}

func TestVerifyReportRoundTrip(t *testing.T) {
	dir := cloneCampaign(t)
	if err := chaos.FlipBit(filepath.Join(dir, "crawl.jsonl.gz"), 13); err != nil {
		t.Fatal(err)
	}
	rep, _, err := testCampaign().Verify(campaignPaths(dir))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := fsck.DecodeReport(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding our own verify report: %v", err)
	}
	if back.Clean != rep.Clean || len(back.Journals) != len(rep.Journals) {
		t.Fatal("report round trip lost state")
	}
	var again bytes.Buffer
	if err := back.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("verify report is not byte-deterministic across a round trip")
	}
}

func TestDecodeReportRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"unknown-field":     `{"version":1,"journals":[],"clean":true,"extra":1}`,
		"bad-version":       `{"version":9,"journals":[],"clean":true}`,
		"trailing":          `{"version":1,"journals":[],"clean":true}{}`,
		"unnamed-journal":   `{"version":1,"journals":[{"journal":"","from_rank":1,"to_rank":2,"records":0,"sites":0,"clean":true}],"clean":true}`,
		"bad-window":        `{"version":1,"journals":[{"journal":"j","from_rank":5,"to_rank":2,"records":0,"sites":0,"clean":true}],"clean":true}`,
		"overlapping":       `{"version":1,"journals":[{"journal":"j","from_rank":1,"to_rank":10,"records":0,"sites":0,"repair":[{"from":2,"to":5},{"from":4,"to":6}],"clean":false}],"clean":false}`,
		"clean-with-repair": `{"version":1,"journals":[{"journal":"j","from_rank":1,"to_rank":10,"records":0,"sites":0,"repair":[{"from":2,"to":5}],"clean":true}],"clean":true}`,
		"clean-with-dirty":  `{"version":1,"journals":[{"journal":"j","from_rank":1,"to_rank":10,"records":0,"sites":0,"clean":false}],"clean":true}`,
	}
	for name, raw := range cases {
		if _, err := fsck.DecodeReport([]byte(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := fsck.DecodeReport([]byte(`{"version":1,"journals":[],"clean":true}`)); err != nil {
		t.Errorf("minimal valid report rejected: %v", err)
	}
}

func TestStrayTemps(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{".a.ckpt.tmp-1", ".b.idx.tmp-9", "normal.jsonl", ".hidden"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	strays, err := fsck.StrayTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{".a.ckpt.tmp-1", ".b.idx.tmp-9"}
	if len(strays) != len(want) || strays[0] != want[0] || strays[1] != want[1] {
		t.Fatalf("strays = %v, want %v", strays, want)
	}
}
