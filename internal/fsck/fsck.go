// Package fsck verifies and repairs the on-disk artifacts of a crawl
// campaign: journal frame CRCs, checkpoint manifests, sparse frame
// indexes, live index snapshots, stray atomic-write temps and the
// report JSON — one pass over every shard.
//
// The verifier is built on the same salvage primitives resume uses
// (frame CRCs, gzip member boundaries), extended to *mid-file* damage:
// the sparse frame index's committed boundaries let the scan hop over a
// corrupt region and keep salvaging behind it. Damage is quarantined to
// whole-site-group rank windows — checkpoint boundaries always coincide
// with completed site groups — and the repair plan is executed as
// deterministic rank-window recrawls: every visit record is a pure
// function of its rank (and the campaign seeds), so a recrawled window
// is byte-identical to what the lost region held. The pinned invariant:
// inject faults → fsck → repair yields a dataset and report
// byte-identical to an undamaged run.
//
// Over-quarantine is always safe (a recrawl regenerates the same
// bytes); salvage is only ever trusted record-by-record, after its
// frame CRC and rank contiguity checks pass. A fault-free verify pass
// reads the campaign without writing a single byte.
package fsck

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/obs"

	"github.com/netmeasure/topicscope/internal/dataset"
)

// Finding codes, one per artifact defect class.
const (
	CodeJournalMissing    = "journal-missing"
	CodeCorruptRegion     = "corrupt-region"
	CodeTornTail          = "torn-tail"
	CodeRankGap           = "rank-gap"
	CodeIncomplete        = "incomplete-campaign"
	CodeManifestMissing   = "manifest-missing"
	CodeManifestCorrupt   = "manifest-corrupt"
	CodeManifestStale     = "manifest-stale"
	CodeFrameIndexCorrupt = "frame-index-corrupt"
	CodeSnapshotCorrupt   = "snapshot-corrupt"
	CodeSnapshotStale     = "snapshot-stale"
	CodeStrayTemp         = "stray-temp"
	CodeReportMissing     = "report-missing"
	CodeReportCorrupt     = "report-corrupt"
)

// Finding is one verified defect in one artifact.
type Finding struct {
	// Artifact is the defective file's base name (base, not path: the
	// report is deterministic across working directories).
	Artifact string `json:"artifact"`
	Code     string `json:"code"`
	Detail   string `json:"detail,omitempty"`
}

// Window is an inclusive rank window quarantined for recrawl.
type Window struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// JournalReport is the verify outcome for one journal and its sidecars.
type JournalReport struct {
	// Journal is the journal file's base name.
	Journal string `json:"journal"`
	// FromRank/ToRank bound the ranks the journal must cover.
	FromRank int `json:"from_rank"`
	ToRank   int `json:"to_rank"`
	// Records/Sites count the salvaged (CRC-valid, rank-contiguous)
	// records and site groups.
	Records int64 `json:"records"`
	Sites   int   `json:"sites"`
	// Findings lists every defect; Repair the rank windows whose
	// records must be recrawled. Clean means neither.
	Findings []Finding `json:"findings,omitempty"`
	Repair   []Window  `json:"repair,omitempty"`
	Clean    bool      `json:"clean"`
}

// group is one site's salvaged record group. n counts its records;
// payloads are retained only under VerifyOptions.KeepPayloads.
type group struct {
	site     string
	rank     int
	n        int
	payloads [][]byte
}

// JournalCheck is a verify result plus the salvage state repair needs.
type JournalCheck struct {
	Report JournalReport

	path  string
	shard *durable.ShardInfo
	// groups holds the salvaged site groups in rank order (only when
	// VerifyOptions.KeepPayloads).
	groups []group
	// goodCk is the longest clean committed prefix: repair truncates
	// here and splices salvage + recrawl after it. goodRank/goodSites
	// are the watermark and group count at that boundary.
	goodCk    durable.Checkpoint
	goodRank  int
	goodSites int
	// finalCk is the whole-file state when every byte salvaged cleanly
	// (offset == file size); used to re-derive a stale manifest without
	// touching the journal.
	finalCk   durable.Checkpoint
	finalSite string
	allClean  bool
}

// VerifyOptions configure a single-journal verification.
type VerifyOptions struct {
	// FromRank/ToRank bound the ranks the journal must cover: the shard
	// window, or [1, Sites] for a single-process campaign.
	FromRank int
	ToRank   int
	// Shard, when set, is the expected shard geometry of the journal's
	// manifest.
	Shard *durable.ShardInfo
	// KeepPayloads retains salvaged record payloads in memory for a
	// subsequent Repair.
	KeepPayloads bool
	// Metrics, if set, counts verify findings. Nil is fine.
	Metrics *obs.Registry
}

// groupDone mirrors the resume salvage rule: a site group can no longer
// grow once its last record is an After-Accept visit or a failed /
// rejected Before-Accept one; a drain-aborted record marks it torn.
func groupDone(last *dataset.Visit) bool {
	if last.ErrorClass == "aborted" {
		return false
	}
	if last.Phase == dataset.AfterAccept {
		return true
	}
	return !last.Success || !last.Accepted
}

// errDefect marks the first undecodable or non-contiguous record in a
// segment scan; everything after it is quarantined.
var errDefect = errors.New("fsck: defective record")

// segScan is the salvage outcome of one boundary-delimited segment.
type segScan struct {
	groups  []group
	records int64
	damaged bool
	reason  string
	// open reports a trailing group that could still grow (a normal
	// uncommitted tail when the segment ends the file).
	open bool
}

// scanSegment salvages one self-contained byte segment of a journal.
// Committed boundaries are gzip member boundaries, so each segment
// decodes independently of its neighbours. prevRank is the completed
// watermark at the segment's start; group ranks must continue
// contiguously from it.
func scanSegment(seg []byte, compressed bool, prevRank int) *segScan {
	out := &segScan{}
	var r io.Reader = bytes.NewReader(seg)
	if compressed {
		zr, err := gzip.NewReader(bytes.NewReader(seg))
		if err != nil {
			out.damaged = true
			out.reason = "torn gzip member"
			return out
		}
		zr.Multistream(true)
		r = zr
	}
	type openGroup struct {
		group
		done bool
	}
	var cur *openGroup
	rank := prevRank
	flush := func() {
		if cur != nil && cur.done {
			out.groups = append(out.groups, cur.group)
			out.records += int64(cur.n)
		}
		cur = nil
	}
	scan, err := durable.ScanRecords(r, func(payload []byte) error {
		var v dataset.Visit
		if uerr := json.Unmarshal(payload, &v); uerr != nil {
			out.reason = "undecodable record"
			return errDefect
		}
		if cur == nil || cur.site != v.Site || cur.rank != v.Rank {
			if cur != nil && !cur.done {
				out.reason = "torn site group"
				return errDefect
			}
			flush()
			if v.Rank != rank+1 {
				out.reason = fmt.Sprintf("rank %d after watermark %d", v.Rank, rank)
				return errDefect
			}
			rank = v.Rank
			cur = &openGroup{group: group{site: v.Site, rank: v.Rank}}
		}
		cur.n++
		cur.payloads = append(cur.payloads, append([]byte(nil), payload...))
		cur.done = groupDone(&v)
		return nil
	})
	if err != nil && errors.Is(err, errDefect) {
		out.damaged = true
		flush()
		return out
	}
	if scan.Truncated {
		out.damaged = true
		out.reason = "torn frame"
	}
	if cur != nil && !cur.done {
		out.open = true
		cur = nil
	}
	flush()
	return out
}

// boundaries assembles the trusted committed boundaries of a journal:
// offset 0, the (leniently loaded) frame-index entries, and the
// manifest checkpoint, sorted and deduplicated. Every boundary is only
// as trusted as the segment scan that starts from it — a lying
// boundary fails its segment and is quarantined, never believed.
func journalBoundaries(size int64, fromRank int, m *durable.Manifest, fi *durable.FrameIndex) []durable.FrameEntry {
	byOffset := map[int64]durable.FrameEntry{0: {Offset: 0, Records: 0, Rank: fromRank - 1}}
	if fi != nil {
		for _, e := range fi.Entries {
			if e.Offset > 0 && e.Offset <= size {
				byOffset[e.Offset] = e
			}
		}
	}
	if m != nil && m.Offset > 0 && m.Offset <= size {
		byOffset[m.Offset] = durable.FrameEntry{Offset: m.Offset, Records: m.Records, Rank: m.WatermarkRank}
	}
	entries := make([]durable.FrameEntry, 0, len(byOffset))
	for _, e := range byOffset {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Offset < entries[j].Offset })
	// Drop non-monotonic interlopers (a corrupt-but-decodable index).
	kept := entries[:1]
	for _, e := range entries[1:] {
		last := kept[len(kept)-1]
		if e.Records >= last.Records && e.Rank >= last.Rank {
			kept = append(kept, e)
		}
	}
	return kept
}

// VerifyJournal verifies one journal and its sidecars. It never writes.
func VerifyJournal(path string, opts VerifyOptions) (*JournalCheck, error) {
	if opts.FromRank < 1 {
		opts.FromRank = 1
	}
	if opts.ToRank < opts.FromRank {
		return nil, fmt.Errorf("fsck: verifying %s: rank window [%d,%d] invalid", path, opts.FromRank, opts.ToRank)
	}
	chk := &JournalCheck{
		path:  path,
		shard: opts.Shard,
		Report: JournalReport{
			Journal:  filepath.Base(path),
			FromRank: opts.FromRank,
			ToRank:   opts.ToRank,
		},
		goodRank: opts.FromRank - 1,
	}
	rep := &chk.Report
	note := func(artifact, code, detail string) {
		rep.Findings = append(rep.Findings, Finding{Artifact: artifact, Code: code, Detail: detail})
		opts.Metrics.Add("fsck_findings_total", 1, "code", code)
	}

	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		note(rep.Journal, CodeJournalMissing, "")
		rep.Repair = []Window{{From: opts.FromRank, To: opts.ToRank}}
		return chk, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fsck: reading %s: %w", path, err)
	}

	// Sidecars, leniently: a defective sidecar is a finding, never a
	// verification failure — the journal's own frames are the authority.
	var m *durable.Manifest
	mraw, merr := os.ReadFile(durable.ManifestPath(path))
	switch {
	case errors.Is(merr, os.ErrNotExist):
		note(filepath.Base(durable.ManifestPath(path)), CodeManifestMissing, "")
	case merr != nil:
		return nil, fmt.Errorf("fsck: reading manifest of %s: %w", path, merr)
	default:
		if m, merr = durable.DecodeManifest(mraw); merr != nil {
			note(filepath.Base(durable.ManifestPath(path)), CodeManifestCorrupt, merr.Error())
			m = nil
		} else if m.Journal != rep.Journal || int64(len(raw)) < m.Offset || !m.Shard.Equal(opts.Shard) {
			note(filepath.Base(durable.ManifestPath(path)), CodeManifestCorrupt, "manifest does not describe this journal")
			m = nil
		}
	}
	var fi *durable.FrameIndex
	firaw, fierr := os.ReadFile(durable.FrameIndexPath(path))
	if fierr == nil {
		if fi, fierr = durable.DecodeFrameIndex(firaw); fierr != nil {
			note(filepath.Base(durable.FrameIndexPath(path)), CodeFrameIndexCorrupt, fierr.Error())
			fi = nil
		} else if fi.Journal != rep.Journal {
			note(filepath.Base(durable.FrameIndexPath(path)), CodeFrameIndexCorrupt, "index names a different journal")
			fi = nil
		}
	}

	compressed := durable.Compressed(path)
	bounds := journalBoundaries(int64(len(raw)), opts.FromRank, m, fi)

	// Segment-wise salvage: scan each boundary-delimited segment
	// independently, hopping over damaged regions to keep salvaging at
	// the next committed boundary.
	var (
		windows   []Window
		crc       uint32
		cumRec    int64
		cumSites  int
		prefixOK  = true
		lastRank  = opts.FromRank - 1
		openTail  bool
		anyDamage bool
	)
	for i, b := range bounds {
		segEnd := int64(len(raw))
		var next *durable.FrameEntry
		if i+1 < len(bounds) {
			next = &bounds[i+1]
			segEnd = next.Offset
		}
		if b.Offset >= segEnd {
			continue
		}
		sc := scanSegment(raw[b.Offset:segEnd], compressed, b.Rank)
		for _, g := range sc.groups {
			cumRec += int64(g.n)
			cumSites++
			lastRank = g.rank
			crc = groupCRC(crc, g)
			if !opts.KeepPayloads {
				g.payloads = nil
			}
			chk.groups = append(chk.groups, g)
		}
		segClean := !sc.damaged && !sc.open
		if next != nil {
			// A clean interior segment must land exactly on its next
			// boundary's metadata; anything else quarantines through it.
			if segClean && (cumRec > next.Records || lastRank > next.Rank) {
				segClean = false
				sc.reason = "boundary metadata mismatch"
			}
			if segClean && (cumRec < next.Records || lastRank < next.Rank) {
				segClean = false
				sc.reason = "boundary metadata mismatch"
			}
			if !segClean {
				anyDamage = true
				note(rep.Journal, CodeCorruptRegion,
					fmt.Sprintf("ranks (%d,%d]: %s", lastRank, next.Rank, sc.reason))
				if next.Rank > lastRank {
					windows = append(windows, Window{From: lastRank + 1, To: next.Rank})
				}
				// Resynchronize at the next trusted boundary.
				cumRec = next.Records
				cumSites += countRanks(lastRank, next.Rank)
				lastRank = next.Rank
				prefixOK = false
			}
		} else {
			if sc.damaged {
				anyDamage = true
				note(rep.Journal, CodeTornTail,
					fmt.Sprintf("ranks (%d,%d]: %s", lastRank, opts.ToRank, sc.reason))
			}
			openTail = sc.open || sc.damaged
		}
		if prefixOK && next != nil {
			chk.goodCk = durable.Checkpoint{Offset: next.Offset, Records: cumRec, PayloadCRC: crc}
			chk.goodRank = lastRank
			chk.goodSites = cumSites
		}
	}
	if lastRank < opts.ToRank {
		windows = append(windows, Window{From: lastRank + 1, To: opts.ToRank})
		if !anyDamage && !openTail {
			note(rep.Journal, CodeIncomplete,
				fmt.Sprintf("ranks (%d,%d] never crawled", lastRank, opts.ToRank))
		} else if openTail && !anyDamage {
			note(rep.Journal, CodeTornTail,
				fmt.Sprintf("uncommitted tail past rank %d", lastRank))
		}
	}
	rep.Repair = mergeWindows(windows)
	// Salvage inside a quarantined window is never spliced back — the
	// recrawl regenerates those ranks byte-identically, and dropping
	// them keeps the dedupe rule trivial.
	chk.groups = dropQuarantined(chk.groups, rep.Repair)
	rep.Records, rep.Sites = 0, 0
	for _, g := range chk.groups {
		rep.Records += int64(g.n)
		rep.Sites++
	}

	chk.allClean = len(rep.Repair) == 0 && !anyDamage && !openTail
	if chk.allClean {
		chk.finalCk = durable.Checkpoint{Offset: int64(len(raw)), Records: cumRec, PayloadCRC: crc}
		if n := len(chk.groups); n > 0 {
			chk.finalSite = chk.groups[n-1].site
		}
		if m == nil {
			// Already noted above (missing or corrupt).
		} else if m.Offset != chk.finalCk.Offset || m.Records != chk.finalCk.Records ||
			m.PayloadCRC != chk.finalCk.PayloadCRC || m.WatermarkRank != opts.ToRank {
			note(filepath.Base(durable.ManifestPath(path)), CodeManifestStale,
				fmt.Sprintf("manifest commits %d/%d bytes", m.Offset, chk.finalCk.Offset))
		}
	}

	checkSnapshot(path, m, note)

	rep.Clean = len(rep.Findings) == 0 && len(rep.Repair) == 0
	if !rep.Clean {
		opts.Metrics.Add("fsck_journals_flagged_total", 1)
	}
	return chk, nil
}

// countRanks is the group count of the inclusive rank range (from,to].
func countRanks(from, to int) int {
	if to <= from {
		return 0
	}
	return to - from
}

func groupCRC(crc uint32, g group) uint32 {
	for _, p := range g.payloads {
		crc = durable.PayloadCRC(crc, p)
	}
	return crc
}

// checkSnapshot validates the live index snapshot sidecar: it must be
// decodable JSON naming this journal and, when the manifest is
// trusted, describe the manifest's exact committed state. It is an
// accelerator — defects are findings that repair fixes by rebuild, and
// readers degrade gracefully meanwhile.
func checkSnapshot(path string, m *durable.Manifest, note func(artifact, code, detail string)) {
	idxPath := path + ".idx"
	data, err := os.ReadFile(idxPath)
	if err != nil {
		return // absent is fine: it rebuilds from the journal
	}
	var hdr struct {
		Version    int    `json:"version"`
		Journal    string `json:"journal"`
		Records    int64  `json:"records"`
		PayloadCRC uint32 `json:"payload_crc"`
	}
	if uerr := json.Unmarshal(data, &hdr); uerr != nil {
		note(filepath.Base(idxPath), CodeSnapshotCorrupt, uerr.Error())
		return
	}
	if hdr.Journal != filepath.Base(path) {
		note(filepath.Base(idxPath), CodeSnapshotCorrupt, "snapshot names a different journal")
		return
	}
	if m != nil && (hdr.Records != m.Records || hdr.PayloadCRC != m.PayloadCRC) {
		note(filepath.Base(idxPath), CodeSnapshotStale,
			fmt.Sprintf("snapshot folds %d records, manifest commits %d", hdr.Records, m.Records))
	}
}

// mergeWindows sorts and coalesces overlapping or adjacent windows.
func mergeWindows(ws []Window) []Window {
	if len(ws) == 0 {
		return nil
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].From < ws[j].From })
	out := ws[:1]
	for _, w := range ws[1:] {
		last := &out[len(out)-1]
		if w.From <= last.To+1 {
			if w.To > last.To {
				last.To = w.To
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

func inWindows(rank int, ws []Window) bool {
	for _, w := range ws {
		if rank >= w.From && rank <= w.To {
			return true
		}
	}
	return false
}

func dropQuarantined(gs []group, ws []Window) []group {
	if len(ws) == 0 {
		return gs
	}
	kept := gs[:0]
	for _, g := range gs {
		if !inWindows(g.rank, ws) {
			kept = append(kept, g)
		}
	}
	return kept
}

// StrayTemps lists leftover atomic-write staging files (`.NAME.tmp-*`)
// in a campaign directory, sorted — the residue of a crash or a torn
// rename. They are safe to delete: a temp either never reached its
// rename or was fully superseded by it.
func StrayTemps(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fsck: listing %s: %w", dir, err)
	}
	var strays []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-") {
			strays = append(strays, name)
		}
	}
	sort.Strings(strays)
	return strays, nil
}
