// Package orchestrator distributes a measurement campaign across worker
// processes. A coordinator partitions the campaign's site ranks into N
// contiguous shards; each worker crawls its rank window into its own
// crash-safe journal shard (<out>.shard-i) with independent
// checkpoints, and publishes liveness through a status file and the
// /__metrics endpoint. Crashed workers restart from their shard
// checkpoint, O(tail). When every shard completes, MergeJournals
// re-frames the rank-contiguous shards through internal/durable into
// one dataset whose canonical bytes are identical to a single-process
// crawl of the same (world, seed, chaos), and the per-shard analysis
// partials merge commutatively into the same report — the merge-parity
// golden tests pin both.
//
// The design leans entirely on invariants the rest of the repo already
// enforces: visits are timed on a virtual clock derived from the global
// site rank (so a shard needs no knowledge of its siblings to produce
// the right timestamps), chaos decisions are pure functions of the
// request (so fault weather doesn't depend on which process issues the
// request), and webworld generation is rank-streamed (so a worker
// materializes only its window of a 500k-site world).
package orchestrator

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/netmeasure/topicscope/internal/durable"
)

// ShardSpec is one contiguous rank window of a partitioned campaign.
type ShardSpec struct {
	// Index is the 0-based shard number; Count the total shards.
	Index int `json:"index"`
	Count int `json:"count"`
	// FromRank/ToRank bound the shard's global site ranks, inclusive.
	FromRank int `json:"from_rank"`
	ToRank   int `json:"to_rank"`
}

// Sites returns the number of ranks the shard covers.
func (s ShardSpec) Sites() int { return s.ToRank - s.FromRank + 1 }

// Info converts the spec to the manifest form stamped into the shard
// journal's checkpoints.
func (s ShardSpec) Info() *durable.ShardInfo {
	return &durable.ShardInfo{Index: s.Index, Count: s.Count, FromRank: s.FromRank, ToRank: s.ToRank}
}

// String renders "i/N ranks [from,to]".
func (s ShardSpec) String() string {
	return fmt.Sprintf("%d/%d ranks [%d,%d]", s.Index, s.Count, s.FromRank, s.ToRank)
}

// ParseShard parses the "i/N" form of the topics-crawl -shard flag
// (0-based index).
func ParseShard(v string) (index, count int, err error) {
	i, n, ok := strings.Cut(v, "/")
	if !ok {
		return 0, 0, fmt.Errorf("orchestrator: shard %q: want i/N", v)
	}
	if _, err := fmt.Sscanf(i+" "+n, "%d %d", &index, &count); err != nil {
		return 0, 0, fmt.Errorf("orchestrator: shard %q: %w", v, err)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("orchestrator: shard %q: index out of range", v)
	}
	return index, count, nil
}

// Partition splits ranks 1..sites into count contiguous near-equal
// windows: the first sites%count shards take one extra rank. Every rank
// lands in exactly one shard, in order, which is what makes the merged
// journal rank-contiguous by construction.
func Partition(sites, count int) ([]ShardSpec, error) {
	if sites < 1 {
		return nil, fmt.Errorf("orchestrator: partitioning %d sites", sites)
	}
	if count < 1 {
		return nil, fmt.Errorf("orchestrator: partitioning into %d shards", count)
	}
	if count > sites {
		count = sites
	}
	specs := make([]ShardSpec, count)
	base, extra := sites/count, sites%count
	next := 1
	for i := range specs {
		n := base
		if i < extra {
			n++
		}
		specs[i] = ShardSpec{Index: i, Count: count, FromRank: next, ToRank: next + n - 1}
		next += n
	}
	return specs, nil
}

// ShardPath derives shard i's journal path from the campaign's output
// path. A .gz output keeps its suffix so the shard journal stays
// compressed: crawl.jsonl.gz → crawl.jsonl.shard-0.gz.
func ShardPath(out string, index int) string {
	suffix := fmt.Sprintf(".shard-%d", index)
	if durable.Compressed(out) {
		return strings.TrimSuffix(out, ".gz") + suffix + ".gz"
	}
	return out + suffix
}

// StatusPath is the worker-status file beside a shard journal.
func StatusPath(shardPath string) string { return shardPath + ".status" }

// Worker states recorded in the status file.
const (
	StateRunning = "running"
	StateDone    = "done"
	StateDrained = "drained"
	StateFailed  = "failed"
)

// Status is the worker's liveness record: which shard it owns, its PID,
// where its live metrics are served, and how far it has come. The
// coordinator and topics-monitor -shards read these to aggregate a
// campaign-wide view without touching the journals.
type Status struct {
	Shard ShardSpec `json:"shard"`
	PID   int       `json:"pid"`
	// MetricsURL is the worker's /__metrics endpoint ("" when the worker
	// serves none).
	MetricsURL string `json:"metrics_url,omitempty"`
	// State is one of the State* constants.
	State string `json:"state"`
	// Error carries the failure detail when State is StateFailed.
	Error string `json:"error,omitempty"`
}

// WriteStatus atomically replaces the shard's status file, so a monitor
// polling it never observes a torn write.
func WriteStatus(shardPath string, st *Status) error {
	return durable.WriteFileAtomic(StatusPath(shardPath), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(st)
	})
}

// ReadStatus loads a shard's status file.
func ReadStatus(shardPath string) (*Status, error) {
	data, err := os.ReadFile(StatusPath(shardPath))
	if err != nil {
		return nil, fmt.Errorf("orchestrator: reading status: %w", err)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("orchestrator: decoding status %s: %w", StatusPath(shardPath), err)
	}
	return &st, nil
}
