package orchestrator

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"github.com/netmeasure/topicscope/internal/analysis"
	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/crawler"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/fsck"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/webserver"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// DefaultMaxRestarts is the per-shard restart budget when
// Campaign.MaxRestarts is zero.
const DefaultMaxRestarts = 2

// Campaign is a distributed measurement campaign: the same knobs as
// topicscope.Campaign, plus the shard geometry and worker supervision
// policy. Run partitions the site ranks, launches one worker per shard,
// restarts crashed workers from their shard checkpoints, merges the
// shard journals byte-identically, and computes the same report a
// single-process campaign would — which the merge-parity golden test
// pins down to the byte.
type Campaign struct {
	// Seed, Sites, Workers, Enforce, Start, Vantage, Chaos, ChaosSeed,
	// Retries and WorldConfig mirror topicscope.Campaign; Workers is the
	// per-worker crawl parallelism.
	Seed        uint64
	Sites       int
	Workers     int
	Enforce     bool
	Start       time.Time
	Vantage     string
	Chaos       bool
	ChaosSeed   uint64
	Retries     int
	WorldConfig *webworld.Config

	// OutputPath is the merged dataset path; shard i journals to
	// ShardPath(OutputPath, i). Required.
	OutputPath string
	// CheckpointEvery is each shard journal's checkpoint cadence.
	CheckpointEvery int

	// Shards is how many contiguous rank windows to partition into
	// (required, >= 1; clamped to Sites).
	Shards int
	// Resume continues an interrupted distributed campaign: every worker
	// starts from its shard checkpoint.
	Resume bool
	// MaxRestarts bounds restarts per shard after a crash: 0 selects
	// DefaultMaxRestarts, negative disables restarts.
	MaxRestarts int
	// Launcher starts the workers; nil selects the in-process launcher.
	Launcher Launcher
	// Fsck verifies every shard journal after the crawl phase: a shard
	// with corrupt or torn artifacts is truncated back to its last clean
	// committed checkpoint and restarted from there — fsck-detected
	// corruption becomes the same restartable condition a worker crash
	// is, charged against the same restart budget.
	Fsck bool
	// FS routes in-process workers' artifact writes through an explicit
	// filesystem seam (chaos.FaultFS plugs in here); nil means the real
	// OS. Retry is their authoritative-write retry policy.
	FS    durable.FS
	Retry durable.RetryPolicy

	// Logger receives coordinator and (in-process) worker progress.
	Logger *slog.Logger
	// Metrics is the coordinator's registry (nil = fresh); in-process
	// workers record into it directly, exec-launched workers publish
	// their own via -pprof and the status files.
	Metrics *obs.Registry
}

// Result bundles a distributed campaign's outputs. Data, Attestations,
// Report and Analysis carry exactly what topicscope.Results would for
// the same campaign run in one process.
type Result struct {
	// Shards is the rank partition the campaign ran with.
	Shards []ShardSpec
	// Merge reports the journal merge.
	Merge MergeStats
	// Restarts counts worker restarts across all shards.
	Restarts int
	// Data holds every visit record, in global rank order.
	Data *dataset.Dataset
	// Attestations are the campaign-wide well-known checks.
	Attestations []dataset.AttestationRecord
	// Report holds every computed experiment.
	Report *analysis.Report
	// Analysis is the input the report was computed from, carrying the
	// merged cross-shard index.
	Analysis *analysis.Input
	// Metrics is the coordinator's registry.
	Metrics *obs.Registry
}

// shardCampaign projects the campaign onto one shard for a worker.
func (c *Campaign) shardCampaign(spec ShardSpec, resume bool) ShardCampaign {
	logger := c.Logger
	if logger != nil {
		logger = logger.With("shard", spec.Index)
	}
	return ShardCampaign{
		Seed:            c.Seed,
		Sites:           c.Sites,
		Workers:         c.Workers,
		Enforce:         c.Enforce,
		Start:           c.Start,
		Vantage:         c.Vantage,
		Chaos:           c.Chaos,
		ChaosSeed:       c.ChaosSeed,
		Retries:         c.Retries,
		WorldConfig:     c.WorldConfig,
		OutputPath:      c.OutputPath,
		CheckpointEvery: c.CheckpointEvery,
		Shard:           spec,
		Resume:          resume,
		Logger:          logger,
		Metrics:         c.Metrics,
		FS:              c.FS,
		Retry:           c.Retry,
	}
}

// supervise runs one shard to completion, restarting crashed workers
// from the shard checkpoint up to the restart budget. It returns how
// many restarts it spent.
func (c *Campaign) supervise(ctx context.Context, launcher Launcher, spec ShardSpec, budget int, forceResume bool) (int, error) {
	attempt := 0
	for {
		resume := forceResume || c.Resume || attempt > 0
		h, err := launcher.Start(ctx, c, spec, attempt, resume)
		if err != nil {
			return attempt, err
		}
		err = h.Wait()
		if err == nil {
			return attempt, nil
		}
		if errors.Is(err, context.Canceled) || ctx.Err() != nil {
			// Graceful drain (ours or a sibling's failure cancelling the
			// campaign): the shard checkpointed; nothing to restart.
			return attempt, err
		}
		if attempt >= budget {
			return attempt, fmt.Errorf("orchestrator: shard %s: restart budget (%d) exhausted: %w", spec, budget, err)
		}
		attempt++
		c.Metrics.Add("orchestrator_worker_restarts_total", 1)
		if c.Logger != nil {
			c.Logger.Warn("worker crashed, restarting from checkpoint",
				"shard", spec.Index, "attempt", attempt, "err", err)
		}
	}
}

// fsckShards verifies every shard journal and heals flagged shards by
// quarantine-truncation plus a resumed recrawl, looping until every
// shard verifies clean. Each heal is charged like a crash restart, with
// a per-shard budget.
func (c *Campaign) fsckShards(ctx context.Context, launcher Launcher, specs []ShardSpec, budget int) (int, error) {
	total := 0
	attempts := make([]int, len(specs))
	for {
		dirty := 0
		for _, spec := range specs {
			path := ShardPath(c.OutputPath, spec.Index)
			chk, err := fsck.VerifyJournal(path, fsck.VerifyOptions{
				FromRank: spec.FromRank,
				ToRank:   spec.ToRank,
				Shard:    spec.Info(),
				Metrics:  c.Metrics,
			})
			if err != nil {
				return total, err
			}
			if chk.Report.Clean {
				continue
			}
			dirty++
			if attempts[spec.Index] >= budget {
				return total, fmt.Errorf("orchestrator: shard %s: fsck heal budget (%d) exhausted: %d findings remain",
					spec, budget, len(chk.Report.Findings))
			}
			attempts[spec.Index]++
			total++
			c.Metrics.Add("orchestrator_fsck_restarts_total", 1)
			if c.Logger != nil {
				c.Logger.Warn("fsck flagged shard; truncating to last clean checkpoint and restarting",
					"shard", spec.Index, "findings", len(chk.Report.Findings), "windows", len(chk.Report.Repair))
			}
			if err := fsck.QuarantineTruncate(chk); err != nil {
				return total, err
			}
			n, err := c.supervise(ctx, launcher, spec, budget, true)
			total += n
			if err != nil {
				return total, err
			}
		}
		if dirty == 0 {
			return total, nil
		}
	}
}

// Run executes the distributed campaign end to end.
func (c Campaign) Run(ctx context.Context) (*Result, error) {
	if c.OutputPath == "" {
		return nil, fmt.Errorf("orchestrator: campaign needs an OutputPath (shards journal beside it)")
	}
	if c.Shards < 1 {
		return nil, fmt.Errorf("orchestrator: campaign needs Shards >= 1, got %d", c.Shards)
	}
	cfg := webworld.Config{Seed: c.Seed, NumSites: c.Sites}
	if c.WorldConfig != nil {
		cfg = *c.WorldConfig
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	launcher := c.Launcher
	if launcher == nil {
		launcher = &InProcLauncher{}
	}
	budget := c.MaxRestarts
	switch {
	case budget == 0:
		budget = DefaultMaxRestarts
	case budget < 0:
		budget = 0
	}

	specs, err := Partition(cfg.NumSites, c.Shards)
	if err != nil {
		return nil, err
	}
	if c.Logger != nil {
		c.Logger.Info("campaign partitioned", "sites", cfg.NumSites, "shards", len(specs))
	}

	// Crawl phase: every shard supervised concurrently. A shard that
	// exhausts its restart budget cancels the campaign so its siblings
	// drain to durable checkpoints instead of crawling on for a merge
	// that can no longer happen.
	crawlCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		restarts int
		firstErr error
	)
	for _, spec := range specs {
		wg.Add(1)
		go func(spec ShardSpec) {
			defer wg.Done()
			n, err := c.supervise(crawlCtx, launcher, spec, budget, false)
			mu.Lock()
			defer mu.Unlock()
			restarts += n
			if err != nil {
				// Prefer the root-cause error over the context.Canceled
				// noise of siblings draining after it.
				if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
					firstErr = err
				}
				cancel()
			}
		}(spec)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Verify phase (optional): fsck every shard journal; a flagged shard
	// is truncated to its last clean committed checkpoint and restarted
	// from there, exactly like a crashed worker.
	if c.Fsck {
		n, err := c.fsckShards(ctx, launcher, specs, budget)
		restarts += n
		if err != nil {
			return nil, err
		}
	}

	// Merge phase: validate and concatenate the shard journals into the
	// campaign dataset, collecting each shard's visits on the way for
	// the cross-shard analysis merge.
	shardPaths := make([]string, len(specs))
	for i := range specs {
		shardPaths[i] = ShardPath(c.OutputPath, i)
	}
	parts := make([][]dataset.Visit, len(specs))
	mergeStats, err := MergeJournals(c.OutputPath, shardPaths, c.Metrics, func(shard int, payload []byte) error {
		var v dataset.Visit
		if err := json.Unmarshal(payload, &v); err != nil {
			return fmt.Errorf("orchestrator: decoding visit from shard %d: %w", shard, err)
		}
		parts[shard] = append(parts[shard], v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if c.Logger != nil {
		c.Logger.Info("shards merged", "records", mergeStats.Records, "sites", mergeStats.Sites)
	}
	data := &dataset.Dataset{}
	for _, p := range parts {
		data.Visits = append(data.Visits, p...)
	}

	// Analysis phase, replicating the single-process campaign: the full
	// world (the attestation sweep reaches sister and site domains no
	// single shard generates), the same chaos weather on its client, the
	// campaign-wide attestation checks, and a report computed from the
	// commutative merge of per-shard index partials.
	world := webworld.Generate(cfg)
	server := webserver.New(world, nil)
	allow := attestation.NewAllowlist(world.Catalog.AllowedDomains()...)
	client := server.Client()
	if c.Chaos {
		client.Transport = chaos.NewInjector(webworld.DefaultChaos(c.ChaosSeed), client.Transport)
	}
	cr := crawler.New(crawler.Config{
		Client:             client,
		ReferenceAllowlist: allow,
		Enforce:            c.Enforce,
		Start:              c.Start,
		Vantage:            c.Vantage,
		Logger:             c.Logger,
		Metrics:            c.Metrics,
	})
	domains := allow.Domains()
	domains = append(domains, crawler.CallerDomains(data)...)
	recs := cr.CheckAttestations(ctx, domains)

	in := &analysis.Input{
		Data:         data,
		Allowlist:    allow,
		Attestations: dataset.AttestationIndex(recs),
		Metrics:      c.Metrics,
	}
	partials := make([]*analysis.ShardIndex, len(parts))
	var iwg sync.WaitGroup
	for i := range parts {
		iwg.Add(1)
		go func(i int) {
			defer iwg.Done()
			// Each worker serialized its live index beside its journal at
			// every checkpoint; a snapshot matching the shard's final
			// manifest, our allow-list, and the merged record count is
			// adopted as the merge partial without re-folding the shard.
			// Anything less degrades to the from-scratch build.
			shardIn := &analysis.Input{Allowlist: allow, Metrics: c.Metrics}
			if live, _ := analysis.LoadIndexSnapshot(shardPaths[i], shardIn); live != nil && live.Visits() == len(parts[i]) {
				partials[i] = live.Shard()
				c.Metrics.Add("orchestrator_shard_index_restored_total", 1)
				return
			}
			c.Metrics.Add("orchestrator_shard_index_rebuilt_total", 1)
			partials[i] = analysis.BuildShardIndex(&analysis.Input{
				Data:         &dataset.Dataset{Visits: parts[i]},
				Allowlist:    allow,
				Attestations: in.Attestations,
				Metrics:      c.Metrics,
			})
		}(i)
	}
	iwg.Wait()
	idx, err := analysis.MergeShardIndexes(in, partials...)
	if err != nil {
		return nil, err
	}
	in.AdoptIndex(idx)
	report := analysis.Run(in)

	return &Result{
		Shards:       specs,
		Merge:        *mergeStats,
		Restarts:     restarts,
		Data:         data,
		Attestations: recs,
		Report:       report,
		Analysis:     in,
		Metrics:      c.Metrics,
	}, nil
}
