package orchestrator_test

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/orchestrator"
)

// TestCoordinatorFsckHealsCorruptShard pins the self-healing loop: a
// finished campaign takes post-hoc damage to one shard journal (a bit
// flip the O(tail) resume path cannot see, because it lands in the
// committed prefix), and a -fsck resume detects it, truncates the shard
// to its last clean committed checkpoint, recrawls the quarantined
// ranks, and still merges byte-identical to the single-process
// reference.
func TestCoordinatorFsckHealsCorruptShard(t *testing.T) {
	const sites = 48
	dir := t.TempDir()
	singleOut := filepath.Join(dir, "single.jsonl")
	ref := runSingle(t, singleOut, sites)

	out := filepath.Join(dir, "merged.jsonl")
	c := orchCampaign(out, sites, 4)
	c.Fsck = true
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 0 {
		t.Errorf("clean campaign recorded %d restarts under fsck", res.Restarts)
	}
	if got := res.Metrics.Snapshot().Counter("orchestrator_fsck_restarts_total"); got != 0 {
		t.Errorf("clean campaign counted %d fsck restarts", got)
	}

	// Damage shard 2's committed region, then resume the campaign with
	// verification on.
	if err := chaos.FlipBit(orchestrator.ShardPath(out, 2), 3); err != nil {
		t.Fatal(err)
	}
	heal := orchCampaign(out, sites, 4)
	heal.Resume = true
	heal.Fsck = true
	res, err = heal.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics.Snapshot().Counter("orchestrator_fsck_restarts_total"); got == 0 {
		t.Error("fsck heal left no trace in metrics — was the corruption detected?")
	}
	if res.Restarts == 0 {
		t.Error("healed campaign reports zero restarts")
	}
	if !bytes.Equal(canonical(t, out), canonical(t, singleOut)) {
		t.Fatal("healed campaign dataset differs from single-process crawl")
	}
	if !bytes.Equal(reportJSON(t, res.Report), reportJSON(t, ref.Report)) {
		t.Fatal("healed campaign report differs from single-process report")
	}
}

// TestCoordinatorResumeMissesCommittedCorruption documents why the fsck
// phase exists: without it, the same damage sails through a resume
// undetected (the resume contract reads only the tail past the last
// checkpoint) and the campaign fails — or worse, merges garbage — at
// merge time.
func TestCoordinatorResumeMissesCommittedCorruption(t *testing.T) {
	const sites = 48
	dir := t.TempDir()
	out := filepath.Join(dir, "merged.jsonl")
	if _, err := orchCampaign(out, sites, 4).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := chaos.FlipBit(orchestrator.ShardPath(out, 1), 9); err != nil {
		t.Fatal(err)
	}
	resume := orchCampaign(out, sites, 4)
	resume.Resume = true
	if _, err := resume.Run(context.Background()); err == nil {
		t.Fatal("corrupt shard merged without fsck — the merge validator must at least refuse")
	}
}
