package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"

	"github.com/netmeasure/topicscope/internal/chaos"
)

// Launcher starts one worker for a shard attempt. attempt is 0 for the
// first start and increments on every restart; resume tells the worker
// to continue from the shard journal's checkpoint instead of
// truncating.
type Launcher interface {
	Start(ctx context.Context, c *Campaign, spec ShardSpec, attempt int, resume bool) (Handle, error)
}

// Handle is a running worker. Wait blocks until it exits: nil means the
// shard completed; an error wrapping context.Canceled means the worker
// drained gracefully after a cancellation; anything else is a crash the
// coordinator may restart.
type Handle interface {
	Wait() error
}

// InProcLauncher runs shard workers as goroutines in this process —
// the default launcher, and the one the fault-handling tests use
// because it can arm deterministic crash plans per attempt. Workers
// record into the campaign's shared registry.
type InProcLauncher struct {
	// CrashPlan, when set, supplies the crash plan to arm for a given
	// (shard, attempt); nil means that attempt runs clean. The crash
	// matrix uses it to kill a worker at every checkpoint boundary and
	// prove the restart merges byte-identically.
	CrashPlan func(shard, attempt int) *chaos.CrashPlan
}

type inprocHandle struct {
	done chan struct{}
	err  error
}

func (h *inprocHandle) Wait() error {
	<-h.done
	return h.err
}

// Start launches the shard in a goroutine.
func (l *InProcLauncher) Start(ctx context.Context, c *Campaign, spec ShardSpec, attempt int, resume bool) (Handle, error) {
	sc := c.shardCampaign(spec, resume)
	if l.CrashPlan != nil {
		sc.CrashPlan = l.CrashPlan(spec.Index, attempt)
	}
	h := &inprocHandle{done: make(chan struct{})}
	//topicslint:ignore goroleak joined externally, the coordinator blocks on Handle.Wait which receives h.done
	go func() {
		defer close(h.done)
		_, h.err = sc.Run(ctx)
	}()
	return h, nil
}

// ExecLauncher spawns each shard worker as a separate topics-crawl
// process in -shard mode — the production launcher behind topics-orch.
// Worker liveness flows back through exit codes: 0 is done, 130 is the
// graceful-drain code topics-crawl already uses, anything else is a
// crash eligible for restart.
//
// The exec boundary carries only what topics-crawl flags can express:
// campaigns with a WorldConfig override, a custom Start or a Vantage
// are rejected (run those with the InProcLauncher).
type ExecLauncher struct {
	// Bin is the topics-crawl binary.
	Bin string
	// ExtraArgs are appended to every worker's command line — e.g.
	// {"-pprof", "127.0.0.1:0"} to give each worker a live /__metrics
	// endpoint for topics-monitor -shards.
	ExtraArgs []string
	// Stderr receives the workers' combined stderr (nil discards).
	Stderr io.Writer
}

type execHandle struct {
	cmd *exec.Cmd
}

func (h *execHandle) Wait() error {
	err := h.cmd.Wait()
	if err == nil {
		return nil
	}
	var exit *exec.ExitError
	if errors.As(err, &exit) && exit.ExitCode() == 130 {
		// topics-crawl's drain exit: the worker checkpointed and stopped
		// on purpose.
		return fmt.Errorf("orchestrator: worker drained: %w", context.Canceled)
	}
	return fmt.Errorf("orchestrator: worker exited: %w", err)
}

// Start spawns `topics-crawl -shard i/N` with the campaign's flags.
func (l *ExecLauncher) Start(ctx context.Context, c *Campaign, spec ShardSpec, attempt int, resume bool) (Handle, error) {
	if c.WorldConfig != nil || !c.Start.IsZero() || c.Vantage != "" {
		return nil, fmt.Errorf("orchestrator: exec launcher cannot express WorldConfig/Start/Vantage overrides")
	}
	// topics-crawl's -retries is "extra attempts; 0 disables", the
	// inverse of Campaign.Retries' "0 = default (2), negative disables".
	retries := c.Retries
	switch {
	case retries == 0:
		retries = 2
	case retries < 0:
		retries = 0
	}
	args := []string{
		"-shard", fmt.Sprintf("%d/%d", spec.Index, spec.Count),
		"-seed", strconv.FormatUint(c.Seed, 10),
		"-sites", strconv.Itoa(c.Sites),
		"-workers", strconv.Itoa(c.Workers),
		"-out", c.OutputPath,
		"-checkpoint-every", strconv.Itoa(c.CheckpointEvery),
		"-retries", strconv.Itoa(retries),
		"-chaos-seed", strconv.FormatUint(c.ChaosSeed, 10),
	}
	if c.Enforce {
		args = append(args, "-enforce")
	}
	if c.Chaos {
		args = append(args, "-chaos")
	}
	if c.Logger == nil {
		args = append(args, "-quiet")
	}
	if resume {
		args = append(args, "-resume")
	}
	args = append(args, l.ExtraArgs...)

	cmd := exec.CommandContext(ctx, l.Bin, args...)
	cmd.Stderr = l.Stderr
	cmd.Stdout = l.Stderr
	// Cancellation must trigger the worker's graceful drain (SIGINT →
	// checkpoint → exit 130), not a SIGKILL that would lose the tail.
	cmd.Cancel = func() error { return cmd.Process.Signal(os.Interrupt) }
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("orchestrator: starting worker for shard %s: %w", spec, err)
	}
	return &execHandle{cmd: cmd}, nil
}
