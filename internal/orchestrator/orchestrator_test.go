package orchestrator_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/netmeasure/topicscope"
	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/orchestrator"
)

// The distributed campaign's acceptance bar: an N-shard orchestrated
// crawl of the same (world, seed, chaos) produces byte-identical
// dataset bytes and report JSON to the single-process crawl — including
// after injected worker crashes and restarts. Every test in this file
// measures against the single-process topicscope.Campaign as ground
// truth.

const (
	parSeed      = 7
	parChaosSeed = 5
	parEvery     = 3
)

func canonical(t *testing.T, path string) []byte {
	t.Helper()
	b, err := durable.CanonicalBytes(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatalf("journal %s is empty", path)
	}
	return b
}

func reportJSON(t *testing.T, rep *topicscope.Report) []byte {
	t.Helper()
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runSingle is the ground truth: the one-process campaign journaling to
// out.
func runSingle(t *testing.T, out string, sites int) *topicscope.Results {
	t.Helper()
	res, err := topicscope.Campaign{
		Seed: parSeed, Sites: sites, Workers: 8,
		Chaos: true, ChaosSeed: parChaosSeed,
		OutputPath: out, CheckpointEvery: parEvery,
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func orchCampaign(out string, sites, shards int) orchestrator.Campaign {
	return orchestrator.Campaign{
		Seed: parSeed, Sites: sites, Workers: 8,
		Chaos: true, ChaosSeed: parChaosSeed,
		OutputPath: out, CheckpointEvery: parEvery,
		Shards: shards,
	}
}

func TestPartitionGeometry(t *testing.T) {
	specs, err := orchestrator.Partition(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantWindows := [][2]int{{1, 3}, {4, 6}, {7, 8}, {9, 10}}
	for i, s := range specs {
		if s.Index != i || s.Count != 4 {
			t.Errorf("shard %d identifies as %d/%d", i, s.Index, s.Count)
		}
		if s.FromRank != wantWindows[i][0] || s.ToRank != wantWindows[i][1] {
			t.Errorf("shard %d covers [%d,%d], want %v", i, s.FromRank, s.ToRank, wantWindows[i])
		}
	}

	// Every rank lands in exactly one shard, for any geometry.
	for _, c := range []struct{ sites, count int }{{1, 1}, {7, 3}, {100, 7}, {3, 8}} {
		specs, err := orchestrator.Partition(c.sites, c.count)
		if err != nil {
			t.Fatal(err)
		}
		next := 1
		for _, s := range specs {
			if s.FromRank != next {
				t.Fatalf("partition(%d,%d): rank gap at shard %d", c.sites, c.count, s.Index)
			}
			next = s.ToRank + 1
		}
		if next != c.sites+1 {
			t.Fatalf("partition(%d,%d): covers ranks up to %d", c.sites, c.count, next-1)
		}
	}

	if _, err := orchestrator.Partition(0, 2); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := orchestrator.Partition(10, 0); err == nil {
		t.Error("zero shards accepted")
	}
}

func TestParseShard(t *testing.T) {
	i, n, err := orchestrator.ParseShard("2/4")
	if err != nil || i != 2 || n != 4 {
		t.Fatalf("ParseShard(2/4) = %d,%d,%v", i, n, err)
	}
	for _, bad := range []string{"", "3", "4/4", "-1/4", "a/b", "1/0"} {
		if _, _, err := orchestrator.ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

func TestShardPathAndStatus(t *testing.T) {
	if got := orchestrator.ShardPath("crawl.jsonl", 2); got != "crawl.jsonl.shard-2" {
		t.Errorf("plain shard path %q", got)
	}
	if got := orchestrator.ShardPath("crawl.jsonl.gz", 0); got != "crawl.jsonl.shard-0.gz" {
		t.Errorf("gz shard path %q", got)
	}

	dir := t.TempDir()
	shardPath := filepath.Join(dir, "c.jsonl.shard-1")
	st := &orchestrator.Status{
		Shard: orchestrator.ShardSpec{Index: 1, Count: 4, FromRank: 26, ToRank: 50},
		PID:   123, MetricsURL: "http://127.0.0.1:999/__metrics", State: orchestrator.StateRunning,
	}
	if err := orchestrator.WriteStatus(shardPath, st); err != nil {
		t.Fatal(err)
	}
	got, err := orchestrator.ReadStatus(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *st {
		t.Errorf("status round trip: %+v vs %+v", got, st)
	}
}

// TestGoldenShardedParity is the tentpole's golden test: a 4-shard
// orchestrated campaign against the byte-identical single-process
// reference, on both plain and gzip journals, down to the report JSON.
func TestGoldenShardedParity(t *testing.T) {
	const sites = 120
	for _, ext := range []string{".jsonl", ".jsonl.gz"} {
		t.Run(strings.TrimPrefix(ext, "."), func(t *testing.T) {
			dir := t.TempDir()
			singleOut := filepath.Join(dir, "single"+ext)
			ref := runSingle(t, singleOut, sites)

			mergedOut := filepath.Join(dir, "merged"+ext)
			res, err := orchCampaign(mergedOut, sites, 4).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			if got, want := canonical(t, mergedOut), canonical(t, singleOut); !bytes.Equal(got, want) {
				t.Fatalf("merged dataset differs from single-process crawl (%d vs %d canonical bytes)", len(got), len(want))
			}
			if got, want := reportJSON(t, res.Report), reportJSON(t, ref.Report); !bytes.Equal(got, want) {
				t.Fatal("merged report JSON differs from single-process report")
			}
			if res.Data.Len() != ref.Data.Len() {
				t.Errorf("merged dataset holds %d visits, single-process %d", res.Data.Len(), ref.Data.Len())
			}
			if res.Restarts != 0 {
				t.Errorf("clean campaign recorded %d restarts", res.Restarts)
			}

			// The merged manifest matches the single-process one on every
			// committed fact (offsets differ only under gzip, where member
			// boundaries legitimately depend on checkpoint history).
			mm, sm := durable.LoadManifest(mergedOut), durable.LoadManifest(singleOut)
			if mm == nil || sm == nil {
				t.Fatal("missing manifest on a finished journal")
			}
			if mm.Shard != nil {
				t.Error("merged journal manifest still carries shard geometry")
			}
			if mm.Records != sm.Records || mm.Sites != sm.Sites || mm.WatermarkRank != sm.WatermarkRank {
				t.Errorf("merged manifest %+v diverges from single-process %+v", mm, sm)
			}
			if ext == ".jsonl" && mm.PayloadCRC != sm.PayloadCRC {
				t.Errorf("payload CRC %08x vs single-process %08x", mm.PayloadCRC, sm.PayloadCRC)
			}

			// Every worker reported a clean exit in its status file.
			for i := 0; i < 4; i++ {
				st, err := orchestrator.ReadStatus(orchestrator.ShardPath(mergedOut, i))
				if err != nil {
					t.Fatal(err)
				}
				if st.State != orchestrator.StateDone {
					t.Errorf("shard %d finished in state %q", i, st.State)
				}
			}
		})
	}
}

// shardRunner runs one shard of the fixed 48-site matrix campaign.
func shardRunner(out string, spec orchestrator.ShardSpec, resume bool, plan *chaos.CrashPlan) (*orchestrator.ShardResult, error) {
	sc := orchestrator.ShardCampaign{
		Seed: parSeed, Sites: 48, Workers: 8,
		Chaos: true, ChaosSeed: parChaosSeed,
		OutputPath: out, CheckpointEvery: parEvery,
		Shard: spec, Resume: resume, CrashPlan: plan,
	}
	return sc.Run(context.Background())
}

// TestCrashRestartMatrixMergeParity is the fault-handling satellite:
// kill shard 1's worker before every record append (covering every
// checkpoint boundary and every mid-checkpoint position), restart it
// from the shard checkpoint, and demand the restarted worker resumes
// O(tail) and the final merge stays byte-identical to the
// single-process reference.
func TestCrashRestartMatrixMergeParity(t *testing.T) {
	const sites = 48
	dir := t.TempDir()
	refBytes := canonical(t, func() string {
		p := filepath.Join(dir, "single.jsonl")
		runSingle(t, p, sites)
		return p
	}())

	out := filepath.Join(dir, "camp.jsonl")
	specs, err := orchestrator.Partition(sites, 4)
	if err != nil {
		t.Fatal(err)
	}
	shardPaths := make([]string, len(specs))
	for i, spec := range specs {
		shardPaths[i] = orchestrator.ShardPath(out, i)
		if i == 1 {
			continue // the crash victim, run per crashpoint below
		}
		if _, err := shardRunner(out, spec, false, nil); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}

	// One clean run of the victim shard pins the baseline and tells us
	// how many crashpoints the matrix has.
	victim := shardPaths[1]
	if _, err := shardRunner(out, specs[1], false, nil); err != nil {
		t.Fatal(err)
	}
	m := durable.LoadManifest(victim)
	if m == nil {
		t.Fatal("clean shard has no manifest")
	}
	n := m.Records
	if n < 10 {
		t.Fatalf("matrix too small: shard 1 has %d records", n)
	}
	if _, err := orchestrator.MergeJournals(out, shardPaths, obs.NewRegistry(), nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical(t, out), refBytes) {
		t.Fatal("clean 4-shard merge differs from single-process crawl")
	}

	for k := int64(1); k < n; k++ {
		os.Remove(victim)
		os.Remove(durable.ManifestPath(victim))

		_, err := shardRunner(out, specs[1], false, &chaos.CrashPlan{AfterRecords: k})
		if err == nil {
			t.Fatalf("crashpoint %d: worker survived its own death", k)
		}
		if !chaos.IsCrash(err) {
			t.Fatalf("crashpoint %d: unexpected error: %v", k, err)
		}
		if st, err := orchestrator.ReadStatus(victim); err != nil || st.State != orchestrator.StateFailed {
			t.Fatalf("crashpoint %d: status %+v, %v — want %q", k, st, err, orchestrator.StateFailed)
		}

		// Restart from the shard checkpoint. When a checkpoint was
		// committed before the crash, the resume scan must read exactly
		// the tail past it — the O(tail) contract.
		size := fileSize(t, victim)
		cm := durable.LoadManifest(victim)
		res, err := shardRunner(out, specs[1], true, nil)
		if err != nil {
			t.Fatalf("crashpoint %d: restarted worker: %v", k, err)
		}
		if res.Resumed == nil {
			t.Fatalf("crashpoint %d: restart reported no resume state", k)
		}
		if cm != nil {
			if want := size - cm.Offset; res.Resumed.BytesRead != want {
				t.Fatalf("crashpoint %d: resume read %d raw bytes, want the %d-byte tail", k, res.Resumed.BytesRead, want)
			}
		}

		if _, err := orchestrator.MergeJournals(out, shardPaths, obs.NewRegistry(), nil); err != nil {
			t.Fatalf("crashpoint %d: merge: %v", k, err)
		}
		if !bytes.Equal(canonical(t, out), refBytes) {
			t.Fatalf("crashpoint %d: crash+restart merge differs from single-process crawl", k)
		}
	}
}

// TestCoordinatorRestartsCrashedWorkers drives the whole supervision
// loop: two workers crash (one at a record boundary, one with a torn
// byte-level write), the coordinator restarts both from their shard
// checkpoints, and the campaign still lands on the single-process
// bytes and report.
func TestCoordinatorRestartsCrashedWorkers(t *testing.T) {
	const sites = 48
	dir := t.TempDir()
	singleOut := filepath.Join(dir, "single.jsonl")
	ref := runSingle(t, singleOut, sites)

	out := filepath.Join(dir, "merged.jsonl")
	c := orchCampaign(out, sites, 4)
	c.MaxRestarts = 1
	c.Launcher = &orchestrator.InProcLauncher{
		CrashPlan: func(shard, attempt int) *chaos.CrashPlan {
			if attempt > 0 {
				return nil
			}
			switch shard {
			case 1:
				return &chaos.CrashPlan{AfterBytes: 2000}
			case 2:
				return &chaos.CrashPlan{AfterRecords: 5}
			}
			return nil
		},
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 2 {
		t.Errorf("campaign recorded %d restarts, want 2", res.Restarts)
	}
	if got := res.Metrics.Snapshot().Counter("orchestrator_worker_restarts_total"); got != 2 {
		t.Errorf("restart counter %d, want 2", got)
	}
	if !bytes.Equal(canonical(t, out), canonical(t, singleOut)) {
		t.Fatal("crash+restart campaign dataset differs from single-process crawl")
	}
	if !bytes.Equal(reportJSON(t, res.Report), reportJSON(t, ref.Report)) {
		t.Fatal("crash+restart campaign report differs from single-process report")
	}
}

// TestCoordinatorRestartBudgetExhausted pins the supervision failure
// path: a shard that crashes on every attempt exhausts its budget, the
// campaign fails with the crash as root cause, and the siblings are
// drained rather than left running.
func TestCoordinatorRestartBudgetExhausted(t *testing.T) {
	dir := t.TempDir()
	c := orchCampaign(filepath.Join(dir, "merged.jsonl"), 48, 4)
	c.MaxRestarts = 1
	c.Launcher = &orchestrator.InProcLauncher{
		CrashPlan: func(shard, attempt int) *chaos.CrashPlan {
			if shard == 0 {
				return &chaos.CrashPlan{AfterRecords: 3}
			}
			return nil
		},
	}
	_, err := c.Run(context.Background())
	if err == nil {
		t.Fatal("campaign succeeded despite a permanently crashing shard")
	}
	if !strings.Contains(err.Error(), "restart budget") {
		t.Errorf("error does not name the exhausted budget: %v", err)
	}
	if !chaos.IsCrash(err) {
		t.Errorf("root cause lost from the error chain: %v", err)
	}
}

// TestMergeJournalsRejectsBadShards covers the merge validator: missing
// shards, wrong geometry, incomplete shards, and that a failed merge
// leaves no partial output behind.
func TestMergeJournalsRejectsBadShards(t *testing.T) {
	const sites = 24
	dir := t.TempDir()
	out := filepath.Join(dir, "m.jsonl")
	specs, err := orchestrator.Partition(sites, 2)
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{orchestrator.ShardPath(out, 0), orchestrator.ShardPath(out, 1)}
	run := func(i int, resume bool, plan *chaos.CrashPlan) error {
		sc := orchestrator.ShardCampaign{
			Seed: parSeed, Sites: sites, Workers: 4,
			OutputPath: out, CheckpointEvery: parEvery,
			Shard: specs[i], Resume: resume, CrashPlan: plan,
		}
		_, err := sc.Run(context.Background())
		return err
	}
	if err := run(0, false, nil); err != nil {
		t.Fatal(err)
	}

	assertRejected := func(name string, paths []string) {
		t.Helper()
		if _, err := orchestrator.MergeJournals(out, paths, obs.NewRegistry(), nil); err == nil {
			t.Fatalf("%s: merge accepted", name)
		}
		if _, err := os.Stat(out); !os.IsNotExist(err) {
			t.Fatalf("%s: failed merge left partial output behind", name)
		}
	}

	assertRejected("missing sibling", paths)
	assertRejected("zero shards", nil)
	assertRejected("wrong order", []string{paths[0], paths[0]})

	// An incomplete shard (crashed, never restarted) must be refused:
	// its watermark sits below its window's ToRank.
	if err := run(1, false, &chaos.CrashPlan{AfterRecords: 8}); err == nil || !chaos.IsCrash(err) {
		t.Fatalf("crash plan did not fire: %v", err)
	}
	assertRejected("incomplete shard", paths)

	// Completing the shard heals the merge.
	if err := run(1, true, nil); err != nil {
		t.Fatal(err)
	}
	st, err := orchestrator.MergeJournals(out, paths, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || st.WatermarkRank != sites {
		t.Errorf("merge stats %+v", st)
	}
	if m := durable.LoadManifest(out); m == nil || m.Records != st.Records {
		t.Errorf("merged manifest %+v does not match stats %+v", m, st)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestMergeOnRecordOrder pins the onRecord hook the coordinator builds
// its per-shard analysis partials from: payloads arrive in merge order,
// tagged with their shard.
func TestMergeOnRecordOrder(t *testing.T) {
	const sites = 24
	dir := t.TempDir()
	out := filepath.Join(dir, "m.jsonl")
	specs, err := orchestrator.Partition(sites, 3)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(specs))
	for i, spec := range specs {
		paths[i] = orchestrator.ShardPath(out, i)
		sc := orchestrator.ShardCampaign{
			Seed: parSeed, Sites: sites, Workers: 4,
			OutputPath: out, CheckpointEvery: parEvery, Shard: spec,
		}
		if _, err := sc.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	lastShard, count := 0, int64(0)
	var relayed []byte
	stats, err := orchestrator.MergeJournals(out, paths, obs.NewRegistry(), func(shard int, payload []byte) error {
		if shard < lastShard {
			return fmt.Errorf("shard %d after %d", shard, lastShard)
		}
		lastShard = shard
		count++
		relayed = durable.AppendFrame(relayed, payload)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != stats.Records {
		t.Errorf("hook saw %d records, merge reports %d", count, stats.Records)
	}
	if !bytes.Equal(relayed, canonical(t, out)) {
		t.Error("hook payloads do not reassemble the merged journal")
	}
}
