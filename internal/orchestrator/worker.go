package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"time"

	"github.com/netmeasure/topicscope/internal/analysis"
	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/crawler"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/webserver"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// ShardCampaign runs one shard of a distributed campaign in-process:
// generate only the shard's window of the world (GenerateRange), crawl
// ranks [FromRank,ToRank] against an in-process server, and journal the
// visits to ShardPath(OutputPath, Shard.Index) with shard-stamped
// checkpoints. It is the engine behind topics-crawl -shard and the
// coordinator's in-process launcher.
//
// Byte parity with the single-process campaign needs nothing special
// here: visit timestamps derive from the global rank, chaos decisions
// are pure per-request functions, and the crawler's rank-ordered
// consumer makes the journal's record order a pure function of the rank
// window.
type ShardCampaign struct {
	// Seed, Sites, Workers, Enforce, Start, Vantage, Chaos, ChaosSeed,
	// Retries and WorldConfig mirror topicscope.Campaign and must be
	// identical across every shard of one campaign.
	Seed        uint64
	Sites       int
	Workers     int
	Enforce     bool
	Start       time.Time
	Vantage     string
	Chaos       bool
	ChaosSeed   uint64
	Retries     int
	WorldConfig *webworld.Config
	// VisitBudget is the optional per-visit stage-clock watchdog
	// (topics-crawl -visit-budget-ms).
	VisitBudget time.Duration

	// OutputPath is the campaign's dataset path; the shard journal goes
	// to ShardPath(OutputPath, Shard.Index).
	OutputPath string
	// CheckpointEvery is the shard journal's checkpoint cadence.
	CheckpointEvery int
	// Shard is this worker's rank window.
	Shard ShardSpec
	// Resume continues from the shard journal's last checkpoint instead
	// of truncating it.
	Resume bool

	// Logger receives progress (nil = silent). Metrics, when set, is the
	// registry the shard records into (serve it with obs.DebugMux to
	// expose /__metrics).
	Logger  *slog.Logger
	Metrics *obs.Registry
	// MetricsURL is recorded in the shard's status file so the
	// coordinator and topics-monitor -shards can find the live registry.
	MetricsURL string
	// CrashPlan, when set, arms the deterministic crashpoint injector on
	// the journal's write path — the fault-handling tests kill workers
	// with it. A crash aborts the journal exactly as kill -9 would.
	CrashPlan *chaos.CrashPlan
	// FS, when set, routes every artifact write (journal, manifest,
	// frame index, live snapshot, status) through an explicit filesystem
	// seam — the storage fault injector (chaos.FaultFS) plugs in here.
	// Nil means the real OS.
	FS durable.FS
	// Retry is the write-path retry policy for authoritative artifacts
	// (journal fsync, manifest); the zero value means no retries.
	Retry durable.RetryPolicy
}

// ShardResult reports a finished (or drained) shard.
type ShardResult struct {
	// Path is the shard journal's path.
	Path string
	// Stats aggregates the shard's crawl.
	Stats crawler.Stats
	// Resumed reports recovery detail when the shard was resumed.
	Resumed *dataset.ResumeState
}

// Run executes the shard. On an injected crash it returns the
// chaos.ErrInjectedCrash chain after abandoning the journal (kill -9
// semantics: no final checkpoint); on context cancellation it drains,
// checkpoints and returns ctx.Err().
func (c ShardCampaign) Run(ctx context.Context) (*ShardResult, error) {
	if c.Shard.Count < 1 || c.Shard.Index < 0 || c.Shard.Index >= c.Shard.Count ||
		c.Shard.FromRank < 1 || c.Shard.ToRank < c.Shard.FromRank {
		return nil, fmt.Errorf("orchestrator: invalid shard %s", c.Shard)
	}
	cfg := webworld.Config{Seed: c.Seed, NumSites: c.Sites}
	if c.WorldConfig != nil {
		cfg = *c.WorldConfig
	}
	world := webworld.GenerateRange(cfg, c.Shard.FromRank, c.Shard.ToRank)
	server := webserver.New(world, nil)
	allow := attestation.NewAllowlist(world.Catalog.AllowedDomains()...)

	client := server.Client()
	if c.Chaos {
		client.Transport = chaos.NewInjector(webworld.DefaultChaos(c.ChaosSeed), client.Transport)
	}
	attempts := 0
	if c.Retries > 0 {
		attempts = c.Retries + 1
	} else if c.Retries < 0 {
		attempts = 1
	}
	reg := c.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}

	list := world.List()
	rankSite := make(map[int]string, len(list.Entries))
	for _, e := range list.Entries {
		rankSite[e.Rank] = e.Domain
	}

	// The shard journal's watermark must sweep the ranks below the
	// window (they belong to sibling shards) and stop at ToRank: skip
	// reports pre-window ranks and resumed sites, and nothing above the
	// window, so a complete shard's manifest reads WatermarkRank ==
	// ToRank — the completeness check MergeJournals enforces.
	skipSites := map[string]bool{}
	jopts := dataset.JournalOptions{
		CheckpointEvery: c.CheckpointEvery,
		Metrics:         reg,
		Shard:           c.Shard.Info(),
		Skip: func(rank int) bool {
			if rank < c.Shard.FromRank {
				return true
			}
			if rank > c.Shard.ToRank {
				return false
			}
			return skipSites[rankSite[rank]]
		},
	}
	jopts.Durable = durable.Options{FS: c.FS, Retry: c.Retry}
	if c.CrashPlan != nil {
		jopts.Durable.BeforeAppend = c.CrashPlan.BeforeAppend()
		jopts.Durable.Wrap = c.CrashPlan.Wrap()
	}

	path := ShardPath(c.OutputPath, c.Shard.Index)
	res := &ShardResult{Path: path}
	// Each shard maintains its own live analysis index beside its
	// journal; the coordinator merges the per-shard snapshots with
	// MergeShardIndexes instead of re-folding every shard's records.
	liveIn := &analysis.Input{Allowlist: allow, Metrics: reg, FS: c.FS}
	var journal *dataset.JournalWriter
	var err error
	if c.Resume {
		sink, lst, serr := analysis.OpenLiveSink(path, liveIn)
		if serr != nil {
			return nil, serr
		}
		if c.Logger != nil && lst.SnapshotRestored {
			c.Logger.Info("shard index snapshot restored", "shard", c.Shard.String(),
				"records", lst.SnapshotRecords)
		}
		jopts.Observer = sink
		var st *dataset.ResumeState
		journal, st, err = dataset.ResumeJournal(path, jopts)
		if err != nil {
			return nil, err
		}
		res.Resumed = st
		for site := range st.Completed {
			skipSites[site] = true
		}
		for _, e := range list.Entries {
			if e.Rank <= st.WatermarkRank {
				skipSites[e.Domain] = true
			}
		}
		if c.Logger != nil {
			c.Logger.Info("shard resume", "shard", c.Shard.String(),
				"kept", st.RecordsKept, "skipping", len(skipSites), "tailBytes", st.BytesRead)
		}
	} else {
		jopts.Observer = analysis.NewLiveSink(path, liveIn)
		journal, err = dataset.CreateJournal(path, jopts)
		if err != nil {
			return nil, err
		}
	}
	defer journal.Abort() // no-op after Close

	crawlSkip := make(map[string]bool, len(skipSites))
	for site := range skipSites {
		crawlSkip[site] = true
	}
	cr := crawler.New(crawler.Config{
		Client:             client,
		ReferenceAllowlist: allow,
		Enforce:            c.Enforce,
		Workers:            c.Workers,
		Start:              c.Start,
		Vantage:            c.Vantage,
		Writer:             journal,
		SkipSites:          crawlSkip,
		Attempts:           attempts,
		VisitBudget:        c.VisitBudget,
		Logger:             c.Logger,
		Metrics:            reg,
	})

	c.writeStatus(path, StateRunning, nil)
	crawlRes, err := cr.Run(ctx, list)
	if err != nil {
		if chaos.IsCrash(err) {
			// The injected crash is a simulated kill -9: leave the
			// journal exactly as the dying process would — buffered
			// records lost, no final checkpoint.
			c.writeStatus(path, StateFailed, err)
			return nil, fmt.Errorf("orchestrator: shard %s crashed: %w", c.Shard, err)
		}
		if errors.Is(err, context.Canceled) {
			// Graceful drain: the crawler already flushed a final
			// checkpoint; make the manifest durable before reporting.
			if cerr := journal.Close(); cerr != nil && ctx.Err() == nil {
				return nil, fmt.Errorf("orchestrator: closing shard journal: %w", cerr)
			}
			res.Stats = crawlRes.Stats
			c.writeStatus(path, StateDrained, nil)
			return res, err
		}
		if durable.IsDiskFull(err) {
			// Persistent ENOSPC is never retried: fail fast, keep the last
			// committed checkpoint intact, and let the operator free space
			// and resume.
			reg.Add("storage_disk_full_total", 1)
			c.writeStatus(path, StateFailed, err)
			return nil, fmt.Errorf("orchestrator: shard %s out of disk space (resume after freeing space): %w", c.Shard, err)
		}
		c.writeStatus(path, StateFailed, err)
		return nil, fmt.Errorf("orchestrator: shard %s: %w", c.Shard, err)
	}
	if err := journal.Close(); err != nil {
		c.writeStatus(path, StateFailed, err)
		return nil, fmt.Errorf("orchestrator: closing shard journal: %w", err)
	}
	res.Stats = crawlRes.Stats
	c.writeStatus(path, StateDone, nil)
	return res, nil
}

// writeStatus best-effort updates the shard's status file; liveness
// reporting must never fail a crawl.
func (c ShardCampaign) writeStatus(path, state string, cause error) {
	st := &Status{Shard: c.Shard, PID: os.Getpid(), MetricsURL: c.MetricsURL, State: state}
	if cause != nil {
		st.Error = cause.Error()
	}
	if err := WriteStatus(path, st); err != nil && c.Logger != nil {
		c.Logger.Warn("status write failed", "path", StatusPath(path), "err", err)
	}
}
