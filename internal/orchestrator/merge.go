package orchestrator

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/obs"
)

// MergeStats reports what a shard merge assembled.
type MergeStats struct {
	// Shards is how many shard journals were merged.
	Shards int
	// Records is the merged record count; Sites the merged
	// completed-site count.
	Records int64
	Sites   int
	// PayloadCRC is the running CRC-32C over every merged payload — the
	// same content hash a single-process journal's manifest would carry.
	PayloadCRC uint32
	// WatermarkRank/WatermarkSite come from the final shard's manifest.
	WatermarkRank int
	WatermarkSite string
}

// mergeProbe is the minimal record shape the merge validator decodes:
// just enough to check rank contiguity without knowing the full visit
// schema.
type mergeProbe struct {
	Site string `json:"site"`
	Rank int    `json:"rank"`
}

// MergeJournals concatenates rank-contiguous shard journals into one
// dataset journal at out, re-framing every record through
// internal/durable. Because a journal's canonical byte stream is the
// pure concatenation of its framed records — checkpoint state lives in
// the manifest, and gzip member boundaries vanish under
// durable.CanonicalBytes — the merged dataset is byte-identical to the
// journal a single-process crawl of the same campaign writes.
//
// Each shard is validated against its checkpoint manifest before a
// byte is written: the manifest must exist, carry the expected shard
// geometry, be complete (WatermarkRank == ToRank), and the journal's
// records must match the manifest's count and payload CRC; record
// ranks must stay inside the shard's window and never decrease. Any
// violation aborts the merge with no partial output (the output is
// written atomically via the journal-create path only after all
// inputs validate... see note below: validation happens per shard
// before its records are appended, and a failed merge removes the
// partial output).
//
// onRecord, when non-nil, observes every payload in merge order with
// its shard index — the coordinator uses it to build per-shard
// analysis partials without re-reading the merged journal.
func MergeJournals(out string, shardPaths []string, reg *obs.Registry, onRecord func(shard int, payload []byte) error) (*MergeStats, error) {
	if len(shardPaths) == 0 {
		return nil, fmt.Errorf("orchestrator: merging zero shards")
	}

	st := &MergeStats{Shards: len(shardPaths)}
	merged, err := durable.Create(out, durable.Options{})
	if err != nil {
		return nil, err
	}
	durable.RemoveManifest(out)
	fail := func(err error) (*MergeStats, error) {
		merged.Abort()
		os.Remove(out)
		return nil, err
	}

	prevRank := 0
	for i, path := range shardPaths {
		m := durable.LoadManifest(path)
		if m == nil {
			return fail(fmt.Errorf("orchestrator: shard %d (%s): no usable checkpoint manifest", i, path))
		}
		s := m.Shard
		if s == nil {
			return fail(fmt.Errorf("orchestrator: shard %d (%s): manifest carries no shard geometry", i, path))
		}
		if s.Index != i || s.Count != len(shardPaths) {
			return fail(fmt.Errorf("orchestrator: shard %d (%s): manifest says shard %d/%d", i, path, s.Index, s.Count))
		}
		if s.FromRank != prevRank+1 {
			return fail(fmt.Errorf("orchestrator: shard %d (%s): ranks start at %d, want %d (gap or overlap)", i, path, s.FromRank, prevRank+1))
		}
		if m.WatermarkRank != s.ToRank {
			return fail(fmt.Errorf("orchestrator: shard %d (%s): incomplete — watermark %d of %d; resume the worker first", i, path, m.WatermarkRank, s.ToRank))
		}

		// Stream the shard's committed prefix, validating rank bounds
		// and re-framing into the merged journal.
		rc, _, err := durable.OpenTail(path, 0)
		if err != nil {
			return fail(err)
		}
		var shardCRC uint32
		var shardRecords int64
		lastRank := prevRank
		scanErr := func() error {
			defer rc.Close()
			_, err := durable.ScanRecords(rc, func(payload []byte) error {
				if shardRecords >= m.Records {
					// Past the committed prefix: uncommitted tail records
					// (a worker died after its last checkpoint without
					// being restarted). The merge only trusts committed
					// state.
					return fmt.Errorf("orchestrator: shard %d (%s): %d records beyond the committed %d; resume the worker first", i, path, shardRecords+1, m.Records)
				}
				var probe mergeProbe
				if err := json.Unmarshal(payload, &probe); err != nil {
					return fmt.Errorf("orchestrator: shard %d (%s): undecodable record %d: %w", i, path, shardRecords, err)
				}
				if probe.Rank < s.FromRank || probe.Rank > s.ToRank {
					return fmt.Errorf("orchestrator: shard %d (%s): record for rank %d outside window [%d,%d]", i, path, probe.Rank, s.FromRank, s.ToRank)
				}
				if probe.Rank < lastRank {
					return fmt.Errorf("orchestrator: shard %d (%s): rank %d after %d — journal not rank-ordered", i, path, probe.Rank, lastRank)
				}
				lastRank = probe.Rank
				shardCRC = durable.PayloadCRC(shardCRC, payload)
				shardRecords++
				if onRecord != nil {
					if err := onRecord(i, payload); err != nil {
						return err
					}
				}
				return merged.Append(payload)
			})
			return err
		}()
		if scanErr != nil {
			return fail(scanErr)
		}
		if shardRecords != m.Records {
			return fail(fmt.Errorf("orchestrator: shard %d (%s): %d records on disk, manifest committed %d", i, path, shardRecords, m.Records))
		}
		if shardCRC != m.PayloadCRC {
			return fail(fmt.Errorf("orchestrator: shard %d (%s): payload CRC %08x, manifest %08x", i, path, shardCRC, m.PayloadCRC))
		}

		st.Records += shardRecords
		st.Sites += m.Sites
		st.WatermarkRank = m.WatermarkRank
		st.WatermarkSite = m.WatermarkSite
		prevRank = s.ToRank
		reg.Add("orchestrator_shards_merged_total", 1)
		reg.Add("orchestrator_records_merged_total", shardRecords)
	}

	ck, err := merged.Sync()
	if err != nil {
		return fail(err)
	}
	if err := merged.Close(); err != nil {
		return fail(err)
	}
	st.PayloadCRC = ck.PayloadCRC

	// The merged journal gets a plain (shard-free) manifest, as if a
	// single process had written it: resumable, analyzable, done.
	manifest := &durable.Manifest{
		Offset:        ck.Offset,
		Records:       ck.Records,
		PayloadCRC:    ck.PayloadCRC,
		WatermarkRank: st.WatermarkRank,
		WatermarkSite: st.WatermarkSite,
		Sites:         st.Sites,
	}
	if err := manifest.Store(out); err != nil {
		return nil, err
	}
	return st, nil
}
