package topics

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/netmeasure/topicscope/internal/classifier"
	"github.com/netmeasure/topicscope/internal/taxonomy"
)

// vclock is an injectable virtual clock.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func newVClock() *vclock {
	return &vclock{t: time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *vclock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *vclock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestEngine(t *testing.T, cfg Config) (*Engine, *vclock) {
	t.Helper()
	tx := taxonomy.NewV2()
	cl := classifier.New(tx)
	clk := newVClock()
	cfg.Now = clk.Now
	return NewEngine(tx, cl, cfg), clk
}

// fiveTopicSites yields sites whose classification covers five distinct
// single-keyword topics, so an epoch's top list needs no padding.
var fiveTopicSites = []string{
	"news.example.com",
	"travel.example.net",
	"chess.example.org",
	"pizza.example.io",
	"poetry.example.dev",
}

func fillEpoch(e *Engine, caller string) {
	for _, s := range fiveTopicSites {
		e.RecordVisit(s)
		e.RecordVisit(s)
		if caller != "" {
			e.Observe(s, caller)
		}
	}
}

func TestNoHistoryNoTopics(t *testing.T) {
	e, _ := newTestEngine(t, Config{NoNoise: true, Seed: 1})
	fillEpoch(e, "adv.com")
	if got := e.BrowsingTopics("adv.com", "news.example.com"); len(got) != 0 {
		t.Errorf("no completed epoch, got %v", got)
	}
}

func TestObserverReceivesTopic(t *testing.T) {
	e, clk := newTestEngine(t, Config{NoNoise: true, Seed: 7})
	fillEpoch(e, "adv.com")
	clk.Advance(DefaultEpochDuration)

	got := e.BrowsingTopics("adv.com", "some-site.com")
	if len(got) != 1 {
		t.Fatalf("observer got %d results, want 1 (one completed epoch): %v", len(got), got)
	}
	r := got[0]
	if r.EpochIndex != 0 {
		t.Errorf("EpochIndex = %d, want 0", r.EpochIndex)
	}
	if r.Noised {
		t.Error("noise disabled but Noised set")
	}
	if r.TaxonomyVersion != string(taxonomy.V2) {
		t.Errorf("TaxonomyVersion = %q", r.TaxonomyVersion)
	}
	// The topic must be one of the five visited topics.
	tops := e.CompletedEpochs()[0].Top
	found := false
	for _, tt := range tops {
		if tt.ID == r.Topic.ID && !tt.Padded {
			found = true
		}
	}
	if !found {
		t.Errorf("returned topic %v not among epoch tops %v", r.Topic, tops)
	}
}

func TestNonObserverFiltered(t *testing.T) {
	e, clk := newTestEngine(t, Config{NoNoise: true, Seed: 7})
	fillEpoch(e, "adv.com")
	clk.Advance(DefaultEpochDuration)

	// stranger.com never observed the user during the epoch: with a full
	// (unpadded) top list and noise off it must receive nothing.
	if got := e.BrowsingTopics("stranger.com", "some-site.com"); len(got) != 0 {
		t.Errorf("non-observer got %v, want nothing", got)
	}
}

func TestSameSiteSameTopicAcrossCallers(t *testing.T) {
	e, clk := newTestEngine(t, Config{NoNoise: true, Seed: 11})
	fillEpoch(e, "a.com")
	for _, s := range fiveTopicSites {
		e.Observe(s, "b.com")
	}
	clk.Advance(DefaultEpochDuration)

	for i := 0; i < 20; i++ {
		site := fmt.Sprintf("site-%d.com", i)
		ra := e.BrowsingTopics("a.com", site)
		rb := e.BrowsingTopics("b.com", site)
		if len(ra) != 1 || len(rb) != 1 {
			t.Fatalf("site %s: observers got %v / %v", site, ra, rb)
		}
		if ra[0].Topic != rb[0].Topic {
			t.Errorf("site %s: callers see different topics %v vs %v — fingerprinting hazard",
				site, ra[0].Topic, rb[0].Topic)
		}
	}
}

func TestTopicVariesAcrossSites(t *testing.T) {
	e, clk := newTestEngine(t, Config{NoNoise: true, Seed: 3})
	fillEpoch(e, "adv.com")
	clk.Advance(DefaultEpochDuration)

	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		got := e.BrowsingTopics("adv.com", fmt.Sprintf("s%d.com", i))
		for _, r := range got {
			seen[r.Topic.ID] = true
		}
	}
	if len(seen) < 3 {
		t.Errorf("slot selection covered only %d of 5 top topics over 200 sites", len(seen))
	}
}

func TestCallAsideEffectObserves(t *testing.T) {
	e, clk := newTestEngine(t, Config{NoNoise: true, Seed: 5})
	// Epoch 1: the caller merely *calls* the API on each site (returns
	// nothing — no history) which must count as observation.
	for _, s := range fiveTopicSites {
		e.RecordVisit(s)
		e.BrowsingTopics("adv.com", s)
	}
	clk.Advance(DefaultEpochDuration)
	if got := e.BrowsingTopics("adv.com", "anywhere.com"); len(got) != 1 {
		t.Errorf("caller that observed via API calls got %v, want 1 topic", got)
	}
}

func TestPaddingWhenHistoryThin(t *testing.T) {
	e, clk := newTestEngine(t, Config{NoNoise: true, Seed: 9})
	e.RecordVisit("news.example.com") // one topic only
	clk.Advance(DefaultEpochDuration)

	eps := e.CompletedEpochs()
	if len(eps) != 1 {
		t.Fatalf("got %d epochs", len(eps))
	}
	top := eps[0].Top
	if len(top) != DefaultTopPerEpoch {
		t.Fatalf("top list has %d slots, want %d", len(top), DefaultTopPerEpoch)
	}
	realCount, padCount := 0, 0
	seen := map[int]bool{}
	for _, tt := range top {
		if seen[tt.ID] {
			t.Errorf("duplicate topic %d in top list", tt.ID)
		}
		seen[tt.ID] = true
		if tt.Padded {
			padCount++
			if tt.Visits != 0 {
				t.Errorf("padded slot with visits %d", tt.Visits)
			}
		} else {
			realCount++
		}
	}
	if realCount != 1 || padCount != DefaultTopPerEpoch-1 {
		t.Errorf("real=%d pad=%d, want 1 and %d", realCount, padCount, DefaultTopPerEpoch-1)
	}
}

func TestPaddedTopicsBypassCallerFilter(t *testing.T) {
	e, clk := newTestEngine(t, Config{NoNoise: true, Seed: 9})
	e.RecordVisit("news.example.com")
	clk.Advance(DefaultEpochDuration)

	// A stranger may still receive padded topics (they carry no signal).
	got := 0
	for i := 0; i < 100; i++ {
		if rs := e.BrowsingTopics("stranger.com", fmt.Sprintf("x%d.com", i)); len(rs) > 0 {
			got++
		}
	}
	// 4 of 5 slots are pads, so roughly 80% of sites should yield one.
	if got < 50 {
		t.Errorf("stranger received topics on %d/100 sites, expected most (pads bypass filter)", got)
	}
}

func TestTopKOrderingAndTies(t *testing.T) {
	visits := map[int]int{10: 3, 2: 5, 7: 5, 30: 1, 4: 2, 9: 1}
	top := topK(visits, 5)
	wantIDs := []int{2, 7, 10, 4, 9} // 5,5,3,2,1(tie broken by ID: 9<30)
	if len(top) != 5 {
		t.Fatalf("topK returned %d", len(top))
	}
	for i, want := range wantIDs {
		if top[i].ID != want {
			t.Errorf("topK[%d] = %+v, want ID %d", i, top[i], want)
		}
	}
}

func TestEpochRotationKeepsThree(t *testing.T) {
	e, clk := newTestEngine(t, Config{NoNoise: true, Seed: 2})
	for week := 0; week < 6; week++ {
		fillEpoch(e, "adv.com")
		clk.Advance(DefaultEpochDuration)
		e.RecordVisit("news.example.com") // trigger rotation
	}
	eps := e.CompletedEpochs()
	if len(eps) != DefaultEpochsToShare {
		t.Errorf("history holds %d epochs, want %d", len(eps), DefaultEpochsToShare)
	}
	for i := 1; i < len(eps); i++ {
		if !eps[i].Start.Before(eps[i-1].Start) {
			t.Error("epochs not ordered most recent first")
		}
	}
}

func TestThreeEpochsThreeTopics(t *testing.T) {
	e, clk := newTestEngine(t, Config{NoNoise: true, Seed: 13})
	for week := 0; week < 3; week++ {
		fillEpoch(e, "adv.com")
		clk.Advance(DefaultEpochDuration)
	}
	got := e.BrowsingTopics("adv.com", "landing.com")
	if len(got) == 0 || len(got) > DefaultEpochsToShare {
		t.Fatalf("got %d results, want 1..%d", len(got), DefaultEpochsToShare)
	}
	// Results must be deduplicated by topic.
	seen := map[int]bool{}
	for _, r := range got {
		if seen[r.Topic.ID] {
			t.Errorf("duplicate topic %v in results", r.Topic)
		}
		seen[r.Topic.ID] = true
	}
}

func TestNoiseRateApproximatesConfig(t *testing.T) {
	e, clk := newTestEngine(t, Config{Seed: 21}) // default 5% noise
	fillEpoch(e, "adv.com")
	clk.Advance(DefaultEpochDuration)

	const n = 4000
	noised := 0
	for i := 0; i < n; i++ {
		for _, r := range e.BrowsingTopics("adv.com", fmt.Sprintf("n%d.com", i)) {
			if r.Noised {
				noised++
			}
		}
	}
	rate := float64(noised) / n
	if rate < 0.02 || rate > 0.09 {
		t.Errorf("noise rate = %.3f over %d sites, want ≈0.05", rate, n)
	}
}

func TestNoiseBypassesCallerFilter(t *testing.T) {
	e, clk := newTestEngine(t, Config{Seed: 21})
	fillEpoch(e, "adv.com")
	clk.Advance(DefaultEpochDuration)

	// A stranger should occasionally receive a noised topic even with a
	// full top list.
	noised := 0
	for i := 0; i < 4000; i++ {
		for _, r := range e.BrowsingTopics("stranger.com", fmt.Sprintf("m%d.com", i)) {
			if !r.Noised {
				t.Fatalf("stranger received non-noised topic %v", r)
			}
			noised++
		}
	}
	if noised == 0 {
		t.Error("stranger never received noise topics over 4000 sites")
	}
}

func TestDeterminismAcrossEngines(t *testing.T) {
	run := func() []Result {
		e, clk := newTestEngine(t, Config{Seed: 99, NoNoise: true})
		fillEpoch(e, "adv.com")
		clk.Advance(DefaultEpochDuration)
		var all []Result
		for i := 0; i < 50; i++ {
			all = append(all, e.BrowsingTopics("adv.com", fmt.Sprintf("d%d.com", i))...)
		}
		return all
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Error("two identically seeded engines diverged")
	}
}

func TestStateRoundTrip(t *testing.T) {
	e, clk := newTestEngine(t, Config{Seed: 42, NoNoise: true})
	fillEpoch(e, "adv.com")
	clk.Advance(DefaultEpochDuration)
	fillEpoch(e, "other.com")

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	tx := taxonomy.NewV2()
	e2 := NewEngine(tx, classifier.New(tx), Config{Now: clk.Now, NoNoise: true})
	if err := e2.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}

	for i := 0; i < 30; i++ {
		site := fmt.Sprintf("rt%d.com", i)
		a := e.BrowsingTopics("adv.com", site)
		b := e2.BrowsingTopics("adv.com", site)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("site %s: restored engine diverged: %v vs %v", site, a, b)
		}
	}
}

func TestRestoreRejectsBadState(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	if err := e.Restore(nil); err == nil {
		t.Error("Restore(nil) succeeded")
	}
	if err := e.Restore(&State{Version: 999}); err == nil {
		t.Error("Restore of future version succeeded")
	}
	if err := e.Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("Load of garbage succeeded")
	}
}

func TestConcurrentUse(t *testing.T) {
	e, clk := newTestEngine(t, Config{Seed: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				site := fmt.Sprintf("c%d-%d.com", g, i)
				e.RecordVisit(site)
				e.Observe(site, "adv.com")
				e.BrowsingTopics("adv.com", site)
				if i == 100 {
					clk.Advance(DefaultEpochDuration / 4)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.EpochDuration != DefaultEpochDuration {
		t.Errorf("EpochDuration = %v", cfg.EpochDuration)
	}
	if cfg.TopPerEpoch != DefaultTopPerEpoch {
		t.Errorf("TopPerEpoch = %d", cfg.TopPerEpoch)
	}
	if cfg.EpochsToShare != DefaultEpochsToShare {
		t.Errorf("EpochsToShare = %d", cfg.EpochsToShare)
	}
	if cfg.NoiseProb != DefaultNoiseProb {
		t.Errorf("NoiseProb = %v", cfg.NoiseProb)
	}
	if cfg.Now == nil {
		t.Error("Now not defaulted")
	}
	quiet := Config{NoNoise: true}.withDefaults()
	if quiet.NoiseProb != 0 {
		t.Errorf("NoNoise did not zero NoiseProb: %v", quiet.NoiseProb)
	}
}

func TestCallerFilteringAblation(t *testing.T) {
	// With the filter disabled, a stranger receives real topics it never
	// observed — quantifying what the §2.1 filter protects.
	e, clk := newTestEngine(t, Config{NoNoise: true, NoCallerFiltering: true, Seed: 7})
	fillEpoch(e, "adv.com")
	clk.Advance(DefaultEpochDuration)

	leaked := 0
	for i := 0; i < 100; i++ {
		if rs := e.BrowsingTopics("stranger.com", fmt.Sprintf("x%d.com", i)); len(rs) > 0 {
			leaked++
		}
	}
	if leaked != 100 {
		t.Errorf("ablated filter leaked on %d/100 sites, want every site", leaked)
	}

	// Control: the deployed configuration leaks nothing to a stranger
	// (noise off, full top list).
	e2, clk2 := newTestEngine(t, Config{NoNoise: true, Seed: 7})
	fillEpoch(e2, "adv.com")
	clk2.Advance(DefaultEpochDuration)
	for i := 0; i < 100; i++ {
		if rs := e2.BrowsingTopics("stranger.com", fmt.Sprintf("x%d.com", i)); len(rs) > 0 {
			t.Fatalf("deployed filter leaked: %v", rs)
		}
	}
}
