package topics

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"
	"time"
)

// TestHashMatchesFormattedFNV pins the allocation-free engine hash to
// the byte stream the original implementation fed through hash/fnv via
// fmt.Fprintf. Every serialized dataset depends on these values — if
// this test fails, topic selection (and with it every golden fixture)
// has silently changed.
func TestHashMatchesFormattedFNV(t *testing.T) {
	e := &Engine{cfg: Config{Seed: 12345}.withDefaults()}
	starts := []time.Time{
		{},
		time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC),
		time.Date(1960, 1, 1, 0, 0, 0, 0, time.UTC), // negative UnixNano
	}
	for _, seed := range []uint64{0, 1, 12345, ^uint64(0)} {
		e.cfg.Seed = seed
		for _, kind := range []string{"slot", "noise", "pad", ""} {
			for _, idx := range []int{0, 1, 2, -1, 1 << 30} {
				for _, start := range starts {
					for _, site := range []string{"", "news.example.com", "xn--bcher-kva.example"} {
						h := fnv.New64a()
						fmt.Fprintf(h, "%d|%s|%d|%d|%s", seed, kind, idx, start.UnixNano(), site)
						want := h.Sum64()
						if got := e.hash(kind, idx, start, site); got != want {
							t.Fatalf("hash(%q,%d,%v,%q) seed=%d = %#x, want %#x",
								kind, idx, start, site, seed, got, want)
						}
					}
				}
			}
		}
	}
}

func TestDedupeAppendedKeepsPrefix(t *testing.T) {
	mk := func(ids ...int) []Result {
		out := make([]Result, len(ids))
		for i, id := range ids {
			out[i].Topic.ID = id
			out[i].EpochIndex = i
		}
		return out
	}
	// The window before base must never be touched, even when it holds
	// duplicates of appended IDs.
	dst := mk(7, 7, 3, 7, 3, 9)
	got := dedupeAppended(dst, 2)
	wantIDs := []int{7, 7, 3, 7, 9}
	if len(got) != len(wantIDs) {
		t.Fatalf("len = %d, want %d (%v)", len(got), len(wantIDs), got)
	}
	for i := range got {
		if got[i].Topic.ID != wantIDs[i] {
			t.Errorf("got[%d].ID = %d, want %d", i, got[i].Topic.ID, wantIDs[i])
		}
	}
}

// TestAppendBrowsingTopicsMatchesBrowsingTopics proves the append form
// is behaviour-identical to the allocating wrapper and respects an
// existing prefix in dst.
func TestAppendBrowsingTopicsMatchesBrowsingTopics(t *testing.T) {
	mkEngine := func() (*Engine, *vclock) {
		e, clk := newTestEngine(t, Config{NoNoise: true, Seed: 42})
		for i := 0; i < 3; i++ {
			fillEpoch(e, "adv.com")
			clk.Advance(DefaultEpochDuration)
		}
		return e, clk
	}
	e1, _ := mkEngine()
	e2, _ := mkEngine()
	for _, site := range fiveTopicSites {
		want := e1.BrowsingTopics("adv.com", site)
		prefix := Result{EpochIndex: 99}
		got := e2.AppendBrowsingTopics([]Result{prefix}, "adv.com", site)
		if got[0] != prefix {
			t.Fatalf("prefix clobbered: %+v", got[0])
		}
		if !reflect.DeepEqual(got[1:], want) && !(len(got) == 1 && len(want) == 0) {
			t.Errorf("site %s: append form %+v, wrapper %+v", site, got[1:], want)
		}
	}
}

// TestBrowsingTopicsEmptyStaysNil pins the nil-for-empty contract the
// serialized visit records depend on (null vs [] in JSON).
func TestBrowsingTopicsEmptyStaysNil(t *testing.T) {
	e, _ := newTestEngine(t, Config{NoNoise: true, Seed: 1})
	if got := e.BrowsingTopics("adv.com", "news.example.com"); got != nil {
		t.Fatalf("no history: got %#v, want nil", got)
	}
}

// TestAppendBrowsingTopicsZeroAlloc is the tentpole's engine target: a
// steady-state browsingTopics() answer with a reused result buffer and
// a warm site cache performs zero heap allocations.
func TestAppendBrowsingTopicsZeroAlloc(t *testing.T) {
	e, clk := newTestEngine(t, Config{Seed: 7})
	for i := 0; i < 3; i++ {
		fillEpoch(e, "adv.com")
		clk.Advance(DefaultEpochDuration)
	}
	buf := make([]Result, 0, DefaultEpochsToShare)
	site := fiveTopicSites[0]
	// Warm the per-site classification cache and witness sets.
	buf = e.AppendBrowsingTopics(buf[:0], "adv.com", site)
	allocs := testing.AllocsPerRun(200, func() {
		buf = e.AppendBrowsingTopics(buf[:0], "adv.com", site)
	})
	if allocs != 0 {
		t.Errorf("AppendBrowsingTopics allocs/op = %g, want 0", allocs)
	}
}
