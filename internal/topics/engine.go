// Package topics implements the browser-side Topics API engine described
// in paper §2.1 and in the Privacy Sandbox documentation.
//
// The engine:
//
//   - monitors browsing activity: every page visit is classified into
//     taxonomy topics by the predefined model (internal/classifier);
//   - groups activity into epochs (one week each); at the end of an
//     epoch it computes the top 5 most-visited topics of that epoch,
//     padding with random topics when browsing history is thin;
//   - answers browsingTopics() calls with up to three topics, one per
//     each of the last three completed epochs, where the per-epoch topic
//     is chosen pseudo-randomly among the epoch's top 5 — stable for a
//     given (epoch, site) pair so that every caller embedded on the same
//     page sees the same value and cannot use the API to fingerprint;
//   - replaces the offered topic with a uniformly random one with 5%
//     probability ("plausible deniability", §2.1);
//   - filters results per caller: a caller only receives a topic for an
//     epoch if, during that epoch, it observed the user on some page
//     about that topic. Noise and padded topics are exempt from the
//     filter, exactly because they carry no browsing information.
//
// All decisions derive deterministically from a user seed, the epoch
// index and the site, so a crawl is reproducible.
package topics

import (
	"strconv"
	"sync"
	"time"

	"github.com/netmeasure/topicscope/internal/classifier"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/taxonomy"
)

// Default engine parameters, matching Chrome's.
const (
	DefaultEpochDuration = 7 * 24 * time.Hour
	DefaultTopPerEpoch   = 5
	DefaultEpochsToShare = 3
	// DefaultNoiseProb is the 5% plausible-deniability replacement rate.
	DefaultNoiseProb = 0.05
	// DefaultModelVersion labels the classifier model in results.
	DefaultModelVersion = "2206021246"
)

// Config parameterises an Engine. The zero value selects all defaults.
type Config struct {
	// EpochDuration is the length of one epoch (default one week).
	EpochDuration time.Duration
	// TopPerEpoch is how many topics an epoch's top list holds (5).
	TopPerEpoch int
	// EpochsToShare is how many past epochs a call draws from (3).
	EpochsToShare int
	// NoiseProb is the probability a returned topic is replaced by a
	// uniformly random one (0.05). Leave zero for the default; set
	// NoNoise to disable replacement entirely.
	NoiseProb float64
	// NoNoise disables the plausible-deniability replacement. Useful in
	// tests and in experiments isolating the deterministic behaviour.
	NoNoise bool
	// NoCallerFiltering ABLATION: disable the per-caller observation
	// filter, handing every caller the epoch topic whether or not it
	// ever witnessed the user. Quantifies how much the filter protects
	// (it is one of the two privacy mechanisms of §2.1, next to noise).
	NoCallerFiltering bool
	// Seed derives every pseudo-random decision; two engines with the
	// same seed and history behave identically.
	Seed uint64
	// Now supplies the clock; defaults to time.Now. Tests and the
	// simulator inject virtual time here.
	Now func() time.Time
	// Metrics, when set, counts engine activity (visits recorded,
	// observations, calls answered, topics returned, noise replacements)
	// in the shared observability registry. Nil disables counting.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.EpochDuration <= 0 {
		c.EpochDuration = DefaultEpochDuration
	}
	if c.TopPerEpoch <= 0 {
		c.TopPerEpoch = DefaultTopPerEpoch
	}
	if c.EpochsToShare <= 0 {
		c.EpochsToShare = DefaultEpochsToShare
	}
	switch {
	case c.NoNoise:
		c.NoiseProb = 0
	case c.NoiseProb <= 0 || c.NoiseProb > 1:
		c.NoiseProb = DefaultNoiseProb
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Result is one topic returned by a browsingTopics() call, carrying the
// same metadata Chrome attaches to each entry.
//
//topicslint:compact
type Result struct {
	Topic           taxonomy.Topic `json:"topic"`
	TaxonomyVersion string         `json:"taxonomyVersion"`
	ModelVersion    string         `json:"modelVersion"`
	// EpochIndex identifies which completed epoch produced this entry
	// (0 is the most recent).
	EpochIndex int `json:"epochIndex"`
	// Noised marks entries produced by the 5% replacement; exported for
	// experiments only — the real API does not reveal this bit.
	Noised bool `json:"noised,omitempty"`
}

// Engine is the browser-side Topics state machine. It is safe for
// concurrent use.
//
//topicslint:compact
type Engine struct {
	cfg Config
	tx  *taxonomy.Taxonomy
	cl  *classifier.Classifier

	mu      sync.Mutex
	start   time.Time // start of the current (accumulating) epoch
	current *accumulator
	history []*Epoch // completed epochs, most recent first

	// siteIDs interns per-site classification results: classifying a
	// host runs the token model and allocates, but the answer is a pure
	// function of the hostname, so every path through the engine
	// (RecordVisit, Observe, the BrowsingTopics side effect) shares one
	// cached ID slice per site. Guarded by mu; entries are never
	// mutated after insertion.
	siteIDs map[string][]int
}

// accumulator gathers one in-progress epoch.
type accumulator struct {
	// visits counts page loads per topic ID.
	visits map[int]int
	// witnessed maps topic ID -> set of callers that observed the user
	// on a page classified with that topic during this epoch.
	witnessed map[int]map[string]bool
}

func newAccumulator() *accumulator {
	return &accumulator{
		visits:    make(map[int]int),
		witnessed: make(map[int]map[string]bool),
	}
}

// Epoch is a completed epoch: its top topics plus the observation sets
// needed for per-caller filtering.
//
//topicslint:compact
type Epoch struct {
	Start time.Time
	End   time.Time
	// Top holds the epoch's top topics, strongest first, padded to the
	// configured size.
	Top []TopTopic
	// witnessed is the caller-observation relation frozen at epoch end.
	witnessed map[int]map[string]bool
}

// TopTopic is one slot of an epoch's top-5 list.
//
//topicslint:compact
type TopTopic struct {
	ID int
	// Visits is how many classified page loads contributed (0 for pads).
	Visits int
	// Padded marks slots filled with random topics because the user's
	// browsing that epoch yielded fewer distinct topics than the list
	// size. Padded topics carry no browsing signal and are therefore
	// exempt from caller filtering, like noise.
	Padded bool
}

// NewEngine builds an Engine over the given taxonomy and classifier.
func NewEngine(tx *taxonomy.Taxonomy, cl *classifier.Classifier, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, tx: tx, cl: cl, current: newAccumulator(), siteIDs: make(map[string][]int)}
	e.start = cfg.Now()
	return e
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// RecordVisit informs the engine of a page load on site. The page is
// classified and contributes to the current epoch's topic frequencies.
func (e *Engine) RecordVisit(site string) {
	e.cfg.Metrics.Add("engine_visits_total", 1)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rotateLocked()
	for _, id := range e.classifyLocked(site) {
		e.current.visits[id]++
	}
}

// classifyLocked returns the interned classification for site, running
// the model once per distinct hostname.
func (e *Engine) classifyLocked(site string) []int {
	ids, ok := e.siteIDs[site]
	if !ok {
		ids = e.cl.ClassifyIDs(site)
		e.siteIDs[site] = ids
	}
	return ids
}

// Observe records that caller observed the user on site during the
// current epoch (Chrome marks this when the caller invokes the API or
// receives the Sec-Browsing-Topics headers on that page).
func (e *Engine) Observe(site, caller string) {
	e.cfg.Metrics.Add("engine_observations_total", 1)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rotateLocked()
	e.witnessLocked(site, caller)
}

// witnessLocked marks caller as having observed the user on site during
// the current epoch. Steady-state it only sets existing map keys, so
// concurrent serving traffic does not allocate.
func (e *Engine) witnessLocked(site, caller string) {
	for _, id := range e.classifyLocked(site) {
		set := e.current.witnessed[id]
		if set == nil {
			set = make(map[string]bool)
			e.current.witnessed[id] = set
		}
		set[caller] = true
	}
}

// BrowsingTopics answers a browsingTopics() call issued by caller on a
// page of site. It returns up to EpochsToShare results, one per completed
// epoch, subject to per-caller observation filtering. It also counts as
// an observation of site by caller in the current epoch, mirroring the
// real API's side effect.
func (e *Engine) BrowsingTopics(caller, site string) []Result {
	out := e.AppendBrowsingTopics(nil, caller, site)
	if len(out) == 0 {
		// Preserve the historical nil-for-empty contract (serialized
		// datasets distinguish null from []).
		return nil
	}
	return out
}

// AppendBrowsingTopics is BrowsingTopics without the per-call result
// allocation: results are appended to dst (grown at most once, sized
// exactly) and the extended slice returned. Serving paths that answer
// millions of calls reuse one buffer across requests and stay
// allocation-free.
//
//topicslint:hotpath zeroalloc
func (e *Engine) AppendBrowsingTopics(dst []Result, caller, site string) []Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	//topicslint:ignore hotpath epoch rotation is the cold path, it allocates once per epoch boundary, not per call
	e.rotateLocked()

	// Side effect first: calling the API marks the caller as observing
	// the user on this page.
	//topicslint:ignore hotpath witness sets allocate only on a caller's first observation; steady-state serving sets existing keys
	e.witnessLocked(site, caller)

	base := len(dst)
	n := min(e.cfg.EpochsToShare, len(e.history))
	for idx := 0; idx < n; idx++ {
		ep := e.history[idx]
		if len(ep.Top) == 0 {
			continue
		}
		res, ok := e.epochTopicLocked(idx, ep, caller, site)
		if !ok {
			continue
		}
		if cap(dst)-len(dst) < n-idx {
			//topicslint:ignore hotpath grow-once path, callers that reuse a sized buffer never reach it
			grown := make([]Result, len(dst), len(dst)+n-idx)
			copy(grown, dst)
			dst = grown
		}
		dst = append(dst, res)
	}
	dst = dedupeAppended(dst, base)
	e.cfg.Metrics.Add("engine_calls_total", 1)
	e.cfg.Metrics.Add("engine_topics_returned_total", int64(len(dst)-base))
	for _, r := range dst[base:] {
		if r.Noised {
			e.cfg.Metrics.Add("engine_noised_total", 1)
		}
	}
	return dst
}

// epochTopicLocked picks the (epoch, site) topic and applies noise and
// the caller filter.
func (e *Engine) epochTopicLocked(idx int, ep *Epoch, caller, site string) (Result, bool) {
	slotH := e.hash("slot", idx, ep.Start, site)
	noiseH := e.hash("noise", idx, ep.Start, site)

	if float64(noiseH%10000)/10000 < e.cfg.NoiseProb {
		// Plausible-deniability replacement: a uniformly random topic,
		// returned to every caller regardless of observation.
		t, _ := e.tx.Get(int(slotH%uint64(e.tx.Len())) + 1)
		return Result{
			Topic:           t,
			TaxonomyVersion: string(e.tx.Version()),
			ModelVersion:    DefaultModelVersion,
			EpochIndex:      idx,
			Noised:          true,
		}, true
	}

	slot := ep.Top[slotH%uint64(len(ep.Top))]
	t, ok := e.tx.Get(slot.ID)
	if !ok {
		return Result{}, false
	}
	if !e.cfg.NoCallerFiltering && !slot.Padded && !ep.observedBy(slot.ID, caller) {
		// The caller did not witness this interest during the epoch:
		// the API returns nothing for this epoch slot.
		return Result{}, false
	}
	return Result{
		Topic:           t,
		TaxonomyVersion: string(e.tx.Version()),
		ModelVersion:    DefaultModelVersion,
		EpochIndex:      idx,
	}, true
}

func (ep *Epoch) observedBy(topicID int, caller string) bool {
	return ep.witnessed[topicID][caller]
}

// CompletedEpochs returns a snapshot of the completed epochs, most recent
// first.
func (e *Engine) CompletedEpochs() []*Epoch {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rotateLocked()
	out := make([]*Epoch, len(e.history))
	copy(out, e.history)
	return out
}

// AdvanceEpoch force-finalizes the current epoch regardless of the clock.
// The simulator uses it to step virtual weeks.
func (e *Engine) AdvanceEpoch() {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.cfg.Now()
	e.finalizeLocked(e.start, now)
	e.start = now
}

// rotateLocked finalizes epochs the clock has moved past.
func (e *Engine) rotateLocked() {
	now := e.cfg.Now()
	for now.Sub(e.start) >= e.cfg.EpochDuration {
		end := e.start.Add(e.cfg.EpochDuration)
		e.finalizeLocked(e.start, end)
		e.start = end
	}
}

func (e *Engine) finalizeLocked(start, end time.Time) {
	acc := e.current
	e.current = newAccumulator()

	top := topK(acc.visits, e.cfg.TopPerEpoch)
	// Pad with deterministic pseudo-random topics when history is thin.
	for i := 0; len(top) < e.cfg.TopPerEpoch; i++ {
		h := e.hash("pad", i, start, "")
		id := int(h%uint64(e.tx.Len())) + 1
		if containsTopic(top, id) {
			id = id%e.tx.Len() + 1
		}
		if containsTopic(top, id) {
			continue
		}
		top = append(top, TopTopic{ID: id, Padded: true})
	}
	e.history = append([]*Epoch{{
		Start:     start,
		End:       end,
		Top:       top,
		witnessed: acc.witnessed,
	}}, e.history...)
	// Retain only what calls can ever need.
	if len(e.history) > e.cfg.EpochsToShare {
		e.history = e.history[:e.cfg.EpochsToShare]
	}
}

func containsTopic(top []TopTopic, id int) bool {
	for _, t := range top {
		if t.ID == id {
			return true
		}
	}
	return false
}

// topK selects the k most visited topics, ties broken by smaller ID for
// determinism.
func topK(visits map[int]int, k int) []TopTopic {
	out := make([]TopTopic, 0, len(visits))
	for id, n := range visits {
		if id == 0 || n == 0 {
			continue
		}
		out = append(out, TopTopic{ID: id, Visits: n})
	}
	// Insertion sort: k and len are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Visits > a.Visits || (b.Visits == a.Visits && b.ID < a.ID) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// FNV-1a parameters (hash/fnv's 64a variant).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// hash derives a stable 64-bit value from the engine seed and the given
// discriminators. It folds the exact byte stream
// "<seed>|<kind>|<idx>|<epochStart unix ns>|<site>" through FNV-1a
// without constructing it — the stream layout is load-bearing: the same
// bytes were historically fed through hash/fnv via fmt.Fprintf, and
// every serialized dataset depends on the resulting values
// (TestHashMatchesFormattedFNV pins the equivalence).
func (e *Engine) hash(kind string, idx int, epochStart time.Time, site string) uint64 {
	var buf [20]byte // fits any int64/uint64 decimal rendering
	h := uint64(fnvOffset64)
	h = fnvBytes(h, strconv.AppendUint(buf[:0], e.cfg.Seed, 10))
	h = fnvString(h, "|")
	h = fnvString(h, kind)
	h = fnvString(h, "|")
	h = fnvBytes(h, strconv.AppendInt(buf[:0], int64(idx), 10))
	h = fnvString(h, "|")
	h = fnvBytes(h, strconv.AppendInt(buf[:0], epochStart.UnixNano(), 10))
	h = fnvString(h, "|")
	h = fnvString(h, site)
	return h
}

// dedupeAppended drops duplicate topic IDs from dst[base:] in place,
// keeping first occurrences. A call appends at most EpochsToShare
// (three) results, so the quadratic scan beats a map: no allocation, no
// hashing.
func dedupeAppended(dst []Result, base int) []Result {
	kept := base
	for i := base; i < len(dst); i++ {
		dup := false
		for j := base; j < kept; j++ {
			if dst[j].Topic.ID == dst[i].Topic.ID {
				dup = true
				break
			}
		}
		if !dup {
			dst[kept] = dst[i]
			kept++
		}
	}
	return dst[:kept]
}
