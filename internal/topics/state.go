package topics

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// State is the JSON-serialisable snapshot of an Engine: the equivalent of
// Chrome's on-disk BrowsingTopicsState file. It captures completed epochs
// and the accumulating one, so a restarted browser continues where it
// left off.
type State struct {
	Version      int          `json:"version"`
	Seed         uint64       `json:"seed"`
	CurrentStart time.Time    `json:"currentStart"`
	Current      stateEpoch   `json:"current"`
	History      []stateEpoch `json:"history"`
}

type stateEpoch struct {
	Start     time.Time        `json:"start"`
	End       time.Time        `json:"end,omitempty"`
	Top       []TopTopic       `json:"top,omitempty"`
	Visits    map[int]int      `json:"visits,omitempty"`
	Witnessed map[int][]string `json:"witnessed,omitempty"`
}

const stateVersion = 1

// Snapshot extracts the engine state.
func (e *Engine) Snapshot() *State {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &State{
		Version:      stateVersion,
		Seed:         e.cfg.Seed,
		CurrentStart: e.start,
		Current: stateEpoch{
			Start:     e.start,
			Visits:    cloneCounts(e.current.visits),
			Witnessed: witnessedToLists(e.current.witnessed),
		},
	}
	for _, ep := range e.history {
		s.History = append(s.History, stateEpoch{
			Start:     ep.Start,
			End:       ep.End,
			Top:       append([]TopTopic(nil), ep.Top...),
			Witnessed: witnessedToLists(ep.witnessed),
		})
	}
	return s
}

// Restore replaces the engine state with a snapshot. The snapshot's seed
// overrides the configured one so pseudo-random decisions stay coherent
// with the restored history.
func (e *Engine) Restore(s *State) error {
	if s == nil {
		return fmt.Errorf("topics: nil state")
	}
	if s.Version != stateVersion {
		return fmt.Errorf("topics: unsupported state version %d", s.Version)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.Seed = s.Seed
	e.start = s.CurrentStart
	e.current = &accumulator{
		visits:    cloneCounts(s.Current.Visits),
		witnessed: witnessedFromLists(s.Current.Witnessed),
	}
	if e.current.visits == nil {
		e.current.visits = make(map[int]int)
	}
	e.history = nil
	for _, se := range s.History {
		e.history = append(e.history, &Epoch{
			Start:     se.Start,
			End:       se.End,
			Top:       append([]TopTopic(nil), se.Top...),
			witnessed: witnessedFromLists(se.Witnessed),
		})
	}
	return nil
}

// Save writes the engine state as JSON.
func (e *Engine) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e.Snapshot()); err != nil {
		return fmt.Errorf("topics: saving state: %w", err)
	}
	return nil
}

// Load reads a JSON state and restores the engine from it.
func (e *Engine) Load(r io.Reader) error {
	var s State
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("topics: loading state: %w", err)
	}
	return e.Restore(&s)
}

func cloneCounts(in map[int]int) map[int]int {
	out := make(map[int]int, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func witnessedToLists(in map[int]map[string]bool) map[int][]string {
	if len(in) == 0 {
		return nil
	}
	out := make(map[int][]string, len(in))
	for id, set := range in {
		for caller := range set {
			out[id] = append(out[id], caller)
		}
	}
	return out
}

func witnessedFromLists(in map[int][]string) map[int]map[string]bool {
	out := make(map[int]map[string]bool, len(in))
	for id, callers := range in {
		set := make(map[string]bool, len(callers))
		for _, c := range callers {
			set[c] = true
		}
		out[id] = set
	}
	return out
}
