// Package obs is the deterministic observability layer of the
// measurement pipeline: spans wrap every stage of a campaign — page
// navigation, sub-resource fetches, script execution, Topics API calls,
// consent clicks, retry backoffs, attestation checks, and the analysis
// index/figure passes — and counters/histograms aggregate crawl-side
// telemetry for a /__metrics endpoint.
//
// Unlike conventional tracing, every timestamp comes from a *stage
// clock* (a vclock.Clock layered on the visit's virtual time) advanced
// by an explicit deterministic cost model, never from the wall clock.
// Two runs of the same seeded campaign therefore emit byte-identical
// trace JSONL at any GOMAXPROCS or worker count — the same invariant
// the analysis index upholds, and the reason this package sits on the
// topicslint determinism analyzer's watch list.
//
// The stage clock is deliberately separate from the virtual clock the
// browser stamps on requests: request virtual time stays frozen within
// a page load (the chaos injector's fault coins key on it), while the
// stage clock accumulates per-stage costs so latency histograms and
// span durations carry signal. Costs are nominal virtual durations plus
// real deterministic components (chaos-injected latency, retry
// backoff), documented in DESIGN.md "Observability".
package obs

import (
	"time"

	"github.com/netmeasure/topicscope/internal/vclock"
)

// Nominal stage costs of the virtual cost model. They only feed span
// durations and latency histograms — never request timing — so they can
// be tuned freely without disturbing datasets.
const (
	// FetchCost is the base cost of one sub-resource fetch attempt;
	// chaos-injected latency is added on top.
	FetchCost = 10 * time.Millisecond
	// ScriptCost is the cost of interpreting one script body.
	ScriptCost = time.Millisecond
	// TopicsCallCost is the cost of one Topics API invocation.
	TopicsCallCost = time.Millisecond
	// FrameCost is the cost of instantiating one nested browsing
	// context (on top of its fetch and script costs).
	FrameCost = 2 * time.Millisecond
	// ConsentClickCost is the cost of the Priv-Accept banner
	// interaction.
	ConsentClickCost = 5 * time.Millisecond
	// AttestCost is the cost of one well-known attestation check.
	AttestCost = 10 * time.Millisecond
	// IndexVisitCost is the per-visit cost of the analysis index pass.
	IndexVisitCost = 2 * time.Microsecond
	// SectionCost is the nominal cost of one report section computed
	// from the index.
	SectionCost = time.Millisecond
)

// Attr is one key/value annotation on a span. Values are strings so the
// JSONL stays schema-free and greppable.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A builds an Attr; instrumentation sites read better with a short
// constructor.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one timed pipeline stage. Start and End are stage-clock
// virtual times; children nest in execution order.
type Span struct {
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Attrs    []Attr    `json:"attrs,omitempty"`
	Children []*Span   `json:"children,omitempty"`
}

// Duration is the span's stage-clock extent.
func (s *Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Walk visits the span and every descendant in depth-first order.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Trace builds one span tree on a private stage clock. It is used by a
// single goroutine (the crawl worker driving one visit); every method
// is nil-receiver safe so instrumented code needs no tracing-enabled
// checks.
type Trace struct {
	clock *vclock.Clock
	root  *Span
	open  []*Span // stack of started-but-unfinished spans, root first
}

// NewTrace opens a trace whose root span starts at the given virtual
// time.
func NewTrace(name string, start time.Time, attrs ...Attr) *Trace {
	root := &Span{Name: name, Start: start.UTC(), Attrs: attrs}
	return &Trace{clock: vclock.New(start), root: root, open: []*Span{root}}
}

// Start opens a child span of the innermost open span at the current
// stage time.
func (t *Trace) Start(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	s := &Span{Name: name, Start: t.clock.Now(), Attrs: attrs}
	parent := t.open[len(t.open)-1]
	parent.Children = append(parent.Children, s)
	t.open = append(t.open, s)
}

// Advance charges a cost to the current span: the stage clock moves
// forward, so every open span's eventual End moves with it.
func (t *Trace) Advance(cost time.Duration) {
	if t == nil || cost <= 0 {
		return
	}
	t.clock.Advance(cost)
}

// Annotate appends attributes to the innermost open span.
func (t *Trace) Annotate(attrs ...Attr) {
	if t == nil {
		return
	}
	s := t.open[len(t.open)-1]
	s.Attrs = append(s.Attrs, attrs...)
}

// End closes the innermost open span at the current stage time. The
// root span can only be closed by Finish.
func (t *Trace) End() {
	if t == nil || len(t.open) <= 1 {
		return
	}
	s := t.open[len(t.open)-1]
	s.End = t.clock.Now()
	t.open = t.open[:len(t.open)-1]
}

// Now returns the current stage time.
func (t *Trace) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.clock.Now()
}

// Finish closes every open span (innermost first) and returns the root.
// The trace must not be used afterwards.
func (t *Trace) Finish() *Span {
	if t == nil {
		return nil
	}
	now := t.clock.Now()
	for i := len(t.open) - 1; i >= 0; i-- {
		t.open[i].End = now
	}
	t.open = t.open[:1]
	return t.root
}
