package obs

import (
	"bytes"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func wireFixture() *Registry {
	r := NewRegistry()
	r.Add("visits_total", 41, "phase", "before_accept")
	r.Add("visits_total", 12, "phase", "after_accept")
	r.Add("errors_total", 3)
	r.Observe("stage_latency", 3*time.Millisecond, "stage", "fetch")
	r.Observe("stage_latency", 900*time.Millisecond, "stage", "fetch")
	r.Observe("stage_latency", 18*time.Hour, "stage", "fetch") // overflow bucket
	r.Observe("stage_latency", 2*time.Second, "stage", "classify")
	return r
}

// TestRegistryWireRoundTrip pins losslessness: a registry shipped
// through the JSON wire form and merged into an empty registry is
// indistinguishable from the original — including full bucket counts,
// which the Prometheus text form drops.
func TestRegistryWireRoundTrip(t *testing.T) {
	src := wireFixture()
	var buf bytes.Buffer
	if err := src.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRegistry(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.counters, src.counters) {
		t.Errorf("counters diverge: %v vs %v", got.counters, src.counters)
	}
	if len(got.hists) != len(src.hists) {
		t.Fatalf("histogram count %d, want %d", len(got.hists), len(src.hists))
	}
	for k, h := range src.hists {
		// Compare the lock-free distributions, not the Histogram
		// wrappers (vet flags copying their mutexes).
		if gotH, srcH := got.hists[k].snapshot(), h.snapshot(); gotH != srcH {
			t.Errorf("histogram %q diverges: %+v vs %+v", k, gotH, srcH)
		}
	}

	// Serialization is deterministic: equal state, equal bytes.
	var buf2 bytes.Buffer
	if err := got.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("round-tripped registry serializes to different bytes")
	}
}

// TestRegistryWireMergeEqualsInProcess proves the cross-process
// aggregation path: merging N worker registries via the wire form gives
// the same state as merging them in process.
func TestRegistryWireMergeEqualsInProcess(t *testing.T) {
	workers := []*Registry{wireFixture(), wireFixture(), NewRegistry()}
	workers[1].Add("visits_total", 5, "phase", "before_accept")
	workers[2].Observe("stage_latency", time.Minute, "stage", "fetch")

	inProc := NewRegistry()
	overWire := NewRegistry()
	for _, w := range workers {
		inProc.Merge(w)
		var buf bytes.Buffer
		if err := w.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		shipped, err := ReadRegistry(&buf)
		if err != nil {
			t.Fatal(err)
		}
		overWire.Merge(shipped)
	}
	if !reflect.DeepEqual(inProc.Snapshot(), overWire.Snapshot()) {
		t.Error("wire-merged registry diverges from in-process merge")
	}
}

func TestReadRegistryRejectsBadInput(t *testing.T) {
	if _, err := ReadRegistry(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("unsupported version accepted")
	}
	if _, err := ReadRegistry(strings.NewReader(`{bad json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadRegistry(strings.NewReader(
		`{"version":1,"histograms":{"h":{"count":1,"buckets":[` + strings.Repeat("1,", 40) + `1]}}}`)); err == nil {
		t.Error("oversized bucket array accepted")
	}
}

// TestHandlerServesJSONFormat checks the /__metrics content
// negotiation: default stays Prometheus text, ?format=json serves the
// wire form.
func TestHandlerServesJSONFormat(t *testing.T) {
	r := wireFixture()
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/__metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "visits_total") {
		t.Error("prom body missing counters")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/__metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type %q", ct)
	}
	got, err := ReadRegistry(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Snapshot(), r.Snapshot()) {
		t.Error("handler JSON diverges from registry state")
	}
}

func TestHistogramNames(t *testing.T) {
	r := wireFixture()
	want := []string{`stage_latency{stage="classify"}`, `stage_latency{stage="fetch"}`}
	if got := r.HistogramNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("names = %v, want %v", got, want)
	}
	if (*Registry)(nil).HistogramNames() != nil {
		t.Error("nil registry should list no histograms")
	}
}
