package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
)

// promSuffix splices a Prometheus sample suffix into a canonical metric
// key, before the label braces: promSuffix(`lat{stage="fetch"}`, "_sum")
// → `lat_sum{stage="fetch"}`.
func promSuffix(key, suffix string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i] + suffix + key[i:]
	}
	return key + suffix
}

// WriteProm renders the registry in the Prometheus text exposition
// format. Counters become counter samples; histograms are exported as
// summaries (count, sum, max, and p50/p90 decile estimates in seconds).
// Output is sorted, hence deterministic.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	for _, c := range snap.Counters {
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		if _, err := fmt.Fprintf(w, "%s %d\n", promSuffix(h.Name, "_count"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", promSuffix(h.Name, "_sum"), float64(h.SumNS)/1e9); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", promSuffix(h.Name, "_max"), float64(h.MaxNS)/1e9); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", promSuffix(h.Name, "_p50"), float64(h.P50NS)/1e9); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", promSuffix(h.Name, "_p90"), float64(h.Deciles[8])/1e9); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", promSuffix(h.Name, "_p99"), float64(h.P99NS)/1e9); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", promSuffix(h.Name, "_p999"), float64(h.P999NS)/1e9); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry at a /__metrics-style endpoint: the
// Prometheus text format by default, or the lossless JSON wire form
// with ?format=json (what topics-monitor -shards and the orchestrator
// fetch, since the text form's histograms are lossy).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}

// DebugMux returns a mux exposing the registry at /__metrics and the
// standard pprof profiles under /debug/pprof/ — the handler behind the
// -pprof flag on the cmd binaries.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/__metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
