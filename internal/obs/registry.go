package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// histBuckets is the number of exponential latency buckets: bucket i
// holds observations with d < 1ms·2^i, the last bucket is unbounded.
// 27 finite bounds reach ≈18h of virtual time, far beyond any stage.
const histBuckets = 28

// histogram is a fixed-bucket latency distribution. Every field merges
// commutatively (sums and a max), like the analysis index shards.
type histogram struct {
	count   int64
	sumNS   int64
	maxNS   int64
	buckets [histBuckets]int64
}

func bucketIndex(d time.Duration) int {
	bound := time.Millisecond
	for i := 0; i < histBuckets-1; i++ {
		if d < bound {
			return i
		}
		bound <<= 1
	}
	return histBuckets - 1
}

// bucketBound is the exclusive upper bound of finite bucket i.
func bucketBound(i int) time.Duration { return time.Millisecond << i }

func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count++
	h.sumNS += int64(d)
	if int64(d) > h.maxNS {
		h.maxNS = int64(d)
	}
	h.buckets[bucketIndex(d)]++
}

func (h *histogram) merge(o *histogram) {
	h.count += o.count
	h.sumNS += o.sumNS
	if o.maxNS > h.maxNS {
		h.maxNS = o.maxNS
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// quantile estimates the q-quantile (0 < q < 1) as the upper bound of
// the bucket where the cumulative count crosses q, clamped to the
// maximum observation. Deterministic by construction.
func (h *histogram) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			bound := int64(bucketBound(i))
			if bound > h.maxNS || i == histBuckets-1 {
				bound = h.maxNS
			}
			return time.Duration(bound)
		}
	}
	return time.Duration(h.maxNS)
}

// Registry holds a campaign's counters and latency histograms, keyed by
// metric name plus rendered label set. It is safe for concurrent use;
// because every update is an addition (or max), the final state is
// independent of interleaving — the same commutativity argument as the
// analysis index's shard merge, proven by TestRegistryMergeProperty.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		hists:    make(map[string]*Histogram),
	}
}

// Histogram is a stable handle to one named histogram inside a
// registry. Hot paths resolve the handle once (paying the metricKey
// render and registry-map lookup a single time) and then Observe
// through it with only a per-histogram lock — the load harness records
// every request latency this way without contending on the registry
// mutex.
type Histogram struct {
	mu sync.Mutex
	h  histogram
}

// Observe records one duration. Nil-safe, like Registry.Observe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.observe(d)
	h.mu.Unlock()
}

// snapshotLocked copies the underlying distribution under the
// histogram's own lock.
func (h *Histogram) snapshot() histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h
}

// Hist returns the handle for a named histogram, creating it if absent.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Hist(name string, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := metricKey(name, kv)
	r.mu.Lock()
	h := r.hists[key]
	if h == nil {
		h = &Histogram{}
		r.hists[key] = h
	}
	r.mu.Unlock()
	return h
}

// metricKey renders name plus key/value label pairs in sorted-by-key
// order, the canonical form every map is keyed by:
// visits_total{outcome="ok",phase="before_accept"}.
func metricKey(name string, kv []string) string {
	if len(kv) == 0 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// MetricKey renders the canonical metric key for a name and label
// pairs — the form Snapshot entries are named by. It lets consumers
// (the load report, dashboards) look up snapshot entries without
// duplicating the rendering rules.
func MetricKey(name string, kv ...string) string {
	return metricKey(name, kv)
}

// Add increments a counter by delta. kv are alternating label
// key/value pairs.
func (r *Registry) Add(name string, delta int64, kv ...string) {
	if r == nil {
		return
	}
	key := metricKey(name, kv)
	r.mu.Lock()
	r.counters[key] += delta
	r.mu.Unlock()
}

// Observe records one duration into a histogram.
func (r *Registry) Observe(name string, d time.Duration, kv ...string) {
	r.Hist(name, kv...).Observe(d)
}

// Merge folds another registry into r. Addition and max are commutative
// and associative, so any merge order yields the same state.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range o.counters {
		r.counters[k] += v
	}
	for k, h := range o.hists {
		dst := r.hists[k]
		if dst == nil {
			dst = &Histogram{}
			r.hists[k] = dst
		}
		src := h.snapshot()
		dst.mu.Lock()
		dst.h.merge(&src)
		dst.mu.Unlock()
	}
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	// Name is the canonical metric key, labels included.
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram in a snapshot, with decile estimates
// (P[0] = p10 … P[8] = p90) and serving-path tail quantiles (p50, p99,
// p999) in nanoseconds.
type HistogramValue struct {
	Name    string   `json:"name"`
	Count   int64    `json:"count"`
	SumNS   int64    `json:"sumNs"`
	MaxNS   int64    `json:"maxNs"`
	P50NS   int64    `json:"p50Ns"`
	P99NS   int64    `json:"p99Ns"`
	P999NS  int64    `json:"p999Ns"`
	Deciles [9]int64 `json:"decilesNs"`
}

// Snapshot is a point-in-time copy of a registry, sorted by metric key
// so rendering it is deterministic.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Histograms []HistogramValue `json:"histograms"`
}

// Counter returns a counter's value from the snapshot (0 if absent).
func (s Snapshot) Counter(name string, kv ...string) int64 {
	key := metricKey(name, kv)
	for _, c := range s.Counters {
		if c.Name == key {
			return c.Value
		}
	}
	return 0
}

// Snapshot copies the registry's state in sorted order.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := Snapshot{}
	for k, v := range r.counters {
		out.Counters = append(out.Counters, CounterValue{Name: k, Value: v})
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	for k, hh := range r.hists {
		h := hh.snapshot()
		hv := HistogramValue{
			Name: k, Count: h.count, SumNS: h.sumNS, MaxNS: h.maxNS,
			P50NS:  int64(h.quantile(0.5)),
			P99NS:  int64(h.quantile(0.99)),
			P999NS: int64(h.quantile(0.999)),
		}
		for d := 1; d <= 9; d++ {
			hv.Deciles[d-1] = int64(h.quantile(float64(d) / 10))
		}
		out.Histograms = append(out.Histograms, hv)
	}
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}
