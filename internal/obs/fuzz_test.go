package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// FuzzTraceDecode feeds arbitrary bytes through DecodeTrace and, for
// every input that decodes, asserts the encode→decode→encode round trip
// is a fixed point: re-encoding the decoded trace and decoding again
// must yield byte-identical JSON. This is the property the trace
// determinism test relies on at campaign scale.
func FuzzTraceDecode(f *testing.F) {
	seed := func(v *VisitTrace) {
		b, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	start := time.Date(2024, 3, 30, 6, 0, 0, 0, time.UTC)
	tr := NewTrace("visit", start, A("site", "example.com"))
	tr.Start("fetch", A("path", "/index.html"))
	tr.Advance(FetchCost)
	tr.Start("script")
	tr.Advance(ScriptCost)
	tr.End()
	tr.End()
	seed(&VisitTrace{Site: "example.com", Rank: 1, Phase: "before_accept", Outcome: "ok", Root: tr.Finish()})
	seed(&VisitTrace{Root: &Span{Name: "analysis", Start: start, End: start.Add(time.Second)}})
	f.Add([]byte(`{"root":null}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"site":"x","root":{"name":"visit","start":"2024-03-30T06:00:00Z","end":"2024-03-30T06:00:01Z","children":[{"name":"fetch"}]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeTrace(data)
		if err != nil {
			return // malformed inputs must fail cleanly, never panic
		}
		if v.Root == nil {
			t.Fatal("DecodeTrace returned nil root without error")
		}
		first, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		v2, err := DecodeTrace(first)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v\n%s", err, first)
		}
		second, err := json.Marshal(v2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip not a fixed point:\n%s\n%s", first, second)
		}
		// The summary must digest anything that decodes.
		if err := NewSummary().WriteTrace(v); err != nil {
			t.Fatalf("summary rejected decoded trace: %v", err)
		}
	})
}
