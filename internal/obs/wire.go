package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// wireRegistry is the lossless JSON form of a registry. Unlike the
// Prometheus text rendering (whose histograms collapse to count, sum,
// max and decile estimates), the wire form carries every bucket, so a
// registry shipped across a process boundary merges into another with
// exactly the state an in-process Merge would have produced. The
// orchestrator uses it to aggregate per-shard worker metrics.
type wireRegistry struct {
	Version  int                      `json:"version"`
	Counters map[string]int64         `json:"counters"`
	Hists    map[string]wireHistogram `json:"histograms"`
}

type wireHistogram struct {
	Count   int64   `json:"count"`
	SumNS   int64   `json:"sum_ns"`
	MaxNS   int64   `json:"max_ns"`
	Buckets []int64 `json:"buckets"`
}

// wireVersion is the registry wire-format schema version.
const wireVersion = 1

// WriteJSON serializes the registry losslessly. Keys are emitted in
// sorted order (encoding/json sorts map keys), so equal registries
// serialize to equal bytes.
func (r *Registry) WriteJSON(w io.Writer) error {
	wire := wireRegistry{
		Version:  wireVersion,
		Counters: map[string]int64{},
		Hists:    map[string]wireHistogram{},
	}
	if r != nil {
		r.mu.Lock()
		for k, v := range r.counters {
			wire.Counters[k] = v
		}
		for k, hh := range r.hists {
			h := hh.snapshot()
			wire.Hists[k] = wireHistogram{
				Count:   h.count,
				SumNS:   h.sumNS,
				MaxNS:   h.maxNS,
				Buckets: append([]int64(nil), h.buckets[:]...),
			}
		}
		r.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(wire)
}

// ReadRegistry deserializes a registry written by WriteJSON. The result
// is a fresh registry; merge it into an aggregate with Merge.
func ReadRegistry(rd io.Reader) (*Registry, error) {
	var wire wireRegistry
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("obs: decoding registry: %w", err)
	}
	if wire.Version != wireVersion {
		return nil, fmt.Errorf("obs: unsupported registry wire version %d", wire.Version)
	}
	r := NewRegistry()
	for k, v := range wire.Counters {
		r.counters[k] = v
	}
	for k, wh := range wire.Hists {
		if len(wh.Buckets) > histBuckets {
			return nil, fmt.Errorf("obs: histogram %q has %d buckets, max %d", k, len(wh.Buckets), histBuckets)
		}
		h := &Histogram{h: histogram{count: wh.Count, sumNS: wh.SumNS, maxNS: wh.MaxNS}}
		copy(h.h.buckets[:], wh.Buckets)
		r.hists[k] = h
	}
	return r, nil
}

// HistogramNames lists the registry's histogram keys in sorted order —
// a cheap way for dashboards to discover stages without a full
// snapshot.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
