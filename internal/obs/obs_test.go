package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var testStart = time.Date(2024, 3, 30, 6, 0, 0, 0, time.UTC)

func TestTraceBuildsDeterministicTree(t *testing.T) {
	build := func() *Span {
		tr := NewTrace("visit", testStart, A("site", "example.com"))
		tr.Start("fetch", A("path", "/"))
		tr.Advance(FetchCost)
		tr.Start("script")
		tr.Advance(ScriptCost)
		tr.Annotate(A("calls", "2"))
		tr.End()
		tr.End()
		tr.Start("topics_call")
		tr.Advance(TopicsCallCost)
		tr.End()
		return tr.Finish()
	}
	root := build()
	if root.Name != "visit" {
		t.Fatalf("root name = %q", root.Name)
	}
	if got, want := len(root.Children), 2; got != want {
		t.Fatalf("root children = %d, want %d", got, want)
	}
	fetch := root.Children[0]
	if fetch.Duration() != FetchCost+ScriptCost {
		t.Errorf("fetch duration = %v, want %v", fetch.Duration(), FetchCost+ScriptCost)
	}
	script := fetch.Children[0]
	if script.Start != testStart.Add(FetchCost) {
		t.Errorf("script start = %v, want %v", script.Start, testStart.Add(FetchCost))
	}
	if root.Duration() != FetchCost+ScriptCost+TopicsCallCost {
		t.Errorf("root duration = %v", root.Duration())
	}

	a, _ := json.Marshal(build())
	b, _ := json.Marshal(build())
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical builds marshal differently:\n%s\n%s", a, b)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Start("x")
	tr.Advance(time.Second)
	tr.Annotate(A("k", "v"))
	tr.End()
	if !tr.Now().IsZero() {
		t.Errorf("nil trace Now = %v", tr.Now())
	}
	if tr.Finish() != nil {
		t.Errorf("nil trace Finish != nil")
	}
}

func TestTraceFinishClosesOpenSpans(t *testing.T) {
	tr := NewTrace("visit", testStart)
	tr.Start("outer")
	tr.Advance(time.Millisecond)
	tr.Start("inner")
	tr.Advance(time.Millisecond)
	root := tr.Finish()
	var open int
	root.Walk(func(s *Span) {
		if s.End.IsZero() {
			open++
		}
	})
	if open != 0 {
		t.Fatalf("%d spans left open after Finish", open)
	}
	if root.End != testStart.Add(2*time.Millisecond) {
		t.Errorf("root end = %v", root.End)
	}
}

func TestTraceEndNeverClosesRoot(t *testing.T) {
	tr := NewTrace("visit", testStart)
	tr.End()
	tr.End()
	tr.Start("child")
	tr.End()
	tr.End() // extra End must be a no-op, not a panic or root close
	root := tr.Finish()
	if len(root.Children) != 1 {
		t.Fatalf("children = %d", len(root.Children))
	}
}

func TestSummaryFoldsOutcomesAndStages(t *testing.T) {
	s := NewSummary()
	mk := func(site, outcome string, cost time.Duration) *VisitTrace {
		tr := NewTrace("visit", testStart)
		tr.Start("fetch")
		tr.Advance(cost)
		tr.End()
		return &VisitTrace{Site: site, Rank: 1, Phase: "before_accept", Outcome: outcome, Root: tr.Finish()}
	}
	for _, v := range []*VisitTrace{
		mk("a.com", "ok", 10*time.Millisecond),
		mk("a.com", "ok", 20*time.Millisecond),
		mk("b.com", "partial", 30*time.Millisecond),
		mk("c.com", "error", 40*time.Millisecond),
	} {
		if err := s.WriteTrace(v); err != nil {
			t.Fatal(err)
		}
	}
	// Campaign-level record: no site, must not count as a visit.
	attTr := NewTrace("attestation", testStart)
	if err := s.WriteTrace(&VisitTrace{Phase: "attestation", Root: attTr.Finish()}); err != nil {
		t.Fatal(err)
	}

	if s.Visits != 4 || s.Succeeded != 2 || s.Partial != 1 || s.Failed != 1 {
		t.Fatalf("visits=%d ok=%d partial=%d failed=%d", s.Visits, s.Succeeded, s.Partial, s.Failed)
	}
	if got := s.SiteCount(); got != 3 {
		t.Errorf("SiteCount = %d, want 3", got)
	}
	if got := s.SuccessRate(); got != 0.75 {
		t.Errorf("SuccessRate = %v, want 0.75 (ok + partial over visits)", got)
	}
	rows := s.StageBreakdown()
	if len(rows) == 0 || rows[0].Name != "fetch" && rows[0].Name != "visit" {
		t.Fatalf("unexpected breakdown %+v", rows)
	}
	var fetch *StageRow
	for i := range rows {
		if rows[i].Name == "fetch" {
			fetch = &rows[i]
		}
	}
	if fetch == nil || fetch.Count != 4 || fetch.Total != 100*time.Millisecond || fetch.Max != 40*time.Millisecond {
		t.Fatalf("fetch row = %+v", fetch)
	}
	if fetch.Mean != 25*time.Millisecond {
		t.Errorf("fetch mean = %v", fetch.Mean)
	}
}

func TestTraceWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	sum := NewSummary()
	sink := Tee{w, sum}

	tr := NewTrace("visit", testStart, A("site", "example.com"))
	tr.Start("consent_click")
	tr.Advance(ConsentClickCost)
	tr.End()
	in := &VisitTrace{Site: "example.com", Rank: 3, Phase: "after_accept", Outcome: "ok", Root: tr.Finish()}
	if err := sink.WriteTrace(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if sum.Visits != 1 {
		t.Errorf("tee missed the summary: visits=%d", sum.Visits)
	}

	var got []*VisitTrace
	if err := ReadTraces(strings.NewReader(buf.String()), func(v *VisitTrace) error {
		got = append(got, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("read %d traces", len(got))
	}
	out := got[0]
	if out.Site != in.Site || out.Rank != in.Rank || out.Phase != in.Phase || out.Outcome != in.Outcome {
		t.Errorf("metadata mismatch: %+v vs %+v", out, in)
	}
	a, _ := json.Marshal(in.Root)
	b, _ := json.Marshal(out.Root)
	if !bytes.Equal(a, b) {
		t.Errorf("span tree changed over round trip:\n%s\n%s", a, b)
	}
}

func TestDecodeTraceRejectsRootless(t *testing.T) {
	if _, err := DecodeTrace([]byte(`{"site":"a.com"}`)); err == nil {
		t.Fatal("rootless record decoded without error")
	}
	if _, err := DecodeTrace([]byte(`{not json`)); err == nil {
		t.Fatal("malformed JSON decoded without error")
	}
}

func TestWritePromDeterministic(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		r.Add("visits_total", 3, "outcome", "ok", "phase", "before_accept")
		r.Add("visits_total", 1, "phase", "before_accept", "outcome", "error") // label order must not matter
		r.Observe("stage_latency", 12*time.Millisecond, "stage", "fetch")
		r.Observe("stage_latency", 48*time.Millisecond, "stage", "fetch")
		return r
	}
	var a, b bytes.Buffer
	if err := mk().WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("prom output not deterministic:\n%s\n---\n%s", a.String(), b.String())
	}
	for _, want := range []string{
		`visits_total{outcome="ok",phase="before_accept"} 3`,
		`visits_total{outcome="error",phase="before_accept"} 1`,
		`stage_latency_count{stage="fetch"} 2`,
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("prom output missing %q:\n%s", want, a.String())
		}
	}
}

func TestSnapshotCounterLookup(t *testing.T) {
	r := NewRegistry()
	r.Add("calls_total", 5, "type", "observe")
	snap := r.Snapshot()
	if got := snap.Counter("calls_total", "type", "observe"); got != 5 {
		t.Errorf("Counter = %d", got)
	}
	if got := snap.Counter("calls_total", "type", "direct"); got != 0 {
		t.Errorf("absent Counter = %d", got)
	}
}

func TestHistogramQuantileClamped(t *testing.T) {
	var h histogram
	for i := 0; i < 100; i++ {
		h.observe(3 * time.Millisecond)
	}
	for d := 1; d <= 9; d++ {
		q := h.quantile(float64(d) / 10)
		if q != 3*time.Millisecond {
			t.Errorf("p%d0 = %v, want 3ms (clamped to max)", d, q)
		}
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Add("x", 1)
	r.Observe("y", time.Second)
	r.Merge(NewRegistry())
	if err := r.WriteProm(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}
