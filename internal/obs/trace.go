package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// VisitTrace is one exported trace record: the span tree of a single
// page visit (or a campaign-level stage such as the attestation sweep
// or the analysis pass), plus enough identity to join it back to the
// dataset rows. One VisitTrace per JSONL line.
type VisitTrace struct {
	// Site is the visited eTLD+1 ("" for campaign-level traces).
	Site string `json:"site,omitempty"`
	// Rank is the site's Tranco-style rank (0 for campaign-level).
	Rank int `json:"rank,omitempty"`
	// Phase is "before_accept", "after_accept", or a campaign-level
	// stage name ("attestation", "analysis").
	Phase string `json:"phase,omitempty"`
	// Outcome mirrors the visit's dataset outcome ("ok", "partial",
	// "error", …) so the monitor can compute success rates without
	// loading the dataset.
	Outcome string `json:"outcome,omitempty"`
	// Root is the span tree.
	Root *Span `json:"root"`
}

// Sink receives finished traces. Implementations must tolerate being
// called from a single goroutine only (the crawler's ordered consumer);
// TraceWriter relies on that to keep the JSONL byte-deterministic.
type Sink interface {
	WriteTrace(*VisitTrace) error
}

// TraceWriter streams traces as JSONL — one compact JSON object per
// line, keys in struct order — so a fixed-seed campaign reproduces the
// file byte for byte.
type TraceWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewTraceWriter wraps w; call Flush when the campaign ends.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	return &TraceWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// WriteTrace appends one JSONL line.
func (w *TraceWriter) WriteTrace(t *VisitTrace) error {
	if w == nil || t == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	//topicslint:ignore locks single-writer JSONL sink, the lock exists to serialize the encoder; Encode lands in the bufio layer
	return w.enc.Encode(t)
}

// Flush drains the buffer to the underlying writer.
func (w *TraceWriter) Flush() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bw.Flush()
}

// Tee fans one trace stream out to several sinks (e.g. a TraceWriter
// and a Summary).
type Tee []Sink

// WriteTrace forwards to every non-nil sink, returning the first error.
func (t Tee) WriteTrace(v *VisitTrace) error {
	var first error
	for _, s := range t {
		if s == nil {
			continue
		}
		if err := s.WriteTrace(v); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DecodeTrace parses one JSONL line into a VisitTrace, rejecting
// records without a root span.
func DecodeTrace(line []byte) (*VisitTrace, error) {
	var v VisitTrace
	if err := json.Unmarshal(line, &v); err != nil {
		return nil, fmt.Errorf("decode trace: %w", err)
	}
	if v.Root == nil {
		return nil, fmt.Errorf("decode trace: missing root span")
	}
	return &v, nil
}

// ReadTraces streams every trace in a JSONL reader to fn, stopping at
// the first decode error or fn error. Blank lines are skipped.
func ReadTraces(r io.Reader, fn func(*VisitTrace) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		v, err := DecodeTrace(b)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if err := fn(v); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read traces: %w", err)
	}
	return nil
}
