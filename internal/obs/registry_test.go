package obs

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// event is one registry update replayed during the merge property test.
type event struct {
	hist  bool
	name  string
	kv    []string
	delta int64
	d     time.Duration
}

func randomEvents(rng *rand.Rand, n int) []event {
	names := []string{"visits_total", "calls_total", "retries_total", "stage_latency"}
	outcomes := []string{"ok", "partial", "error"}
	evs := make([]event, n)
	for i := range evs {
		name := names[rng.Intn(len(names))]
		kv := []string{"outcome", outcomes[rng.Intn(len(outcomes))]}
		if rng.Intn(2) == 0 {
			kv = append(kv, "phase", "before_accept")
		}
		if name == "stage_latency" {
			evs[i] = event{hist: true, name: name, kv: kv, d: time.Duration(rng.Intn(1 << 22))}
		} else {
			evs[i] = event{name: name, kv: kv, delta: int64(rng.Intn(5))}
		}
	}
	return evs
}

func apply(r *Registry, evs []event) {
	for _, e := range evs {
		if e.hist {
			r.Observe(e.name, e.d, e.kv...)
		} else {
			r.Add(e.name, e.delta, e.kv...)
		}
	}
}

// TestRegistryMergeProperty is the obs half of the shard-merge
// invariant: any random split of the same event stream across shard
// registries, merged in any order, must snapshot identically to a
// single registry fed sequentially. Run under -race via make race-core.
func TestRegistryMergeProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		evs := randomEvents(rng, 500)

		sequential := NewRegistry()
		apply(sequential, evs)
		want := sequential.Snapshot()

		nShards := 1 + rng.Intn(7)
		shards := make([]*Registry, nShards)
		buckets := make([][]event, nShards)
		for i := range shards {
			shards[i] = NewRegistry()
		}
		for _, e := range evs {
			k := rng.Intn(nShards)
			buckets[k] = append(buckets[k], e)
		}
		var wg sync.WaitGroup
		for i := range shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				apply(shards[i], buckets[i])
			}(i)
		}
		wg.Wait()

		// Merge in a shuffled order to exercise commutativity too.
		order := rng.Perm(nShards)
		merged := NewRegistry()
		for _, i := range order {
			merged.Merge(shards[i])
		}
		if got := merged.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: %d-shard merge (order %v) diverges from sequential:\ngot  %+v\nwant %+v",
				trial, nShards, order, got, want)
		}
	}
}

// TestRegistryConcurrentUpdates hammers one registry from many
// goroutines; totals must be exact. Run under -race.
func TestRegistryConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Add("hits", 1)
				r.Observe("lat", time.Millisecond)
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counter("hits"); got != workers*per {
		t.Errorf("hits = %d, want %d", got, workers*per)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != workers*per {
		t.Errorf("histogram snapshot = %+v", snap.Histograms)
	}
}
