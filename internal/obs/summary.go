package obs

import (
	"sort"
	"sync"
	"time"
)

// StageSummary aggregates every span that shares a name across a trace
// stream: how often the stage ran and how much stage-clock time it
// consumed. All fields merge commutatively.
type StageSummary struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"totalNs"`
	MaxNS   int64 `json:"maxNs"`

	// hist carries the full latency distribution for quantile
	// extraction (p50/p99/p999 in the topics-monitor dashboard). It is
	// deliberately unexported: the serialized StageSummary shape is
	// pinned by the golden pipeline fixture. A summary rebuilt from
	// JSON has an empty hist (Count > 0, hist.count == 0); renderers
	// must treat its quantiles as unknown.
	hist histogram
}

// Mean is the average stage-clock duration.
func (s *StageSummary) Mean() time.Duration {
	if s == nil || s.Count == 0 {
		return 0
	}
	return time.Duration(s.TotalNS / s.Count)
}

// Summary is a Sink that folds a trace stream into campaign-level
// aggregates: visit counts by outcome and per-stage time. It backs both
// Results.TraceSummary and the topics-monitor dashboard.
type Summary struct {
	mu sync.Mutex
	// Traces is the number of trace records seen.
	Traces int `json:"traces"`
	// Sites is the number of distinct visit traces (site != "").
	Sites map[string]int `json:"-"`
	// Visits counts visit traces (excludes campaign-level records).
	Visits int `json:"visits"`
	// Succeeded / Partial / Failed classify visit outcomes.
	Succeeded int `json:"succeeded"`
	Partial   int `json:"partial"`
	Failed    int `json:"failed"`
	// Stages maps span name → aggregate.
	Stages map[string]*StageSummary `json:"stages"`
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{Sites: make(map[string]int), Stages: make(map[string]*StageSummary)}
}

// WriteTrace folds one trace into the summary. Safe for concurrent use;
// the result is order-independent because every update is an addition
// or max.
func (s *Summary) WriteTrace(v *VisitTrace) error {
	if s == nil || v == nil || v.Root == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Traces++
	if v.Site != "" {
		s.Sites[v.Site]++
		s.Visits++
		switch v.Outcome {
		case "ok":
			s.Succeeded++
		case "partial":
			s.Partial++
		default:
			s.Failed++
		}
	}
	v.Root.Walk(func(sp *Span) {
		st := s.Stages[sp.Name]
		if st == nil {
			st = &StageSummary{}
			s.Stages[sp.Name] = st
		}
		st.Count++
		d := int64(sp.Duration())
		if d < 0 {
			d = 0
		}
		st.TotalNS += d
		if d > st.MaxNS {
			st.MaxNS = d
		}
		st.hist.observe(time.Duration(d))
	})
	return nil
}

// Counts returns the record totals: traces seen, visit traces, and the
// ok/partial/failed outcome split.
func (s *Summary) Counts() (traces, visits, ok, partial, failed int) {
	if s == nil {
		return 0, 0, 0, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Traces, s.Visits, s.Succeeded, s.Partial, s.Failed
}

// SiteCount is the number of distinct sites seen.
func (s *Summary) SiteCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.Sites)
}

// SuccessRate is the fraction of visit traces that loaded a page —
// outcome "ok" or "partial" (a partial visit rendered with some failed
// subresources). This matches crawler.Stats.Succeeded/Attempted, the
// number calibrated to the paper's 86.8%.
func (s *Summary) SuccessRate() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Visits == 0 {
		return 0
	}
	return float64(s.Succeeded+s.Partial) / float64(s.Visits)
}

// StageRow is one line of the sorted stage breakdown. The quantiles are
// zero when the summary was rebuilt from serialized form (which does
// not carry bucket data) — render them as unknown, not as 0s.
type StageRow struct {
	Name  string
	Count int64
	Total time.Duration
	Max   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	P999  time.Duration
}

// StageBreakdown returns the stages sorted by total stage-clock time,
// largest first (ties broken by name for determinism).
func (s *Summary) StageBreakdown() []StageRow {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rows := make([]StageRow, 0, len(s.Stages))
	for name, st := range s.Stages {
		rows = append(rows, StageRow{
			Name:  name,
			Count: st.Count,
			Total: time.Duration(st.TotalNS),
			Max:   time.Duration(st.MaxNS),
			Mean:  st.Mean(),
			P50:   st.hist.quantile(0.5),
			P99:   st.hist.quantile(0.99),
			P999:  st.hist.quantile(0.999),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}
