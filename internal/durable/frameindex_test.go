package durable

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFrameIndexAppendMonotonic(t *testing.T) {
	fi := &FrameIndex{}
	fi.Append(FrameEntry{Offset: 0, Records: 1, Rank: 1})   // offset must advance past 0
	fi.Append(FrameEntry{Offset: -5, Records: 1, Rank: 1})  // negative offset
	fi.Append(FrameEntry{Offset: 10, Records: -1, Rank: 1}) // negative records
	fi.Append(FrameEntry{Offset: 10, Records: 1, Rank: -1}) // negative rank
	if len(fi.Entries) != 0 {
		t.Fatalf("invalid entries admitted: %+v", fi.Entries)
	}

	fi.Append(FrameEntry{Offset: 100, Records: 5, Rank: 3})
	fi.Append(FrameEntry{Offset: 100, Records: 9, Rank: 4}) // offset stalls: dropped
	fi.Append(FrameEntry{Offset: 90, Records: 9, Rank: 4})  // offset regresses: dropped
	fi.Append(FrameEntry{Offset: 200, Records: 4, Rank: 4}) // records regress: dropped
	fi.Append(FrameEntry{Offset: 200, Records: 9, Rank: 2}) // rank regresses: dropped
	fi.Append(FrameEntry{Offset: 200, Records: 9, Rank: 3}) // rank may stall
	if len(fi.Entries) != 2 {
		t.Fatalf("want 2 entries, got %+v", fi.Entries)
	}
	if fi.Entries[1] != (FrameEntry{Offset: 200, Records: 9, Rank: 3}) {
		t.Fatalf("unexpected tail entry %+v", fi.Entries[1])
	}
}

func TestFrameIndexTruncate(t *testing.T) {
	fi := &FrameIndex{}
	for i := int64(1); i <= 5; i++ {
		fi.Append(FrameEntry{Offset: 100 * i, Records: 10 * i, Rank: int(i)})
	}
	fi.Truncate(350)
	if len(fi.Entries) != 3 || fi.Entries[2].Offset != 300 {
		t.Fatalf("truncate(350) kept %+v", fi.Entries)
	}
	fi.Truncate(300) // boundary entry survives an exact truncate
	if len(fi.Entries) != 3 {
		t.Fatalf("truncate(300) kept %+v", fi.Entries)
	}
	fi.Truncate(0)
	if len(fi.Entries) != 0 {
		t.Fatalf("truncate(0) kept %+v", fi.Entries)
	}
}

func TestFrameIndexSeek(t *testing.T) {
	fi := &FrameIndex{}
	fi.Append(FrameEntry{Offset: 100, Records: 10, Rank: 4})
	fi.Append(FrameEntry{Offset: 250, Records: 25, Rank: 9})
	fi.Append(FrameEntry{Offset: 400, Records: 40, Rank: 17})

	// SeekRecords: the latest boundary committing ≤ n records.
	for _, tc := range []struct {
		records int64
		want    int64 // offset; 0 = start of file
	}{
		{0, 0}, {9, 0}, {10, 100}, {24, 100}, {25, 250}, {39, 250}, {40, 400}, {1 << 40, 400},
	} {
		if got := fi.SeekRecords(tc.records); got.Offset != tc.want {
			t.Errorf("SeekRecords(%d) = %+v, want offset %d", tc.records, got, tc.want)
		}
	}

	// SeekRank: the latest boundary whose watermark is strictly below the
	// wanted rank — every record past it has rank > watermark ≥ nothing
	// the reader needs.
	for _, tc := range []struct {
		rank int
		want int64
	}{
		{0, 0}, {4, 0}, {5, 100}, {9, 100}, {10, 250}, {17, 250}, {18, 400}, {1 << 20, 400},
	} {
		if got := fi.SeekRank(tc.rank); got.Offset != tc.want {
			t.Errorf("SeekRank(%d) = %+v, want offset %d", tc.rank, got, tc.want)
		}
	}
}

// TestFrameIndexLoadSalvage pins the accelerator-never-authority
// contract: LoadFrameIndex returns nil — and readers fall back to a full
// scan — on every conceivable defect of the sidecar file.
func TestFrameIndexLoadSalvage(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "crawl.jsonl.gz")
	if err := os.WriteFile(journal, make([]byte, 500), 0o644); err != nil {
		t.Fatal(err)
	}
	store := func(t *testing.T, fi *FrameIndex) {
		t.Helper()
		if err := fi.Store(journal); err != nil {
			t.Fatal(err)
		}
	}

	fi := &FrameIndex{}
	fi.Append(FrameEntry{Offset: 200, Records: 20, Rank: 5})
	fi.Append(FrameEntry{Offset: 450, Records: 45, Rank: 11})
	store(t, fi)
	got := LoadFrameIndex(journal)
	if got == nil || len(got.Entries) != 2 || got.Entries[1] != fi.Entries[1] {
		t.Fatalf("round trip lost entries: %+v", got)
	}

	t.Run("missing", func(t *testing.T) {
		if LoadFrameIndex(filepath.Join(dir, "other.jsonl.gz")) != nil {
			t.Fatal("loaded an index that does not exist")
		}
	})
	t.Run("wrong-journal-name", func(t *testing.T) {
		renamed := filepath.Join(dir, "moved.jsonl.gz")
		if err := os.WriteFile(renamed, make([]byte, 500), 0o644); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(FrameIndexPath(journal))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(FrameIndexPath(renamed), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if LoadFrameIndex(renamed) != nil {
			t.Fatal("loaded an index naming a different journal")
		}
	})
	t.Run("offset-past-journal-size", func(t *testing.T) {
		// The journal shrank (e.g. a resume truncated a torn tail the
		// index still describes): the whole index is untrustworthy.
		if err := os.Truncate(journal, 300); err != nil {
			t.Fatal(err)
		}
		if LoadFrameIndex(journal) != nil {
			t.Fatal("loaded an index pointing past the journal size")
		}
		if err := os.Truncate(journal, 500); err != nil {
			t.Fatal(err)
		}
		if LoadFrameIndex(journal) == nil {
			t.Fatal("index did not recover once the journal grew back")
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		if err := os.WriteFile(FrameIndexPath(journal), []byte(`{"version":1,`), 0o644); err != nil {
			t.Fatal(err)
		}
		if LoadFrameIndex(journal) != nil {
			t.Fatal("loaded a torn index")
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		store(t, fi)
		data, err := os.ReadFile(FrameIndexPath(journal))
		if err != nil {
			t.Fatal(err)
		}
		data = []byte("{\"version\":99," + string(data[len(`{"version":1,`):]))
		if err := os.WriteFile(FrameIndexPath(journal), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if LoadFrameIndex(journal) != nil {
			t.Fatal("loaded an index from the future")
		}
	})
	t.Run("non-monotonic", func(t *testing.T) {
		bad := `{"version":1,"journal":"crawl.jsonl.gz","entries":[` +
			`{"offset":200,"records":20,"rank":5},{"offset":150,"records":25,"rank":6}]}`
		if err := os.WriteFile(FrameIndexPath(journal), []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if LoadFrameIndex(journal) != nil {
			t.Fatal("loaded a non-monotonic index")
		}
	})
	t.Run("remove", func(t *testing.T) {
		store(t, fi)
		RemoveFrameIndex(journal)
		if LoadFrameIndex(journal) != nil {
			t.Fatal("index survived RemoveFrameIndex")
		}
	})
}
