// Package durable is the crash-safe persistence layer of the pipeline:
// every dataset, report and checkpoint artifact the campaign writes to
// disk goes through it, so a process death — kill -9 mid-write, a torn
// gzip tail, a full disk — never corrupts an artifact beyond what a
// restart can recover.
//
// It provides three layers:
//
//   - WriteFileAtomic / SyncDir: the classic write-to-temp, fsync,
//     rename discipline for whole-file artifacts (reports, allow-lists,
//     manifests). Readers only ever observe the old or the new content,
//     never a torn mixture.
//
//   - Record framing (frame.go): every journal record is preceded by a
//     textual `#r <len> <crc32>` header, so a salvaging reader
//     (ScanRecords) can tell a valid prefix from a torn tail and recover
//     every intact record of a crashed file instead of failing on the
//     first bad byte. The framing is line-based on purpose: the files
//     stay greppable JSONL, and legacy unframed files still scan.
//
//   - Journal (journal.go) + Manifest (manifest.go): an append-only
//     record file with checkpoint discipline. Sync() flushes buffers,
//     closes the current gzip member and fsyncs, establishing a
//     *committed byte offset* — a boundary the companion manifest
//     records together with the record count, a running payload CRC and
//     the completed-site watermark. Resume seeks straight to the last
//     committed offset and replays only the tail, O(checkpoint) instead
//     of O(file).
//
// All of the above run through the FS seam (fs.go): the production OS
// implementation by default, or a fault-injecting wrapper
// (chaos.FaultFS) under test — ENOSPC, EIO, short writes, failed
// fsyncs and torn renames all exercise exactly the code paths a real
// disk would.
//
// What is durable when: records are durable at checkpoint (Sync)
// boundaries; between checkpoints they live in user-space buffers and a
// crash loses at most one checkpoint interval, which the resumed
// campaign deterministically re-produces. The manifest itself is
// written atomically, so it always describes a committed state of the
// journal (possibly a stale one — the journal may have synced again
// after; the salvaging tail scan absorbs the difference).
package durable

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
)

// WriteFileAtomic writes an artifact via a temp file in the target
// directory, fsyncs it, renames it over path and fsyncs the directory.
// The write callback receives a buffered writer; on any error the temp
// file is removed and the previous content of path (if any) is intact.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return WriteFileAtomicFS(OS, path, write)
}

// WriteFileAtomicFS is WriteFileAtomic through an explicit filesystem
// seam (nil means the production OS filesystem).
func WriteFileAtomicFS(fsys FS, path string, write func(io.Writer) error) (err error) {
	fsys = fsOrOS(fsys)
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: temp for %s: %w", path, err)
	}
	// Every failure path below — write, flush, sync, close, rename —
	// must leave no stray temp behind and never touch path itself.
	name := tmp.Name()
	closed := false
	defer func() {
		if err != nil {
			if !closed {
				tmp.Close()
			}
			fsys.Remove(name)
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if err = write(bw); err != nil {
		return fmt.Errorf("durable: writing %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("durable: flushing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("durable: syncing %s: %w", path, err)
	}
	closed = true
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("durable: closing temp for %s: %w", path, err)
	}
	if err = fsys.Rename(name, path); err != nil {
		return fmt.Errorf("durable: renaming into %s: %w", path, err)
	}
	return fsys.SyncDir(dir)
}

// SyncDir fsyncs a directory through the production filesystem,
// tolerating only benign refusals (permission, EINVAL on filesystems
// that cannot fsync a directory handle); real I/O errors propagate.
func SyncDir(dir string) error { return OS.SyncDir(dir) }
