package durable

import (
	"bytes"
	"hash/crc32"
	"testing"
)

// FuzzScanRecords feeds the salvaging scanner arbitrary bytes. The scan
// must never panic and never error (only the callback may), and its
// accounting must balance: delivered records re-frame into exactly the
// reported valid prefix, and prefix + truncated tail covers the input.
func FuzzScanRecords(f *testing.F) {
	f.Add([]byte(`{"site":"a.com"}` + "\n"))
	f.Add(AppendFrame(nil, []byte(`{"site":"a.com"}`)))
	f.Add(append(AppendFrame(nil, []byte(`{"x":1}`)), "#r 99 0\n{"...))
	f.Add([]byte("#r 12\n"))
	f.Add([]byte("#r 5 0\nabc"))
	f.Add([]byte{})
	f.Add([]byte("\n\n#r 0 0\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var crc uint32
		var n int64
		st, err := ScanRecords(bytes.NewReader(data), func(p []byte) error {
			crc = crc32.Update(crc, castagnoli, p)
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("scan errored on arbitrary input: %v", err)
		}
		if st.Records != n {
			t.Fatalf("delivered %d records, stats say %d", n, st.Records)
		}
		if st.PayloadCRC != crc {
			t.Fatalf("crc mismatch: stats %x, delivered %x", st.PayloadCRC, crc)
		}
		if st.Bytes < 0 || st.Bytes > int64(len(data)) {
			t.Fatalf("valid prefix %d bytes of %d input", st.Bytes, len(data))
		}
		if !st.Truncated && st.TruncatedBytes != 0 {
			t.Fatalf("not truncated but %d truncated bytes", st.TruncatedBytes)
		}
		if st.Truncated && st.Bytes+st.TruncatedBytes != int64(len(data)) {
			t.Fatalf("prefix %d + truncated %d != input %d", st.Bytes, st.TruncatedBytes, len(data))
		}
	})
}

// FuzzManifestDecode hardens the checkpoint-manifest decoder: no input
// may panic it, and everything it accepts must re-encode/re-decode to
// the same committed state (Store/Load round trip through an actual
// file, including the journal size guard).
func FuzzManifestDecode(f *testing.F) {
	f.Add([]byte(`{"version":1,"journal":"crawl.jsonl.gz","offset":100,"records":3,"payload_crc":7,"watermark_rank":2,"watermark_site":"b.com","sites":2}`))
	f.Add([]byte(`{"version":1,"journal":"x","offset":0,"records":0}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"offset":-1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil manifest without error")
		}
		if m.Offset < 0 || m.Records < 0 || m.Sites < 0 || m.WatermarkRank < 0 {
			t.Fatalf("validator admitted negative fields: %+v", m)
		}
		if (m.Records == 0) != (m.Offset == 0) {
			t.Fatalf("validator admitted inconsistent emptiness: %+v", m)
		}
	})
}
