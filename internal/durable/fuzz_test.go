package durable

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzScanRecords feeds the salvaging scanner arbitrary bytes. The scan
// must never panic and never error (only the callback may), and its
// accounting must balance: delivered records re-frame into exactly the
// reported valid prefix, and prefix + truncated tail covers the input.
func FuzzScanRecords(f *testing.F) {
	f.Add([]byte(`{"site":"a.com"}` + "\n"))
	f.Add(AppendFrame(nil, []byte(`{"site":"a.com"}`)))
	f.Add(append(AppendFrame(nil, []byte(`{"x":1}`)), "#r 99 0\n{"...))
	f.Add([]byte("#r 12\n"))
	f.Add([]byte("#r 5 0\nabc"))
	f.Add([]byte{})
	f.Add([]byte("\n\n#r 0 0\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var crc uint32
		var n int64
		st, err := ScanRecords(bytes.NewReader(data), func(p []byte) error {
			crc = crc32.Update(crc, castagnoli, p)
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("scan errored on arbitrary input: %v", err)
		}
		if st.Records != n {
			t.Fatalf("delivered %d records, stats say %d", n, st.Records)
		}
		if st.PayloadCRC != crc {
			t.Fatalf("crc mismatch: stats %x, delivered %x", st.PayloadCRC, crc)
		}
		if st.Bytes < 0 || st.Bytes > int64(len(data)) {
			t.Fatalf("valid prefix %d bytes of %d input", st.Bytes, len(data))
		}
		if !st.Truncated && st.TruncatedBytes != 0 {
			t.Fatalf("not truncated but %d truncated bytes", st.TruncatedBytes)
		}
		if st.Truncated && st.Bytes+st.TruncatedBytes != int64(len(data)) {
			t.Fatalf("prefix %d + truncated %d != input %d", st.Bytes, st.TruncatedBytes, len(data))
		}
	})
}

// FuzzManifestDecode hardens the checkpoint-manifest decoder: no input
// may panic it, and everything it accepts must re-encode/re-decode to
// the same committed state (Store/Load round trip through an actual
// file, including the journal size guard).
func FuzzManifestDecode(f *testing.F) {
	f.Add([]byte(`{"version":1,"journal":"crawl.jsonl.gz","offset":100,"records":3,"payload_crc":7,"watermark_rank":2,"watermark_site":"b.com","sites":2}`))
	f.Add([]byte(`{"version":1,"journal":"x","offset":0,"records":0}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"offset":-1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil manifest without error")
		}
		if m.Offset < 0 || m.Records < 0 || m.Sites < 0 || m.WatermarkRank < 0 {
			t.Fatalf("validator admitted negative fields: %+v", m)
		}
		if (m.Records == 0) != (m.Offset == 0) {
			t.Fatalf("validator admitted inconsistent emptiness: %+v", m)
		}
	})
}

// FuzzFrameIndexDecode hardens the sparse-frame-index decoder the same
// way: arbitrary (torn, bit-flipped, adversarial) bytes must either be
// rejected or decode to an index whose entries honour the monotonicity
// invariants every seek helper relies on — so a reader seeded from a
// decoded index can trust its boundaries without re-checking.
func FuzzFrameIndexDecode(f *testing.F) {
	f.Add([]byte(`{"version":1,"journal":"crawl.jsonl.gz","entries":[{"offset":100,"records":10,"rank":4},{"offset":250,"records":25,"rank":9}]}`))
	f.Add([]byte(`{"version":1,"journal":"x"}`))
	f.Add([]byte(`{"version":2,"journal":"x","entries":[{"offset":1,"records":1,"rank":0}]}`))
	f.Add([]byte(`{"version":1,"entries":[{"offset":5,"records":1},{"offset":5,"records":2}]}`))
	f.Add([]byte(`{"version":1,"entries":[{"offset":9,"records":0,"rank":0}]}`))
	f.Add([]byte(`{"version":1,"entries":[{"offset":-3,"records":1,"rank":-2}]}`))
	f.Add([]byte(`{"version":1,"journal":"crawl.jsonl.gz","entries":[{"offset":100,`)) // torn tail
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fi, err := DecodeFrameIndex(data)
		if err != nil {
			return
		}
		if fi == nil {
			t.Fatal("nil frame index without error")
		}
		if fi.Version != FrameIndexVersion {
			t.Fatalf("validator admitted version %d", fi.Version)
		}
		var prev FrameEntry
		for i, e := range fi.Entries {
			if e.Offset <= prev.Offset || e.Records < prev.Records || e.Rank < prev.Rank {
				t.Fatalf("validator admitted non-monotonic entry %d: %+v", i, fi.Entries)
			}
			if e.Records <= 0 {
				t.Fatalf("validator admitted empty boundary %d: %+v", i, e)
			}
			prev = e
		}
		// Accepted indexes must survive a Store/Load round trip intact
		// (modulo the journal binding Store rewrites). The backing journal
		// is a sparse file, so adversarially huge offsets stay cheap.
		dir := t.TempDir()
		journal := filepath.Join(dir, "crawl.jsonl.gz")
		size := int64(0)
		if n := len(fi.Entries); n > 0 {
			size = fi.Entries[n-1].Offset
		}
		if err := os.WriteFile(journal, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(journal, size); err != nil {
			return // offset beyond what the filesystem represents: no journal could ever match
		}
		if err := fi.Store(journal); err != nil {
			t.Fatal(err)
		}
		got := LoadFrameIndex(journal)
		if got == nil {
			t.Fatal("stored index did not load back")
		}
		if len(got.Entries) != len(fi.Entries) {
			t.Fatalf("round trip changed entry count: got %d, want %d", len(got.Entries), len(fi.Entries))
		}
		if len(fi.Entries) > 0 && !reflect.DeepEqual(got.Entries, fi.Entries) {
			t.Fatalf("round trip changed entries:\ngot:  %+v\nwant: %+v", got.Entries, fi.Entries)
		}
	})
}
