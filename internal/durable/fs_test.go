package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/vclock"
)

func TestSyncDirBenignErrorClassification(t *testing.T) {
	for _, err := range []error{os.ErrPermission, syscall.EPERM, syscall.EACCES,
		syscall.EINVAL, syscall.ENOTSUP, syscall.ENOTTY} {
		if !benignSyncDirError(err) {
			t.Errorf("%v: want benign (fsync-on-directory unsupported there)", err)
		}
		if !benignSyncDirError(fmt.Errorf("wrapped: %w", err)) {
			t.Errorf("wrapped %v: want benign", err)
		}
	}
	// Real I/O failures must propagate: swallowing an EIO here would
	// let a rename commit without its durability barrier.
	for _, err := range []error{syscall.EIO, syscall.ENOSPC, os.ErrClosed, errors.New("disk on fire")} {
		if benignSyncDirError(err) {
			t.Errorf("%v: swallowed a real directory-sync failure", err)
		}
	}
}

func TestSyncDirRealDirAndMissingDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("SyncDir on a missing directory reported success")
	}
}

// stubFS fails exactly one operation of the atomic-write sequence,
// delegating everything else to the real OS — the precise instrument
// for the abort-path matrix.
type stubFS struct {
	FS
	failCreate bool
	failRename bool
	failWrite  bool
	failSync   bool
	failClose  bool
}

func (s *stubFS) CreateTemp(dir, pattern string) (File, error) {
	if s.failCreate {
		return nil, &FaultErr{syscall.EIO}
	}
	f, err := s.FS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &stubFile{File: f, fs: s}, nil
}

func (s *stubFS) Rename(oldpath, newpath string) error {
	if s.failRename {
		return &FaultErr{syscall.EIO}
	}
	return s.FS.Rename(oldpath, newpath)
}

type stubFile struct {
	File
	fs *stubFS
}

func (f *stubFile) Write(p []byte) (int, error) {
	if f.fs.failWrite {
		return 0, &FaultErr{syscall.EIO}
	}
	return f.File.Write(p)
}

func (f *stubFile) Sync() error {
	if f.fs.failSync {
		return &FaultErr{syscall.EIO}
	}
	return f.File.Sync()
}

func (f *stubFile) Close() error {
	err := f.File.Close()
	if f.fs.failClose {
		return &FaultErr{syscall.EIO}
	}
	return err
}

// FaultErr is a transient injected error for the stub.
type FaultErr struct{ errno error }

func (e *FaultErr) Error() string   { return "stub: injected " + e.errno.Error() }
func (e *FaultErr) Unwrap() error   { return e.errno }
func (e *FaultErr) Transient() bool { return true }

// TestWriteFileAtomicAbortMatrix enumerates a failure at every stage of
// the atomic-write sequence — temp creation, write, sync, close, rename
// — and asserts the two abort-path invariants: no stray .tmp- staging
// file survives, and the target is never torn (absent stays absent, a
// previous version stays byte-intact).
func TestWriteFileAtomicAbortMatrix(t *testing.T) {
	cases := []struct {
		name string
		fs   *stubFS
	}{
		{"create-temp", &stubFS{failCreate: true}},
		{"write", &stubFS{failWrite: true}},
		{"sync", &stubFS{failSync: true}},
		{"close", &stubFS{failClose: true}},
		{"rename", &stubFS{failRename: true}},
	}
	for _, tc := range cases {
		for _, preexisting := range []bool{false, true} {
			name := tc.name
			if preexisting {
				name += "/replacing"
			}
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				target := filepath.Join(dir, "artifact.ckpt")
				if preexisting {
					if err := WriteFileAtomic(target, func(w io.Writer) error {
						_, err := w.Write([]byte("old version\n"))
						return err
					}); err != nil {
						t.Fatal(err)
					}
				}
				tc.fs.FS = OS
				err := WriteFileAtomicFS(tc.fs, target, func(w io.Writer) error {
					_, werr := w.Write([]byte("new version\n"))
					return werr
				})
				if err == nil {
					t.Fatalf("injected %s failure not reported", tc.name)
				}
				entries, rerr := os.ReadDir(dir)
				if rerr != nil {
					t.Fatal(rerr)
				}
				for _, e := range entries {
					if strings.Contains(e.Name(), ".tmp-") {
						t.Errorf("stray staging file survived the abort: %s", e.Name())
					}
				}
				data, rerr := os.ReadFile(target)
				switch {
				case !preexisting:
					if rerr == nil {
						t.Errorf("target materialized despite the abort: %q", data)
					}
				case rerr != nil:
					t.Errorf("previous version lost: %v", rerr)
				case string(data) != "old version\n":
					t.Errorf("previous version torn: %q", data)
				}
			})
		}
	}
}

func TestWriteFileAtomicSucceedsThroughSeam(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "artifact.ckpt")
	if err := WriteFileAtomicFS(&stubFS{FS: OS}, target, func(w io.Writer) error {
		_, err := w.Write([]byte("payload\n"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(target)
	if err != nil || string(data) != "payload\n" {
		t.Fatalf("read back %q, %v", data, err)
	}
}

func TestRetryPolicyTransientThenSuccess(t *testing.T) {
	clock := vclock.New(time.Unix(0, 0))
	reg := obs.NewRegistry()
	p := RetryPolicy{Attempts: 4, Backoff: time.Second, Clock: clock, Metrics: reg}
	calls := 0
	err := p.Do("test-op", func() error {
		calls++
		if calls < 3 {
			return &FaultErr{syscall.EIO}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("transient blip not retried away: %v", err)
	}
	if calls != 3 {
		t.Fatalf("got %d calls, want 3", calls)
	}
	// Backoff doubles on the virtual clock: 1s + 2s.
	if got := clock.Now().Sub(time.Unix(0, 0)); got != 3*time.Second {
		t.Errorf("virtual backoff %v, want 3s", got)
	}
	if got := reg.Snapshot().Counter("storage_retry_total", "op", "test-op"); got != 2 {
		t.Errorf("storage_retry_total = %d, want 2", got)
	}
}

func TestRetryPolicyDiskFullFailsFast(t *testing.T) {
	p := RetryPolicy{Attempts: 5, Backoff: time.Second}
	calls := 0
	err := p.Do("test-op", func() error {
		calls++
		return &diskFullErr{}
	})
	if !IsDiskFull(err) {
		t.Fatalf("ENOSPC classification lost: %v", err)
	}
	if calls != 1 {
		t.Fatalf("ENOSPC retried %d times; must fail fast", calls-1)
	}
}

type diskFullErr struct{}

func (*diskFullErr) Error() string   { return "injected ENOSPC" }
func (*diskFullErr) Unwrap() error   { return syscall.ENOSPC }
func (*diskFullErr) Transient() bool { return true }

func TestRetryPolicyExhaustsAndWraps(t *testing.T) {
	p := RetryPolicy{Attempts: 3}
	calls := 0
	err := p.Do("test-op", func() error {
		calls++
		return &FaultErr{syscall.EIO}
	})
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want exhaustion after 3", err, calls)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Errorf("exhaustion wrap dropped the cause: %v", err)
	}
	// Non-transient errors never retry.
	calls = 0
	if err := p.Do("test-op", func() error { calls++; return errors.New("hard") }); err == nil || calls != 1 {
		t.Fatalf("hard error retried: err=%v calls=%d", err, calls)
	}
}

func TestIsTransientAndIsDiskFull(t *testing.T) {
	if IsTransient(errors.New("plain")) {
		t.Error("plain error classified transient")
	}
	if !IsTransient(fmt.Errorf("wrap: %w", &FaultErr{syscall.EIO})) {
		t.Error("wrapped transient lost its classification")
	}
	if !IsDiskFull(fmt.Errorf("wrap: %w", syscall.ENOSPC)) {
		t.Error("wrapped ENOSPC not recognized")
	}
	if IsDiskFull(syscall.EIO) {
		t.Error("EIO mistaken for disk-full")
	}
}
