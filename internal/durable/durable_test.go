package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicReplacesAndPreservesOnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content = %q, want v1", got)
	}

	boom := fmt.Errorf("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "half-written v2")
		return boom
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("failed write clobbered target: %q", got)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"site":"a.com"}`),
		[]byte(`{"site":"b.com","rank":2}`),
		{}, // empty payload is legal
		[]byte(`{"site":"c.com"}`),
	}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	var got [][]byte
	st, err := ScanRecords(bytes.NewReader(buf), func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated {
		t.Fatalf("clean stream reported truncated: %+v", st)
	}
	if st.Records != int64(len(payloads)) {
		t.Fatalf("records = %d, want %d", st.Records, len(payloads))
	}
	if st.Bytes != int64(len(buf)) {
		t.Fatalf("bytes = %d, want %d", st.Bytes, len(buf))
	}
	for i, p := range payloads {
		if !bytes.Equal(got[i], p) {
			t.Fatalf("record %d = %q, want %q", i, got[i], p)
		}
	}
	var crc uint32
	for _, p := range payloads {
		crc = PayloadCRC(crc, p)
	}
	if st.PayloadCRC != crc {
		t.Fatalf("crc = %x, want %x", st.PayloadCRC, crc)
	}
}

func TestScanRecordsLegacyUnframedLines(t *testing.T) {
	in := `{"site":"a.com"}` + "\n" + `{"site":"b.com"}` + "\n"
	var got []string
	st, err := ScanRecords(strings.NewReader(in), func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil || st.Truncated || st.Records != 2 {
		t.Fatalf("st=%+v err=%v got=%v", st, err, got)
	}
	if got[0] != `{"site":"a.com"}` || got[1] != `{"site":"b.com"}` {
		t.Fatalf("got %v", got)
	}
}

func TestScanRecordsSalvagesTornTails(t *testing.T) {
	valid := AppendFrame(nil, []byte(`{"site":"a.com"}`))
	valid = AppendFrame(valid, []byte(`{"site":"b.com"}`))
	nValid := int64(2)

	cases := []struct {
		name   string
		tail   string
		reason string
	}{
		{"torn-line", `{"site":"c`, "torn-line"},
		{"torn-header", "#r 12\n", "torn-header"},
		{"torn-header-garbage", "#r zz yy\n", "torn-header"},
		{"torn-payload", "#r 100 deadbeef\n{\"site\":", "torn-payload"},
		{"crc-mismatch", "#r 16 0\n" + `{"site":"x.com"}` + "\n", "crc-mismatch"},
		{"oversized-len", "#r 999999999999 0\n", "torn-header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := append(append([]byte(nil), valid...), tc.tail...)
			var got int64
			st, err := ScanRecords(bytes.NewReader(in), func(p []byte) error {
				got++
				return nil
			})
			if err != nil {
				t.Fatalf("salvaging scan errored: %v", err)
			}
			if got != nValid || st.Records != nValid {
				t.Fatalf("salvaged %d records, want %d (st=%+v)", got, nValid, st)
			}
			if !st.Truncated || st.Reason != tc.reason {
				t.Fatalf("st=%+v, want truncated with reason %q", st, tc.reason)
			}
			if st.Bytes != int64(len(valid)) {
				t.Fatalf("valid prefix = %d bytes, want %d", st.Bytes, len(valid))
			}
			if st.TruncatedBytes != int64(len(tc.tail)) {
				t.Fatalf("truncated bytes = %d, want %d", st.TruncatedBytes, len(tc.tail))
			}
		})
	}
}

func TestScanRecordsPropagatesCallbackError(t *testing.T) {
	in := AppendFrame(nil, []byte(`{"a":1}`))
	boom := fmt.Errorf("stop")
	_, err := ScanRecords(bytes.NewReader(in), func([]byte) error { return boom })
	if err != boom {
		t.Fatalf("err = %v, want callback error", err)
	}
}

func journalRecords(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf(`{"site":"s%03d.com","rank":%d,"pad":"xxxxxxxxxxxxxxxxxxxxxxxx"}`, i, i+1))
	}
	return out
}

// scanTail reads a journal from a checkpoint offset and salvages the
// tail records.
func scanTail(t *testing.T, path string, off int64) ([][]byte, ScanStats, int64) {
	t.Helper()
	rc, cr, err := OpenTail(path, off)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var got [][]byte
	st, err := ScanRecords(rc, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, st, cr.BytesRead()
}

func TestJournalCheckpointAndTailResume(t *testing.T) {
	for _, name := range []string{"j.jsonl", "j.jsonl.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), name)
			recs := journalRecords(6)
			j, err := Create(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range recs[:4] {
				if err := j.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			ck, err := j.Sync()
			if err != nil {
				t.Fatal(err)
			}
			if ck.Records != 4 {
				t.Fatalf("checkpoint records = %d, want 4", ck.Records)
			}
			// Repeated Sync with nothing new must not grow the file.
			size1 := fileSize(t, path)
			for i := 0; i < 3; i++ {
				if _, err := j.Sync(); err != nil {
					t.Fatal(err)
				}
			}
			if s := fileSize(t, path); s != size1 {
				t.Fatalf("idle Sync grew file %d -> %d", size1, s)
			}
			for _, p := range recs[4:] {
				if err := j.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			// Tail resume from the mid-file checkpoint sees exactly the
			// last two records, reading only the tail bytes.
			tail, st, bytesRead := scanTail(t, path, ck.Offset)
			if st.Truncated {
				t.Fatalf("clean journal tail reported truncated: %+v", st)
			}
			if len(tail) != 2 || !bytes.Equal(tail[0], recs[4]) || !bytes.Equal(tail[1], recs[5]) {
				t.Fatalf("tail = %d records (%q), want records 5-6", len(tail), tail)
			}
			total := fileSize(t, path)
			if want := total - ck.Offset; bytesRead != want {
				t.Fatalf("tail read %d raw bytes, want %d (O(tail), file is %d)", bytesRead, want, total)
			}

			// Full scan from offset 0 sees all six.
			all, st, _ := scanTail(t, path, 0)
			if st.Truncated || len(all) != 6 {
				t.Fatalf("full scan: %d records, st=%+v", len(all), st)
			}
		})
	}
}

func TestJournalCrashTornTailSalvage(t *testing.T) {
	for _, name := range []string{"j.jsonl", "j.jsonl.gz"} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, name)
			recs := journalRecords(4)
			j, err := Create(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range recs[:2] {
				if err := j.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			ck, err := j.Sync()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range recs[2:] {
				if err := j.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			whole, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			// Kill the file at every byte between the checkpoint and the
			// end: salvage from the checkpoint must always yield a
			// prefix of the uncommitted records, never an error.
			for cut := ck.Offset; cut <= int64(len(whole)); cut++ {
				torn := filepath.Join(dir, fmt.Sprintf("torn-%d-%s", cut, name))
				if err := os.WriteFile(torn, whole[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				tail, st, _ := scanTail(t, torn, ck.Offset)
				if len(tail) > 2 {
					t.Fatalf("cut %d: salvaged %d tail records from 2 written", cut, len(tail))
				}
				for i, p := range tail {
					if !bytes.Equal(p, recs[2+i]) {
						t.Fatalf("cut %d: tail[%d] = %q, want %q", cut, i, p, recs[2+i])
					}
				}
				if cut == int64(len(whole)) && (st.Truncated || len(tail) != 2) {
					t.Fatalf("uncut file: tail=%d st=%+v", len(tail), st)
				}
				os.Remove(torn)
			}
		})
	}
}

func TestOpenAtTruncatesUncommittedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl.gz")
	recs := journalRecords(4)
	j, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range recs[:2] {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := j.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(recs[2]); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen at the checkpoint: the third record is discarded, and a
	// different record appended in its place.
	j2, err := OpenAt(path, ck, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Records() != 2 {
		t.Fatalf("resumed records = %d, want 2", j2.Records())
	}
	if err := j2.Append(recs[3]); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	all, st, _ := scanTail(t, path, 0)
	if st.Truncated || len(all) != 3 {
		t.Fatalf("after OpenAt: %d records, st=%+v", len(all), st)
	}
	if !bytes.Equal(all[2], recs[3]) {
		t.Fatalf("record 3 = %q, want %q", all[2], recs[3])
	}
}

func TestJournalCrashHooks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	boom := fmt.Errorf("crash")
	j, err := Create(path, Options{
		BeforeAppend: func(i int64) error {
			if i >= 2 {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := journalRecords(3)
	for i, p := range recs {
		err := j.Append(p)
		if i < 2 && err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if i == 2 && err != boom {
			t.Fatalf("append 2: err=%v, want injected crash", err)
		}
	}
	if _, err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	all, _, _ := scanTail(t, path, 0)
	if len(all) != 2 {
		t.Fatalf("journal holds %d records, want 2", len(all))
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.jsonl.gz")
	// The manifest refuses to describe a journal shorter than its
	// offset, so give it a real file.
	if err := os.WriteFile(path, bytes.Repeat([]byte("x"), 200), 0o644); err != nil {
		t.Fatal(err)
	}
	m := &Manifest{
		Offset:        128,
		Records:       7,
		PayloadCRC:    0xdeadbeef,
		WatermarkRank: 4,
		WatermarkSite: "d.example",
		Sites:         4,
	}
	if err := m.Store(path); err != nil {
		t.Fatal(err)
	}
	got := LoadManifest(path)
	if got == nil {
		t.Fatal("stored manifest did not load")
	}
	if got.Offset != 128 || got.Records != 7 || got.PayloadCRC != 0xdeadbeef ||
		got.WatermarkRank != 4 || got.WatermarkSite != "d.example" || got.Sites != 4 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Checkpoint() != (Checkpoint{Offset: 128, Records: 7, PayloadCRC: 0xdeadbeef}) {
		t.Fatalf("checkpoint = %+v", got.Checkpoint())
	}
}

func TestLoadManifestToleratesAbsenceAndCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.jsonl")
	if m := LoadManifest(path); m != nil {
		t.Fatalf("absent manifest loaded: %+v", m)
	}
	if err := os.WriteFile(ManifestPath(path), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if m := LoadManifest(path); m != nil {
		t.Fatalf("corrupt manifest loaded: %+v", m)
	}
	// A manifest pointing past the journal's end is stale: absent.
	if err := os.WriteFile(path, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := &Manifest{Offset: 1 << 20, Records: 9}
	if err := m.Store(path); err != nil {
		t.Fatal(err)
	}
	if got := LoadManifest(path); got != nil {
		t.Fatalf("oversized-offset manifest loaded: %+v", got)
	}
	RemoveManifest(path)
	if _, err := os.Stat(ManifestPath(path)); !os.IsNotExist(err) {
		t.Fatalf("manifest not removed: %v", err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func TestManifestShardRoundTripAndValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.jsonl")
	if err := os.WriteFile(path, bytes.Repeat([]byte("x"), 200), 0o644); err != nil {
		t.Fatal(err)
	}
	shard := &ShardInfo{Index: 2, Count: 4, FromRank: 51, ToRank: 75}
	m := &Manifest{Offset: 100, Records: 3, Shard: shard}
	if err := m.Store(path); err != nil {
		t.Fatal(err)
	}
	got := LoadManifest(path)
	if got == nil || !got.Shard.Equal(shard) {
		t.Fatalf("shard did not round trip: %+v", got)
	}
	if !(*ShardInfo)(nil).Equal(nil) {
		t.Fatal("nil shards should be equal")
	}
	if shard.Equal(nil) || shard.Equal(&ShardInfo{Index: 1, Count: 4, FromRank: 51, ToRank: 75}) {
		t.Fatal("distinct shards reported equal")
	}

	for _, bad := range []*ShardInfo{
		{Index: 4, Count: 4, FromRank: 1, ToRank: 2},
		{Index: -1, Count: 4, FromRank: 1, ToRank: 2},
		{Index: 0, Count: 0, FromRank: 1, ToRank: 2},
		{Index: 0, Count: 1, FromRank: 0, ToRank: 2},
		{Index: 0, Count: 1, FromRank: 5, ToRank: 4},
	} {
		data, err := json.Marshal(&Manifest{Version: ManifestVersion, Journal: "j", Offset: 100, Records: 3, Shard: bad})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeManifest(data); err == nil {
			t.Errorf("invalid shard %+v decoded", bad)
		}
	}
}

func TestCanonicalBytes(t *testing.T) {
	for _, name := range []string{"j.jsonl", "j.jsonl.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), name)
			j, err := Create(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			var want []byte
			for i, rec := range []string{`{"a":1}`, `{"b":2}`, `{"c":3}`} {
				if err := j.Append([]byte(rec)); err != nil {
					t.Fatal(err)
				}
				want = AppendFrame(want, []byte(rec))
				// Checkpoint between records so the .gz journal holds
				// several gzip members.
				if i < 2 {
					if _, err := j.Sync(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := CanonicalBytes(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("canonical bytes differ:\n got %q\nwant %q", got, want)
			}
		})
	}
}
