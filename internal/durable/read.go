package durable

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// CountingReader counts raw bytes pulled from the underlying reader.
// The resume path threads one under the gzip layer so tests (and the
// recovery metrics) can assert that resuming after a checkpoint reads
// O(tail) bytes, not the whole journal.
type CountingReader struct {
	r io.Reader
	n int64
}

func (cr *CountingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// BytesRead returns the raw bytes read so far.
func (cr *CountingReader) BytesRead() int64 { return cr.n }

type tailReader struct {
	io.Reader
	f *os.File
}

func (t tailReader) Close() error { return t.f.Close() }

type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

// CanonicalBytes returns the journal's framed-record stream: the raw
// file bytes for a plain journal, the fully decompressed multistream
// for a .gz journal. Gzip member boundaries fall at checkpoint syncs,
// so two journals holding the same records can differ in compressed
// bytes while being the same journal; the canonical stream is the
// byte-identity the merge invariant is stated over.
func CanonicalBytes(path string) ([]byte, error) {
	if !Compressed(path) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("durable: reading %s: %w", path, err)
		}
		return data, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("durable: opening %s: %w", path, err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		if err == io.EOF { // empty journal
			return nil, nil
		}
		return nil, fmt.Errorf("durable: decompressing %s: %w", path, err)
	}
	zr.Multistream(true)
	data, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("durable: decompressing %s: %w", path, err)
	}
	return data, nil
}

// OpenTail opens a journal for reading at a committed checkpoint
// offset and returns a reader over the (decompressed) tail, plus the
// raw-byte counter beneath it. Committed offsets are gzip member
// boundaries, so a fresh multistream reader decodes the tail without
// touching the prefix. A torn gzip header in the tail yields a reader
// whose first Read fails, which ScanRecords absorbs as a truncation —
// never an open error.
func OpenTail(path string, offset int64) (io.ReadCloser, *CountingReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: opening tail of %s: %w", path, err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("durable: seeking %s to %d: %w", path, offset, err)
	}
	cr := &CountingReader{r: f}
	if !Compressed(path) {
		return tailReader{Reader: cr, f: f}, cr, nil
	}
	zr, err := gzip.NewReader(cr)
	if err != nil {
		if err == io.EOF {
			// Empty tail: the checkpoint is the end of the file.
			return tailReader{Reader: errReader{io.EOF}, f: f}, cr, nil
		}
		return tailReader{Reader: errReader{err}, f: f}, cr, nil
	}
	zr.Multistream(true)
	return tailReader{Reader: zr, f: f}, cr, nil
}
