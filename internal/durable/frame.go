package durable

import (
	"bufio"
	"bytes"
	"hash/crc32"
	"io"
	"strconv"
)

// framePrefix opens a record-frame header line: `#r <len> <crc32hex>`.
// JSON records never start with '#', so framed and legacy unframed
// JSONL coexist in one stream and stay greppable.
const framePrefix = "#r "

// maxFrameLen bounds a single record payload (64 MiB): a header
// announcing more is corruption, not data.
const maxFrameLen = 1 << 26

// castagnoli is the CRC-32C table framing uses (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PayloadCRC extends a running CRC-32C over one record payload; the
// manifest carries the accumulated value as the journal's content hash.
func PayloadCRC(crc uint32, payload []byte) uint32 {
	return crc32.Update(crc, castagnoli, payload)
}

// AppendFrame appends one framed record to buf: the header line, the
// payload, and a terminating newline. The payload must not contain a
// newline (JSONL records never do).
func AppendFrame(buf []byte, payload []byte) []byte {
	buf = append(buf, framePrefix...)
	buf = strconv.AppendInt(buf, int64(len(payload)), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, uint64(crc32.Checksum(payload, castagnoli)), 16)
	buf = append(buf, '\n')
	buf = append(buf, payload...)
	buf = append(buf, '\n')
	return buf
}

// parseFrameHeader parses a `#r <len> <crc32hex>` line (without the
// trailing newline).
func parseFrameHeader(line []byte) (length int, crc uint32, ok bool) {
	rest, found := bytes.CutPrefix(line, []byte(framePrefix))
	if !found {
		return 0, 0, false
	}
	lenPart, crcPart, found := bytes.Cut(rest, []byte{' '})
	if !found {
		return 0, 0, false
	}
	n, err := strconv.ParseInt(string(lenPart), 10, 64)
	if err != nil || n < 0 || n > maxFrameLen {
		return 0, 0, false
	}
	c, err := strconv.ParseUint(string(bytes.TrimSpace(crcPart)), 16, 32)
	if err != nil {
		return 0, 0, false
	}
	return int(n), uint32(c), true
}

// ScanStats reports what a salvaging scan recovered and where (and why)
// it stopped.
type ScanStats struct {
	// Records is the number of valid records delivered.
	Records int64
	// PayloadCRC is the running CRC-32C over every delivered payload.
	PayloadCRC uint32
	// Bytes is how many (decompressed) bytes the valid prefix spans.
	Bytes int64
	// Truncated reports that the stream ended in a torn or corrupt tail
	// rather than a clean EOF; TruncatedBytes counts the (decompressed)
	// bytes discarded after the last valid record, and Reason names the
	// defect: "torn-header", "torn-payload", "crc-mismatch",
	// "torn-line", "read-error".
	Truncated      bool
	TruncatedBytes int64
	Reason         string
}

// ScanRecords streams the valid prefix of a (possibly crashed) record
// stream into fn. Framed records are length- and CRC-verified; legacy
// unframed lines pass through as-is, except a final line without a
// newline, which a line-at-a-time writer can only leave behind by
// dying mid-write. Any defect — a torn header, a short payload, a CRC
// mismatch, a decompression error from a torn gzip member — ends the
// scan *without error*: the stats report the truncation and fn has
// received every record before it. Only fn's own errors propagate.
func ScanRecords(r io.Reader, fn func(payload []byte) error) (ScanStats, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var st ScanStats
	var consumed int64 // bytes consumed including the tail being read
	truncate := func(reason string, tail int64) (ScanStats, error) {
		st.Truncated = true
		st.Reason = reason
		st.TruncatedBytes = tail + drain(br)
		return st, nil
	}
	deliver := func(payload []byte) error {
		if err := fn(payload); err != nil {
			return err
		}
		st.Records++
		st.PayloadCRC = PayloadCRC(st.PayloadCRC, payload)
		st.Bytes = consumed
		return nil
	}
	for {
		line, err := br.ReadBytes('\n')
		consumed += int64(len(line))
		if err == io.EOF {
			if len(line) == 0 {
				return st, nil
			}
			// A final line without its newline is a torn write.
			return truncate("torn-line", int64(len(line)))
		}
		if err != nil {
			return truncate("read-error", int64(len(line)))
		}
		line = line[:len(line)-1]
		if len(line) == 0 {
			st.Bytes = consumed
			continue
		}
		if !bytes.HasPrefix(line, []byte(framePrefix)) {
			if err := deliver(line); err != nil {
				return st, err
			}
			continue
		}
		n, wantCRC, ok := parseFrameHeader(line)
		if !ok {
			return truncate("torn-header", int64(len(line))+1)
		}
		payload := make([]byte, n+1)
		read, err := io.ReadFull(br, payload)
		consumed += int64(read)
		if err != nil {
			return truncate("torn-payload", int64(len(line))+1+int64(read))
		}
		if payload[n] != '\n' {
			return truncate("torn-payload", int64(len(line))+1+int64(read))
		}
		payload = payload[:n]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return truncate("crc-mismatch", int64(len(line))+1+int64(n)+1)
		}
		if err := deliver(payload); err != nil {
			return st, err
		}
	}
}

// drain counts whatever readable bytes remain after a truncation point,
// so TruncatedBytes reflects the whole discarded tail. Read errors
// (torn gzip members) simply end the count.
func drain(br *bufio.Reader) int64 {
	var n int64
	buf := make([]byte, 1<<14)
	for {
		m, err := br.Read(buf)
		n += int64(m)
		if err != nil {
			return n
		}
	}
}
