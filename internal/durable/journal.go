package durable

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Options tune a Journal. The zero value is the production
// configuration; the hooks exist for internal/chaos to inject
// deterministic crashes and storage faults.
type Options struct {
	// FS, if set, replaces the production filesystem for the journal
	// file and its sidecars (chaos.FaultFS injects ENOSPC/EIO/short
	// writes here). Nil means the real OS.
	FS FS
	// Retry bounds transient-error retries on the artifact writes that
	// ride along with the journal (manifest, frame index, snapshots).
	// The zero value means a single attempt.
	Retry RetryPolicy
	// Wrap, if set, wraps the raw file writer (below the buffer and the
	// gzip member). chaos uses it to simulate torn writes: a wrapper
	// that writes a partial record and then fails persistently.
	Wrap func(io.Writer) io.Writer
	// BeforeAppend, if set, runs before record recordIndex (0-based) is
	// framed and written. Returning an error aborts the append — the
	// chaos crashpoint injector kills the "process" here.
	BeforeAppend func(recordIndex int64) error
}

// Checkpoint identifies a committed (fsync'd) state of a journal: the
// byte offset in the file up to which every record is durable, how many
// records that prefix holds, and the running CRC-32C over their
// payloads.
type Checkpoint struct {
	Offset     int64
	Records    int64
	PayloadCRC uint32
}

// Journal is an append-only framed record file with checkpoint
// discipline. Records buffer in user space between checkpoints; Sync
// closes the current gzip member (for .gz paths), flushes, fsyncs and
// returns the new committed Checkpoint. A crash between checkpoints
// loses at most the records since the last Sync, and the torn tail
// (including a half-written gzip member) is recoverable by ScanRecords
// from the committed offset.
type Journal struct {
	path     string
	compress bool
	fsys     FS
	f        File
	count    *countingWriter
	bw       *bufio.Writer
	zw       *gzip.Writer // open gzip member, nil between members
	buf      []byte
	opts     Options

	records   int64
	crc       uint32
	committed Checkpoint
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Compressed reports whether a journal path uses gzip framing, by the
// same suffix rule the dataset readers apply.
func Compressed(path string) bool { return strings.HasSuffix(path, ".gz") }

// Create creates (or truncates) a journal at path. A ".gz" suffix
// selects gzip member framing.
func Create(path string, opts Options) (*Journal, error) {
	f, err := fsOrOS(opts.FS).Create(path)
	if err != nil {
		return nil, fmt.Errorf("durable: creating journal %s: %w", path, err)
	}
	return newJournal(path, f, Checkpoint{}, opts), nil
}

// OpenAt reopens an existing journal for appending at a committed
// checkpoint. The file is truncated to the checkpoint offset — anything
// after it is an uncommitted tail the caller has already salvaged — and
// writing resumes in a fresh gzip member, which multistream readers
// decode transparently.
func OpenAt(path string, at Checkpoint, opts Options) (*Journal, error) {
	f, err := fsOrOS(opts.FS).OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: opening journal %s: %w", path, err)
	}
	if err := f.Truncate(at.Offset); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: truncating %s to %d: %w", path, at.Offset, err)
	}
	if _, err := f.Seek(at.Offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: seeking %s: %w", path, err)
	}
	return newJournal(path, f, at, opts), nil
}

func newJournal(path string, f File, at Checkpoint, opts Options) *Journal {
	var raw io.Writer = f
	if opts.Wrap != nil {
		raw = opts.Wrap(raw)
	}
	count := &countingWriter{w: raw, n: at.Offset}
	return &Journal{
		path:      path,
		compress:  Compressed(path),
		fsys:      fsOrOS(opts.FS),
		f:         f,
		count:     count,
		bw:        bufio.NewWriterSize(count, 1<<16),
		opts:      opts,
		records:   at.Records,
		crc:       at.PayloadCRC,
		committed: at,
	}
}

// Append frames and buffers one record payload. The record is durable
// only after the next Sync.
func (j *Journal) Append(payload []byte) error {
	if j.opts.BeforeAppend != nil {
		if err := j.opts.BeforeAppend(j.records); err != nil {
			return err
		}
	}
	var w io.Writer = j.bw
	if j.compress {
		if j.zw == nil {
			j.zw = gzip.NewWriter(j.bw)
		}
		w = j.zw
	}
	j.buf = AppendFrame(j.buf[:0], payload)
	if _, err := w.Write(j.buf); err != nil {
		return fmt.Errorf("durable: appending to %s: %w", j.path, err)
	}
	j.records++
	j.crc = PayloadCRC(j.crc, payload)
	return nil
}

// Records returns the total record count including buffered,
// not-yet-committed appends.
func (j *Journal) Records() int64 { return j.records }

// Committed returns the last committed checkpoint.
func (j *Journal) Committed() Checkpoint { return j.committed }

// Sync commits everything appended so far: it closes the open gzip
// member, flushes the buffer and fsyncs the file, then returns the new
// checkpoint. Sync with nothing new appended is a no-op returning the
// current checkpoint (no empty gzip members accrete). The next Append
// opens a fresh member, so the committed offset is always a gzip member
// boundary — a seekable resume point.
func (j *Journal) Sync() (Checkpoint, error) {
	if j.records == j.committed.Records {
		return j.committed, nil
	}
	if j.zw != nil {
		if err := j.zw.Close(); err != nil {
			return j.committed, fmt.Errorf("durable: closing gzip member of %s: %w", j.path, err)
		}
		j.zw = nil
	}
	if err := j.bw.Flush(); err != nil {
		return j.committed, fmt.Errorf("durable: flushing %s: %w", j.path, err)
	}
	// A transient fsync failure is retryable — the user-space buffer
	// already flushed, so re-issuing the fsync is safe. Stream errors
	// (flush above) are not: bufio latches them, and the caller's drain
	// path owns recovery from the last committed checkpoint.
	if err := j.opts.Retry.Do("journal-fsync", j.f.Sync); err != nil {
		return j.committed, fmt.Errorf("durable: syncing %s: %w", j.path, err)
	}
	j.committed = Checkpoint{Offset: j.count.n, Records: j.records, PayloadCRC: j.crc}
	return j.committed, nil
}

// Abort closes the journal file without committing buffered records —
// the kill -9 path of the crash harness. The on-disk state stays
// exactly what the last Sync (plus any buffer spills the OS already
// accepted) left behind.
func (j *Journal) Abort() error { return j.f.Close() }

// Close commits any buffered records and closes the file.
func (j *Journal) Close() error {
	_, syncErr := j.Sync()
	closeErr := j.f.Close()
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return fmt.Errorf("durable: closing %s: %w", j.path, closeErr)
	}
	return j.fsys.SyncDir(filepath.Dir(j.path))
}
