package durable

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FrameIndexVersion is the current sparse-frame-index schema version.
const FrameIndexVersion = 1

// FrameEntry marks one committed checkpoint boundary of a journal. A
// committed offset is always a gzip member boundary (Journal.Sync closes
// the member), so a reader can seek straight to Offset and start a fresh
// multistream gzip reader there without decompressing the prefix.
type FrameEntry struct {
	// Offset is the committed byte offset of the boundary.
	Offset int64 `json:"offset"`
	// Records counts the records committed at or before Offset.
	Records int64 `json:"records"`
	// Rank is the completed-site watermark at the boundary: every
	// record past Offset belongs to a site of rank > Rank.
	Rank int `json:"rank"`
}

// FrameIndex is the sparse rank/record → byte-offset index kept beside a
// journal (`<journal>.fidx`): one entry per checkpoint, ascending. Like
// the manifest it is an accelerator, never an authority — a missing,
// stale or corrupt index degrades readers to a full scan from byte 0,
// and every seek target it hands out is re-verified by the framed-record
// CRCs on the way through.
type FrameIndex struct {
	Version int `json:"version"`
	// Journal is the base name of the journal the index describes.
	Journal string `json:"journal"`
	// Entries holds the checkpoint boundaries in strictly ascending
	// Offset order, with non-decreasing Records and Rank.
	Entries []FrameEntry `json:"entries,omitempty"`
}

// FrameIndexPath derives the sparse-frame-index path for a journal.
func FrameIndexPath(journalPath string) string { return journalPath + ".fidx" }

// Append adds a checkpoint boundary, keeping the entry list strictly
// monotonic: a boundary that does not advance the committed offset
// (a checkpoint that flushed no new records) is dropped.
func (fi *FrameIndex) Append(e FrameEntry) {
	if e.Offset <= 0 || e.Records < 0 || e.Rank < 0 {
		return
	}
	if n := len(fi.Entries); n > 0 {
		last := fi.Entries[n-1]
		if e.Offset <= last.Offset || e.Records < last.Records || e.Rank < last.Rank {
			return
		}
	}
	fi.Entries = append(fi.Entries, e)
}

// Truncate drops every entry past the given committed offset — what a
// resume does after rewinding the journal to its manifest checkpoint.
func (fi *FrameIndex) Truncate(offset int64) {
	n := 0
	for _, e := range fi.Entries {
		if e.Offset > offset {
			break
		}
		n++
	}
	fi.Entries = fi.Entries[:n]
}

// SeekRecords returns the latest boundary at or before the given record
// count — the furthest point a reader interested in records ≥ n can
// seek to. The zero entry (offset 0) means "start of file".
func (fi *FrameIndex) SeekRecords(records int64) FrameEntry {
	var best FrameEntry
	for _, e := range fi.Entries {
		if e.Records > records {
			break
		}
		best = e
	}
	return best
}

// SeekRank returns the latest boundary strictly below the given rank:
// every record past it has rank ≥ the boundary's watermark + 1, so a
// reader after ranks ≥ rank misses nothing by seeking there.
func (fi *FrameIndex) SeekRank(rank int) FrameEntry {
	var best FrameEntry
	for _, e := range fi.Entries {
		if e.Rank >= rank {
			break
		}
		best = e
	}
	return best
}

// Store atomically writes the frame index for the given journal path.
func (fi *FrameIndex) Store(journalPath string) error {
	return fi.StoreFS(nil, journalPath)
}

// StoreFS is Store through an explicit filesystem seam.
func (fi *FrameIndex) StoreFS(fsys FS, journalPath string) error {
	fi.Version = FrameIndexVersion
	fi.Journal = filepath.Base(journalPath)
	return WriteFileAtomicFS(fsys, FrameIndexPath(journalPath), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(fi)
	})
}

// DecodeFrameIndex strictly decodes and validates frame-index bytes.
func DecodeFrameIndex(data []byte) (*FrameIndex, error) {
	var fi FrameIndex
	if err := json.Unmarshal(data, &fi); err != nil {
		return nil, fmt.Errorf("durable: frame index: %w", err)
	}
	if fi.Version != FrameIndexVersion {
		return nil, fmt.Errorf("durable: frame index: unsupported version %d", fi.Version)
	}
	var prev FrameEntry
	for i, e := range fi.Entries {
		if e.Offset <= prev.Offset || e.Records < prev.Records || e.Rank < prev.Rank {
			return nil, fmt.Errorf("durable: frame index: entry %d not monotonic", i)
		}
		if e.Records == 0 {
			return nil, fmt.Errorf("durable: frame index: entry %d commits no records", i)
		}
		prev = e
	}
	return &fi, nil
}

// LoadFrameIndex reads the frame index for a journal path. Like
// LoadManifest it returns nil on any problem — absent, unreadable,
// invalid, naming a different journal, or pointing past the journal's
// current size — and the caller falls back to scanning from byte 0.
func LoadFrameIndex(journalPath string) *FrameIndex {
	return LoadFrameIndexFS(nil, journalPath)
}

// LoadFrameIndexFS is LoadFrameIndex through an explicit filesystem seam.
func LoadFrameIndexFS(fsys FS, journalPath string) *FrameIndex {
	data, err := fsOrOS(fsys).ReadFile(FrameIndexPath(journalPath))
	if err != nil {
		return nil
	}
	fi, err := DecodeFrameIndex(data)
	if err != nil {
		return nil
	}
	if fi.Journal != filepath.Base(journalPath) {
		return nil
	}
	if n := len(fi.Entries); n > 0 {
		if st, err := os.Stat(journalPath); err != nil || st.Size() < fi.Entries[n-1].Offset {
			return nil
		}
	}
	return fi
}

// RemoveFrameIndex deletes a journal's frame index if present.
func RemoveFrameIndex(journalPath string) {
	os.Remove(FrameIndexPath(journalPath))
}

// RemoveFrameIndexFS is RemoveFrameIndex through an explicit filesystem seam.
func RemoveFrameIndexFS(fsys FS, journalPath string) {
	fsOrOS(fsys).Remove(FrameIndexPath(journalPath))
}
