package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"syscall"
	"time"

	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/vclock"
)

// File is the subset of *os.File the artifact writers need. The seam
// exists so internal/chaos can interpose deterministic storage faults
// (ENOSPC, EIO, short writes, failed fsyncs) under every artifact
// write without touching the writers themselves.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Name() string
}

// FS is the filesystem seam every artifact path goes through. The
// production implementation is OS; chaos.FaultFS wraps any FS with
// seeded per-path-class fault injection.
type FS interface {
	// Create creates (or truncates) path for writing.
	Create(path string) (File, error)
	// OpenFile opens path with the given flags (journal reopen path).
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a temp file in dir (WriteFileAtomic staging).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadFile reads the whole file.
	ReadFile(path string) ([]byte, error)
	// SyncDir fsyncs a directory, making a just-renamed entry durable.
	SyncDir(dir string) error
}

// OS is the production filesystem: thin wrappers over the os package,
// with the directory-sync benign-error policy applied.
var OS FS = osFS{}

// fsOrOS resolves a possibly-nil FS option to the production default,
// so callers can leave Options.FS zero.
func fsOrOS(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

type osFS struct{}

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// SyncDir fsyncs a directory, making a just-renamed entry durable.
// Only benign refusals are tolerated — filesystems that cannot fsync a
// directory handle report EPERM/EACCES/EINVAL/ENOTSUP, and the rename
// itself is still atomic there. Real I/O errors (EIO, ENOSPC) mean the
// directory entry may not be durable and must reach the caller.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !benignSyncDirError(err) {
		return fmt.Errorf("durable: syncing dir %s: %w", dir, err)
	}
	return nil
}

// benignSyncDirError reports whether a directory-fsync failure is a
// filesystem refusing the operation (harmless: the rename is atomic
// regardless) rather than an I/O failure losing the entry.
func benignSyncDirError(err error) bool {
	return errors.Is(err, os.ErrPermission) ||
		errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.ENOTTY)
}

// transienter is implemented by injected (and, in principle, real)
// storage errors that a bounded retry may clear: EIO blips, short
// writes, failed fsyncs. ENOSPC is never transient.
type transienter interface{ Transient() bool }

// IsTransient reports whether an error chain marks itself retryable.
// Unknown errors are not transient: a bare os error gets no retries,
// matching the pre-seam behaviour.
func IsTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// IsDiskFull reports ENOSPC anywhere in the chain — the persistent
// condition the write path fails fast on (clean drain, checkpoint
// preserved) instead of retrying.
func IsDiskFull(err error) bool { return errors.Is(err, syscall.ENOSPC) }

// RetryPolicy bounds retries of artifact write operations. Backoff is
// charged to the virtual clock — the storage layer never sleeps — so
// retried campaigns stay deterministic and fast. The zero value
// disables retries (single attempt).
type RetryPolicy struct {
	// Attempts is the total number of tries per operation (min 1).
	Attempts int
	// Backoff is the virtual delay before the first retry; it doubles
	// on each subsequent retry.
	Backoff time.Duration
	// Clock, if set, is advanced by each backoff.
	Clock *vclock.Clock
	// Metrics, if set, counts retries as storage_retry_total{op}.
	Metrics *obs.Registry
}

// Do runs fn up to p.Attempts times. Only transient errors (see
// IsTransient) are retried; disk-full and unknown errors fail fast.
func (p RetryPolicy) Do(op string, fn func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if p.Clock != nil && p.Backoff > 0 {
				p.Clock.Advance(p.Backoff << (attempt - 1))
			}
			p.Metrics.Add("storage_retry_total", 1, "op", op)
		}
		err = fn()
		if err == nil {
			return nil
		}
		if !IsTransient(err) || IsDiskFull(err) {
			return err
		}
	}
	return fmt.Errorf("durable: %s: %d attempts exhausted: %w", op, attempts, err)
}
