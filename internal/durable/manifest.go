package durable

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ManifestVersion is the current checkpoint-manifest schema version.
const ManifestVersion = 1

// Manifest is the checkpoint companion of a journal: an atomically
// replaced JSON file recording the last committed state. Resume seeks
// the journal to Offset and replays only the tail, O(checkpoint)
// instead of O(file). The manifest deliberately carries no wall-clock
// timestamps — it participates in the repo's byte-identical-output
// invariant.
type Manifest struct {
	Version int `json:"version"`
	// Journal is the base name of the journal file the manifest
	// describes (a consistency check, not a path: the pair moves
	// together).
	Journal string `json:"journal"`
	// Offset/Records/PayloadCRC mirror the committed Checkpoint.
	Offset     int64  `json:"offset"`
	Records    int64  `json:"records"`
	PayloadCRC uint32 `json:"payload_crc"`
	// WatermarkRank is the highest rank R such that every site with
	// rank <= R is fully recorded in the committed prefix; 0 when no
	// site is complete yet. WatermarkSite names that rank's site.
	WatermarkRank int    `json:"watermark_rank"`
	WatermarkSite string `json:"watermark_site,omitempty"`
	// Sites counts completed sites in the committed prefix.
	Sites int `json:"sites"`
	// Shard, when present, marks the journal as one shard of a
	// distributed campaign and records its position. A single-process
	// journal omits it; resume refuses to continue a shard journal with
	// mismatched shard geometry.
	Shard *ShardInfo `json:"shard,omitempty"`
}

// ShardInfo identifies one contiguous-rank shard of a sharded campaign.
type ShardInfo struct {
	// Index is the 0-based shard number; Count is the total shards.
	Index int `json:"index"`
	Count int `json:"count"`
	// FromRank/ToRank bound the shard's global site ranks, inclusive.
	FromRank int `json:"from_rank"`
	ToRank   int `json:"to_rank"`
}

// Equal reports whether two shard descriptors match exactly.
func (s *ShardInfo) Equal(o *ShardInfo) bool {
	if s == nil || o == nil {
		return s == o
	}
	return *s == *o
}

// ManifestPath derives the checkpoint-manifest path for a journal.
func ManifestPath(journalPath string) string { return journalPath + ".ckpt" }

// Checkpoint extracts the journal checkpoint a manifest commits to.
func (m *Manifest) Checkpoint() Checkpoint {
	return Checkpoint{Offset: m.Offset, Records: m.Records, PayloadCRC: m.PayloadCRC}
}

// Store atomically writes the manifest for the given journal path.
func (m *Manifest) Store(journalPath string) error {
	return m.StoreFS(nil, journalPath)
}

// StoreFS is Store through an explicit filesystem seam.
func (m *Manifest) StoreFS(fsys FS, journalPath string) error {
	m.Version = ManifestVersion
	m.Journal = filepath.Base(journalPath)
	return WriteFileAtomicFS(fsys, ManifestPath(journalPath), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(m)
	})
}

// DecodeManifest strictly decodes and validates manifest bytes.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("durable: manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("durable: manifest: unsupported version %d", m.Version)
	}
	if m.Offset < 0 || m.Records < 0 || m.Sites < 0 || m.WatermarkRank < 0 {
		return nil, fmt.Errorf("durable: manifest: negative field")
	}
	if m.Records == 0 && m.Offset != 0 {
		return nil, fmt.Errorf("durable: manifest: offset %d with zero records", m.Offset)
	}
	if m.Records > 0 && m.Offset == 0 {
		return nil, fmt.Errorf("durable: manifest: %d records at offset 0", m.Records)
	}
	if s := m.Shard; s != nil {
		if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
			return nil, fmt.Errorf("durable: manifest: shard %d/%d out of range", s.Index, s.Count)
		}
		if s.FromRank < 1 || s.ToRank < s.FromRank {
			return nil, fmt.Errorf("durable: manifest: shard ranks [%d,%d] invalid", s.FromRank, s.ToRank)
		}
	}
	return &m, nil
}

// LoadManifest reads the manifest for a journal path. A missing,
// unreadable or invalid manifest returns nil: the manifest is an
// accelerator, and resume must never be blocked by its absence — the
// caller falls back to a full salvaging scan. A manifest whose offset
// exceeds the journal's size (a journal replaced out from under it) is
// likewise treated as absent.
func LoadManifest(journalPath string) *Manifest {
	return LoadManifestFS(nil, journalPath)
}

// LoadManifestFS is LoadManifest through an explicit filesystem seam.
func LoadManifestFS(fsys FS, journalPath string) *Manifest {
	data, err := fsOrOS(fsys).ReadFile(ManifestPath(journalPath))
	if err != nil {
		return nil
	}
	m, err := DecodeManifest(data)
	if err != nil {
		return nil
	}
	if m.Journal != filepath.Base(journalPath) {
		return nil
	}
	if fi, err := os.Stat(journalPath); err != nil || fi.Size() < m.Offset {
		return nil
	}
	return m
}

// RemoveManifest deletes a journal's manifest if present.
func RemoveManifest(journalPath string) {
	os.Remove(ManifestPath(journalPath))
}

// RemoveManifestFS is RemoveManifest through an explicit filesystem seam.
func RemoveManifestFS(fsys FS, journalPath string) {
	fsOrOS(fsys).Remove(ManifestPath(journalPath))
}
