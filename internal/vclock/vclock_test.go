package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestClockBasics(t *testing.T) {
	start := time.Date(2024, 3, 30, 0, 0, 0, 0, time.UTC)
	c := New(start)
	if !c.Now().Equal(start) {
		t.Errorf("Now = %v", c.Now())
	}
	got := c.Advance(90 * time.Second)
	if !got.Equal(start.Add(90 * time.Second)) {
		t.Errorf("Advance returned %v", got)
	}
	if !c.Now().Equal(start.Add(90 * time.Second)) {
		t.Errorf("Now after advance = %v", c.Now())
	}
	c.Set(start)
	if !c.Now().Equal(start) {
		t.Error("Set did not jump")
	}
}

func TestClockConcurrent(t *testing.T) {
	c := New(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := time.Unix(0, 0).Add(16 * 1000 * time.Millisecond)
	if !c.Now().Equal(want) {
		t.Errorf("Now = %v, want %v", c.Now(), want)
	}
}
