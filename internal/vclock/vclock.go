// Package vclock provides a minimal virtual clock shared by the
// synthetic web server, the emulated browser and the crawler, so a whole
// measurement campaign is reproducible: A/B-test slots and call
// timestamps derive from virtual time, not the wall clock.
package vclock

import (
	"context"
	"sync/atomic"
	"time"
)

// Clock is a monotonic virtual clock, safe for concurrent use.
type Clock struct {
	// nanos holds the current virtual time as Unix nanoseconds.
	nanos atomic.Int64
}

// New returns a clock starting at the given time.
func New(start time.Time) *Clock {
	c := &Clock{}
	c.nanos.Store(start.UnixNano())
	return c
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	return time.Unix(0, c.nanos.Load()).UTC()
}

// Advance moves the clock forward by d and returns the new time.
func (c *Clock) Advance(d time.Duration) time.Time {
	return time.Unix(0, c.nanos.Add(int64(d))).UTC()
}

// Set jumps the clock to t.
func (c *Clock) Set(t time.Time) {
	c.nanos.Store(t.UnixNano())
}

// Since reports the virtual time elapsed from t to the clock's current
// reading.
func (c *Clock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Poll invokes fn every interval of *wall-clock* time until the context
// is cancelled or fn returns false. It exists so interactive consumers
// (the topics-monitor tail loop) have one sanctioned place to wait on
// real time: the vclock lint analyzer bans time tickers everywhere
// outside this package, keeping measurement code on virtual time while
// UI refresh — which users experience in real time by definition —
// lives here.
func Poll(ctx context.Context, every time.Duration, fn func() bool) {
	if every <= 0 {
		every = time.Second
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		if !fn() {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}
