// Package vclock provides a minimal virtual clock shared by the
// synthetic web server, the emulated browser and the crawler, so a whole
// measurement campaign is reproducible: A/B-test slots and call
// timestamps derive from virtual time, not the wall clock.
package vclock

import (
	"sync/atomic"
	"time"
)

// Clock is a monotonic virtual clock, safe for concurrent use.
type Clock struct {
	// nanos holds the current virtual time as Unix nanoseconds.
	nanos atomic.Int64
}

// New returns a clock starting at the given time.
func New(start time.Time) *Clock {
	c := &Clock{}
	c.nanos.Store(start.UnixNano())
	return c
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	return time.Unix(0, c.nanos.Load()).UTC()
}

// Advance moves the clock forward by d and returns the new time.
func (c *Clock) Advance(d time.Duration) time.Time {
	return time.Unix(0, c.nanos.Add(int64(d))).UTC()
}

// Set jumps the clock to t.
func (c *Clock) Set(t time.Time) {
	c.nanos.Store(t.UnixNano())
}
