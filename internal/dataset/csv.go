package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// callsCSVHeader is the column layout of the flattened calls export,
// one row per Topics API call — the shape the paper's published dataset
// uses (site, CP, call type, timestamp).
var callsCSVHeader = []string{
	"site", "rank", "phase", "caller", "type",
	"context_origin", "timestamp", "gate_allowed", "gate_reason", "topics_returned",
}

// WriteCallsCSV exports every Topics API call of the dataset as CSV.
func (d *Dataset) WriteCallsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(callsCSVHeader); err != nil {
		return fmt.Errorf("dataset: writing csv header: %w", err)
	}
	for i := range d.Visits {
		v := &d.Visits[i]
		for _, c := range v.Calls {
			rec := []string{
				v.Site,
				strconv.Itoa(v.Rank),
				string(v.Phase),
				c.Caller,
				string(c.Type),
				c.ContextOrigin,
				c.Timestamp.UTC().Format(time.RFC3339),
				strconv.FormatBool(c.GateAllowed),
				c.GateReason,
				strconv.Itoa(c.TopicsReturned),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("dataset: writing csv row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flushing csv: %w", err)
	}
	return nil
}

// ReadCallsCSV parses a calls CSV (as produced by WriteCallsCSV) into
// flat call records annotated with their visit context.
func ReadCallsCSV(r io.Reader) ([]CallRow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(callsCSVHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv header: %w", err)
	}
	for i, h := range callsCSVHeader {
		if header[i] != h {
			return nil, fmt.Errorf("dataset: csv header mismatch at %d: %q", i, header[i])
		}
	}
	var out []CallRow
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading csv row: %w", err)
		}
		rank, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: bad rank %q: %w", rec[1], err)
		}
		ts, err := time.Parse(time.RFC3339, rec[6])
		if err != nil {
			return nil, fmt.Errorf("dataset: bad timestamp %q: %w", rec[6], err)
		}
		allowed, err := strconv.ParseBool(rec[7])
		if err != nil {
			return nil, fmt.Errorf("dataset: bad gate_allowed %q: %w", rec[7], err)
		}
		n, err := strconv.Atoi(rec[9])
		if err != nil {
			return nil, fmt.Errorf("dataset: bad topics_returned %q: %w", rec[9], err)
		}
		out = append(out, CallRow{
			Site: rec[0], Rank: rank, Phase: Phase(rec[2]),
			Call: TopicsCall{
				Caller: rec[3], Site: rec[0], Type: CallType(rec[4]),
				ContextOrigin: rec[5], Timestamp: ts,
				GateAllowed: allowed, GateReason: rec[8], TopicsReturned: n,
			},
		})
	}
}

// CallRow is one flattened Topics API call with visit context.
type CallRow struct {
	Site  string
	Rank  int
	Phase Phase
	Call  TopicsCall
}
