package dataset

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func sampleRecords() []AttestationRecord {
	return []AttestationRecord{
		{
			Domain: "criteo.com", Present: true, Valid: true, AttestsTopics: true,
			IssuedAt:          time.Date(2023, 7, 12, 0, 0, 0, 0, time.UTC),
			HasEnrollmentSite: true,
		},
		{Domain: "missing.example", Error: "status 404"},
	}
}

func TestAttestationsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attest.jsonl")
	recs := sampleRecords()
	if err := SaveAttestations(path, recs); err != nil {
		t.Fatalf("SaveAttestations: %v", err)
	}
	got, err := LoadAttestations(path)
	if err != nil {
		t.Fatalf("LoadAttestations: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestAttestationIndexAndAttested(t *testing.T) {
	recs := sampleRecords()
	idx := AttestationIndex(recs)
	if len(idx) != 2 {
		t.Fatalf("index size %d", len(idx))
	}
	if !idx["criteo.com"].Attested() {
		t.Error("criteo.com should be attested")
	}
	if idx["missing.example"].Attested() {
		t.Error("missing.example should not be attested")
	}
	// Attested requires all three bits.
	half := AttestationRecord{Present: true, Valid: true}
	if half.Attested() {
		t.Error("file without topics attestation counted")
	}
}

func TestLoadAttestationsErrors(t *testing.T) {
	if _, err := LoadAttestations(filepath.Join(t.TempDir(), "none.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	os.WriteFile(bad, []byte("{not json}\n"), 0o644)
	if _, err := LoadAttestations(bad); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCompletedSites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.jsonl")

	// Missing file means a fresh start.
	got, err := CompletedSites(path)
	if err != nil || len(got) != 0 {
		t.Fatalf("missing file: %v, %v", got, err)
	}

	d := &Dataset{}
	d.Append(Visit{Site: "a.com", Phase: BeforeAccept, Success: true})
	d.Append(Visit{Site: "a.com", Phase: AfterAccept, Success: true})
	d.Append(Visit{Site: "b.com", Phase: BeforeAccept, Success: false})
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err = CompletedSites(path)
	if err != nil {
		t.Fatal(err)
	}
	// Both sites have a Before-Accept record (even the failed one: it
	// was attempted and must not be retried on resume).
	if !got["a.com"] || !got["b.com"] || len(got) != 2 {
		t.Errorf("CompletedSites = %v", got)
	}
}
