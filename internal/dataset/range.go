package dataset

import (
	"encoding/json"
	"errors"
	"fmt"

	"github.com/netmeasure/topicscope/internal/durable"
)

// errStopRange stops a range scan early once the requested window has
// been delivered; it never escapes this package.
var errStopRange = errors.New("dataset: stop range scan")

// RangeStats reports how a range read located its window — the
// O(seek + window) guarantee, asserted by tests.
type RangeStats struct {
	// Indexed reports whether a sparse frame index supplied the seek
	// target; false means the read degraded to a scan from byte 0.
	Indexed bool
	// SeekOffset is the committed byte offset the read started at.
	SeekOffset int64
	// Skipped counts records scanned before the window opened (records
	// between the seek boundary and the window start).
	Skipped int64
	// Records counts the records delivered.
	Records int64
	// BytesRead is the raw (compressed) bytes read off disk.
	BytesRead int64
	// Truncated reports that the scan ended in a torn tail.
	Truncated bool
}

// ReadRecordRange streams the journal records with index in
// [from, to) — counting from 0 in append order — into fn. A negative
// `to` means "through the end of the valid stream". The sparse frame
// index seeks to the latest checkpoint boundary at or before `from`
// (committed boundaries are gzip member boundaries, so decompression
// starts there); a missing or unusable index degrades to a full scan
// from byte 0. Records are CRC-verified on the way through either way.
func ReadRecordRange(path string, from, to int64, fn func(*Visit) error) (*RangeStats, error) {
	if from < 0 {
		from = 0
	}
	st := &RangeStats{}
	var entry durable.FrameEntry
	if fi := durable.LoadFrameIndex(path); fi != nil {
		entry = fi.SeekRecords(from)
		st.Indexed = entry.Offset > 0
	}
	seen := entry.Records
	st.SeekOffset = entry.Offset
	return readRange(path, entry.Offset, st, func(payload []byte) error {
		i := seen
		seen++
		if i < from {
			st.Skipped++
			return nil
		}
		if to >= 0 && i >= to {
			return errStopRange
		}
		return deliverVisit(payload, st, fn)
	})
}

// ReadRankRange streams every record whose site rank is >= fromRank into
// fn. The frame index's completed-site watermarks bound the seek: every
// record past a boundary belongs to a site ranked above its watermark,
// so seeking to the latest boundary strictly below fromRank skips the
// bulk of a big campaign without missing a record.
func ReadRankRange(path string, fromRank int, fn func(*Visit) error) (*RangeStats, error) {
	st := &RangeStats{}
	var entry durable.FrameEntry
	if fi := durable.LoadFrameIndex(path); fi != nil {
		entry = fi.SeekRank(fromRank)
		st.Indexed = entry.Offset > 0
	}
	st.SeekOffset = entry.Offset
	return readRange(path, entry.Offset, st, func(payload []byte) error {
		var v Visit
		if err := json.Unmarshal(payload, &v); err != nil {
			return fmt.Errorf("dataset: decoding record: %w", err)
		}
		if v.Rank < fromRank {
			st.Skipped++
			return nil
		}
		st.Records++
		return fn(&v)
	})
}

func deliverVisit(payload []byte, st *RangeStats, fn func(*Visit) error) error {
	var v Visit
	if err := json.Unmarshal(payload, &v); err != nil {
		return fmt.Errorf("dataset: decoding record: %w", err)
	}
	st.Records++
	return fn(&v)
}

func readRange(path string, offset int64, st *RangeStats, fn func([]byte) error) (*RangeStats, error) {
	rc, cr, err := durable.OpenTail(path, offset)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	scan, err := durable.ScanRecords(rc, fn)
	st.BytesRead = cr.BytesRead()
	if err != nil && !errors.Is(err, errStopRange) {
		return nil, err
	}
	st.Truncated = scan.Truncated
	return st, nil
}
