package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleVisit(site string, phase Phase, calls ...TopicsCall) Visit {
	return Visit{
		Site:           site,
		Rank:           42,
		Phase:          phase,
		Success:        true,
		BannerDetected: true,
		BannerLanguage: "en",
		Accepted:       phase == AfterAccept,
		CMP:            "OneTrust",
		Resources: []Resource{
			{URL: "https://" + site + "/", Host: site, ThirdParty: false},
			{URL: "https://cdn.adsrv.net/tag.js", Host: "cdn.adsrv.net", ThirdParty: true},
			{URL: "https://cdn.adsrv.net/px.gif", Host: "cdn.adsrv.net", ThirdParty: true},
		},
		Calls:     calls,
		FetchedAt: time.Date(2024, 3, 30, 12, 0, 0, 0, time.UTC),
	}
}

func sampleCall(caller string) TopicsCall {
	return TopicsCall{
		Caller:         caller,
		Site:           "example.com",
		Type:           CallJavaScript,
		ContextOrigin:  "example.com",
		Timestamp:      time.Date(2024, 3, 30, 12, 0, 1, 0, time.UTC),
		GateAllowed:    true,
		GateReason:     "enrolled",
		TopicsReturned: 2,
	}
}

func TestPhaseNames(t *testing.T) {
	if BeforeAccept.DatasetName() != "D_BA" || AfterAccept.DatasetName() != "D_AA" {
		t.Error("dataset names do not match the paper's notation")
	}
	if Phase("x").DatasetName() != "x" {
		t.Error("unknown phase name mangled")
	}
}

func TestThirdPartyHostsDeduped(t *testing.T) {
	v := sampleVisit("example.com", BeforeAccept)
	got := v.ThirdPartyHosts()
	if !reflect.DeepEqual(got, []string{"cdn.adsrv.net"}) {
		t.Errorf("ThirdPartyHosts = %v", got)
	}
}

func TestDatasetViews(t *testing.T) {
	d := &Dataset{}
	d.Append(sampleVisit("a.com", BeforeAccept))
	d.Append(sampleVisit("a.com", AfterAccept))
	d.Append(sampleVisit("b.com", BeforeAccept))
	failed := sampleVisit("c.com", BeforeAccept)
	failed.Success = false
	failed.Error = "dns"
	d.Append(failed)

	if d.Len() != 4 {
		t.Errorf("Len = %d", d.Len())
	}
	if got := len(d.Phase(BeforeAccept)); got != 3 {
		t.Errorf("BeforeAccept visits = %d", got)
	}
	if got := len(d.Phase(AfterAccept)); got != 1 {
		t.Errorf("AfterAccept visits = %d", got)
	}
	if got := d.SuccessfulSites(BeforeAccept); !reflect.DeepEqual(got, []string{"a.com", "b.com"}) {
		t.Errorf("SuccessfulSites = %v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	d := &Dataset{}
	d.Append(sampleVisit("a.com", BeforeAccept, sampleCall("criteo.com")))
	d.Append(sampleVisit("b.com", AfterAccept, sampleCall("doubleclick.net"), sampleCall("teads.tv")))

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range d.Visits {
		if err := w.Write(&d.Visits[i]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != 2 {
		t.Errorf("Count = %d", w.Count())
	}

	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got.Visits, d.Visits) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got.Visits, d.Visits)
	}
}

func TestJSONLSkipsBlankAndRejectsGarbage(t *testing.T) {
	in := "\n" + `{"site":"a.com","phase":"before_accept","success":true,"rank":1,"accepted":false,"bannerDetected":false,"fetchedAt":"2024-03-30T00:00:00Z"}` + "\n\n"
	d, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
	if _, err := Load(strings.NewReader("{bad json}\n")); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	d := &Dataset{}
	d.Append(sampleVisit("a.com", BeforeAccept, sampleCall("criteo.com")))
	path := filepath.Join(t.TempDir(), "crawl.jsonl")
	if err := d.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if !reflect.DeepEqual(got.Visits, d.Visits) {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCallsCSVRoundTrip(t *testing.T) {
	d := &Dataset{}
	d.Append(sampleVisit("a.com", BeforeAccept, sampleCall("criteo.com")))
	d.Append(sampleVisit("b.com", AfterAccept, sampleCall("doubleclick.net"), sampleCall("teads.tv")))

	var buf bytes.Buffer
	if err := d.WriteCallsCSV(&buf); err != nil {
		t.Fatalf("WriteCallsCSV: %v", err)
	}
	rows, err := ReadCallsCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCallsCSV: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0].Site != "a.com" || rows[0].Call.Caller != "criteo.com" {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[2].Phase != AfterAccept || rows[2].Call.Caller != "teads.tv" {
		t.Errorf("row 2 = %+v", rows[2])
	}
}

func TestReadCallsCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadCallsCSV(strings.NewReader("a,b,c,d,e,f,g,h,i,j\n")); err == nil {
		t.Error("bad header accepted")
	}
}

// Property: any visit record survives the JSONL round trip.
func TestJSONLProperty(t *testing.T) {
	f := func(site string, rank int, success bool, nCalls uint8) bool {
		if strings.ContainsAny(site, "\n\r") {
			site = "x.com"
		}
		v := Visit{
			Site: site, Rank: rank, Phase: BeforeAccept, Success: success,
			FetchedAt: time.Unix(1711800000, 0).UTC(),
		}
		for i := 0; i < int(nCalls%5); i++ {
			v.Calls = append(v.Calls, sampleCall("cp.example"))
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.Write(&v) != nil || w.Flush() != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil || got.Len() != 1 {
			return false
		}
		return reflect.DeepEqual(got.Visits[0], v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGzipDatasetRoundTrip(t *testing.T) {
	d := &Dataset{}
	d.Append(sampleVisit("a.com", BeforeAccept, sampleCall("criteo.com")))
	d.Append(sampleVisit("b.com", AfterAccept))

	path := filepath.Join(t.TempDir(), "crawl.jsonl.gz")
	if err := d.SaveFile(path); err != nil {
		t.Fatalf("SaveFile(.gz): %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile(.gz): %v", err)
	}
	if !reflect.DeepEqual(got.Visits, d.Visits) {
		t.Error("gzip round trip mismatch")
	}
	// The file really is gzip (magic bytes), not plain text.
	raw, _ := os.ReadFile(path)
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Error("file is not gzip-compressed")
	}
	// Resume reads compressed crawls too (only a.com has a
	// Before-Accept record).
	sites, err := CompletedSites(path)
	if err != nil || len(sites) != 1 || !sites["a.com"] {
		t.Errorf("CompletedSites on .gz: %v, %v", sites, err)
	}
}

func TestGzipRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl.gz")
	os.WriteFile(path, []byte("definitely not gzip"), 0o644)
	if _, err := LoadFile(path); err == nil {
		t.Error("corrupt gzip accepted")
	}
}
