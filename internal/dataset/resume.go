package dataset

import (
	"os"
)

// CompletedSites streams a JSONL crawl file and returns the set of sites
// that already have a Before-Accept record — the resume point for an
// interrupted campaign. A missing file yields an empty set.
func CompletedSites(path string) (map[string]bool, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return map[string]bool{}, nil
	}
	f, err := OpenReader(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]bool)
	err = Read(f, func(v *Visit) error {
		if v.Phase == BeforeAccept {
			out[v.Site] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
