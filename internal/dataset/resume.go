package dataset

import (
	"encoding/json"
	"errors"
	"os"

	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/obs"
)

// CompletedSites streams a JSONL crawl file and returns the set of sites
// that already have a Before-Accept record — the resume point for an
// interrupted campaign. A missing file yields an empty set.
//
// The scan salvages: a crawl file whose tail was torn by a crash (a
// half-written line, a truncated gzip member, a corrupt framed record)
// yields the sites of the valid prefix instead of an error — a corrupt
// tail must never block resume, because resume is exactly when corrupt
// tails occur.
func CompletedSites(path string) (map[string]bool, error) {
	return CompletedSitesObserved(path, nil)
}

// CompletedSitesObserved is CompletedSites with recovery accounting: a
// torn tail increments dataset_torn_tails_total and
// dataset_truncated_bytes_total on reg (which may be nil).
func CompletedSitesObserved(path string, reg *obs.Registry) (map[string]bool, error) {
	out := make(map[string]bool)
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return out, nil
	}
	rc, _, err := durable.OpenTail(path, 0)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	corrupt := false
	st, err := durable.ScanRecords(rc, func(payload []byte) error {
		var v Visit
		if uerr := json.Unmarshal(payload, &v); uerr != nil {
			// First undecodable record: everything after it is the
			// corrupt tail. Stop, keep what we have.
			return errCorrupt
		}
		if v.Phase == BeforeAccept {
			out[v.Site] = true
		}
		return nil
	})
	if err != nil {
		if !errors.Is(err, errCorrupt) {
			return nil, err
		}
		corrupt = true
	}
	if st.Truncated || corrupt {
		reg.Add("dataset_torn_tails_total", 1)
		reg.Add("dataset_truncated_bytes_total", st.TruncatedBytes)
	}
	return out, nil
}
