package dataset

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzCompletedSites drives the resume path with arbitrary file
// contents, in both the plain and the gzip-transparent form. Two
// properties: no input may panic the scanner, and the gzip wrapper must
// be fully transparent — the same bytes behind a .gz suffix yield the
// same resume set (or both fail).
func FuzzCompletedSites(f *testing.F) {
	f.Add([]byte(`{"site":"a.com","phase":"before_accept"}` + "\n"))
	f.Add([]byte(`{"site":"a.com","phase":"after_accept"}
{"site":"b.com","phase":"before_accept"}
`))
	f.Add([]byte(`{"site":`))
	f.Add([]byte("\n\n"))
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00})
	// Torn-tail corpora: a crashed writer leaves a valid prefix plus a
	// half-written record, frame header, or framed record with a bad
	// CRC. Salvage must keep the prefix in every case.
	f.Add([]byte(`{"site":"a.com","phase":"before_accept"}` + "\n" + `{"site":"b.c`))
	f.Add([]byte("#r 16 0\n" + `{"site":"a.com"}` + "\n"))
	f.Add([]byte("#r 28 5f0e3ad1\n" + `{"site":"a.com","phase":"bef`))
	f.Add([]byte(`{"site":"a.com","phase":"before_accept"}` + "\n#r 99999 zz\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		plain := filepath.Join(dir, "crawl.jsonl")
		if err := os.WriteFile(plain, data, 0o644); err != nil {
			t.Fatal(err)
		}
		gz := filepath.Join(dir, "crawl.jsonl.gz")
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(gz, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}

		plainSites, plainErr := CompletedSites(plain)
		gzSites, gzErr := CompletedSites(gz)
		if (plainErr == nil) != (gzErr == nil) {
			t.Fatalf("gzip transparency broken: plain err=%v, gz err=%v", plainErr, gzErr)
		}
		if plainErr == nil && !reflect.DeepEqual(plainSites, gzSites) {
			t.Fatalf("gzip transparency broken: plain=%v gz=%v", plainSites, gzSites)
		}
	})
}

// FuzzReadVisits round-trips arbitrary bytes through the JSONL visit
// reader: it must never panic, and once parsed, the stream must be a
// byte-level fixed point — encoding the parsed visits and re-parsing
// that output encodes to the same bytes again. (Struct-level DeepEqual
// is deliberately not the property: JSON cannot distinguish a nil
// slice from an empty one under omitempty, and need not.)
func FuzzReadVisits(f *testing.F) {
	f.Add([]byte(`{"site":"a.com","rank":1,"phase":"before_accept","success":true}` + "\n"))
	f.Add([]byte(`{"resources":[{"host":"cdn.a.com","failed":true}]}` + "\n"))
	f.Add([]byte(`not json`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var first []Visit
		if err := Read(bytes.NewReader(data), func(v *Visit) error {
			first = append(first, *v)
			return nil
		}); err != nil {
			return
		}
		encode := func(visits []Visit) []byte {
			t.Helper()
			var buf bytes.Buffer
			w := NewWriter(&buf)
			for i := range visits {
				if err := w.Write(&visits[i]); err != nil {
					t.Fatalf("encoding visit: %v", err)
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		once := encode(first)
		var second []Visit
		if err := Read(bytes.NewReader(once), func(v *Visit) error {
			second = append(second, *v)
			return nil
		}); err != nil {
			t.Fatalf("re-decoding encoded visits: %v", err)
		}
		twice := encode(second)
		if !bytes.Equal(once, twice) {
			t.Fatalf("visit stream not a fixed point:\nonce:  %s\ntwice: %s", once, twice)
		}
	})
}

// TestCompletedSitesAppendedGzipMembers pins the resume contract
// topics-crawl relies on: appending a fresh gzip member to an existing
// .gz dataset (what -resume does) is valid gzip, and CompletedSites
// sees the sites of every member.
func TestCompletedSitesAppendedGzipMembers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crawl.jsonl.gz")

	writeMember := func(flags int, sites ...string) {
		t.Helper()
		f, err := os.OpenFile(path, flags, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		zw := gzip.NewWriter(f)
		w := NewWriter(zw)
		for _, s := range sites {
			if err := w.Write(&Visit{Site: s, Phase: BeforeAccept}); err != nil {
				t.Fatal(err)
			}
			if err := w.Write(&Visit{Site: s, Phase: AfterAccept}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeMember(os.O_CREATE|os.O_WRONLY|os.O_TRUNC, "a.com", "b.com")
	writeMember(os.O_CREATE|os.O_WRONLY|os.O_APPEND, "c.com")

	got, err := CompletedSites(path)
	if err != nil {
		t.Fatalf("CompletedSites: %v", err)
	}
	want := map[string]bool{"a.com": true, "b.com": true, "c.com": true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resume set = %v, want %v", got, want)
	}
}
