package dataset

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/obs"
)

// TestCompletedSitesSalvagesTornTail pins the satellite fix: a crawl
// file whose tail was torn mid-record yields the valid prefix's resume
// set instead of an error, and the truncation is surfaced via obs.
func TestCompletedSitesSalvagesTornTail(t *testing.T) {
	valid := `{"site":"a.com","phase":"before_accept"}` + "\n" +
		`{"site":"a.com","phase":"after_accept"}` + "\n" +
		`{"site":"b.com","phase":"before_accept"}` + "\n"
	want := map[string]bool{"a.com": true, "b.com": true}

	t.Run("plain-torn-line", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "crawl.jsonl")
		if err := os.WriteFile(path, []byte(valid+`{"site":"c.c`), 0o644); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		got, err := CompletedSitesObserved(path, reg)
		if err != nil {
			t.Fatalf("torn tail blocked resume: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("resume set = %v, want %v", got, want)
		}
		if reg.Snapshot().Counter("dataset_torn_tails_total") != 1 {
			t.Error("truncation not counted")
		}
	})

	t.Run("plain-corrupt-json", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "crawl.jsonl")
		if err := os.WriteFile(path, []byte(valid+"{\x00garbage}\n"+`{"site":"d.com","phase":"before_accept"}`+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := CompletedSites(path)
		if err != nil {
			t.Fatalf("corrupt record blocked resume: %v", err)
		}
		// Everything past the first corrupt record is untrusted.
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("resume set = %v, want %v", got, want)
		}
	})

	t.Run("gzip-torn-member", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "crawl.jsonl.gz")
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write([]byte(valid)); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		whole := buf.Len()
		// A second member, torn mid-stream by the crash.
		zw = gzip.NewWriter(&buf)
		if _, err := zw.Write([]byte(`{"site":"c.com","phase":"before_accept"}` + "\n")); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		torn := buf.Bytes()[:whole+(buf.Len()-whole)/2]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := CompletedSites(path)
		if err != nil {
			t.Fatalf("torn gzip member blocked resume: %v", err)
		}
		for site := range want {
			if !got[site] {
				t.Fatalf("salvage lost site %s: %v", site, got)
			}
		}
		if got["c.com"] {
			// Depending on where flate buffered, c.com may or may not
			// survive; if it does, it must have decoded exactly.
			t.Log("torn member still yielded its record intact")
		}
	})
}

// TestResumeJournalDropsTornSiteGroup pins the repair rule: a site
// whose Before-Accept record promises an After-Accept one (success +
// accepted) but was torn before it arrived is dropped entirely, so the
// resumed campaign recrawls it and the dataset stays byte-identical.
func TestResumeJournalDropsTornSiteGroup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crawl.jsonl.gz")
	jw, err := CreateJournal(path, JournalOptions{CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Write(&Visit{Site: "a.com", Rank: 1, Phase: BeforeAccept, Success: true}); err != nil {
		t.Fatal(err)
	}
	if err := jw.SiteCompleted(1, "a.com"); err != nil {
		t.Fatal(err)
	}
	jw.Abort()
	// The crash spilled b.com's Before-Accept record to disk (a buffer
	// flush mid-site) but died before its promised After-Accept record:
	// an uncommitted tail past the checkpoint, holding an orphan group.
	orphan, err := json.Marshal(&Visit{Site: "b.com", Rank: 2, Phase: BeforeAccept, Success: true, Accepted: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write(durable.AppendFrame(nil, orphan)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	jw2, st, err := ResumeJournal(path, JournalOptions{CheckpointEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer jw2.Close()
	if st.Completed["b.com"] {
		t.Fatal("torn site group counted as completed")
	}
	if st.RecordsDropped != 1 {
		t.Fatalf("dropped %d records, want 1 (the orphan Before-Accept)", st.RecordsDropped)
	}
	d, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Visits {
		if v.Site == "b.com" {
			t.Fatal("orphan record survived the repair")
		}
	}
}

// TestResumeJournalLegacyUnframedFile resumes a pre-durable dataset: no
// manifest, no frames — a full salvaging scan that then upgrades the
// file to a committed journal state.
func TestResumeJournalLegacyUnframedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crawl.jsonl.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	w := NewWriter(zw)
	for _, site := range []string{"a.com", "b.com"} {
		if err := w.Write(&Visit{Site: site, Phase: BeforeAccept, Success: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	jw, st, err := ResumeJournal(path, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Completed["a.com"] || !st.Completed["b.com"] {
		t.Fatalf("legacy records not salvaged: %+v", st)
	}
	if st.RecordsKept != 2 {
		t.Fatalf("kept %d records, want 2", st.RecordsKept)
	}
	if err := jw.Write(&Visit{Site: "c.com", Rank: 3, Phase: BeforeAccept}); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if durable.LoadManifest(path) == nil {
		t.Fatal("no manifest after legacy upgrade")
	}
	got, err := CompletedSites(path)
	if err != nil {
		t.Fatal(err)
	}
	wantSet := map[string]bool{"a.com": true, "b.com": true, "c.com": true}
	if !reflect.DeepEqual(got, wantSet) {
		t.Fatalf("resume set = %v, want %v", got, wantSet)
	}
}

// TestResumeJournalShardIdentity pins the sharded-campaign guard: a
// shard journal resumes only under its own shard geometry, and the
// checkpoint manifests it writes carry that geometry.
func TestResumeJournalShardIdentity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crawl.jsonl.shard-1")
	shard := &durable.ShardInfo{Index: 1, Count: 4, FromRank: 26, ToRank: 50}
	w, err := CreateJournal(path, JournalOptions{Shard: shard})
	if err != nil {
		t.Fatal(err)
	}
	v := &Visit{Site: "a.com", Rank: 26, Phase: BeforeAccept}
	if err := w.Write(v); err != nil {
		t.Fatal(err)
	}
	if err := w.SiteCompleted(26, "a.com"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	m := durable.LoadManifest(path)
	if m == nil || !m.Shard.Equal(shard) {
		t.Fatalf("manifest shard = %+v, want %+v", m, shard)
	}

	// Matching geometry resumes; mismatched or absent geometry refuses.
	w2, _, err := ResumeJournal(path, JournalOptions{Shard: shard})
	if err != nil {
		t.Fatalf("matching shard resume failed: %v", err)
	}
	w2.Close()
	if _, _, err := ResumeJournal(path, JournalOptions{Shard: &durable.ShardInfo{Index: 0, Count: 4, FromRank: 1, ToRank: 25}}); err == nil {
		t.Fatal("mismatched shard geometry resumed")
	}
	if _, _, err := ResumeJournal(path, JournalOptions{}); err == nil {
		t.Fatal("shard journal resumed as single-process journal")
	}
}
