// Package dataset defines the measurement records the crawler produces
// and the analysis pipeline consumes, mirroring the data the paper
// collects (§2.2): for every visited website, the URL of each first- and
// third-party object downloaded to render the page, and every call to
// the Topics API — the calling party (CP), the site where the call
// happened, the timestamp, the API call type (JavaScript, Fetch or
// IFrame) and possible multiple calls from the same CP on the same page.
//
// The paper's two datasets map to the Phase field: D_BA (Before-Accept,
// no consent given) and D_AA (After-Accept, consent granted via the
// privacy banner).
package dataset

import (
	"time"
)

// CallType is how the Topics API was invoked (§2.2 cites the three
// integration styles of the official guide).
type CallType string

// The three Topics API call types.
const (
	CallJavaScript CallType = "javascript" // document.browsingTopics()
	CallFetch      CallType = "fetch"      // fetch(..., {browsingTopics: true})
	CallIframe     CallType = "iframe"     // <iframe browsingtopics src=...>
)

// Phase distinguishes the two visits of the Priv-Accept methodology.
type Phase string

// Crawl phases: the first visit records the site before any consent is
// given; the second happens only after the banner was accepted.
const (
	BeforeAccept Phase = "before_accept"
	AfterAccept  Phase = "after_accept"
)

// Dataset name helpers matching the paper's notation.
func (p Phase) DatasetName() string {
	switch p {
	case BeforeAccept:
		return "D_BA"
	case AfterAccept:
		return "D_AA"
	default:
		return string(p)
	}
}

// TopicsCall is one recorded invocation of the Topics API, the tuple the
// paper obtains by instrumenting Chromium's
// BrowsingTopicsSiteDataManagerImpl.
//
//topicslint:compact
type TopicsCall struct {
	// Caller is the calling party (CP) domain.
	Caller string `json:"caller"`
	// Site is the website the call happened on.
	Site string `json:"site"`
	// Type is the API call type.
	Type CallType `json:"type"`
	// ContextOrigin is the origin of the browsing context that executed
	// the call. For a <script> included directly in the page this is the
	// site itself even when the script file came from a third party —
	// the "wrong context" phenomenon of §4 (Figure 4).
	ContextOrigin string `json:"contextOrigin"`
	// Timestamp is when the call was made.
	Timestamp time.Time `json:"timestamp"`
	// GateAllowed reports the enforcing-gate verdict for the caller: true
	// if the caller is on the allow-list. The crawler runs with the
	// corrupted-database default-allow so even !Allowed calls execute
	// and are recorded (the paper's methodology, §2.3).
	GateAllowed bool `json:"gateAllowed"`
	// GateReason is the textual gate decision.
	GateReason string `json:"gateReason"`
	// TopicsReturned is how many topics the engine answered with.
	TopicsReturned int `json:"topicsReturned"`
}

// Resource is one first- or third-party object downloaded to render a
// page.
//
//topicslint:compact
type Resource struct {
	// URL of the object.
	URL string `json:"url"`
	// Host serving the object.
	Host string `json:"host"`
	// ThirdParty reports whether Host belongs to a different registrable
	// domain than the visited site.
	ThirdParty bool `json:"thirdParty"`
	// Failed marks an object whose download did not complete (after
	// retries); Error carries its taxonomy class. A page with failed
	// subresources still yields a partial visit record.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Visit is the record of one page visit in one phase.
// Visit serializes in field-declaration order and the golden pipeline
// test pins the emitted bytes, so the 24 padding bytes the scattered
// bools cost are accepted here instead of reordering; visits are
// per-crawl records, not per-user resident state.
//
//topicslint:compact 24
type Visit struct {
	// Site is the visited website (registrable domain from the rank
	// list).
	Site string `json:"site"`
	// Rank is the site's position in the Tranco-style list.
	Rank int `json:"rank"`
	// Phase is BeforeAccept or AfterAccept.
	Phase Phase `json:"phase"`
	// Success reports whether the page loaded; failures carry Error.
	Success bool `json:"success"`
	// Error holds the failure cause for unsuccessful visits (the paper
	// loses ≈13% of sites to DNS/connection errors).
	Error string `json:"error,omitempty"`
	// ErrorClass is Error mapped onto the structured taxonomy
	// (timeout | refused | dns | reset | http5xx | truncated |
	// circuit-open | other).
	ErrorClass string `json:"errorClass,omitempty"`
	// Partial marks a successful visit degraded by failed subresources.
	Partial bool `json:"partial,omitempty"`
	// Retries counts extra fetch and navigation attempts the visit
	// needed beyond the first of each.
	Retries int `json:"retries,omitempty"`
	// BannerDetected reports whether a privacy banner was found.
	BannerDetected bool `json:"bannerDetected"`
	// BannerLanguage is the detected banner language, when any.
	BannerLanguage string `json:"bannerLanguage,omitempty"`
	// Accepted reports whether Priv-Accept managed to click accept
	// (only meaningful on the BeforeAccept record; an AfterAccept visit
	// exists only if it did).
	Accepted bool `json:"accepted"`
	// CMP is the consent-management platform identified on the page by
	// domain fingerprinting, empty if none.
	CMP string `json:"cmp,omitempty"`
	// Resources lists every downloaded object.
	Resources []Resource `json:"resources,omitempty"`
	// Calls lists every Topics API invocation observed.
	Calls []TopicsCall `json:"calls,omitempty"`
	// FetchedAt is the wall-clock time of the visit.
	FetchedAt time.Time `json:"fetchedAt"`
}

// ThirdPartyHosts returns the distinct third-party hosts of the visit.
func (v *Visit) ThirdPartyHosts() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range v.Resources {
		if r.ThirdParty && !r.Failed && !seen[r.Host] {
			seen[r.Host] = true
			out = append(out, r.Host)
		}
	}
	return out
}

// Dataset is an in-memory crawl result.
type Dataset struct {
	Visits []Visit
}

// Phase returns the visits belonging to one phase (the paper's D_BA or
// D_AA view).
func (d *Dataset) Phase(p Phase) []Visit {
	var out []Visit
	for _, v := range d.Visits {
		if v.Phase == p {
			out = append(out, v)
		}
	}
	return out
}

// SuccessfulSites returns the distinct successfully visited sites in the
// given phase.
func (d *Dataset) SuccessfulSites(p Phase) []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range d.Visits {
		if v.Phase == p && v.Success && !seen[v.Site] {
			seen[v.Site] = true
			out = append(out, v.Site)
		}
	}
	return out
}

// Append adds a visit.
func (d *Dataset) Append(v Visit) { d.Visits = append(d.Visits, v) }

// Len returns the number of visit records.
func (d *Dataset) Len() int { return len(d.Visits) }
