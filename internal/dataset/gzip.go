package dataset

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// gzipExt marks transparently compressed dataset files.
const gzipExt = ".gz"

// OpenReader opens a dataset file for reading, transparently
// decompressing when the path ends in .gz. Close the returned
// ReadCloser when done.
func OpenReader(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: opening %s: %w", path, err)
	}
	if !strings.HasSuffix(path, gzipExt) {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: gzip %s: %w", path, err)
	}
	return &gzipReadCloser{zr: zr, f: f}, nil
}

type gzipReadCloser struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipReadCloser) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipReadCloser) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// OpenWriter creates a dataset file for writing, transparently
// compressing when the path ends in .gz. Close the returned WriteCloser
// to flush everything. The sink streams records as they arrive, so it
// cannot be written atomically; crash-safe campaigns use CreateJournal
// instead, which checkpoints the stream (see internal/durable).
func OpenWriter(path string) (io.WriteCloser, error) {
	f, err := os.Create(path) //topicslint:ignore atomicwrite streaming record sink; crash safety comes from the journal layer, not rename
	if err != nil {
		return nil, fmt.Errorf("dataset: creating %s: %w", path, err)
	}
	if !strings.HasSuffix(path, gzipExt) {
		return f, nil
	}
	return &gzipWriteCloser{zw: gzip.NewWriter(f), f: f}, nil
}

type gzipWriteCloser struct {
	zw *gzip.Writer
	f  *os.File
}

func (g *gzipWriteCloser) Write(p []byte) (int, error) { return g.zw.Write(p) }

func (g *gzipWriteCloser) Close() error {
	zerr := g.zw.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}
