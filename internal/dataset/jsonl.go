package dataset

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// frameHeaderPrefix marks durable record-frame header lines; JSON
// records never start with '#'.
var frameHeaderPrefix = []byte("#r ")

// Writer streams visit records as JSON Lines, the on-disk format of the
// crawl. It is not safe for concurrent use; the crawler serialises
// writes through a single goroutine.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps w in a JSONL visit writer.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one visit record.
func (w *Writer) Write(v *Visit) error {
	if err := w.enc.Encode(v); err != nil {
		return fmt.Errorf("dataset: encoding visit %q: %w", v.Site, err)
	}
	w.n++
	return nil
}

// Count returns how many records were written.
func (w *Writer) Count() int { return w.n }

// Flush drains buffered output.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("dataset: flushing: %w", err)
	}
	return nil
}

// Read streams visit records from a JSONL stream into fn; it stops on
// the first malformed line or when fn returns an error. Record-frame
// header lines (`#r <len> <crc>`, written by the durable journal) are
// skipped, so framed and legacy unframed files read identically.
func Read(r io.Reader, fn func(*Visit) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		if bytes.HasPrefix(sc.Bytes(), frameHeaderPrefix) {
			continue
		}
		var v Visit
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			return fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if err := fn(&v); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("dataset: scanning: %w", err)
	}
	return nil
}

// Load reads an entire JSONL stream into memory.
func Load(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	err := Read(r, func(v *Visit) error {
		d.Visits = append(d.Visits, *v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// LoadFile loads a JSONL dataset from disk (.gz transparently).
func LoadFile(path string) (*Dataset, error) {
	f, err := OpenReader(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// SaveFile writes the dataset to disk as JSONL (.gz transparently).
func (d *Dataset) SaveFile(path string) (err error) {
	f, err := OpenWriter(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("dataset: closing %s: %w", path, cerr)
		}
	}()
	w := NewWriter(f)
	for i := range d.Visits {
		if err := w.Write(&d.Visits[i]); err != nil {
			return err
		}
	}
	return w.Flush()
}
