package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/netmeasure/topicscope/internal/durable"
)

// AttestationRecord is the outcome of checking one domain's well-known
// attestation file (§2.3: "For every first and third party we encounter
// ... we verify whether a valid attestation file is present").
type AttestationRecord struct {
	Domain string `json:"domain"`
	// Present: the well-known URL answered 200.
	Present bool `json:"present"`
	// Valid: the file parsed and passed validation.
	Valid bool `json:"valid"`
	// AttestsTopics: the file attests the Topics API specifically.
	AttestsTopics bool `json:"attestsTopics"`
	// IssuedAt is the attestation issue date (enrolment timeline, §3).
	IssuedAt time.Time `json:"issuedAt,omitempty"`
	// HasEnrollmentSite: the file carries the post-Oct-2024 field.
	HasEnrollmentSite bool `json:"hasEnrollmentSite"`
	// Error describes a fetch or parse failure.
	Error string `json:"error,omitempty"`
}

// Attested is the paper's definition: a valid attestation file covering
// the Topics API.
func (r AttestationRecord) Attested() bool {
	return r.Present && r.Valid && r.AttestsTopics
}

// AttestationIndex indexes records by domain.
func AttestationIndex(recs []AttestationRecord) map[string]AttestationRecord {
	m := make(map[string]AttestationRecord, len(recs))
	for _, r := range recs {
		m[r.Domain] = r
	}
	return m
}

// SaveAttestations writes attestation records as JSONL, atomically: the
// file appears complete or not at all, never torn.
func SaveAttestations(path string, recs []AttestationRecord) error {
	err := durable.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		for i := range recs {
			if err := enc.Encode(&recs[i]); err != nil {
				return fmt.Errorf("dataset: encoding attestation %s: %w", recs[i].Domain, err)
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("dataset: writing %s: %w", path, err)
	}
	return nil
}

// LoadAttestations reads attestation records from JSONL.
func LoadAttestations(path string) ([]AttestationRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: opening %s: %w", path, err)
	}
	defer f.Close()
	var out []AttestationRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r AttestationRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("dataset: parsing attestation record: %w", err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scanning %s: %w", path, err)
	}
	return out, nil
}
