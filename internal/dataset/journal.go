package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/obs"
)

// DefaultCheckpointEvery is the checkpoint cadence (completed sites per
// manifest) when the caller does not choose one. Small enough that a
// crash replays seconds of work, large enough that fsyncs stay off the
// hot path.
const DefaultCheckpointEvery = 25

// VisitObserver receives every record a journal accepts, in append
// (rank) order, plus every committed checkpoint — the hook the
// incremental analysis fold rides. ObserveVisit runs after the record
// is buffered in the journal; ObserveCheckpoint runs after the
// checkpoint's manifest (and frame index) hit disk, so an observer that
// serializes per-checkpoint state can tie it to a durable commit. On
// resume, salvaged tail records are replayed through ObserveVisit
// before the repair checkpoint fires.
type VisitObserver interface {
	ObserveVisit(v *Visit)
	ObserveCheckpoint(ck durable.Checkpoint) error
}

// JournalOptions configure a crash-safe dataset journal.
type JournalOptions struct {
	// CheckpointEvery is the number of completed sites between
	// checkpoints (journal fsync + manifest rewrite); <= 0 selects
	// DefaultCheckpointEvery.
	CheckpointEvery int
	// Metrics receives the recovery/checkpoint counters; nil is fine.
	Metrics *obs.Registry
	// Skip reports ranks accounted for outside this run (sites resumed
	// or deliberately skipped), so the completed-site watermark can
	// advance across them. Nil means no rank is skipped.
	Skip func(rank int) bool
	// Shard, when set, stamps every checkpoint manifest with the
	// journal's shard position. Resume refuses a journal whose manifest
	// carries different shard geometry — a shard restarted with the
	// wrong rank window would silently corrupt the merged campaign.
	Shard *durable.ShardInfo
	// Observer, when set, receives every accepted record and committed
	// checkpoint (see VisitObserver). Nil means no observation.
	Observer VisitObserver
	// Durable carries the low-level hooks (chaos crash injection).
	Durable durable.Options
}

func (o *JournalOptions) every() int {
	if o.CheckpointEvery <= 0 {
		return DefaultCheckpointEvery
	}
	return o.CheckpointEvery
}

// JournalWriter writes visit records through a durable.Journal with
// checkpoint discipline: records buffer between checkpoints, and every
// CheckpointEvery completed sites the journal is fsync'd and the
// companion manifest atomically rewritten with the new completed-site
// watermark. It satisfies the crawler's VisitWriter and SiteCompleter.
type JournalWriter struct {
	j    *durable.Journal
	path string
	opts JournalOptions
	fidx *durable.FrameIndex

	watermarkRank int
	watermarkSite string
	sites         int
	sinceCkpt     int
	// done holds (rank -> site) for sites completed this run that the
	// watermark has not yet swept over. Emission is rank-ordered, so it
	// stays near-empty.
	done map[int]string
}

// ResumeState reports what resuming a journal found and recovered.
type ResumeState struct {
	// Completed is the set of sites whose record groups survived in the
	// scanned region (the tail past the checkpoint, or the whole file
	// when no manifest existed). Sites at or below WatermarkRank are
	// complete but not listed here — that is the point of the manifest.
	Completed map[string]bool
	// WatermarkRank is the manifest's completed-site watermark: every
	// rank <= WatermarkRank was fully recorded (or deliberately
	// skipped) before the checkpoint. 0 without a manifest.
	WatermarkRank int
	// RecordsKept / RecordsDropped count salvaged tail records and
	// trailing incomplete-group records discarded during repair.
	RecordsKept    int64
	RecordsDropped int64
	// BytesRead is the raw (compressed) bytes read off disk during
	// resume — the O(tail) guarantee, asserted by tests.
	BytesRead int64
	// Truncated/TruncatedBytes report a torn tail (decompressed bytes
	// discarded past the last valid record).
	Truncated      bool
	TruncatedBytes int64
}

// CreateJournal creates (or truncates) a crash-safe dataset journal.
func CreateJournal(path string, opts JournalOptions) (*JournalWriter, error) {
	j, err := durable.Create(path, opts.Durable)
	if err != nil {
		return nil, err
	}
	durable.RemoveManifestFS(opts.Durable.FS, path)
	durable.RemoveFrameIndexFS(opts.Durable.FS, path)
	return &JournalWriter{j: j, path: path, opts: opts, fidx: &durable.FrameIndex{}, done: map[int]string{}}, nil
}

// errCorrupt marks the first undecodable record during a resume scan:
// everything from there on is treated as a torn tail.
var errCorrupt = errors.New("dataset: corrupt record")

// tailGroup is one site's record group salvaged from the journal tail.
type tailGroup struct {
	site     string
	rank     int
	payloads [][]byte
	complete bool
}

// groupComplete reports whether a site's record group can still grow: a
// successful, accepted Before-Accept visit is followed by an
// After-Accept record, so a group ending there was torn mid-site. A
// drain-aborted record likewise marks the site unfinished.
func groupComplete(last *Visit) bool {
	if last.ErrorClass == "aborted" {
		return false
	}
	if last.Phase == AfterAccept {
		return true
	}
	return !last.Success || !last.Accepted
}

// ResumeJournal reopens a journal for appending after a crash or
// interrupt. It loads the checkpoint manifest (absent or invalid ⇒
// a full salvaging scan from byte 0), scans only the tail past the
// committed offset, drops any trailing record group whose site was torn
// mid-write, repairs the file in place (truncate to the checkpoint,
// re-append the kept tail), writes a fresh manifest, and returns the
// writer positioned for the next site.
func ResumeJournal(path string, opts JournalOptions) (*JournalWriter, *ResumeState, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		w, err := CreateJournal(path, opts)
		return w, &ResumeState{Completed: map[string]bool{}}, err
	}
	var ck durable.Checkpoint
	st := &ResumeState{Completed: map[string]bool{}}
	m := durable.LoadManifestFS(opts.Durable.FS, path)
	if m != nil {
		if !m.Shard.Equal(opts.Shard) {
			return nil, nil, fmt.Errorf("dataset: resuming %s: manifest shard %+v does not match %+v", path, m.Shard, opts.Shard)
		}
		ck = m.Checkpoint()
		st.WatermarkRank = m.WatermarkRank
	}

	// Salvage the tail past the checkpoint.
	rc, cr, err := durable.OpenTail(path, ck.Offset)
	if err != nil {
		return nil, nil, err
	}
	var groups []*tailGroup
	scan, err := durable.ScanRecords(rc, func(payload []byte) error {
		var v Visit
		if uerr := json.Unmarshal(payload, &v); uerr != nil {
			return errCorrupt
		}
		g := (*tailGroup)(nil)
		if len(groups) > 0 {
			g = groups[len(groups)-1]
		}
		if g == nil || g.site != v.Site {
			g = &tailGroup{site: v.Site, rank: v.Rank}
			groups = append(groups, g)
		}
		g.payloads = append(g.payloads, append([]byte(nil), payload...))
		g.complete = groupComplete(&v)
		return nil
	})
	st.BytesRead = cr.BytesRead()
	rc.Close()
	if err != nil && !errors.Is(err, errCorrupt) {
		return nil, nil, err
	}
	corrupt := errors.Is(err, errCorrupt)
	st.Truncated = scan.Truncated || corrupt
	st.TruncatedBytes = scan.TruncatedBytes

	// Keep complete groups up to the first incomplete one: emission is
	// rank-ordered and group-atomic, so anything after a torn group
	// cannot be trusted to be contiguous.
	var kept []*tailGroup
	for _, g := range groups {
		if !g.complete {
			break
		}
		kept = append(kept, g)
	}
	for _, g := range kept {
		st.RecordsKept += int64(len(g.payloads))
		st.Completed[g.site] = true
	}
	st.RecordsDropped = scan.Records - st.RecordsKept

	// Repair in place: truncate to the committed checkpoint and
	// re-append exactly the kept groups as a fresh committed state.
	j, err := durable.OpenAt(path, ck, opts.Durable)
	if err != nil {
		return nil, nil, err
	}
	w := &JournalWriter{
		j: j, path: path, opts: opts,
		fidx:          &durable.FrameIndex{},
		watermarkRank: st.WatermarkRank,
		sites:         0,
		done:          map[int]string{},
	}
	if m != nil {
		w.watermarkSite = m.WatermarkSite
		w.sites = m.Sites
	}
	// The sparse frame index survives a resume only up to the rewound
	// checkpoint; everything past it described bytes the repair just
	// truncated. A missing or invalid index simply restarts empty — it
	// is an accelerator, not an authority.
	if fi := durable.LoadFrameIndexFS(opts.Durable.FS, path); fi != nil {
		fi.Truncate(ck.Offset)
		w.fidx = fi
	}
	for _, g := range kept {
		for _, p := range g.payloads {
			if err := j.Append(p); err != nil {
				j.Close()
				return nil, nil, err
			}
			if opts.Observer != nil {
				var v Visit
				if uerr := json.Unmarshal(p, &v); uerr != nil {
					j.Close()
					return nil, nil, fmt.Errorf("dataset: replaying salvaged record: %w", uerr)
				}
				opts.Observer.ObserveVisit(&v)
			}
		}
		w.noteCompleted(g.rank, g.site)
	}
	if err := w.checkpoint(); err != nil {
		j.Close()
		return nil, nil, err
	}

	reg := opts.Metrics
	reg.Add("dataset_records_salvaged_total", st.RecordsKept)
	reg.Add("dataset_records_dropped_total", st.RecordsDropped)
	reg.Add("dataset_truncated_bytes_total", st.TruncatedBytes)
	if st.Truncated {
		reg.Add("dataset_torn_tails_total", 1)
	}
	return w, st, nil
}

// Write appends one visit record. Durable at the next checkpoint.
func (w *JournalWriter) Write(v *Visit) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dataset: encoding visit %q: %w", v.Site, err)
	}
	if err := w.j.Append(payload); err != nil {
		return err
	}
	if w.opts.Observer != nil {
		w.opts.Observer.ObserveVisit(v)
	}
	return nil
}

// Count returns the total record count, including records salvaged or
// committed before this run.
func (w *JournalWriter) Count() int { return int(w.j.Records()) }

// Watermark returns the current completed-site watermark.
func (w *JournalWriter) Watermark() (rank int, site string) {
	return w.watermarkRank, w.watermarkSite
}

// SiteCompleted records that a site's full record group has been
// written, advances the watermark, and checkpoints every
// CheckpointEvery completed sites.
func (w *JournalWriter) SiteCompleted(rank int, site string) error {
	w.noteCompleted(rank, site)
	w.sinceCkpt++
	if w.sinceCkpt >= w.opts.every() {
		return w.checkpoint()
	}
	return nil
}

func (w *JournalWriter) noteCompleted(rank int, site string) {
	w.sites++
	w.done[rank] = site
	skip := w.opts.Skip
	for {
		if s, ok := w.done[w.watermarkRank+1]; ok {
			w.watermarkRank++
			w.watermarkSite = s
			delete(w.done, w.watermarkRank)
			continue
		}
		if skip != nil && skip(w.watermarkRank+1) {
			w.watermarkRank++
			continue
		}
		return
	}
}

// checkpoint commits buffered records and atomically rewrites the
// manifest to the new committed state.
func (w *JournalWriter) checkpoint() error {
	ck, err := w.j.Sync()
	if err != nil {
		return err
	}
	m := &durable.Manifest{
		Offset:        ck.Offset,
		Records:       ck.Records,
		PayloadCRC:    ck.PayloadCRC,
		WatermarkRank: w.watermarkRank,
		WatermarkSite: w.watermarkSite,
		Sites:         w.sites,
		Shard:         w.opts.Shard,
	}
	// The manifest is authoritative: transient faults get a bounded,
	// virtual-clock retry (each attempt restages through a fresh temp
	// file), and a persistent failure aborts the campaign — the previous
	// manifest is intact, so the last checkpoint still resumes.
	if err := w.opts.Durable.Retry.Do("manifest", func() error {
		return m.StoreFS(w.opts.Durable.FS, w.path)
	}); err != nil {
		return err
	}
	// The frame index is written after the manifest, so it only ever
	// lags the committed state — a crash between the two leaves an index
	// missing the newest boundary, never one pointing past the commit.
	// It is an accelerator: a store failure degrades readers to a full
	// scan, it never fails the checkpoint.
	w.fidx.Append(durable.FrameEntry{Offset: ck.Offset, Records: ck.Records, Rank: w.watermarkRank})
	if err := w.opts.Durable.Retry.Do("frame-index", func() error {
		return w.fidx.StoreFS(w.opts.Durable.FS, w.path)
	}); err != nil {
		w.opts.Metrics.Add("storage_accelerator_write_failures_total", 1, "artifact", "frame-index")
	}
	if w.opts.Observer != nil {
		if err := w.opts.Observer.ObserveCheckpoint(ck); err != nil {
			return err
		}
	}
	w.sinceCkpt = 0
	w.opts.Metrics.Add("dataset_checkpoints_written_total", 1)
	return nil
}

// Flush writes a final checkpoint; the crawler calls it once at the end
// of a campaign (or of a drain).
func (w *JournalWriter) Flush() error { return w.checkpoint() }

// Abort closes the journal without flushing or checkpointing — what a
// kill -9 leaves behind. Test harnesses use it to stand in for process
// death after an injected crash.
func (w *JournalWriter) Abort() error { return w.j.Abort() }

// Close flushes a final checkpoint and closes the journal file.
func (w *JournalWriter) Close() error {
	if err := w.checkpoint(); err != nil {
		w.j.Close()
		return err
	}
	return w.j.Close()
}
