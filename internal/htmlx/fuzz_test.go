package htmlx

import "testing"

// FuzzParse verifies the parser never panics or hangs on arbitrary
// input; the seed corpus covers every construct the synthetic web emits.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<html><body><p>hi</p></body></html>",
		`<script src="http://x.com/a.js"></script>`,
		`<script>if (1<2) { document.browsingTopics(); }</script>`,
		`<iframe browsingtopics src=http://a.com/f></iframe>`,
		`<div id="privacy-banner"><button>Accept all</button></div>`,
		"<!-- comment --><!DOCTYPE html><img src=/a.png>",
		"<div", "</div>", "<div attr='unclosed", "<a b=c d>x",
		"<p>&amp;&lt;&gt;&quot;&#39;&nbsp;</p>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			input = input[:1<<16]
		}
		doc := Parse(input)
		if doc == nil {
			t.Fatal("Parse returned nil")
		}
		// Derived operations must not panic either.
		doc.InnerText()
		doc.FindAll("script")
		doc.FindByID("x")
	})
}
