package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasicTree(t *testing.T) {
	doc := Parse(`<!DOCTYPE html>
<html>
<head><title>Hello</title></head>
<body>
  <div id="main" class="wrap">
    <p>Some <b>bold</b> text</p>
  </div>
</body>
</html>`)
	html := doc.FindAll("html")
	if len(html) != 1 {
		t.Fatalf("html elements = %d", len(html))
	}
	if got := doc.FindAll("p"); len(got) != 1 {
		t.Fatalf("p elements = %d", len(got))
	}
	div := doc.FindByID("main")
	if div == nil || div.Tag != "div" {
		t.Fatal("FindByID failed")
	}
	if v, _ := div.Attr("class"); v != "wrap" {
		t.Errorf("class = %q", v)
	}
	if got := div.InnerText(); got != "Some bold text" {
		t.Errorf("InnerText = %q", got)
	}
}

func TestScriptRawBody(t *testing.T) {
	doc := Parse(`<script src="http://x.com/a.js"></script>
<script>
const topics = await document.browsingTopics();
if (1 < 2) { x = "<div>"; }
</script>`)
	scripts := doc.FindAll("script")
	if len(scripts) != 2 {
		t.Fatalf("scripts = %d", len(scripts))
	}
	if src, ok := scripts[0].Attr("src"); !ok || src != "http://x.com/a.js" {
		t.Errorf("src = %q, %v", src, ok)
	}
	if !strings.Contains(scripts[1].Text, "browsingTopics()") {
		t.Errorf("script body = %q", scripts[1].Text)
	}
	if !strings.Contains(scripts[1].Text, `x = "<div>";`) {
		t.Error("raw text parsing broke on embedded markup")
	}
	// Script bodies must not leak into InnerText.
	if strings.Contains(doc.InnerText(), "browsingTopics") {
		t.Error("script body leaked into InnerText")
	}
}

func TestBooleanAndUnquotedAttrs(t *testing.T) {
	doc := Parse(`<iframe browsingtopics src=http://adv.com/frame.html width="1"></iframe>`)
	frames := doc.FindAll("iframe")
	if len(frames) != 1 {
		t.Fatal("iframe missing")
	}
	f := frames[0]
	if !f.HasAttr("browsingtopics") {
		t.Error("boolean attribute lost")
	}
	if v, _ := f.Attr("SRC"); v != "http://adv.com/frame.html" {
		t.Errorf("src = %q", v)
	}
	if v, _ := f.Attr("width"); v != "1" {
		t.Errorf("width = %q", v)
	}
}

func TestVoidAndSelfClosing(t *testing.T) {
	doc := Parse(`<div><img src="/a.png"><br><link rel=stylesheet href="/s.css"><span/>text</div>`)
	if len(doc.FindAll("img")) != 1 || len(doc.FindAll("link")) != 1 {
		t.Error("void elements mishandled")
	}
	div := doc.FindAll("div")[0]
	// img, br, link, span, text are all children of div (not nested).
	if len(div.Children) != 5 {
		t.Errorf("div has %d children: %+v", len(div.Children), div.Children)
	}
}

func TestCommentsSkipped(t *testing.T) {
	doc := Parse(`<div><!-- <script src="x"></script> -->visible</div>`)
	if len(doc.FindAll("script")) != 0 {
		t.Error("commented script parsed")
	}
	if got := doc.InnerText(); got != "visible" {
		t.Errorf("InnerText = %q", got)
	}
}

func TestEntities(t *testing.T) {
	doc := Parse(`<p title="a&amp;b">x &lt;tag&gt; &amp; more</p>`)
	p := doc.FindAll("p")[0]
	if v, _ := p.Attr("title"); v != "a&b" {
		t.Errorf("title = %q", v)
	}
	if got := p.InnerText(); got != "x <tag> & more" {
		t.Errorf("InnerText = %q", got)
	}
}

func TestMalformedInputsDoNotHangOrPanic(t *testing.T) {
	inputs := []string{
		"", "<", "<>", "< div>", "<div", "<div attr", `<div attr="unterminated`,
		"</closewithoutopen>", "<div><span></div>", "<!--unclosed",
		"<!doctype", "<script>never closed", strings.Repeat("<div>", 500),
		"<div ===>ok</div>", "<a b=c d>x</a>",
	}
	for _, in := range inputs {
		doc := Parse(in) // must terminate without panicking
		if doc == nil {
			t.Errorf("Parse(%q) = nil", in)
		}
	}
}

func TestNestedIframes(t *testing.T) {
	doc := Parse(`<body>
	  <iframe src="http://a.com/f1"><p>fallback</p></iframe>
	  <div><iframe src="http://b.com/f2"></iframe></div>
	</body>`)
	frames := doc.FindAll("iframe")
	if len(frames) != 2 {
		t.Fatalf("frames = %d", len(frames))
	}
	if s, _ := frames[1].Attr("src"); s != "http://b.com/f2" {
		t.Errorf("frame 2 src = %q", s)
	}
}

// Property: Parse never panics and always terminates on arbitrary input.
func TestParseRobustness(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 4096 {
			s = s[:4096]
		}
		doc := Parse(s)
		return doc != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWalkPrune(t *testing.T) {
	doc := Parse(`<div><section><p>deep</p></section><p>top</p></div>`)
	var tags []string
	doc.Walk(func(n *Node) bool {
		if n.Tag == "section" {
			return false // prune
		}
		if n.Tag != "" {
			tags = append(tags, n.Tag)
		}
		return true
	})
	for _, tag := range tags {
		if tag == "p" {
			// one p is inside section (pruned), one at top level
			return
		}
	}
	t.Errorf("walk with prune visited %v, expected the top-level p", tags)
}

func TestStrayTopLevelEndTagDoesNotTruncate(t *testing.T) {
	doc := Parse(`</div><p>first</p></span><p>second</p>`)
	if got := len(doc.FindAll("p")); got != 2 {
		t.Errorf("stray end tags swallowed content: %d paragraphs", got)
	}
}
