package htmlx

import "strings"

// Walk visits every node in document order; fn returning false prunes
// the subtree.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// FindAll returns every element with the given tag, in document order.
func (n *Node) FindAll(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	n.Walk(func(node *Node) bool {
		if node.Tag == tag {
			out = append(out, node)
		}
		return true
	})
	return out
}

// FindByID returns the first element with the given id attribute.
func (n *Node) FindByID(id string) *Node {
	var found *Node
	n.Walk(func(node *Node) bool {
		if found != nil {
			return false
		}
		if v, ok := node.Attr("id"); ok && v == id {
			found = node
			return false
		}
		return true
	})
	return found
}

// InnerText concatenates all descendant text, normalising whitespace
// runs to single spaces.
func (n *Node) InnerText() string {
	var b strings.Builder
	n.Walk(func(node *Node) bool {
		if node.Tag == "" && node.Text != "" {
			b.WriteString(node.Text)
			b.WriteByte(' ')
		}
		// Script/style raw bodies are not human-visible text.
		return !rawTextElements[node.Tag]
	})
	return strings.Join(strings.Fields(b.String()), " ")
}
