// Package htmlx is a small, dependency-free HTML parser sufficient for
// the emulated browser and the Priv-Accept banner detector: it builds a
// DOM tree exposing tags, attributes and text, and understands the
// constructs the synthetic web uses (scripts with raw bodies, iframes,
// void elements, comments, quoted attributes, boolean attributes such as
// the Topics API's <iframe browsingtopics>).
//
// It is intentionally forgiving, like a browser: unknown constructs are
// skipped, unclosed tags are closed implicitly at EOF, and mismatched
// end tags pop to the nearest matching ancestor.
package htmlx

import (
	"strings"
)

// Node is one DOM node: an element, or a text node (Tag == "" and Text
// set).
type Node struct {
	// Tag is the lowercase element name; empty for text nodes.
	Tag string
	// Attrs holds the element attributes with lowercase names. Boolean
	// attributes map to "".
	Attrs map[string]string
	// Children are the child nodes in document order.
	Children []*Node
	// Text is the content of a text node, or the raw body for script
	// and style elements.
	Text string
}

// Attr returns the value of an attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	v, ok := n.Attrs[strings.ToLower(name)]
	return v, ok
}

// HasAttr reports whether the attribute is present (including boolean
// attributes like "browsingtopics").
func (n *Node) HasAttr(name string) bool {
	_, ok := n.Attrs[strings.ToLower(name)]
	return ok
}

// voidElements never have children.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"source": true, "track": true, "wbr": true,
}

// rawTextElements swallow everything until their end tag.
var rawTextElements = map[string]bool{"script": true, "style": true}

// Parse builds a DOM tree from HTML. The returned node is a synthetic
// root with tag "#document".
func Parse(html string) *Node {
	p := &parser{src: html}
	root := &Node{Tag: "#document"}
	p.parseChildren(root, "")
	return root
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

// parseChildren parses nodes into parent until the matching end tag of
// enclosing (or EOF) is seen.
func (p *parser) parseChildren(parent *Node, enclosing string) {
	for !p.eof() {
		if p.src[p.pos] != '<' {
			text := p.readText()
			if strings.TrimSpace(text) != "" {
				parent.Children = append(parent.Children, &Node{Text: text})
			}
			continue
		}
		// Comment?
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			p.skipComment()
			continue
		}
		// Doctype or other declaration?
		if strings.HasPrefix(p.src[p.pos:], "<!") {
			p.skipUntil('>')
			continue
		}
		// End tag?
		if strings.HasPrefix(p.src[p.pos:], "</") {
			name := p.readEndTag()
			if enclosing == "" {
				// Stray end tag at the top level: browsers drop it and
				// keep parsing.
				continue
			}
			// Matching end tag closes this element; a mismatched one
			// implicitly closes it too (forgiving pop-one behaviour).
			_ = name
			return
		}
		node, selfClosing := p.readStartTag()
		if node == nil {
			continue
		}
		parent.Children = append(parent.Children, node)
		if selfClosing || voidElements[node.Tag] {
			continue
		}
		if rawTextElements[node.Tag] {
			node.Text = p.readRawText(node.Tag)
			continue
		}
		p.parseChildren(node, node.Tag)
	}
}

func (p *parser) readText() string {
	start := p.pos
	for !p.eof() && p.src[p.pos] != '<' {
		p.pos++
	}
	return decodeEntities(p.src[start:p.pos])
}

func (p *parser) skipComment() {
	end := strings.Index(p.src[p.pos+4:], "-->")
	if end < 0 {
		p.pos = len(p.src)
		return
	}
	p.pos += 4 + end + 3
}

func (p *parser) skipUntil(c byte) {
	for !p.eof() && p.src[p.pos] != c {
		p.pos++
	}
	if !p.eof() {
		p.pos++
	}
}

func (p *parser) readEndTag() string {
	p.pos += 2 // "</"
	start := p.pos
	for !p.eof() && p.src[p.pos] != '>' {
		p.pos++
	}
	name := strings.ToLower(strings.TrimSpace(p.src[start:p.pos]))
	if !p.eof() {
		p.pos++
	}
	return name
}

// readStartTag parses "<tag attr=... >"; returns nil for malformed tags.
func (p *parser) readStartTag() (node *Node, selfClosing bool) {
	p.pos++ // '<'
	start := p.pos
	for !p.eof() && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	name := strings.ToLower(p.src[start:p.pos])
	if name == "" {
		// "<" followed by junk: treat as text, skip the bracket.
		return nil, false
	}
	node = &Node{Tag: name, Attrs: map[string]string{}}
	for {
		p.skipSpace()
		if p.eof() {
			return node, false
		}
		switch p.src[p.pos] {
		case '>':
			p.pos++
			return node, false
		case '/':
			p.pos++
			if !p.eof() && p.src[p.pos] == '>' {
				p.pos++
				return node, true
			}
		default:
			aname, aval := p.readAttr()
			if aname != "" {
				node.Attrs[strings.ToLower(aname)] = aval
			}
		}
	}
}

func (p *parser) readAttr() (string, string) {
	start := p.pos
	for !p.eof() && isAttrNameChar(p.src[p.pos]) {
		p.pos++
	}
	name := p.src[start:p.pos]
	if name == "" {
		p.pos++ // skip junk byte to guarantee progress
		return "", ""
	}
	p.skipSpace()
	if p.eof() || p.src[p.pos] != '=' {
		return name, "" // boolean attribute
	}
	p.pos++ // '='
	p.skipSpace()
	if p.eof() {
		return name, ""
	}
	switch q := p.src[p.pos]; q {
	case '"', '\'':
		p.pos++
		vstart := p.pos
		for !p.eof() && p.src[p.pos] != q {
			p.pos++
		}
		val := p.src[vstart:p.pos]
		if !p.eof() {
			p.pos++
		}
		return name, decodeEntities(val)
	default:
		vstart := p.pos
		for !p.eof() && !isSpace(p.src[p.pos]) && p.src[p.pos] != '>' {
			p.pos++
		}
		return name, decodeEntities(p.src[vstart:p.pos])
	}
}

// readRawText consumes until </tag>.
func (p *parser) readRawText(tag string) string {
	closing := "</" + tag
	rest := p.src[p.pos:]
	idx := strings.Index(strings.ToLower(rest), closing)
	if idx < 0 {
		p.pos = len(p.src)
		return rest
	}
	body := rest[:idx]
	p.pos += idx
	p.readEndTag()
	return body
}

func (p *parser) skipSpace() {
	for !p.eof() && isSpace(p.src[p.pos]) {
		p.pos++
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_'
}

func isAttrNameChar(c byte) bool {
	return isNameChar(c) || c == ':'
}

var entityReplacer = strings.NewReplacer(
	"&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`, "&#39;", "'", "&nbsp;", " ",
)

func decodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return entityReplacer.Replace(s)
}
