// Package webserver serves the synthetic web of internal/webworld over
// real HTTP: every hostname of the world (ranked sites, sister domains,
// ad platforms, CMPs, Google Tag Manager, long-tail third parties) is
// virtual-hosted by one handler that dispatches on the Host header.
//
// The crawler talks to this server through a transport that routes every
// hostname to the listener (see Transport), so the full network path —
// TCP, HTTP, HTML, subresource fetches, redirects, cookies, the
// Sec-Browsing-Topics / Observe-Browsing-Topics headers — is exercised
// exactly as against the live web.
package webserver

import (
	"fmt"
	"hash/fnv"

	"github.com/netmeasure/topicscope/internal/adcatalog"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// ConsentCookie is the cookie a site sets once the user accepts its
// privacy policy; its presence switches rendering to the After-Accept
// state.
const ConsentCookie = "consent"

// ObserveHeader is the Topics API response header a caller sets to
// record the page visit in the browser's topics history.
const ObserveHeader = "Observe-Browsing-Topics"

// TopicsRequestHeader carries the topics on fetch/iframe calls.
const TopicsRequestHeader = "Sec-Browsing-Topics"

// VirtualTimeHeader lets the emulated browser pin each request to its
// visit's virtual time; A/B-test slot decisions use it when present.
// Simulation plumbing only — see internal/browser.
const VirtualTimeHeader = "X-Topicscope-Time"

// VantageHeader declares the visitor's jurisdiction (the simulation's
// geo-IP): sites geo-fence GDPR banners and ad gating on it.
const VantageHeader = "X-Topicscope-Vantage"

// Server renders the world.
type Server struct {
	World *webworld.World
	// Now supplies virtual time for A/B-test slot decisions; defaults to
	// time.Now.
	Now func() time.Time

	metrics Metrics

	// pages caches rendered landing pages by (site, consent, vantage).
	// A site's page is a pure function of those three — the world is
	// immutable once generated — so a double crawl renders each page
	// variant once instead of millions of times. A plain map behind an
	// RWMutex (rather than sync.Map) keeps the steady-state hit path
	// allocation-free: sync.Map.Load boxes the struct key into an
	// interface on every call. Values are []byte so the response write
	// needs no string→[]byte copy either.
	pagesMu sync.RWMutex
	pages   map[pageKey][]byte
}

// contentTypeHTML is a shared pre-built header value: assigning it into
// the response header map avoids the per-request single-element slice
// allocation of Header().Set. Shared values must never be mutated.
var contentTypeHTML = []string{"text/html; charset=utf-8"}

// pageKey identifies one cached rendering of a site's landing page.
type pageKey struct {
	domain    string
	consented bool
	eu        bool
}

// cachedSitePage returns the memoized landing page, rendering on miss.
// The returned bytes are shared and must not be mutated.
//
//topicslint:hotpath zeroalloc
func (s *Server) cachedSitePage(site *webworld.Site, host string, consented, eu bool) []byte {
	key := pageKey{domain: site.Domain, consented: consented, eu: eu}
	s.pagesMu.RLock()
	page, ok := s.pages[key]
	s.pagesMu.RUnlock()
	if ok {
		return page
	}
	//topicslint:ignore hotpath cache-miss render runs once per (site, consent, vantage) key, every later request hits the byte-slice cache
	rendered := []byte(s.sitePage(site, host, consented, eu))
	s.pagesMu.Lock()
	if page, ok = s.pages[key]; ok {
		// Lost the render race; keep the first stored copy so every
		// caller shares one buffer.
		rendered = page
	} else {
		s.pages[key] = rendered
	}
	s.pagesMu.Unlock()
	return rendered
}

// New builds a Server over a world.
func New(w *webworld.World, now func() time.Time) *Server {
	if now == nil {
		now = time.Now
	}
	return &Server{World: w, Now: now, pages: make(map[pageKey][]byte)}
}

// ServeHTTP dispatches on the Host header.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	host := etld.Normalize(r.Host)
	kind := s.World.Classify(host)
	s.metrics.observe(kind)
	switch kind {
	case webworld.HostSite, webworld.HostSister:
		// A first party may double as a calling party (distillery.com,
		// §2.4): platform endpoints win on their dedicated paths.
		if p, ok := s.World.Catalog.ByDomain(host); ok && isPlatformPath(r.URL.Path) {
			s.servePlatform(w, r, p, host)
			return
		}
		site, _ := s.World.SiteByDomain(host)
		s.serveSite(w, r, site, host)
	case webworld.HostPlatform:
		p, _ := s.World.Catalog.ByDomain(host)
		s.servePlatform(w, r, p, host)
	case webworld.HostCMP:
		s.serveCMP(w, r)
	case webworld.HostGTM:
		s.serveGTM(w, r)
	case webworld.HostLongTail:
		s.serveLongTail(w, r)
	default:
		http.NotFound(w, r)
	}
}

// isPlatformPath reports whether the path belongs to the ad-platform
// endpoint set.
func isPlatformPath(path string) bool {
	switch path {
	case "/tag.js", "/topics-frame.html", "/ad.html", "/t", attestation.WellKnownPath:
		return true
	}
	return false
}

// requestNow resolves the effective time of a request: the browser's
// virtual timestamp when supplied, the server clock otherwise.
func (s *Server) requestNow(r *http.Request) time.Time {
	if v := r.Header.Get(VirtualTimeHeader); v != "" {
		if t, err := time.Parse(time.RFC3339Nano, v); err == nil {
			return t
		}
	}
	return s.Now()
}

// euVisitor reports whether the request comes from an EU vantage (the
// default when the header is absent — the paper's setup). Non-EU
// visitors are geo-fenced out of GDPR banners by most non-EU sites.
func euVisitor(r *http.Request) bool {
	v := r.Header.Get(VantageHeader)
	return v == "" || v == "eu"
}

// consentToken is the exact cookie pair the emulated browser sends once
// consent is granted.
const consentToken = ConsentCookie + "=1"

// hasConsent reports whether the request carries the site's consent
// cookie. It scans the raw Cookie header instead of r.Cookie — the
// net/http cookie parser allocates a *Cookie per call, and this check
// runs on every landing-page request.
//
//topicslint:hotpath zeroalloc
func hasConsent(r *http.Request) bool {
	c := r.Header.Get("Cookie")
	for c != "" {
		var part string
		if i := strings.IndexByte(c, ';'); i >= 0 {
			part, c = c[:i], c[i+1:]
		} else {
			part, c = c, ""
		}
		for len(part) > 0 && part[0] == ' ' {
			part = part[1:]
		}
		if part == consentToken {
			return true
		}
	}
	return false
}

// refererHost extracts the embedding page's host from the Referer
// header; third-party endpoints use it to know which site they are
// embedded on, as real tags do.
func refererHost(r *http.Request) string {
	ref := r.Header.Get("Referer")
	if ref == "" {
		return ""
	}
	rest, ok := strings.CutPrefix(ref, "http://")
	if !ok {
		rest, ok = strings.CutPrefix(ref, "https://")
		if !ok {
			return ""
		}
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return etld.Normalize(rest)
}

// serveSite renders a ranked website (or its sister domain).
func (s *Server) serveSite(w http.ResponseWriter, r *http.Request, site *webworld.Site, host string) {
	// The ranked domain 301-redirects to its sister when configured.
	if site.RedirectTo != "" && host == site.Domain {
		// Scheme-relative Location keeps the redirect valid over both
		// HTTP and HTTPS deployments.
		target := "//" + site.RedirectTo + r.URL.Path
		http.Redirect(w, r, target, http.StatusMovedPermanently)
		return
	}
	switch {
	case r.URL.Path == "/":
		// The landing page is the serving path's hottest endpoint:
		// assign a shared (never-mutated) header slice and write the
		// cached bytes directly — Header().Set and fmt.Fprint of a
		// string each allocate per request.
		w.Header()["Content-Type"] = contentTypeHTML
		w.Write(s.cachedSitePage(site, host, hasConsent(r), euVisitor(r)))
	case strings.HasPrefix(r.URL.Path, "/static/"):
		serveStatic(w, r.URL.Path)
	case r.URL.Path == "/js/ads-lib.js":
		// The non-GTM first-party library with a root-context
		// browsingTopics() call (§4's remaining anomalous sites).
		w.Header().Set("Content-Type", "application/javascript")
		if site.OtherLibTopicsCall {
			fmt.Fprintln(w, "// legacy ads helper")
			fmt.Fprintln(w, "#ts call")
		} else {
			fmt.Fprintln(w, "// ads helper (inert)")
		}
	case r.URL.Path == "/privacy":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<html><body><h1>Privacy policy of %s</h1></body></html>", host)
	default:
		http.NotFound(w, r)
	}
}

// servePlatform renders an ad platform's endpoints.
func (s *Server) servePlatform(w http.ResponseWriter, r *http.Request, p *adcatalog.Platform, host string) {
	switch r.URL.Path {
	case "/tag.js":
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprint(w, s.platformTag(p, refererHost(r), s.requestNow(r)))
	case "/topics-frame.html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, s.topicsFrame(p))
	case "/ad.html":
		// Target of <iframe browsingtopics>: acknowledge observation.
		if r.Header.Get(TopicsRequestHeader) != "" {
			w.Header().Set(ObserveHeader, "?1")
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<html><body><p>ad by %s</p></body></html>", host)
	case "/t":
		// Fetch-call endpoint: topics arrive in the request header; the
		// response asks the browser to record the observation.
		if r.Header.Get(TopicsRequestHeader) != "" {
			w.Header().Set(ObserveHeader, "?1")
		}
		w.WriteHeader(http.StatusNoContent)
	case "/px.gif":
		servePixel(w)
	case attestation.WellKnownPath:
		s.serveAttestation(w, p)
	default:
		http.NotFound(w, r)
	}
}

// serveCMP serves consent-management assets; their presence on a page is
// how the analysis fingerprints the CMP (Figure 7).
func (s *Server) serveCMP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/consent.js":
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprintln(w, "// consent management platform loader")
	case "/banner.css":
		w.Header().Set("Content-Type", "text/css")
		fmt.Fprintln(w, ".cookie-banner{position:fixed;bottom:0}")
	default:
		http.NotFound(w, r)
	}
}

// serveGTM serves the Google Tag Manager container. The container body
// depends on the embedding site's configuration (§4: GTM "contains a
// call to the browsingTopics() function") and is executed by the browser
// in the page's root context — the origin confusion of Figure 4.
func (s *Server) serveGTM(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/gtm.js" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/javascript")
	site, ok := s.World.SiteByDomain(refererHost(r))
	if !ok || !site.HasGTM {
		fmt.Fprintln(w, "// gtm container (inert)")
		return
	}
	fmt.Fprintln(w, "// gtm container", r.URL.Query().Get("id"))
	fmt.Fprintln(w, "#ts fetch url=//"+webworld.GTMDomain+"/px.gif")
	if site.GTMTopicsCall {
		directive := "#ts call"
		if site.GTMConsentMode {
			directive = "#ts if-consent call"
		}
		fmt.Fprintln(w, directive)
		// Containers with several topics-reaching tags call more than
		// once per page; the paper counts 3,450 anomalous calls from
		// 2,614 CPs (§2.2: "possible multiple calls from the same CP on
		// the same webpage").
		if gtmDoubleCall(site.Domain) {
			fmt.Fprintln(w, directive)
		}
	}
}

func (s *Server) serveLongTail(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasSuffix(r.URL.Path, ".js"):
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprintln(w, "// third-party widget")
	case strings.HasSuffix(r.URL.Path, ".gif"):
		servePixel(w)
	default:
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	}
}

// gtmDoubleCall deterministically marks ≈30% of containers as reaching
// the browsingTopics() call twice.
func gtmDoubleCall(domain string) bool {
	h := fnv.New32a()
	h.Write([]byte(domain))
	return h.Sum32()%10 < 3
}

func serveStatic(w http.ResponseWriter, path string) {
	switch {
	case strings.HasSuffix(path, ".css"):
		w.Header().Set("Content-Type", "text/css")
		fmt.Fprintln(w, "body{margin:0}")
	case strings.HasSuffix(path, ".js"):
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprintln(w, "// site script")
	default:
		servePixel(w)
	}
}

func servePixel(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "image/gif")
	// Minimal 1x1 transparent GIF.
	w.Write([]byte("GIF89a\x01\x00\x01\x00\x80\x00\x00\x00\x00\x00\x00\x00\x00!\xf9\x04\x01\x00\x00\x00\x00,\x00\x00\x00\x00\x01\x00\x01\x00\x00\x02\x02D\x01\x00;"))
}
