package webserver

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"github.com/netmeasure/topicscope/internal/webworld"
)

// discardWriter is a reusable ResponseWriter that keeps one header map
// alive across requests — the shape the load harness drives the server
// with, so the alloc measurements below see only the server's own work.
type discardWriter struct {
	h      http.Header
	status int
	bytes  int
}

func (w *discardWriter) Header() http.Header { return w.h }
func (w *discardWriter) Write(p []byte) (int, error) {
	w.bytes += len(p)
	return len(p), nil
}
func (w *discardWriter) WriteHeader(code int) { w.status = code }

// TestServeSitePageZeroAlloc is the tentpole's page-render target: with
// a warm page cache, answering a landing-page request allocates
// nothing — no cookie parsing, no header slice, no string copy of the
// cached page.
func TestServeSitePageZeroAlloc(t *testing.T) {
	srv := New(testWorld, testClock)
	site := pickSite(t, func(s *webworld.Site) bool { return s.RedirectTo == "" })

	req := &http.Request{
		Method: "GET",
		Host:   site.Domain,
		URL:    &url.URL{Path: "/"},
		Header: http.Header{"Cookie": []string{consentToken}},
	}
	w := &discardWriter{h: make(http.Header)}
	srv.ServeHTTP(w, req) // warm the page cache and header map
	if w.bytes == 0 {
		t.Fatal("warm-up request wrote no body")
	}

	allocs := testing.AllocsPerRun(200, func() {
		w.bytes = 0
		srv.ServeHTTP(w, req)
	})
	if allocs != 0 {
		t.Errorf("landing-page request allocs/op = %g, want 0", allocs)
	}
}

// TestHasConsentMatchesCookieParser pins the zero-alloc header scan to
// net/http's parser across the cookie shapes the emulated browser and
// real clients produce.
func TestHasConsentMatchesCookieParser(t *testing.T) {
	cases := []string{
		"",
		"consent=1",
		"consent=0",
		"consent=11",
		"a=b; consent=1",
		"consent=1; a=b",
		"a=b;  consent=1;c=d",
		"notconsent=1",
		"consent=",
		"a=consent=1",
	}
	for _, c := range cases {
		r := &http.Request{Header: http.Header{}}
		if c != "" {
			r.Header.Set("Cookie", c)
		}
		want := false
		if ck, err := r.Cookie(ConsentCookie); err == nil && ck.Value == "1" {
			want = true
		}
		if got := hasConsent(r); got != want {
			t.Errorf("hasConsent(%q) = %v, net/http parser says %v", c, got, want)
		}
	}
}

// TestPageCacheConcurrentServe exercises the RWMutex page cache through
// the public handler from many goroutines (run under -race by
// race-core): mixed consent/vantage variants against overlapping sites.
func TestPageCacheConcurrentServe(t *testing.T) {
	srv := New(testWorld, testClock)
	var sites []*webworld.Site
	for _, s := range testWorld.Sites {
		if s.Reachable && s.RedirectTo == "" {
			sites = append(sites, s)
			if len(sites) == 16 {
				break
			}
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				site := sites[(g+i)%len(sites)]
				req := httptest.NewRequest("GET", "http://"+site.Domain+"/", nil)
				if i%2 == 0 {
					req.Header.Set("Cookie", consentToken)
				}
				if i%3 == 0 {
					req.Header.Set(VantageHeader, "us")
				}
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
					t.Errorf("site %s: status %d, %d bytes", site.Domain, rec.Code, rec.Body.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
