package webserver

import (
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"

	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// Metrics counts served requests per host kind, for topics-serve
// observability.
type Metrics struct {
	counts [webworld.HostLongTail + 1]atomic.Int64
}

func (m *Metrics) observe(kind webworld.HostKind) {
	if int(kind) < len(m.counts) {
		m.counts[kind].Add(1)
	}
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Sites, Sisters, Platforms, CMPs, GTM, LongTail, Unknown int64
}

// Total sums all requests.
func (s Snapshot) Total() int64 {
	return s.Sites + s.Sisters + s.Platforms + s.CMPs + s.GTM + s.LongTail + s.Unknown
}

// String renders a one-line summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("requests total=%d sites=%d sisters=%d platforms=%d cmps=%d gtm=%d longtail=%d unknown=%d",
		s.Total(), s.Sites, s.Sisters, s.Platforms, s.CMPs, s.GTM, s.LongTail, s.Unknown)
}

// MetricsPath is the debug endpoint topics-serve exposes.
const MetricsPath = "/__metrics"

// MetricsHandler renders the server's request counters — plus the
// chaos injector's when one is attached, plus an obs registry's crawl
// counters and latency summaries when one is shared — in the
// Prometheus text exposition format. chaosStats and reg may be nil.
func MetricsHandler(s *Server, chaosStats *chaos.Stats, reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		defer reg.WriteProm(w) //nolint:errcheck // best-effort debug endpoint
		snap := s.Metrics()
		fmt.Fprintln(w, "# HELP topicscope_requests_total Requests served, by host kind.")
		fmt.Fprintln(w, "# TYPE topicscope_requests_total counter")
		for _, kv := range []struct {
			kind string
			n    int64
		}{
			{"site", snap.Sites},
			{"sister", snap.Sisters},
			{"platform", snap.Platforms},
			{"cmp", snap.CMPs},
			{"gtm", snap.GTM},
			{"longtail", snap.LongTail},
			{"unknown", snap.Unknown},
		} {
			fmt.Fprintf(w, "topicscope_requests_total{kind=%q} %d\n", kv.kind, kv.n)
		}
		if chaosStats == nil {
			return
		}
		cs := chaosStats.Snapshot()
		fmt.Fprintln(w, "# HELP topicscope_chaos_requests_total Requests seen by the fault injector.")
		fmt.Fprintln(w, "# TYPE topicscope_chaos_requests_total counter")
		fmt.Fprintf(w, "topicscope_chaos_requests_total %d\n", cs.Requests)
		fmt.Fprintln(w, "# HELP topicscope_chaos_delayed_total Requests with injected latency under the timeout budget.")
		fmt.Fprintln(w, "# TYPE topicscope_chaos_delayed_total counter")
		fmt.Fprintf(w, "topicscope_chaos_delayed_total %d\n", cs.Delayed)
		fmt.Fprintln(w, "# HELP topicscope_chaos_injected_total Injected faults, by taxonomy class.")
		fmt.Fprintln(w, "# TYPE topicscope_chaos_injected_total counter")
		classes := make([]string, 0, len(cs.Injected))
		for c := range cs.Injected {
			classes = append(classes, string(c))
		}
		sort.Strings(classes)
		for _, c := range classes {
			fmt.Fprintf(w, "topicscope_chaos_injected_total{class=%q} %d\n", c, cs.Injected[chaos.Class(c)])
		}
	})
}

// Metrics returns the current counters.
func (s *Server) Metrics() Snapshot {
	m := &s.metrics
	return Snapshot{
		Sites:     m.counts[webworld.HostSite].Load(),
		Sisters:   m.counts[webworld.HostSister].Load(),
		Platforms: m.counts[webworld.HostPlatform].Load(),
		CMPs:      m.counts[webworld.HostCMP].Load(),
		GTM:       m.counts[webworld.HostGTM].Load(),
		LongTail:  m.counts[webworld.HostLongTail].Load(),
		Unknown:   m.counts[webworld.HostUnknown].Load(),
	}
}
