package webserver

import (
	"fmt"
	"sync/atomic"

	"github.com/netmeasure/topicscope/internal/webworld"
)

// Metrics counts served requests per host kind, for topics-serve
// observability.
type Metrics struct {
	counts [webworld.HostLongTail + 1]atomic.Int64
}

func (m *Metrics) observe(kind webworld.HostKind) {
	if int(kind) < len(m.counts) {
		m.counts[kind].Add(1)
	}
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Sites, Sisters, Platforms, CMPs, GTM, LongTail, Unknown int64
}

// Total sums all requests.
func (s Snapshot) Total() int64 {
	return s.Sites + s.Sisters + s.Platforms + s.CMPs + s.GTM + s.LongTail + s.Unknown
}

// String renders a one-line summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("requests total=%d sites=%d sisters=%d platforms=%d cmps=%d gtm=%d longtail=%d unknown=%d",
		s.Total(), s.Sites, s.Sisters, s.Platforms, s.CMPs, s.GTM, s.LongTail, s.Unknown)
}

// Metrics returns the current counters.
func (s *Server) Metrics() Snapshot {
	m := &s.metrics
	return Snapshot{
		Sites:     m.counts[webworld.HostSite].Load(),
		Sisters:   m.counts[webworld.HostSister].Load(),
		Platforms: m.counts[webworld.HostPlatform].Load(),
		CMPs:      m.counts[webworld.HostCMP].Load(),
		GTM:       m.counts[webworld.HostGTM].Load(),
		LongTail:  m.counts[webworld.HostLongTail].Load(),
		Unknown:   m.counts[webworld.HostUnknown].Load(),
	}
}
