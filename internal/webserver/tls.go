package webserver

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// CertAuthority is an in-memory certificate authority that mints a leaf
// certificate for every hostname of the synthetic web on demand — the
// moral equivalent of the interception proxies real crawling rigs use.
// Serving the world over TLS also upgrades the crawl to HTTP/2 via ALPN.
type CertAuthority struct {
	caCert *x509.Certificate
	caKey  *ecdsa.PrivateKey
	caPEM  *x509.CertPool

	mu    sync.Mutex
	leafs map[string]*tls.Certificate
}

// NewCertAuthority creates a fresh CA. notBefore anchors validity so
// virtual-time crawls verify; pass the zero value for "now".
func NewCertAuthority(notBefore time.Time) (*CertAuthority, error) {
	if notBefore.IsZero() {
		notBefore = time.Now()
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("webserver: generating CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "topicscope synthetic-web CA"},
		NotBefore:             notBefore.Add(-time.Hour),
		NotAfter:              notBefore.AddDate(10, 0, 0),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("webserver: creating CA cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("webserver: parsing CA cert: %w", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &CertAuthority{
		caCert: cert,
		caKey:  key,
		caPEM:  pool,
		leafs:  make(map[string]*tls.Certificate),
	}, nil
}

// Pool returns the trust pool containing the CA, for client configs.
func (ca *CertAuthority) Pool() *x509.CertPool { return ca.caPEM }

// leafFor mints (and caches) a certificate for one hostname.
func (ca *CertAuthority) leafFor(host string) (*tls.Certificate, error) {
	host = etld.Normalize(host)
	if host == "" {
		return nil, fmt.Errorf("webserver: empty SNI")
	}
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if leaf, ok := ca.leafs[host]; ok {
		return leaf, nil
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("webserver: generating leaf key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(int64(len(ca.leafs) + 2)),
		Subject:      pkix.Name{CommonName: host},
		DNSNames:     []string{host},
		NotBefore:    ca.caCert.NotBefore,
		NotAfter:     ca.caCert.NotAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.caCert, &key.PublicKey, ca.caKey)
	if err != nil {
		return nil, fmt.Errorf("webserver: signing leaf for %s: %w", host, err)
	}
	leaf := &tls.Certificate{Certificate: [][]byte{der, ca.caCert.Raw}, PrivateKey: key}
	ca.leafs[host] = leaf
	return leaf, nil
}

// TLSConfig returns a server-side TLS config that answers any SNI with a
// freshly minted certificate for that exact hostname.
func (ca *CertAuthority) TLSConfig() *tls.Config {
	return &tls.Config{
		GetCertificate: func(hello *tls.ClientHelloInfo) (*tls.Certificate, error) {
			return ca.leafFor(hello.ServerName)
		},
		NextProtos: []string{"h2", "http/1.1"},
	}
}

// ListenTLS starts a TLS listener for the server on addr and returns the
// listener plus the CA whose pool clients must trust.
func (s *Server) ListenTLS(addr string) (net.Listener, *CertAuthority, error) {
	ca, err := NewCertAuthority(s.Now())
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("webserver: listening on %s: %w", addr, err)
	}
	return tls.NewListener(ln, ca.TLSConfig()), ca, nil
}

// NewTLSClient returns a client that dials every hostname to addr over
// TLS with correct SNI and verification against the CA — the HTTPS
// variant of NewTCPClient. HTTP/2 is negotiated via ALPN.
func NewTLSClient(w *webworld.World, addr string, ca *CertAuthority, timeout time.Duration) *http.Client {
	dialer := &net.Dialer{Timeout: timeout}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			return dialer.DialContext(ctx, network, addr)
		},
		TLSClientConfig:     &tls.Config{RootCAs: ca.Pool()},
		ForceAttemptHTTP2:   true,
		MaxIdleConnsPerHost: 64,
	}
	return &http.Client{
		Transport: &failingTransport{world: w, next: transport},
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
		Timeout: timeout,
	}
}

// CertPEM returns the CA certificate PEM, for handing to out-of-process
// crawlers (topics-serve -tls writes it; topics-crawl -ca-cert trusts
// it).
func (ca *CertAuthority) CertPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.caCert.Raw})
}

// NewTLSClientFromPEM builds the HTTPS crawl client from a CA
// certificate PEM instead of an in-process CA.
func NewTLSClientFromPEM(w *webworld.World, addr string, caPEM []byte, timeout time.Duration) (*http.Client, error) {
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(caPEM) {
		return nil, fmt.Errorf("webserver: no certificate in CA PEM")
	}
	dialer := &net.Dialer{Timeout: timeout}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			return dialer.DialContext(ctx, network, addr)
		},
		TLSClientConfig:     &tls.Config{RootCAs: pool},
		ForceAttemptHTTP2:   true,
		MaxIdleConnsPerHost: 64,
	}
	return &http.Client{
		Transport: &failingTransport{world: w, next: transport},
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
		Timeout: timeout,
	}, nil
}
