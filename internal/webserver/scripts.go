package webserver

import (
	"fmt"
	"strings"
	"time"

	"github.com/netmeasure/topicscope/internal/adcatalog"
	"github.com/netmeasure/topicscope/internal/dataset"
)

// platformTag renders an ad platform's bootstrap script for the page
// identified by siteHost (from the Referer header). The platform decides
// server-side — as real ad tech does — whether this (site, time slot)
// cell of its A/B test has the Topics integration enabled (Figure 3),
// and emits the corresponding integration style:
//
//   - JavaScript: open a same-platform iframe whose script calls
//     document.browsingTopics() — the only way a third party can issue a
//     JS call under its own origin (Figure 4);
//   - Fetch: fetch(platformURL, {browsingTopics: true});
//   - IFrame: <iframe browsingtopics src=platformURL>.
//
// Consent-aware platforms guard the integration with if-consent, which
// the browser evaluates against the page's consent state (the client-side
// TCF check of real tags); the rest call regardless — the questionable
// behaviour of Figure 5.
func (s *Server) platformTag(p *adcatalog.Platform, siteHost string, now time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s tag\n", p.Domain)
	// Presence beacon: lets the crawler see the platform on the page
	// even when the Topics integration is off ("CP present but not
	// called", Figure 2).
	fmt.Fprintf(&b, "#ts fetch url=//%s/px.gif\n", p.Domain)

	if siteHost == "" || !p.CallsTopics || !p.EnabledOn(siteHost, now) {
		return b.String()
	}
	guard := ""
	if p.GuardsConsentOn(siteHost) {
		guard = "if-consent "
	}
	switch p.CallTypeFor(siteHost) {
	case dataset.CallJavaScript:
		fmt.Fprintf(&b, "#ts %siframe src=//%s/topics-frame.html\n", guard, p.Domain)
	case dataset.CallFetch:
		fmt.Fprintf(&b, "#ts %sfetch url=//%s/t topics\n", guard, p.Domain)
	case dataset.CallIframe:
		fmt.Fprintf(&b, "#ts %siframe src=//%s/ad.html browsingtopics\n", guard, p.Domain)
	}
	return b.String()
}

// topicsFrame is the platform-origin iframe whose script performs the
// JavaScript-type call: executed inside the frame, the call's context
// origin is the platform, not the page (Figure 4, correct deployment).
// Consent is enforced at the tag that opens the frame, so the frame
// itself calls unconditionally.
func (s *Server) topicsFrame(p *adcatalog.Platform) string {
	return fmt.Sprintf(`<!DOCTYPE html>
<html><head><title>%s</title></head>
<body>
<script>
// const topicsArray = await document.browsingTopics();
#ts call
</script>
</body></html>
`, p.Domain)
}
