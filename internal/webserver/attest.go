package webserver

import (
	"net/http"

	"github.com/netmeasure/topicscope/internal/adcatalog"
	"github.com/netmeasure/topicscope/internal/attestation"
)

// serveAttestation serves the platform's well-known attestation file, or
// 404 for the enrolled-but-unattested domains Table 1 reports
// ("Allowed & !Attested 12").
func (s *Server) serveAttestation(w http.ResponseWriter, p *adcatalog.Platform) {
	if !p.Attested {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	f := attestation.NewTopicsFile(p.Domain, p.AttestedAt, p.HasEnrollmentSite)
	w.Header().Set("Content-Type", "application/json")
	if err := f.Encode(w); err != nil {
		http.Error(w, "encoding failure", http.StatusInternalServerError)
	}
}
