package webserver

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"time"

	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// UnreachableError simulates the network-level failures a real crawl
// encounters for the world's unreachable sites (§2.4: "domain name
// resolution or connection-related errors").
type UnreachableError struct {
	Host string
	Mode webworld.FailureMode
}

func (e *UnreachableError) Error() string {
	switch e.Mode {
	case webworld.FailDNS:
		return fmt.Sprintf("lookup %s: no such host", e.Host)
	case webworld.FailRefused:
		return fmt.Sprintf("dial tcp %s:80: connection refused", e.Host)
	default:
		return fmt.Sprintf("dial tcp %s:80: i/o timeout", e.Host)
	}
}

// Timeout implements net.Error-style timeout reporting.
func (e *UnreachableError) Timeout() bool { return e.Mode == webworld.FailTimeout }

// ErrorClass maps the failure onto the chaos taxonomy (the interface
// chaos.Classify duck-types on).
func (e *UnreachableError) ErrorClass() string {
	switch e.Mode {
	case webworld.FailDNS:
		return "dns"
	case webworld.FailRefused:
		return "refused"
	default:
		return "timeout"
	}
}

// unreachable checks whether a hostname belongs to an unreachable ranked
// site.
func unreachable(w *webworld.World, host string) *UnreachableError {
	host = etld.Normalize(host)
	site, ok := w.SiteByDomain(host)
	if ok && !site.Reachable {
		return &UnreachableError{Host: host, Mode: site.Failure}
	}
	return nil
}

// Transport is an in-process http.RoundTripper that routes every
// hostname straight into the Server handler — no sockets, suitable for
// large simulated crawls — while reproducing per-site network failures.
type Transport struct {
	Server *Server
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	host := req.URL.Host
	if host == "" {
		host = req.Host
	}
	if err := unreachable(t.Server.World, host); err != nil {
		return nil, err
	}
	rec := httptest.NewRecorder()
	t.Server.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// Client returns an http.Client wired to the server in-process. Redirects
// are followed by the caller (the browser), so the client reports them
// verbatim.
func (s *Server) Client() *http.Client {
	return &http.Client{
		Transport: &Transport{Server: s},
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

// NewTCPClient returns a client that dials every hostname to the given
// listener address (as a crawler pointed at topics-serve would), while
// still simulating per-site network failures locally.
func NewTCPClient(w *webworld.World, addr string, timeout time.Duration) *http.Client {
	dialer := &net.Dialer{Timeout: timeout}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			return dialer.DialContext(ctx, network, addr)
		},
		MaxIdleConnsPerHost: 64,
	}
	return &http.Client{
		Transport: &failingTransport{world: w, next: transport},
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
		Timeout: timeout,
	}
}

// failingTransport injects the world's unreachable-site failures in
// front of a real network transport.
type failingTransport struct {
	world *webworld.World
	next  http.RoundTripper
}

func (t *failingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := unreachable(t.world, req.URL.Host); err != nil {
		return nil, err
	}
	return t.next.RoundTrip(req)
}
