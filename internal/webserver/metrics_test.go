package webserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/webworld"
)

func TestMetricsHandler(t *testing.T) {
	world := webworld.Generate(webworld.Config{Seed: 7, NumSites: 100})
	srv := New(world, testClock)
	client := srv.Client()

	req, _ := http.NewRequest(http.MethodGet, "http://"+world.Sites[0].Domain+"/", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("priming request: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()

	// Without chaos stats: host-kind counters only.
	rec := httptest.NewRecorder()
	MetricsHandler(srv, nil, nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, MetricsPath, nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(body, `topicscope_requests_total{kind="site"} 1`) {
		t.Errorf("site counter missing:\n%s", body)
	}
	if strings.Contains(body, "topicscope_chaos") {
		t.Errorf("chaos metrics rendered without an injector:\n%s", body)
	}

	// With a chaos handler attached, its counters appear too.
	ch := chaos.NewHandler(webworld.DefaultChaos(1), srv)
	for i := 0; i < 20 && i < len(world.Sites); i++ {
		func() {
			defer func() { recover() }() //nolint:errcheck // injected aborts panic
			r := httptest.NewRequest(http.MethodGet, "/", nil)
			r.Host = world.Sites[i].Domain
			ch.ServeHTTP(httptest.NewRecorder(), r)
		}()
	}
	rec = httptest.NewRecorder()
	reg := obs.NewRegistry()
	reg.Add("crawl_visits_total", 2, "phase", "before_accept", "outcome", "ok")
	MetricsHandler(srv, ch.Stats(), reg).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, MetricsPath, nil))
	body = rec.Body.String()
	if !strings.Contains(body, "topicscope_chaos_requests_total 20") {
		t.Errorf("chaos request counter missing:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE topicscope_chaos_injected_total counter") {
		t.Errorf("chaos injected type line missing:\n%s", body)
	}
	if !strings.Contains(body, `crawl_visits_total{outcome="ok",phase="before_accept"} 2`) {
		t.Errorf("obs registry counters missing:\n%s", body)
	}
}
