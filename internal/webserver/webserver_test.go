package webserver

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/privaccept"
	"github.com/netmeasure/topicscope/internal/webworld"
)

var (
	testWorld  = webworld.Generate(webworld.Config{Seed: 42, NumSites: 2000})
	testClock  = func() time.Time { return time.Date(2024, 3, 30, 12, 0, 0, 0, time.UTC) }
	testServer = New(testWorld, testClock)
	testClient = testServer.Client()
)

func get(t *testing.T, url string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := testClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, string(body)
}

// pickSite finds a reachable site matching the predicate.
func pickSite(t *testing.T, pred func(*webworld.Site) bool) *webworld.Site {
	t.Helper()
	for _, s := range testWorld.Sites {
		if s.Reachable && pred(s) {
			return s
		}
	}
	t.Fatal("no site matches predicate")
	return nil
}

func TestSitePageRendersResourcesAndBanner(t *testing.T) {
	site := pickSite(t, func(s *webworld.Site) bool {
		return s.HasBanner && !s.ObscureBanner && s.CMP != "" && s.RedirectTo == "" &&
			(s.Language == "en" || s.Language == "it")
	})
	resp, body := get(t, "http://"+site.Domain+"/", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "privacy-banner") {
		t.Error("banner missing on first visit")
	}
	if !strings.Contains(body, "/static/0.css") {
		t.Error("first-party resources missing")
	}
	word := privaccept.AcceptWords[site.Language][0]
	if !strings.Contains(strings.ToLower(body), word) {
		t.Errorf("accept wording %q missing from banner", word)
	}

	// After consent, the banner disappears.
	_, body2 := get(t, "http://"+site.Domain+"/", map[string]string{"Cookie": "consent=1"})
	if strings.Contains(body2, "privacy-banner") {
		t.Error("banner still present after consent")
	}
}

func TestGatingHidesAdTagsBeforeConsent(t *testing.T) {
	site := pickSite(t, func(s *webworld.Site) bool {
		return s.Gated && len(s.Platforms) > 0 && s.RedirectTo == ""
	})
	_, before := get(t, "http://"+site.Domain+"/", nil)
	if strings.Contains(before, site.Platforms[0]+"/tag.js") {
		t.Error("gated site exposes ad tags before consent")
	}
	_, after := get(t, "http://"+site.Domain+"/", map[string]string{"Cookie": "consent=1"})
	if !strings.Contains(after, site.Platforms[0]+"/tag.js") {
		t.Error("ad tags missing after consent")
	}
}

func TestUngatedSiteServesAdTagsAlways(t *testing.T) {
	site := pickSite(t, func(s *webworld.Site) bool {
		return s.LoadsAdsPreConsent() && len(s.Platforms) > 0 && s.RedirectTo == ""
	})
	_, body := get(t, "http://"+site.Domain+"/", nil)
	if !strings.Contains(body, site.Platforms[0]+"/tag.js") {
		t.Error("ungated site missing ad tags before consent")
	}
}

func TestRedirectToSister(t *testing.T) {
	site := pickSite(t, func(s *webworld.Site) bool { return s.RedirectTo != "" })
	resp, _ := get(t, "http://"+site.Domain+"/", nil)
	if resp.StatusCode != http.StatusMovedPermanently {
		t.Fatalf("status %d, want 301", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if !strings.Contains(loc, site.RedirectTo) {
		t.Errorf("Location = %q, want sister %q", loc, site.RedirectTo)
	}
	resp2, body := get(t, loc, nil)
	if resp2.StatusCode != http.StatusOK || !strings.Contains(body, "<html>") {
		t.Errorf("sister page not served: %d", resp2.StatusCode)
	}
}

func TestGTMContainerContents(t *testing.T) {
	anomalous := pickSite(t, func(s *webworld.Site) bool {
		return s.GTMTopicsCall && !s.GTMConsentMode
	})
	_, body := get(t, "http://"+webworld.GTMDomain+"/gtm.js?id=GTM-X",
		map[string]string{"Referer": "http://" + anomalous.EffectiveDomain() + "/"})
	if !strings.Contains(body, "#ts call") {
		t.Errorf("anomalous GTM container lacks the topics call:\n%s", body)
	}

	deferred := pickSite(t, func(s *webworld.Site) bool {
		return s.GTMTopicsCall && s.GTMConsentMode
	})
	_, body = get(t, "http://"+webworld.GTMDomain+"/gtm.js?id=GTM-X",
		map[string]string{"Referer": "http://" + deferred.EffectiveDomain() + "/"})
	if !strings.Contains(body, "#ts if-consent call") {
		t.Error("consent-mode GTM container must guard the call")
	}

	// Without Referer the container is inert.
	_, body = get(t, "http://"+webworld.GTMDomain+"/gtm.js?id=GTM-X", nil)
	if strings.Contains(body, "#ts call") {
		t.Error("refererless GTM container must be inert")
	}
}

func TestPlatformTagAB(t *testing.T) {
	// criteo calls on 75% of (site, slot) cells; over sites both states
	// must occur, and the tag always carries the presence beacon.
	on, off := 0, 0
	for i, s := range testWorld.Sites {
		if i > 400 {
			break
		}
		_, body := get(t, "http://criteo.com/tag.js",
			map[string]string{"Referer": "http://" + s.Domain + "/"})
		if !strings.Contains(body, "px.gif") {
			t.Fatal("presence beacon missing")
		}
		if strings.Contains(body, "topics-frame.html") || strings.Contains(body, " topics") ||
			strings.Contains(body, "browsingtopics") {
			on++
		} else {
			off++
		}
	}
	if on == 0 || off == 0 {
		t.Errorf("criteo A/B states: on=%d off=%d, want both", on, off)
	}
}

func TestConsentAwarePlatformGuards(t *testing.T) {
	// doubleclick is consent-aware: any emitted integration directive
	// must carry if-consent.
	for i, s := range testWorld.Sites {
		if i > 300 {
			break
		}
		_, body := get(t, "http://doubleclick.net/tag.js",
			map[string]string{"Referer": "http://" + s.Domain + "/"})
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, "#ts ") && !strings.Contains(line, "px.gif") {
				if !strings.Contains(line, "if-consent") {
					t.Fatalf("doubleclick directive without consent guard: %q", line)
				}
			}
		}
	}
}

func TestNeverCallerServesInertTag(t *testing.T) {
	for _, s := range testWorld.Sites[:200] {
		_, body := get(t, "http://google-analytics.com/tag.js",
			map[string]string{"Referer": "http://" + s.Domain + "/"})
		if strings.Contains(body, "call") || strings.Contains(body, "topics") {
			t.Fatalf("google-analytics tag contains a topics integration:\n%s", body)
		}
	}
}

func TestAttestationEndpoint(t *testing.T) {
	resp, body := get(t, "http://criteo.com"+attestation.WellKnownPath, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	f, err := attestation.Parse(strings.NewReader(body))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !f.AttestsTopics() {
		t.Error("criteo attestation does not attest topics")
	}

	// An Allowed & !Attested domain 404s.
	var missing string
	for _, p := range testWorld.Catalog.All() {
		if p.Allowed && !p.Attested {
			missing = p.Domain
			break
		}
	}
	resp, _ = get(t, "http://"+missing+attestation.WellKnownPath, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unattested domain served attestation: %d", resp.StatusCode)
	}
}

func TestTopicsEndpointsSetObserveHeader(t *testing.T) {
	resp, _ := get(t, "http://criteo.com/t",
		map[string]string{TopicsRequestHeader: "(1 2);v=chrome.2"})
	if resp.Header.Get(ObserveHeader) != "?1" {
		t.Error("fetch endpoint did not set Observe-Browsing-Topics")
	}
	resp, _ = get(t, "http://criteo.com/t", nil)
	if resp.Header.Get(ObserveHeader) != "" {
		t.Error("observe header set without topics header")
	}
}

func TestUnreachableSitesFail(t *testing.T) {
	var dead *webworld.Site
	for _, s := range testWorld.Sites {
		if !s.Reachable {
			dead = s
			break
		}
	}
	if dead == nil {
		t.Fatal("no unreachable site in world")
	}
	_, err := testClient.Get("http://" + dead.Domain + "/")
	if err == nil {
		t.Fatal("unreachable site served")
	}
	var ue *UnreachableError
	if !errors.As(err, &ue) {
		t.Errorf("error %v is not UnreachableError", err)
	}
}

func TestUnknownHost404s(t *testing.T) {
	resp, _ := get(t, "http://not-part-of-the-world.example/", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestSelfOnlyPlatformOnOwnSite(t *testing.T) {
	// distillery.com's page embeds its own tag; the tag calls (rate 1)
	// under an if-consent guard.
	_, body := get(t, "http://distillery.com/", nil)
	if !strings.Contains(body, "distillery.com/tag.js") {
		t.Fatal("distillery.com page lacks its own tag")
	}
	_, tag := get(t, "http://distillery.com/tag.js",
		map[string]string{"Referer": "http://distillery.com/"})
	if !strings.Contains(tag, "if-consent") {
		t.Errorf("distillery tag must be consent-aware:\n%s", tag)
	}
}

func TestLongTailServing(t *testing.T) {
	var host string
	for _, s := range testWorld.Sites {
		if len(s.LongTail) > 0 {
			host = s.LongTail[0]
			break
		}
	}
	resp, body := get(t, "http://"+host+"/w.js", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "widget") {
		t.Errorf("long-tail js: %d %q", resp.StatusCode, body)
	}
	resp, _ = get(t, "http://"+host+"/px.gif", nil)
	if ct := resp.Header.Get("Content-Type"); ct != "image/gif" {
		t.Errorf("pixel content type %q", ct)
	}
	resp, body = get(t, "http://"+host+"/anything", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("long-tail fallback: %d %q", resp.StatusCode, body)
	}
}

func TestStaticAndPrivacyPages(t *testing.T) {
	site := pickSite(t, func(s *webworld.Site) bool { return s.RedirectTo == "" })
	for path, want := range map[string]string{
		"/static/0.css": "text/css",
		"/static/1.js":  "application/javascript",
		"/static/2.png": "image/gif",
	} {
		resp, _ := get(t, "http://"+site.Domain+path, nil)
		if ct := resp.Header.Get("Content-Type"); ct != want {
			t.Errorf("%s content type %q, want %q", path, ct, want)
		}
	}
	resp, body := get(t, "http://"+site.Domain+"/privacy", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "Privacy policy") {
		t.Errorf("privacy page: %d", resp.StatusCode)
	}
	resp, _ = get(t, "http://"+site.Domain+"/nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown site path: %d", resp.StatusCode)
	}
}

func TestTopicsFrameAndAdPage(t *testing.T) {
	_, body := get(t, "http://criteo.com/topics-frame.html", nil)
	if !strings.Contains(body, "#ts call") {
		t.Errorf("topics frame lacks the call:\n%s", body)
	}
	resp, body := get(t, "http://criteo.com/ad.html",
		map[string]string{TopicsRequestHeader: "(1);v=chrome.2"})
	if resp.Header.Get(ObserveHeader) != "?1" {
		t.Error("ad.html did not acknowledge topics header")
	}
	if !strings.Contains(body, "ad by") {
		t.Errorf("ad body: %q", body)
	}
	resp, _ = get(t, "http://criteo.com/unknown-endpoint", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown platform path: %d", resp.StatusCode)
	}
}

func TestCMPAssets(t *testing.T) {
	resp, body := get(t, "http://onetrust.com/consent.js", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "consent") {
		t.Errorf("consent.js: %d", resp.StatusCode)
	}
	resp, _ = get(t, "http://onetrust.com/banner.css", nil)
	if ct := resp.Header.Get("Content-Type"); ct != "text/css" {
		t.Errorf("banner.css content type %q", ct)
	}
	resp, _ = get(t, "http://onetrust.com/other", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown CMP path: %d", resp.StatusCode)
	}
}

func TestGTMDoubleCallMarker(t *testing.T) {
	// ≈30% of anomalous containers call twice; both kinds must exist.
	single, double := 0, 0
	for _, s := range testWorld.Sites {
		if !s.GTMTopicsCall || s.GTMConsentMode {
			continue
		}
		_, body := get(t, "http://"+webworld.GTMDomain+"/gtm.js?id=GTM-X",
			map[string]string{"Referer": "http://" + s.EffectiveDomain() + "/"})
		switch strings.Count(body, "#ts call") {
		case 1:
			single++
		case 2:
			double++
		default:
			t.Fatalf("unexpected call count in container:\n%s", body)
		}
	}
	if single == 0 || double == 0 {
		t.Errorf("GTM call multiplicity: single=%d double=%d, want both", single, double)
	}
}

func TestVirtualTimeHeaderControlsAB(t *testing.T) {
	// The same tag request at two far-apart virtual times can differ —
	// slots flip; and a malformed header falls back to the server clock.
	site := pickSite(t, func(s *webworld.Site) bool { return hasPlat(s, "criteo.com") })
	states := map[bool]int{}
	for day := 0; day < 40; day++ {
		at := time.Date(2024, 3, 1+day%28, 1, 0, 0, 0, time.UTC).Format(time.RFC3339Nano)
		_, body := get(t, "http://criteo.com/tag.js", map[string]string{
			"Referer":         "http://" + site.Domain + "/",
			VirtualTimeHeader: at,
		})
		states[strings.Contains(body, "topics")] = states[strings.Contains(body, "topics")] + 1
	}
	if len(states) != 2 {
		t.Logf("criteo never flipped on %s across 40 slots (possible but unlikely)", site.Domain)
	}
	resp, _ := get(t, "http://criteo.com/tag.js", map[string]string{
		"Referer":         "http://" + site.Domain + "/",
		VirtualTimeHeader: "not-a-time",
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("malformed virtual time rejected: %d", resp.StatusCode)
	}
}

func hasPlat(s *webworld.Site, domain string) bool {
	for _, p := range s.Platforms {
		if p == domain {
			return true
		}
	}
	return false
}

func TestServerMetrics(t *testing.T) {
	world := webworld.Generate(webworld.Config{Seed: 77, NumSites: 50})
	server := New(world, testClock)
	client := server.Client()

	reqs := []string{
		"http://" + world.Sites[0].Domain + "/",
		"http://criteo.com/px.gif",
		"http://onetrust.com/consent.js",
		"http://" + webworld.GTMDomain + "/gtm.js",
		"http://nowhere.example/",
	}
	for _, u := range reqs {
		resp, err := client.Get(u)
		if err == nil {
			resp.Body.Close()
		}
	}
	m := server.Metrics()
	t.Logf("metrics: %s", m)
	if m.Sites == 0 || m.Platforms == 0 || m.CMPs == 0 || m.GTM == 0 || m.Unknown == 0 {
		t.Errorf("metrics incomplete: %+v", m)
	}
	if m.Total() < int64(len(reqs)) {
		t.Errorf("total %d < %d", m.Total(), len(reqs))
	}
}

func TestHTTPSEndToEnd(t *testing.T) {
	world := webworld.Generate(webworld.Config{Seed: 55, NumSites: 120})
	server := New(world, testClock)
	ln, ca, err := server.ListenTLS("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: server}
	go hs.Serve(ln) //nolint:errcheck // closed below
	defer hs.Close()

	client := NewTLSClient(world, ln.Addr().String(), ca, 5*time.Second)

	// Raw request: certificate verification for an arbitrary host, and
	// HTTP/2 via ALPN.
	var site *webworld.Site
	for _, s := range world.Sites {
		if s.Reachable && s.RedirectTo == "" {
			site = s
			break
		}
	}
	resp, err := client.Get("https://" + site.Domain + "/")
	if err != nil {
		t.Fatalf("HTTPS GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.TLS == nil {
		t.Fatal("response not over TLS")
	}
	if resp.Proto != "HTTP/2.0" {
		t.Errorf("negotiated %s, want HTTP/2.0 via ALPN", resp.Proto)
	}
	if got := resp.TLS.PeerCertificates[0].DNSNames; len(got) != 1 || got[0] != site.Domain {
		t.Errorf("leaf certificate names %v, want exactly %q", got, site.Domain)
	}

	// A second host gets its own certificate from the same CA.
	resp2, err := client.Get("https://criteo.com/px.gif")
	if err != nil {
		t.Fatalf("HTTPS platform GET: %v", err)
	}
	resp2.Body.Close()
	if got := resp2.TLS.PeerCertificates[0].DNSNames[0]; got != "criteo.com" {
		t.Errorf("platform leaf for %q", got)
	}
}
