package webserver

import (
	"fmt"
	"hash/fnv"
	"strings"

	"github.com/netmeasure/topicscope/internal/etld"

	"github.com/netmeasure/topicscope/internal/cmpdb"
	"github.com/netmeasure/topicscope/internal/privaccept"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// sitePage renders a site's landing page for the given consent state
// and visitor jurisdiction. Non-EU visitors see the banner only on EU
// sites (EU publishers apply the GDPR to everyone; the rest geo-fence),
// and non-gated pages serve their ad stack immediately — the behaviour
// §6 suspects a non-EU vantage would observe.
func (s *Server) sitePage(site *webworld.Site, host string, consented, eu bool) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "  <title>%s</title>\n", pageTitle(site))
	fmt.Fprintf(&b, "  <meta charset=\"utf-8\">\n  <meta name=\"language\" content=%q>\n", site.Language)

	// First-party subresources.
	for i := 0; i < site.FirstPartyResources; i++ {
		switch i % 3 {
		case 0:
			fmt.Fprintf(&b, "  <link rel=\"stylesheet\" href=\"/static/%d.css\">\n", i)
		case 1:
			fmt.Fprintf(&b, "  <script src=\"/static/%d.js\"></script>\n", i)
		default:
			fmt.Fprintf(&b, "  <img src=\"/static/%d.png\">\n", i)
		}
	}

	// CMP loader: its domain on the page is the Wappalyzer-style CMP
	// fingerprint Figure 7 relies on.
	if site.CMP != "" {
		if cmp, ok := cmpdb.ByName(site.CMP); ok {
			fmt.Fprintf(&b, "  <script src=\"//%s/consent.js\"></script>\n", cmp.Domain)
			fmt.Fprintf(&b, "  <link rel=\"stylesheet\" href=\"//%s/banner.css\">\n", cmp.Domain)
		}
	}

	// Google Tag Manager, included the canonical (and origin-confusing)
	// way: a <script src> directly in the page, per Figure 4.
	if site.HasGTM {
		fmt.Fprintf(&b, "  <script src=\"//%s/gtm.js?id=GTM-%s\"></script>\n",
			webworld.GTMDomain, gtmContainerID(site.Domain))
	}
	if site.OtherLibTopicsCall {
		b.WriteString("  <script src=\"/js/ads-lib.js\"></script>\n")
	}
	b.WriteString("</head>\n<body>\n")

	// Privacy banner (first visit only; geo-fenced for non-EU visitors).
	showBanner := site.HasBanner && (eu || site.Region == etld.RegionEU)
	if showBanner && !consented {
		b.WriteString(bannerHTML(site))
	}

	fmt.Fprintf(&b, "  <header><h1>%s</h1></header>\n", pageTitle(site))
	fmt.Fprintf(&b, "  <main><p>%s</p><a href=\"/privacy\">Privacy</a></main>\n", bodyCopy(site))

	// Ad-platform tags: before consent they load only where the site's
	// gating (CMP or custom) and region practices let them — the
	// behaviour whose per-CMP failure rate Figure 7 measures. A non-EU
	// visitor on a geo-fenced site carries no banner obligation at all,
	// so the stack loads unconditionally.
	if consented || site.LoadsAdsPreConsent() || (!eu && !showBanner) {
		for _, domain := range site.Platforms {
			fmt.Fprintf(&b, "  <script src=\"//%s/tag.js\"></script>\n", domain)
		}
	}

	// Long-tail third parties load regardless of consent (fonts, CDNs,
	// widgets) — they dominate the §2.4 unique-third-party count.
	for i, h := range site.LongTail {
		if i%2 == 0 {
			fmt.Fprintf(&b, "  <script src=\"//%s/w.js\"></script>\n", h)
		} else {
			fmt.Fprintf(&b, "  <img src=\"//%s/px.gif\">\n", h)
		}
	}

	b.WriteString("</body>\n</html>\n")
	return b.String()
}

func pageTitle(site *webworld.Site) string {
	label := site.Domain
	if i := strings.IndexByte(label, '.'); i > 0 {
		label = label[:i]
	}
	return titleCase(strings.ReplaceAll(label, "-", " "))
}

func bodyCopy(site *webworld.Site) string {
	return fmt.Sprintf("Welcome to %s — ranked #%d. Fresh content every day.",
		site.Domain, site.Rank)
}

// gtmContainerID derives a stable GTM container id from the site.
func gtmContainerID(domain string) string {
	h := fnv.New32a()
	h.Write([]byte(domain))
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	v := h.Sum32()
	var id [6]byte
	for i := range id {
		id[i] = alphabet[v%26]
		v /= 26
	}
	return string(id[:])
}

// bannerTexts provides banner copy and accept wording for every world
// language. Supported languages reuse privaccept's first (longest)
// phrase so detection genuinely exercises the keyword matcher;
// unsupported languages use native wording Priv-Accept cannot match —
// reproducing its known failure mode.
var bannerTexts = map[string]struct{ notice, accept, reject string }{
	"en": {"We use cookies to personalise content and ads.", "", "Reject all"},
	"fr": {"Nous utilisons des cookies pour personnaliser le contenu.", "", "Tout refuser"},
	"es": {"Utilizamos cookies para personalizar el contenido.", "", "Rechazar todo"},
	"de": {"Wir verwenden Cookies, um Inhalte zu personalisieren.", "", "Alle ablehnen"},
	"it": {"Utilizziamo i cookie per personalizzare i contenuti.", "", "Rifiuta tutto"},
	"ja": {"コンテンツをパーソナライズするためにクッキーを使用します。", "同意する", "拒否する"},
	"ru": {"Мы используем файлы cookie для персонализации контента.", "Принять все", "Отклонить"},
	"nl": {"Wij gebruiken cookies om inhoud te personaliseren.", "Alles toestaan", "Alles weigeren"},
	"pl": {"Używamy plików cookie do personalizacji treści.", "Zaakceptuj wszystkie", "Odrzuć"},
	"sv": {"Vi använder cookies för att anpassa innehållet.", "Godkänn alla", "Avvisa alla"},
	"pt": {"Usamos cookies para personalizar o conteúdo.", "Aceitar tudo", "Rejeitar tudo"},
	"cs": {"Používáme cookies k personalizaci obsahu.", "Přijmout vše", "Odmítnout"},
	"da": {"Vi bruger cookies til at tilpasse indholdet.", "Tillad alle", "Afvis alle"},
	"fi": {"Käytämme evästeitä sisällön mukauttamiseen.", "Hyväksy kaikki", "Hylkää kaikki"},
	"tr": {"İçeriği kişiselleştirmek için çerezler kullanıyoruz.", "Tümünü onayla", "Reddet"},
}

// obscureAccept is wording outside Priv-Accept's keyword lists, used by
// the ObscureBanner sites to model its ≈5–8% miss rate.
const obscureAccept = "Continue with recommended settings"

// bannerHTML renders the consent banner in the site's language.
func bannerHTML(site *webworld.Site) string {
	texts, ok := bannerTexts[site.Language]
	if !ok {
		texts = bannerTexts["en"]
	}
	accept := texts.accept
	if accept == "" {
		// Supported language: use the canonical Priv-Accept phrase,
		// title-cased as real banners render it.
		accept = titleCase(privaccept.AcceptWords[site.Language][0])
	}
	if site.ObscureBanner {
		accept = obscureAccept
	}
	return fmt.Sprintf(`  <div id="privacy-banner" class="cookie-banner" lang=%q>
    <p>%s</p>
    <button id="pa-accept" data-consent="accept">%s</button>
    <button id="pa-reject" data-consent="reject">%s</button>
  </div>
`, site.Language, texts.notice, accept, texts.reject)
}

// titleCase upper-cases the first letter of each space-separated word.
func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		if w[0] >= 'a' && w[0] <= 'z' {
			words[i] = string(w[0]-32) + w[1:]
		}
	}
	return strings.Join(words, " ")
}
