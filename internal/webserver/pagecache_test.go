package webserver

import (
	"sync"
	"testing"

	"github.com/netmeasure/topicscope/internal/webworld"
)

// TestPageCacheVariants: the cache must key on (site, consent, vantage)
// — the four variants of one site differ, repeats are byte-identical,
// and the cached output always matches a fresh render.
func TestPageCacheVariants(t *testing.T) {
	srv := New(testWorld, testClock)
	site := pickSite(t, func(s *webworld.Site) bool {
		return s.HasBanner && len(s.Platforms) > 0 && s.RedirectTo == ""
	})

	seen := map[string]bool{}
	for _, consented := range []bool{false, true} {
		for _, eu := range []bool{false, true} {
			first := string(srv.cachedSitePage(site, site.Domain, consented, eu))
			again := string(srv.cachedSitePage(site, site.Domain, consented, eu))
			if first != again {
				t.Errorf("consented=%v eu=%v: cached page differs between calls", consented, eu)
			}
			if fresh := srv.sitePage(site, site.Domain, consented, eu); first != fresh {
				t.Errorf("consented=%v eu=%v: cached page differs from fresh render", consented, eu)
			}
			seen[first] = true
		}
	}
	// A gated EU banner site renders differently pre/post consent, so
	// the cache must hold distinct entries, not one page for all keys.
	if len(seen) < 2 {
		t.Errorf("only %d distinct page variants cached, want at least 2", len(seen))
	}

	other := pickSite(t, func(s *webworld.Site) bool {
		return s.Domain != site.Domain && s.RedirectTo == ""
	})
	if string(srv.cachedSitePage(other, other.Domain, true, true)) == string(srv.cachedSitePage(site, site.Domain, true, true)) {
		t.Error("two different sites share one cached page")
	}
}

// TestPageCacheConcurrent hits one server from many goroutines under
// the race detector: the RWMutex-guarded map must hand every goroutine
// the same page.
func TestPageCacheConcurrent(t *testing.T) {
	srv := New(testWorld, testClock)
	site := pickSite(t, func(s *webworld.Site) bool { return s.RedirectTo == "" })
	want := srv.sitePage(site, site.Domain, false, true)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := srv.cachedSitePage(site, site.Domain, false, true); string(got) != want {
					t.Error("concurrent cached page diverges from fresh render")
					return
				}
			}
		}()
	}
	wg.Wait()
}
