package stats

import (
	"fmt"
	"strings"
)

// BarChart renders horizontal ASCII bars, the textual equivalent of the
// paper's figure panels: one labelled bar per series point, scaled to
// the maximum value.
type BarChart struct {
	Title string
	// Width is the maximum bar width in characters (default 40).
	Width int
	rows  []barRow
}

type barRow struct {
	label   string
	value   float64
	display string
}

// Add appends a bar; display is the value text printed after the bar
// (e.g. "611" or "55.2%").
func (c *BarChart) Add(label string, value float64, display string) {
	c.rows = append(c.rows, barRow{label: label, value: value, display: display})
}

// AddPair appends a two-tone bar for "filled of total" data such as
// Figure 2's "CP present and called" over "present" bars: the filled
// part uses '█', the remainder '░'.
func (c *BarChart) AddPair(label string, filled, total float64, display string) {
	c.rows = append(c.rows, barRow{label: label, value: total, display: display + pairMarker(filled, total)})
}

// pairMarker encodes the filled fraction so Render can split the bar.
func pairMarker(filled, total float64) string {
	if total <= 0 {
		return "\x00" + "0"
	}
	return fmt.Sprintf("\x00%.6f", filled/total)
}

// Render draws the chart.
func (c *BarChart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	var maxVal float64
	maxLabel := 0
	for _, r := range c.rows {
		if r.value > maxVal {
			maxVal = r.value
		}
		if len([]rune(r.label)) > maxLabel {
			maxLabel = len([]rune(r.label))
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	for _, r := range c.rows {
		display := r.display
		frac := -1.0
		if i := strings.IndexByte(display, '\x00'); i >= 0 {
			fmt.Sscanf(display[i+1:], "%f", &frac)
			display = display[:i]
		}
		n := 0
		if maxVal > 0 {
			n = int(r.value / maxVal * float64(width))
		}
		bar := strings.Repeat("█", n)
		if frac >= 0 && n > 0 {
			f := int(frac*float64(n) + 0.5)
			if f > n {
				f = n
			}
			bar = strings.Repeat("█", f) + strings.Repeat("░", n-f)
		}
		fmt.Fprintf(&b, "%-*s |%s %s\n", maxLabel, r.label, bar, display)
	}
	return b.String()
}
