// Package stats holds small numeric and text-rendering helpers shared by
// the analysis pipeline: counters, shares, and aligned ASCII tables used
// to print the paper's tables and figure data as text.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Share returns num/den as a fraction, 0 when den is 0.
func Share(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Pct renders a fraction as "12.3%".
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Counter counts string keys.
type Counter map[string]int

// Add increments a key.
func (c Counter) Add(key string) { c[key]++ }

// Total sums all counts.
func (c Counter) Total() int {
	t := 0
	for _, n := range c {
		t += n
	}
	return t
}

// KV is a key with its count.
type KV struct {
	Key   string
	Count int
}

// Sorted returns entries by descending count, ties by key.
func (c Counter) Sorted() []KV {
	out := make([]KV, 0, len(c))
	for k, n := range c {
		out = append(out, KV{k, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Top returns at most n leading entries of Sorted.
func (c Counter) Top(n int) []KV {
	s := c.Sorted()
	if len(s) > n {
		s = s[:n]
	}
	return s
}

// Table renders aligned ASCII tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render draws the table with column alignment.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, cell := range row {
			if w := len([]rune(cell)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Histogram buckets float values for quick textual distribution checks.
type Histogram struct {
	Buckets []float64 // upper bounds, ascending
	Counts  []int
}

// NewHistogram builds a histogram with the given ascending upper bounds;
// values beyond the last bound land in an overflow bucket.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{Buckets: bounds, Counts: make([]int, len(bounds)+1)}
}

// Observe adds a value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.Buckets {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Buckets)]++
}

// Total returns the number of observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}
