package stats

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestShareAndPct(t *testing.T) {
	if Share(1, 4) != 0.25 {
		t.Error("Share(1,4)")
	}
	if Share(1, 0) != 0 {
		t.Error("Share by zero must be 0")
	}
	if got := Pct(0.4567); got != "45.7%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestCounter(t *testing.T) {
	c := Counter{}
	for _, k := range []string{"a", "b", "a", "c", "a", "b"} {
		c.Add(k)
	}
	if c.Total() != 6 {
		t.Errorf("Total = %d", c.Total())
	}
	want := []KV{{"a", 3}, {"b", 2}, {"c", 1}}
	if got := c.Sorted(); !reflect.DeepEqual(got, want) {
		t.Errorf("Sorted = %v", got)
	}
	if got := c.Top(2); !reflect.DeepEqual(got, want[:2]) {
		t.Errorf("Top(2) = %v", got)
	}
	// Ties break by key.
	tie := Counter{"z": 1, "a": 1}
	if got := tie.Sorted(); got[0].Key != "a" {
		t.Errorf("tie order: %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"name", "n"}}
	tb.AddRow("alpha", 1)
	tb.AddRow("a", 100)
	tb.AddRow("pi", 3.14159)
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "T" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name ") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(out, "3.14") {
		t.Error("float not formatted")
	}
	// Title + header + separator + three rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
}

func TestTableNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.AddRow("x", "y")
	out := tb.Render()
	if strings.Contains(out, "--") {
		t.Error("separator printed without headers")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 2, 3)
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5, 10} {
		h.Observe(v)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	want := []int{1, 1, 1, 2}
	if !reflect.DeepEqual(h.Counts, want) {
		t.Errorf("Counts = %v, want %v", h.Counts, want)
	}
}

// Property: Counter.Total equals the number of Adds; Sorted is
// monotonically non-increasing.
func TestCounterProperties(t *testing.T) {
	f := func(keys []uint8) bool {
		c := Counter{}
		for _, k := range keys {
			c.Add(string(rune('a' + k%16)))
		}
		if c.Total() != len(keys) {
			return false
		}
		s := c.Sorted()
		for i := 1; i < len(s); i++ {
			if s[i].Count > s[i-1].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{Title: "demo", Width: 10}
	c.Add("alpha", 100, "100")
	c.Add("beta", 50, "50")
	c.Add("empty", 0, "0")
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Errorf("title = %q", lines[0])
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) {
		t.Errorf("full bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], strings.Repeat("█", 5)) || strings.Contains(lines[2], strings.Repeat("█", 6)) {
		t.Errorf("half bar wrong: %q", lines[2])
	}
	if strings.Contains(lines[3], "█") {
		t.Errorf("zero bar drew: %q", lines[3])
	}
}

func TestBarChartPair(t *testing.T) {
	c := &BarChart{Width: 10}
	c.AddPair("x", 5, 10, "5/10")
	out := c.Render()
	if !strings.Contains(out, "█████░░░░░") {
		t.Errorf("pair bar = %q", out)
	}
	if !strings.Contains(out, "5/10") {
		t.Errorf("display lost: %q", out)
	}
	// Zero totals do not divide by zero.
	c2 := &BarChart{Width: 10}
	c2.AddPair("y", 0, 0, "0/0")
	if out := c2.Render(); !strings.Contains(out, "0/0") {
		t.Errorf("zero pair = %q", out)
	}
}
