package tranco

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	in := "1,google.com\n2,youtube.com\n\n5,example.co.uk\n"
	l, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []Entry{{1, "google.com"}, {2, "youtube.com"}, {5, "example.co.uk"}}
	if !reflect.DeepEqual(l.Entries, want) {
		t.Errorf("Entries = %v", l.Entries)
	}
}

func TestParseNormalises(t *testing.T) {
	l, err := Parse(strings.NewReader(" 1 , Example.COM \n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if l.Entries[0].Domain != "example.com" {
		t.Errorf("domain = %q", l.Entries[0].Domain)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"1 google.com\n",          // no comma
		"x,google.com\n",          // bad rank
		"1,google.com\n1,b.com\n", // non-increasing
		"2,google.com\n1,b.com\n", // decreasing
		"1,\n",                    // empty domain
		"1,nodot\n",               // no dot
	}
	for _, in := range bad {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestTopAndDomains(t *testing.T) {
	l := FromDomains([]string{"a.com", "b.com", "c.com"})
	top := l.Top(2)
	if top.Len() != 2 || top.Entries[1].Domain != "b.com" {
		t.Errorf("Top(2) = %v", top.Entries)
	}
	if l.Top(10).Len() != 3 {
		t.Error("Top beyond length must clamp")
	}
	if !reflect.DeepEqual(l.Domains(), []string{"a.com", "b.com", "c.com"}) {
		t.Errorf("Domains = %v", l.Domains())
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	l := FromDomains([]string{"google.com", "youtube.com", "example.org"})
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(got.Entries, l.Entries) {
		t.Errorf("round trip: %v vs %v", got.Entries, l.Entries)
	}
}

func TestFileRoundTrip(t *testing.T) {
	l := FromDomains([]string{"a.com", "b.net"})
	path := filepath.Join(t.TempDir(), "list.csv")
	if err := l.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if !reflect.DeepEqual(got.Entries, l.Entries) {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

// Property: FromDomains → Write → Parse is the identity for valid
// domain-like strings.
func TestRoundTripProperty(t *testing.T) {
	f := func(n uint8) bool {
		var domains []string
		for i := 0; i <= int(n%50); i++ {
			domains = append(domains, "site"+string(rune('a'+i%26))+strings.Repeat("x", i%3)+".com")
		}
		l := FromDomains(domains)
		var buf bytes.Buffer
		if l.Write(&buf) != nil {
			return false
		}
		got, err := Parse(&buf)
		return err == nil && reflect.DeepEqual(got.Entries, l.Entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
