package tranco

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse verifies the list parser is total and that accepted lists
// round-trip through Write.
func FuzzParse(f *testing.F) {
	f.Add("1,google.com\n2,youtube.com\n")
	f.Add("")
	f.Add("x,y\n")
	f.Fuzz(func(t *testing.T, input string) {
		l, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := l.Write(&buf); err != nil {
			t.Fatalf("accepted list failed to serialise: %v", err)
		}
		again, err := Parse(&buf)
		if err != nil {
			t.Fatalf("serialised list failed to parse: %v", err)
		}
		if again.Len() != l.Len() {
			t.Fatalf("round trip changed length: %d vs %d", again.Len(), l.Len())
		}
	})
}
