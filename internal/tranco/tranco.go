// Package tranco handles Tranco-style top-site rank lists (§2.2: the
// crawl targets "the top-50,000 websites according to the Tranco list
// as of March 26th, 2024"). The on-disk format is the Tranco CSV:
// one "rank,domain" pair per line, rank starting at 1.
package tranco

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/etld"
)

// Entry is one ranked site.
type Entry struct {
	Rank   int
	Domain string
}

// List is a rank-ordered site list.
type List struct {
	Entries []Entry
}

// Top returns a list with at most n leading entries.
func (l *List) Top(n int) *List {
	if n > len(l.Entries) {
		n = len(l.Entries)
	}
	return &List{Entries: l.Entries[:n]}
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.Entries) }

// Domains returns the domains in rank order.
func (l *List) Domains() []string {
	out := make([]string, len(l.Entries))
	for i, e := range l.Entries {
		out[i] = e.Domain
	}
	return out
}

// FromDomains builds a list assigning ranks 1..n in slice order.
func FromDomains(domains []string) *List {
	l := &List{Entries: make([]Entry, len(domains))}
	for i, d := range domains {
		l.Entries[i] = Entry{Rank: i + 1, Domain: d}
	}
	return l
}

// Parse reads a Tranco CSV. It validates that ranks are positive and
// strictly increasing and that domains are non-empty.
func Parse(r io.Reader) (*List, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	l := &List{}
	line := 0
	prevRank := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		rankStr, domain, ok := strings.Cut(text, ",")
		if !ok {
			return nil, fmt.Errorf("tranco: line %d: missing comma: %q", line, text)
		}
		rank, err := strconv.Atoi(strings.TrimSpace(rankStr))
		if err != nil {
			return nil, fmt.Errorf("tranco: line %d: bad rank: %w", line, err)
		}
		domain = etld.Normalize(domain)
		if rank <= prevRank {
			return nil, fmt.Errorf("tranco: line %d: rank %d not increasing", line, rank)
		}
		if domain == "" || !strings.Contains(domain, ".") {
			return nil, fmt.Errorf("tranco: line %d: invalid domain %q", line, domain)
		}
		prevRank = rank
		l.Entries = append(l.Entries, Entry{Rank: rank, Domain: domain})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tranco: scanning: %w", err)
	}
	return l, nil
}

// Write emits the list in Tranco CSV format.
func (l *List) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range l.Entries {
		if _, err := fmt.Fprintf(bw, "%d,%s\n", e.Rank, e.Domain); err != nil {
			return fmt.Errorf("tranco: writing: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("tranco: flushing: %w", err)
	}
	return nil
}

// LoadFile parses a Tranco CSV from disk.
func LoadFile(path string) (*List, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tranco: opening %s: %w", path, err)
	}
	defer f.Close()
	return Parse(f)
}

// SaveFile writes the list to disk atomically, so a crash mid-write
// cannot leave a truncated rank list behind.
func (l *List) SaveFile(path string) error {
	if err := durable.WriteFileAtomic(path, l.Write); err != nil {
		return fmt.Errorf("tranco: writing %s: %w", path, err)
	}
	return nil
}
