// Package etld implements lightweight public-suffix handling for the
// crawler and the analysis pipeline.
//
// The paper's analyses need three operations on hostnames:
//
//   - extracting the top-level domain (used in Figure 6 to group websites
//     into geographic regions: .com, .jp, .ru, EU, other);
//   - extracting the registrable domain (eTLD+1), used in Section 4 to
//     decide whether an anomalous Topics API caller "coincides with the
//     website we are visiting" (same second-level domain, e.g.
//     www.foo.com and ad.foo.net share the label "foo" but not the
//     registrable domain — the paper compares second-level labels, which
//     SecondLevelLabel implements);
//   - deciding whether two hosts belong to the same site.
//
// A full public-suffix list is several megabytes; this package embeds the
// subset of suffixes that actually occurs in the synthetic web plus the
// common multi-label country suffixes, which is sufficient and keeps the
// module dependency-free.
package etld

import (
	"strings"
)

// multiLabelSuffixes lists public suffixes made of more than one DNS
// label. Single-label suffixes (com, net, org, country codes, ...) need
// no table: the last label of a hostname is always a public suffix when
// no multi-label suffix matches.
var multiLabelSuffixes = map[string]bool{
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true,
	"co.jp": true, "ne.jp": true, "or.jp": true, "ac.jp": true, "go.jp": true,
	"com.au": true, "net.au": true, "org.au": true,
	"com.br": true, "net.br": true, "org.br": true,
	"co.in": true, "net.in": true, "org.in": true,
	"com.cn": true, "net.cn": true, "org.cn": true,
	"com.tr": true, "com.mx": true, "com.ar": true, "com.co": true,
	"co.kr": true, "co.za": true, "co.nz": true, "com.sg": true,
	"com.tw": true, "com.hk": true, "com.ua": true, "com.pl": true,
	"com.ru": true, "msk.ru": true, "spb.ru": true,
	"co.it": true, // not a real suffix, kept out; see tests
}

func init() {
	// co.it is not a public suffix; the entry above documents the
	// temptation and removes it so tests can assert the correct split.
	delete(multiLabelSuffixes, "co.it")
}

// Normalize lowercases a hostname and strips a trailing dot and port.
func Normalize(host string) string {
	if normalized(host) {
		return host
	}
	host = strings.ToLower(strings.TrimSpace(host))
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host[i+1:], ".") {
		// Strip a ":port" suffix but not the tail of an IPv6 literal.
		if _, ok := atoiOK(host[i+1:]); ok {
			host = host[:i]
		}
	}
	return strings.TrimSuffix(host, ".")
}

// normalized reports whether host is already in normal form — lowercase
// ASCII with no whitespace, port, or trailing dot — so Normalize can
// return it unchanged. This is the overwhelmingly common case on crawl
// datasets (hostnames arrive normalized from the wire) and keeps the
// per-hostname analysis path allocation-free.
func normalized(host string) bool {
	if host == "" || host[len(host)-1] == '.' {
		return false
	}
	for i := 0; i < len(host); i++ {
		switch c := host[i]; {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '.', c == '_':
		default:
			return false
		}
	}
	return true
}

func atoiOK(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<20 {
			return 0, false
		}
	}
	return n, true
}

// suffixStart returns the byte offset where host's public suffix
// begins: the start of the matching multi-label suffix (e.g. "co.uk"),
// the start of the final label otherwise, and 0 when the host is itself
// a public suffix. host must already be normalized. Everything here is
// index arithmetic on the input string — the eTLD split is on the
// serving path's per-request budget (attestation gate, host
// classification), so it must not allocate.
func suffixStart(host string) int {
	last := strings.LastIndexByte(host, '.')
	if last < 0 {
		return 0
	}
	prev := strings.LastIndexByte(host[:last], '.')
	if multiLabelSuffixes[host[prev+1:]] {
		// prev is -1 when host has exactly two labels, making
		// host[prev+1:] the whole host — a host that IS a multi-label
		// suffix maps to offset 0.
		return prev + 1
	}
	return last + 1
}

// PublicSuffix returns the effective TLD of host: either the matching
// multi-label suffix (e.g. "co.uk") or the final label. It returns "" for
// empty or label-free input.
func PublicSuffix(host string) string {
	host = Normalize(host)
	if host == "" {
		return ""
	}
	return host[suffixStart(host):]
}

// TLD returns the final DNS label of host (the country-code or generic
// top-level domain). Figure 6 groups websites by this value.
func TLD(host string) string {
	host = Normalize(host)
	if host == "" {
		return ""
	}
	if i := strings.LastIndexByte(host, '.'); i >= 0 {
		return host[i+1:]
	}
	return host
}

// RegistrableDomain returns the eTLD+1 of host: the public suffix plus
// one label (e.g. "foo.co.uk" for "www.foo.co.uk"). If host is itself a
// public suffix, it is returned unchanged.
func RegistrableDomain(host string) string {
	host = Normalize(host)
	if host == "" {
		return ""
	}
	s := suffixStart(host)
	if s == 0 {
		// host is itself a public suffix.
		return host
	}
	// One label left of the suffix: host[s-1] is the dot separating the
	// registrable label from the suffix.
	p := strings.LastIndexByte(host[:s-1], '.')
	return host[p+1:]
}

// SecondLevelLabel returns the label immediately left of the public
// suffix — the "second-level domain" in the paper's terminology. The
// Section 4 analysis treats www.foo.com and ad.foo.net as the same party
// because both have second-level label "foo".
func SecondLevelLabel(host string) string {
	reg := RegistrableDomain(host)
	if reg == "" {
		return ""
	}
	if i := strings.IndexByte(reg, '.'); i >= 0 {
		return reg[:i]
	}
	return reg
}

// SameSite reports whether two hosts share a registrable domain.
func SameSite(a, b string) bool {
	ra, rb := RegistrableDomain(a), RegistrableDomain(b)
	return ra != "" && ra == rb
}

// SameSecondLevel reports whether two hosts share the second-level label,
// the looser notion of "same party" the paper uses for anomalous calls
// (e.g. www.foo.com vs ad.foo.net).
func SameSecondLevel(a, b string) bool {
	sa, sb := SecondLevelLabel(a), SecondLevelLabel(b)
	return sa != "" && sa == sb
}
