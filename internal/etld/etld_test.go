package etld

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Example.COM", "example.com"},
		{"example.com.", "example.com"},
		{"example.com:8080", "example.com"},
		{" example.com ", "example.com"},
		{"example.com:notaport", "example.com:notaport"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPublicSuffix(t *testing.T) {
	cases := []struct{ in, want string }{
		{"www.example.com", "com"},
		{"example.co.uk", "co.uk"},
		{"www.example.co.uk", "co.uk"},
		{"foo.bar.co.jp", "co.jp"},
		{"example.it", "it"},
		{"localhost", "localhost"},
		{"a.b.c.d.com.br", "com.br"},
		{"", ""},
	}
	for _, c := range cases {
		if got := PublicSuffix(c.in); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRegistrableDomain(t *testing.T) {
	cases := []struct{ in, want string }{
		{"www.example.com", "example.com"},
		{"example.com", "example.com"},
		{"a.b.example.co.uk", "example.co.uk"},
		{"co.uk", "co.uk"},
		{"com", "com"},
		{"ad.foo.net", "foo.net"},
		{"www.foo.com", "foo.com"},
		{"shop.example.com.br", "example.com.br"},
	}
	for _, c := range cases {
		if got := RegistrableDomain(c.in); got != c.want {
			t.Errorf("RegistrableDomain(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSecondLevelLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"www.foo.com", "foo"},
		{"ad.foo.net", "foo"},
		{"foo.co.uk", "foo"},
		{"com", "com"},
	}
	for _, c := range cases {
		if got := SecondLevelLabel(c.in); got != c.want {
			t.Errorf("SecondLevelLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSamenessPredicates(t *testing.T) {
	// Section 4: www.foo.com and ad.foo.net are "the same second-level
	// domain" but not the same site.
	if SameSite("www.foo.com", "ad.foo.net") {
		t.Error("SameSite(www.foo.com, ad.foo.net) = true, want false")
	}
	if !SameSecondLevel("www.foo.com", "ad.foo.net") {
		t.Error("SameSecondLevel(www.foo.com, ad.foo.net) = false, want true")
	}
	if !SameSite("www.foo.com", "cdn.foo.com") {
		t.Error("SameSite(www.foo.com, cdn.foo.com) = false, want true")
	}
	if SameSite("", "") {
		t.Error("SameSite of empty hosts must be false")
	}
}

func TestRegionOf(t *testing.T) {
	cases := []struct {
		in   string
		want Region
	}{
		{"example.com", RegionCom},
		{"example.co.jp", RegionJapan},
		{"example.jp", RegionJapan},
		{"example.ru", RegionRussia},
		{"example.msk.ru", RegionRussia},
		{"example.fr", RegionEU},
		{"example.de", RegionEU},
		{"example.eu", RegionEU},
		{"example.org", RegionOther},
		{"example.co.uk", RegionOther}, // UK is not in the EU TLD set
		{"example.us", RegionOther},
	}
	for _, c := range cases {
		if got := RegionOf(c.in); got != c.want {
			t.Errorf("RegionOf(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRegionString(t *testing.T) {
	want := []string{".com", ".jp", ".ru", "EU", "Other"}
	for i, r := range Regions {
		if r.String() != want[i] {
			t.Errorf("Regions[%d].String() = %q, want %q", i, r.String(), want[i])
		}
	}
}

func TestEUTLDCount(t *testing.T) {
	// The paper says "30 TLDs for EU countries".
	n := 0
	for range euTLDs {
		n++
	}
	if n != 30 {
		t.Errorf("EU TLD set has %d entries, paper uses 30", n)
	}
}

// Property: RegistrableDomain is idempotent and is always a suffix of the
// normalized input.
func TestRegistrableDomainProperties(t *testing.T) {
	f := func(labelsRaw []uint8) bool {
		if len(labelsRaw) == 0 {
			return true
		}
		parts := make([]string, 0, len(labelsRaw)%6+1)
		alphabet := []string{"www", "foo", "bar", "example", "ad", "co", "uk", "com", "net", "jp"}
		for _, b := range labelsRaw {
			parts = append(parts, alphabet[int(b)%len(alphabet)])
			if len(parts) >= 6 {
				break
			}
		}
		host := strings.Join(parts, ".")
		reg := RegistrableDomain(host)
		if reg != RegistrableDomain(reg) {
			return false
		}
		norm := Normalize(host)
		return norm == reg || strings.HasSuffix(norm, "."+reg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: SameSecondLevel is reflexive and symmetric on non-empty hosts.
func TestSameSecondLevelProperties(t *testing.T) {
	hosts := []string{"www.foo.com", "ad.foo.net", "foo.co.uk", "bar.com", "a.b.c.example.de"}
	for _, a := range hosts {
		if !SameSecondLevel(a, a) {
			t.Errorf("SameSecondLevel(%q, %q) not reflexive", a, a)
		}
		for _, b := range hosts {
			if SameSecondLevel(a, b) != SameSecondLevel(b, a) {
				t.Errorf("SameSecondLevel not symmetric for %q, %q", a, b)
			}
		}
	}
}
